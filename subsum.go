// Package subsum is a from-scratch implementation of the
// subscription-summarization publish/subscribe paradigm (Triantafillou &
// Economides, ICDCS 2004): content-based pub/sub where brokers exchange
// compact per-attribute summaries of their subscriptions instead of the
// subscriptions themselves.
//
// The package re-exports the library's public surface:
//
//   - Schema / Event / Subscription / Constraint — the content model
//     (Section 2.1) with the full operator set (=, ≠, <, ≤, >, ≥, prefix,
//     suffix, containment, glob) and a small textual query language
//     (ParseSubscription, ParseEvent).
//   - Summary — a broker's summarized subscription set (AACS + SACS,
//     Section 3) with Algorithm 1 matching, merging into multi-broker
//     summaries (Section 4.1), and a binary wire codec.
//   - Graph — broker overlay topologies, including the 24-node backbone
//     used by the paper's evaluation and the Figure 7 example tree.
//   - Network — the live engine: goroutine-per-broker actors exchanging
//     real messages; periodic summary propagation (Algorithm 2) and
//     distributed event routing (Algorithm 3) with exact re-matching at
//     owning brokers, so consumers see no false deliveries.
//
// The experiments package regenerates every figure of the paper's
// evaluation; cmd/subsum-bench prints them.
//
// # Quick start
//
//	s := subsum.MustSchema(
//		subsum.Attribute{Name: "symbol", Type: subsum.TypeString},
//		subsum.Attribute{Name: "price", Type: subsum.TypeFloat},
//	)
//	net, _ := subsum.NewNetwork(subsum.NetworkConfig{
//		Topology: subsum.Backbone24(), Schema: s,
//	})
//	defer net.Close()
//	sub, _ := subsum.ParseSubscription(s, `symbol = OTE && price < 8.70`)
//	net.Subscribe(3, sub, func(id subsum.SubscriptionID, ev *subsum.Event) {
//		fmt.Println("delivered:", ev.Format(s))
//	})
//	net.Propagate()
//	ev, _ := subsum.ParseEvent(s, `symbol=OTE price=8.40`)
//	net.Publish(0, ev)
//	net.Flush()
package subsum

import (
	"io"

	"github.com/subsum/subsum/internal/broker"
	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/propagation"
	"github.com/subsum/subsum/internal/routing"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// Content model (Section 2.1).
type (
	// Schema is the system-wide ordered set of attribute definitions.
	Schema = schema.Schema
	// Attribute is a (name, type) pair in the schema.
	Attribute = schema.Attribute
	// Type enumerates attribute data types.
	Type = schema.Type
	// Value is a typed attribute value.
	Value = schema.Value
	// Field is one attribute/value pair of an event.
	Field = schema.Field
	// Event is a published notification.
	Event = schema.Event
	// Constraint is one attribute condition of a subscription.
	Constraint = schema.Constraint
	// Subscription is a conjunction of constraints.
	Subscription = schema.Subscription
	// Op enumerates constraint operators.
	Op = schema.Op
)

// Attribute types.
const (
	TypeString = schema.TypeString
	TypeInt    = schema.TypeInt
	TypeFloat  = schema.TypeFloat
	TypeDate   = schema.TypeDate
)

// Constraint operators. OpPrefix, OpSuffix, and OpContains are the paper's
// ">*", "*<", and "*"; OpGlob matches patterns with embedded '*' such as
// "m*t".
const (
	OpEQ       = schema.OpEQ
	OpNE       = schema.OpNE
	OpLT       = schema.OpLT
	OpLE       = schema.OpLE
	OpGT       = schema.OpGT
	OpGE       = schema.OpGE
	OpPrefix   = schema.OpPrefix
	OpSuffix   = schema.OpSuffix
	OpContains = schema.OpContains
	OpGlob     = schema.OpGlob
)

// Value constructors.
var (
	String = schema.StringValue
	Int    = schema.IntValue
	Float  = schema.FloatValue
	Date   = schema.DateValue
)

// NewSchema builds a schema from attribute definitions.
func NewSchema(attrs ...Attribute) (*Schema, error) { return schema.New(attrs...) }

// MustSchema is NewSchema panicking on error, for literal schemas.
func MustSchema(attrs ...Attribute) *Schema { return schema.MustNew(attrs...) }

// NewSubscription validates constraints and builds a subscription.
func NewSubscription(s *Schema, cs ...Constraint) (*Subscription, error) {
	return schema.NewSubscription(s, cs...)
}

// ParseSubscription parses `attr op value && ...` subscription text, e.g.
// `exchange = "N*SE" && price < 8.70 && price > 8.30`.
func ParseSubscription(s *Schema, text string) (*Subscription, error) {
	return schema.ParseSubscription(s, text)
}

// NewEvent builds an event from named values.
func NewEvent(s *Schema, fields map[string]Value) (*Event, error) {
	return schema.NewEvent(s, fields)
}

// ParseEvent parses `attr=value ...` event text, e.g.
// `symbol=OTE price=8.40 volume=132700`.
func ParseEvent(s *Schema, text string) (*Event, error) {
	return schema.ParseEvent(s, text)
}

// Subscription identifiers (Section 3.2).
type (
	// SubscriptionID is the c1‖c2‖c3 subscription identifier.
	SubscriptionID = subid.ID
	// BrokerID identifies a broker (the c1 component).
	BrokerID = subid.BrokerID
	// LocalID identifies a subscription within its broker (c2).
	LocalID = subid.LocalID
)

// Summaries (Sections 3–4).
type (
	// Summary is a (possibly multi-broker) subscription summary.
	Summary = summary.Summary
	// SummaryMode selects the AACS equality handling.
	SummaryMode = interval.Mode
)

// Summary modes: Lossy is the paper's equality folding (pre-filter false
// positives resolved at owners); Exact splits ranges at equality points.
const (
	Lossy = interval.Lossy
	Exact = interval.Exact
)

// NewSummary returns an empty summary over the schema.
func NewSummary(s *Schema, mode SummaryMode) *Summary { return summary.New(s, mode) }

// Allocation-free matching (Algorithm 1 hot path).
type (
	// Matcher runs Algorithm 1 against one summary with reusable scratch
	// state — zero steady-state allocations per matched event. Create one
	// with Summary.NewMatcher; a matcher is single-threaded, but any
	// number may run concurrently against the same summary.
	Matcher = summary.Matcher
	// MatcherPool pools matchers bound to one summary for concurrent
	// event sweeps.
	MatcherPool = summary.MatcherPool
	// MatchCost reports the Section 5.2.4 operation counts (T1/T2 terms)
	// of one Algorithm 1 run.
	MatchCost = summary.MatchCost
)

// NewMatcherPool returns a pool whose matchers are bound to sm.
func NewMatcherPool(sm *Summary) *MatcherPool { return summary.NewMatcherPool(sm) }

// Sweep runs fn(i) for every i in [0, n) across a bounded worker pool
// (workers <= 0 means one per CPU, 1 runs inline). Results are
// deterministic as long as fn(i) writes only to index-i state.
func Sweep(n, workers int, fn func(i int)) { core.Sweep(n, workers, fn) }

// DecodeSummary parses a summary from its binary wire form.
func DecodeSummary(s *Schema, buf []byte) (*Summary, error) { return summary.Decode(s, buf) }

// Topologies (Section 5.2).
type (
	// Graph is an undirected broker overlay.
	Graph = topology.Graph
	// NodeID identifies a broker in the overlay.
	NodeID = topology.NodeID
)

// Topology constructors.
var (
	// Backbone24 is the 24-node ISP backbone approximating the paper's
	// Cable & Wireless topology.
	Backbone24 = topology.CW24
	// Backbone33 is a 33-node overlay at the upper end of the paper's
	// "20 to 33 backbone nodes" ISP range.
	Backbone33 = topology.ATT33
	// ExampleTree13 is the 13-broker tree of the paper's Figure 7.
	ExampleTree13 = topology.Figure7Tree
	// WaxmanOverlay builds a Waxman locality-model random overlay.
	WaxmanOverlay = topology.Waxman
	// RandomOverlay builds a connected random overlay (spanning tree plus
	// extra edges), deterministic per seed.
	RandomOverlay = topology.Random
	// RingOverlay, StarOverlay, GridOverlay build regular overlays.
	RingOverlay = topology.Ring
	StarOverlay = topology.Star
	GridOverlay = topology.Grid
	// TransitStubOverlay builds a GT-ITM-style two-level hierarchy for
	// the 100–1000-broker scaling experiments; TransitStubRegions also
	// exposes the stub-region assignment workloads key interests off.
	TransitStubOverlay = topology.TransitStub
	TransitStubRegions = topology.TransitStubRegions
	// GeometricOverlay builds a random geometric overlay (radius ≤ 0
	// picks the connectivity threshold).
	GeometricOverlay = topology.RandomGeometric
	// ScaleFreeOverlay builds a Barabási–Albert preferential-attachment
	// overlay (m ≤ 0 defaults to 2).
	ScaleFreeOverlay = topology.PreferentialAttachment
)

// NewGraph returns a graph with n isolated nodes; add edges with AddEdge.
func NewGraph(name string, n int) *Graph { return topology.New(name, n) }

// Live engine.
type (
	// Network is a running broker network.
	Network = core.Network
	// NetworkConfig parametrizes a Network.
	NetworkConfig = core.Config
	// DeliveryFunc receives matched events for a subscription.
	DeliveryFunc = broker.DeliveryFunc
	// ForwardingStrategy selects the Algorithm 3 next-broker choice.
	ForwardingStrategy = routing.Strategy
)

// Forwarding strategies.
const (
	// HighestDegree is the paper's Algorithm 3 choice.
	HighestDegree = routing.HighestDegree
	// VirtualDegree is the paper's load-balancing extension.
	VirtualDegree = routing.VirtualDegree
)

// NewNetwork builds and starts a broker network.
func NewNetwork(cfg NetworkConfig) (*Network, error) { return core.New(cfg) }

// DeliveryFactory supplies consumer callbacks for snapshot restoration.
type DeliveryFactory = core.DeliveryFactory

// LoadSnapshot restores a network from a snapshot written by
// Network.SaveSnapshot. The schema comes from the snapshot; run one
// Propagate period afterwards to rebuild multi-broker summaries.
func LoadSnapshot(r io.Reader, cfg NetworkConfig, deliver DeliveryFactory) (*Network, error) {
	return core.LoadSnapshot(r, cfg, deliver)
}

// Deterministic pipeline — the synchronous, instrumented implementations
// of Algorithms 2 and 3 that the experiment harness uses.
type (
	// PropagationResult is the outcome of one Algorithm 2 phase: per-broker
	// merged summaries, Merged_Brokers sets, and full cost accounting.
	PropagationResult = propagation.Result
	// PropagationCost fixes s_st and s_id for the paper's cost equations.
	PropagationCost = propagation.CostModel
	// Router routes events over a propagation result (Algorithm 3).
	Router = routing.Router
	// RouterConfig selects the forwarding strategy.
	RouterConfig = routing.Config
	// RouteTrace records the processing of one event.
	RouteTrace = routing.Trace
)

// RunPropagation executes Algorithm 2 deterministically over the overlay,
// where own[i] is broker i's summary, using the Table 2 cost model.
func RunPropagation(g *Graph, own []*Summary) (*PropagationResult, error) {
	return propagation.Run(g, own, propagation.DefaultCostModel())
}

// RunPropagationWithCost is RunPropagation with explicit s_st/s_id sizes.
func RunPropagationWithCost(g *Graph, own []*Summary, cost PropagationCost) (*PropagationResult, error) {
	return propagation.Run(g, own, cost)
}

// RunPropagationReference executes Algorithm 2 through the clone-per-send
// baseline (wire codec v1) kept for differential testing and benchmarking.
// It produces the same merged state and send log as RunPropagation; only
// WireBytes and the allocation profile differ.
func RunPropagationReference(g *Graph, own []*Summary) (*PropagationResult, error) {
	return propagation.RunReference(g, own, propagation.DefaultCostModel())
}

// NewRouter builds a deterministic Algorithm 3 router over a propagation
// result.
func NewRouter(g *Graph, prop *PropagationResult, cfg RouterConfig) (*Router, error) {
	return routing.NewRouter(g, prop, cfg)
}

// Workload generation (Section 5.2 / Table 2).
type (
	// WorkloadConfig parametrizes the synthetic generator.
	WorkloadConfig = workload.Config
	// WorkloadGenerator produces subscriptions and events.
	WorkloadGenerator = workload.Generator
)

// DefaultWorkload returns the paper's Table 2 parameters.
func DefaultWorkload() WorkloadConfig { return workload.DefaultConfig() }

// NewWorkload builds a generator (and its schema) from the config.
func NewWorkload(cfg WorkloadConfig) (*WorkloadGenerator, error) {
	return workload.NewGenerator(cfg)
}
