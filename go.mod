module github.com/subsum/subsum

go 1.22
