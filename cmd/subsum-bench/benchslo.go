package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/subsum/subsum/internal/scenario"
)

// sloReport is the tracked chaos-soak baseline: the full scenario
// result (per-phase verdicts, budget burn, recovery times) under
// generation metadata. CI archives this as BENCH_slo.json; the
// committed copy is the deterministic reference sweep.
type sloReport struct {
	GeneratedAt string           `json:"generated_at"`
	Scenario    *scenario.Result `json:"scenario"`
}

// runBenchSLO runs the scripted chaos scenario ("full" or "smoke") with
// the SLO monitor attached, writes the JSON report (to jsonPath, else
// stdout) and optionally a markdown soak report, and returns an error —
// a nonzero exit — when any phase misses its control expectations.
// The run ignores -seed on purpose: the committed baseline must
// reproduce byte-for-byte (modulo the latency SLI, which is wall-clock).
func runBenchSLO(jsonPath, mdPath, scriptName string) error {
	cfg := scenario.DefaultConfig()
	var phases []scenario.Phase
	switch scriptName {
	case "full":
		phases = scenario.DefaultScript(cfg.Topology.Len())
	case "smoke":
		phases = scenario.SmokeScript(cfg.Topology.Len())
	default:
		return fmt.Errorf("unknown -scenario %q (want full or smoke)", scriptName)
	}

	r, err := scenario.NewRunner(cfg)
	if err != nil {
		return err
	}
	defer r.Close()
	res, err := r.Run(scriptName, phases)
	if err != nil {
		return err
	}

	rep := sloReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scenario:    res,
	}
	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if jsonPath == "" {
		if _, err := os.Stdout.Write(out); err != nil {
			return err
		}
	} else if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
		return err
	}
	if mdPath != "" {
		if err := os.WriteFile(mdPath, []byte(soakMarkdown(&rep)), 0o644); err != nil {
			return err
		}
	}

	breached := 0
	for _, ph := range res.Phases {
		if len(ph.Breached) > 0 {
			breached++
		}
	}
	where := jsonPath
	if where == "" {
		where = "stdout"
	}
	fmt.Printf("slo: script %s on %s (%d brokers), %d phases (%d with breaches), passed=%v; wrote %s\n",
		res.Script, res.Topology, res.Brokers, len(res.Phases), breached, res.Passed, where)
	if !res.Passed {
		return fmt.Errorf("scenario %q failed %d control expectation(s):\n  %s",
			scriptName, len(res.ControlErrors), strings.Join(res.ControlErrors, "\n  "))
	}
	return nil
}

// soakMarkdown renders the phase-correlated soak report: one row per
// phase with its injected fault, observed breaches, and recovery time,
// then the final per-objective budget table.
func soakMarkdown(rep *sloReport) string {
	res := rep.Scenario
	var b strings.Builder
	fmt.Fprintf(&b, "# Chaos soak report — %s\n\n", res.Script)
	fmt.Fprintf(&b, "Topology %s (%d brokers), seed %d, generated %s.\n\n",
		res.Topology, res.Brokers, res.Seed, rep.GeneratedAt)
	status := "**PASSED** — every breach occurred only in its injected phase and cleared within the recovery objective."
	if !res.Passed {
		status = fmt.Sprintf("**FAILED** — %d control error(s), listed below.", len(res.ControlErrors))
	}
	b.WriteString(status + "\n\n")

	b.WriteString("## Phases\n\n")
	b.WriteString("| # | phase | ticks | fault | breached | recovery ticks | max bytes/period |\n")
	b.WriteString("|--:|-------|------:|-------|----------|---------------:|-----------------:|\n")
	for i := range res.Phases {
		ph := &res.Phases[i]
		breached := "—"
		if len(ph.Breached) > 0 {
			sorted := append([]string(nil), ph.Breached...)
			sort.Strings(sorted)
			breached = strings.Join(sorted, ", ")
		}
		recovery := "—"
		if ph.Recovery {
			recovery = fmt.Sprintf("%d", ph.RecoveryTicks)
		}
		fmt.Fprintf(&b, "| %d | %s | %d | %s | %s | %s | %.0f |\n",
			ph.Index, ph.Name, ph.Ticks, faultLabel(ph), breached, recovery, ph.BytesPerPeriodMax)
	}

	b.WriteString("\n## Final error budgets\n\n")
	b.WriteString("| objective | state | SLI | target | fast burn | slow burn | budget left |\n")
	b.WriteString("|-----------|-------|----:|-------:|----------:|----------:|------------:|\n")
	if res.Final != nil {
		for i := range res.Final.Verdicts {
			v := &res.Final.Verdicts[i]
			fmt.Fprintf(&b, "| %s | %s | %.4g | %s %.4g | %.2f | %.2f | %.0f%% |\n",
				v.Name, strings.ToUpper(string(v.State)), v.SLI, v.Op, v.Target,
				v.FastBurn, v.SlowBurn, 100*v.BudgetRemaining)
		}
	}

	if len(res.ControlErrors) > 0 {
		b.WriteString("\n## Control errors\n\n")
		for _, e := range res.ControlErrors {
			fmt.Fprintf(&b, "- %s\n", e)
		}
	}
	return b.String()
}

// faultLabel is the soak table's one-word description of what a phase
// injected.
func faultLabel(ph *scenario.PhaseResult) string {
	switch {
	case ph.Fault.Kind == scenario.FaultPartition:
		return fmt.Sprintf("partition %d/%d", len(ph.Fault.SideA), len(ph.Fault.SideB))
	case ph.Fault.Kind == scenario.FaultLoss:
		return fmt.Sprintf("loss %s %.0f%%", ph.Fault.LossKind, 100*ph.Fault.LossRate)
	case ph.Fault.Kind == scenario.FaultPause:
		return "pause relay"
	case ph.ChurnPerPeriod > 0:
		return fmt.Sprintf("churn %d/period", ph.ChurnPerPeriod)
	case ph.Recovery:
		return "heal"
	default:
		return "—"
	}
}
