// Command subsum-bench regenerates the tables and figures of the
// subscription-summarization paper's evaluation (Section 5), plus the
// repo's tracked performance and reliability baselines.
//
// Usage:
//
//	subsum-bench -experiment <name>|all
//	             [-events N] [-sigmas 10,100,1000] [-csv] [-topology cw24|fig7|random]
//	             [-workers N] [-json BENCH_matching.json] [-sizes 24,64,128]
//	             [-scenario full|smoke] [-md SOAK.md]
//
// The experiment names are defined in one table-driven registry
// (experimentSpecs below); the -h text is generated from it, and a test
// asserts the two can't drift apart. Each experiment prints the same
// rows/series the paper reports; see EXPERIMENTS.md for the
// paper-versus-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/subsum/subsum/experiments"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/topology"
)

// benchEnv carries the parsed flag state into experiment runners.
type benchEnv struct {
	cfg      experiments.Config
	asCSV    bool
	jsonOut  string
	sizes    []int
	workers  int
	seed     int64
	scenario string
	mdOut    string
}

// show prints a table in the selected format, dying on error.
func (e *benchEnv) show(tab *metrics.Table, err error) {
	if err != nil {
		fatalf("%v", err)
	}
	if e.asCSV {
		fmt.Println(tab.CSV())
	} else {
		fmt.Println(tab)
	}
}

// experimentSpec is one registry entry: the -experiment name, a
// one-line summary rendered into usage output, whether "all" includes
// it, and the runner itself.
type experimentSpec struct {
	name    string
	summary string
	inAll   bool
	run     func(e *benchEnv)
}

// experimentSpecs is the single source of truth for experiment names.
// Usage text and the "all" sweep are generated from it, and
// TestRegistryDrivesUsage asserts every entry is reachable from -h, so
// adding an experiment here is the whole job.
var experimentSpecs = []experimentSpec{
	{"table1", "summary-size model vs paper Table 1", true,
		func(e *benchEnv) { e.show(experiments.Table1(), nil) }},
	{"table2", "per-broker summarization cost on the stock workload", true,
		func(e *benchEnv) { e.show(experiments.Table2(e.cfg), nil) }},
	{"fig7", "worked propagation trace on the 13-broker tree", true,
		func(e *benchEnv) {
			out, err := experiments.Fig7Trace()
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Println(out)
		}},
	{"fig8", "total summary traffic vs sigma", true,
		func(e *benchEnv) { e.show(experiments.Fig8(e.cfg)) }},
	{"fig9", "per-link summary traffic distribution", true,
		func(e *benchEnv) { e.show(experiments.Fig9(e.cfg)) }},
	{"fig10", "event traffic vs sigma", true,
		func(e *benchEnv) { e.show(experiments.Fig10(e.cfg)) }},
	{"fig11", "false-positive rate vs sigma", true,
		func(e *benchEnv) { e.show(experiments.Fig11(e.cfg)) }},
	{"matching", "matching cost vs summary size", true,
		func(e *benchEnv) { e.show(experiments.MatchingCost(e.cfg)) }},
	{"benchmatch", "matcher micro-benchmarks -> BENCH_matching.json", true,
		func(e *benchEnv) {
			if err := runBenchMatch(e.jsonOut); err != nil {
				fatalf("%v", err)
			}
		}},
	{"benchprop", "propagation + codec benchmarks -> BENCH_propagation.json", true,
		func(e *benchEnv) {
			if err := runBenchProp(e.jsonOut); err != nil {
				fatalf("%v", err)
			}
		}},
	{"benchchurn", "subscribe/unsubscribe churn benchmarks -> BENCH_churn.json", true,
		func(e *benchEnv) {
			if err := runBenchChurn(e.jsonOut); err != nil {
				fatalf("%v", err)
			}
		}},
	{"benchthroughput", "live-engine event throughput sweep", true,
		func(e *benchEnv) {
			if err := runBenchThroughput(e.jsonOut); err != nil {
				fatalf("%v", err)
			}
		}},
	{"benchoverlay", "overlay scaling ladder -> BENCH_overlay.json", true,
		func(e *benchEnv) {
			if err := runBenchOverlay(e.jsonOut, e.sizes, e.workers, e.seed); err != nil {
				fatalf("%v", err)
			}
		}},
	{"sizemodel", "analytic size model vs measured summaries", true,
		func(e *benchEnv) { e.show(experiments.SizeModelValidation(e.cfg)) }},
	{"crosstopo", "cost comparison across backbone topologies", true,
		func(e *benchEnv) { e.show(experiments.CrossTopology(e.cfg)) }},
	{"health", "summary-health baseline (staleness, FP attribution)", true,
		func(e *benchEnv) {
			hcfg := experiments.DefaultHealthConfig()
			hcfg.Seed = e.seed
			e.show(experiments.HealthBaseline(hcfg))
		}},
	{"ablations", "forwarding/folding/subsumption/batch ablations", true,
		func(e *benchEnv) {
			e.show(experiments.AblationForwarding(e.cfg))
			e.show(experiments.AblationEqualityFolding(e.cfg))
			e.show(experiments.AblationSubsumptionCombo(e.cfg))
			e.show(experiments.AblationBatch(e.cfg))
		}},
	// The chaos soak sleeps real wall time in its pause phases and fails
	// the process on a control error, so "all" (the paper regeneration
	// sweep) does not include it — run it explicitly, as CI does.
	{"slo", "scripted chaos soak vs error budgets -> BENCH_slo.json (-scenario full|smoke, -md report)", false,
		func(e *benchEnv) {
			if err := runBenchSLO(e.jsonOut, e.mdOut, e.scenario); err != nil {
				fatalf("%v", err)
			}
		}},
}

// experimentUsage renders the registry into the -experiment flag's help
// text: one "name — summary" line per entry plus the all sweep.
func experimentUsage() string {
	var b strings.Builder
	b.WriteString("experiment to run; one of:\n")
	for _, sp := range experimentSpecs {
		fmt.Fprintf(&b, "    \t  %-16s %s\n", sp.name, sp.summary)
	}
	b.WriteString("    \t  all              every experiment marked for the full sweep")
	return b.String()
}

func main() {
	var (
		experiment   = flag.String("experiment", "all", experimentUsage())
		events       = flag.Int("events", 1000, "events per broker for figure 10")
		sigmas       = flag.String("sigmas", "", "comma-separated σ sweep override (e.g. 10,100,1000)")
		topoName     = flag.String("topology", "cw24", "cw24, att33, fig7, or random:<n>:<extra>:<seed>")
		seed         = flag.Int64("seed", 1, "workload seed")
		asCSV        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		workers      = flag.Int("workers", 0, "parallel sweep width (0 = all CPUs, 1 = serial); results are identical at any width")
		jsonOut      = flag.String("json", "", "benchmatch/benchprop/benchchurn/benchoverlay/slo: write the JSON report to this file instead of stdout")
		sizes        = flag.String("sizes", "", "benchoverlay: comma-separated broker-count override (e.g. 24,64,128 for the reduced CI sweep)")
		scenarioName = flag.String("scenario", "full", "slo: chaos script to run (full or smoke)")
		mdOut        = flag.String("md", "", "slo: also write a markdown soak report to this file")
	)
	flag.Parse()

	env := benchEnv{
		cfg:      experiments.Default(),
		asCSV:    *asCSV,
		jsonOut:  *jsonOut,
		workers:  *workers,
		seed:     *seed,
		scenario: *scenarioName,
		mdOut:    *mdOut,
	}
	env.cfg.EventsPerBroker = *events
	env.cfg.Seed = *seed
	env.cfg.Workers = *workers
	if *sigmas != "" {
		var parsed []int
		for _, tok := range strings.Split(*sigmas, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 1 {
				fatalf("bad -sigmas value %q", tok)
			}
			parsed = append(parsed, v)
		}
		env.cfg.Sigmas = parsed
	}
	if *sizes != "" {
		for _, tok := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 2 {
				fatalf("bad -sizes value %q", tok)
			}
			env.sizes = append(env.sizes, v)
		}
	}
	topo, err := parseTopology(*topoName)
	if err != nil {
		fatalf("%v", err)
	}
	env.cfg.Topo = topo

	if *experiment == "all" {
		for _, sp := range experimentSpecs {
			if sp.inAll {
				sp.run(&env)
			}
		}
		return
	}
	for _, sp := range experimentSpecs {
		if sp.name == *experiment {
			sp.run(&env)
			return
		}
	}
	var names []string
	for _, sp := range experimentSpecs {
		names = append(names, sp.name)
	}
	fatalf("unknown experiment %q (want one of %s, all)", *experiment, strings.Join(names, ", "))
}

func parseTopology(name string) (*topology.Graph, error) {
	switch {
	case name == "cw24":
		return topology.CW24(), nil
	case name == "att33":
		return topology.ATT33(), nil
	case name == "fig7":
		return topology.Figure7Tree(), nil
	case strings.HasPrefix(name, "random:"):
		parts := strings.Split(name, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("random topology wants random:<n>:<extra>:<seed>")
		}
		n, err1 := strconv.Atoi(parts[1])
		extra, err2 := strconv.Atoi(parts[2])
		seed, err3 := strconv.ParseInt(parts[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || n < 2 {
			return nil, fmt.Errorf("bad random topology spec %q", name)
		}
		return topology.Random(n, extra, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "subsum-bench: "+format+"\n", args...)
	os.Exit(1)
}
