// Command subsum-bench regenerates the tables and figures of the
// subscription-summarization paper's evaluation (Section 5).
//
// Usage:
//
//	subsum-bench -experiment fig8|fig9|fig10|fig11|matching|benchmatch|benchprop|benchchurn|benchoverlay|fig7|table2|health|ablations|all
//	             [-events N] [-sigmas 10,100,1000] [-csv] [-topology cw24|fig7|random]
//	             [-workers N] [-json BENCH_matching.json] [-sizes 24,64,128]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-versus-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/subsum/subsum/experiments"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/topology"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig8, fig9, fig10, fig11, matching, fig7, table2, ablations, or all")
		events     = flag.Int("events", 1000, "events per broker for figure 10")
		sigmas     = flag.String("sigmas", "", "comma-separated σ sweep override (e.g. 10,100,1000)")
		topoName   = flag.String("topology", "cw24", "cw24, att33, fig7, or random:<n>:<extra>:<seed>")
		seed       = flag.Int64("seed", 1, "workload seed")
		asCSV      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		workers    = flag.Int("workers", 0, "parallel sweep width (0 = all CPUs, 1 = serial); results are identical at any width")
		jsonOut    = flag.String("json", "", "benchmatch/benchprop: write the JSON report to this file instead of stdout")
		sizes      = flag.String("sizes", "", "benchoverlay: comma-separated broker-count override (e.g. 24,64,128 for the reduced CI sweep)")
	)
	flag.Parse()

	cfg := experiments.Default()
	cfg.EventsPerBroker = *events
	cfg.Seed = *seed
	cfg.Workers = *workers
	if *sigmas != "" {
		var parsed []int
		for _, tok := range strings.Split(*sigmas, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 1 {
				fatalf("bad -sigmas value %q", tok)
			}
			parsed = append(parsed, v)
		}
		cfg.Sigmas = parsed
	}
	topo, err := parseTopology(*topoName)
	if err != nil {
		fatalf("%v", err)
	}
	cfg.Topo = topo

	show := func(tab *metrics.Table, err error) {
		if err != nil {
			fatalf("%v", err)
		}
		if *asCSV {
			fmt.Println(tab.CSV())
		} else {
			fmt.Println(tab)
		}
	}

	run := map[string]func(){
		"table1": func() { show(experiments.Table1(), nil) },
		"table2": func() { show(experiments.Table2(cfg), nil) },
		"fig7": func() {
			out, err := experiments.Fig7Trace()
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Println(out)
		},
		"fig8":     func() { show(experiments.Fig8(cfg)) },
		"fig9":     func() { show(experiments.Fig9(cfg)) },
		"fig10":    func() { show(experiments.Fig10(cfg)) },
		"fig11":    func() { show(experiments.Fig11(cfg)) },
		"matching": func() { show(experiments.MatchingCost(cfg)) },
		"benchmatch": func() {
			if err := runBenchMatch(*jsonOut); err != nil {
				fatalf("%v", err)
			}
		},
		"benchprop": func() {
			if err := runBenchProp(*jsonOut); err != nil {
				fatalf("%v", err)
			}
		},
		"benchchurn": func() {
			if err := runBenchChurn(*jsonOut); err != nil {
				fatalf("%v", err)
			}
		},
		"benchthroughput": func() {
			if err := runBenchThroughput(*jsonOut); err != nil {
				fatalf("%v", err)
			}
		},
		"benchoverlay": func() {
			var parsed []int
			if *sizes != "" {
				for _, tok := range strings.Split(*sizes, ",") {
					v, err := strconv.Atoi(strings.TrimSpace(tok))
					if err != nil || v < 2 {
						fatalf("bad -sizes value %q", tok)
					}
					parsed = append(parsed, v)
				}
			}
			if err := runBenchOverlay(*jsonOut, parsed, *workers, *seed); err != nil {
				fatalf("%v", err)
			}
		},
		"crosstopo": func() { show(experiments.CrossTopology(cfg)) },
		"health": func() {
			hcfg := experiments.DefaultHealthConfig()
			hcfg.Seed = *seed
			show(experiments.HealthBaseline(hcfg))
		},
		"sizemodel": func() { show(experiments.SizeModelValidation(cfg)) },
		"ablations": func() {
			show(experiments.AblationForwarding(cfg))
			show(experiments.AblationEqualityFolding(cfg))
			show(experiments.AblationSubsumptionCombo(cfg))
			show(experiments.AblationBatch(cfg))
		},
	}
	order := []string{"table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "matching", "benchmatch", "benchprop", "benchchurn", "benchthroughput", "benchoverlay", "sizemodel", "crosstopo", "health", "ablations"}

	if *experiment == "all" {
		for _, name := range order {
			run[name]()
		}
		return
	}
	fn, ok := run[*experiment]
	if !ok {
		fatalf("unknown experiment %q (want one of %s, all)", *experiment, strings.Join(order, ", "))
	}
	fn()
}

func parseTopology(name string) (*topology.Graph, error) {
	switch {
	case name == "cw24":
		return topology.CW24(), nil
	case name == "att33":
		return topology.ATT33(), nil
	case name == "fig7":
		return topology.Figure7Tree(), nil
	case strings.HasPrefix(name, "random:"):
		parts := strings.Split(name, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("random topology wants random:<n>:<extra>:<seed>")
		}
		n, err1 := strconv.Atoi(parts[1])
		extra, err2 := strconv.Atoi(parts[2])
		seed, err3 := strconv.ParseInt(parts[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || n < 2 {
			return nil, fmt.Errorf("bad random topology spec %q", name)
		}
		return topology.Random(n, extra, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "subsum-bench: "+format+"\n", args...)
	os.Exit(1)
}
