package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// throughputRow is one end-to-end throughput measurement: a pipeline
// configuration at a GOMAXPROCS setting. It reuses the benchResult wire
// shape (so benchcheck compares it by name) and adds the higher-is-better
// headline metric.
type throughputRow struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"` // ns per published event, end to end
	EventsPerSec float64 `json:"events_per_sec"`
	Iterations   int     `json:"iterations"` // events timed
	GOMAXPROCS   int     `json:"gomaxprocs"`
	MatchShards  int     `json:"match_shards"`
	EventBatch   int     `json:"event_batch"`
}

// throughputSection is the block benchthroughput merges into
// BENCH_matching.json: the live-engine events/sec baseline the ISSUE's
// CI criterion reads, with the legacy path and the batched+sharded
// pipeline side by side across a GOMAXPROCS scaling sweep.
type throughputSection struct {
	GeneratedAt string `json:"generated_at"`
	NumCPU      int    `json:"num_cpu"` // physical parallelism available to the sweep
	Workload    struct {
		Topology      string  `json:"topology"`
		Brokers       int     `json:"brokers"`
		Sigma         int     `json:"sigma"`
		Subscriptions int     `json:"subscriptions"`
		Events        int     `json:"events"`
		HitRate       float64 `json:"hit_rate"`
	} `json:"workload"`
	Rows []throughputRow `json:"rows"`
	// SpeedupBatchedVsLegacy compares the two pipelines at the same
	// GOMAXPROCS=8 setting; ScalingBatched8v1 is batched GOMAXPROCS=8
	// over batched GOMAXPROCS=1 (≈1.0 on a single-core host — the sweep
	// records whatever parallelism the machine actually has, see NumCPU).
	SpeedupBatchedVsLegacy float64 `json:"speedup_batched_vs_legacy"`
	ScalingBatched8v1      float64 `json:"scaling_batched_8_vs_1"`
}

// measureThroughput runs one configuration: build a CW24 network, load
// and propagate the subscriptions, then time publishing the event stream
// to quiescence. Returns events/sec (best of reps, to shed scheduler
// noise).
func measureThroughput(shards, batch, sigma int, events []*schema.Event, reps int) (float64, error) {
	g := topology.CW24()
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		return 0, err
	}
	net, err := core.New(core.Config{
		Topology: g, Schema: gen.Schema(), Mode: interval.Lossy,
		MatchShards: shards, EventBatch: batch,
	})
	if err != nil {
		return 0, err
	}
	defer net.Close()
	noop := func(subid.ID, *schema.Event) {}
	for i := 0; i < g.Len()*sigma; i++ {
		if _, err := net.Subscribe(topology.NodeID(i%g.Len()), gen.Subscription(), noop); err != nil {
			return 0, err
		}
	}
	if _, err := net.Propagate(); err != nil {
		return 0, err
	}
	publish := func() (time.Duration, error) {
		start := time.Now()
		for i, ev := range events {
			if err := net.Publish(topology.NodeID(i%g.Len()), ev); err != nil {
				return 0, err
			}
		}
		net.Flush()
		return time.Since(start), nil
	}
	if _, err := publish(); err != nil { // warm caches, snapshots, pools
		return 0, err
	}
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		d, err := publish()
		if err != nil {
			return 0, err
		}
		if d < best {
			best = d
		}
	}
	return float64(len(events)) / best.Seconds(), nil
}

// runBenchThroughput measures live-engine event throughput on the
// paper's 24-broker backbone — the legacy one-event-per-wakeup path
// against the batched+sharded pipeline, swept across GOMAXPROCS 1/4/8 —
// and merges the numbers into the benchmatch report at jsonPath (the rows
// also join its "results" array so benchcheck tracks events_per_sec
// regressions by name). With an empty jsonPath the section is printed to
// stdout on its own.
func runBenchThroughput(jsonPath string) error {
	const (
		sigma   = 100
		nEvents = 2000
		hitRate = 0.9
		reps    = 3
	)
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		return err
	}
	events := make([]*schema.Event, nEvents)
	for i := range events {
		events[i] = gen.Event(hitRate)
	}

	// Batching (decode/metrics amortization + coalesced deliver multicast)
	// pays on any machine; sharding the matcher only pays with real cores
	// to fan shards out to — on a single-CPU host it is pure overhead. The
	// sweep keeps them separate so each effect is visible on its own.
	configs := []struct {
		name          string
		shards, batch int
	}{
		{"ThroughputLegacy", 1, 1},
		{"ThroughputBatched", 1, 64},
		{"ThroughputBatchedSharded", 4, 64},
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var sec throughputSection
	sec.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	sec.NumCPU = runtime.NumCPU()
	sec.Workload.Topology = "cw24"
	sec.Workload.Brokers = topology.CW24().Len()
	sec.Workload.Sigma = sigma
	sec.Workload.Subscriptions = sec.Workload.Brokers * sigma
	sec.Workload.Events = nEvents
	sec.Workload.HitRate = hitRate

	perName := map[string]float64{}
	for _, cfg := range configs {
		for _, gmp := range []int{1, 4, 8} {
			runtime.GOMAXPROCS(gmp)
			eps, err := measureThroughput(cfg.shards, cfg.batch, sigma, events, reps)
			if err != nil {
				runtime.GOMAXPROCS(prev)
				return err
			}
			name := fmt.Sprintf("%s/gomaxprocs=%d", cfg.name, gmp)
			sec.Rows = append(sec.Rows, throughputRow{
				Name:         name,
				NsPerOp:      1e9 / eps,
				EventsPerSec: eps,
				Iterations:   nEvents,
				GOMAXPROCS:   gmp,
				MatchShards:  cfg.shards,
				EventBatch:   cfg.batch,
			})
			perName[name] = eps
		}
	}
	runtime.GOMAXPROCS(prev)
	if l := perName["ThroughputLegacy/gomaxprocs=8"]; l > 0 {
		sec.SpeedupBatchedVsLegacy = perName["ThroughputBatched/gomaxprocs=8"] / l
	}
	if b1 := perName["ThroughputBatched/gomaxprocs=1"]; b1 > 0 {
		sec.ScalingBatched8v1 = perName["ThroughputBatched/gomaxprocs=8"] / b1
	}

	out, err := mergeThroughput(jsonPath, &sec)
	if err != nil {
		return err
	}
	if jsonPath == "" {
		_, err := os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchthroughput: batched %.0f ev/s vs legacy %.0f ev/s at GOMAXPROCS=8 (%.2fx, %d CPUs); wrote %s\n",
		perName["ThroughputBatched/gomaxprocs=8"], perName["ThroughputLegacy/gomaxprocs=8"],
		sec.SpeedupBatchedVsLegacy, sec.NumCPU, jsonPath)
	return nil
}

// mergeThroughput folds the section into the existing report at jsonPath
// (benchmatch's output): the section lands under "throughput", and its
// rows are appended to "results" — replacing any Throughput* rows from an
// earlier run — so benchcheck sees them without knowing about sections.
// A missing or empty file yields a standalone report.
func mergeThroughput(jsonPath string, sec *throughputSection) ([]byte, error) {
	doc := map[string]any{}
	if jsonPath != "" {
		if buf, err := os.ReadFile(jsonPath); err == nil && len(buf) > 0 {
			if err := json.Unmarshal(buf, &doc); err != nil {
				return nil, fmt.Errorf("merge into %s: %w", jsonPath, err)
			}
		}
	}
	doc["throughput"] = sec
	var results []any
	if prior, ok := doc["results"].([]any); ok {
		for _, r := range prior {
			if m, ok := r.(map[string]any); ok {
				if name, _ := m["name"].(string); len(name) >= 10 && name[:10] == "Throughput" {
					continue
				}
			}
			results = append(results, r)
		}
	}
	for _, row := range sec.Rows {
		results = append(results, row)
	}
	doc["results"] = results
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
