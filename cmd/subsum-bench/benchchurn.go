package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/subsum/subsum/internal/broker"
	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/netsim"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// churnReport is the tracked sustained-churn baseline: the live engine on
// the paper's 24-broker backbone absorbing a continuous
// subscribe/unsubscribe stream, with retraction deltas and periodic full
// syncs keeping remote merged summaries bounded by the live population.
type churnReport struct {
	GeneratedAt string `json:"generated_at"`
	Workload    struct {
		Topology            string  `json:"topology"`
		Brokers             int     `json:"brokers"`
		RatePerPeriod       int     `json:"rate_per_period"`
		MeanLifetimePeriods float64 `json:"mean_lifetime_periods"`
		Periods             int     `json:"periods"`
		FullSyncEvery       int     `json:"full_sync_every"`
		SteadyStateLive     int     `json:"steady_state_live"`
	} `json:"workload"`
	// Sustained summarizes the 70-period live-engine run. Bounded is the
	// acceptance criterion: once the population plateaus, total merged
	// model bytes across the network must not grow period over period.
	Sustained struct {
		SubsPerSecAbsorbed   float64           `json:"subs_per_sec_absorbed"`
		TotalSubscribes      int               `json:"total_subscribes"`
		TotalUnsubscribes    int               `json:"total_unsubscribes"`
		Compactions          int64             `json:"compactions"`
		WatchdogViolations   int               `json:"watchdog_violations"`
		MergedBytesWindowA   float64           `json:"merged_bytes_window_a_mean"`
		MergedBytesWindowB   float64           `json:"merged_bytes_window_b_mean"`
		MergedBytesGrowthPct float64           `json:"merged_bytes_growth_pct"`
		Bounded              bool              `json:"bounded"`
		Periods              []churnPeriodStat `json:"periods"`
	} `json:"sustained"`
	Results []benchResult `json:"results"`
	// UnsubScaleRatio is the per-unsubscribe cost at 20k live
	// subscriptions over the cost at 10k: ≈1 means the cost is
	// independent of the live population, so n unsubscribes cost O(n)
	// total; the old compact-on-every-unsubscribe behavior scaled this
	// with the live count (≈2).
	UnsubScaleRatio float64 `json:"unsub_scale_ratio"`
}

// churnPeriodStat is one propagation period of the sustained run.
type churnPeriodStat struct {
	Period           int   `json:"period"`
	Live             int   `json:"live"`
	WireBytes        int64 `json:"wire_bytes"`
	MergedModelBytes int   `json:"merged_model_bytes"`
	Compactions      int64 `json:"compactions"`
}

func noDeliver(subid.ID, *schema.Event) {}

// churnNet couples a live network with a churn stream and the
// handle-to-id mapping between them.
type churnNet struct {
	net          *core.Network
	ch           *workload.Churn
	ids          map[int]subid.ID
	n            int
	subs, unsubs int
}

func newChurnNet(rate int, meanLifetime float64, fullSyncEvery int) (*churnNet, error) {
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		return nil, err
	}
	g := topology.CW24()
	net, err := core.New(core.Config{
		Topology:      g,
		Schema:        gen.Schema(),
		Mode:          interval.Lossy,
		FullSyncEvery: fullSyncEvery,
	})
	if err != nil {
		return nil, err
	}
	ch, err := workload.NewChurn(gen, workload.ChurnConfig{
		Rate:         rate,
		MeanLifetime: meanLifetime,
		Dist:         workload.LifetimeGeometric,
		Seed:         1,
	})
	if err != nil {
		net.Close()
		return nil, err
	}
	return &churnNet{net: net, ch: ch, ids: make(map[int]subid.ID), n: g.Len()}, nil
}

// period applies one period of churn (deaths, then births spread
// round-robin over the brokers) and runs one Algorithm 2 period.
func (cn *churnNet) period() error {
	cp := cn.ch.Period()
	for _, h := range cp.Died {
		if err := cn.net.Unsubscribe(cn.ids[h]); err != nil {
			return err
		}
		delete(cn.ids, h)
		cn.unsubs++
	}
	for _, bs := range cp.Born {
		at := topology.NodeID(bs.Handle % cn.n)
		id, err := cn.net.Subscribe(at, bs.Sub, noDeliver)
		if err != nil {
			return err
		}
		cn.ids[bs.Handle] = id
		cn.subs++
	}
	_, err := cn.net.Propagate()
	return err
}

func (cn *churnNet) mergedModelBytes() int {
	total := 0
	for i := 0; i < cn.n; i++ {
		total += cn.net.Broker(topology.NodeID(i)).Stats().ModelBytes
	}
	return total
}

func (cn *churnNet) compactions() int64 {
	var total int64
	for i := 0; i < cn.n; i++ {
		total += cn.net.Broker(topology.NodeID(i)).Stats().Compactions
	}
	return total
}

// benchUnsubBatch measures the pure unsubscribe path: one op is a timed
// batch of k unsubscribes of propagated subscriptions against a broker
// whose population shrinks from 2k to k during the batch (refilled
// untimed between iterations). Per-unsubscribe cost is ns/op divided by
// k; comparing it across k values exposes any population-proportional
// term — the old compact-on-every-removal made it scale linearly with
// the live count, the amortized compactor keeps it flat.
func benchUnsubBatch(k int) (testing.BenchmarkResult, error) {
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	br, err := broker.New(broker.Config{ID: 0, Schema: gen.Schema(), Mode: interval.Lossy, NumBrokers: 2})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	var fifo []subid.ID
	refill := func() error {
		for len(fifo) < 2*k {
			id, err := br.Subscribe(gen.Subscription(), noDeliver)
			if err != nil {
				return err
			}
			fifo = append(fifo, id)
		}
		br.TakeDelta() // mark everything propagated: the retraction path
		// Lift accumulated id fences so the map stays bounded across b.N.
		br.TakePeriodSummary(true)
		br.FinishFullSync()
		// Pay off the refill's GC debt outside the timed region —
		// otherwise assists proportional to the k subscribes just
		// allocated land inside the unsubscribe measurement.
		runtime.GC()
		return nil
	}
	if err := refill(); err != nil {
		return testing.BenchmarkResult{}, err
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := refill(); err != nil {
				benchErr = err
				b.Fatal(err)
			}
			b.StartTimer()
			for j := 0; j < k; j++ {
				if err := br.Unsubscribe(fifo[j]); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
			fifo = fifo[k:]
		}
	})
	return res, benchErr
}

// runBenchChurn runs the sustained-churn baseline and emits the numbers
// as JSON — to jsonPath if non-empty, else to stdout. This is what CI
// archives and benchcheck gates as BENCH_churn.json.
func runBenchChurn(jsonPath string) error {
	const (
		rate          = 200
		meanLifetime  = 5.0
		periods       = 70
		rampPeriods   = 20 // population plateau: the bounded check starts here
		fullSyncEvery = 10
	)

	cn, err := newChurnNet(rate, meanLifetime, fullSyncEvery)
	if err != nil {
		return err
	}
	defer cn.net.Close()

	var rep churnReport
	rep.Workload.Topology = "cw24"
	rep.Workload.Brokers = cn.n
	rep.Workload.RatePerPeriod = rate
	rep.Workload.MeanLifetimePeriods = meanLifetime
	rep.Workload.Periods = periods
	rep.Workload.FullSyncEvery = fullSyncEvery
	rep.Workload.SteadyStateLive = cn.ch.SteadyStateLive()

	start := time.Now()
	var lastWire int64
	for p := 1; p <= periods; p++ {
		if err := cn.period(); err != nil {
			return err
		}
		wire := cn.net.Stats().Bytes[netsim.KindSummary]
		rep.Sustained.Periods = append(rep.Sustained.Periods, churnPeriodStat{
			Period:           p,
			Live:             cn.ch.Live(),
			WireBytes:        wire - lastWire,
			MergedModelBytes: cn.mergedModelBytes(),
			Compactions:      cn.compactions(),
		})
		lastWire = wire
	}
	elapsed := time.Since(start)
	rep.Sustained.TotalSubscribes = cn.subs
	rep.Sustained.TotalUnsubscribes = cn.unsubs
	rep.Sustained.Compactions = cn.compactions()
	rep.Sustained.SubsPerSecAbsorbed = float64(cn.subs+cn.unsubs) / elapsed.Seconds()
	// The last period (70) is a full sync and the network is idle, so the
	// watchdog's convergence check asserts exact remote counts here.
	rep.Sustained.WatchdogViolations = len(cn.net.CheckInvariants())

	// Bounded steady state: compare the two post-ramp halves of the merged
	// model-byte series. Retractions and resyncs must hold remote state at
	// the live population, so the second half may not drift upward.
	half := (periods - rampPeriods) / 2
	meanOf := func(from, to int) float64 {
		total := 0.0
		for _, st := range rep.Sustained.Periods[from:to] {
			total += float64(st.MergedModelBytes)
		}
		return total / float64(to-from)
	}
	rep.Sustained.MergedBytesWindowA = meanOf(rampPeriods, rampPeriods+half)
	rep.Sustained.MergedBytesWindowB = meanOf(rampPeriods+half, periods)
	if rep.Sustained.MergedBytesWindowA > 0 {
		rep.Sustained.MergedBytesGrowthPct = 100 * (rep.Sustained.MergedBytesWindowB/rep.Sustained.MergedBytesWindowA - 1)
	}
	rep.Sustained.Bounded = rep.Sustained.MergedBytesGrowthPct < 5

	// Scaling proof for the amortized compaction: per-unsubscribe cost
	// must not grow with the live population.
	unsub10k, err := benchUnsubBatch(10_000)
	if err != nil {
		return err
	}
	unsub20k, err := benchUnsubBatch(20_000)
	if err != nil {
		return err
	}

	// One full engine period (deaths + births + Algorithm 2) at steady
	// state, continuing the already-ramped network.
	periodBench := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := cn.period(); err != nil {
				b.Fatal(err)
			}
		}
	})

	record := func(name string, r testing.BenchmarkResult) benchResult {
		return benchResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}
	// One benchUnsubBatch op is a batch of k unsubscribes; normalize to
	// per-unsubscribe cost so the two sizes are directly comparable.
	recordPer := func(name string, r testing.BenchmarkResult, k int) benchResult {
		br := record(name, r)
		br.NsPerOp /= float64(k)
		br.AllocsPerOp /= int64(k)
		br.BytesPerOp /= int64(k)
		return br
	}
	rep.Results = []benchResult{
		recordPer("ChurnUnsubscribe10k", unsub10k, 10_000),
		recordPer("ChurnUnsubscribe20k", unsub20k, 20_000),
		record("ChurnPeriodCW24", periodBench),
	}
	if rep.Results[0].NsPerOp > 0 {
		rep.UnsubScaleRatio = rep.Results[1].NsPerOp / rep.Results[0].NsPerOp
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if jsonPath == "" {
		_, err := os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchchurn: %.0f subs/sec absorbed; merged bytes %.0f → %.0f (%.2f%%, bounded=%v); unsub scale ratio %.2f; wrote %s\n",
		rep.Sustained.SubsPerSecAbsorbed, rep.Sustained.MergedBytesWindowA, rep.Sustained.MergedBytesWindowB,
		rep.Sustained.MergedBytesGrowthPct, rep.Sustained.Bounded, rep.UnsubScaleRatio, jsonPath)
	return nil
}
