package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/propagation"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// propReport is the tracked propagation benchmark baseline: one full
// Algorithm 2 phase over the paper's 24-broker backbone at Sigma=100,
// measured through the clone-free pooled path (wire codec v2) and the
// clone-per-send reference path (wire codec v1).
type propReport struct {
	GeneratedAt string `json:"generated_at"`
	Workload    struct {
		Topology      string `json:"topology"`
		Brokers       int    `json:"brokers"`
		Sigma         int    `json:"sigma"`
		Subscriptions int    `json:"subscriptions"`
	} `json:"workload"`
	// Wire is the total bytes shipped by one propagation phase — every
	// Algorithm 2 send summed — under each codec version.
	Wire struct {
		V1Bytes      int64   `json:"v1_bytes"`
		V2Bytes      int64   `json:"v2_bytes"`
		ReductionPct float64 `json:"reduction_pct"`
	} `json:"wire"`
	// SingleSummary compares the codecs on one broker's Sigma=100 summary
	// (the payload of a first-iteration send).
	SingleSummary struct {
		V1Bytes      int     `json:"v1_bytes"`
		V2Bytes      int     `json:"v2_bytes"`
		ReductionPct float64 `json:"reduction_pct"`
	} `json:"single_summary"`
	Results []benchResult `json:"results"`
	// AllocRatioCloneVsPooled is allocs/op of the clone-per-send reference
	// divided by allocs/op of the pooled clone-free Run.
	AllocRatioCloneVsPooled float64 `json:"alloc_ratio_clone_vs_pooled"`
}

// benchSummaries builds per-broker Sigma-subscription summaries from the
// paper's stock workload (the non-test twin of the propagation package's
// workloadSummaries helper).
func benchSummaries(g *topology.Graph, sigma int) ([]*summary.Summary, error) {
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		return nil, err
	}
	own := make([]*summary.Summary, g.Len())
	for i := range own {
		own[i] = summary.New(gen.Schema(), interval.Lossy)
		for j := 0; j < sigma; j++ {
			id := subid.ID{Broker: subid.BrokerID(i), Local: subid.LocalID(j)}
			if err := own[i].Insert(id, gen.Subscription()); err != nil {
				return nil, err
			}
		}
	}
	return own, nil
}

// runBenchProp benchmarks Algorithm 2 propagation on the Table 2 workload
// (CW24, Sigma=100) and emits the numbers as JSON — to jsonPath if
// non-empty, else to stdout. This is what CI archives as
// BENCH_propagation.json.
func runBenchProp(jsonPath string) error {
	const sigma = 100
	g := topology.CW24()
	cost := propagation.DefaultCostModel()
	own, err := benchSummaries(g, sigma)
	if err != nil {
		return err
	}

	// One phase through each path for the wire-byte totals. The
	// differential test in internal/propagation proves the merged state is
	// byte-identical, so only the codec version separates the two counts.
	pooled, err := propagation.Run(g, own, cost)
	if err != nil {
		return err
	}
	reference, err := propagation.RunReference(g, own, cost)
	if err != nil {
		return err
	}

	record := func(name string, r testing.BenchmarkResult) benchResult {
		return benchResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}

	// Run does not mutate own (copy-on-receive), so each iteration is a
	// fresh full phase over the same inputs.
	runBench := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := propagation.Run(g, own, cost); err != nil {
				b.Fatal(err)
			}
		}
	})
	refBench := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := propagation.RunReference(g, own, cost); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Codec microbenchmarks on one broker's summary — the payload of a
	// first-iteration send.
	one := own[0]
	v1Wire := one.EncodeV1(nil)
	v2Wire := one.Encode(nil)
	s := one.Schema()
	encodeV1 := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = one.EncodeV1(buf[:0])
		}
	})
	encodeV2 := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = one.Encode(buf[:0])
		}
	})
	decodeV1 := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := summary.Decode(s, v1Wire); err != nil {
				b.Fatal(err)
			}
		}
	})
	decodeV2 := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := summary.Decode(s, v2Wire); err != nil {
				b.Fatal(err)
			}
		}
	})

	var rep propReport
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Workload.Topology = "cw24"
	rep.Workload.Brokers = g.Len()
	rep.Workload.Sigma = sigma
	rep.Workload.Subscriptions = g.Len() * sigma
	rep.Wire.V1Bytes = reference.WireBytes
	rep.Wire.V2Bytes = pooled.WireBytes
	if reference.WireBytes > 0 {
		rep.Wire.ReductionPct = 100 * (1 - float64(pooled.WireBytes)/float64(reference.WireBytes))
	}
	rep.SingleSummary.V1Bytes = len(v1Wire)
	rep.SingleSummary.V2Bytes = len(v2Wire)
	if len(v1Wire) > 0 {
		rep.SingleSummary.ReductionPct = 100 * (1 - float64(len(v2Wire))/float64(len(v1Wire)))
	}
	rep.Results = []benchResult{
		record("PropagationRunPooled", runBench),
		record("PropagationCloneReference", refBench),
		record("CodecEncodeV1", encodeV1),
		record("CodecEncodeV2", encodeV2),
		record("CodecDecodeV1", decodeV1),
		record("CodecDecodeV2", decodeV2),
	}
	if a := rep.Results[0].AllocsPerOp; a > 0 {
		rep.AllocRatioCloneVsPooled = float64(rep.Results[1].AllocsPerOp) / float64(a)
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if jsonPath == "" {
		_, err := os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchprop: wire %d B (v2) vs %d B (v1), %.1f%% smaller; allocs/op %d vs %d (%.1fx); wrote %s\n",
		rep.Wire.V2Bytes, rep.Wire.V1Bytes, rep.Wire.ReductionPct,
		rep.Results[0].AllocsPerOp, rep.Results[1].AllocsPerOp,
		rep.AllocRatioCloneVsPooled, jsonPath)
	return nil
}
