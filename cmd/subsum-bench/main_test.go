package main

import "testing"

func TestParseTopology(t *testing.T) {
	g, err := parseTopology("cw24")
	if err != nil || g.Len() != 24 {
		t.Fatalf("cw24: %v %v", g, err)
	}
	g, err = parseTopology("att33")
	if err != nil || g.Len() != 33 {
		t.Fatalf("att33: %v %v", g, err)
	}
	g, err = parseTopology("fig7")
	if err != nil || g.Len() != 13 {
		t.Fatalf("fig7: %v %v", g, err)
	}
	g, err = parseTopology("random:20:5:7")
	if err != nil || g.Len() != 20 || g.NumEdges() != 24 {
		t.Fatalf("random: %v %v", g, err)
	}
	for _, in := range []string{"", "nope", "random:", "random:1:2:3", "random:x:2:3", "random:9:2"} {
		if _, err := parseTopology(in); err == nil {
			t.Errorf("parseTopology(%q) accepted", in)
		}
	}
}
