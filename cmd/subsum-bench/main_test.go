package main

import (
	"strings"
	"testing"

	"github.com/subsum/subsum/internal/scenario"
	"github.com/subsum/subsum/internal/slo"
)

// TestRegistryDrivesUsage pins the satellite contract: every registered
// experiment appears in the generated usage text (so -h can never drift
// from the switch again), names are unique, and every entry is
// runnable.
func TestRegistryDrivesUsage(t *testing.T) {
	usage := experimentUsage()
	seen := map[string]bool{}
	for _, sp := range experimentSpecs {
		if sp.name == "" || sp.name == "all" {
			t.Fatalf("bad experiment name %q", sp.name)
		}
		if seen[sp.name] {
			t.Fatalf("duplicate experiment %q", sp.name)
		}
		seen[sp.name] = true
		if sp.summary == "" {
			t.Errorf("experiment %q has no usage summary", sp.name)
		}
		if sp.run == nil {
			t.Errorf("experiment %q has no runner", sp.name)
		}
		if !strings.Contains(usage, sp.name+" ") && !strings.Contains(usage, sp.name+"\n") {
			t.Errorf("usage text missing experiment %q:\n%s", sp.name, usage)
		}
		if !strings.Contains(usage, sp.summary) {
			t.Errorf("usage text missing summary for %q", sp.name)
		}
	}
	if !strings.Contains(usage, "all ") {
		t.Errorf("usage text missing the all sweep:\n%s", usage)
	}
	// The chaos soak must stay out of the paper-regeneration sweep: it
	// sleeps wall time and exits nonzero on control failure.
	for _, sp := range experimentSpecs {
		if sp.name == "slo" && sp.inAll {
			t.Error("slo experiment must not run under -experiment all")
		}
	}
}

// TestSoakMarkdown renders the soak report from a canned result and
// checks the phase and budget tables.
func TestSoakMarkdown(t *testing.T) {
	rep := sloReport{
		GeneratedAt: "2026-01-01T00:00:00Z",
		Scenario: &scenario.Result{
			Script: "smoke", Topology: "cw24", Brokers: 24, Seed: 431,
			Phases: []scenario.PhaseResult{
				{Name: "baseline", Index: 0, Ticks: 8, BytesPerPeriodMax: 512},
				{
					Name: "partition", Index: 1, Ticks: 8,
					Fault:    scenario.Fault{Kind: scenario.FaultPartition, SideA: []int{0, 1}, SideB: []int{2, 3}},
					Breached: []string{"delivery_loss", "convergence_staleness"},
				},
				{Name: "heal-partition", Index: 2, Ticks: 10, Recovery: true, RecoveryTicks: 3},
			},
			Final: &slo.Report{Verdicts: []slo.Verdict{
				{Name: "delivery_loss", State: slo.StateOK, Op: slo.OpLE, BudgetRemaining: 1},
			}},
			Passed: true,
		},
	}
	md := soakMarkdown(&rep)
	for _, want := range []string{
		"# Chaos soak report — smoke",
		"**PASSED**",
		"partition 2/2",
		"convergence_staleness, delivery_loss",
		"| 2 | heal-partition | 10 | heal | — | 3 |",
		"| delivery_loss | OK |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("soak markdown missing %q:\n%s", want, md)
		}
	}
	fail := rep
	fail.Scenario.Passed = false
	fail.Scenario.ControlErrors = []string{`phase "baseline": unexpected breach`}
	md = soakMarkdown(&fail)
	if !strings.Contains(md, "**FAILED**") || !strings.Contains(md, "unexpected breach") {
		t.Errorf("failed soak markdown lacks control errors:\n%s", md)
	}
}

func TestParseTopology(t *testing.T) {
	g, err := parseTopology("cw24")
	if err != nil || g.Len() != 24 {
		t.Fatalf("cw24: %v %v", g, err)
	}
	g, err = parseTopology("att33")
	if err != nil || g.Len() != 33 {
		t.Fatalf("att33: %v %v", g, err)
	}
	g, err = parseTopology("fig7")
	if err != nil || g.Len() != 13 {
		t.Fatalf("fig7: %v %v", g, err)
	}
	g, err = parseTopology("random:20:5:7")
	if err != nil || g.Len() != 20 || g.NumEdges() != 24 {
		t.Fatalf("random: %v %v", g, err)
	}
	for _, in := range []string{"", "nope", "random:", "random:1:2:3", "random:x:2:3", "random:9:2"} {
		if _, err := parseTopology(in); err == nil {
			t.Errorf("parseTopology(%q) accepted", in)
		}
	}
}
