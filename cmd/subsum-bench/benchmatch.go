package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	subsum "github.com/subsum/subsum"
)

// benchResult is one benchmark line of BENCH_matching.json.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// benchReport is the tracked matching benchmark baseline: the Sigma=100
// workload matched through the legacy map-based path and the pooled
// Matcher, with the headline speedup.
type benchReport struct {
	GeneratedAt string `json:"generated_at"`
	Workload    struct {
		Brokers       int     `json:"brokers"`
		Sigma         int     `json:"sigma"`
		Subscriptions int     `json:"subscriptions"`
		Events        int     `json:"events"`
		HitRate       float64 `json:"hit_rate"`
	} `json:"workload"`
	Results                 []benchResult `json:"results"`
	SpeedupPooledVsMapBased float64       `json:"speedup_pooled_vs_map_based"`
}

// runBenchMatch benchmarks Algorithm 1 on the Sigma=100 workload (the
// paper's 24 brokers at 100 subscriptions each) and emits the numbers as
// JSON — to jsonPath if non-empty, else to stdout. This is what CI
// archives as BENCH_matching.json.
func runBenchMatch(jsonPath string) error {
	const (
		brokers = 24
		sigma   = 100
		nEvents = 256
		hitRate = 0.5
	)
	gen, err := subsum.NewWorkload(subsum.DefaultWorkload())
	if err != nil {
		return err
	}
	sm := subsum.NewSummary(gen.Schema(), subsum.Lossy)
	for i := 0; i < brokers*sigma; i++ {
		id := subsum.SubscriptionID{Broker: subsum.BrokerID(i % 1024), Local: subsum.LocalID(i / 1024)}
		if err := sm.Insert(id, gen.Subscription()); err != nil {
			return err
		}
	}
	events := make([]*subsum.Event, nEvents)
	for i := range events {
		events[i] = gen.Event(hitRate)
	}

	record := func(name string, r testing.BenchmarkResult) benchResult {
		return benchResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}

	mapBased := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sm.MatchKeys(events[i%len(events)])
		}
	})
	pooled := testing.Benchmark(func(b *testing.B) {
		m := sm.NewMatcher()
		for _, ev := range events {
			m.MatchKeys(ev)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.MatchKeys(events[i%len(events)])
		}
	})
	parallel := testing.Benchmark(func(b *testing.B) {
		pool := subsum.NewMatcherPool(sm)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				m := pool.Get()
				m.MatchKeys(events[i%len(events)])
				pool.Put(m)
				i++
			}
		})
	})

	var rep benchReport
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Workload.Brokers = brokers
	rep.Workload.Sigma = sigma
	rep.Workload.Subscriptions = brokers * sigma
	rep.Workload.Events = nEvents
	rep.Workload.HitRate = hitRate
	rep.Results = []benchResult{
		record("MatcherMapBased", mapBased),
		record("MatcherPooled", pooled),
		record("MatcherPooledParallel", parallel),
	}
	if p := rep.Results[1].NsPerOp; p > 0 {
		rep.SpeedupPooledVsMapBased = rep.Results[0].NsPerOp / p
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if jsonPath == "" {
		_, err := os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchmatch: pooled %.0f ns/op vs map-based %.0f ns/op (%.1fx); wrote %s\n",
		rep.Results[1].NsPerOp, rep.Results[0].NsPerOp, rep.SpeedupPooledVsMapBased, jsonPath)
	return nil
}
