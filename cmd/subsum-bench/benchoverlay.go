package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/subsum/subsum/experiments"
)

// overlayBenchRow is one (size, mode) sweep point in the benchcheck wire
// shape: results are matched by name, ns_per_op carries the propagation
// wall time, and the two headline lower-is-better metrics ride in
// bytes_per_period and hops_per_event. The remaining fields are detail
// for humans reading the committed baseline.
type overlayBenchRow struct {
	Name           string  `json:"name"`
	NsPerOp        float64 `json:"ns_per_op"` // one propagation period, wall
	BytesPerPeriod float64 `json:"bytes_per_period"`
	HopsPerEvent   float64 `json:"hops_per_event"`
	Iterations     int     `json:"iterations"` // events routed

	Brokers             int     `json:"brokers"`
	Mode                string  `json:"mode"`
	Groups              int     `json:"groups"`
	IntraBytes          int64   `json:"intra_bytes"`
	DigestBytes         int64   `json:"digest_bytes"` // cross-border share of bytes_per_period
	PeriodHops          int     `json:"period_hops"`
	ForwardHopsPerEvent float64 `json:"forward_hops_per_event"`
	PeakMergedBytes     int     `json:"peak_merged_bytes"`
	Delivered           int     `json:"delivered"`
	Spurious            int     `json:"spurious"`
}

// overlayReport is the BENCH_overlay.json document.
type overlayReport struct {
	GeneratedAt string `json:"generated_at"`
	Config      struct {
		Sizes  []int `json:"sizes"`
		Sigma  int   `json:"sigma"`
		Events int   `json:"events"`
		Seed   int64 `json:"seed"`
	} `json:"config"`
	Results []overlayBenchRow `json:"results"`
}

// runBenchOverlay runs the overlay-scaling sweep (experiments.OverlayScaling,
// which asserts per event that flat and subgrouped routing deliver to the
// same owner-verified broker sets) and writes the report to jsonPath, or
// stdout when empty. sizes overrides the default broker ladder — CI runs a
// reduced ≤128-broker sweep against the committed full-ladder baseline,
// which works because benchcheck only compares names present in both
// reports.
func runBenchOverlay(jsonPath string, sizes []int, workers int, seed int64) error {
	cfg := experiments.DefaultOverlay()
	cfg.Workers = workers
	cfg.Seed = seed
	if len(sizes) > 0 {
		cfg.Sizes = sizes
	}
	rows, err := experiments.OverlayScaling(cfg)
	if err != nil {
		return err
	}

	var rep overlayReport
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Config.Sizes = cfg.Sizes
	rep.Config.Sigma = cfg.Sigma
	rep.Config.Events = cfg.Events
	rep.Config.Seed = cfg.Seed
	for _, r := range rows {
		rep.Results = append(rep.Results, overlayBenchRow{
			Name:                fmt.Sprintf("OverlayPropagation/n=%d/%s", r.Brokers, r.Mode),
			NsPerOp:             float64(r.PropagationNs),
			BytesPerPeriod:      float64(r.BytesPerPeriod),
			HopsPerEvent:        r.HopsPerEvent,
			Iterations:          cfg.Events,
			Brokers:             r.Brokers,
			Mode:                r.Mode,
			Groups:              r.Groups,
			IntraBytes:          r.IntraBytes,
			DigestBytes:         r.DigestBytes,
			PeriodHops:          r.PeriodHops,
			ForwardHopsPerEvent: r.ForwardHopsPerEvent,
			PeakMergedBytes:     r.PeakMergedBytes,
			Delivered:           r.Delivered,
			Spurious:            r.Spurious,
		})
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if jsonPath == "" {
		_, err := os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Printf("benchoverlay: n=%-5d %-10s groups=%-3d bytes/period=%-8.0f hops/event=%-6.2f peak=%dB\n",
			r.Brokers, r.Mode, r.Groups, r.BytesPerPeriod, r.HopsPerEvent, r.PeakMergedBytes)
	}
	fmt.Printf("benchoverlay: wrote %s (%d rows, delivery sets verified identical per event)\n", jsonPath, len(rep.Results))
	return nil
}
