// Command benchcheck compares a freshly generated benchmark report
// against a committed baseline and writes a markdown summary, flagging
// results whose ns/op regressed beyond a threshold. When both reports
// carry allocation data (allocs_per_op / bytes_per_op), those are
// compared too: the pooled matcher and codec paths promise zero
// steady-state allocations, so any allocs/op increase is flagged
// outright — allocation counts are deterministic, unlike wall time.
// It is advisory: the exit status is 0 even when regressions are found
// (shared CI runners are too noisy to gate on), unless -gate is set.
//
// A second mode gates the hot-path zero-allocation property instead:
// -alloczero takes comma-separated benchmark-name patterns, parses
// `go test -bench -benchmem` text output (-benchtext, "-" for stdin),
// and flags any matched benchmark reporting more than 0 allocs/op —
// allocation counts are deterministic, so with -gate this is a hard CI
// failure, not an advisory.
//
// Usage:
//
//	benchcheck -baseline BENCH_matching.json -current /tmp/fresh.json \
//	           [-threshold 10] [-summary "$GITHUB_STEP_SUMMARY"] [-gate]
//	go test -bench=. -benchmem -run=^$ ./... | \
//	  benchcheck -alloczero 'BenchmarkMatcherMatchKeys.*,BenchmarkCreditDelivery' \
//	             -benchtext - -gate
//
// The reports are the JSON files written by subsum-bench: an object
// with a "results" array of {name, ns_per_op, allocs_per_op, ...}.
// Results are matched by name; names present in only one file are
// listed but never flagged. Reports from older tool versions that omit
// the allocation fields simply skip those comparisons.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

type report struct {
	Results []result `json:"results"`
}

// result is one benchmark's numbers. The allocation fields are pointers
// so "the report does not carry them" (old tool version) is
// distinguishable from a genuine zero — zero allocs/op is the headline
// result of the pooled paths and must compare as a real value.
type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp *int64  `json:"allocs_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op"`
	// EventsPerSec is a higher-is-better throughput metric (the live
	// pipeline rows of BENCH_matching.json): a drop beyond the threshold
	// is the regression, a rise is the improvement.
	EventsPerSec *float64 `json:"events_per_sec"`
	// BytesPerPeriod and HopsPerEvent are the overlay-scaling metrics of
	// BENCH_overlay.json: summary traffic per propagation period and
	// mean routing messages per event. Both are lower-is-better and —
	// unlike wall time — deterministic for a given seed, so a rise
	// beyond the threshold is a real algorithmic regression, not runner
	// noise.
	BytesPerPeriod *float64 `json:"bytes_per_period"`
	HopsPerEvent   *float64 `json:"hops_per_event"`
	Iterations     int64    `json:"iterations"`
}

func loadReport(path string) (map[string]result, []string, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]result, len(r.Results))
	order := make([]string, 0, len(r.Results))
	for _, res := range r.Results {
		if _, dup := m[res.Name]; !dup {
			order = append(order, res.Name)
		}
		m[res.Name] = res
	}
	return m, order, nil
}

// row is one comparison line of the summary table: one benchmark, one
// metric (ns/op, allocs/op, or B/op).
type row struct {
	name      string
	metric    string
	base, cur float64
	hasBase   bool
	hasCur    bool
	deltaPct  float64
	status    string
}

func compare(base, cur map[string]result, order []string, thresholdPct float64) (rows []row, regressions int) {
	names := append([]string(nil), order...)
	// Baseline-only names go at the end so disappearing benchmarks are
	// visible too.
	var missing []string
	for name := range base {
		if _, ok := cur[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	names = append(names, missing...)

	for _, name := range names {
		b, inBase := base[name]
		c, inCur := cur[name]
		switch {
		case !inBase:
			rows = append(rows, row{name: name, metric: "ns/op", cur: c.NsPerOp, hasCur: true, status: "new (no baseline)"})
		case !inCur:
			rows = append(rows, row{name: name, metric: "ns/op", base: b.NsPerOp, hasBase: true, status: "missing from current run"})
		default:
			// ns/op: wall time is noisy on shared runners, so only a
			// percentage drift beyond the threshold is called out. Rows
			// that carry events_per_sec skip this — their ns_per_op is its
			// exact reciprocal, and one verdict per number is enough. Rows
			// that carry the deterministic overlay metrics skip it too:
			// their ns_per_op is a single propagation period's wall time,
			// far too short to time stably, and the seeded bytes/hops
			// numbers below are the real verdict.
			overlayRow := b.BytesPerPeriod != nil && c.BytesPerPeriod != nil
			if (b.EventsPerSec == nil || c.EventsPerSec == nil) && !overlayRow {
				r := row{name: name, metric: "ns/op", base: b.NsPerOp, cur: c.NsPerOp, hasBase: true, hasCur: true}
				if b.NsPerOp > 0 {
					r.deltaPct = (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
				}
				switch {
				case r.deltaPct > thresholdPct:
					r.status = fmt.Sprintf("REGRESSION (>%g%%)", thresholdPct)
					regressions++
				case r.deltaPct < -thresholdPct:
					r.status = "improved"
				default:
					r.status = "ok"
				}
				rows = append(rows, r)
			}

			// allocs/op: deterministic, so any increase is a regression —
			// a pooled path that starts allocating again has lost the very
			// property its benchmark exists to defend.
			if b.AllocsPerOp != nil && c.AllocsPerOp != nil {
				ar := row{name: name, metric: "allocs/op", base: float64(*b.AllocsPerOp), cur: float64(*c.AllocsPerOp), hasBase: true, hasCur: true}
				if ar.base > 0 {
					ar.deltaPct = (ar.cur - ar.base) / ar.base * 100
				}
				switch {
				case ar.cur > ar.base:
					ar.status = "REGRESSION (allocs increased)"
					regressions++
				case ar.cur < ar.base:
					ar.status = "improved"
				default:
					ar.status = "ok"
				}
				rows = append(rows, ar)
			}

			// events/sec: higher is better, so the regression sign flips —
			// a throughput drop beyond the threshold is flagged.
			if b.EventsPerSec != nil && c.EventsPerSec != nil {
				er := row{name: name, metric: "events/sec", base: *b.EventsPerSec, cur: *c.EventsPerSec, hasBase: true, hasCur: true}
				if er.base > 0 {
					er.deltaPct = (er.cur - er.base) / er.base * 100
				}
				switch {
				case er.deltaPct < -thresholdPct:
					er.status = fmt.Sprintf("REGRESSION (throughput down >%g%%)", thresholdPct)
					regressions++
				case er.deltaPct > thresholdPct:
					er.status = "improved"
				default:
					er.status = "ok"
				}
				rows = append(rows, er)
			}

			// bytes/period and hops/event: lower is better, threshold-gated
			// like ns/op but trustworthy — the overlay sweep is seeded, so
			// drift means the propagation or routing algorithm changed.
			for _, m := range []struct {
				metric  string
				basePtr *float64
				curPtr  *float64
			}{
				{"bytes/period", b.BytesPerPeriod, c.BytesPerPeriod},
				{"hops/event", b.HopsPerEvent, c.HopsPerEvent},
			} {
				if m.basePtr == nil || m.curPtr == nil {
					continue
				}
				lr := row{name: name, metric: m.metric, base: *m.basePtr, cur: *m.curPtr, hasBase: true, hasCur: true}
				if lr.base > 0 {
					lr.deltaPct = (lr.cur - lr.base) / lr.base * 100
				}
				switch {
				case lr.deltaPct > thresholdPct:
					lr.status = fmt.Sprintf("REGRESSION (>%g%%)", thresholdPct)
					regressions++
				case lr.deltaPct < -thresholdPct:
					lr.status = "improved"
				default:
					lr.status = "ok"
				}
				rows = append(rows, lr)
			}

			// B/op: allocation bytes are near-deterministic but can wobble
			// with map growth patterns, so the percentage threshold applies.
			if b.BytesPerOp != nil && c.BytesPerOp != nil {
				br := row{name: name, metric: "B/op", base: float64(*b.BytesPerOp), cur: float64(*c.BytesPerOp), hasBase: true, hasCur: true}
				switch {
				case br.base == 0 && br.cur > 0:
					br.status = "REGRESSION (was 0 B/op)"
					regressions++
				case br.base == 0:
					br.status = "ok"
				default:
					br.deltaPct = (br.cur - br.base) / br.base * 100
					switch {
					case br.deltaPct > thresholdPct:
						br.status = fmt.Sprintf("REGRESSION (>%g%%)", thresholdPct)
						regressions++
					case br.deltaPct < -thresholdPct:
						br.status = "improved"
					default:
						br.status = "ok"
					}
				}
				rows = append(rows, br)
			}
		}
	}
	return rows, regressions
}

func writeMarkdown(w io.Writer, title string, rows []row, regressions int) {
	fmt.Fprintf(w, "### benchcheck: %s\n\n", title)
	if regressions > 0 {
		fmt.Fprintf(w, "**%d result(s) regressed** — advisory only; shared runners are noisy, re-run before acting (allocs/op is deterministic and worth believing).\n\n", regressions)
	} else {
		fmt.Fprintf(w, "No regressions above threshold.\n\n")
	}
	fmt.Fprintf(w, "| benchmark | metric | baseline | current | delta | status |\n")
	fmt.Fprintf(w, "|---|---|---:|---:|---:|---|\n")
	for _, r := range rows {
		baseS, curS, deltaS := "—", "—", "—"
		if r.hasBase {
			baseS = fmt.Sprintf("%.0f", r.base)
		}
		if r.hasCur {
			curS = fmt.Sprintf("%.0f", r.cur)
		}
		if r.hasBase && r.hasCur {
			deltaS = fmt.Sprintf("%+.1f%%", r.deltaPct)
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s |\n", r.name, r.metric, baseS, curS, deltaS, r.status)
	}
	fmt.Fprintln(w)
}

func main() {
	var (
		baseline  = flag.String("baseline", "", "committed baseline report (required)")
		current   = flag.String("current", "", "freshly generated report (required)")
		threshold = flag.Float64("threshold", 10, "ns/op and B/op regression percentage to flag (allocs/op flags any increase)")
		summary   = flag.String("summary", "", "append the markdown table to this file (e.g. $GITHUB_STEP_SUMMARY); stdout if empty")
		gate      = flag.Bool("gate", false, "exit nonzero when regressions are found (default: advisory)")
		alloczero = flag.String("alloczero", "", "comma-separated benchmark name patterns that must report 0 allocs/op (enables the zero-alloc gate mode)")
		benchtext = flag.String("benchtext", "-", "go test -bench -benchmem output to parse in zero-alloc mode (\"-\" = stdin)")
	)
	flag.Parse()

	openSummary := func() io.Writer {
		if *summary == "" {
			return os.Stdout
		}
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		return f
	}

	if *alloczero != "" {
		in := io.Reader(os.Stdin)
		if *benchtext != "-" {
			f, err := os.Open(*benchtext)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchcheck:", err)
				os.Exit(2)
			}
			defer f.Close()
			in = f
		}
		results, err := parseBenchText(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		checked, violations, err := checkAllocZero(results, *alloczero)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		writeAllocMarkdown(openSummary(), checked, violations)
		if *gate && len(violations) > 0 {
			os.Exit(1)
		}
		return
	}

	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}

	base, _, err := loadReport(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	cur, order, err := loadReport(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}

	rows, regressions := compare(base, cur, order, *threshold)

	writeMarkdown(openSummary(), fmt.Sprintf("%s vs %s", *current, *baseline), rows, regressions)

	if *gate && regressions > 0 {
		os.Exit(1)
	}
}
