package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// statusKey indexes compare output by "name metric" so tests can assert
// on individual comparison rows.
func statusKey(rows []row) map[string]string {
	m := map[string]string{}
	for _, r := range rows {
		m[r.name+" "+r.metric] = r.status
	}
	return m
}

func TestCompareFlagsRegressions(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", `{"results":[
		{"name":"A","ns_per_op":100},
		{"name":"B","ns_per_op":100},
		{"name":"C","ns_per_op":100},
		{"name":"Gone","ns_per_op":50}]}`)
	cur := writeReport(t, dir, "cur.json", `{"results":[
		{"name":"A","ns_per_op":105},
		{"name":"B","ns_per_op":125},
		{"name":"C","ns_per_op":80},
		{"name":"New","ns_per_op":10}]}`)

	b, _, err := loadReport(base)
	if err != nil {
		t.Fatal(err)
	}
	c, order, err := loadReport(cur)
	if err != nil {
		t.Fatal(err)
	}
	rows, regressions := compare(b, c, order, 10)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (B)", regressions)
	}
	status := statusKey(rows)
	if status["A ns/op"] != "ok" {
		t.Errorf("A: %q", status["A ns/op"])
	}
	if !strings.HasPrefix(status["B ns/op"], "REGRESSION") {
		t.Errorf("B: %q", status["B ns/op"])
	}
	if status["C ns/op"] != "improved" {
		t.Errorf("C: %q", status["C ns/op"])
	}
	if status["New ns/op"] != "new (no baseline)" {
		t.Errorf("New: %q", status["New ns/op"])
	}
	if status["Gone ns/op"] != "missing from current run" {
		t.Errorf("Gone: %q", status["Gone ns/op"])
	}
	// Neither report carries allocation fields, so no allocs/B rows.
	for key := range status {
		if strings.Contains(key, "allocs/op") || strings.Contains(key, "B/op") {
			t.Errorf("unexpected allocation row %q without allocation data", key)
		}
	}

	var sb strings.Builder
	writeMarkdown(&sb, "test", rows, regressions)
	md := sb.String()
	if !strings.Contains(md, "| B | ns/op | 100 | 125 | +25.0% | REGRESSION") {
		t.Errorf("markdown missing regression row:\n%s", md)
	}
	if !strings.Contains(md, "**1 result(s) regressed**") {
		t.Errorf("markdown missing headline:\n%s", md)
	}
}

// TestCompareFlagsAllocationRegressions is the satellite regression
// test: a pooled benchmark that starts allocating again must be flagged
// even when its ns/op stays flat, and B/op growth past the threshold is
// flagged independently.
func TestCompareFlagsAllocationRegressions(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", `{"results":[
		{"name":"Pooled","ns_per_op":100,"allocs_per_op":0,"bytes_per_op":0},
		{"name":"Mapped","ns_per_op":100,"allocs_per_op":27,"bytes_per_op":1000},
		{"name":"Better","ns_per_op":100,"allocs_per_op":5,"bytes_per_op":1000}]}`)
	cur := writeReport(t, dir, "cur.json", `{"results":[
		{"name":"Pooled","ns_per_op":100,"allocs_per_op":2,"bytes_per_op":64},
		{"name":"Mapped","ns_per_op":100,"allocs_per_op":27,"bytes_per_op":1200},
		{"name":"Better","ns_per_op":100,"allocs_per_op":3,"bytes_per_op":990}]}`)

	b, _, err := loadReport(base)
	if err != nil {
		t.Fatal(err)
	}
	c, order, err := loadReport(cur)
	if err != nil {
		t.Fatal(err)
	}
	rows, regressions := compare(b, c, order, 10)
	status := statusKey(rows)
	// Pooled: 0→2 allocs and 0→64 B are both regressions; ns/op is flat.
	if status["Pooled ns/op"] != "ok" {
		t.Errorf("Pooled ns/op: %q", status["Pooled ns/op"])
	}
	if status["Pooled allocs/op"] != "REGRESSION (allocs increased)" {
		t.Errorf("Pooled allocs/op: %q", status["Pooled allocs/op"])
	}
	if status["Pooled B/op"] != "REGRESSION (was 0 B/op)" {
		t.Errorf("Pooled B/op: %q", status["Pooled B/op"])
	}
	// Mapped: allocs unchanged (ok), bytes +20% past the 10% threshold.
	if status["Mapped allocs/op"] != "ok" {
		t.Errorf("Mapped allocs/op: %q", status["Mapped allocs/op"])
	}
	if !strings.HasPrefix(status["Mapped B/op"], "REGRESSION") {
		t.Errorf("Mapped B/op: %q", status["Mapped B/op"])
	}
	// Better: allocs dropped (improved), bytes -1% within threshold (ok).
	if status["Better allocs/op"] != "improved" {
		t.Errorf("Better allocs/op: %q", status["Better allocs/op"])
	}
	if status["Better B/op"] != "ok" {
		t.Errorf("Better B/op: %q", status["Better B/op"])
	}
	if regressions != 3 {
		t.Fatalf("regressions = %d, want 3", regressions)
	}

	var sb strings.Builder
	writeMarkdown(&sb, "allocs", rows, regressions)
	md := sb.String()
	if !strings.Contains(md, "| Pooled | allocs/op | 0 | 2 | +0.0% | REGRESSION (allocs increased)") {
		t.Errorf("markdown missing alloc regression row:\n%s", md)
	}
}

// TestCompareSkipsAllocsWhenOneSideLacksThem covers the mixed-version
// case: a baseline written before allocation tracking compares ns/op
// only, without phantom zero-alloc rows.
func TestCompareSkipsAllocsWhenOneSideLacksThem(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", `{"results":[{"name":"A","ns_per_op":100}]}`)
	cur := writeReport(t, dir, "cur.json", `{"results":[{"name":"A","ns_per_op":100,"allocs_per_op":9,"bytes_per_op":128}]}`)

	b, _, err := loadReport(base)
	if err != nil {
		t.Fatal(err)
	}
	c, order, err := loadReport(cur)
	if err != nil {
		t.Fatal(err)
	}
	rows, regressions := compare(b, c, order, 10)
	if regressions != 0 {
		t.Fatalf("regressions = %d, want 0", regressions)
	}
	if len(rows) != 1 || rows[0].metric != "ns/op" {
		t.Fatalf("rows = %+v, want single ns/op row", rows)
	}
}

func TestCompareFlagsThroughputRegressions(t *testing.T) {
	// events_per_sec is higher-is-better: a drop beyond the threshold is
	// the regression, a rise the improvement, and rows that carry it skip
	// the redundant reciprocal ns/op comparison.
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", `{"results":[
		{"name":"TputDown","ns_per_op":1000,"events_per_sec":1000000},
		{"name":"TputUp","ns_per_op":1000,"events_per_sec":1000000},
		{"name":"TputFlat","ns_per_op":1000,"events_per_sec":1000000}]}`)
	cur := writeReport(t, dir, "cur.json", `{"results":[
		{"name":"TputDown","ns_per_op":1250,"events_per_sec":800000},
		{"name":"TputUp","ns_per_op":800,"events_per_sec":1250000},
		{"name":"TputFlat","ns_per_op":1010,"events_per_sec":990000}]}`)

	b, _, err := loadReport(base)
	if err != nil {
		t.Fatal(err)
	}
	c, order, err := loadReport(cur)
	if err != nil {
		t.Fatal(err)
	}
	rows, regressions := compare(b, c, order, 10)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (TputDown)", regressions)
	}
	status := statusKey(rows)
	if !strings.HasPrefix(status["TputDown events/sec"], "REGRESSION") {
		t.Errorf("TputDown: %q", status["TputDown events/sec"])
	}
	if status["TputUp events/sec"] != "improved" {
		t.Errorf("TputUp: %q", status["TputUp events/sec"])
	}
	if status["TputFlat events/sec"] != "ok" {
		t.Errorf("TputFlat: %q", status["TputFlat events/sec"])
	}
	for _, r := range rows {
		if r.metric == "ns/op" {
			t.Fatalf("throughput row %q produced a redundant ns/op comparison", r.name)
		}
	}
}

func TestCompareFlagsOverlayRegressions(t *testing.T) {
	// bytes_per_period and hops_per_event are lower-is-better like ns/op
	// but seeded-deterministic: a rise past the threshold is a real
	// algorithmic regression. Rows lacking either field on one side skip
	// that comparison (mixed-version reports).
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", `{"results":[
		{"name":"BytesUp","ns_per_op":100,"bytes_per_period":100000,"hops_per_event":20},
		{"name":"HopsDown","ns_per_op":100,"bytes_per_period":100000,"hops_per_event":20},
		{"name":"Flat","ns_per_op":100,"bytes_per_period":100000,"hops_per_event":20},
		{"name":"OldReport","ns_per_op":100}]}`)
	cur := writeReport(t, dir, "cur.json", `{"results":[
		{"name":"BytesUp","ns_per_op":100,"bytes_per_period":125000,"hops_per_event":21},
		{"name":"HopsDown","ns_per_op":100,"bytes_per_period":99000,"hops_per_event":12},
		{"name":"Flat","ns_per_op":100,"bytes_per_period":101000,"hops_per_event":20},
		{"name":"OldReport","ns_per_op":100,"bytes_per_period":5,"hops_per_event":5}]}`)

	b, _, err := loadReport(base)
	if err != nil {
		t.Fatal(err)
	}
	c, order, err := loadReport(cur)
	if err != nil {
		t.Fatal(err)
	}
	rows, regressions := compare(b, c, order, 10)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (BytesUp bytes/period)", regressions)
	}
	status := statusKey(rows)
	if !strings.HasPrefix(status["BytesUp bytes/period"], "REGRESSION") {
		t.Errorf("BytesUp bytes/period: %q", status["BytesUp bytes/period"])
	}
	if status["BytesUp hops/event"] != "ok" {
		t.Errorf("BytesUp hops/event: %q", status["BytesUp hops/event"])
	}
	if status["HopsDown bytes/period"] != "ok" {
		t.Errorf("HopsDown bytes/period: %q", status["HopsDown bytes/period"])
	}
	if status["HopsDown hops/event"] != "improved" {
		t.Errorf("HopsDown hops/event: %q", status["HopsDown hops/event"])
	}
	if status["Flat bytes/period"] != "ok" || status["Flat hops/event"] != "ok" {
		t.Errorf("Flat: %q / %q", status["Flat bytes/period"], status["Flat hops/event"])
	}
	// Baseline lacks the overlay fields for OldReport: no phantom rows.
	if _, ok := status["OldReport bytes/period"]; ok {
		t.Error("OldReport produced a bytes/period row without baseline data")
	}
	if _, ok := status["OldReport hops/event"]; ok {
		t.Error("OldReport produced a hops/event row without baseline data")
	}
	// Overlay rows skip the ns/op comparison — a single propagation
	// period's wall time is too short to time stably, and the seeded
	// metrics are the verdict. OldReport (no overlay data in the
	// baseline) still gets one.
	for _, name := range []string{"BytesUp", "HopsDown", "Flat"} {
		if _, ok := status[name+" ns/op"]; ok {
			t.Errorf("%s produced a noisy ns/op row despite carrying overlay metrics", name)
		}
	}
	if status["OldReport ns/op"] != "ok" {
		t.Errorf("OldReport ns/op: %q", status["OldReport ns/op"])
	}
}

func TestCompareAgainstRealBaselines(t *testing.T) {
	// The committed reports must parse and compare clean against
	// themselves (zero delta everywhere). They carry allocation data, so
	// the self-compare must produce allocs/op and B/op rows too.
	for _, path := range []string{"../../BENCH_matching.json", "../../BENCH_propagation.json"} {
		m, order, err := loadReport(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(m) == 0 {
			t.Fatalf("%s: no results", path)
		}
		rows, regressions := compare(m, m, order, 10)
		if regressions != 0 {
			t.Fatalf("%s vs itself: %d regressions", path, regressions)
		}
		metrics := map[string]int{}
		for _, r := range rows {
			if r.status != "ok" || r.deltaPct != 0 {
				t.Fatalf("%s: self-compare row %+v", path, r)
			}
			metrics[r.metric]++
		}
		if metrics["allocs/op"] == 0 || metrics["B/op"] == 0 {
			t.Fatalf("%s: no allocation rows in self-compare (%v)", path, metrics)
		}
	}
}

// TestAllocZeroGate covers the zero-alloc mode end to end on canned
// go test -bench output: matched clean benchmarks pass, an allocating
// match is a violation, and an unmatched pattern is one too.
func TestAllocZeroGate(t *testing.T) {
	text := `goos: linux
goarch: amd64
pkg: github.com/subsum/subsum/internal/summary
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMatcherMatchKeys-8             	    1000	      4646 ns/op	       0 B/op	       0 allocs/op
BenchmarkMatcherMatchKeysInstrumented-8 	    1000	      6631 ns/op	       0 B/op	       0 allocs/op
BenchmarkCreditDelivery-8               	   10000	        33.53 ns/op	       0 B/op	       0 allocs/op
BenchmarkDeliverExactPruned-8           	     200	    636487 ns/op	    7691 B/op	       9 allocs/op
BenchmarkNoMemColumns-8                 	     500	      1000 ns/op
PASS
ok  	github.com/subsum/subsum/internal/summary	0.027s
`
	results, err := parseBenchText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	// The line without -benchmem columns is skipped, the rest parse.
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(results), results)
	}
	if results[3].name != "BenchmarkDeliverExactPruned" || results[3].allocsOp != 9 || results[3].bytesOp != 7691 {
		t.Fatalf("pruned row parsed as %+v", results[3])
	}

	// Clean gate: both matcher benchmarks and the credit path pass.
	checked, violations, err := checkAllocZero(results,
		"BenchmarkMatcherMatchKeys.*, BenchmarkCreditDelivery")
	if err != nil {
		t.Fatal(err)
	}
	if len(checked) != 3 || len(violations) != 0 {
		t.Fatalf("clean gate: checked %d, violations %+v", len(checked), violations)
	}

	// An allocating benchmark caught by the pattern is a violation.
	_, violations, err = checkAllocZero(results, "BenchmarkDeliverExact.*")
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || violations[0].name != "BenchmarkDeliverExactPruned" {
		t.Fatalf("alloc violation = %+v", violations)
	}

	// A pattern matching nothing is a violation: a renamed benchmark
	// must not silently drop out of the gate.
	_, violations, err = checkAllocZero(results, "BenchmarkRenamedAway")
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || violations[0].name != "BenchmarkRenamedAway" {
		t.Fatalf("unmatched-pattern violation = %+v", violations)
	}

	// The name is anchored: a prefix pattern without .* matches nothing.
	_, violations, _ = checkAllocZero(results, "BenchmarkMatcher")
	if len(violations) != 1 {
		t.Fatalf("anchoring: violations = %+v", violations)
	}

	// Markdown covers both violation shapes.
	var buf bytes.Buffer
	checked, violations, _ = checkAllocZero(results, "BenchmarkDeliverExact.*,BenchmarkRenamedAway")
	writeAllocMarkdown(&buf, checked, violations)
	out := buf.String()
	for _, want := range []string{
		"zero-alloc gate",
		"2 violation(s)",
		"9 allocs/op (7691 B/op), want 0",
		"no benchmark matched this pattern",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}

	// A malformed pattern errors instead of silently gating nothing.
	if _, _, err := checkAllocZero(results, "Benchmark["); err == nil {
		t.Fatal("invalid pattern accepted")
	}
}
