package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareFlagsRegressions(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", `{"results":[
		{"name":"A","ns_per_op":100},
		{"name":"B","ns_per_op":100},
		{"name":"C","ns_per_op":100},
		{"name":"Gone","ns_per_op":50}]}`)
	cur := writeReport(t, dir, "cur.json", `{"results":[
		{"name":"A","ns_per_op":105},
		{"name":"B","ns_per_op":125},
		{"name":"C","ns_per_op":80},
		{"name":"New","ns_per_op":10}]}`)

	b, _, err := loadReport(base)
	if err != nil {
		t.Fatal(err)
	}
	c, order, err := loadReport(cur)
	if err != nil {
		t.Fatal(err)
	}
	rows, regressions := compare(b, c, order, 10)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (B)", regressions)
	}
	status := map[string]string{}
	for _, r := range rows {
		status[r.name] = r.status
	}
	if status["A"] != "ok" {
		t.Errorf("A: %q", status["A"])
	}
	if !strings.HasPrefix(status["B"], "REGRESSION") {
		t.Errorf("B: %q", status["B"])
	}
	if status["C"] != "improved" {
		t.Errorf("C: %q", status["C"])
	}
	if status["New"] != "new (no baseline)" {
		t.Errorf("New: %q", status["New"])
	}
	if status["Gone"] != "missing from current run" {
		t.Errorf("Gone: %q", status["Gone"])
	}

	var sb strings.Builder
	writeMarkdown(&sb, "test", rows, regressions)
	md := sb.String()
	if !strings.Contains(md, "| B | 100 | 125 | +25.0% | REGRESSION") {
		t.Errorf("markdown missing regression row:\n%s", md)
	}
	if !strings.Contains(md, "**1 result(s) regressed**") {
		t.Errorf("markdown missing headline:\n%s", md)
	}
}

func TestCompareAgainstRealBaselines(t *testing.T) {
	// The committed reports must parse and compare clean against
	// themselves (zero delta everywhere).
	for _, path := range []string{"../../BENCH_matching.json", "../../BENCH_propagation.json"} {
		m, order, err := loadReport(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(m) == 0 {
			t.Fatalf("%s: no results", path)
		}
		rows, regressions := compare(m, m, order, 10)
		if regressions != 0 {
			t.Fatalf("%s vs itself: %d regressions", path, regressions)
		}
		for _, r := range rows {
			if r.status != "ok" || r.deltaPct != 0 {
				t.Fatalf("%s: self-compare row %+v", path, r)
			}
		}
	}
}
