// Zero-alloc gate: benchcheck's second mode. Instead of comparing two
// JSON reports, -alloczero parses the text output of `go test -bench`
// and asserts that every benchmark matching the given patterns reports
// exactly 0 allocs/op. The matcher, codec, and attribution hot paths
// promise allocation-free steady state by design; unlike wall time,
// allocs/op is deterministic, so this gate is exact — no thresholds, no
// baselines to refresh, and a violation is a real regression.
//
// A pattern that matches no benchmark is itself a violation: a renamed
// or deleted benchmark must not let the property it defended silently
// lapse.
package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches one result line of `go test -bench` output with
// allocation counts (the -benchmem columns), e.g.
//
//	BenchmarkMatcherMatchKeys-8   1000   4646 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+[\d.]+ ns/op(?:\s+([\d.]+) MB/s)?\s+(\d+) B/op\s+(\d+) allocs/op`)

// allocResult is one parsed benchmark line.
type allocResult struct {
	name     string
	bytesOp  int64
	allocsOp int64
}

// parseBenchText extracts benchmark results (with allocation columns)
// from go test -bench output. Lines without -benchmem columns are
// skipped: a gated benchmark must run with allocation reporting on.
func parseBenchText(r io.Reader) ([]allocResult, error) {
	var out []allocResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		bytesOp, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parse B/op in %q: %w", sc.Text(), err)
		}
		allocsOp, err := strconv.ParseInt(m[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parse allocs/op in %q: %w", sc.Text(), err)
		}
		out = append(out, allocResult{name: m[1], bytesOp: bytesOp, allocsOp: allocsOp})
	}
	return out, sc.Err()
}

// allocViolation is one gate failure: either a matched benchmark that
// allocates, or a pattern nothing matched.
type allocViolation struct {
	name   string
	detail string
}

// checkAllocZero evaluates the comma-separated patterns (anchored
// regexps over the benchmark name without the -GOMAXPROCS suffix)
// against the parsed results.
func checkAllocZero(results []allocResult, patterns string) (checked []allocResult, violations []allocViolation, err error) {
	for _, pat := range strings.Split(patterns, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		re, err := regexp.Compile("^(?:" + pat + ")$")
		if err != nil {
			return nil, nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		matched := false
		for _, r := range results {
			if !re.MatchString(r.name) {
				continue
			}
			matched = true
			checked = append(checked, r)
			if r.allocsOp != 0 {
				violations = append(violations, allocViolation{
					name:   r.name,
					detail: fmt.Sprintf("%d allocs/op (%d B/op), want 0", r.allocsOp, r.bytesOp),
				})
			}
		}
		if !matched {
			violations = append(violations, allocViolation{
				name:   pat,
				detail: "no benchmark matched this pattern (renamed or not run?)",
			})
		}
	}
	return checked, violations, nil
}

// writeAllocMarkdown renders the gate outcome as a step-summary table.
func writeAllocMarkdown(w io.Writer, checked []allocResult, violations []allocViolation) {
	fmt.Fprintf(w, "### benchcheck: zero-alloc gate\n\n")
	if len(violations) == 0 {
		fmt.Fprintf(w, "All %d gated benchmark(s) report 0 allocs/op.\n\n", len(checked))
	} else {
		fmt.Fprintf(w, "**%d violation(s)** — the hot-path zero-allocation property regressed.\n\n", len(violations))
	}
	fmt.Fprintf(w, "| benchmark | allocs/op | B/op | status |\n")
	fmt.Fprintf(w, "|---|---:|---:|---|\n")
	flagged := make(map[string]string, len(violations))
	for _, v := range violations {
		flagged[v.name] = v.detail
	}
	for _, r := range checked {
		status := "ok"
		if d, bad := flagged[r.name]; bad {
			status = "**VIOLATION** — " + d
		}
		fmt.Fprintf(w, "| %s | %d | %d | %s |\n", r.name, r.allocsOp, r.bytesOp, status)
	}
	shown := make(map[string]bool, len(checked))
	for _, r := range checked {
		shown[r.name] = true
	}
	for _, v := range violations {
		if !shown[v.name] { // unmatched pattern: no result row to annotate
			fmt.Fprintf(w, "| %s | — | — | **VIOLATION** — %s |\n", v.name, v.detail)
		}
	}
	fmt.Fprintln(w)
}
