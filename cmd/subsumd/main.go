// Command subsumd runs a subscription-summarization broker network and
// serves it to TCP clients over the line-delimited JSON protocol of
// internal/wire.
//
// Usage:
//
//	subsumd -addr 127.0.0.1:7070 \
//	        -schema "exchange:string,symbol:string,price:float,volume:int" \
//	        -topology cw24 \
//	        -propagate-every 5s
//
// Clients send one JSON object per line:
//
//	{"op":"subscribe","broker":3,"expr":"symbol = OTE && price < 8.70"}
//	{"op":"publish","broker":0,"event":"symbol=OTE price=8.40"}
//	{"op":"propagate"}
//	{"op":"stats"}
//
// and receive replies plus pushed {"type":"delivery",...} lines for their
// subscriptions. Try it interactively with `nc`.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/subsum/subsum/internal/broker"
	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		schemaStr = flag.String("schema", "exchange:string,symbol:string,when:date,price:float,volume:int,high:float,low:float",
			"comma-separated name:type attribute list (types: string,int,float,date)")
		topoName = flag.String("topology", "cw24", "cw24, fig7, or ring:<n>")
		every    = flag.Duration("propagate-every", 5*time.Second, "summary propagation period (0 disables)")
		fullSync = flag.Int("full-sync-every", 0, "ship the full merged summary every k-th propagation period instead of the delta (0 disables; recovers coverage lost to message loss)")
		exact    = flag.Bool("exact", false, "use exact AACS equality handling instead of the paper's lossy folding")
		snapshot = flag.String("snapshot", "", "path to write a snapshot of all subscriptions on shutdown (and load on startup if present)")
	)
	flag.Parse()
	log.SetPrefix("subsumd: ")
	log.SetFlags(log.LstdFlags)

	s, err := parseSchema(*schemaStr)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := parseTopology(*topoName)
	if err != nil {
		log.Fatal(err)
	}
	mode := interval.Lossy
	if *exact {
		mode = interval.Exact
	}
	var network *core.Network
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			// Restored subscriptions have no connected consumer; they are
			// matched and counted but delivered nowhere until a client
			// re-subscribes. Operators typically pair snapshots with
			// durable consumer queues; this daemon logs instead.
			network, err = core.LoadSnapshot(f, core.Config{Topology: topo, Mode: mode, FullSyncEvery: *fullSync},
				func(id subid.ID, sub *schema.Subscription) broker.DeliveryFunc {
					return func(id subid.ID, ev *schema.Event) {
						log.Printf("delivery for restored %v: %s", id, ev.Format(s))
					}
				})
			f.Close()
			if err != nil {
				log.Fatalf("loading snapshot %s: %v", *snapshot, err)
			}
			log.Printf("restored snapshot from %s", *snapshot)
			// The snapshot's schema is authoritative for the restored
			// network; the -schema flag is ignored in that case.
			s = network.Schema()
			if _, err := network.Propagate(); err != nil {
				log.Fatalf("rebuilding summaries: %v", err)
			}
		}
	}
	if network == nil {
		var err error
		network, err = core.New(core.Config{Topology: topo, Schema: s, Mode: mode, FullSyncEvery: *fullSync})
		if err != nil {
			log.Fatal(err)
		}
	}
	defer network.Close()

	srv := wire.NewServer(network, s)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("listening on %s — %s, schema %s", bound, topo, s)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *every > 0 {
		ticker := time.NewTicker(*every)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				hops, err := network.Propagate()
				if err != nil {
					log.Printf("propagation failed: %v", err)
					continue
				}
				if hops > 0 {
					log.Printf("propagation period: %d summary hops", hops)
				}
			}
		}()
	}

	<-stop
	if *snapshot != "" {
		f, err := os.Create(*snapshot)
		if err != nil {
			log.Printf("snapshot: %v", err)
		} else {
			if err := network.SaveSnapshot(f); err != nil {
				log.Printf("snapshot: %v", err)
			}
			f.Close()
			log.Printf("snapshot written to %s", *snapshot)
		}
	}
	log.Print("shutting down")
}

func parseSchema(spec string) (*schema.Schema, error) {
	var attrs []schema.Attribute
	for _, tok := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(tok), ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad attribute %q (want name:type)", tok)
		}
		t, err := schema.ParseType(parts[1])
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, schema.Attribute{Name: parts[0], Type: t})
	}
	return schema.New(attrs...)
}

func parseTopology(name string) (*topology.Graph, error) {
	switch {
	case name == "cw24":
		return topology.CW24(), nil
	case name == "fig7":
		return topology.Figure7Tree(), nil
	case strings.HasPrefix(name, "ring:"):
		var n int
		if _, err := fmt.Sscanf(name, "ring:%d", &n); err != nil || n < 3 {
			return nil, fmt.Errorf("bad ring spec %q", name)
		}
		return topology.Ring(n), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}
