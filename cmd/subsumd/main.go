// Command subsumd runs a subscription-summarization broker network and
// serves it to TCP clients over the line-delimited JSON protocol of
// internal/wire.
//
// Usage:
//
//	subsumd -addr 127.0.0.1:7070 \
//	        -schema "exchange:string,symbol:string,price:float,volume:int" \
//	        -topology cw24 \
//	        -propagate-every 5s \
//	        -http 127.0.0.1:7071
//
// Clients send one JSON object per line:
//
//	{"op":"subscribe","broker":3,"expr":"symbol = OTE && price < 8.70"}
//	{"op":"publish","broker":0,"event":"symbol=OTE price=8.40"}
//	{"op":"propagate"}
//	{"op":"stats"}
//
// and receive replies plus pushed {"type":"delivery",...} lines for their
// subscriptions. Try it interactively with `nc`.
//
// With -http set, a debug listener serves /metrics (instrument-registry
// snapshot, text, ?format=json, or Prometheus exposition via the Accept
// header), /debug/history (metrics time-series), /debug/journal (the
// flight-recorder journal), /trace (sampled hop traces; ?sample=N
// adjusts the rate, ?format=chrome exports for chrome://tracing),
// /debug/pprof/ and /debug/vars.
//
// The daemon keeps a bounded flight-recorder journal of engine events
// (-journal-kb), samples the metrics registry into ring-buffer
// time-series (-sample-interval, -history-cap), and runs an invariant
// watchdog (-watchdog) that cross-checks coverage, flow conservation,
// and byte accounting. On panic or SIGQUIT it writes a crash dump —
// journal plus metrics snapshot — to -crash-dump (stderr when unset).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/subsum/subsum/internal/broker"
	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/slo"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		schemaStr = flag.String("schema", "exchange:string,symbol:string,when:date,price:float,volume:int,high:float,low:float",
			"comma-separated name:type attribute list (types: string,int,float,date)")
		topoName = flag.String("topology", "cw24", "cw24, fig7, or ring:<n>")
		every    = flag.Duration("propagate-every", 5*time.Second, "summary propagation period (0 disables)")
		fullSync = flag.Int("full-sync-every", 0, "ship the full merged summary every k-th propagation period instead of the delta (0 disables; recovers coverage lost to message loss)")
		exact    = flag.Bool("exact", false, "use exact AACS equality handling instead of the paper's lossy folding")
		snapshot = flag.String("snapshot", "", "path to write a snapshot of all subscriptions on shutdown (and load on startup if present)")
		httpAddr = flag.String("http", "", "debug listen address serving /metrics, /trace, /debug/pprof (empty disables)")
		traceN   = flag.Int("trace-sample", 0, "record a hop trace for every Nth published event (0 disables)")
		logJSON  = flag.Bool("log-json", false, "emit structured JSON logs instead of text")

		sampleEvery = flag.Duration("sample-interval", time.Second, "metrics time-series sampling interval (0 disables /debug/history and the history wire op)")
		historyCap  = flag.Int("history-cap", 300, "points retained per metrics time-series")
		sloEvery    = flag.Duration("slo-interval", 5*time.Second, "SLO error-budget evaluation interval (0 disables /debug/slo and the slo wire op; requires a sampler)")
		sloLatency  = flag.Duration("slo-latency-p99", 50*time.Millisecond, "publish→deliver p99 latency target")
		sloBytes    = flag.Float64("slo-bytes-per-period", 64*1024, "propagation bytes-per-period ceiling")
		journalKB   = flag.Int("journal-kb", 256, "flight-recorder journal capacity in KiB (0 disables /debug/journal and crash-dump journals)")
		wdEvery     = flag.Duration("watchdog", 10*time.Second, "invariant watchdog check interval (0 disables)")
		crashDump   = flag.String("crash-dump", "", "path for the crash dump written on panic or SIGQUIT (empty: dump to stderr)")

		matchShards = flag.Int("match-shards", 0, "partition each broker's match snapshot into this many id-range shards (≤1 unsharded; pays off with real cores)")
		eventBatch  = flag.Int("event-batch", 1, "events drained per broker-handler wakeup (>1 enables the batched pipeline with coalesced deliver multicast)")
	)
	flag.Parse()

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler).With("component", "subsumd")
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	s, err := parseSchema(*schemaStr)
	if err != nil {
		fatal("bad -schema", "err", err)
	}
	topo, err := parseTopology(*topoName)
	if err != nil {
		fatal("bad -topology", "err", err)
	}
	mode := interval.Lossy
	if *exact {
		mode = interval.Exact
	}
	reg := metrics.NewRegistry()
	var rec *flight.Recorder
	if *journalKB > 0 {
		rec = flight.NewRecorder(*journalKB * 1024)
	}
	// A panicking daemon leaves its last seconds of history behind: the
	// recover writes the journal + metrics crash dump, then re-panics so
	// the process still dies with the original stack trace.
	defer func() {
		if r := recover(); r != nil {
			logger.Error("panic: writing crash dump", "panic", fmt.Sprint(r))
			writeCrashDump(*crashDump, rec, reg, logger)
			panic(r)
		}
	}()
	var network *core.Network
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			// Restored subscriptions have no connected consumer; they are
			// matched and counted but delivered nowhere until a client
			// re-subscribes. Operators typically pair snapshots with
			// durable consumer queues; this daemon logs instead.
			network, err = core.LoadSnapshot(f, core.Config{Topology: topo, Mode: mode, FullSyncEvery: *fullSync, Metrics: reg, Flight: rec, MatchShards: *matchShards, EventBatch: *eventBatch},
				func(id subid.ID, sub *schema.Subscription) broker.DeliveryFunc {
					blog := logger.With("broker", int(id.Broker), "local", uint32(id.Local))
					return func(id subid.ID, ev *schema.Event) {
						blog.Info("delivery for restored subscription", "event", ev.Format(s))
					}
				})
			f.Close()
			if err != nil {
				fatal("loading snapshot", "path", *snapshot, "err", err)
			}
			logger.Info("restored snapshot", "path", *snapshot)
			// The snapshot's schema is authoritative for the restored
			// network; the -schema flag is ignored in that case.
			s = network.Schema()
			if _, err := network.Propagate(); err != nil {
				fatal("rebuilding summaries", "err", err)
			}
		}
	}
	if network == nil {
		var err error
		network, err = core.New(core.Config{Topology: topo, Schema: s, Mode: mode, FullSyncEvery: *fullSync, Metrics: reg, Flight: rec, MatchShards: *matchShards, EventBatch: *eventBatch})
		if err != nil {
			fatal("building network", "err", err)
		}
	}
	defer network.Close()
	network.SetTraceSampling(*traceN)

	var sampler *metrics.Sampler
	if *sampleEvery > 0 {
		sampler = metrics.NewSampler(reg, *sampleEvery, *historyCap)
		if *sloEvery > 0 {
			// The latency objective computes windowed quantiles from bucket
			// deltas; opt the family in before the first tick.
			sampler.RetainBuckets(slo.LatencyFamily)
		}
		sampler.Start()
		defer sampler.Stop()
	}
	var monitor *slo.Monitor
	if *sloEvery > 0 && sampler != nil {
		tg := slo.DefaultTargets()
		tg.LatencyP99Seconds = sloLatency.Seconds()
		tg.StalenessPeriods = float64(*fullSync)
		tg.BytesPerPeriodCeiling = *sloBytes
		eng, err := slo.New(slo.DefaultSpecs(tg)...)
		if err != nil {
			fatal("building slo engine", "err", err)
		}
		monitor = slo.NewMonitor(eng, sampler, reg, rec)
		monitor.Start(*sloEvery)
		defer monitor.Stop()
	}
	if *wdEvery > 0 {
		network.StartWatchdog(*wdEvery)
	}

	srv := wire.NewServer(network, s)
	if sampler != nil {
		srv.SetSampler(sampler)
	}
	if monitor != nil {
		srv.SetSLO(monitor.Last)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal("listen", "addr", *addr, "err", err)
	}
	defer srv.Close()
	logger.Info("listening", "addr", bound, "topology", topo.String(), "schema", s.String())

	if *httpAddr != "" {
		st := debugState{network: network, sampler: sampler, rec: rec}
		if monitor != nil {
			st.slo = monitor.Last
		}
		dbgAddr, stopDebug, err := startDebugServer(*httpAddr, st, logger)
		if err != nil {
			fatal("debug listen", "addr", *httpAddr, "err", err)
		}
		defer stopDebug()
		logger.Info("debug http listening", "addr", dbgAddr,
			"endpoints", "/metrics /debug/history /debug/journal /debug/slo /trace /debug/pprof/ /debug/vars")
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	// SIGQUIT is the operator's "tell me what you were doing" signal:
	// write the crash dump and exit without running the normal shutdown
	// path, mirroring the Go runtime's fatal handling of the signal.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		<-quit
		logger.Info("SIGQUIT: writing crash dump")
		writeCrashDump(*crashDump, rec, reg, logger)
		os.Exit(2)
	}()

	// The propagation loop owns a done channel so shutdown actually stops
	// it: ranging over ticker.C alone would leave the goroutine parked
	// forever, since Ticker.Stop does not close the channel.
	propDone := make(chan struct{})
	propStopped := make(chan struct{})
	if *every > 0 {
		ticker := time.NewTicker(*every)
		plog := logger.With("subsystem", "propagation")
		go func() {
			defer close(propStopped)
			defer ticker.Stop()
			for {
				select {
				case <-propDone:
					plog.Info("propagation loop stopped")
					return
				case <-ticker.C:
					hops, err := network.Propagate()
					if err != nil {
						plog.Error("propagation failed", "err", err)
						continue
					}
					if hops > 0 {
						plog.Info("propagation period", "summary_hops", hops)
					}
				}
			}
		}()
	} else {
		close(propStopped)
	}

	<-stop
	close(propDone)
	<-propStopped
	if *snapshot != "" {
		f, err := os.Create(*snapshot)
		if err != nil {
			logger.Error("snapshot", "err", err)
		} else {
			if err := network.SaveSnapshot(f); err != nil {
				logger.Error("snapshot", "err", err)
			}
			f.Close()
			logger.Info("snapshot written", "path", *snapshot)
		}
	}
	logger.Info("shutting down")
}

// writeCrashDump serializes the flight journal plus a metrics snapshot
// to path, or to stderr when path is empty.
func writeCrashDump(path string, rec *flight.Recorder, reg *metrics.Registry, logger *slog.Logger) {
	if path == "" {
		_ = flight.Dump(os.Stderr, rec, reg)
		return
	}
	if err := flight.DumpToFile(path, rec, reg); err != nil {
		logger.Error("crash dump failed", "path", path, "err", err)
		return
	}
	logger.Info("crash dump written", "path", path)
}

func parseSchema(spec string) (*schema.Schema, error) {
	var attrs []schema.Attribute
	for _, tok := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(tok), ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad attribute %q (want name:type)", tok)
		}
		t, err := schema.ParseType(parts[1])
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, schema.Attribute{Name: parts[0], Type: t})
	}
	return schema.New(attrs...)
}

func parseTopology(name string) (*topology.Graph, error) {
	switch {
	case name == "cw24":
		return topology.CW24(), nil
	case name == "fig7":
		return topology.Figure7Tree(), nil
	case strings.HasPrefix(name, "ring:"):
		var n int
		if _, err := fmt.Sscanf(name, "ring:%d", &n); err != nil || n < 3 {
			return nil, fmt.Errorf("bad ring spec %q", name)
		}
		return topology.Ring(n), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}
