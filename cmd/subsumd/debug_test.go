package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/slo"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
)

func testNetwork(t *testing.T) (*core.Network, *schema.Schema) {
	t.Helper()
	s := schema.MustNew(
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
	)
	network, err := core.New(core.Config{
		Topology: topology.Figure7Tree(),
		Schema:   s,
		Mode:     interval.Lossy,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { network.Close() })
	return network, s
}

func TestDebugMetricsEndpoint(t *testing.T) {
	network, s := testNetwork(t)
	ts := httptest.NewServer(newDebugMux(debugState{network: network}))
	defer ts.Close()

	sub, err := schema.ParseSubscription(s, `symbol = OTE`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := network.Subscribe(5, sub, func(subid.ID, *schema.Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := network.Propagate(); err != nil {
		t.Fatal(err)
	}
	ev, err := schema.ParseEvent(s, "symbol=OTE price=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	network.Flush()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{"events_published 1", "propagation_periods 1", "bus_messages{event}"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics text missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics json: %v", err)
	}
	if m["events_published"] != 1 {
		t.Fatalf("json events_published = %v", m["events_published"])
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	network, s := testNetwork(t)
	ts := httptest.NewServer(newDebugMux(debugState{network: network}))
	defer ts.Close()

	get := func(url string) (int, []core.Trace) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Sampling int          `json:"sampling"`
			Traces   []core.Trace `json:"traces"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Sampling, out.Traces
	}

	if sampling, traces := get(ts.URL + "/trace"); sampling != 0 || len(traces) != 0 {
		t.Fatalf("fresh network: sampling=%d traces=%d", sampling, len(traces))
	}
	if sampling, _ := get(ts.URL + "/trace?sample=1"); sampling != 1 {
		t.Fatalf("sampling after ?sample=1: %d", sampling)
	}

	ev, err := schema.ParseEvent(s, "symbol=OTE price=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Publish(2, ev); err != nil {
		t.Fatal(err)
	}
	network.Flush()

	_, traces := get(ts.URL + "/trace")
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	if traces[0].Origin != 2 || len(traces[0].Path) == 0 || traces[0].Path[0] != 2 {
		t.Fatalf("trace = %+v", traces[0])
	}

	resp, err := http.Get(ts.URL + "/trace?sample=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus sample: %d", resp.StatusCode)
	}
}

func TestDebugPprofAndVars(t *testing.T) {
	network, _ := testNetwork(t)
	ts := httptest.NewServer(newDebugMux(debugState{network: network}))
	defer ts.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("%s: empty body", path)
		}
	}
}

func TestDebugMetricsPrometheus(t *testing.T) {
	network, s := testNetwork(t)
	ts := httptest.NewServer(newDebugMux(debugState{network: network}))
	defer ts.Close()

	ev, err := schema.ParseEvent(s, "symbol=OTE price=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	network.Flush()

	check := func(req *http.Request) {
		t.Helper()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != metrics.PromContentType {
			t.Fatalf("Content-Type = %q", ct)
		}
		text := string(body)
		for _, want := range []string{"# TYPE events_published counter", "events_published 1"} {
			if !strings.Contains(text, want) {
				t.Errorf("prometheus exposition missing %q:\n%s", want, text)
			}
		}
	}

	// Prometheus servers negotiate via the Accept header; humans can ask
	// explicitly with ?format=prometheus.
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain; version=0.0.4; charset=utf-8")
	check(req)
	req, _ = http.NewRequest("GET", ts.URL+"/metrics?format=prometheus", nil)
	check(req)
}

func TestDebugHistoryEndpoint(t *testing.T) {
	network, s := testNetwork(t)
	sampler := metrics.NewSampler(network.Metrics(), time.Hour, 16)
	ts := httptest.NewServer(newDebugMux(debugState{network: network, sampler: sampler}))
	defer ts.Close()

	ev, err := schema.ParseEvent(s, "symbol=OTE price=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	network.Flush()
	sampler.Tick(time.Now())

	resp, err := http.Get(ts.URL + "/debug/history")
	if err != nil {
		t.Fatal(err)
	}
	var hist metrics.History
	err = json.NewDecoder(resp.Body).Decode(&hist)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if hist.Ticks != 1 {
		t.Fatalf("history ticks = %d, want 1", hist.Ticks)
	}
	pt, ok := hist.Latest("events_published")
	if !ok || pt.Value != 1 {
		t.Fatalf("events_published latest = %+v ok=%v", pt, ok)
	}
}

func TestDebugJournalEndpoint(t *testing.T) {
	s := schema.MustNew(
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
	)
	rec := flight.NewRecorder(1 << 16)
	network, err := core.New(core.Config{
		Topology: topology.Figure7Tree(),
		Schema:   s,
		Mode:     interval.Lossy,
		Flight:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer network.Close()
	ts := httptest.NewServer(newDebugMux(debugState{network: network, rec: rec}))
	defer ts.Close()

	sub, err := schema.ParseSubscription(s, `symbol = OTE`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := network.Subscribe(5, sub, func(subid.ID, *schema.Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := network.Propagate(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/debug/journal")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Stats   flight.Stats    `json:"stats"`
		Records []flight.Record `json:"records"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Records) == 0 {
		t.Fatal("journal has no records after subscribe+propagate")
	}
	seen := map[string]bool{}
	for _, r := range doc.Records {
		seen[r.TypeName] = true
	}
	for _, want := range []string{flight.EvSubscribe.String(), flight.EvPeriodStart.String(), flight.EvPeriodEnd.String()} {
		if !seen[want] {
			t.Errorf("journal missing %q records", want)
		}
	}

	resp, err = http.Get(ts.URL + "/debug/journal?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "subscribe") {
		t.Fatalf("text journal missing subscribe line:\n%s", body)
	}
}

func TestDebugHistoryJournalDisabled(t *testing.T) {
	network, _ := testNetwork(t)
	ts := httptest.NewServer(newDebugMux(debugState{network: network}))
	defer ts.Close()

	for _, path := range []string{"/debug/history", "/debug/journal"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s without attachment: %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestDebugTraceChromeCapacityClear(t *testing.T) {
	network, s := testNetwork(t)
	ts := httptest.NewServer(newDebugMux(debugState{network: network}))
	defer ts.Close()

	network.SetTraceSampling(1)
	ev, err := schema.ParseEvent(s, "symbol=OTE price=1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := network.Publish(2, ev); err != nil {
			t.Fatal(err)
		}
	}
	network.Flush()

	resp, err := http.Get(ts.URL + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
			Name  string `json:"name"`
		} `json:"traceEvents"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var slices int
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" {
			slices++
		}
	}
	if slices == 0 {
		t.Fatalf("chrome trace has no slices: %+v", doc)
	}

	get := func(url string) (capacity int, traces []core.Trace) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Capacity int          `json:"capacity"`
			Traces   []core.Trace `json:"traces"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Capacity, out.Traces
	}

	if capacity, traces := get(ts.URL + "/trace?capacity=3"); capacity != 3 || len(traces) != 3 {
		t.Fatalf("after ?capacity=3: capacity=%d traces=%d", capacity, len(traces))
	}
	if _, traces := get(ts.URL + "/trace?clear=1"); len(traces) != 0 {
		t.Fatalf("after ?clear=1: traces=%d", len(traces))
	}
}

func TestDebugSLOEndpoint(t *testing.T) {
	network, s := testNetwork(t)
	sampler := metrics.NewSampler(network.Metrics(), time.Hour, 16)
	sampler.RetainBuckets(slo.LatencyFamily)
	eng, err := slo.New(slo.DefaultSpecs(slo.Targets{})...)
	if err != nil {
		t.Fatal(err)
	}
	monitor := slo.NewMonitor(eng, sampler, network.Metrics(), nil)
	ts := httptest.NewServer(newDebugMux(debugState{network: network, sampler: sampler, slo: monitor.Last}))
	defer ts.Close()

	// Before the first evaluation the endpoint refuses with 503, so a
	// scraper can tell "not yet" from "not configured".
	resp, err := http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-evaluation /debug/slo: %d, want 503", resp.StatusCode)
	}

	ev, err := schema.ParseEvent(s, "symbol=OTE price=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	network.Flush()
	sampler.Tick(time.Now())
	monitor.EvalOnce()

	resp, err = http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/debug/slo Content-Type = %q", ct)
	}
	var rep slo.Report
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(rep.Verdicts) != 5 {
		t.Fatalf("/debug/slo: status %d, %d verdicts", resp.StatusCode, len(rep.Verdicts))
	}

	// The gauge mirrors land in /metrics alongside everything else.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(body), "slo_state{") {
		t.Fatalf("/metrics missing slo_state gauges:\n%s", body)
	}
}

func TestDebugSLODisabled(t *testing.T) {
	network, _ := testNetwork(t)
	ts := httptest.NewServer(newDebugMux(debugState{network: network}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/slo without monitor: %d, want 404", resp.StatusCode)
	}
}

// TestDebugStatusAndContentTypes sweeps every debug surface on a fully
// wired mux and pins each endpoint's status code and content type.
func TestDebugStatusAndContentTypes(t *testing.T) {
	network, _ := testNetwork(t)
	sampler := metrics.NewSampler(network.Metrics(), time.Hour, 16)
	sampler.Tick(time.Now())
	rec := flight.NewRecorder(1 << 14)
	rec.Record(flight.EvPeriodStart, -1, 1, 0, 0, "")
	eng, err := slo.New(slo.DefaultSpecs(slo.Targets{})...)
	if err != nil {
		t.Fatal(err)
	}
	monitor := slo.NewMonitor(eng, sampler, network.Metrics(), rec)
	monitor.EvalOnce()
	ts := httptest.NewServer(newDebugMux(debugState{network: network, sampler: sampler, rec: rec, slo: monitor.Last}))
	defer ts.Close()

	cases := []struct {
		path   string
		status int
		ct     string
	}{
		{"/metrics", http.StatusOK, "text/plain; charset=utf-8"},
		{"/metrics?format=json", http.StatusOK, "application/json"},
		{"/metrics?format=prometheus", http.StatusOK, metrics.PromContentType},
		{"/debug/history", http.StatusOK, "application/json"},
		{"/debug/journal", http.StatusOK, "application/json"},
		{"/debug/journal?format=text", http.StatusOK, "text/plain; charset=utf-8"},
		{"/debug/slo", http.StatusOK, "application/json"},
		{"/debug/convergence", http.StatusOK, "application/json"},
		{"/trace", http.StatusOK, "application/json"},
		{"/trace?format=chrome", http.StatusOK, "application/json"},
		{"/trace?sample=bogus", http.StatusBadRequest, ""},
		{"/trace?capacity=-1", http.StatusBadRequest, ""},
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.status)
		}
		if tc.ct != "" && resp.Header.Get("Content-Type") != tc.ct {
			t.Errorf("%s: Content-Type %q, want %q", tc.path, resp.Header.Get("Content-Type"), tc.ct)
		}
		if tc.status == http.StatusOK && len(body) == 0 {
			t.Errorf("%s: empty 200 body", tc.path)
		}
	}
}
