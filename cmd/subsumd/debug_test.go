package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
)

func testNetwork(t *testing.T) (*core.Network, *schema.Schema) {
	t.Helper()
	s := schema.MustNew(
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
	)
	network, err := core.New(core.Config{
		Topology: topology.Figure7Tree(),
		Schema:   s,
		Mode:     interval.Lossy,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { network.Close() })
	return network, s
}

func TestDebugMetricsEndpoint(t *testing.T) {
	network, s := testNetwork(t)
	ts := httptest.NewServer(newDebugMux(network))
	defer ts.Close()

	sub, err := schema.ParseSubscription(s, `symbol = OTE`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := network.Subscribe(5, sub, func(subid.ID, *schema.Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := network.Propagate(); err != nil {
		t.Fatal(err)
	}
	ev, err := schema.ParseEvent(s, "symbol=OTE price=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	network.Flush()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{"events_published 1", "propagation_periods 1", "bus_messages{event}"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics text missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics json: %v", err)
	}
	if m["events_published"] != 1 {
		t.Fatalf("json events_published = %v", m["events_published"])
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	network, s := testNetwork(t)
	ts := httptest.NewServer(newDebugMux(network))
	defer ts.Close()

	get := func(url string) (int, []core.Trace) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Sampling int          `json:"sampling"`
			Traces   []core.Trace `json:"traces"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Sampling, out.Traces
	}

	if sampling, traces := get(ts.URL + "/trace"); sampling != 0 || len(traces) != 0 {
		t.Fatalf("fresh network: sampling=%d traces=%d", sampling, len(traces))
	}
	if sampling, _ := get(ts.URL + "/trace?sample=1"); sampling != 1 {
		t.Fatalf("sampling after ?sample=1: %d", sampling)
	}

	ev, err := schema.ParseEvent(s, "symbol=OTE price=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Publish(2, ev); err != nil {
		t.Fatal(err)
	}
	network.Flush()

	_, traces := get(ts.URL + "/trace")
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	if traces[0].Origin != 2 || len(traces[0].Path) == 0 || traces[0].Path[0] != 2 {
		t.Fatalf("trace = %+v", traces[0])
	}

	resp, err := http.Get(ts.URL + "/trace?sample=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus sample: %d", resp.StatusCode)
	}
}

func TestDebugPprofAndVars(t *testing.T) {
	network, _ := testNetwork(t)
	ts := httptest.NewServer(newDebugMux(network))
	defer ts.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("%s: empty body", path)
		}
	}
}
