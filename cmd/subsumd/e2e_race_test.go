package main

// End-to-end observability soak: the whole retained-telemetry stack —
// publishers, the propagation loop, the metrics sampler, the invariant
// watchdog, wire clients, and concurrent /debug/* scrapers — runs
// against one live network at once, under the race detector in CI's
// race job. The assertions are the PR's acceptance criteria: zero
// watchdog violations on a healthy engine, and non-empty history and
// journal afterwards.
//
// When the test fails and SUBSUM_ARTIFACT_DIR is set (the CI race job
// sets it), the flight-recorder journal plus a registry snapshot are
// dumped there so the failure can be debugged from the uploaded
// artifact alone.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/wire"
)

func TestEndToEndObservabilityRace(t *testing.T) {
	s := schema.MustNew(
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
	)
	reg := metrics.NewRegistry()
	rec := flight.NewRecorder(128 * 1024)
	network, err := core.New(core.Config{
		Topology: topology.Figure7Tree(),
		Schema:   s,
		Mode:     interval.Lossy,
		Metrics:  reg,
		Flight:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer network.Close()
	network.SetTraceSampling(7)

	// On failure, leave the journal + metrics behind for the CI artifact
	// upload — the same document a crashing daemon would have written.
	t.Cleanup(func() {
		if dir := os.Getenv("SUBSUM_ARTIFACT_DIR"); t.Failed() && dir != "" {
			if err := os.MkdirAll(dir, 0o755); err == nil {
				path := filepath.Join(dir, "e2e-observability-dump.json")
				if err := flight.DumpToFile(path, rec, reg); err == nil {
					t.Logf("wrote failure dump to %s", path)
				}
			}
		}
	})

	sampler := metrics.NewSampler(reg, 10*time.Millisecond, 64)
	sampler.Start()
	defer sampler.Stop()
	wd := network.StartWatchdog(10 * time.Millisecond)

	srv := wire.NewServer(network, s)
	srv.SetSampler(sampler)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ts := httptest.NewServer(newDebugMux(debugState{network: network, sampler: sampler, rec: rec}))
	defer ts.Close()

	// Subscribers on a few leaves; deliveries are counted so the run
	// provably moved events end to end, not just through empty summaries.
	var delivered atomic.Int64
	for _, b := range []topology.NodeID{5, 9, 12} {
		sub, err := schema.ParseSubscription(s, `symbol = OTE`)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := network.Subscribe(b, sub, func(subid.ID, *schema.Event) { delivered.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := network.Propagate(); err != nil {
		t.Fatal(err)
	}

	const (
		publisherGoroutines = 4
		eventsPerPublisher  = 150
		propagations        = 25
	)
	ev, err := schema.ParseEvent(s, "symbol=OTE price=8.40")
	if err != nil {
		t.Fatal(err)
	}
	miss, err := schema.ParseEvent(s, "symbol=MSFT price=330")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	publishersDone := make(chan struct{})
	errs := make(chan error, 64)

	// Publishers: concurrent Publish from different ingress brokers,
	// alternating matching and non-matching events.
	var pubWG sync.WaitGroup
	for p := 0; p < publisherGoroutines; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			at := topology.NodeID(p % network.Len())
			for i := 0; i < eventsPerPublisher; i++ {
				e := ev
				if i%3 == 0 {
					e = miss
				}
				if err := network.Publish(at, e); err != nil {
					errs <- fmt.Errorf("publish: %w", err)
					return
				}
			}
		}(p)
	}
	go func() { pubWG.Wait(); close(publishersDone) }()

	// Propagation loop racing the publishers, as subsumd's ticker does.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < propagations; i++ {
			if _, err := network.Propagate(); err != nil {
				errs <- fmt.Errorf("propagate: %w", err)
				return
			}
		}
	}()

	// Concurrent /debug/* scrapers, one per endpoint, polling until the
	// publishers finish.
	scrape := func(path string) error {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %d", path, resp.StatusCode)
		}
		return nil
	}
	for _, path := range []string{
		"/metrics",
		"/metrics?format=json",
		"/metrics?format=prometheus",
		"/debug/history",
		"/debug/journal",
		"/debug/journal?format=text",
		"/trace",
		"/trace?format=chrome",
	} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-publishersDone:
					return
				default:
				}
				if err := scrape(path); err != nil {
					errs <- err
					return
				}
			}
		}(path)
	}

	// A wire client exercising the stats and history ops over real TCP
	// while everything above runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl, err := wire.Dial(addr, nil)
		if err != nil {
			errs <- fmt.Errorf("dial: %w", err)
			return
		}
		defer cl.Close()
		for {
			select {
			case <-publishersDone:
				return
			default:
			}
			if _, err := cl.Metrics(); err != nil {
				errs <- fmt.Errorf("wire metrics: %w", err)
				return
			}
			if _, err := cl.History(); err != nil {
				errs <- fmt.Errorf("wire history: %w", err)
				return
			}
		}
	}()

	<-publishersDone
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiesce, then force one summary rebuild so late subscriptions are
	// covered, and one final watchdog pass over the settled engine.
	network.Flush()
	if _, err := network.Propagate(); err != nil {
		t.Fatal(err)
	}
	network.Flush()
	if violations := wd.RunOnce(); len(violations) > 0 {
		t.Errorf("watchdog violations on healthy engine: %v", violations)
	}
	if v := reg.Map()["watchdog_violations"]; v != 0 {
		t.Errorf("watchdog_violations = %v during the run, want 0", v)
	}

	// The run must have moved real traffic and retained real telemetry.
	if delivered.Load() == 0 {
		t.Error("no deliveries — the soak did not exercise the match path")
	}
	sampler.Tick(time.Now())
	hist := sampler.History()
	if hist.Ticks == 0 || len(hist.Series) == 0 {
		t.Errorf("history empty after run: ticks=%d series=%d", hist.Ticks, len(hist.Series))
	}
	if pt, ok := hist.Latest("events_published"); !ok || pt.Value != float64(publisherGoroutines*eventsPerPublisher) {
		t.Errorf("history events_published = %+v, want %d", pt, publisherGoroutines*eventsPerPublisher)
	}
	js := rec.Stats()
	if js.Records == 0 {
		t.Error("flight journal empty after run")
	}
	types := map[string]bool{}
	for _, r := range rec.Records() {
		types[r.TypeName] = true
	}
	for _, want := range []string{"subscribe", "period-start", "period-end"} {
		if !types[want] {
			t.Errorf("journal missing %q records (have %v)", want, types)
		}
	}
}
