package main

import (
	"testing"

	"github.com/subsum/subsum/internal/schema"
)

func TestParseSchema(t *testing.T) {
	s, err := parseSchema("a:string, b:int,c:float , d:date")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.TypeOf(0) != schema.TypeString || s.TypeOf(3) != schema.TypeDate {
		t.Fatal("types wrong")
	}
	bad := []string{"", "a", "a:bogus", "a:int,a:int", ":int"}
	for _, in := range bad {
		if _, err := parseSchema(in); err == nil {
			t.Errorf("parseSchema(%q) accepted", in)
		}
	}
}

func TestParseTopology(t *testing.T) {
	g, err := parseTopology("cw24")
	if err != nil || g.Len() != 24 {
		t.Fatalf("cw24: %v %v", g, err)
	}
	g, err = parseTopology("fig7")
	if err != nil || g.Len() != 13 {
		t.Fatalf("fig7: %v %v", g, err)
	}
	g, err = parseTopology("ring:5")
	if err != nil || g.Len() != 5 {
		t.Fatalf("ring: %v %v", g, err)
	}
	for _, in := range []string{"", "bogus", "ring:2", "ring:x"} {
		if _, err := parseTopology(in); err == nil {
			t.Errorf("parseTopology(%q) accepted", in)
		}
	}
}
