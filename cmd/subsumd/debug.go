// Debug HTTP surface for subsumd, enabled with -http. Serves the
// engine's instrument registry, sampled hop traces, Go pprof profiles,
// and expvar — everything needed to observe a live broker network
// without attaching a debugger.
package main

import (
	"encoding/json"
	"expvar"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"github.com/subsum/subsum/internal/core"
)

// newDebugMux builds the -http handler:
//
//	GET /metrics              registry snapshot, text key-value
//	GET /metrics?format=json  same snapshot as a JSON object
//	GET /trace                retained hop traces, newest first (JSON)
//	GET /trace?sample=N       set sampling to every Nth publish (0 = off)
//	    /debug/pprof/...      standard Go profiles
//	GET /debug/vars           expvar (memstats, cmdline)
func newDebugMux(network *core.Network) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = network.Metrics().WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = network.Metrics().WriteText(w)
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if s := r.URL.Query().Get("sample"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "sample must be a non-negative integer", http.StatusBadRequest)
				return
			}
			network.SetTraceSampling(n)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Sampling int          `json:"sampling"`
			Traces   []core.Trace `json:"traces"`
		}{network.TraceSampling(), network.Traces()})
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())

	return mux
}

// startDebugServer binds the -http listener and serves the debug mux in
// the background. It returns the bound address and a shutdown func.
func startDebugServer(addr string, network *core.Network, logger *slog.Logger) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: newDebugMux(network)}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("debug http server failed", "err", err)
		}
	}()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
