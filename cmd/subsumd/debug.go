// Debug HTTP surface for subsumd, enabled with -http. Serves the
// engine's instrument registry (including Prometheus text exposition),
// retained metrics time-series, the flight-recorder journal, sampled hop
// traces (JSON or Chrome trace-event format), Go pprof profiles, and
// expvar — everything needed to observe a live broker network without
// attaching a debugger.
package main

import (
	"encoding/json"
	"expvar"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/slo"
)

// debugState carries the optional observability attachments the debug
// mux serves alongside the network itself.
type debugState struct {
	network *core.Network
	sampler *metrics.Sampler   // nil: /debug/history is 404
	rec     *flight.Recorder   // nil: /debug/journal is 404
	slo     func() *slo.Report // nil: /debug/slo is 404
}

// newDebugMux builds the -http handler:
//
//	GET /metrics              registry snapshot, text key-value
//	GET /metrics?format=json  same snapshot as a JSON object
//	GET /metrics with Accept: text/plain; version=0.0.4
//	                          Prometheus text exposition (also ?format=prometheus)
//	GET /debug/history        sampler time-series (values, deltas, rates)
//	GET /debug/journal        flight-recorder journal (?format=text for one line per record)
//	GET /debug/slo            SLO error-budget report: per-objective verdicts,
//	                          burn rates, remaining budget, evidence
//	GET /debug/convergence    summary-health snapshot: per-broker epoch vectors
//	                          with derived staleness plus false-positive attribution
//	GET /trace                retained hop traces, newest first (JSON)
//	GET /trace?sample=N       set sampling to every Nth publish (0 = off)
//	GET /trace?capacity=N     bound the trace store to N traces (0 = default)
//	GET /trace?clear=1        discard retained traces
//	GET /trace?format=chrome  Chrome trace-event JSON (chrome://tracing, Perfetto)
//	    /debug/pprof/...      standard Go profiles
//	GET /debug/vars           expvar (memstats, cmdline)
func newDebugMux(st debugState) *http.ServeMux {
	network := st.network
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		format := r.URL.Query().Get("format")
		if format == "prometheus" || strings.Contains(r.Header.Get("Accept"), "version=0.0.4") {
			w.Header().Set("Content-Type", metrics.PromContentType)
			_ = network.Metrics().WritePrometheus(w)
			return
		}
		if format == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = network.Metrics().WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = network.Metrics().WriteText(w)
	})

	mux.HandleFunc("/debug/history", func(w http.ResponseWriter, r *http.Request) {
		if st.sampler == nil {
			http.Error(w, "no sampler running (metrics history disabled)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = st.sampler.WriteJSON(w)
	})

	mux.HandleFunc("/debug/journal", func(w http.ResponseWriter, r *http.Request) {
		if st.rec == nil {
			http.Error(w, "no flight recorder running (journal disabled)", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = st.rec.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = st.rec.WriteJSON(w)
	})

	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		if st.slo == nil {
			http.Error(w, "no slo monitor running (error budgets disabled)", http.StatusNotFound)
			return
		}
		rep := st.slo()
		if rep == nil {
			http.Error(w, "slo monitor has not evaluated yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})

	mux.HandleFunc("/debug/convergence", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(network.Health())
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if s := q.Get("sample"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "sample must be a non-negative integer", http.StatusBadRequest)
				return
			}
			network.SetTraceSampling(n)
		}
		if s := q.Get("capacity"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "capacity must be a non-negative integer", http.StatusBadRequest)
				return
			}
			network.SetTraceCapacity(n)
		}
		if q.Get("clear") == "1" {
			network.ClearTraces()
		}
		if q.Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			_ = network.WriteChromeTrace(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Sampling int          `json:"sampling"`
			Capacity int          `json:"capacity"`
			Traces   []core.Trace `json:"traces"`
		}{network.TraceSampling(), network.TraceCapacity(), network.Traces()})
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())

	return mux
}

// startDebugServer binds the -http listener and serves the debug mux in
// the background. It returns the bound address and a shutdown func.
func startDebugServer(addr string, st debugState, logger *slog.Logger) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: newDebugMux(st)}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("debug http server failed", "err", err)
		}
	}()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
