package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/slo"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/wire"
)

// TestRunRendersLiveServer is the subsumtop e2e: a real network behind a
// real wire server with a sampler attached, polled over TCP via the
// stats and history ops.
func TestRunRendersLiveServer(t *testing.T) {
	s := schema.MustNew(
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
	)
	reg := metrics.NewRegistry()
	network, err := core.New(core.Config{
		Topology: topology.Figure7Tree(),
		Schema:   s,
		Mode:     interval.Lossy,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer network.Close()

	sampler := metrics.NewSampler(reg, time.Hour, 16)
	sampler.RetainBuckets(slo.LatencyFamily)
	eng, err := slo.New(slo.DefaultSpecs(slo.Targets{})...)
	if err != nil {
		t.Fatal(err)
	}
	monitor := slo.NewMonitor(eng, sampler, reg, nil)
	srv := wire.NewServer(network, s)
	srv.SetSampler(sampler)
	srv.SetSLO(monitor.Last)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sub, err := schema.ParseSubscription(s, `symbol = OTE`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := network.Subscribe(5, sub, func(subid.ID, *schema.Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := network.Propagate(); err != nil {
		t.Fatal(err)
	}
	ev, err := schema.ParseEvent(s, "symbol=OTE price=1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := network.Publish(0, ev); err != nil {
			t.Fatal(err)
		}
	}
	network.Flush()
	sampler.Tick(time.Now())
	sampler.Tick(time.Now().Add(time.Second))
	monitor.EvalOnce()

	var buf bytes.Buffer
	if err := run(&buf, topConfig{addr: addr, every: time.Millisecond, frames: 2, clear: false}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"subsumtop — " + addr,
		"frame 2",                 // both frames rendered
		"history: 2 ticks",        // the history op answered
		"published             3", // registry totals made it across the wire
		"WATCHDOG",
		"SLO",
		"publish_deliver_p99",
		"delivery_loss",
		"HEALTH",
		"convergence: period 1",
		"BROKERS",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Error("clear=false frame still contains ANSI escapes")
	}
	// The per-broker table must include broker 5 (the subscriber) with
	// its subscription and delivery counted.
	found := false
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 4 && f[0] == "5" && f[1] == "1" && f[3] == "3" {
			found = true
		}
	}
	if !found {
		t.Errorf("broker 5 row (subs=1 deliv=3) not found:\n%s", out)
	}
}

// TestRunJSONSnapshot is the -json e2e: one shot over real TCP must
// yield a parseable document carrying the stats map and the health
// report (convergence + false-positive attribution).
func TestRunJSONSnapshot(t *testing.T) {
	s := schema.MustNew(
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
	)
	network, err := core.New(core.Config{
		Topology: topology.Figure7Tree(),
		Schema:   s,
		Mode:     interval.Lossy,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer network.Close()
	srv := wire.NewServer(network, s)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sub, err := schema.ParseSubscription(s, `symbol = OTE && price > 100`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := network.Subscribe(5, sub, func(subid.ID, *schema.Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := network.Propagate(); err != nil {
		t.Fatal(err)
	}
	// A price that fails the constraint but shares the summary's symbol
	// key can become a false positive; either way the snapshot must
	// carry the attribution section.
	ev, err := schema.ParseEvent(s, "symbol=OTE price=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	network.Flush()

	var buf bytes.Buffer
	if err := run(&buf, topConfig{addr: addr, json: true, frames: 1}); err != nil {
		t.Fatal(err)
	}
	var snap jsonSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.Addr != addr {
		t.Errorf("addr = %q, want %q", snap.Addr, addr)
	}
	if snap.Stats["events_published"] != 1 {
		t.Errorf("events_published = %v, want 1", snap.Stats["events_published"])
	}
	if snap.Health == nil || snap.Health.Convergence == nil {
		t.Fatalf("snapshot missing health/convergence: %s", buf.String())
	}
	if snap.Health.Convergence.Period != 1 {
		t.Errorf("convergence period = %d, want 1", snap.Health.Convergence.Period)
	}
	if snap.Health.FalsePositives == nil {
		t.Errorf("snapshot missing false-positive report")
	}
	if len(snap.Health.Convergence.Brokers) != network.Len() {
		t.Errorf("convergence covers %d brokers, want %d",
			len(snap.Health.Convergence.Brokers), network.Len())
	}
}

func TestRunDialFailure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, topConfig{addr: "127.0.0.1:1", every: time.Millisecond, frames: 1}); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestRenderFrameWithoutHistory(t *testing.T) {
	var buf bytes.Buffer
	renderFrame(&buf, "x", 1, map[string]float64{"events_published": 7}, nil, nil, nil)
	out := buf.String()
	if !strings.Contains(out, "history: off") {
		t.Errorf("missing history-off note:\n%s", out)
	}
	if !strings.Contains(out, "published             7") {
		t.Errorf("missing published total:\n%s", out)
	}
	if strings.Contains(out, "SLO") {
		t.Errorf("SLO pane rendered against a server without the op:\n%s", out)
	}
}

func TestBrokerRowsAndHelpers(t *testing.T) {
	m := map[string]float64{
		"broker_subscriptions{3}":       2,
		"broker_merged_subs{3}":         2,
		"broker_deliveries{3}":          9,
		"broker_false_positives{3}":     1,
		"broker_summary_merges{3}":      4,
		"broker_match_seconds{3}.p95":   0.0005,
		"broker_subscriptions{10}":      1,
		"broker_match_seconds{3}.count": 12, // derived, not a row field
		"events_published":              100,
		"bus_messages{event}":           6,
		"bus_messages{summary}":         4,
	}
	rows := brokerRows(m)
	if len(rows) != 2 || rows[0].id != 3 || rows[1].id != 10 {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.subs != 2 || r.deliveries != 9 || r.falsePos != 1 || r.merges != 4 || r.matchP95 != 0.0005 {
		t.Fatalf("broker 3 row = %+v", r)
	}
	if got := sumLabeled(m, "bus_messages"); got != 10 {
		t.Fatalf("sumLabeled(bus_messages) = %v", got)
	}
	if got := fmtSeconds(0.0005); got != "0.50ms" {
		t.Fatalf("fmtSeconds(0.0005) = %q", got)
	}
	if got := fmtSeconds(0); got != "-" {
		t.Fatalf("fmtSeconds(0) = %q", got)
	}
}
