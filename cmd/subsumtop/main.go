// Command subsumtop is a polling terminal dashboard for a running
// subsumd. It speaks the same line-delimited JSON protocol as any other
// client, combining the "stats" op (instrument-registry snapshot) with
// the "history" op (the server-side sampler's retained time-series) to
// show both current totals and per-interval rates:
//
//	subsumtop -addr 127.0.0.1:7070 -every 2s
//
// Each frame shows event flow (published/routed/forwarded/suppressed
// with rates), propagation traffic, bus health, watchdog status, and a
// per-broker table (subscriptions, merged coverage, deliveries, false
// positives, match latency p95). Rates come from the server's history
// ring, so they reflect the sampler's interval, not subsumtop's.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/wire"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7070", "subsumd wire address")
		every  = flag.Duration("every", 2*time.Second, "refresh interval")
		frames = flag.Int("frames", 0, "number of frames to render before exiting (0 = run until interrupted)")
		once   = flag.Bool("once", false, "render one frame and exit (same as -frames 1)")
	)
	flag.Parse()
	n := *frames
	if *once {
		n = 1
	}
	if err := run(os.Stdout, topConfig{addr: *addr, every: *every, frames: n, clear: true}); err != nil {
		fmt.Fprintln(os.Stderr, "subsumtop:", err)
		os.Exit(1)
	}
}

// topConfig parametrizes run so tests can render a bounded number of
// frames into a buffer without ANSI escapes.
type topConfig struct {
	addr   string
	every  time.Duration
	frames int  // 0 = loop until a poll fails
	clear  bool // home-and-clear the terminal between frames
}

// run dials the server and renders frames until cfg.frames is exhausted
// or a poll fails. The first frame renders immediately.
func run(w io.Writer, cfg topConfig) error {
	cl, err := wire.Dial(cfg.addr, nil)
	if err != nil {
		return err
	}
	defer cl.Close()

	for frame := 1; ; frame++ {
		m, err := cl.Metrics()
		if err != nil {
			return fmt.Errorf("stats: %w", err)
		}
		// History is optional server-side (-sample-interval 0); the
		// dashboard still works, just without rates.
		hist, _ := cl.History()
		if cfg.clear {
			fmt.Fprint(w, "\x1b[2J\x1b[H")
		}
		renderFrame(w, cfg.addr, frame, m, hist)
		if cfg.frames > 0 && frame >= cfg.frames {
			return nil
		}
		time.Sleep(cfg.every)
	}
}

// renderFrame writes one dashboard frame from a registry snapshot and an
// optional history document.
func renderFrame(w io.Writer, addr string, frame int, m map[string]float64, hist *metrics.History) {
	rate := func(name string) string {
		if hist == nil {
			return ""
		}
		pt, ok := hist.Latest(name)
		if !ok {
			return ""
		}
		return fmt.Sprintf("%10.1f/s", pt.Rate)
	}

	histNote := "history: off"
	if hist != nil {
		histNote = fmt.Sprintf("history: %d ticks @ %gs", hist.Ticks, hist.IntervalSeconds)
	}
	fmt.Fprintf(w, "subsumtop — %s    frame %d    %s\n\n", addr, frame, histNote)

	fmt.Fprintf(w, "EVENTS\n")
	for _, row := range []struct{ label, name string }{
		{"published", "events_published"},
		{"routed", "events_routed"},
		{"forwarded", "events_forwarded"},
		{"suppressed", "events_suppressed"},
		{"delivered", "deliver_sends"},
	} {
		fmt.Fprintf(w, "  %-10s %12.0f %s\n", row.label, m[row.name], rate(row.name))
	}
	fp := sumLabeled(m, "broker_false_positives")
	del := sumLabeled(m, "broker_deliveries")
	ratio := 0.0
	if fp+del > 0 {
		ratio = fp / (fp + del)
	}
	fmt.Fprintf(w, "  %-10s %12.0f   (%.1f%% of exact matches)\n", "false pos", fp, 100*ratio)

	fmt.Fprintf(w, "\nPROPAGATION\n")
	fmt.Fprintf(w, "  periods %.0f    hops %.0f    wire bytes %.0f %s\n",
		m["propagation_periods"], m["propagation_hops"], m["propagation_bytes"], rate("propagation_bytes"))
	fmt.Fprintf(w, "  period bytes p95 %.0f    period seconds p95 %.4f\n",
		m["propagation_period_bytes.p95"], m["propagation_period_seconds.p95"])

	fmt.Fprintf(w, "\nBUS\n")
	fmt.Fprintf(w, "  inflight %.0f    messages %.0f    dropped %.0f (%.0f B)    decode errors %.0f    handler errors %.0f\n",
		m["bus_inflight"], sumLabeled(m, "bus_messages"), sumLabeled(m, "bus_dropped"),
		sumLabeled(m, "bus_dropped_bytes"), sumLabeled(m, "bus_decode_errors"), sumLabeled(m, "bus_handler_errors"))

	status := "OK"
	if m["watchdog_violations"] > 0 {
		status = "VIOLATIONS"
	}
	fmt.Fprintf(w, "\nWATCHDOG\n")
	fmt.Fprintf(w, "  checks %.0f    violations %.0f    %s\n", m["watchdog_checks"], m["watchdog_violations"], status)

	rows := brokerRows(m)
	if len(rows) > 0 {
		fmt.Fprintf(w, "\nBROKERS%12s%8s%8s%8s%8s%14s\n", "subs", "merged", "deliv", "fpos", "merges", "match p95")
		for _, r := range rows {
			fmt.Fprintf(w, "  %-5d%12.0f%8.0f%8.0f%8.0f%8.0f%14s\n",
				r.id, r.subs, r.merged, r.deliveries, r.falsePos, r.merges, fmtSeconds(r.matchP95))
		}
	}
}

// brokerRow is one line of the per-broker table, assembled from the
// "family{broker}" entries of the registry snapshot.
type brokerRow struct {
	id         int
	subs       float64
	merged     float64
	deliveries float64
	falsePos   float64
	merges     float64
	matchP95   float64
}

// brokerRows collects the per-broker instrument families into sorted
// table rows. Brokers appear once any of their labeled instruments has
// been registered.
func brokerRows(m map[string]float64) []brokerRow {
	byID := map[int]*brokerRow{}
	row := func(id int) *brokerRow {
		if r, ok := byID[id]; ok {
			return r
		}
		r := &brokerRow{id: id}
		byID[id] = r
		return r
	}
	for name, v := range m {
		family, label, ok := splitLabeled(name)
		if !ok {
			continue
		}
		id, err := strconv.Atoi(label)
		if err != nil {
			continue
		}
		switch family {
		case "broker_subscriptions":
			row(id).subs = v
		case "broker_merged_subs":
			row(id).merged = v
		case "broker_deliveries":
			row(id).deliveries = v
		case "broker_false_positives":
			row(id).falsePos = v
		case "broker_summary_merges":
			row(id).merges = v
		}
	}
	// Histogram-derived samples keep their suffix outside the braces:
	// "broker_match_seconds{3}.p95".
	for name, v := range m {
		const fam = "broker_match_seconds{"
		if !strings.HasPrefix(name, fam) || !strings.HasSuffix(name, "}.p95") {
			continue
		}
		label := name[len(fam) : len(name)-len("}.p95")]
		if id, err := strconv.Atoi(label); err == nil {
			row(id).matchP95 = v
		}
	}
	rows := make([]brokerRow, 0, len(byID))
	for _, r := range byID {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	return rows
}

// splitLabeled splits "family{label}" and reports whether name has that
// exact shape (no derived-sample suffix).
func splitLabeled(name string) (family, label string, ok bool) {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, "}") {
		return "", "", false
	}
	return name[:open], name[open+1 : len(name)-1], true
}

// sumLabeled totals every "family{...}" entry of one vec family,
// skipping derived samples.
func sumLabeled(m map[string]float64, family string) float64 {
	var sum float64
	for name, v := range m {
		f, _, ok := splitLabeled(name)
		if ok && f == family {
			sum += v
		}
	}
	return sum
}

// fmtSeconds renders a latency in the most readable unit.
func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "-"
	case s < 1e-4:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
