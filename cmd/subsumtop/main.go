// Command subsumtop is a polling terminal dashboard for a running
// subsumd. It speaks the same line-delimited JSON protocol as any other
// client, combining the "stats" op (instrument-registry snapshot) with
// the "history" op (the server-side sampler's retained time-series) to
// show both current totals and per-interval rates:
//
//	subsumtop -addr 127.0.0.1:7070 -every 2s
//
// Each frame shows event flow (published/routed/forwarded/suppressed
// with rates), propagation traffic, bus health, watchdog status, a
// summary-health pane (convergence staleness, top false-positive
// sources, subgroup digest analytics when present), and a per-broker
// table (subscriptions, merged coverage, deliveries, false positives,
// staleness, match latency p95). Rates come from the server's history
// ring, so they reflect the sampler's interval, not subsumtop's.
//
// With -json (implies -once) a single machine-readable snapshot —
// registry stats plus the convergence/health report — is printed
// instead of the dashboard.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/slo"
	"github.com/subsum/subsum/internal/wire"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7070", "subsumd wire address")
		every  = flag.Duration("every", 2*time.Second, "refresh interval")
		frames = flag.Int("frames", 0, "number of frames to render before exiting (0 = run until interrupted)")
		once   = flag.Bool("once", false, "render one frame and exit (same as -frames 1)")
		asJSON = flag.Bool("json", false, "print one machine-readable snapshot (stats + health) and exit")
	)
	flag.Parse()
	n := *frames
	if *once || *asJSON {
		n = 1
	}
	if err := run(os.Stdout, topConfig{addr: *addr, every: *every, frames: n, clear: true, json: *asJSON}); err != nil {
		fmt.Fprintln(os.Stderr, "subsumtop:", err)
		os.Exit(1)
	}
}

// topConfig parametrizes run so tests can render a bounded number of
// frames into a buffer without ANSI escapes.
type topConfig struct {
	addr   string
	every  time.Duration
	frames int  // 0 = loop until a poll fails
	clear  bool // home-and-clear the terminal between frames
	json   bool // one-shot machine-readable snapshot instead of frames
}

// jsonSnapshot is the -json output document: the same data the
// dashboard panes render, in one parseable object.
type jsonSnapshot struct {
	Addr    string             `json:"addr"`
	Stats   map[string]float64 `json:"stats"`
	Health  *core.HealthReport `json:"health,omitempty"`
	History *metrics.History   `json:"history,omitempty"`
	SLO     *slo.Report        `json:"slo,omitempty"`
}

// run dials the server and renders frames until cfg.frames is exhausted
// or a poll fails. The first frame renders immediately.
func run(w io.Writer, cfg topConfig) error {
	cl, err := wire.Dial(cfg.addr, nil)
	if err != nil {
		return err
	}
	defer cl.Close()

	for frame := 1; ; frame++ {
		m, err := cl.Metrics()
		if err != nil {
			return fmt.Errorf("stats: %w", err)
		}
		// History is optional server-side (-sample-interval 0); the
		// dashboard still works, just without rates. Health degrades the
		// same way against servers predating the convergence op.
		hist, _ := cl.History()
		health, _ := cl.Health()
		sloRep, _ := cl.SLO()
		if cfg.json {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(jsonSnapshot{Addr: cfg.addr, Stats: m, Health: health, History: hist, SLO: sloRep})
		}
		if cfg.clear {
			fmt.Fprint(w, "\x1b[2J\x1b[H")
		}
		renderFrame(w, cfg.addr, frame, m, hist, health, sloRep)
		if cfg.frames > 0 && frame >= cfg.frames {
			return nil
		}
		time.Sleep(cfg.every)
	}
}

// renderFrame writes one dashboard frame from a registry snapshot, an
// optional history document, and an optional health report.
func renderFrame(w io.Writer, addr string, frame int, m map[string]float64, hist *metrics.History, health *core.HealthReport, sloRep *slo.Report) {
	rate := func(name string) string {
		if hist == nil {
			return ""
		}
		pt, ok := hist.Latest(name)
		if !ok {
			return ""
		}
		return fmt.Sprintf("%10.1f/s", pt.Rate)
	}

	histNote := "history: off"
	if hist != nil {
		histNote = fmt.Sprintf("history: %d ticks @ %gs", hist.Ticks, hist.IntervalSeconds)
	}
	fmt.Fprintf(w, "subsumtop — %s    frame %d    %s\n\n", addr, frame, histNote)

	fmt.Fprintf(w, "EVENTS\n")
	for _, row := range []struct{ label, name string }{
		{"published", "events_published"},
		{"routed", "events_routed"},
		{"forwarded", "events_forwarded"},
		{"suppressed", "events_suppressed"},
		{"delivered", "deliver_sends"},
	} {
		fmt.Fprintf(w, "  %-10s %12.0f %s\n", row.label, m[row.name], rate(row.name))
	}
	fp := sumLabeled(m, "broker_false_positives")
	del := sumLabeled(m, "broker_deliveries")
	ratio := 0.0
	if fp+del > 0 {
		ratio = fp / (fp + del)
	}
	fmt.Fprintf(w, "  %-10s %12.0f   (%.1f%% of exact matches)\n", "false pos", fp, 100*ratio)

	fmt.Fprintf(w, "\nPROPAGATION\n")
	fmt.Fprintf(w, "  periods %.0f    hops %.0f    wire bytes %.0f %s\n",
		m["propagation_periods"], m["propagation_hops"], m["propagation_bytes"], rate("propagation_bytes"))
	fmt.Fprintf(w, "  period bytes p95 %.0f    period seconds p95 %.4f\n",
		m["propagation_period_bytes.p95"], m["propagation_period_seconds.p95"])

	fmt.Fprintf(w, "\nBUS\n")
	fmt.Fprintf(w, "  inflight %.0f    messages %.0f    dropped %.0f (%.0f B)    decode errors %.0f    handler errors %.0f\n",
		m["bus_inflight"], sumLabeled(m, "bus_messages"), sumLabeled(m, "bus_dropped"),
		sumLabeled(m, "bus_dropped_bytes"), sumLabeled(m, "bus_decode_errors"), sumLabeled(m, "bus_handler_errors"))

	status := "OK"
	if m["watchdog_violations"] > 0 {
		status = "VIOLATIONS"
	}
	fmt.Fprintf(w, "\nWATCHDOG\n")
	fmt.Fprintf(w, "  checks %.0f    violations %.0f    %s\n", m["watchdog_checks"], m["watchdog_violations"], status)

	renderSLO(w, sloRep)
	renderHealth(w, m, health)

	rows := brokerRows(m)
	if len(rows) > 0 {
		staleOf := map[int]int64{}
		if health != nil && health.Convergence != nil {
			for _, bc := range health.Convergence.Brokers {
				staleOf[bc.Broker] = bc.MaxStaleness
			}
		}
		fmt.Fprintf(w, "\nBROKERS%12s%8s%8s%8s%8s%8s%14s\n", "subs", "merged", "deliv", "fpos", "merges", "stale", "match p95")
		for _, r := range rows {
			fmt.Fprintf(w, "  %-5d%12.0f%8.0f%8.0f%8.0f%8.0f%8d%14s\n",
				r.id, r.subs, r.merged, r.deliveries, r.falsePos, r.merges, staleOf[r.id], fmtSeconds(r.matchP95))
		}
	}
}

// renderSLO writes the error-budget pane: one line per objective with
// state, current SLI vs target, burn rates, and remaining budget.
// Skipped entirely against servers without the slo op.
func renderSLO(w io.Writer, rep *slo.Report) {
	if rep == nil {
		return
	}
	fmt.Fprintf(w, "\nSLO    (%d breach / %d warn)\n", rep.Breaches, rep.Warns)
	for i := range rep.Verdicts {
		v := &rep.Verdicts[i]
		state := strings.ToUpper(string(v.State))
		fmt.Fprintf(w, "  %-7s%-24s sli %10.4g %s %-8.4g burn %5.2f/%5.2f budget %3.0f%%\n",
			state, v.Name, v.SLI, v.Op, v.Target, v.FastBurn, v.SlowBurn, 100*v.BudgetRemaining)
	}
}

// renderHealth writes the summary-health pane: convergence staleness,
// the top false-positive attributions with per-attribute precision, and
// subgroup digest analytics when those gauges are present. Skipped
// entirely against servers without the convergence op.
func renderHealth(w io.Writer, m map[string]float64, health *core.HealthReport) {
	if health == nil {
		return
	}
	fmt.Fprintf(w, "\nHEALTH\n")
	if c := health.Convergence; c != nil {
		fmt.Fprintf(w, "  convergence: period %d    max staleness %d    lagging entries %d    full sync every %d\n",
			c.Period, c.MaxStaleness, c.LaggingEntries, c.FullSyncEvery)
	}
	if fp := health.FalsePositives; fp != nil && len(fp.TopK) > 0 {
		prec := map[string]float64{}
		for _, a := range fp.Attrs {
			prec[a.Attr] = a.Precision
		}
		fmt.Fprintf(w, "  top false-positive sources (%d total):\n", fp.Total)
		for _, t := range fp.TopK {
			fmt.Fprintf(w, "    attr=%-12s class=%-8s owner=%-4d %8d  (attr precision %.1f%%)\n",
				t.Attr, t.Class, t.Owner, t.Count, 100*prec[t.Attr])
		}
	}
	if passes := sumLabeled(m, "subgroup_digest_passes"); passes > 0 || sumLabeled(m, "subgroup_digest_pruned") > 0 {
		fmt.Fprintf(w, "  subgroup digests: prune %.1f%%    measured FP %.2f%%    leader skew %.2f\n",
			m["subgroup_digest_prune_rate_ppm"]/1e4,
			m["subgroup_digest_fp_rate_ppm"]/1e4,
			m["subgroup_leader_skew_milli"]/1e3)
	}
}

// brokerRow is one line of the per-broker table, assembled from the
// "family{broker}" entries of the registry snapshot.
type brokerRow struct {
	id         int
	subs       float64
	merged     float64
	deliveries float64
	falsePos   float64
	merges     float64
	matchP95   float64
}

// brokerRows collects the per-broker instrument families into sorted
// table rows. Brokers appear once any of their labeled instruments has
// been registered.
func brokerRows(m map[string]float64) []brokerRow {
	byID := map[int]*brokerRow{}
	row := func(id int) *brokerRow {
		if r, ok := byID[id]; ok {
			return r
		}
		r := &brokerRow{id: id}
		byID[id] = r
		return r
	}
	for name, v := range m {
		family, label, ok := splitLabeled(name)
		if !ok {
			continue
		}
		id, err := strconv.Atoi(label)
		if err != nil {
			continue
		}
		switch family {
		case "broker_subscriptions":
			row(id).subs = v
		case "broker_merged_subs":
			row(id).merged = v
		case "broker_deliveries":
			row(id).deliveries = v
		case "broker_false_positives":
			row(id).falsePos = v
		case "broker_summary_merges":
			row(id).merges = v
		}
	}
	// Histogram-derived samples keep their suffix outside the braces:
	// "broker_match_seconds{3}.p95".
	for name, v := range m {
		const fam = "broker_match_seconds{"
		if !strings.HasPrefix(name, fam) || !strings.HasSuffix(name, "}.p95") {
			continue
		}
		label := name[len(fam) : len(name)-len("}.p95")]
		if id, err := strconv.Atoi(label); err == nil {
			row(id).matchP95 = v
		}
	}
	rows := make([]brokerRow, 0, len(byID))
	for _, r := range byID {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	return rows
}

// splitLabeled splits "family{label}" and reports whether name has that
// exact shape (no derived-sample suffix).
func splitLabeled(name string) (family, label string, ok bool) {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, "}") {
		return "", "", false
	}
	return name[:open], name[open+1 : len(name)-1], true
}

// sumLabeled totals every "family{...}" entry of one vec family,
// skipping derived samples.
func sumLabeled(m map[string]float64, family string) float64 {
	var sum float64
	for name, v := range m {
		f, _, ok := splitLabeled(name)
		if ok && f == family {
			sum += v
		}
	}
	return sum
}

// fmtSeconds renders a latency in the most readable unit.
func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "-"
	case s < 1e-4:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
