// Command subsum-workload emits synthetic subscriptions and events with
// the statistical structure of the paper's evaluation (Table 2), for
// feeding other tools or a running subsumd.
//
// Usage:
//
//	subsum-workload -kind subscriptions -n 100 -subsumption 0.5
//	subsum-workload -kind events -n 100 -hit 0.5
//	subsum-workload -kind schema
//
// Output is one textual subscription/event per line in the syntax accepted
// by the wire protocol and ParseSubscription/ParseEvent; -json wraps each
// line in a wire request object ready to pipe into `nc` against subsumd.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/workload"
)

func main() {
	var (
		kind        = flag.String("kind", "subscriptions", "subscriptions, events, or schema")
		n           = flag.Int("n", 10, "how many to generate")
		subsumption = flag.Float64("subsumption", 0.5, "subsumption probability for subscriptions")
		hit         = flag.Float64("hit", 0.5, "canonical-value hit rate for events")
		seed        = flag.Int64("seed", 1, "generator seed")
		asJSON      = flag.Bool("json", false, "emit wire-protocol request objects")
		broker      = flag.Int("broker", 0, "broker id for -json requests")
	)
	flag.Parse()
	log.SetPrefix("subsum-workload: ")
	log.SetFlags(0)

	cfg := workload.DefaultConfig()
	cfg.Subsumption = *subsumption
	cfg.Seed = *seed
	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s := gen.Schema()
	out := json.NewEncoder(os.Stdout)

	switch *kind {
	case "schema":
		for _, a := range s.Attributes() {
			fmt.Printf("%s:%s\n", a.Name, a.Type)
		}
	case "subscriptions":
		for i := 0; i < *n; i++ {
			text := gen.Subscription().Format(s)
			if *asJSON {
				if err := out.Encode(map[string]any{"op": "subscribe", "broker": *broker, "expr": text}); err != nil {
					log.Fatal(err)
				}
			} else {
				fmt.Println(text)
			}
		}
	case "events":
		for i := 0; i < *n; i++ {
			ev := gen.Event(*hit)
			text := formatEvent(s, ev)
			if *asJSON {
				if err := out.Encode(map[string]any{"op": "publish", "broker": *broker, "event": text}); err != nil {
					log.Fatal(err)
				}
			} else {
				fmt.Println(text)
			}
		}
	default:
		log.Fatalf("unknown -kind %q", *kind)
	}
}

// formatEvent renders an event in the `attr=value` syntax ParseEvent and
// the wire protocol accept.
func formatEvent(s *schema.Schema, ev *schema.Event) string {
	text := ""
	for j, f := range ev.Fields() {
		if j > 0 {
			text += " "
		}
		name := s.Name(f.Attr)
		if f.Value.Type.Arithmetic() {
			text += fmt.Sprintf("%s=%g", name, f.Value.Num)
		} else {
			text += fmt.Sprintf("%s=%q", name, f.Value.Str)
		}
	}
	return text
}
