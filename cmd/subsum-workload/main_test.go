package main

import (
	"testing"

	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/workload"
)

// TestFormatEventRoundTrips: every generated event formats into text that
// ParseEvent accepts and that reproduces the same fields.
func TestFormatEventRoundTrips(t *testing.T) {
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := gen.Schema()
	for i := 0; i < 200; i++ {
		ev := gen.Event(0.5)
		text := formatEvent(s, ev)
		back, err := schema.ParseEvent(s, text)
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", text, err)
		}
		if back.Len() != ev.Len() {
			t.Fatalf("round trip lost fields: %q", text)
		}
		for _, f := range ev.Fields() {
			v, ok := back.Value(f.Attr)
			if !ok || !v.Equal(f.Value) {
				t.Fatalf("round trip changed %s in %q", s.Name(f.Attr), text)
			}
		}
	}
}
