// Command subsum-topo inspects broker overlay topologies: prints size,
// degree, and distance statistics, the degree histogram that drives
// Algorithm 2's iteration schedule, and optionally Graphviz DOT output.
// Beyond the built-in ISP maps, -kind/-n/-seed generate the large
// internet-like overlays of the scaling experiments deterministically.
//
// Usage:
//
//	subsum-topo                             # stats for every built-in overlay
//	subsum-topo -topology att33             # one built-in overlay
//	subsum-topo -kind transit-stub -n 512   # generated overlay (also: geo, pa)
//	subsum-topo -topology cw24 -dot         # DOT to stdout (pipe into graphviz)
//
// DOT export is capped at 256 nodes: beyond that Graphviz layouts are an
// unreadable hairball, so the cap is a warning plus the statistics view
// instead of a multi-megabyte file nobody can render.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/subsum/subsum/internal/topology"
)

// dotCap is the largest overlay -dot will render. Above it the tool
// warns and prints statistics instead.
const dotCap = 256

func main() {
	var (
		topoName = flag.String("topology", "", "cw24, att33, fig7, waxman:<n>:<seed>, random:<n>:<extra>:<seed>; empty = all built-ins")
		kind     = flag.String("kind", "", "generate an overlay instead: transit-stub, geo, or pa (uses -n and -seed)")
		n        = flag.Int("n", 128, "node count for -kind")
		seed     = flag.Int64("seed", 1, "seed for -kind; generated overlays are deterministic per (kind, n, seed)")
		dot      = flag.Bool("dot", false, "emit Graphviz DOT instead of statistics (capped at 256 nodes)")
	)
	flag.Parse()

	var graphs []*topology.Graph
	switch {
	case *kind != "":
		g, err := generate(*kind, *n, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "subsum-topo: %v\n", err)
			os.Exit(1)
		}
		graphs = []*topology.Graph{g}
	case *topoName == "":
		graphs = []*topology.Graph{topology.CW24(), topology.ATT33(), topology.Figure7Tree()}
	default:
		g, err := parse(*topoName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "subsum-topo: %v\n", err)
			os.Exit(1)
		}
		graphs = []*topology.Graph{g}
	}

	for _, g := range graphs {
		if *dot {
			if g.Len() > dotCap {
				fmt.Fprintf(os.Stderr, "subsum-topo: %d nodes exceeds the %d-node DOT cap (the layout would be unreadable); printing statistics instead\n",
					g.Len(), dotCap)
			} else {
				fmt.Print(g.DOT())
				continue
			}
		}
		describe(g)
	}
}

func describe(g *topology.Graph) {
	fmt.Println(g)
	fmt.Printf("  diameter %d, mean pair distance %.2f hops\n", g.Diameter(), g.MeanPairHops())
	// Degree histogram: the paper's Algorithm 2 runs one iteration per
	// degree value, so this is also the propagation schedule.
	hist := map[int]int{}
	maxDeg := 0
	for i := 0; i < g.Len(); i++ {
		d := g.Degree(topology.NodeID(i))
		hist[d]++
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Print("  degree histogram:")
	for d := 1; d <= maxDeg; d++ {
		if hist[d] > 0 {
			fmt.Printf(" %d×deg%d", hist[d], d)
		}
	}
	fmt.Println()
	order := g.NodesByDegreeDesc()
	fmt.Printf("  Algorithm 3 examination order (first 5): %v\n\n", order[:min(5, len(order))])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// generate builds one of the scaling-experiment overlay families. The
// geo radius and pa attachment count use the generators' defaults
// (connectivity-threshold radius, m=2).
func generate(kind string, n int, seed int64) (*topology.Graph, error) {
	if n < 4 {
		return nil, fmt.Errorf("-kind needs -n of at least 4, got %d", n)
	}
	switch kind {
	case "transit-stub", "transitstub", "ts":
		return topology.TransitStub(n, seed), nil
	case "geo", "geometric":
		return topology.RandomGeometric(n, 0, seed), nil
	case "pa", "preferential":
		return topology.PreferentialAttachment(n, 0, seed), nil
	default:
		return nil, fmt.Errorf("unknown -kind %q (want transit-stub, geo, or pa)", kind)
	}
}

func parse(name string) (*topology.Graph, error) {
	switch {
	case name == "cw24":
		return topology.CW24(), nil
	case name == "att33":
		return topology.ATT33(), nil
	case name == "fig7":
		return topology.Figure7Tree(), nil
	case strings.HasPrefix(name, "waxman:"):
		parts := strings.Split(name, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("waxman topology wants waxman:<n>:<seed>")
		}
		n, err1 := strconv.Atoi(parts[1])
		seed, err2 := strconv.ParseInt(parts[2], 10, 64)
		if err1 != nil || err2 != nil || n < 2 {
			return nil, fmt.Errorf("bad waxman spec %q", name)
		}
		return topology.Waxman(n, 0.4, 0.15, seed), nil
	case strings.HasPrefix(name, "random:"):
		parts := strings.Split(name, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("random topology wants random:<n>:<extra>:<seed>")
		}
		n, err1 := strconv.Atoi(parts[1])
		extra, err2 := strconv.Atoi(parts[2])
		seed, err3 := strconv.ParseInt(parts[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || n < 2 {
			return nil, fmt.Errorf("bad random spec %q", name)
		}
		return topology.Random(n, extra, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}
