package main

import "testing"

func TestParse(t *testing.T) {
	cases := map[string]int{
		"cw24":          24,
		"att33":         33,
		"fig7":          13,
		"waxman:20:3":   20,
		"random:15:4:2": 15,
	}
	for in, want := range cases {
		g, err := parse(in)
		if err != nil {
			t.Errorf("parse(%q): %v", in, err)
			continue
		}
		if g.Len() != want {
			t.Errorf("parse(%q).Len() = %d, want %d", in, g.Len(), want)
		}
		if !g.Connected() {
			t.Errorf("parse(%q) not connected", in)
		}
	}
	for _, in := range []string{"", "bogus", "waxman:", "waxman:1:2", "waxman:x:2", "random:2:3"} {
		if _, err := parse(in); err == nil {
			t.Errorf("parse(%q) accepted", in)
		}
	}
}

func TestGenerate(t *testing.T) {
	for _, kind := range []string{"transit-stub", "geo", "pa"} {
		for _, n := range []int{64, 300, 1000} {
			g, err := generate(kind, n, 7)
			if err != nil {
				t.Errorf("generate(%q, %d): %v", kind, n, err)
				continue
			}
			if g.Len() != n {
				t.Errorf("generate(%q, %d).Len() = %d", kind, n, g.Len())
			}
			if !g.Connected() {
				t.Errorf("generate(%q, %d) not connected", kind, n)
			}
		}
		// Deterministic per seed: two builds of the same spec are the
		// same graph edge for edge.
		a, _ := generate(kind, 200, 3)
		b, _ := generate(kind, 200, 3)
		if a.DOT() != b.DOT() {
			t.Errorf("generate(%q) not deterministic per seed", kind)
		}
	}
	if _, err := generate("bogus", 64, 1); err == nil {
		t.Error("generate accepted unknown kind")
	}
	if _, err := generate("geo", 2, 1); err == nil {
		t.Error("generate accepted n below the minimum")
	}
}
