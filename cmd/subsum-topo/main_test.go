package main

import "testing"

func TestParse(t *testing.T) {
	cases := map[string]int{
		"cw24":          24,
		"att33":         33,
		"fig7":          13,
		"waxman:20:3":   20,
		"random:15:4:2": 15,
	}
	for in, want := range cases {
		g, err := parse(in)
		if err != nil {
			t.Errorf("parse(%q): %v", in, err)
			continue
		}
		if g.Len() != want {
			t.Errorf("parse(%q).Len() = %d, want %d", in, g.Len(), want)
		}
		if !g.Connected() {
			t.Errorf("parse(%q) not connected", in)
		}
	}
	for _, in := range []string{"", "bogus", "waxman:", "waxman:1:2", "waxman:x:2", "random:2:3"} {
		if _, err := parse(in); err == nil {
			t.Errorf("parse(%q) accepted", in)
		}
	}
}
