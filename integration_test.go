package subsum_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	subsum "github.com/subsum/subsum"
)

// refSub is the reference model's view of one live subscription.
type refSub struct {
	id    subsum.SubscriptionID
	sub   *subsum.Subscription
	alive bool
}

// deliveryLog collects deliveries keyed by subscription id.
type deliveryLog struct {
	mu     sync.Mutex
	counts map[uint64]int
}

func (l *deliveryLog) deliver(id subsum.SubscriptionID, _ *subsum.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.counts[id.Key()]++
}

func (l *deliveryLog) get(id subsum.SubscriptionID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[id.Key()]
}

// TestChurnIntegration drives the whole system through several periods of
// subscription churn (subscribe/unsubscribe), schema evolution, and event
// bursts on a random overlay, checking every delivery count against a
// brute-force reference model. This is the repository's end-to-end
// correctness gate.
func TestChurnIntegration(t *testing.T) {
	for _, tc := range []struct {
		name   string
		topo   *subsum.Graph
		mode   subsum.SummaryMode
		filter bool
	}{
		{name: "backbone-lossy", topo: subsum.Backbone24(), mode: subsum.Lossy},
		{name: "backbone-exact", topo: subsum.Backbone24(), mode: subsum.Exact},
		{name: "random-filtered", topo: subsum.RandomOverlay(16, 6, 3), mode: subsum.Lossy, filter: true},
		{name: "tree", topo: subsum.ExampleTree13(), mode: subsum.Lossy},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			gen, err := subsum.NewWorkload(subsum.DefaultWorkload())
			if err != nil {
				t.Fatal(err)
			}
			s := gen.Schema()
			net, err := subsum.NewNetwork(subsum.NetworkConfig{
				Topology:             tc.topo,
				Schema:               s,
				Mode:                 tc.mode,
				FilterSubsumedDeltas: tc.filter,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer net.Close()

			rng := rand.New(rand.NewSource(99))
			log := &deliveryLog{counts: make(map[uint64]int)}
			var refs []*refSub
			expected := make(map[uint64]int)

			n := tc.topo.Len()
			for period := 0; period < 4; period++ {
				// Churn: add new subscriptions...
				for i := 0; i < 30; i++ {
					sub := gen.AnchoredSubscription(0.5)
					id, err := net.Subscribe(subsum.NodeID(rng.Intn(n)), sub, log.deliver)
					if err != nil {
						t.Fatal(err)
					}
					refs = append(refs, &refSub{id: id, sub: sub, alive: true})
				}
				// ...drop a few old ones.
				for i := 0; i < 5 && len(refs) > 10; i++ {
					victim := refs[rng.Intn(len(refs))]
					if !victim.alive {
						continue
					}
					if err := net.Unsubscribe(victim.id); err != nil {
						t.Fatal(err)
					}
					victim.alive = false
				}
				// Evolve the schema occasionally.
				if period == 2 {
					if _, err := net.ExtendSchema(fmt.Sprintf("evolved%d", period), subsum.TypeFloat); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := net.Propagate(); err != nil {
					t.Fatal(err)
				}
				// An event burst; update the reference expectations.
				for e := 0; e < 60; e++ {
					ev := gen.Event(0.8)
					if err := net.Publish(subsum.NodeID(rng.Intn(n)), ev); err != nil {
						t.Fatal(err)
					}
					for _, r := range refs {
						if r.alive && r.sub.Matches(ev) {
							expected[r.id.Key()]++
						}
					}
				}
				net.Flush()
			}

			for _, r := range refs {
				want := expected[r.id.Key()]
				if got := log.get(r.id); got != want {
					t.Fatalf("%s: subscription %v: %d deliveries, want %d",
						tc.name, r.id, got, want)
				}
			}
			// Sanity: the run exercised real traffic.
			if st := net.Stats(); st.TotalMessages() == 0 {
				t.Fatal("no messages moved")
			}
		})
	}
}

// TestDeterministicPipelineAgainstLiveEngine cross-validates the two
// execution paths: for identical subscriptions, the deterministic
// propagation result reports the same per-broker coverage counts as the
// live engine's merged summaries.
func TestDeterministicPipelineAgainstLiveEngine(t *testing.T) {
	gen, err := subsum.NewWorkload(subsum.DefaultWorkload())
	if err != nil {
		t.Fatal(err)
	}
	s := gen.Schema()
	topo := subsum.Backbone24()
	n := topo.Len()

	// Same subscriptions on both paths.
	subsPerBroker := make([][]*subsum.Subscription, n)
	for i := range subsPerBroker {
		for j := 0; j < 5; j++ {
			subsPerBroker[i] = append(subsPerBroker[i], gen.Subscription())
		}
	}

	// Live engine.
	net, err := subsum.NewNetwork(subsum.NetworkConfig{Topology: topo, Schema: s})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	for i, list := range subsPerBroker {
		for _, sub := range list {
			if _, err := net.Subscribe(subsum.NodeID(i), sub, func(subsum.SubscriptionID, *subsum.Event) {}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}

	// Deterministic path.
	own := make([]*subsum.Summary, n)
	for i, list := range subsPerBroker {
		own[i] = subsum.NewSummary(s, subsum.Lossy)
		for j, sub := range list {
			id := subsum.SubscriptionID{Broker: subsum.BrokerID(i), Local: subsum.LocalID(j)}
			if err := own[i].Insert(id, sub); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := subsum.RunPropagation(topo, own)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		liveStats := net.Broker(subsum.NodeID(i)).Stats()
		detCount := res.Merged[i].NumSubscriptions()
		if liveStats.MergedSummarySubs != detCount {
			t.Fatalf("broker %d: live merged %d subs, deterministic %d",
				i, liveStats.MergedSummarySubs, detCount)
		}
		if liveStats.MergedBrokerCount != res.MergedBrokers[i].Count() {
			t.Fatalf("broker %d: live coverage %d, deterministic %d",
				i, liveStats.MergedBrokerCount, res.MergedBrokers[i].Count())
		}
	}
}
