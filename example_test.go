package subsum_test

import (
	"bytes"
	"fmt"

	subsum "github.com/subsum/subsum"
)

// ExampleParseSubscription shows the textual subscription language,
// including the paper's pattern operators.
func ExampleParseSubscription() {
	s := subsum.MustSchema(
		subsum.Attribute{Name: "exchange", Type: subsum.TypeString},
		subsum.Attribute{Name: "symbol", Type: subsum.TypeString},
		subsum.Attribute{Name: "price", Type: subsum.TypeFloat},
	)
	sub, err := subsum.ParseSubscription(s, `exchange = "N*SE" && symbol >* OT && price < 8.70`)
	if err != nil {
		panic(err)
	}
	fmt.Println(sub.Format(s))
	ev, _ := subsum.ParseEvent(s, `exchange=NYSE symbol=OTE price=8.40`)
	fmt.Println(sub.Matches(ev))
	// Output:
	// exchange ~ "N*SE" && symbol >* "OT" && price < 8.7
	// true
}

// ExampleSummary_Match runs the paper's Example 1: the Figure 2 event
// against the two Figure 3 subscriptions, matched purely via the summary
// structures (Algorithm 1).
func ExampleSummary_Match() {
	s := subsum.MustSchema(
		subsum.Attribute{Name: "exchange", Type: subsum.TypeString},
		subsum.Attribute{Name: "symbol", Type: subsum.TypeString},
		subsum.Attribute{Name: "price", Type: subsum.TypeFloat},
		subsum.Attribute{Name: "volume", Type: subsum.TypeInt},
		subsum.Attribute{Name: "low", Type: subsum.TypeFloat},
	)
	sm := subsum.NewSummary(s, subsum.Lossy)
	sub1, _ := subsum.ParseSubscription(s, `exchange = "N*SE" && symbol = OTE && price < 8.70 && price > 8.30`)
	sub2, _ := subsum.ParseSubscription(s, `symbol >* OT && price = 8.20 && volume > 130000 && low < 8.05`)
	_ = sm.Insert(subsum.SubscriptionID{Broker: 0, Local: 1}, sub1)
	_ = sm.Insert(subsum.SubscriptionID{Broker: 0, Local: 2}, sub2)

	ev, _ := subsum.ParseEvent(s, `exchange=NYSE symbol=OTE price=8.40 volume=132700 low=8.22`)
	for _, id := range sm.Match(ev) {
		fmt.Printf("matched subscription S%d\n", id.Local)
	}
	// Output:
	// matched subscription S1
}

// ExampleRunPropagation reproduces the Figure 7 propagation walkthrough.
func ExampleRunPropagation() {
	g := subsum.ExampleTree13()
	s := subsum.MustSchema(subsum.Attribute{Name: "x", Type: subsum.TypeFloat})
	own := make([]*subsum.Summary, g.Len())
	for i := range own {
		own[i] = subsum.NewSummary(s, subsum.Lossy)
		sub, _ := subsum.NewSubscription(s, subsum.Constraint{
			Attr: 0, Op: subsum.OpEQ, Value: subsum.Float(float64(i)),
		})
		_ = own[i].Insert(subsum.SubscriptionID{Broker: subsum.BrokerID(i)}, sub)
	}
	res, err := subsum.RunPropagation(g, own)
	if err != nil {
		panic(err)
	}
	// Broker 5 (node 4) ends up knowing brokers 1-6, as the paper states.
	fmt.Println("hops:", res.Hops)
	fmt.Println("broker 5 coverage:", res.MergedBrokers[4].Count())
	// Output:
	// hops: 10
	// broker 5 coverage: 6
}

// ExampleNetwork_SaveSnapshot persists a network and restores it.
func ExampleNetwork_SaveSnapshot() {
	s := subsum.MustSchema(subsum.Attribute{Name: "price", Type: subsum.TypeFloat})
	net, _ := subsum.NewNetwork(subsum.NetworkConfig{Topology: subsum.RingOverlay(3), Schema: s})
	defer net.Close()
	sub, _ := subsum.ParseSubscription(s, `price > 5`)
	_, _ = net.Subscribe(1, sub, func(subsum.SubscriptionID, *subsum.Event) {})

	var buf bytes.Buffer
	_ = net.SaveSnapshot(&buf)

	restored, err := subsum.LoadSnapshot(&buf, subsum.NetworkConfig{Topology: subsum.RingOverlay(3)},
		func(id subsum.SubscriptionID, sub *subsum.Subscription) subsum.DeliveryFunc {
			return func(subsum.SubscriptionID, *subsum.Event) {}
		})
	if err != nil {
		panic(err)
	}
	defer restored.Close()
	fmt.Println("restored subscriptions:", restored.Broker(1).NumSubscriptions())
	// Output:
	// restored subscriptions: 1
}
