package subsum_test

import (
	"sync"
	"testing"

	subsum "github.com/subsum/subsum"
)

// TestQuickstart exercises the documented public-API flow end to end.
func TestQuickstart(t *testing.T) {
	s := subsum.MustSchema(
		subsum.Attribute{Name: "symbol", Type: subsum.TypeString},
		subsum.Attribute{Name: "price", Type: subsum.TypeFloat},
	)
	net, err := subsum.NewNetwork(subsum.NetworkConfig{
		Topology: subsum.Backbone24(),
		Schema:   s,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	sub, err := subsum.ParseSubscription(s, `symbol = OTE && price < 8.70 && price > 8.30`)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	if _, err := net.Subscribe(3, sub, func(id subsum.SubscriptionID, ev *subsum.Event) {
		mu.Lock()
		got = append(got, ev.Format(s))
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	hit, err := subsum.ParseEvent(s, `symbol=OTE price=8.40`)
	if err != nil {
		t.Fatal(err)
	}
	miss, err := subsum.ParseEvent(s, `symbol=OTE price=9.40`)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Publish(0, hit); err != nil {
		t.Fatal(err)
	}
	if err := net.Publish(0, miss); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("deliveries = %v, want exactly the matching event", got)
	}
}

func TestSummaryFacade(t *testing.T) {
	s := subsum.MustSchema(
		subsum.Attribute{Name: "price", Type: subsum.TypeFloat},
	)
	sm := subsum.NewSummary(s, subsum.Lossy)
	sub, err := subsum.NewSubscription(s, subsum.Constraint{
		Attr: 0, Op: subsum.OpGT, Value: subsum.Float(8.30),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Insert(subsum.SubscriptionID{Broker: 2, Local: 7}, sub); err != nil {
		t.Fatal(err)
	}
	buf := sm.Encode(nil)
	back, err := subsum.DecodeSummary(s, buf)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := subsum.NewEvent(s, map[string]subsum.Value{"price": subsum.Float(9)})
	if err != nil {
		t.Fatal(err)
	}
	ids := back.Match(ev)
	if len(ids) != 1 || ids[0].Broker != 2 || ids[0].Local != 7 {
		t.Fatalf("Match = %v", ids)
	}
}

func TestWorkloadFacade(t *testing.T) {
	gen, err := subsum.NewWorkload(subsum.DefaultWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if gen.Schema().Len() != 10 {
		t.Fatalf("schema len = %d", gen.Schema().Len())
	}
	sub := gen.Subscription()
	if sub.NumAttrs() != 5 {
		t.Fatalf("NumAttrs = %d", sub.NumAttrs())
	}
}

func TestTopologyFacade(t *testing.T) {
	if subsum.Backbone24().Len() != 24 {
		t.Fatal("Backbone24 size")
	}
	if subsum.ExampleTree13().Len() != 13 {
		t.Fatal("ExampleTree13 size")
	}
	g := subsum.NewGraph("mine", 3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("graph should be connected")
	}
}
