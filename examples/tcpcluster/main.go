// Tcpcluster: the system over real TCP sockets. A wire.Server hosts the
// broker network; two independent clients connect over loopback, one
// subscribing at two different brokers, the other publishing — deliveries
// stream back over the subscriber's connection as JSON lines.
//
// This is the same protocol cmd/subsumd speaks, so everything here can be
// reproduced against a standalone daemon with `nc`.
package main

import (
	"fmt"
	"log"
	"sync"

	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/wire"
)

func main() {
	s := schema.MustNew(
		schema.Attribute{Name: "region", Type: schema.TypeString},
		schema.Attribute{Name: "service", Type: schema.TypeString},
		schema.Attribute{Name: "latency_ms", Type: schema.TypeFloat},
	)
	network, err := core.New(core.Config{Topology: topology.CW24(), Schema: s})
	if err != nil {
		log.Fatal(err)
	}
	defer network.Close()

	srv := wire.NewServer(network, s)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("wire server on", addr)

	// Subscriber client: alerts for slow requests in two regions.
	var mu sync.Mutex
	var alerts []string
	subscriber, err := wire.Dial(addr, func(broker int, local uint32, event string) {
		mu.Lock()
		alerts = append(alerts, fmt.Sprintf("broker %d sub %d: %s", broker, local, event))
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}
	defer subscriber.Close()
	if _, _, err := subscriber.Subscribe(4, `region = us-east && latency_ms > 250`); err != nil {
		log.Fatal(err)
	}
	if _, _, err := subscriber.Subscribe(21, `service >* auth && latency_ms > 100`); err != nil {
		log.Fatal(err)
	}
	hops, err := subscriber.Propagate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summaries propagated in %d hops\n", hops)

	// Publisher client: a burst of latency samples from various brokers.
	publisher, err := wire.Dial(addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer publisher.Close()
	samples := []struct {
		broker int
		event  string
	}{
		{0, `region=us-east service=search latency_ms=300`},   // matches sub 1
		{9, `region=us-east service=search latency_ms=120`},   // too fast
		{17, `region=eu-west service=auth-v2 latency_ms=180`}, // matches sub 2
		{12, `region=us-east service=auth-v2 latency_ms=400`}, // matches both
		{3, `region=ap-south service=billing latency_ms=90`},  // matches none
	}
	for _, smp := range samples {
		if err := publisher.Publish(smp.broker, smp.event); err != nil {
			log.Fatal(err)
		}
	}
	// Publish waits for routing; one subscriber round trip flushes the
	// delivery stream ordering.
	if err := subscriber.Ping(); err != nil {
		log.Fatal(err)
	}

	mu.Lock()
	fmt.Printf("received %d alerts:\n", len(alerts))
	for _, a := range alerts {
		fmt.Println(" ", a)
	}
	mu.Unlock()

	stats, err := publisher.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: %d summary msgs (%d bytes), %d event msgs, %d deliveries\n",
		stats["summary_messages"], stats["summary_bytes"], stats["event_messages"], stats["deliver_messages"])
}
