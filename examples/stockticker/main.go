// Stockticker: the paper's own motivating scenario (Figures 2 and 3) at a
// realistic scale. Brokers across a 24-node backbone serve traders whose
// subscriptions mix arithmetic bands (price, volume) and string patterns
// (exchange "N*SE", symbol prefixes); a market feed publishes quote events
// from several brokers, and every trader receives exactly the quotes their
// subscription matches — no false deliveries despite the lossy summaries.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"

	subsum "github.com/subsum/subsum"
)

// trader is one consumer with a subscription and a delivery count.
type trader struct {
	name   string
	broker subsum.NodeID
	query  string

	mu    sync.Mutex
	count int
	last  string
}

func main() {
	s := subsum.MustSchema(
		subsum.Attribute{Name: "exchange", Type: subsum.TypeString},
		subsum.Attribute{Name: "symbol", Type: subsum.TypeString},
		subsum.Attribute{Name: "when", Type: subsum.TypeDate},
		subsum.Attribute{Name: "price", Type: subsum.TypeFloat},
		subsum.Attribute{Name: "volume", Type: subsum.TypeInt},
		subsum.Attribute{Name: "high", Type: subsum.TypeFloat},
		subsum.Attribute{Name: "low", Type: subsum.TypeFloat},
	)
	net, err := subsum.NewNetwork(subsum.NetworkConfig{
		Topology: subsum.Backbone24(),
		Schema:   s,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	traders := []*trader{
		// The paper's Subscription 1: N*SE exchanges, OTE in a price band.
		{name: "figure3-sub1", broker: 2, query: `exchange = "N*SE" && symbol = OTE && price < 8.70 && price > 8.30`},
		// The paper's Subscription 2: symbol prefix, exact price, volume floor.
		{name: "figure3-sub2", broker: 19, query: `symbol >* OT && price = 8.20 && volume > 130000 && low < 8.05`},
		{name: "momentum", broker: 7, query: `volume > 500000 && price > 50`},
		{name: "penny-watcher", broker: 11, query: `price < 1.00`},
		{name: "lse-only", broker: 14, query: `exchange = LSE`},
		{name: "tech-prefix", broker: 23, query: `symbol >* MICRO && price < 40`},
	}
	for _, tr := range traders {
		sub, err := subsum.ParseSubscription(s, tr.query)
		if err != nil {
			log.Fatalf("%s: %v", tr.name, err)
		}
		tr := tr
		if _, err := net.Subscribe(tr.broker, sub, func(_ subsum.SubscriptionID, ev *subsum.Event) {
			tr.mu.Lock()
			tr.count++
			tr.last = ev.Format(s)
			tr.mu.Unlock()
		}); err != nil {
			log.Fatal(err)
		}
	}

	hops, err := net.Propagate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("propagated %d subscriptions in %d summary hops\n\n", len(traders), hops)

	// A deterministic market feed: the Figure 2 event plus generated quotes.
	rng := rand.New(rand.NewSource(7))
	quotes := []string{
		`exchange=NYSE symbol=OTE when=1057061125 price=8.40 volume=132700 high=8.80 low=8.22`,
	}
	symbols := []string{"OTE", "MICROSOFT", "MICRONET", "IBM", "ACME"}
	exchanges := []string{"NYSE", "LSE", "NASDAQ", "OSE"}
	for i := 0; i < 400; i++ {
		quotes = append(quotes, fmt.Sprintf(
			"exchange=%s symbol=%s price=%.2f volume=%d",
			exchanges[rng.Intn(len(exchanges))],
			symbols[rng.Intn(len(symbols))],
			rng.Float64()*100,
			rng.Intn(1_000_000),
		))
	}
	for i, q := range quotes {
		ev, err := subsum.ParseEvent(s, q)
		if err != nil {
			log.Fatalf("quote %d: %v", i, err)
		}
		if err := net.Publish(subsum.NodeID(i%net.Len()), ev); err != nil {
			log.Fatal(err)
		}
	}
	net.Flush()

	sort.Slice(traders, func(i, j int) bool { return traders[i].name < traders[j].name })
	fmt.Printf("%-14s %-7s %-9s %s\n", "trader", "broker", "delivered", "last event")
	for _, tr := range traders {
		tr.mu.Lock()
		fmt.Printf("%-14s %-7d %-9d %s\n", tr.name, tr.broker, tr.count, tr.last)
		tr.mu.Unlock()
	}
	st := net.Stats()
	fmt.Printf("\n%d quotes routed with %d messages (%d bytes) on the bus\n",
		len(quotes), st.TotalMessages(), st.TotalBytes())
}
