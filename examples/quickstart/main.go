// Quickstart: a minimal publish/subscribe round trip through the public
// API — build a broker overlay, subscribe at one broker, propagate the
// subscription summaries (Algorithm 2), publish events at another broker,
// and watch Algorithm 3 deliver exactly the matching ones.
package main

import (
	"fmt"
	"log"
	"sync"

	subsum "github.com/subsum/subsum"
)

func main() {
	// The global schema every broker agrees on (paper Section 3).
	s := subsum.MustSchema(
		subsum.Attribute{Name: "symbol", Type: subsum.TypeString},
		subsum.Attribute{Name: "price", Type: subsum.TypeFloat},
	)

	// A 24-broker overlay shaped like the paper's evaluation backbone.
	net, err := subsum.NewNetwork(subsum.NetworkConfig{
		Topology: subsum.Backbone24(),
		Schema:   s,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	// A consumer attached to broker 3 wants OTE quotes in a price band.
	sub, err := subsum.ParseSubscription(s, `symbol = OTE && price > 8.30 && price < 8.70`)
	if err != nil {
		log.Fatal(err)
	}
	var mu sync.Mutex
	id, err := net.Subscribe(3, sub, func(id subsum.SubscriptionID, ev *subsum.Event) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Printf("delivered to %v: %s\n", id, ev.Format(s))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscribed as %v: %s\n", id, sub.Format(s))

	// One propagation period spreads the summaries (Algorithm 2).
	hops, err := net.Propagate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summaries propagated in %d hops (fewer than %d brokers)\n", hops, net.Len())

	// Publish three events at a distant broker; only one matches.
	for _, text := range []string{
		`symbol=OTE price=8.40`, // match
		`symbol=OTE price=9.10`, // price outside the band
		`symbol=IBM price=8.40`, // wrong symbol
	} {
		ev, err := subsum.ParseEvent(s, text)
		if err != nil {
			log.Fatal(err)
		}
		if err := net.Publish(17, ev); err != nil {
			log.Fatal(err)
		}
	}
	net.Flush()

	st := net.Stats()
	fmt.Printf("bus traffic: %d messages, %d bytes\n", st.TotalMessages(), st.TotalBytes())
}
