// Newsalerts: a string-heavy scenario exercising the SACS side of the
// summaries — prefix (">*"), suffix ("*<"), containment ("*") and glob
// subscriptions over news headlines. It also demonstrates SACS
// generalization: many reader subscriptions collapse into a handful of
// covering pattern rows, which the broker statistics make visible.
package main

import (
	"fmt"
	"log"
	"sync"

	subsum "github.com/subsum/subsum"
)

func main() {
	s := subsum.MustSchema(
		subsum.Attribute{Name: "section", Type: subsum.TypeString},
		subsum.Attribute{Name: "source", Type: subsum.TypeString},
		subsum.Attribute{Name: "headline", Type: subsum.TypeString},
		subsum.Attribute{Name: "words", Type: subsum.TypeInt},
	)
	net, err := subsum.NewNetwork(subsum.NetworkConfig{
		Topology: subsum.ExampleTree13(), // the paper's Figure 7 tree
		Schema:   s,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	type reader struct {
		name   string
		broker subsum.NodeID
		query  string
	}
	readers := []reader{
		{"tech-desk", 0, `section = tech && headline * "chip"`}, // containment
		{"micro-corps", 3, `headline * "micro"`},                // containment
		{"m-t-glob", 3, `source = "m*t"`},                       // the paper's m*t pattern
		{"reuters-only", 7, `source >* reuters`},                // prefix
		{"question-hunter", 9, `headline *< "?"`},               // suffix
		{"long-reads", 12, `words > 2000`},                      // arithmetic for contrast
		{"exact-source", 3, `source = micronet`},                // covered by m*t
	}
	var mu sync.Mutex
	counts := make(map[string]int)
	for _, r := range readers {
		sub, err := subsum.ParseSubscription(s, r.query)
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		name := r.name
		if _, err := net.Subscribe(r.broker, sub, func(_ subsum.SubscriptionID, ev *subsum.Event) {
			mu.Lock()
			counts[name]++
			mu.Unlock()
		}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := net.Propagate(); err != nil {
		log.Fatal(err)
	}

	stories := []string{
		`section=tech source=reuters-tech headline="new chip breaks records" words=900`,
		`section=tech source=micronet headline="microchip startup raises" words=1200`,
		`section=biz source=microsoft headline="earnings beat estimates" words=800`,
		`section=biz source=mint headline="is the rally over?" words=2400`,
		`section=sports source=ap headline="cup final tonight" words=400`,
	}
	for i, text := range stories {
		ev, err := subsum.ParseEvent(s, text)
		if err != nil {
			log.Fatalf("story %d: %v", i, err)
		}
		if err := net.Publish(subsum.NodeID(i%net.Len()), ev); err != nil {
			log.Fatal(err)
		}
	}
	net.Flush()

	fmt.Println("deliveries per reader:")
	for _, r := range readers {
		mu.Lock()
		fmt.Printf("  %-16s %d\n", r.name, counts[r.name])
		mu.Unlock()
	}

	// Show the generalization at broker 3: three subscriptions
	// (containment "micro", glob m*t, equality micronet) summarize into
	// fewer pattern rows than subscriptions.
	st := net.Broker(3).Stats()
	fmt.Printf("\nbroker 3 summary: %d own subscriptions, %d summarized across %d merged brokers, %d model bytes\n",
		st.OwnSubscriptions, st.MergedSummarySubs, st.MergedBrokerCount, st.ModelBytes)
}
