// Loadbalance: the paper's Section 6 load-balancing extension in action.
// Under plain Algorithm 3, the highest-degree broker is the first stop of
// every event's examination chain and becomes a hotspot; with virtual
// degrees, maximum-degree brokers advertise a capped degree, spreading the
// examination load while keeping deliveries identical. This example runs
// the same event stream through both deterministic routers and prints the
// per-broker examination load.
package main

import (
	"fmt"
	"log"

	subsum "github.com/subsum/subsum"
)

func main() {
	topo := subsum.Backbone24()
	gen, err := subsum.NewWorkload(subsum.DefaultWorkload())
	if err != nil {
		log.Fatal(err)
	}
	s := gen.Schema()

	// One distinctive subscription per broker so routing has real content.
	own := make([]*subsum.Summary, topo.Len())
	for i := range own {
		own[i] = subsum.NewSummary(s, subsum.Lossy)
		id := subsum.SubscriptionID{Broker: subsum.BrokerID(i)}
		if err := own[i].Insert(id, gen.Subscription()); err != nil {
			log.Fatal(err)
		}
	}
	prop, err := subsum.RunPropagation(topo, own)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("propagation: %d hops across %d brokers\n\n", prop.Hops, topo.Len())

	run := func(name string, cfg subsum.RouterConfig) {
		router, err := subsum.NewRouter(topo, prop, cfg)
		if err != nil {
			log.Fatal(err)
		}
		visits := make([]int, topo.Len())
		totalHops := 0
		events := 0
		for origin := 0; origin < topo.Len(); origin++ {
			for e := 0; e < 200; e++ {
				matchedInts := gen.MatchedBrokers(0.25, topo.Len())
				matched := make([]subsum.NodeID, len(matchedInts))
				for i, m := range matchedInts {
					matched[i] = subsum.NodeID(m)
				}
				trace := router.Route(subsum.NodeID(origin), router.PopularityMatch(matched))
				totalHops += trace.Hops()
				for _, v := range trace.Visited {
					visits[v]++
				}
				events++
			}
		}
		total, max, hot := 0, 0, 0
		for b, v := range visits {
			total += v
			if v > max {
				max, hot = v, b
			}
		}
		fmt.Printf("%-16s mean hops %.2f, hottest broker %d examined %d times (%.1f%% of all examinations)\n",
			name, float64(totalHops)/float64(events), hot, max, 100*float64(max)/float64(total))
		// A tiny histogram of examination load.
		fmt.Print("                 load: ")
		for _, v := range visits {
			bar := v * 10 / (max + 1)
			fmt.Print([]string{"·", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█", "█", "█"}[bar])
		}
		fmt.Println()
	}

	run("highest-degree", subsum.RouterConfig{Strategy: subsum.HighestDegree})
	run("virtual-degree", subsum.RouterConfig{Strategy: subsum.VirtualDegree, VirtualDegreeCap: 3})
}
