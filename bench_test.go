// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark family per figure; see experiments/ for the harness and
// EXPERIMENTS.md for paper-versus-measured numbers), plus microbenchmarks
// of the core operations the Section 5.2.4 analysis reasons about:
// Algorithm 1 matching, summary insertion/merging/encoding, Algorithm 2
// propagation, and Algorithm 3 routing.
//
// Run with: go test -bench=. -benchmem
package subsum_test

import (
	"fmt"
	"testing"

	subsum "github.com/subsum/subsum"
	"github.com/subsum/subsum/experiments"
)

// benchConfig keeps the figure benchmarks fast while preserving the full
// pipeline; use cmd/subsum-bench for the paper-scale sweeps.
func benchConfig() experiments.Config {
	cfg := experiments.Default()
	cfg.Sigmas = []int{10, 100}
	cfg.Subsumptions = []float64{0.10, 0.90}
	cfg.Popularities = []float64{0.10, 0.90}
	cfg.EventsPerBroker = 100
	return cfg
}

func BenchmarkFig8Bandwidth(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9PropagationHops(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10EventRouting(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Storage(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7Trace(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationForwarding(b *testing.B) {
	cfg := benchConfig()
	cfg.EventsPerBroker = 50
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationForwarding(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEqualityFolding(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEqualityFolding(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSubsumptionCombo(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSubsumptionCombo(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBatch(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBatch(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// buildSummary inserts n workload subscriptions into a fresh summary.
func buildSummary(b *testing.B, n int, mode subsum.SummaryMode) (*subsum.Summary, *subsum.WorkloadGenerator) {
	b.Helper()
	gen, err := subsum.NewWorkload(subsum.DefaultWorkload())
	if err != nil {
		b.Fatal(err)
	}
	sm := subsum.NewSummary(gen.Schema(), mode)
	for i := 0; i < n; i++ {
		id := subsum.SubscriptionID{Broker: subsum.BrokerID(i % 1024), Local: subsum.LocalID(i / 1024)}
		if err := sm.Insert(id, gen.Subscription()); err != nil {
			b.Fatal(err)
		}
	}
	return sm, gen
}

// BenchmarkMatching measures Algorithm 1 per event against summaries of
// growing size — the Section 5.2.4 cost analysis (expected O(N)).
func BenchmarkMatching(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("subs-%d", n), func(b *testing.B) {
			sm, gen := buildSummary(b, n, subsum.Lossy)
			events := make([]*subsum.Event, 256)
			for i := range events {
				events[i] = gen.Event(0.5)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sm.MatchKeys(events[i%len(events)])
			}
		})
	}
}

// sigma100Subs is the "Sigma=100" matcher baseline workload: the paper's
// 24-broker backbone at sigma = 100 subscriptions per broker.
const sigma100Subs = 24 * 100

// matcherWorkload builds the Sigma=100 summary and a fixed event stream
// for the BenchmarkMatcher* family (tracked in BENCH_matching.json).
func matcherWorkload(b *testing.B) (*subsum.Summary, []*subsum.Event) {
	sm, gen := buildSummary(b, sigma100Subs, subsum.Lossy)
	events := make([]*subsum.Event, 256)
	for i := range events {
		events[i] = gen.Event(0.5)
	}
	return sm, events
}

// BenchmarkMatcherMapBased is the pre-Matcher Algorithm 1 path: per-event
// counter maps allocated inside Summary.MatchKeys. Kept as the benchmark
// baseline the pooled matcher is measured against.
func BenchmarkMatcherMapBased(b *testing.B) {
	sm, events := matcherWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm.MatchKeys(events[i%len(events)])
	}
}

// BenchmarkMatcherPooled is the same workload through a reusable Matcher:
// dense epoch-stamped counters, indexed SACS lookups, zero steady-state
// allocations (asserted by TestMatcherZeroAllocs in internal/summary).
func BenchmarkMatcherPooled(b *testing.B) {
	sm, events := matcherWorkload(b)
	m := sm.NewMatcher()
	for _, ev := range events { // warm up scratch capacity
		m.MatchKeys(ev)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchKeys(events[i%len(events)])
	}
}

// BenchmarkMatcherPooledParallel drives pooled matchers from all Ps — the
// configuration the experiments harness uses for its event sweeps.
func BenchmarkMatcherPooledParallel(b *testing.B) {
	sm, events := matcherWorkload(b)
	pool := subsum.NewMatcherPool(sm)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m := pool.Get()
			m.MatchKeys(events[i%len(events)])
			pool.Put(m)
			i++
		}
	})
}

// BenchmarkSummaryInsert measures per-subscription summarization cost.
func BenchmarkSummaryInsert(b *testing.B) {
	gen, err := subsum.NewWorkload(subsum.DefaultWorkload())
	if err != nil {
		b.Fatal(err)
	}
	subs := make([]*subsum.Subscription, 4096)
	for i := range subs {
		subs[i] = gen.Subscription()
	}
	b.ResetTimer()
	sm := subsum.NewSummary(gen.Schema(), subsum.Lossy)
	for i := 0; i < b.N; i++ {
		if i%len(subs) == 0 && i > 0 {
			sm = subsum.NewSummary(gen.Schema(), subsum.Lossy)
		}
		id := subsum.SubscriptionID{Broker: subsum.BrokerID(i % 1024), Local: subsum.LocalID(i / 1024)}
		if err := sm.Insert(id, subs[i%len(subs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummaryMerge measures multi-broker summary merging
// (Section 4.1), the inner operation of Algorithm 2.
func BenchmarkSummaryMerge(b *testing.B) {
	a, _ := buildSummary(b, 1000, subsum.Lossy)
	other, _ := buildSummary(b, 1000, subsum.Lossy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clone := a.Clone()
		if err := clone.Merge(other); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummaryEncode measures the wire codec for a 1000-subscription
// summary (what one Algorithm 2 send serializes).
func BenchmarkSummaryEncode(b *testing.B) {
	sm, _ := buildSummary(b, 1000, subsum.Lossy)
	b.ResetTimer()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = sm.Encode(buf[:0])
	}
	b.SetBytes(int64(len(sm.Encode(nil))))
}

// BenchmarkSummaryDecode measures parsing the same summary back.
func BenchmarkSummaryDecode(b *testing.B) {
	sm, gen := buildSummary(b, 1000, subsum.Lossy)
	buf := sm.Encode(nil)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := subsum.DecodeSummary(gen.Schema(), buf); err != nil {
			b.Fatal(err)
		}
	}
}

// propagationWorkload builds per-broker Sigma=100 summaries over the
// 24-broker backbone — one Algorithm 2 phase's worth of input (tracked in
// BENCH_propagation.json via cmd/subsum-bench -experiment benchprop).
func propagationWorkload(b *testing.B) (*subsum.Graph, []*subsum.Summary) {
	b.Helper()
	g := subsum.Backbone24()
	gen, err := subsum.NewWorkload(subsum.DefaultWorkload())
	if err != nil {
		b.Fatal(err)
	}
	own := make([]*subsum.Summary, g.Len())
	for i := range own {
		own[i] = subsum.NewSummary(gen.Schema(), subsum.Lossy)
		for j := 0; j < 100; j++ {
			id := subsum.SubscriptionID{Broker: subsum.BrokerID(i), Local: subsum.LocalID(j)}
			if err := own[i].Insert(id, gen.Subscription()); err != nil {
				b.Fatal(err)
			}
		}
	}
	return g, own
}

// BenchmarkPropagationRun is the clone-free Algorithm 2 phase: one encode
// per send into a pooled buffer, MergeEncoded at the receiver,
// copy-on-receive merged summaries.
func BenchmarkPropagationRun(b *testing.B) {
	g, own := propagationWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := subsum.RunPropagation(g, own); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPropagationCloneBaseline is the clone-per-send reference path
// (wire codec v1) the pooled Run is measured against.
func BenchmarkPropagationCloneBaseline(b *testing.B) {
	g, own := propagationWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := subsum.RunPropagationReference(g, own); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecEncode compares the varint-delta v2 wire form against the
// legacy fixed-width v1 form on a Sigma=100 broker summary.
func BenchmarkCodecEncode(b *testing.B) {
	sm, _ := buildSummary(b, 100, subsum.Lossy)
	b.Run("v1", func(b *testing.B) {
		b.SetBytes(int64(len(sm.EncodeV1(nil))))
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = sm.EncodeV1(buf[:0])
		}
	})
	b.Run("v2", func(b *testing.B) {
		b.SetBytes(int64(len(sm.Encode(nil))))
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = sm.Encode(buf[:0])
		}
	})
}

// BenchmarkCodecDecode parses both wire versions of the same summary.
func BenchmarkCodecDecode(b *testing.B) {
	sm, gen := buildSummary(b, 100, subsum.Lossy)
	for _, v := range []struct {
		name string
		wire []byte
	}{{"v1", sm.EncodeV1(nil)}, {"v2", sm.Encode(nil)}} {
		b.Run(v.name, func(b *testing.B) {
			b.SetBytes(int64(len(v.wire)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := subsum.DecodeSummary(gen.Schema(), v.wire); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLiveEngineEndToEnd runs the full asynchronous engine: one
// propagation period plus a burst of published events with deliveries.
func BenchmarkLiveEngineEndToEnd(b *testing.B) {
	gen, err := subsum.NewWorkload(subsum.DefaultWorkload())
	if err != nil {
		b.Fatal(err)
	}
	s := gen.Schema()
	events := make([]*subsum.Event, 128)
	for i := range events {
		events[i] = gen.Event(0.8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net, err := subsum.NewNetwork(subsum.NetworkConfig{
			Topology: subsum.Backbone24(),
			Schema:   s,
		})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 240; j++ {
			if _, err := net.Subscribe(subsum.NodeID(j%24), gen.Subscription(),
				func(subsum.SubscriptionID, *subsum.Event) {}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := net.Propagate(); err != nil {
			b.Fatal(err)
		}
		for j, ev := range events {
			if err := net.Publish(subsum.NodeID(j%24), ev); err != nil {
				b.Fatal(err)
			}
		}
		net.Flush()
		b.StopTimer()
		net.Close()
		b.StartTimer()
	}
}

func BenchmarkSizeModelValidation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SizeModelValidation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossTopology(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CrossTopology(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
