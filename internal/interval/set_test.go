package interval

import (
	"math/rand"
	"reflect"
	"testing"
)

// checkInvariants asserts the AACSSR structural invariants: rows sorted,
// pairwise disjoint, none empty, all id lists non-empty and sorted, and (in
// Lossy mode) no equality value inside any row.
func checkInvariants(t *testing.T, s *Set) {
	t.Helper()
	rows := s.Rows()
	for i, r := range rows {
		if r.Interval.Empty() {
			t.Fatalf("row %d empty: %v", i, r.Interval)
		}
		if len(r.IDs) == 0 {
			t.Fatalf("row %d has no ids", i)
		}
		for j := 1; j < len(r.IDs); j++ {
			if r.IDs[j-1] >= r.IDs[j] {
				t.Fatalf("row %d ids not sorted/deduped: %v", i, r.IDs)
			}
		}
		if i > 0 && Overlaps(rows[i-1].Interval, r.Interval) {
			t.Fatalf("rows %d and %d overlap: %v %v", i-1, i, rows[i-1].Interval, r.Interval)
		}
		if i > 0 && !lowerLess(rows[i-1].Interval, r.Interval) {
			t.Fatalf("rows %d and %d out of order", i-1, i)
		}
	}
	if s.Mode() == Lossy {
		for _, e := range s.EqRows() {
			for _, r := range rows {
				if r.Interval.Contains(e.Value) {
					t.Fatalf("Lossy: equality value %g inside row %v", e.Value, r.Interval)
				}
			}
		}
	}
}

// TestPaperFigure4 reproduces the AACS of Figure 4: subscription S1 has
// 8.30 < price < 8.70 and S2 has price = 8.20.
func TestPaperFigure4(t *testing.T) {
	s := NewSet(Lossy)
	s.Insert(Range(8.30, 8.70, true, true), 1)
	s.Insert(Point(8.20), 2)
	checkInvariants(t, s)
	rows := s.Rows()
	if len(rows) != 1 || !rows[0].Interval.Equal(Range(8.30, 8.70, true, true)) {
		t.Fatalf("rows = %v", rows)
	}
	if !reflect.DeepEqual(rows[0].IDs, []uint64{1}) {
		t.Fatalf("row ids = %v", rows[0].IDs)
	}
	eq := s.EqRows()
	if len(eq) != 1 || eq[0].Value != 8.20 || !reflect.DeepEqual(eq[0].IDs, []uint64{2}) {
		t.Fatalf("eq = %v", eq)
	}
	// The Figure 2 event has price 8.40: S1 matches, S2 does not.
	if got := s.Query(8.40); !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("Query(8.40) = %v", got)
	}
	if got := s.Query(8.20); !reflect.DeepEqual(got, []uint64{2}) {
		t.Fatalf("Query(8.20) = %v", got)
	}
	if got := s.Query(9.0); len(got) != 0 {
		t.Fatalf("Query(9.0) = %v", got)
	}
}

func TestInsertRangeSplitsOverlap(t *testing.T) {
	s := NewSet(Lossy)
	s.Insert(Range(1, 5, false, false), 1)
	s.Insert(Range(3, 8, false, false), 2)
	checkInvariants(t, s)
	// Expect [1,3), [3,5], (5,8].
	rows := s.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	wantIvs := []Interval{
		Range(1, 3, false, true),
		Range(3, 5, false, false),
		Range(5, 8, true, false),
	}
	wantIDs := [][]uint64{{1}, {1, 2}, {2}}
	for i := range wantIvs {
		if !rows[i].Interval.Equal(wantIvs[i]) {
			t.Errorf("row %d = %v, want %v", i, rows[i].Interval, wantIvs[i])
		}
		if !reflect.DeepEqual(rows[i].IDs, wantIDs[i]) {
			t.Errorf("row %d ids = %v, want %v", i, rows[i].IDs, wantIDs[i])
		}
	}
	for v, want := range map[float64][]uint64{
		2: {1}, 3: {1, 2}, 4: {1, 2}, 5: {1, 2}, 6: {2}, 9: nil, 0: nil,
	} {
		got := s.Query(v)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Query(%g) = %v, want %v", v, got, want)
		}
	}
}

func TestInsertRangeCoveringMultipleRowsAndGaps(t *testing.T) {
	s := NewSet(Lossy)
	s.Insert(Range(1, 2, false, false), 1)
	s.Insert(Range(4, 5, false, false), 2)
	s.Insert(Range(0, 6, false, false), 3)
	checkInvariants(t, s)
	for v, want := range map[float64][]uint64{
		0.5: {3}, 1.5: {1, 3}, 3: {3}, 4.5: {2, 3}, 5.5: {3},
	} {
		if got := s.Query(v); !reflect.DeepEqual(got, want) {
			t.Errorf("Query(%g) = %v, want %v", v, got, want)
		}
	}
}

func TestUnboundedConstraints(t *testing.T) {
	s := NewSet(Lossy)
	s.Insert(Above(130000, false), 2) // volume > 130000
	s.Insert(Below(8.05, false), 7)   // low < 8.05 (different attribute in
	// reality, but the structure is generic)
	checkInvariants(t, s)
	if got := s.Query(132700); !reflect.DeepEqual(got, []uint64{2, 7}) {
		// 132700 > 130000 satisfies id 2, and 132700 < … no: Below(8.05)
		// does not contain 132700, so only id 2.
		if !reflect.DeepEqual(got, []uint64{2}) {
			t.Fatalf("Query(132700) = %v", got)
		}
	}
	if got := s.Query(5); !reflect.DeepEqual(got, []uint64{7}) {
		t.Fatalf("Query(5) = %v", got)
	}
}

func TestLossyEqualityFoldsIntoCoveringRange(t *testing.T) {
	s := NewSet(Lossy)
	s.Insert(Range(8, 9, false, false), 1)
	s.Insert(Point(8.5), 2) // inside the range: folds into the row
	checkInvariants(t, s)
	if len(s.EqRows()) != 0 {
		t.Fatalf("eq rows = %v, want folded", s.EqRows())
	}
	// The fold makes id 2 visible across the whole row (paper's lossy
	// pre-filter), including at 8.5 (no false negative).
	if got := s.Query(8.5); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("Query(8.5) = %v", got)
	}
	if got := s.Query(8.7); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("Query(8.7) = %v (lossy fold should over-approximate)", got)
	}
}

func TestLossyRangeInsertMigratesEqualities(t *testing.T) {
	s := NewSet(Lossy)
	s.Insert(Point(8.20), 2)
	s.Insert(Range(8, 9, false, false), 1) // arrives after the equality
	checkInvariants(t, s)
	if len(s.EqRows()) != 0 {
		t.Fatalf("eq rows = %v, want migrated", s.EqRows())
	}
	// No false negative at the equality point.
	got := s.Query(8.20)
	if !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("Query(8.20) = %v", got)
	}
}

func TestExactEqualitySplitsRange(t *testing.T) {
	s := NewSet(Exact)
	s.Insert(Range(8, 9, false, false), 1)
	s.Insert(Point(8.5), 2)
	checkInvariants(t, s)
	// Exact mode: id 2 only at exactly 8.5.
	if got := s.Query(8.5); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("Query(8.5) = %v", got)
	}
	if got := s.Query(8.7); !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("Query(8.7) = %v, want exact", got)
	}
	if got := s.Query(8.20); !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("Query(8.20) = %v", got)
	}
}

func TestExactEqualityOutsideRanges(t *testing.T) {
	s := NewSet(Exact)
	s.Insert(Point(8.20), 2)
	s.Insert(Range(8.5, 9, false, false), 1)
	checkInvariants(t, s)
	if got := s.Query(8.20); !reflect.DeepEqual(got, []uint64{2}) {
		t.Fatalf("Query(8.20) = %v", got)
	}
}

func TestNotEqual(t *testing.T) {
	s := NewSet(Lossy)
	s.InsertNotEqual(5, 1)
	s.InsertNotEqual(5, 2)
	s.InsertNotEqual(7, 3)
	checkInvariants(t, s)
	if got := s.Query(5); !reflect.DeepEqual(got, []uint64{3}) {
		t.Fatalf("Query(5) = %v", got)
	}
	if got := s.Query(7); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("Query(7) = %v", got)
	}
	if got := s.Query(6); !reflect.DeepEqual(got, []uint64{1, 2, 3}) {
		t.Fatalf("Query(6) = %v", got)
	}
}

func TestEmptyIntervalIgnored(t *testing.T) {
	s := NewSet(Lossy)
	s.Insert(Range(5, 4, false, false), 1)
	s.Insert(Intersect(Below(1, false), Above(2, false)), 2)
	if len(s.Rows()) != 0 || len(s.EqRows()) != 0 {
		t.Fatal("empty intervals created rows")
	}
}

func TestDuplicateInsertIsIdempotent(t *testing.T) {
	s := NewSet(Lossy)
	s.Insert(Range(1, 5, false, false), 1)
	s.Insert(Range(1, 5, false, false), 1)
	checkInvariants(t, s)
	if got := s.Query(3); !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("Query(3) = %v", got)
	}
	st := s.Stats()
	if st.IDEntries != 1 {
		t.Fatalf("IDEntries = %d, want 1", st.IDEntries)
	}
}

func TestRemove(t *testing.T) {
	s := NewSet(Lossy)
	s.Insert(Range(1, 5, false, false), 1)
	s.Insert(Range(3, 8, false, false), 2)
	s.Insert(Point(10), 3)
	s.InsertNotEqual(0, 4)
	s.Remove(2)
	checkInvariants(t, s)
	if got := s.Query(6); !reflect.DeepEqual(got, []uint64{4}) {
		t.Fatalf("Query(6) after remove = %v", got)
	}
	if got := s.Query(4); !reflect.DeepEqual(got, []uint64{1, 4}) {
		t.Fatalf("Query(4) after remove = %v", got)
	}
	s.Remove(3)
	if len(s.EqRows()) != 0 {
		t.Fatal("eq row not removed")
	}
	s.Remove(4)
	if len(s.NeRows()) != 0 {
		t.Fatal("ne row not removed")
	}
	s.Remove(999) // absent id: no-op
	checkInvariants(t, s)
}

func TestMerge(t *testing.T) {
	a := NewSet(Lossy)
	a.Insert(Range(1, 5, false, false), 1)
	a.Insert(Point(10), 2)
	b := NewSet(Lossy)
	b.Insert(Range(3, 8, false, false), 3)
	b.Insert(Point(20), 4)
	b.InsertNotEqual(0, 5)
	a.Merge(b)
	checkInvariants(t, a)
	for v, want := range map[float64][]uint64{
		2:  {1, 5},
		4:  {1, 3, 5},
		7:  {3, 5},
		10: {2, 5},
		20: {4, 5},
		0:  nil,
	} {
		got := a.Query(v)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Query(%g) = %v, want %v", v, got, want)
		}
	}
}

func TestStatsAndSizeBytes(t *testing.T) {
	s := NewSet(Lossy)
	s.Insert(Range(8.30, 8.70, true, true), 1)
	s.Insert(Point(8.20), 2)
	st := s.Stats()
	if st.NumRanges != 1 || st.NumEq != 1 || st.IDEntries != 2 || st.DistinctIDs != 2 {
		t.Fatalf("Stats = %+v", st)
	}
	// Equation (1) with s_st = s_id = 4: 2·1·4 + 1·4 + 2·4 = 20.
	if got := s.SizeBytes(4, 4); got != 20 {
		t.Fatalf("SizeBytes = %d, want 20", got)
	}
}

func TestQueryInto(t *testing.T) {
	s := NewSet(Lossy)
	s.Insert(Range(1, 5, false, false), 1)
	s.Insert(Range(3, 8, false, false), 2)
	dst := make(map[uint64]struct{})
	added := s.QueryInto(4, dst)
	if added != 2 || len(dst) != 2 {
		t.Fatalf("QueryInto added %d, dst %v", added, dst)
	}
	// Re-querying adds nothing new.
	if added := s.QueryInto(4, dst); added != 0 {
		t.Fatalf("second QueryInto added %d", added)
	}
}

func TestClone(t *testing.T) {
	s := NewSet(Lossy)
	s.Insert(Range(1, 5, false, false), 1)
	s.Insert(Point(10), 2)
	s.InsertNotEqual(3, 4)
	c := s.Clone()
	c.Insert(Range(6, 9, false, false), 7)
	c.Remove(1)
	// v=3 hits row [1,5] (id 1) but not the ≠3 entry (id 4).
	if got := s.Query(3); !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("clone mutated original: %v", got)
	}
	if got := s.Query(2); !reflect.DeepEqual(got, []uint64{1, 4}) {
		t.Fatalf("clone mutated original: %v", got)
	}
	if got := s.Query(7); len(got) != 1 || got[0] != 4 {
		t.Fatalf("clone mutated original rows: %v", got)
	}
}

// constraintRef is the reference model: one inserted constraint.
type constraintRef struct {
	id uint64
	iv Interval // for ranges and points
	ne *float64 // for not-equal constraints
}

func (c constraintRef) satisfied(v float64) bool {
	if c.ne != nil {
		return v != *c.ne
	}
	return c.iv.Contains(v)
}

// TestRandomizedAgainstReference drives random inserts/removes and checks
// Query against a brute-force reference: Exact mode must agree exactly;
// Lossy mode must never produce a false negative.
func TestRandomizedAgainstReference(t *testing.T) {
	for _, mode := range []Mode{Lossy, Exact} {
		mode := mode
		name := map[Mode]string{Lossy: "lossy", Exact: "exact"}[mode]
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			s := NewSet(mode)
			var refs []constraintRef
			nextID := uint64(1)
			randVal := func() float64 { return float64(rng.Intn(41) - 20) }
			for step := 0; step < 3000; step++ {
				switch op := rng.Intn(10); {
				case op < 5: // range insert
					lo, hi := randVal(), randVal()
					if lo > hi {
						lo, hi = hi, lo
					}
					iv := Range(lo, hi, rng.Intn(2) == 0, rng.Intn(2) == 0)
					id := nextID
					nextID++
					s.Insert(iv, id)
					if !iv.Empty() {
						refs = append(refs, constraintRef{id: id, iv: iv})
					}
				case op < 7: // point insert
					v := randVal()
					id := nextID
					nextID++
					s.Insert(Point(v), id)
					refs = append(refs, constraintRef{id: id, iv: Point(v)})
				case op < 8: // not-equal insert
					v := randVal()
					id := nextID
					nextID++
					s.InsertNotEqual(v, id)
					refs = append(refs, constraintRef{id: id, ne: &v})
				default: // remove a random id
					if len(refs) == 0 {
						continue
					}
					i := rng.Intn(len(refs))
					s.Remove(refs[i].id)
					refs = append(refs[:i], refs[i+1:]...)
				}
				if step%50 == 0 {
					checkInvariantsQuiet(t, s)
				}
				// Probe a few random values.
				for probe := 0; probe < 4; probe++ {
					v := randVal() + float64(rng.Intn(3))*0.5
					got := s.Query(v)
					gotSet := make(map[uint64]bool, len(got))
					for _, id := range got {
						gotSet[id] = true
					}
					for _, ref := range refs {
						if ref.satisfied(v) && !gotSet[ref.id] {
							t.Fatalf("step %d: false negative at %g: id %d missing (got %v)\nset: %v",
								step, v, ref.id, got, s)
						}
					}
					if mode == Exact {
						want := 0
						for _, ref := range refs {
							if ref.satisfied(v) {
								want++
							}
						}
						if len(got) != want {
							t.Fatalf("step %d: exact mode mismatch at %g: got %d ids, want %d\nset: %v",
								step, v, len(got), want, s)
						}
					}
				}
			}
		})
	}
}

func checkInvariantsQuiet(t *testing.T, s *Set) {
	t.Helper()
	rows := s.Rows()
	for i := 1; i < len(rows); i++ {
		if Overlaps(rows[i-1].Interval, rows[i].Interval) {
			t.Fatalf("rows overlap: %v %v", rows[i-1].Interval, rows[i].Interval)
		}
	}
}

func TestCompactMergesTouchingRowsWithEqualIDs(t *testing.T) {
	s := NewSet(Lossy)
	// Build fragmentation: two subs over [1,9], then remove the splitter.
	s.Insert(Range(1, 9, false, false), 1)
	s.Insert(Range(3, 5, false, false), 2)
	s.Remove(2)
	if len(s.Rows()) != 3 {
		t.Fatalf("rows before compact = %v", s.Rows())
	}
	if got := s.Compact(); got != 2 {
		t.Fatalf("Compact merged %d rows, want 2", got)
	}
	rows := s.Rows()
	if len(rows) != 1 || !rows[0].Interval.Equal(Range(1, 9, false, false)) {
		t.Fatalf("rows after compact = %v", rows)
	}
	checkInvariants(t, s)
	// Behaviour unchanged.
	for v, want := range map[float64]int{0: 0, 1: 1, 4: 1, 9: 1, 10: 0} {
		if got := len(s.Query(v)); got != want {
			t.Fatalf("Query(%g) = %d ids, want %d", v, got, want)
		}
	}
}

func TestCompactKeepsDistinctRows(t *testing.T) {
	s := NewSet(Lossy)
	s.Insert(Range(1, 3, false, true), 1)  // [1,3)
	s.Insert(Range(3, 5, false, false), 2) // [3,5] — touching but different ids
	if got := s.Compact(); got != 0 {
		t.Fatalf("Compact merged %d rows across different id lists", got)
	}
	// Gap between rows: same ids but not touching.
	s2 := NewSet(Lossy)
	s2.Insert(Range(1, 2, false, false), 1)
	s2.Insert(Range(3, 4, false, false), 1)
	if got := s2.Compact(); got != 0 {
		t.Fatalf("Compact merged %d rows across a gap", got)
	}
	// Double-open touch ((1,3) + (3,5)) leaves value 3 uncovered: no merge.
	s3 := NewSet(Lossy)
	s3.Insert(Range(1, 3, true, true), 1)
	s3.Insert(Range(3, 5, true, true), 1)
	if got := s3.Compact(); got != 0 {
		t.Fatalf("Compact merged %d rows across an excluded point", got)
	}
}

// TestCompactBehaviourPreservedRandomized: Compact never changes Query
// results.
func TestCompactBehaviourPreservedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		s := NewSet(Lossy)
		ids := []uint64{}
		for i := uint64(1); i <= 30; i++ {
			lo := float64(rng.Intn(20))
			hi := lo + float64(rng.Intn(8))
			s.Insert(Range(lo, hi, rng.Intn(2) == 0, rng.Intn(2) == 0), i)
			ids = append(ids, i)
		}
		for _, id := range ids {
			if rng.Intn(3) == 0 {
				s.Remove(id)
			}
		}
		before := map[float64][]uint64{}
		for v := -1.0; v <= 30; v += 0.5 {
			before[v] = s.Query(v)
		}
		s.Compact()
		checkInvariantsQuiet(t, s)
		for v, want := range before {
			if !reflect.DeepEqual(s.Query(v), want) {
				t.Fatalf("trial %d: Query(%g) changed after Compact: %v vs %v",
					trial, v, s.Query(v), want)
			}
		}
	}
}
