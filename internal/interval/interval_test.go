package interval

import (
	"math"
	"testing"
)

func TestIntervalConstructorsAndContains(t *testing.T) {
	cases := []struct {
		iv   Interval
		in   []float64
		out  []float64
		name string
	}{
		{Range(8.30, 8.70, true, true), []float64{8.4, 8.5, 8.69}, []float64{8.30, 8.70, 8.2, 9}, "(8.3,8.7)"},
		{Range(8.30, 8.70, false, false), []float64{8.30, 8.70, 8.5}, []float64{8.29, 8.71}, "[8.3,8.7]"},
		{Below(8.70, false), []float64{-1e9, 0, 8.69}, []float64{8.70, 9}, "<8.7"},
		{Below(8.70, true), []float64{8.70}, []float64{8.71}, "<=8.7"},
		{Above(130000, false), []float64{130001, 1e12}, []float64{130000, 0}, ">130000"},
		{Above(130000, true), []float64{130000}, []float64{129999}, ">=130000"},
		{Point(8.20), []float64{8.20}, []float64{8.19, 8.21}, "=8.2"},
		{Full(), []float64{-1e300, 0, 1e300}, nil, "full"},
	}
	for _, c := range cases {
		for _, v := range c.in {
			if !c.iv.Contains(v) {
				t.Errorf("%s should contain %g", c.name, v)
			}
		}
		for _, v := range c.out {
			if c.iv.Contains(v) {
				t.Errorf("%s should not contain %g", c.name, v)
			}
		}
		if c.iv.Empty() {
			t.Errorf("%s should not be empty", c.name)
		}
	}
}

func TestIntervalEmpty(t *testing.T) {
	empties := []Interval{
		Range(2, 1, false, false),
		Range(1, 1, true, false),
		Range(1, 1, false, true),
		Range(1, 1, true, true),
		Intersect(Below(1, false), Above(1, false)),
		Intersect(Point(1), Point(2)),
	}
	for i, iv := range empties {
		if !iv.Empty() {
			t.Errorf("case %d: %v should be empty", i, iv)
		}
	}
	if Point(1).Empty() {
		t.Error("point should not be empty")
	}
}

func TestIntervalIntersect(t *testing.T) {
	got := Intersect(Above(8.30, false), Below(8.70, false))
	want := Range(8.30, 8.70, true, true)
	if !got.Equal(want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	got = Intersect(Range(1, 5, false, false), Range(3, 8, false, false))
	want = Range(3, 5, false, false)
	if !got.Equal(want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	// Touching at a shared closed endpoint yields a point.
	got = Intersect(Range(1, 3, false, false), Range(3, 8, false, false))
	if v, ok := got.IsPoint(); !ok || v != 3 {
		t.Fatalf("Intersect = %v, want point 3", got)
	}
	// Touching open/closed yields empty.
	if !Intersect(Range(1, 3, false, true), Range(3, 8, false, false)).Empty() {
		t.Fatal("open/closed touch should be empty")
	}
}

func TestIntervalCovers(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{Full(), Point(5), true},
		{Range(1, 9, false, false), Range(2, 8, true, true), true},
		{Range(1, 9, true, true), Range(1, 9, true, true), true},
		{Range(1, 9, true, true), Range(1, 9, false, true), false}, // b includes 1, a doesn't
		{Range(1, 9, false, false), Range(1, 9, true, false), true},
		{Range(2, 8, false, false), Range(1, 9, false, false), false},
		{Point(5), Point(5), true},
		{Point(5), Point(6), false},
		{Above(3, false), Above(4, false), true},
		{Above(4, false), Above(3, false), false},
		{Below(3, true), Point(3), true},
		{Below(3, false), Point(3), false},
		{Range(1, 2, false, false), Range(5, 4, false, false), true}, // empty b
	}
	for i, c := range cases {
		if got := Covers(c.a, c.b); got != c.want {
			t.Errorf("case %d: Covers(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestIntervalOverlaps(t *testing.T) {
	if !Overlaps(Range(1, 5, false, false), Range(5, 9, false, false)) {
		t.Error("closed touch should overlap")
	}
	if Overlaps(Range(1, 5, false, true), Range(5, 9, false, false)) {
		t.Error("open touch should not overlap")
	}
	if Overlaps(Range(1, 2, false, false), Range(3, 4, false, false)) {
		t.Error("disjoint ranges overlap")
	}
}

func TestIntervalIsPoint(t *testing.T) {
	if _, ok := Range(1, 2, false, false).IsPoint(); ok {
		t.Error("range reported as point")
	}
	if v, ok := Point(7).IsPoint(); !ok || v != 7 {
		t.Error("point not reported")
	}
	if _, ok := Range(1, 1, true, false).IsPoint(); ok {
		t.Error("empty interval reported as point")
	}
}

func TestIntervalString(t *testing.T) {
	if got := Range(8.3, 8.7, true, false).String(); got != "(8.3, 8.7]" {
		t.Fatalf("String = %q", got)
	}
	if got := Range(2, 1, false, false).String(); got != "∅" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestNormalizeInfinity(t *testing.T) {
	iv := Range(math.Inf(-1), math.Inf(1), false, false)
	if !iv.LoOpen || !iv.HiOpen {
		t.Fatal("infinite bounds must normalize to open")
	}
	if !iv.Equal(Full()) {
		t.Fatal("normalized full != Full()")
	}
}
