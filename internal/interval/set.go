package interval

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// Mode selects how the AACS treats equality constraints whose value falls
// inside an existing sub-range.
type Mode uint8

const (
	// Lossy is the paper's behaviour (Section 3.1): the subscription id is
	// folded into the covering sub-range row, so the summary may report the
	// subscription for any value of the sub-range (a pre-filter false
	// positive, resolved by exact matching at the owning broker). Queries
	// consult AACSE only when no sub-range contains the value, exactly as
	// Check_for_a_value_match prescribes.
	Lossy Mode = iota
	// Exact splits sub-ranges at equality points instead of folding, and
	// queries consult both arrays, eliminating arithmetic false positives.
	// Used by the equality-folding ablation.
	Exact
)

// row is one AACSSR entry: a sub-range plus the ids of subscriptions whose
// constraint is satisfied throughout it.
type row struct {
	iv  Interval
	ids []uint64 // sorted, deduplicated
}

// neEntry is a not-equal constraint: satisfied by every value except Value.
type neEntry struct {
	value float64
	ids   []uint64
}

// Set is the AACS for a single arithmetic attribute: disjoint sub-range
// rows sorted by lower bound (AACSSR), equality values outside the ranges
// (AACSE), and not-equal entries. The zero value is not ready; use NewSet.
type Set struct {
	mode Mode
	rows []row                // disjoint, sorted by lower bound
	eq   map[float64][]uint64 // equality values (see Mode for semantics)
	ne   []neEntry            // sorted by value

	// slab backs the id lists the wire-merge paths (MergePoint,
	// MergeNotEqual) retain, so a merge that adds many rows costs one
	// allocation per chunk instead of one per row. Never shared between
	// sets (Clone and NewSetFromRows build fresh sets).
	slab []uint64
}

// slabCopy returns a copy of ids carved from the set's slab. The copy has
// no spare capacity, so a later in-place growth reallocates rather than
// bleeding into the next carve.
func (s *Set) slabCopy(ids []uint64) []uint64 {
	if len(s.slab) < len(ids) {
		n := 1024
		if len(ids) > n {
			n = len(ids)
		}
		s.slab = make([]uint64, n)
	}
	out := s.slab[:len(ids):len(ids)]
	s.slab = s.slab[len(ids):]
	copy(out, ids)
	return out
}

// NewSet returns an empty AACS with the given equality-handling mode.
func NewSet(mode Mode) *Set {
	return &Set{mode: mode, eq: make(map[float64][]uint64)}
}

// Mode returns the set's equality-handling mode.
func (s *Set) Mode() Mode { return s.mode }

// Insert records that subscription id constrains this attribute to iv.
// The caller has already intersected all of the subscription's constraints
// on this attribute into one canonical interval (as the paper's Figure 4
// does for "8.30 < price < 8.70"). Empty intervals are ignored: such a
// subscription can never match.
func (s *Set) Insert(iv Interval, id uint64) {
	iv = iv.normalize()
	if iv.Empty() {
		return
	}
	if v, isPoint := iv.IsPoint(); isPoint {
		s.insertPoint(v, id)
		return
	}
	s.insertRange(iv, []uint64{id})
}

// InsertIDs is Insert for a batch of ids sharing one canonical interval
// (used when merging or decoding summaries).
func (s *Set) InsertIDs(iv Interval, ids []uint64) {
	iv = iv.normalize()
	if iv.Empty() || len(ids) == 0 {
		return
	}
	if v, isPoint := iv.IsPoint(); isPoint {
		for _, id := range ids {
			s.insertPoint(v, id)
		}
		return
	}
	if !strictlyAscending(ids) {
		sorted := append([]uint64(nil), ids...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		ids = dedupSorted(sorted)
	}
	s.insertRange(iv, ids)
}

// strictlyAscending reports whether ids is sorted ascending with no
// duplicates — the invariant every stored id list maintains.
func strictlyAscending(ids []uint64) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			return false
		}
	}
	return true
}

// MergeRow folds one serialized AACSSR row into the set exactly as Merge
// folds a row of another set: always through the range-splicing path, even
// when the interval is a single point (point rows must stay rows, not
// migrate to the equality map, so that a wire-form merge reproduces Merge
// byte for byte). ids must be sorted ascending without duplicates; the
// slice is not retained.
func (s *Set) MergeRow(iv Interval, ids []uint64) {
	iv = iv.normalize()
	if iv.Empty() || len(ids) == 0 {
		return
	}
	s.insertRange(iv, ids)
}

// MergePoint folds one serialized AACSE row into the set exactly as Merge
// folds an equality entry of another set (the resulting id lists are the
// same sorted unions insertPoint would build one id at a time, without the
// per-id churn). ids must be sorted ascending without duplicates; the
// slice is not retained.
func (s *Set) MergePoint(v float64, ids []uint64) {
	if len(ids) == 0 {
		return
	}
	if i, ok := s.findRow(v); ok {
		if s.mode == Lossy {
			// Paper behaviour: fold the ids into the covering sub-range.
			s.rows[i].ids = mergeInto(s.rows[i].ids, ids)
			return
		}
		// Exact: split the covering row at the point.
		s.insertRange(Point(v), ids)
		return
	}
	if existing, ok := s.eq[v]; ok {
		s.eq[v] = mergeInto(existing, ids)
		return
	}
	s.eq[v] = s.slabCopy(ids)
}

// MergeNotEqual folds one serialized ≠ row into the set, equivalent to
// calling InsertNotEqual for each id. ids must be sorted ascending without
// duplicates; the slice is not retained.
func (s *Set) MergeNotEqual(v float64, ids []uint64) {
	if len(ids) == 0 {
		return
	}
	i := sort.Search(len(s.ne), func(i int) bool { return s.ne[i].value >= v })
	if i < len(s.ne) && s.ne[i].value == v {
		s.ne[i].ids = mergeInto(s.ne[i].ids, ids)
		return
	}
	s.ne = append(s.ne, neEntry{})
	copy(s.ne[i+1:], s.ne[i:])
	s.ne[i] = neEntry{value: v, ids: s.slabCopy(ids)}
}

// mergeInto merges sorted id list src into sorted dst in place, returning
// the union. It allocates only when dst lacks capacity for the ids src
// adds; in the wire-merge steady state (src ⊆ dst) it is a read-only scan.
func mergeInto(dst, src []uint64) []uint64 {
	extra := 0
	i, j := 0, 0
	for i < len(dst) && j < len(src) {
		switch {
		case dst[i] < src[j]:
			i++
		case dst[i] > src[j]:
			extra++
			j++
		default:
			i++
			j++
		}
	}
	extra += len(src) - j
	if extra == 0 {
		return dst
	}
	n := len(dst)
	if cap(dst) < n+extra {
		grown := make([]uint64, n, n+extra)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:n+extra]
	// Merge from the back so unshifted dst elements are read before they
	// are overwritten.
	for i, j, k := n-1, len(src)-1, n+extra-1; j >= 0; k-- {
		switch {
		case i >= 0 && dst[i] > src[j]:
			dst[k] = dst[i]
			i--
		case i >= 0 && dst[i] == src[j]:
			dst[k] = dst[i]
			i--
			j--
		default:
			dst[k] = src[j]
			j--
		}
	}
	return dst
}

// dedupSorted removes adjacent duplicates from a sorted id list in place.
func dedupSorted(ids []uint64) []uint64 {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// InsertNotEqual records a ≠ constraint: id is satisfied by any value
// other than v.
func (s *Set) InsertNotEqual(v float64, id uint64) {
	i := sort.Search(len(s.ne), func(i int) bool { return s.ne[i].value >= v })
	if i < len(s.ne) && s.ne[i].value == v {
		s.ne[i].ids = addID(s.ne[i].ids, id)
		return
	}
	s.ne = append(s.ne, neEntry{})
	copy(s.ne[i+1:], s.ne[i:])
	s.ne[i] = neEntry{value: v, ids: []uint64{id}}
}

func (s *Set) insertPoint(v float64, id uint64) {
	if i, ok := s.findRow(v); ok {
		if s.mode == Lossy {
			// Paper behaviour: fold the id into the covering sub-range.
			s.rows[i].ids = addID(s.rows[i].ids, id)
			return
		}
		// Exact: split the covering row at the point.
		s.insertRange(Point(v), []uint64{id})
		return
	}
	s.eq[v] = addID(s.eq[v], id)
}

// insertRange splices interval x carrying ids into the disjoint row list,
// splitting overlapped rows and creating new rows in the gaps. Only the
// window of rows interacting with x is rewritten: the rows are disjoint
// and sorted, so both window bounds are binary searches and an insert that
// overlaps k rows costs O(log n + k) splice work instead of rebuilding and
// re-sorting the whole slice (Merge pays this per merged row).
func (s *Set) insertRange(x Interval, ids []uint64) {
	// First row not entirely below x.
	start := sort.Search(len(s.rows), func(i int) bool {
		r := s.rows[i].iv
		return r.Hi > x.Lo || (r.Hi == x.Lo && !r.HiOpen && !x.LoOpen)
	})
	// First row at or past start entirely above x.
	end := start + sort.Search(len(s.rows)-start, func(i int) bool {
		r := s.rows[start+i].iv
		return r.Lo > x.Hi || (r.Lo == x.Hi && (r.LoOpen || x.HiOpen))
	})

	// Rewrite the window. Emission order is ascending by lower bound (gap
	// precedes left only when the gap is empty), so no re-sort is needed.
	seg := make([]row, 0, (end-start)*2+1)
	cursorLo, cursorOpen := x.Lo, x.LoOpen // lower bound of the uncovered remainder of x
	covered := false                       // whether the remainder of x is exhausted
	for _, r := range s.rows[start:end] {
		mid := Intersect(r.iv, x)
		if mid.Empty() {
			seg = append(seg, r)
			continue
		}
		// Gap of x strictly before this row.
		gap := Intersect(x, Interval{Lo: cursorLo, LoOpen: cursorOpen, Hi: r.iv.Lo, HiOpen: !r.iv.LoOpen})
		if !gap.Empty() {
			seg = append(seg, row{iv: gap, ids: append([]uint64(nil), ids...)})
		}
		// Part of the row below x keeps the row's ids.
		left := Intersect(r.iv, Interval{Lo: r.iv.Lo, LoOpen: r.iv.LoOpen, Hi: x.Lo, HiOpen: !x.LoOpen})
		if !left.Empty() {
			seg = append(seg, row{iv: left, ids: append([]uint64(nil), r.ids...)})
		}
		// Overlap gets both id sets.
		seg = append(seg, row{iv: mid, ids: mergeIDs(r.ids, ids)})
		// Part of the row above x keeps the row's ids.
		right := Intersect(r.iv, Interval{Lo: x.Hi, LoOpen: !x.HiOpen, Hi: r.iv.Hi, HiOpen: r.iv.HiOpen})
		if !right.Empty() {
			seg = append(seg, row{iv: right, ids: append([]uint64(nil), r.ids...)})
		}
		// Advance the cursor past this row.
		cursorLo, cursorOpen = mid.Hi, !mid.HiOpen
		if cursorLo > x.Hi || (cursorLo == x.Hi && (cursorOpen || x.HiOpen)) {
			covered = true
		}
	}
	if !covered {
		gap := Intersect(x, Interval{Lo: cursorLo, LoOpen: cursorOpen, Hi: x.Hi, HiOpen: x.HiOpen})
		if !gap.Empty() {
			seg = append(seg, row{iv: gap, ids: append([]uint64(nil), ids...)})
		}
	}

	// Splice seg in place of rows[start:end], reusing capacity when it fits
	// (copy is memmove-safe for the overlapping tail shift).
	tail := len(s.rows) - end
	newLen := start + len(seg) + tail
	if cap(s.rows) >= newLen {
		old := s.rows
		s.rows = s.rows[:newLen]
		copy(s.rows[start+len(seg):], old[end:])
		copy(s.rows[start:], seg)
	} else {
		grown := make([]row, 0, newLen+newLen/2)
		grown = append(grown, s.rows[:start]...)
		grown = append(grown, seg...)
		grown = append(grown, s.rows[end:]...)
		s.rows = grown
	}
	if s.mode == Lossy {
		// Fold equality entries that the new range now covers into the
		// covering rows, so that queries that stop at the range array
		// (Check_for_a_value_match's "Else") still find them.
		for v, eqIDs := range s.eq {
			if !x.Contains(v) {
				continue
			}
			if i, ok := s.findRow(v); ok {
				s.rows[i].ids = mergeIDs(s.rows[i].ids, eqIDs)
				delete(s.eq, v)
			}
		}
	}
}

// lowerLess orders intervals by lower bound; a closed bound precedes an
// open bound at the same value.
func lowerLess(a, b Interval) bool {
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	return !a.LoOpen && b.LoOpen
}

// findRow returns the index of the row containing v. Rows are disjoint, so
// at most one matches.
func (s *Set) findRow(v float64) (int, bool) {
	// First row whose lower bound is beyond v.
	i := sort.Search(len(s.rows), func(i int) bool {
		r := s.rows[i].iv
		return r.Lo > v || (r.Lo == v && r.LoOpen)
	})
	if i > 0 && s.rows[i-1].iv.Contains(v) {
		return i - 1, true
	}
	return 0, false
}

// Query returns the ids of all subscriptions whose constraint on this
// attribute is satisfied by value v, deduplicated, in ascending order.
// This is Check_for_a_value_match (type arithmetic): scan the sub-range
// array; in Lossy mode fall back to the equality array only when no
// sub-range contains v (the paper's "Else"); in Exact mode consult both.
// Not-equal entries contribute for every value other than their own.
func (s *Set) Query(v float64) []uint64 {
	// Collect once, then sort and dedup once — not a merge per ≠ entry.
	out := s.AppendMatches(nil, v)
	if len(out) == 0 {
		return nil
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// AppendMatches appends the ids of all subscriptions whose constraint on
// this attribute is satisfied by v to dst and returns the extended slice.
// Unlike Query it performs no sorting or deduplication — an id may repeat
// when it appears in more than one consulted structure — and beyond
// growing dst it does not allocate. It is the scratch-friendly primitive
// the summary Matcher builds on, and is safe for concurrent readers.
func (s *Set) AppendMatches(dst []uint64, v float64) []uint64 {
	i, inRange := s.findRow(v)
	if inRange {
		dst = append(dst, s.rows[i].ids...)
	}
	if !inRange || s.mode == Exact {
		dst = append(dst, s.eq[v]...)
	}
	for _, ne := range s.ne {
		if ne.value != v {
			dst = append(dst, ne.ids...)
		}
	}
	return dst
}

// QueryInto is Query without the final allocation: it merges results into
// dst (a set keyed by id) and returns the number of distinct ids added.
func (s *Set) QueryInto(v float64, dst map[uint64]struct{}) int {
	added := 0
	note := func(ids []uint64) {
		for _, id := range ids {
			if _, ok := dst[id]; !ok {
				dst[id] = struct{}{}
				added++
			}
		}
	}
	i, inRange := s.findRow(v)
	if inRange {
		note(s.rows[i].ids)
	}
	if !inRange || s.mode == Exact {
		note(s.eq[v])
	}
	for _, ne := range s.ne {
		if ne.value != v {
			note(ne.ids)
		}
	}
	return added
}

// Remove deletes every occurrence of id (unsubscription maintenance).
// Rows and entries left without ids are dropped.
func (s *Set) Remove(id uint64) {
	rows := s.rows[:0]
	for _, r := range s.rows {
		r.ids = removeID(r.ids, id)
		if len(r.ids) > 0 {
			rows = append(rows, r)
		}
	}
	s.rows = rows
	for v, ids := range s.eq {
		ids = removeID(ids, id)
		if len(ids) == 0 {
			delete(s.eq, v)
		} else {
			s.eq[v] = ids
		}
	}
	ne := s.ne[:0]
	for _, e := range s.ne {
		e.ids = removeID(e.ids, id)
		if len(e.ids) > 0 {
			ne = append(ne, e)
		}
	}
	s.ne = ne
}

// RemoveAll deletes every id in dead from the set in one sweep — the
// batched form of Remove, so purging n tombstones costs one pass over the
// structure instead of n.
func (s *Set) RemoveAll(dead map[uint64]struct{}) {
	if len(dead) == 0 {
		return
	}
	rows := s.rows[:0]
	for _, r := range s.rows {
		r.ids = removeIDs(r.ids, dead)
		if len(r.ids) > 0 {
			rows = append(rows, r)
		}
	}
	s.rows = rows
	for v, ids := range s.eq {
		ids = removeIDs(ids, dead)
		if len(ids) == 0 {
			delete(s.eq, v)
		} else {
			s.eq[v] = ids
		}
	}
	ne := s.ne[:0]
	for _, e := range s.ne {
		e.ids = removeIDs(e.ids, dead)
		if len(e.ids) > 0 {
			ne = append(ne, e)
		}
	}
	s.ne = ne
}

// Compact merges adjacent sub-range rows that carry identical id lists
// and whose intervals touch without a gap — the fragmentation that
// repeated insertions and removals leave behind (the paper omits its
// maintenance discussion "because of space limitation"; this is the
// obvious one). It returns the number of rows eliminated. Matching
// behaviour is unchanged.
func (s *Set) Compact() int {
	if len(s.rows) < 2 {
		return 0
	}
	out := s.rows[:1]
	merged := 0
	for _, r := range s.rows[1:] {
		last := &out[len(out)-1]
		// Touching means the upper bound of last meets the lower bound of
		// r with no value in between: same value with exactly one side
		// closed.
		touching := last.iv.Hi == r.iv.Lo && last.iv.HiOpen != r.iv.LoOpen
		if touching && equalIDs(last.ids, r.ids) {
			last.iv.Hi, last.iv.HiOpen = r.iv.Hi, r.iv.HiOpen
			merged++
			continue
		}
		out = append(out, r)
	}
	s.rows = out
	return merged
}

// equalIDs compares two sorted id lists.
func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge folds every row of o into s (multi-broker summary construction,
// Section 4.1: "values for the same numeric attributes are simply merged").
func (s *Set) Merge(o *Set) {
	for _, r := range o.rows {
		s.insertRange(r.iv, r.ids)
	}
	for v, ids := range o.eq {
		for _, id := range ids {
			s.insertPoint(v, id)
		}
	}
	for _, e := range o.ne {
		for _, id := range e.ids {
			s.InsertNotEqual(e.value, id)
		}
	}
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	out := NewSet(s.mode)
	out.rows = make([]row, len(s.rows))
	for i, r := range s.rows {
		out.rows[i] = row{iv: r.iv, ids: append([]uint64(nil), r.ids...)}
	}
	for v, ids := range s.eq {
		out.eq[v] = append([]uint64(nil), ids...)
	}
	out.ne = make([]neEntry, len(s.ne))
	for i, e := range s.ne {
		out.ne[i] = neEntry{value: e.value, ids: append([]uint64(nil), e.ids...)}
	}
	return out
}

// Stats describes the set's shape for the size model of equation (1).
type Stats struct {
	NumRanges   int // n_sr: rows in AACSSR
	NumEq       int // n_e: rows in AACSE
	NumNE       int // not-equal entries (extension; zero in paper workloads)
	IDEntries   int // total subscription-id list entries across all rows
	DistinctIDs int
}

// Stats computes the set's shape.
func (s *Set) Stats() Stats {
	var st Stats
	distinct := make(map[uint64]struct{})
	st.NumRanges = len(s.rows)
	st.NumEq = len(s.eq)
	st.NumNE = len(s.ne)
	for _, r := range s.rows {
		st.IDEntries += len(r.ids)
		for _, id := range r.ids {
			distinct[id] = struct{}{}
		}
	}
	for _, ids := range s.eq {
		st.IDEntries += len(ids)
		for _, id := range ids {
			distinct[id] = struct{}{}
		}
	}
	for _, e := range s.ne {
		st.IDEntries += len(e.ids)
		for _, id := range e.ids {
			distinct[id] = struct{}{}
		}
	}
	st.DistinctIDs = len(distinct)
	return st
}

// SizeBytes returns the set's size under equation (1) of the paper:
// 2·n_sr·s_st (min and max columns) + n_e·s_st + ΣL_a·s_id, with the
// not-equal extension costed like equality rows. It is computed directly
// from row lengths — the propagation loop calls this every round, so it
// must not build Stats' DistinctIDs map.
func (s *Set) SizeBytes(sst, sid int) int {
	entries := 0
	for _, r := range s.rows {
		entries += len(r.ids)
	}
	for _, ids := range s.eq {
		entries += len(ids)
	}
	for _, e := range s.ne {
		entries += len(e.ids)
	}
	return 2*len(s.rows)*sst + (len(s.eq)+len(s.ne))*sst + entries*sid
}

// NewSetFromRows reconstructs a set exactly from serialized views (the
// inverse of Rows/EqRows/NeRows): rows must be sorted by lower bound,
// pairwise disjoint, non-empty, and carry sorted non-empty id lists. This
// bypasses Insert's splicing so a decoded set is structurally identical to
// the encoded one (point rows stay rows; they do not migrate to AACSE).
func NewSetFromRows(mode Mode, rows []RowView, eq, ne []EqView) (*Set, error) {
	s := NewSet(mode)
	for i, r := range rows {
		if r.Interval.Empty() {
			return nil, fmt.Errorf("interval: row %d empty", i)
		}
		if len(r.IDs) == 0 {
			return nil, fmt.Errorf("interval: row %d has no ids", i)
		}
		for j := 1; j < len(r.IDs); j++ {
			if r.IDs[j-1] >= r.IDs[j] {
				return nil, fmt.Errorf("interval: row %d ids not sorted", i)
			}
		}
		if i > 0 {
			prev := rows[i-1].Interval
			if !lowerLess(prev, r.Interval) || Overlaps(prev, r.Interval) {
				return nil, fmt.Errorf("interval: rows %d and %d out of order or overlapping", i-1, i)
			}
		}
		s.rows = append(s.rows, row{iv: r.Interval.normalize(), ids: append([]uint64(nil), r.IDs...)})
	}
	for _, e := range eq {
		if len(e.IDs) == 0 {
			return nil, fmt.Errorf("interval: equality row %g has no ids", e.Value)
		}
		if _, inRow := s.findRow(e.Value); inRow && mode == Lossy {
			return nil, fmt.Errorf("interval: equality value %g inside a sub-range (lossy invariant)", e.Value)
		}
		if _, dup := s.eq[e.Value]; dup {
			return nil, fmt.Errorf("interval: duplicate equality value %g", e.Value)
		}
		s.eq[e.Value] = append([]uint64(nil), e.IDs...)
	}
	for _, e := range ne {
		for _, id := range e.IDs {
			s.InsertNotEqual(e.Value, id)
		}
	}
	return s, nil
}

// RowView exposes one AACSSR row for serialization and rendering.
type RowView struct {
	Interval Interval
	IDs      []uint64
}

// Rows returns the sub-range rows in order. The id slices are shared;
// callers must not mutate them.
func (s *Set) Rows() []RowView {
	out := make([]RowView, len(s.rows))
	for i, r := range s.rows {
		out[i] = RowView{Interval: r.iv, IDs: r.ids}
	}
	return out
}

// EqView exposes one AACSE row.
type EqView struct {
	Value float64
	IDs   []uint64
}

// EqRows returns the equality rows sorted by value.
func (s *Set) EqRows() []EqView {
	out := make([]EqView, 0, len(s.eq))
	for v, ids := range s.eq {
		out = append(out, EqView{Value: v, IDs: ids})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// NeRows returns the not-equal rows sorted by value.
func (s *Set) NeRows() []EqView {
	out := make([]EqView, 0, len(s.ne))
	for _, e := range s.ne {
		out = append(out, EqView{Value: e.value, IDs: e.ids})
	}
	return out
}

// String renders the set in the style of the paper's Figure 4.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteString("ranges:")
	for _, r := range s.rows {
		fmt.Fprintf(&b, " %s→%v", r.iv, r.ids)
	}
	b.WriteString(" eq:")
	for _, e := range s.EqRows() {
		fmt.Fprintf(&b, " %g→%v", e.Value, e.IDs)
	}
	if len(s.ne) > 0 {
		b.WriteString(" ne:")
		for _, e := range s.ne {
			fmt.Fprintf(&b, " %g→%v", e.value, e.ids)
		}
	}
	return b.String()
}

// addID inserts id into a sorted id list if absent.
func addID(ids []uint64, id uint64) []uint64 {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return ids
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// removeID deletes id from a sorted id list if present.
func removeID(ids []uint64, id uint64) []uint64 {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return append(ids[:i], ids[i+1:]...)
	}
	return ids
}

// removeIDs deletes every id present in dead from a sorted id list, in
// place, preserving order.
func removeIDs(ids []uint64, dead map[uint64]struct{}) []uint64 {
	out := ids[:0]
	for _, v := range ids {
		if _, ok := dead[v]; !ok {
			out = append(out, v)
		}
	}
	return out
}

// mergeIDs returns the sorted union of two sorted id lists.
func mergeIDs(a, b []uint64) []uint64 {
	if len(b) == 0 {
		return a
	}
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
