// Package interval implements the Arithmetic Attribute Constraint Summary
// (AACS) of Section 3.1 of the subscription-summarization paper: for one
// arithmetic attribute, a set of non-overlapping value sub-ranges (the
// paper's AACSSR array), a set of equality values outside those ranges
// (AACSE), and a not-equal list (the paper lists ≠ among the supported
// operators), each row carrying the list of subscription ids whose
// constraint is satisfied by the row's values.
//
// Subscription ids are opaque uint64 keys here (the summary layer maps them
// back to full c1‖c2‖c3 ids).
package interval

import (
	"fmt"
	"math"
	"strings"
)

// Interval is a range of float64 values with independently open or closed
// bounds. Unbounded sides use ±Inf (always open). The zero Interval is the
// empty interval [0,0) — use the constructors.
type Interval struct {
	Lo, Hi         float64
	LoOpen, HiOpen bool
}

// Full returns the interval covering every value.
func Full() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1), LoOpen: true, HiOpen: true}
}

// Point returns the degenerate interval [v, v].
func Point(v float64) Interval { return Interval{Lo: v, Hi: v} }

// Range returns the interval between lo and hi with the given openness,
// normalizing infinite bounds to open.
func Range(lo, hi float64, loOpen, hiOpen bool) Interval {
	iv := Interval{Lo: lo, Hi: hi, LoOpen: loOpen, HiOpen: hiOpen}
	return iv.normalize()
}

// Below returns the interval of all values less than v (or ≤ v if closed).
func Below(v float64, closed bool) Interval {
	return Interval{Lo: math.Inf(-1), LoOpen: true, Hi: v, HiOpen: !closed}
}

// Above returns the interval of all values greater than v (or ≥ v).
func Above(v float64, closed bool) Interval {
	return Interval{Lo: v, LoOpen: !closed, Hi: math.Inf(1), HiOpen: true}
}

func (iv Interval) normalize() Interval {
	if math.IsInf(iv.Lo, -1) {
		iv.LoOpen = true
	}
	if math.IsInf(iv.Hi, 1) {
		iv.HiOpen = true
	}
	return iv
}

// Empty reports whether no value lies in the interval.
func (iv Interval) Empty() bool {
	if iv.Lo > iv.Hi {
		return true
	}
	return iv.Lo == iv.Hi && (iv.LoOpen || iv.HiOpen)
}

// IsPoint reports whether the interval contains exactly one value, and
// returns it.
func (iv Interval) IsPoint() (float64, bool) {
	if iv.Lo == iv.Hi && !iv.LoOpen && !iv.HiOpen {
		return iv.Lo, true
	}
	return 0, false
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool {
	if x < iv.Lo || (x == iv.Lo && iv.LoOpen) {
		return false
	}
	if x > iv.Hi || (x == iv.Hi && iv.HiOpen) {
		return false
	}
	return true
}

// Intersect returns the intersection of two intervals (possibly empty).
func Intersect(a, b Interval) Interval {
	out := a
	if b.Lo > out.Lo || (b.Lo == out.Lo && b.LoOpen) {
		out.Lo, out.LoOpen = b.Lo, b.LoOpen
	}
	if b.Hi < out.Hi || (b.Hi == out.Hi && b.HiOpen) {
		out.Hi, out.HiOpen = b.Hi, b.HiOpen
	}
	return out
}

// Covers reports whether a contains every value of b (an empty b is covered
// by anything). This is the arithmetic-constraint subsumption relation used
// by the Siena comparator.
func Covers(a, b Interval) bool {
	if b.Empty() {
		return true
	}
	if a.Empty() {
		return false
	}
	loOK := a.Lo < b.Lo || (a.Lo == b.Lo && (!a.LoOpen || b.LoOpen))
	hiOK := a.Hi > b.Hi || (a.Hi == b.Hi && (!a.HiOpen || b.HiOpen))
	return loOK && hiOK
}

// Overlaps reports whether the intervals share at least one value.
func Overlaps(a, b Interval) bool { return !Intersect(a, b).Empty() }

// Equal reports whether two intervals denote the same value set (all empty
// intervals are considered equal).
func (iv Interval) Equal(o Interval) bool {
	if iv.Empty() || o.Empty() {
		return iv.Empty() && o.Empty()
	}
	return iv.normalize() == o.normalize()
}

// String renders the interval in mathematical notation, e.g. "(8.3, 8.7]".
func (iv Interval) String() string {
	if iv.Empty() {
		return "∅"
	}
	var b strings.Builder
	if iv.LoOpen {
		b.WriteByte('(')
	} else {
		b.WriteByte('[')
	}
	fmt.Fprintf(&b, "%g, %g", iv.Lo, iv.Hi)
	if iv.HiOpen {
		b.WriteByte(')')
	} else {
		b.WriteByte(']')
	}
	return b.String()
}
