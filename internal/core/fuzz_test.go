package core

import (
	"bytes"
	"testing"

	"github.com/subsum/subsum/internal/broker"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
)

// FuzzLoadSnapshot: the snapshot loader must never panic on malformed
// bytes, and must fully reject or fully load.
func FuzzLoadSnapshot(f *testing.F) {
	s := schema.MustNew(schema.Attribute{Name: "x", Type: schema.TypeFloat})
	g := topology.Ring(3)
	net, err := New(Config{Topology: g, Schema: s})
	if err != nil {
		f.Fatal(err)
	}
	sub, _ := schema.ParseSubscription(s, `x > 1`)
	if _, err := net.Subscribe(0, sub, func(subid.ID, *schema.Event) {}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.SaveSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	net.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		factory := func(subid.ID, *schema.Subscription) broker.DeliveryFunc {
			return func(subid.ID, *schema.Event) {}
		}
		restored, err := LoadSnapshot(bytes.NewReader(data), Config{Topology: topology.Ring(3)}, factory)
		if err != nil {
			return
		}
		restored.Close()
	})
}
