// Invariant watchdog: a background checker that continuously proves
// three structural invariants of the live engine hold, on a running
// network, without stopping it.
//
//  1. Coverage: every locally-registered subscription appears in its own
//     broker's merged summary. Summaries may overstate coverage (lossy
//     false positives are the paper's design), but an understatement can
//     route events away from a real subscriber — the one failure the "no
//     false negatives" guarantee forbids.
//  2. Flow conservation: every routed event hop terminates in exactly
//     one of forwarded / suppressed / handler-error, so
//     routed == forwarded + suppressed + handler_errors whenever the
//     engine is quiescent, and ≥ holds at every instant.
//  3. Byte reconciliation: the propagation layer's summary-byte
//     accounting equals what the bus saw put on the wire for summaries,
//     delivered plus fault-dropped.
//  4. Churn convergence: after a quiescent full-sync period, every
//     broker's merged summary holds exactly the live subscriptions of
//     each broker it claims — retractions and resyncs leave no stale
//     remote rows behind.
//  5. Bounded staleness: under quiescence with a full-sync schedule, no
//     broker's epoch-vector entry for a tracked peer lags the current
//     period by more than FullSyncEvery periods — a larger lag means
//     that peer's summary traffic is being lost faster than the sync
//     schedule repairs it.
//
// Checks are race-safe against the live engine: strict equalities are
// only asserted when the checker can prove the relevant counters were
// stable across its reads (empty bus, unchanged totals, or an
// uncontended period lock); otherwise the check degrades to the
// inequality that must hold mid-flight. Violations are counted in the
// registry and journaled in the flight recorder, so a dashboard shows
// them live and a crash dump preserves them.
package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/netsim"
	"github.com/subsum/subsum/internal/subid"
)

// Violation names for the watchdog_violations{check} counter family.
const (
	CheckCoverage    = "coverage"
	CheckFlow        = "flow"
	CheckBytes       = "bytes"
	CheckConvergence = "convergence"
	CheckStaleness   = "staleness"
)

// Violation is one detected invariant breach.
type Violation struct {
	Check  string `json:"check"`
	Broker int    `json:"broker"` // -1 for network-wide checks
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	if v.Broker >= 0 {
		return fmt.Sprintf("%s[broker %d]: %s", v.Check, v.Broker, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Check, v.Detail)
}

// CheckInvariants runs every watchdog check once, immediately, and
// returns the violations found (nil when the engine is healthy). Safe to
// call on a live network at any time; it never blocks event or
// propagation processing.
func (net *Network) CheckInvariants() []Violation {
	var out []Violation
	out = append(out, net.checkCoverage()...)
	out = append(out, net.checkFlow()...)
	out = append(out, net.checkBytes()...)
	out = append(out, net.checkConvergence()...)
	out = append(out, net.checkStaleness()...)
	return out
}

// checkCoverage verifies invariant 1 exactly: MissingFromMerged compares
// the raw subscription table against the merged summary under the
// broker's own mutex, so there is no window where a freshly-inserted
// subscription is visible in one but not the other.
func (net *Network) checkCoverage() []Violation {
	var out []Violation
	for i, b := range net.brokers {
		if missing := b.MissingFromMerged(); len(missing) > 0 {
			out = append(out, Violation{
				Check:  CheckCoverage,
				Broker: i,
				Detail: fmt.Sprintf("%d owned subscription(s) absent from own merged summary (first: %v)", len(missing), missing[0]),
			})
		}
	}
	return out
}

// checkFlow verifies invariant 2. Terminal counters are incremented
// after the routed counter within one handler call, so at every instant
// forwarded+suppressed+handler_errors ≤ routed — reading the terminals
// first and routed last makes the inequality safe to assert under load.
// The strict equality is asserted only when the bus was observed empty
// before and after with the routed total unchanged, which proves no
// handler was mid-flight between the reads.
func (net *Network) checkFlow() []Violation {
	inflightBefore := net.bus.Inflight()
	routedBefore := net.obs.eventsRouted.Value()
	terminals := net.obs.eventsForwarded.Value() +
		net.obs.eventsSuppressed.Value() +
		net.bus.Stats().HandlerErrors[netsim.KindEvent]
	routedAfter := net.obs.eventsRouted.Value()
	inflightAfter := net.bus.Inflight()

	stable := inflightBefore == 0 && inflightAfter == 0 && routedBefore == routedAfter
	if stable && terminals != routedAfter {
		return []Violation{{
			Check:  CheckFlow,
			Broker: -1,
			Detail: fmt.Sprintf("routed=%d but forwarded+suppressed+handler_errors=%d with bus idle", routedAfter, terminals),
		}}
	}
	if !stable && terminals > routedAfter {
		return []Violation{{
			Check:  CheckFlow,
			Broker: -1,
			Detail: fmt.Sprintf("terminal decisions %d exceed routed events %d", terminals, routedAfter),
		}}
	}
	return nil
}

// checkBytes verifies invariant 3. Strict equality needs the period lock
// (TryLock — never block a live Propagate): holding it proves no period
// is mid-flight, so the propagation layer's cumulative byte counter and
// the bus's summary-byte accounting describe the same completed set of
// sends. Without the lock, the bus necessarily runs ahead of the
// propagation counter (it counts each send immediately; Propagate adds
// the period total at period end), so only ≥ can be asserted.
func (net *Network) checkBytes() []Violation {
	if net.periodMu.TryLock() {
		stats := net.bus.Stats()
		wire := stats.Bytes[netsim.KindSummary] + stats.DroppedBytes[netsim.KindSummary]
		obs := net.obs.propagationBytes.Value()
		net.periodMu.Unlock()
		if wire != obs {
			return []Violation{{
				Check:  CheckBytes,
				Broker: -1,
				Detail: fmt.Sprintf("propagation_bytes=%d but bus summary bytes (sent+dropped)=%d", obs, wire),
			}}
		}
		return nil
	}
	obs := net.obs.propagationBytes.Value()
	stats := net.bus.Stats()
	wire := stats.Bytes[netsim.KindSummary] + stats.DroppedBytes[netsim.KindSummary]
	if wire < obs {
		return []Violation{{
			Check:  CheckBytes,
			Broker: -1,
			Detail: fmt.Sprintf("bus summary bytes %d fell behind propagation_bytes %d mid-period", wire, obs),
		}}
	}
	return nil
}

// checkConvergence verifies invariant 4 (churn convergence): after a
// full-sync period, every remote merged summary holds *exactly* the live
// subscriptions of each broker it claims coverage for — no stale rows
// for retracted subscriptions survive a resync. The exact equality only
// holds when nothing moved, so the check asserts it only under proof of
// stability: the period lock is free (TryLock), the last completed
// period was a full sync, the bus is idle, and the churn sequence is
// unchanged from that period's start through the end of this pass.
// Otherwise the check abstains — coverage mid-churn is checked by the
// other invariants.
func (net *Network) checkConvergence() []Violation {
	if !net.periodMu.TryLock() {
		return nil
	}
	defer net.periodMu.Unlock()
	if !net.lastPeriodFullSync || net.bus.Inflight() != 0 ||
		net.churnSeq.Load() != net.churnAtPeriodStart {
		return nil
	}
	live := make([]int, len(net.brokers))
	for i, b := range net.brokers {
		live[i] = b.NumSubscriptions()
	}
	var out []Violation
	for i, b := range net.brokers {
		counts := b.MergedOwnerCounts()
		for _, bit := range b.MergedBrokers().Bits() {
			if got := counts[subid.BrokerID(bit)]; got != live[bit] {
				out = append(out, Violation{
					Check:  CheckConvergence,
					Broker: i,
					Detail: fmt.Sprintf("merged summary holds %d subscription(s) of broker %d, owner has %d live", got, bit, live[bit]),
				})
			}
		}
	}
	if net.churnSeq.Load() != net.churnAtPeriodStart {
		// Churn raced the reads above; the snapshot is unusable.
		return nil
	}
	return out
}

// checkStaleness verifies invariant 5 (bounded staleness under
// quiescence): with the full-sync schedule on, no broker's view of a
// peer it tracks may lag the current period by more than FullSyncEvery
// periods — healthy flows refresh every tracked epoch entry each period,
// and even a peer whose delta traffic is being lost is repaired by the
// next applied full sync. The bound is only meaningful when nothing is
// mid-flight, so the check asserts it under the same stability proof as
// the convergence check: the period lock free (TryLock) and the bus
// idle. Unlike convergence it does not require the last period to have
// been a full sync — staleness is exactly the signal that must fire
// *between* syncs, while a peer's messages are being lost.
func (net *Network) checkStaleness() []Violation {
	bound := int64(net.cfg.FullSyncEvery)
	if bound <= 0 {
		return nil // no sync schedule: staleness is unbounded by design
	}
	if !net.periodMu.TryLock() {
		return nil
	}
	defer net.periodMu.Unlock()
	if net.bus.Inflight() != 0 {
		return nil
	}
	period := int64(net.periods)
	if period <= bound {
		return nil // too early for any entry to legitimately exceed the bound
	}
	var out []Violation
	for i, b := range net.brokers {
		b.ReadEpochs(func(peers []int64, _, _ int64) {
			for p, e := range peers {
				if p == i || e < 0 {
					continue
				}
				if lag := period - e; lag > bound {
					out = append(out, Violation{
						Check:  CheckStaleness,
						Broker: i,
						Detail: fmt.Sprintf("view of peer %d last refreshed at period %d, %d periods behind (bound %d)", p, e, lag, bound),
					})
				}
			}
		})
	}
	return out
}

// Watchdog periodically runs CheckInvariants against its network,
// recording results as metrics and flight-recorder entries.
type Watchdog struct {
	net      *Network
	interval time.Duration

	checks     *metrics.Counter
	violations *metrics.Counter
	perCheck   *metrics.CounterVec

	mu   sync.Mutex
	last []Violation

	stopOnce sync.Once
	done     chan struct{}
	stopped  chan struct{}
}

// StartWatchdog launches the invariant watchdog, checking every
// `every` (clamped to ≥ 10ms). Results land in the network's registry as
// watchdog_checks, watchdog_violations, and watchdog_violations_total{check},
// and each violation is journaled. Stop it with Watchdog.Stop (Close does
// so automatically). Only one watchdog per network.
func (net *Network) StartWatchdog(every time.Duration) *Watchdog {
	if net.watchdog != nil {
		return net.watchdog
	}
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	w := &Watchdog{
		net:        net,
		interval:   every,
		checks:     net.metrics.Counter("watchdog_checks"),
		violations: net.metrics.Counter("watchdog_violations"),
		perCheck:   net.metrics.CounterVec("watchdog_violations_total"),
		done:       make(chan struct{}),
		stopped:    make(chan struct{}),
	}
	net.watchdog = w
	go w.run()
	return w
}

func (w *Watchdog) run() {
	defer close(w.stopped)
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-ticker.C:
			w.RunOnce()
		}
	}
}

// RunOnce performs one check pass, recording the outcome. Exposed so
// tests (and debug handlers) can force a check without waiting an
// interval.
func (w *Watchdog) RunOnce() []Violation {
	violations := w.net.CheckInvariants()
	w.checks.Inc()
	for _, v := range violations {
		w.violations.Inc()
		w.perCheck.With(v.Check).Inc()
		w.net.rec.Record(flight.EvWatchdogViolation, v.Broker, 0, 0, 0, v.String())
	}
	w.mu.Lock()
	w.last = violations
	w.mu.Unlock()
	return violations
}

// Last returns the violations found by the most recent check pass.
func (w *Watchdog) Last() []Violation {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Violation, len(w.last))
	copy(out, w.last)
	return out
}

// Stop halts the watchdog and waits for its goroutine to exit.
// Idempotent.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.done) })
	<-w.stopped
}
