package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
)

// expectedRoute replays Algorithm 3's deterministic walk for a network
// whose summaries are fully propagated: starting at origin, the event
// repeatedly jumps to the first broker in forwarding-preference order
// whose subscriptions BROCLI has not yet covered.
func expectedRoute(net *Network, origin topology.NodeID) []int {
	n := len(net.brokers)
	brocli := subid.NewMask(n)
	route := []int{int(origin)}
	node := origin
	for {
		for _, i := range net.brokers[node].MergedBrokers().Bits() {
			brocli.Set(i)
		}
		if brocli.Count() == n {
			return route
		}
		advanced := false
		for _, next := range net.order {
			if brocli.Has(int(next)) {
				continue
			}
			route = append(route, int(next))
			node = next
			advanced = true
			break
		}
		if !advanced {
			return route
		}
	}
}

func TestHopTracePathMatchesRoute(t *testing.T) {
	s := stockSchema(t)
	net := newNetwork(t, topology.Figure7Tree(), s)

	sub, err := schema.ParseSubscription(s, `symbol = OTE && price < 9`)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	if _, err := net.Subscribe(7, sub, c.deliver(s)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	net.Flush()

	net.SetTraceSampling(1)
	if got := net.TraceSampling(); got != 1 {
		t.Fatalf("TraceSampling = %d", got)
	}
	ev, err := schema.ParseEvent(s, "symbol=OTE price=8.40")
	if err != nil {
		t.Fatal(err)
	}
	const origin = 2
	want := expectedRoute(net, origin)
	if err := net.Publish(origin, ev); err != nil {
		t.Fatal(err)
	}
	net.Flush()

	traces := net.Traces()
	if len(traces) != 1 {
		t.Fatalf("%d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Origin != origin {
		t.Fatalf("origin = %d, want %d", tr.Origin, origin)
	}
	if tr.Event == "" {
		t.Fatal("trace lost the event text")
	}
	if len(tr.Path) != len(want) {
		t.Fatalf("path = %v, want %v", tr.Path, want)
	}
	for i := range want {
		if tr.Path[i] != want[i] {
			t.Fatalf("path = %v, want %v", tr.Path, want)
		}
	}
	// The walk's decisions: a delivery at the subscriber's broker, forwards
	// in between, and a suppressed-by-summary terminal once BROCLI is full.
	var delivered, falsePos, forwards, suppressed int
	for _, h := range tr.Hops {
		switch h.Decision {
		case DecisionDelivered:
			delivered++
			if h.Broker != 7 {
				t.Errorf("delivered at broker %d, want 7", h.Broker)
			}
			if h.Matched == 0 {
				t.Error("delivered hop recorded no summary hits")
			}
		case DecisionFalsePositive:
			falsePos++
		case DecisionForwarded:
			forwards++
			if h.Bytes == 0 {
				t.Error("forwarded hop recorded no bytes")
			}
		case DecisionSuppressed:
			suppressed++
		default:
			t.Errorf("unknown decision %q", h.Decision)
		}
	}
	if delivered != 1 || suppressed != 1 {
		t.Fatalf("decisions: delivered=%d falsePos=%d forwards=%d suppressed=%d hops=%v",
			delivered, falsePos, forwards, suppressed, tr.Hops)
	}
	if forwards != len(want)-1 {
		t.Fatalf("forwards = %d, want %d (one per routing edge)", forwards, len(want)-1)
	}
	// The terminal decision happens at the last broker on the path.
	last := tr.Hops[len(tr.Hops)-1]
	if last.Decision != DecisionSuppressed || last.Broker != want[len(want)-1] {
		t.Fatalf("terminal hop = %+v, want suppressed at %d", last, want[len(want)-1])
	}
	if tr.CumBytes == 0 {
		t.Fatal("trace accumulated no bytes")
	}
}

func TestTraceSamplingRate(t *testing.T) {
	s := stockSchema(t)
	net := newNetwork(t, topology.Ring(4), s)
	net.SetTraceSampling(3)
	ev, err := schema.ParseEvent(s, "symbol=X price=1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := net.Publish(0, ev); err != nil {
			t.Fatal(err)
		}
	}
	net.Flush()
	if got := len(net.Traces()); got != 3 {
		t.Fatalf("sampled %d of 9 publishes at 1/3, want 3", got)
	}
	// Turning sampling off stops new traces but keeps the recorded ones.
	net.SetTraceSampling(0)
	if err := net.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	if got := len(net.Traces()); got != 3 {
		t.Fatalf("traces after sampling off = %d, want 3", got)
	}
}

func TestTraceStoreBounded(t *testing.T) {
	s := stockSchema(t)
	net := newNetwork(t, topology.Ring(3), s)
	net.SetTraceSampling(1)
	ev, err := schema.ParseEvent(s, "symbol=X price=1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < defaultTraceCapacity+50; i++ {
		if err := net.Publish(0, ev); err != nil {
			t.Fatal(err)
		}
	}
	net.Flush()
	traces := net.Traces()
	if len(traces) != defaultTraceCapacity {
		t.Fatalf("retained %d traces, want cap %d", len(traces), defaultTraceCapacity)
	}
	// Most recent first: ids descend.
	for i := 1; i < len(traces); i++ {
		if traces[i-1].ID <= traces[i].ID {
			t.Fatalf("traces not newest-first at %d: %d, %d", i, traces[i-1].ID, traces[i].ID)
		}
	}
}

func TestEventMsgHeaderRoundTrip(t *testing.T) {
	s := stockSchema(t)
	ev, err := schema.ParseEvent(s, "symbol=OTE price=8.40")
	if err != nil {
		t.Fatal(err)
	}
	for _, traceID := range []uint64{0, 1, 1 << 60} {
		buf, err := encodeEventMsg(nil, ev, subid.NewMask(8), subid.NewMask(8), traceID)
		if err != nil {
			t.Fatal(err)
		}
		_, _, _, gotID, err := decodeEventMsg(s, buf)
		if err != nil {
			t.Fatalf("traceID %d: %v", traceID, err)
		}
		if gotID != traceID {
			t.Fatalf("traceID = %d, want %d", gotID, traceID)
		}
		db := encodeDeliverMsg(nil, ev, traceID)
		_, gotID, err = decodeDeliverMsg(s, db)
		if err != nil || gotID != traceID {
			t.Fatalf("deliver traceID = %d (%v), want %d", gotID, err, traceID)
		}
	}
	// Corrupt headers are decode errors, not panics.
	if _, _, err := decodeMsgHeader(nil); err == nil {
		t.Fatal("empty header accepted")
	}
	if _, _, err := decodeMsgHeader([]byte{0xFE}); err == nil {
		t.Fatal("unknown flags accepted")
	}
	if _, _, err := decodeMsgHeader([]byte{msgFlagTrace, 1, 2}); err == nil {
		t.Fatal("truncated trace id accepted")
	}
}

func TestNetworkMetricsSnapshot(t *testing.T) {
	s := stockSchema(t)
	net := newNetwork(t, topology.Figure7Tree(), s)
	sub, err := schema.ParseSubscription(s, `symbol = OTE`)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	if _, err := net.Subscribe(7, sub, c.deliver(s)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	ev, err := schema.ParseEvent(s, "symbol=OTE price=8.40")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	if c.count() != 1 {
		t.Fatalf("deliveries = %d", c.count())
	}

	m := net.Metrics().Map()
	for _, name := range []string{
		"events_published",
		"events_routed",
		"events_forwarded",
		"propagation_periods",
		"propagation_hops",
		"propagation_bytes",
		"bus_messages{event}",
		"bus_messages{summary}",
		"broker_subscriptions{7}",
		"broker_deliveries{7}",
		"broker_match_events{0}",
	} {
		if m[name] == 0 {
			t.Errorf("%s = 0, want nonzero (snapshot: %d samples)", name, len(m))
		}
	}
	if m["events_published"] != 1 {
		t.Errorf("events_published = %v, want 1", m["events_published"])
	}
	// Latency histograms observed the match path.
	if m["broker_match_seconds{0}.count"] == 0 {
		t.Error("broker match histogram empty")
	}
	if m["propagation_period_seconds.count"] != 1 {
		t.Errorf("propagation_period_seconds.count = %v, want 1", m["propagation_period_seconds.count"])
	}
}

func TestTraceCapacityAndClear(t *testing.T) {
	s := stockSchema(t)
	net := newNetwork(t, topology.Ring(3), s)
	net.SetTraceSampling(1)
	ev, err := schema.ParseEvent(s, "symbol=X price=1")
	if err != nil {
		t.Fatal(err)
	}
	publish := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := net.Publish(0, ev); err != nil {
				t.Fatal(err)
			}
		}
		net.Flush()
	}

	net.SetTraceCapacity(10)
	if got := net.TraceCapacity(); got != 10 {
		t.Fatalf("TraceCapacity = %d, want 10", got)
	}
	publish(25)
	traces := net.Traces()
	if len(traces) != 10 {
		t.Fatalf("retained %d traces at capacity 10", len(traces))
	}
	if got := net.Metrics().Gauge("trace_store_depth").Value(); got != 10 {
		t.Fatalf("trace_store_depth = %d, want 10", got)
	}
	// The survivors are the newest: highest ids.
	if traces[len(traces)-1].ID != traces[0].ID-9 {
		t.Fatalf("retained window wrong: newest=%d oldest=%d", traces[0].ID, traces[len(traces)-1].ID)
	}

	// Shrinking evicts immediately.
	net.SetTraceCapacity(4)
	if got := len(net.Traces()); got != 4 {
		t.Fatalf("retained %d traces after shrink to 4", got)
	}
	if got := net.Metrics().Gauge("trace_store_depth").Value(); got != 4 {
		t.Fatalf("trace_store_depth after shrink = %d, want 4", got)
	}

	// n ≤ 0 restores the default.
	net.SetTraceCapacity(0)
	if got := net.TraceCapacity(); got != defaultTraceCapacity {
		t.Fatalf("TraceCapacity after reset = %d, want %d", got, defaultTraceCapacity)
	}

	net.ClearTraces()
	if got := len(net.Traces()); got != 0 {
		t.Fatalf("%d traces after ClearTraces", got)
	}
	if got := net.Metrics().Gauge("trace_store_depth").Value(); got != 0 {
		t.Fatalf("trace_store_depth after clear = %d, want 0", got)
	}
	// Store still works after clearing.
	publish(2)
	if got := len(net.Traces()); got != 2 {
		t.Fatalf("%d traces after post-clear publishes, want 2", got)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	s := stockSchema(t)
	net := newNetwork(t, topology.Figure7Tree(), s)
	sub, err := schema.ParseSubscription(s, `symbol = OTE`)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	if _, err := net.Subscribe(7, sub, c.deliver(s)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	net.SetTraceSampling(1)
	ev, err := schema.ParseEvent(s, "symbol=OTE price=9")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := net.Publish(0, ev); err != nil {
			t.Fatal(err)
		}
	}
	net.Flush()

	var buf bytes.Buffer
	if err := net.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TsUs  float64        `json:"ts"`
			DurUs float64        `json:"dur"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var slices, meta int
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "X":
			slices++
			if e.TsUs < 0 || e.DurUs < 0 {
				t.Fatalf("negative ts/dur in slice %+v", e)
			}
			if e.Name == "" || e.Args["trace_id"] == nil {
				t.Fatalf("slice missing name/args: %+v", e)
			}
		case "M":
			meta++
			if e.Args["name"] == "" {
				t.Fatalf("metadata without thread name: %+v", e)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Phase)
		}
	}
	if slices == 0 {
		t.Fatal("no hop slices exported")
	}
	if meta == 0 {
		t.Fatal("no thread-name metadata exported")
	}
	// Every traced hop appears as a slice.
	var hops int
	for _, tr := range net.Traces() {
		hops += len(tr.Hops)
	}
	if slices != hops {
		t.Fatalf("%d slices for %d hops", slices, hops)
	}
}
