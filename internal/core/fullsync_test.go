package core

import (
	"fmt"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/netsim"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
)

// fullSyncNetwork builds a network with the given FullSyncEvery and one
// distinctive subscription per broker (price = 1000000+i).
func fullSyncNetwork(t *testing.T, g *topology.Graph, s *schema.Schema, fullSyncEvery int) *Network {
	t.Helper()
	net, err := New(Config{Topology: g, Schema: s, Mode: interval.Lossy, FullSyncEvery: fullSyncEvery})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	for i := 0; i < g.Len(); i++ {
		sub, err := schema.ParseSubscription(s, fmt.Sprintf(`price = %d`, 1000000+i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Subscribe(topology.NodeID(i), sub, func(subid.ID, *schema.Event) {}); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

// TestFullSyncRecoversLostCoverage: deltas drained during a period whose
// summary messages were all lost are gone for good under pure
// delta-propagation — but a full-sync period re-ships the merged state
// and restores exactly the coverage an undisturbed network would have.
func TestFullSyncRecoversLostCoverage(t *testing.T) {
	g := topology.Figure7Tree()
	s := stockSchema(t)

	// Reference: one clean propagation period, no loss.
	ref := fullSyncNetwork(t, g, s, 0)
	if _, err := ref.Propagate(); err != nil {
		t.Fatal(err)
	}

	// Victim with full syncs every 2nd period: period 1 loses every
	// summary message, so all per-period deltas are drained and lost.
	vic := fullSyncNetwork(t, g, s, 2)
	vic.InjectFaults(func(m netsim.Message) bool { return m.Kind == netsim.KindSummary })
	if _, err := vic.Propagate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Len(); i++ {
		if got := vic.Broker(topology.NodeID(i)).Stats().MergedBrokerCount; got != 1 {
			t.Fatalf("broker %d coverage %d under total summary loss, want 1", i, got)
		}
	}
	// Control without full syncs: healing the network does not bring the
	// lost deltas back — the next delta period ships empty summaries, so
	// merged content stays at each broker's own subscription. (Coverage
	// *bits* can still spread, overstating coverage: Merged_Brokers
	// travels with every period's message while the lost content does
	// not. That divergence is precisely the exposure FullSyncEvery
	// bounds.)
	ctl := fullSyncNetwork(t, g, s, 0)
	ctl.InjectFaults(func(m netsim.Message) bool { return m.Kind == netsim.KindSummary })
	if _, err := ctl.Propagate(); err != nil {
		t.Fatal(err)
	}
	ctl.InjectFaults(nil)
	if _, err := ctl.Propagate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Len(); i++ {
		if got := ctl.Broker(topology.NodeID(i)).Stats().MergedSummarySubs; got != 1 {
			t.Fatalf("control broker %d merged subs %d, want 1 (lost deltas never return)", i, got)
		}
	}

	// Victim heals; period 2 is a full sync and must reproduce the
	// reference coverage and summary content at every broker.
	vic.InjectFaults(nil)
	if _, err := vic.Propagate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.Len(); i++ {
		got := vic.Broker(topology.NodeID(i)).Stats()
		want := ref.Broker(topology.NodeID(i)).Stats()
		if got.MergedBrokerCount != want.MergedBrokerCount {
			t.Errorf("broker %d: coverage %d after full sync, want %d",
				i, got.MergedBrokerCount, want.MergedBrokerCount)
		}
		if got.MergedSummarySubs != want.MergedSummarySubs {
			t.Errorf("broker %d: merged subs %d after full sync, want %d",
				i, got.MergedSummarySubs, want.MergedSummarySubs)
		}
	}
}

// TestFullSyncEveryPeriodMatchesPreDeltaBehavior: FullSyncEvery=1 ships
// the full merged summary every period; repeating periods with no new
// subscriptions must keep coverage stable (idempotent merges).
func TestFullSyncEveryPeriodMatchesPreDeltaBehavior(t *testing.T) {
	g := topology.CW24()
	s := stockSchema(t)
	net := fullSyncNetwork(t, g, s, 1)
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	cov := make([]int, g.Len())
	subs := make([]int, g.Len())
	for i := range cov {
		st := net.Broker(topology.NodeID(i)).Stats()
		cov[i], subs[i] = st.MergedBrokerCount, st.MergedSummarySubs
	}
	for round := 0; round < 3; round++ {
		if _, err := net.Propagate(); err != nil {
			t.Fatal(err)
		}
	}
	for i := range cov {
		st := net.Broker(topology.NodeID(i)).Stats()
		if st.MergedBrokerCount < cov[i] || st.MergedSummarySubs != subs[i] {
			t.Fatalf("broker %d: coverage %d/%d subs after repeats, had %d/%d",
				i, st.MergedBrokerCount, st.MergedSummarySubs, cov[i], subs[i])
		}
	}
}
