package core

import (
	"sync"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/netsim"
	"github.com/subsum/subsum/internal/routing"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

func stockSchema(t testing.TB) *schema.Schema {
	t.Helper()
	return schema.MustNew(
		schema.Attribute{Name: "exchange", Type: schema.TypeString},
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
		schema.Attribute{Name: "volume", Type: schema.TypeInt},
	)
}

// collector gathers deliveries thread-safely.
type collector struct {
	mu     sync.Mutex
	events []string
}

func (c *collector) deliver(s *schema.Schema) func(subid.ID, *schema.Event) {
	return func(id subid.ID, ev *schema.Event) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.events = append(c.events, ev.Format(s))
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

func newNetwork(t testing.TB, g *topology.Graph, s *schema.Schema) *Network {
	t.Helper()
	net, err := New(Config{Topology: g, Schema: s, Mode: interval.Lossy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	return net
}

// TestEndToEndDelivery is the core engine invariant: after propagation,
// an event published anywhere is delivered to exactly the consumers whose
// subscriptions match, wherever they are attached.
func TestEndToEndDelivery(t *testing.T) {
	s := stockSchema(t)
	g := topology.Figure7Tree()
	net := newNetwork(t, g, s)

	sub1, err := schema.ParseSubscription(s, `symbol = OTE && price > 8.30 && price < 8.70`)
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := schema.ParseSubscription(s, `symbol >* OT && volume > 130000`)
	if err != nil {
		t.Fatal(err)
	}
	sub3, err := schema.ParseSubscription(s, `price > 100`)
	if err != nil {
		t.Fatal(err)
	}
	var c1, c2, c3 collector
	if _, err := net.Subscribe(3, sub1, c1.deliver(s)); err != nil { // paper broker 4
		t.Fatal(err)
	}
	if _, err := net.Subscribe(7, sub2, c2.deliver(s)); err != nil { // paper broker 8
		t.Fatal(err)
	}
	if _, err := net.Subscribe(12, sub3, c3.deliver(s)); err != nil { // paper broker 13
		t.Fatal(err)
	}
	if hops, err := net.Propagate(); err != nil || hops <= 0 {
		t.Fatalf("Propagate: hops=%d err=%v", hops, err)
	}
	ev, err := schema.ParseEvent(s, `exchange=NYSE symbol=OTE price=8.40 volume=132700`)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Publish(0, ev); err != nil { // paper broker 1
		t.Fatal(err)
	}
	net.Flush()
	if c1.count() != 1 {
		t.Errorf("sub1 deliveries = %d, want 1", c1.count())
	}
	if c2.count() != 1 {
		t.Errorf("sub2 deliveries = %d, want 1", c2.count())
	}
	if c3.count() != 0 {
		t.Errorf("sub3 deliveries = %d, want 0", c3.count())
	}
}

func TestEventBeforePropagationReachesLocalOnly(t *testing.T) {
	s := stockSchema(t)
	g := topology.Ring(4)
	net := newNetwork(t, g, s)
	sub, _ := schema.ParseSubscription(s, `price > 1`)
	var local, remote collector
	if _, err := net.Subscribe(0, sub, local.deliver(s)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Subscribe(2, sub, remote.deliver(s)); err != nil {
		t.Fatal(err)
	}
	ev, _ := schema.ParseEvent(s, `price=5`)
	// No propagation yet: only broker 0 knows its own subscription — but
	// Algorithm 3 still walks all brokers (BROCLI), finding broker 2's
	// subscription in broker 2's own merged summary.
	if err := net.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	if local.count() != 1 {
		t.Errorf("local deliveries = %d, want 1", local.count())
	}
	if remote.count() != 1 {
		t.Errorf("remote deliveries = %d, want 1 (found via BROCLI walk)", remote.count())
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	s := stockSchema(t)
	net := newNetwork(t, topology.Ring(3), s)
	sub, _ := schema.ParseSubscription(s, `price > 1`)
	var c collector
	id, err := net.Subscribe(1, sub, c.deliver(s))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	ev, _ := schema.ParseEvent(s, `price=5`)
	if err := net.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	if c.count() != 1 {
		t.Fatalf("deliveries = %d, want 1", c.count())
	}
	if err := net.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if err := net.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	// Remote merged summaries may still advertise the subscription, but
	// the owner's exact re-match drops it: no new delivery.
	if c.count() != 1 {
		t.Fatalf("deliveries after unsubscribe = %d, want 1", c.count())
	}
}

func TestNoFalseDeliveries(t *testing.T) {
	s := stockSchema(t)
	net := newNetwork(t, topology.CW24(), s)
	// A summary false positive source: prefix generalization. Two subs
	// whose SACS rows generalize; events matching the generalization but
	// not the subscription must not be delivered.
	subA, _ := schema.ParseSubscription(s, `symbol >* OT`)
	subB, _ := schema.ParseSubscription(s, `symbol = OTE`)
	var cA, cB collector
	if _, err := net.Subscribe(3, subA, cA.deliver(s)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Subscribe(3, subB, cB.deliver(s)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	ev, _ := schema.ParseEvent(s, `symbol=OTX`) // matches subA, not subB
	if err := net.Publish(9, ev); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	if cA.count() != 1 {
		t.Errorf("subA deliveries = %d, want 1", cA.count())
	}
	if cB.count() != 0 {
		t.Errorf("subB deliveries = %d, want 0 (exact re-match must drop)", cB.count())
	}
}

// TestRandomizedEndToEnd cross-checks the live engine against exact
// matching for a random workload on the CW24 backbone.
func TestRandomizedEndToEnd(t *testing.T) {
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := gen.Schema()
	g := topology.CW24()
	net := newNetwork(t, g, s)

	type entry struct {
		sub *schema.Subscription
		c   *collector
	}
	var entries []entry
	for i := 0; i < 150; i++ {
		sub := gen.Subscription()
		c := &collector{}
		if _, err := net.Subscribe(topology.NodeID(i%g.Len()), sub, c.deliver(s)); err != nil {
			t.Fatal(err)
		}
		entries = append(entries, entry{sub: sub, c: c})
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	events := make([]*schema.Event, 200)
	for i := range events {
		events[i] = gen.Event(0.9)
		if err := net.Publish(topology.NodeID(i%g.Len()), events[i]); err != nil {
			t.Fatal(err)
		}
	}
	net.Flush()
	for i, e := range entries {
		want := 0
		for _, ev := range events {
			if e.sub.Matches(ev) {
				want++
			}
		}
		if got := e.c.count(); got != want {
			t.Fatalf("subscription %d (%s): %d deliveries, want %d",
				i, e.sub.Format(s), got, want)
		}
	}
	// Real bytes moved on the bus, and a clean run has every loss counter
	// at exactly zero.
	st := net.Stats()
	if st.Messages[netsim.KindSummary] == 0 || st.TotalBytes() == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalDropped() != 0 || st.TotalErrors() != 0 {
		t.Fatalf("loss counters non-zero on clean run: %+v", st.Counters().Snapshot())
	}
}

// TestIncrementalPropagationPeriods: subscriptions added after a period
// are propagated by the next period's delta.
func TestIncrementalPropagationPeriods(t *testing.T) {
	s := stockSchema(t)
	g := topology.Figure7Tree()
	net := newNetwork(t, g, s)
	sub1, _ := schema.ParseSubscription(s, `price > 1 && price < 2`)
	var c1, c2 collector
	if _, err := net.Subscribe(3, sub1, c1.deliver(s)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	// Second period: a new subscription arrives.
	sub2, _ := schema.ParseSubscription(s, `price > 10 && price < 20`)
	if _, err := net.Subscribe(8, sub2, c2.deliver(s)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	ev1, _ := schema.ParseEvent(s, `price=1.5`)
	ev2, _ := schema.ParseEvent(s, `price=15`)
	if err := net.Publish(0, ev1); err != nil {
		t.Fatal(err)
	}
	if err := net.Publish(5, ev2); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	if c1.count() != 1 || c2.count() != 1 {
		t.Fatalf("deliveries = %d/%d, want 1/1", c1.count(), c2.count())
	}
	// Broker 5 (node 4) should have merged knowledge from both periods.
	st := net.Broker(4).Stats()
	if st.MergedBrokerCount < 6 {
		t.Fatalf("broker 5 merged coverage = %d, want ≥ 6", st.MergedBrokerCount)
	}
}

func TestConfigValidation(t *testing.T) {
	s := stockSchema(t)
	if _, err := New(Config{Schema: s}); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := New(Config{Topology: topology.Ring(3)}); err == nil {
		t.Fatal("nil schema accepted")
	}
	if _, err := New(Config{Topology: topology.Ring(3), Schema: s, Strategy: routing.RandomUnvisited}); err == nil {
		t.Fatal("RandomUnvisited accepted by live engine")
	}
}

func TestSubscribeValidation(t *testing.T) {
	s := stockSchema(t)
	net := newNetwork(t, topology.Ring(3), s)
	sub, _ := schema.ParseSubscription(s, `price > 1`)
	if _, err := net.Subscribe(9, sub, func(subid.ID, *schema.Event) {}); err == nil {
		t.Fatal("out-of-range broker accepted")
	}
	if _, err := net.Subscribe(0, nil, func(subid.ID, *schema.Event) {}); err == nil {
		t.Fatal("nil subscription accepted")
	}
	if _, err := net.Subscribe(0, sub, nil); err == nil {
		t.Fatal("nil delivery func accepted")
	}
	if err := net.Unsubscribe(subid.ID{Broker: 9}); err == nil {
		t.Fatal("out-of-range unsubscribe accepted")
	}
	if err := net.Publish(7, nil); err == nil {
		t.Fatal("out-of-range publish accepted")
	}
}

func TestSubscriptionLimit(t *testing.T) {
	s := stockSchema(t)
	net, err := New(Config{
		Topology: topology.Ring(3), Schema: s,
		MaxSubscriptionsPerBroker: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	sub, _ := schema.ParseSubscription(s, `price > 1`)
	fn := func(subid.ID, *schema.Event) {}
	for i := 0; i < 2; i++ {
		if _, err := net.Subscribe(0, sub, fn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Subscribe(0, sub, fn); err == nil {
		t.Fatal("c2 exhaustion not enforced")
	}
}
