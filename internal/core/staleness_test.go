package core

import (
	"fmt"
	"strings"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/netsim"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// TestStalenessObservabilityUnderSummaryLoss is the convergence-epoch
// acceptance path end to end: a healthy network reports zero staleness;
// silently dropping one broker's summary messages makes every tracked
// view of that broker decay period over period (visible in the
// convergence report and the per-broker gauges); once the lag exceeds
// the full-sync bound the watchdog's staleness invariant fires under
// quiescence; healing the fault and letting the flows run restores
// staleness to zero and quiets the watchdog.
func TestStalenessObservabilityUnderSummaryLoss(t *testing.T) {
	const fullSyncEvery = 3
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := gen.Schema()
	net, err := New(Config{
		Topology:      topology.CW24(),
		Schema:        s,
		Mode:          interval.Lossy,
		FullSyncEvery: fullSyncEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	for i := 0; i < 2*net.Len(); i++ {
		if _, err := net.Subscribe(topology.NodeID(i%net.Len()), gen.Subscription(),
			func(subid.ID, *schema.Event) {}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	net.Flush()

	rep := net.Convergence()
	if rep.Period != 1 {
		t.Fatalf("period = %d, want 1", rep.Period)
	}
	if rep.MaxStaleness != 0 || rep.LaggingEntries != 0 {
		t.Fatalf("healthy network reports staleness %d / %d lagging entries",
			rep.MaxStaleness, rep.LaggingEntries)
	}

	// Pick a broker some other broker tracks — dropping its summary
	// traffic must starve exactly those epoch entries.
	victim := -1
	trackers := map[int]bool{}
	for _, bc := range rep.Brokers {
		for _, pe := range bc.Peers {
			if victim == -1 {
				victim = pe.Peer
			}
			if pe.Peer == victim {
				trackers[bc.Broker] = true
			}
		}
	}
	if victim < 0 || len(trackers) == 0 {
		t.Fatal("no tracked epoch entries after a healthy period")
	}

	net.InjectFaults(func(m netsim.Message) bool {
		return m.Kind == netsim.KindSummary && int(m.From) == victim
	})
	// Run the lag past the bound: epochs for the victim freeze at period
	// 1, so after 5 more periods the tracked views are 5 behind — beyond
	// the FullSyncEvery=3 bound even though full syncs kept running
	// (their payloads from the victim are lost too).
	for k := 0; k < 5; k++ {
		if _, err := net.Propagate(); err != nil {
			t.Fatal(err)
		}
	}
	net.Flush()

	rep = net.Convergence()
	if rep.MaxStaleness != 5 {
		t.Fatalf("staleness after 5 starved periods = %d, want 5", rep.MaxStaleness)
	}
	for _, bc := range rep.Brokers {
		for _, pe := range bc.Peers {
			if pe.Peer == victim && trackers[bc.Broker] && pe.Staleness != 5 {
				t.Fatalf("broker %d view of victim %d: staleness %d, want 5",
					bc.Broker, victim, pe.Staleness)
			}
		}
	}
	// The per-broker gauges (refreshed at period end) must agree.
	m := net.Metrics().Map()
	for b := range trackers {
		if got := m[fmt.Sprintf("convergence_staleness_periods{%d}", b)]; got < 5 {
			t.Fatalf("staleness gauge for tracker %d = %v, want >= 5", b, got)
		}
	}

	// Quiescent, past the bound: the watchdog must flag the decayed views
	// of the victim — and only views of the victim.
	staleViol := 0
	for _, v := range net.CheckInvariants() {
		if v.Check != CheckStaleness {
			continue
		}
		staleViol++
		if !strings.Contains(v.Detail, fmt.Sprintf("view of peer %d ", victim)) {
			t.Fatalf("staleness violation names the wrong peer: %s", v)
		}
	}
	if staleViol == 0 {
		t.Fatal("watchdog reported no staleness violation at lag 5 > bound 3")
	}

	// Heal and run through the next full sync: deterministic flows
	// refresh every tracked entry, restoring zero staleness and a quiet
	// watchdog.
	net.InjectFaults(nil)
	for k := 0; k < fullSyncEvery; k++ {
		if _, err := net.Propagate(); err != nil {
			t.Fatal(err)
		}
	}
	net.Flush()
	rep = net.Convergence()
	if rep.MaxStaleness != 0 || rep.LaggingEntries != 0 {
		t.Fatalf("healed network still reports staleness %d / %d lagging entries",
			rep.MaxStaleness, rep.LaggingEntries)
	}
	for _, v := range net.CheckInvariants() {
		if v.Check == CheckStaleness {
			t.Fatalf("staleness violation after heal: %s", v)
		}
	}
}

// TestConvergenceFullSyncAges pins the full-sync and retraction lag
// bookkeeping: before any full sync both report -1 ("never"), after a
// full-sync period the age resets for every broker a sync payload
// reached, and the ages grow by one per subsequent delta period.
func TestConvergenceFullSyncAges(t *testing.T) {
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := gen.Schema()
	net, err := New(Config{
		Topology:      topology.Figure7Tree(),
		Schema:        s,
		Mode:          interval.Lossy,
		FullSyncEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	for i := 0; i < net.Len(); i++ {
		if _, err := net.Subscribe(topology.NodeID(i), gen.Subscription(),
			func(subid.ID, *schema.Event) {}); err != nil {
			t.Fatal(err)
		}
	}

	// Period 1 is a delta period (2 % FullSyncEvery != 0 ... periods start
	// at 1): no full sync applied anywhere yet.
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	rep := net.Convergence()
	for _, bc := range rep.Brokers {
		if bc.FullSyncAge != -1 {
			t.Fatalf("broker %d full-sync age %d before any sync, want -1", bc.Broker, bc.FullSyncAge)
		}
	}

	// Period 2 ships full syncs; every broker that received one reports
	// age 0 now and age 1 after one more delta period.
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	synced := map[int]bool{}
	for _, bc := range net.Convergence().Brokers {
		if bc.FullSyncAge == 0 {
			synced[bc.Broker] = true
		}
	}
	if len(synced) == 0 {
		t.Fatal("no broker applied a full-sync payload in the sync period")
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	for _, bc := range net.Convergence().Brokers {
		if synced[bc.Broker] && bc.FullSyncAge != 1 {
			t.Fatalf("broker %d full-sync age %d one period after sync, want 1", bc.Broker, bc.FullSyncAge)
		}
	}
}
