package core

import (
	"bytes"
	"testing"

	"github.com/subsum/subsum/internal/broker"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// TestSnapshotRoundTrip persists a network with churned subscriptions and
// restores it: local ids survive, deliveries resume exactly after one
// propagation period.
func TestSnapshotRoundTrip(t *testing.T) {
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := gen.Schema()
	g := topology.Figure7Tree()
	net := newNetwork(t, g, s)

	var ids []subid.ID
	var subs []*schema.Subscription
	for i := 0; i < 40; i++ {
		sub := gen.Subscription()
		id, err := net.Subscribe(topology.NodeID(i%g.Len()), sub, func(subid.ID, *schema.Event) {})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		subs = append(subs, sub)
	}
	// Churn a hole into the local-id space.
	if err := net.Unsubscribe(ids[5]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := net.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restoredLog := &collector{}
	restored, err := LoadSnapshot(bytes.NewReader(buf.Bytes()), Config{Topology: g},
		func(id subid.ID, sub *schema.Subscription) broker.DeliveryFunc {
			return restoredLog.deliver(s)
		})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	// Local ids survive; the unsubscribed one stays gone; fresh subscribes
	// do not collide with restored ids.
	for i, id := range ids {
		want := i != 5
		if got := restored.Broker(topology.NodeID(int(id.Broker))).NumSubscriptions() > 0; !got && want {
			t.Fatalf("broker %d lost its subscriptions", id.Broker)
		}
	}
	freshID, err := restored.Subscribe(topology.NodeID(ids[0].Broker), subs[0], func(subid.ID, *schema.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id.Broker == freshID.Broker && id.Local == freshID.Local {
			t.Fatalf("fresh id %v collides with restored id", freshID)
		}
	}

	// Recovery: one propagation period rebuilds coverage; deliveries are
	// identical to the original network's.
	if _, err := restored.Propagate(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	events := make([]*schema.Event, 80)
	for i := range events {
		events[i] = gen.Event(0.9)
	}
	want := 0
	for i, sub := range subs {
		if i == 5 {
			continue
		}
		for _, ev := range events {
			if sub.Matches(ev) {
				want++
			}
		}
	}
	for i, ev := range events {
		if err := restored.Publish(topology.NodeID(i%g.Len()), ev); err != nil {
			t.Fatal(err)
		}
	}
	restored.Flush()
	// The fresh duplicate of subs[0] also receives its matches.
	for _, ev := range events {
		if subs[0].Matches(ev) {
			want++
		}
	}
	if got := restoredLog.count(); got != want {
		t.Fatalf("restored deliveries = %d, want %d", got, want)
	}
}

func TestSnapshotCorruption(t *testing.T) {
	s := schema.MustNew(schema.Attribute{Name: "x", Type: schema.TypeFloat})
	g := topology.Ring(3)
	net := newNetwork(t, g, s)
	sub, _ := schema.ParseSubscription(s, `x > 1`)
	if _, err := net.Subscribe(0, sub, func(subid.ID, *schema.Event) {}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	factory := func(subid.ID, *schema.Subscription) broker.DeliveryFunc {
		return func(subid.ID, *schema.Event) {}
	}
	if _, err := LoadSnapshot(bytes.NewReader(nil), Config{Topology: g}, factory); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	for cut := 1; cut < len(data); cut += 3 {
		if _, err := LoadSnapshot(bytes.NewReader(data[:cut]), Config{Topology: g}, factory); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := LoadSnapshot(bytes.NewReader(bad), Config{Topology: g}, factory); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := LoadSnapshot(bytes.NewReader(data), Config{Topology: topology.Ring(5)}, factory); err == nil {
		t.Fatal("topology size mismatch accepted")
	}
	if _, err := LoadSnapshot(bytes.NewReader(data), Config{Topology: g}, nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if _, err := LoadSnapshot(bytes.NewReader(append(data, 0xEE)), Config{Topology: g}, factory); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
