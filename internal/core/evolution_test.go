package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/topology"
)

// TestSchemaEvolution exercises the paper's Section 6 extension: an
// attribute is added at runtime; subscriptions over the new attribute
// propagate and match, and pre-existing subscriptions are unaffected.
func TestSchemaEvolution(t *testing.T) {
	s := schema.MustNew(
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
	)
	net := newNetwork(t, topology.Figure7Tree(), s)

	oldSub, err := schema.ParseSubscription(s, `price > 5`)
	if err != nil {
		t.Fatal(err)
	}
	var oldC, newC collector
	if _, err := net.Subscribe(3, oldSub, oldC.deliver(s)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}

	// Evolve: a "volume" attribute appears.
	id, err := net.ExtendSchema("volume", schema.TypeInt)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("new attribute id = %d, want 1", id)
	}
	if _, err := net.ExtendSchema("volume", schema.TypeInt); err == nil {
		t.Fatal("duplicate attribute accepted")
	}

	newSub, err := schema.ParseSubscription(s, `volume > 100 && price < 3`)
	if err != nil {
		t.Fatalf("subscription over evolved schema: %v", err)
	}
	if _, err := net.Subscribe(9, newSub, newC.deliver(s)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}

	// An event using the new attribute matches the new subscription only;
	// an old-style event still matches the old subscription.
	evNew, err := schema.ParseEvent(s, `price=1 volume=500`)
	if err != nil {
		t.Fatal(err)
	}
	evOld, err := schema.ParseEvent(s, `price=9`)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Publish(0, evNew); err != nil {
		t.Fatal(err)
	}
	if err := net.Publish(12, evOld); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	if oldC.count() != 1 {
		t.Errorf("old subscription deliveries = %d, want 1", oldC.count())
	}
	if newC.count() != 1 {
		t.Errorf("new subscription deliveries = %d, want 1", newC.count())
	}
}

// TestSchemaEvolutionConcurrentWithTraffic races schema extension against
// live publishing (run with -race to validate the locking).
func TestSchemaEvolutionConcurrentWithTraffic(t *testing.T) {
	s := schema.MustNew(schema.Attribute{Name: "a0", Type: schema.TypeFloat})
	net := newNetwork(t, topology.Ring(5), s)
	sub, err := schema.ParseSubscription(s, `a0 > 0`)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	if _, err := net.Subscribe(2, sub, c.deliver(s)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= 20; i++ {
			if _, err := net.ExtendSchema(fmt.Sprintf("a%d", i), schema.TypeFloat); err != nil {
				t.Errorf("extend %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		ev, err := schema.ParseEvent(s, `a0=1`)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 50; i++ {
			if err := net.Publish(topology.NodeID(i%5), ev); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	net.Flush()
	if c.count() != 50 {
		t.Fatalf("deliveries = %d, want 50", c.count())
	}
	if s.Len() != 21 {
		t.Fatalf("schema len = %d, want 21", s.Len())
	}
}
