package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/subsum/subsum/internal/broker"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
)

// Snapshot format (little endian):
//
//	magic "SNP1"
//	schema:  u16 nattrs × { u8 type, u16 namelen, name }
//	brokers: u16 count × {
//	    u32 nsubs × { u32 local, encoded subscription }
//	}
//
// Only the durable state is persisted: the schema and every broker's raw
// subscriptions with their original local ids. Summaries, Merged_Brokers
// sets, and routing state are derived; after LoadSnapshot the caller runs
// one Propagate period to rebuild them — exercising the system's own
// recovery path rather than trusting serialized derived state.
var snapshotMagic = [4]byte{'S', 'N', 'P', '1'}

// DeliveryFactory supplies the consumer callback for each restored
// subscription (delivery functions cannot be serialized).
type DeliveryFactory func(id subid.ID, sub *schema.Subscription) broker.DeliveryFunc

// SaveSnapshot writes the network's durable state to w.
func (net *Network) SaveSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	buf := append([]byte(nil), snapshotMagic[:]...)

	attrs := net.cfg.Schema.Attributes()
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(attrs)))
	for _, a := range attrs {
		buf = append(buf, byte(a.Type))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(a.Name)))
		buf = append(buf, a.Name...)
	}

	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(net.brokers)))
	for _, b := range net.brokers {
		subs := b.SnapshotSubscriptions()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(subs)))
		for _, rs := range subs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(rs.Local))
			buf = schema.EncodeSubscription(buf, rs.Sub)
		}
	}
	if _, err := bw.Write(buf); err != nil {
		return fmt.Errorf("core: writing snapshot: %w", err)
	}
	return bw.Flush()
}

// LoadSnapshot reads a snapshot and builds a fresh network on the given
// overlay. The schema is reconstructed from the snapshot (cfg.Schema is
// ignored); deliver supplies consumer callbacks for the restored
// subscriptions. The caller should run Propagate to rebuild multi-broker
// summaries before publishing.
func LoadSnapshot(r io.Reader, cfg Config, deliver DeliveryFactory) (*Network, error) {
	if deliver == nil {
		return nil, fmt.Errorf("core: nil delivery factory")
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading snapshot: %w", err)
	}
	d := &snapDecoder{buf: data}
	if m := d.bytes(4); m == nil || string(m) != string(snapshotMagic[:]) {
		return nil, fmt.Errorf("core: bad snapshot magic")
	}

	nAttrs := int(d.u16())
	attrs := make([]schema.Attribute, 0, nAttrs)
	for i := 0; i < nAttrs && d.err == nil; i++ {
		t := schema.Type(d.u8())
		name := string(d.bytes(int(d.u16())))
		attrs = append(attrs, schema.Attribute{Name: name, Type: t})
	}
	if d.err != nil {
		return nil, d.err
	}
	s, err := schema.New(attrs...)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot schema: %w", err)
	}
	cfg.Schema = s

	nBrokers := int(d.u16())
	if cfg.Topology == nil || cfg.Topology.Len() != nBrokers {
		return nil, fmt.Errorf("core: snapshot has %d brokers; topology disagrees", nBrokers)
	}
	net, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nBrokers && d.err == nil; i++ {
		nSubs := int(d.u32())
		for j := 0; j < nSubs && d.err == nil; j++ {
			local := subid.LocalID(d.u32())
			if d.err != nil {
				break
			}
			sub, n, err := schema.DecodeSubscription(s, d.buf[d.off:])
			if err != nil {
				net.Close()
				return nil, fmt.Errorf("core: broker %d subscription %d: %w", i, j, err)
			}
			d.off += n
			id := subid.ID{Broker: subid.BrokerID(i), Local: local}
			if err := net.brokers[i].Restore(local, sub, deliver(id, sub)); err != nil {
				net.Close()
				return nil, err
			}
		}
	}
	if d.err != nil {
		net.Close()
		return nil, d.err
	}
	if d.off != len(data) {
		net.Close()
		return nil, fmt.Errorf("core: %d trailing snapshot bytes", len(data)-d.off)
	}
	return net, nil
}

// snapDecoder is a bounds-checked cursor (mirrors summary's decoder).
type snapDecoder struct {
	buf []byte
	off int
	err error
}

func (d *snapDecoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("core: snapshot truncated at offset %d", d.off)
		return nil
	}
	out := d.buf[d.off : d.off+n]
	d.off += n
	return out
}

func (d *snapDecoder) u8() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *snapDecoder) u16() uint16 {
	b := d.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *snapDecoder) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
