package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// pipelineFixture is a stressFixture over an explicit engine Config, so
// the batched/sharded pipeline can be compared against the legacy
// one-message-per-wakeup path on identical workloads.
type pipelineFixture struct {
	*stressFixture
}

func newPipelineFixture(t *testing.T, g *topology.Graph, shards, batch, nSubs, nEvents int) *pipelineFixture {
	t.Helper()
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := &stressFixture{schema: gen.Schema()}
	net, err := New(Config{
		Topology: g, Schema: f.schema, Mode: interval.Lossy,
		MatchShards: shards, EventBatch: batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	f.net = net
	for i := 0; i < nSubs; i++ {
		sub := gen.Subscription()
		c := &collector{}
		if _, err := f.net.Subscribe(topology.NodeID(i%f.net.Len()), sub, c.deliver(f.schema)); err != nil {
			t.Fatal(err)
		}
		f.rawSubs = append(f.rawSubs, sub)
		f.collectors = append(f.collectors, c)
	}
	f.events = make([]*schema.Event, nEvents)
	for i := range f.events {
		f.events[i] = gen.Event(0.9)
	}
	return &pipelineFixture{f}
}

// TestBatchedPipelineEquivalence proves the batched+sharded pipeline is
// observably identical to the legacy path: on the same workload, every
// configuration delivers exactly the matching events to every consumer,
// with zero loss counters and a clean watchdog.
func TestBatchedPipelineEquivalence(t *testing.T) {
	topos := []struct {
		name string
		g    func() *topology.Graph
	}{
		{"CW24", topology.CW24},
		{"Figure7Tree", topology.Figure7Tree},
	}
	configs := []struct{ shards, batch int }{
		{1, 1}, // legacy reference
		{2, 16},
		{4, 64},
		{8, 8},
	}
	for _, tp := range topos {
		for _, cfg := range configs {
			name := fmt.Sprintf("%s/shards=%d,batch=%d", tp.name, cfg.shards, cfg.batch)
			t.Run(name, func(t *testing.T) {
				g := tp.g()
				f := newPipelineFixture(t, g, cfg.shards, cfg.batch, 3*g.Len(), 200)
				if _, err := f.net.Propagate(); err != nil {
					t.Fatal(err)
				}
				for i, ev := range f.events {
					if err := f.net.Publish(topology.NodeID(i%f.net.Len()), ev); err != nil {
						t.Fatal(err)
					}
				}
				f.net.Flush()
				f.assertExactDeliveries(t)
				st := f.net.Stats()
				if st.TotalDropped() != 0 || st.TotalErrors() != 0 {
					t.Fatalf("loss counters non-zero: %+v", st.Counters().Snapshot())
				}
				if vs := f.net.CheckInvariants(); len(vs) != 0 {
					t.Fatalf("watchdog violations: %v", vs)
				}
			})
		}
	}
}

// TestBatchedPipelineRaceSoak is the ISSUE's -race soak: concurrent
// publishers × subscription churn × propagation periods on the batched,
// sharded pipeline, then exact delivery for the stable subscriptions and
// zero watchdog flow-conservation violations.
func TestBatchedPipelineRaceSoak(t *testing.T) {
	const publishers, perPublisher, propagateRounds = 4, 40, 3
	f := newPipelineFixture(t, topology.CW24(), 4, 16, 72, publishers*perPublisher)

	// Churn subscriptions are generated up front (the generator's rng is
	// single-threaded) and live only inside the churn goroutine; they are
	// subscribed with a throwaway collector and removed again, so they
	// never affect the stable fixture's exact-delivery assertion.
	gen, err := workload.NewGenerator(workload.Config{
		NumAttrs: 10, ArithFraction: 0.4, AttrsPerSub: 5, AttrsPerEvent: 5,
		Subsumption: 0.5, NumRanges: 2, NumPatterns: 2, StringLen: 10, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	churn := gen.Subscriptions(32)

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				idx := p*perPublisher + i
				if err := f.net.Publish(topology.NodeID(idx%f.net.Len()), f.events[idx]); err != nil {
					t.Errorf("publish %d: %v", idx, err)
					return
				}
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var junk collector
		for i, sub := range churn {
			id, err := f.net.Subscribe(topology.NodeID(i%f.net.Len()), sub, junk.deliver(f.schema))
			if err != nil {
				t.Errorf("churn subscribe %d: %v", i, err)
				return
			}
			if err := f.net.Unsubscribe(id); err != nil {
				t.Errorf("churn unsubscribe %d: %v", i, err)
				return
			}
		}
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < propagateRounds; r++ {
				if _, err := f.net.Propagate(); err != nil {
					t.Errorf("propagate: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	f.net.Flush()

	f.assertExactDeliveries(t)
	st := f.net.Stats()
	if st.TotalDropped() != 0 || st.TotalErrors() != 0 {
		t.Fatalf("loss counters non-zero on clean run: %+v", st.Counters().Snapshot())
	}
	if vs := f.net.CheckInvariants(); len(vs) != 0 {
		t.Fatalf("watchdog violations after soak: %v", vs)
	}
}
