package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWriteChromeTraceGolden pins the Chrome trace-event export
// byte-for-byte: a hand-built three-hop trace with fixed timestamps is
// rendered and compared against testdata/chrometrace.golden.json (run
// with -update to regenerate). The golden document is the contract the
// /trace?format=chrome endpoint serves — the Trace Event Format subset
// Perfetto and chrome://tracing load: a traceEvents array of "X"
// (complete) slices with µs ts/dur on pid/tid tracks plus "M"
// thread-name metadata, and displayTimeUnit.
func TestWriteChromeTraceGolden(t *testing.T) {
	const base = int64(1_700_000_000_000_000_000)
	net := &Network{}
	tr := &Trace{
		ID:             1,
		Origin:         0,
		Event:          "symbol=OTE price=9",
		StartUnixNanos: base,
		Path:           []int{0, 2, 5},
		CumBytes:       96,
		Hops: []TraceHop{
			{Broker: 0, Decision: DecisionForwarded, UnixNanos: base + 120_000, Matched: 1, Bytes: 48},
			{Broker: 2, Decision: DecisionForwarded, UnixNanos: base + 250_000, Matched: 1, Bytes: 48},
			{Broker: 5, Decision: DecisionDelivered, UnixNanos: base + 400_000, Matched: 1},
		},
	}
	// A second trace covering the remaining decisions, plus one recorded
	// before timestamping existed — the export must skip it.
	tr2 := &Trace{
		ID:             2,
		Origin:         5,
		Event:          "symbol=XYZ price=1",
		StartUnixNanos: base + 500_000,
		Path:           []int{5},
		Hops: []TraceHop{
			{Broker: 5, Decision: DecisionFalsePositive, UnixNanos: base + 530_000},
			{Broker: 5, Decision: DecisionSuppressed, UnixNanos: base + 540_000},
		},
	}
	legacy := &Trace{ID: 3, Origin: 1, Event: "untimed"}
	net.tracer.traces = map[uint64]*Trace{1: tr, 2: tr2, 3: legacy}
	net.tracer.order = []uint64{1, 2, 3}

	var buf bytes.Buffer
	if err := net.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrometrace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden:\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}

	// Independently of the byte comparison, assert the Perfetto-loadable
	// schema subset so a -update run can't silently bless a malformed
	// document.
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TsUs  *float64       `json:"ts"`
			DurUs float64        `json:"dur"`
			PID   *int           `json:"pid"`
			TID   *int           `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("golden document is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var slices, meta int
	for _, e := range doc.TraceEvents {
		if e.PID == nil || e.TID == nil || e.TsUs == nil {
			t.Fatalf("event missing pid/tid/ts: %+v", e)
		}
		switch e.Phase {
		case "X":
			slices++
			if *e.TsUs < 0 || e.DurUs < 0 {
				t.Errorf("negative ts/dur: %+v", e)
			}
			if e.Name == "" {
				t.Errorf("slice without a name: %+v", e)
			}
		case "M":
			meta++
			if e.Name != "thread_name" || e.Args["name"] == "" {
				t.Errorf("malformed metadata event: %+v", e)
			}
		default:
			t.Errorf("phase %q outside the supported subset", e.Phase)
		}
	}
	if slices != 5 {
		t.Errorf("%d slices, want 5 (3-hop trace + 2-hop trace; untimed skipped)", slices)
	}
	if meta != 3 {
		t.Errorf("%d thread-name records, want 3 (brokers 0, 2, 5)", meta)
	}
}
