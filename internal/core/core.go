// Package core is the live engine of the subscription-summarization
// system: a network of broker nodes (goroutine actors over an in-process
// message bus) that implements the paper end to end — per-broker summaries
// (Section 3), multi-broker summary propagation (Algorithm 2, run
// periodically over real messages), and distributed event processing
// (Algorithm 3) with exact re-matching and consumer delivery at owning
// brokers.
//
// The deterministic experiment harness lives in the propagation, routing,
// siena, and broadcast packages; this engine demonstrates the same
// algorithms running asynchronously with real wire-format payloads and
// per-kind byte accounting.
//
// Concurrency model: each broker's handler goroutine owns that broker's
// message processing; Propagate owns the period state and publishes it to
// handlers through an atomic pointer; every message that cannot be
// processed (undecodable payload, rejected merge) is counted on the bus
// rather than silently discarded.
package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/subsum/subsum/internal/broker"
	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/netsim"
	"github.com/subsum/subsum/internal/routing"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
)

// Config parametrizes a Network.
type Config struct {
	Topology *topology.Graph
	Schema   *schema.Schema
	// Mode selects AACS equality handling (interval.Lossy = the paper).
	Mode interval.Mode
	// Strategy selects the Algorithm 3 forwarding choice. The live engine
	// supports HighestDegree (the paper) and VirtualDegree (load
	// balancing); RandomUnvisited is only available in the deterministic
	// router.
	Strategy routing.Strategy
	// VirtualDegreeCap caps advertised degrees under VirtualDegree.
	VirtualDegreeCap int
	// MaxSubscriptionsPerBroker bounds c2 (0 = unbounded).
	MaxSubscriptionsPerBroker int
	// FilterSubsumedDeltas enables the Section 6 summarization+subsumption
	// combination at every broker: locally subsumed subscriptions stay out
	// of propagation deltas (pure bandwidth saving; delivery is unchanged).
	FilterSubsumedDeltas bool
	// FullSyncEvery makes every k-th Propagate period ship the full merged
	// summary (with the full Merged_Brokers set) instead of the per-period
	// delta, so peers that lost summary messages in earlier periods recover
	// the missing coverage. 0 disables full syncs; 1 makes every period a
	// full sync (the pre-delta behavior).
	FullSyncEvery int
	// Metrics receives the network's runtime instruments (engine counters,
	// per-broker families, bus accounting). When nil, New creates a private
	// registry — the engine is always instrumented; Metrics only controls
	// where the numbers land. Retrieve it with Network.Metrics.
	Metrics *metrics.Registry
	// Flight, when non-nil, journals structured engine events (subscription
	// churn, propagation periods, merge outcomes, drops, decode errors,
	// watchdog violations) into a bounded flight recorder. Nil costs one
	// branch on the affected paths. Retrieve it with Network.Flight.
	Flight *flight.Recorder
	// MatchShards partitions every broker's published match snapshot into
	// this many id-range shards, so a batch of events fans out across
	// cores during matching. ≤1 = unsharded. Match results are identical
	// at any shard count (the determinism rule).
	MatchShards int
	// EventBatch bounds how many pending messages each broker's handler
	// drains from its mailbox per wakeup. >1 enables the batched event
	// pipeline: decode/metrics amortized per batch, one batched match
	// against the published snapshot, and deliver-sends to the same owner
	// coalesced into one multicast payload. ≤1 (the default) preserves
	// one-message-per-wakeup handling with exactly one deliver message
	// per matched owner per event.
	EventBatch int
}

// Network is a running broker network. Create with New, stop with Close.
type Network struct {
	cfg     Config
	brokers []*broker.Broker
	bus     *netsim.Bus
	order   []topology.NodeID // forwarding preference, by effective degree

	// periodMu serializes Propagate calls; period is the working set of the
	// propagation period currently in flight (nil between periods). It is
	// an atomic pointer because broker handler goroutines read it while the
	// Propagate goroutine installs and clears it — a plain field here is a
	// data race with late summary messages around period boundaries.
	periodMu sync.Mutex
	period   atomic.Pointer[periodState]
	// periods counts completed Propagate calls (under periodMu), driving
	// the FullSyncEvery schedule. periodCount mirrors it atomically so the
	// convergence report and staleness gauges can read the current period
	// without contending for the period lock.
	periods     int
	periodCount atomic.Int64
	// churnSeq counts Subscribe/Unsubscribe calls; the watchdog's
	// convergence check uses it to prove the subscription set was stable
	// across a full-sync period before asserting exact remote counts.
	churnSeq atomic.Int64
	// lastPeriodFullSync and churnAtPeriodStart (under periodMu) describe
	// the most recently completed period for the convergence check.
	lastPeriodFullSync bool
	churnAtPeriodStart int64

	metrics *metrics.Registry
	obs     netObs
	conv    []convObs            // per-broker convergence gauges
	attrib  *broker.FPAttributor // shared false-positive attribution sink
	tracer  tracer
	rec     *flight.Recorder // nil unless Config.Flight was set

	// scratch holds each broker's batch-pipeline working set (non-nil only
	// with EventBatch > 1). scratch[i] is owned by broker i's handler
	// goroutine — no locking.
	scratch []*batchScratch

	watchdog *Watchdog // nil until StartWatchdog
}

// batchScratch is one broker handler's reusable batch working set: the
// decoded events of the current run with their per-event masks, plus the
// per-owner coalescing lists (owners[o] = indexes of events to deliver to
// owner o; touched = owners with a nonempty list this run).
type batchScratch struct {
	events  []*schema.Event
	broclis []subid.Mask
	delivs  []subid.Mask
	owners  [][]int32
	touched []int32
}

func newBatchScratch(n int) *batchScratch {
	return &batchScratch{owners: make([][]int32, n)}
}

// netObs holds the engine-level instruments, resolved once in New.
type netObs struct {
	eventsPublished    *metrics.Counter   // Publish calls accepted
	eventsRouted       *metrics.Counter   // Algorithm 3 hops processed
	eventsForwarded    *metrics.Counter   // events sent on to the next broker
	eventsSuppressed   *metrics.Counter   // walks ended by a complete BROCLI
	deliverSends       *metrics.Counter   // remote owner deliveries sent
	propagationPeriods *metrics.Counter   // completed Algorithm 2 periods
	propagationHops    *metrics.Counter   // summary messages sent
	propagationBytes   *metrics.Counter   // cumulative summary payload bytes
	periodBytes        *metrics.Histogram // summary payload bytes per period
	periodSeconds      *metrics.Histogram // wall time per period
}

func newNetObs(r *metrics.Registry) netObs {
	return netObs{
		eventsPublished:    r.Counter("events_published"),
		eventsRouted:       r.Counter("events_routed"),
		eventsForwarded:    r.Counter("events_forwarded"),
		eventsSuppressed:   r.Counter("events_suppressed"),
		deliverSends:       r.Counter("deliver_sends"),
		propagationPeriods: r.Counter("propagation_periods"),
		propagationHops:    r.Counter("propagation_hops"),
		propagationBytes:   r.Counter("propagation_bytes"),
		periodBytes:        r.Histogram("propagation_period_bytes", metrics.DefSizeBuckets),
		periodSeconds:      r.Histogram("propagation_period_seconds", metrics.DefLatencyBuckets),
	}
}

// periodState is the per-propagation-period working set of Algorithm 2.
// Handler goroutines fold received summaries into it concurrently with the
// Propagate goroutine reading it between iterations, so sums/sets are
// guarded by mu.
type periodState struct {
	mu   sync.Mutex
	sums []*summary.Summary // per broker: delta ⊕ summaries received this period
	sets []subid.Mask       // per broker: this period's Merged_Brokers
}

// New builds the network and starts one handler goroutine per broker.
func New(cfg Config) (*Network, error) {
	if cfg.Topology == nil || cfg.Schema == nil {
		return nil, fmt.Errorf("core: topology and schema are required")
	}
	if cfg.Strategy == routing.RandomUnvisited {
		return nil, fmt.Errorf("core: RandomUnvisited is not supported by the live engine")
	}
	n := cfg.Topology.Len()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	net := &Network{
		cfg:     cfg,
		brokers: make([]*broker.Broker, n),
		bus:     netsim.NewBus(n),
		metrics: reg,
		rec:     cfg.Flight,
	}
	net.obs = newNetObs(reg)
	net.conv = newConvObs(reg, n)
	net.attrib = broker.NewFPAttributor(cfg.Schema, reg, cfg.Flight, 0)
	net.tracer.depth = reg.Gauge("trace_store_depth")
	net.tracer.initLatency(reg, n)
	net.bus.Instrument(reg)
	net.bus.SetFlight(cfg.Flight)
	for i := 0; i < n; i++ {
		b, err := broker.New(broker.Config{
			ID:                   topology.NodeID(i),
			Schema:               cfg.Schema,
			Mode:                 cfg.Mode,
			NumBrokers:           n,
			MaxSubscriptions:     cfg.MaxSubscriptionsPerBroker,
			FilterSubsumedDeltas: cfg.FilterSubsumedDeltas,
			Metrics:              reg,
			Flight:               cfg.Flight,
			MatchShards:          cfg.MatchShards,
			Attribution:          net.attrib,
		})
		if err != nil {
			return nil, err
		}
		net.brokers[i] = b
	}
	net.order = net.effectiveOrder()
	batch := cfg.EventBatch
	if batch < 1 {
		batch = 1
	}
	if batch > 1 {
		net.scratch = make([]*batchScratch, n)
		for i := range net.scratch {
			net.scratch[i] = newBatchScratch(n)
		}
	}
	for i := 0; i < n; i++ {
		node := topology.NodeID(i)
		if batch > 1 {
			net.bus.StartBatch(node, batch, func(ms []netsim.Message) { net.handleBatch(node, ms) })
		} else {
			net.bus.Start(node, func(m netsim.Message) { net.handle(node, m) })
		}
	}
	return net, nil
}

// effectiveOrder ranks brokers by the degree the strategy advertises
// (VirtualDegree caps maximum-degree nodes): effective degree descending,
// id ascending as the tie-break.
func (net *Network) effectiveOrder() []topology.NodeID {
	g := net.cfg.Topology
	n := g.Len()
	maxDeg := g.MaxDegree()
	degCap := net.cfg.VirtualDegreeCap
	if degCap <= 0 {
		degCap = int(g.MeanDegree() + 0.5)
		if degCap < 1 {
			degCap = 1
		}
	}
	eff := make([]int, n)
	for i := 0; i < n; i++ {
		d := g.Degree(topology.NodeID(i))
		if net.cfg.Strategy == routing.VirtualDegree && d == maxDeg && d > degCap {
			d = degCap
		}
		eff[i] = d
	}
	order := make([]topology.NodeID, n)
	for i := range order {
		order[i] = topology.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if eff[a] != eff[b] {
			return eff[a] > eff[b]
		}
		return a < b
	})
	return order
}

// Close shuts down the network; pending messages are dropped. A running
// watchdog is stopped first so it never checks a closed bus.
func (net *Network) Close() {
	if net.watchdog != nil {
		net.watchdog.Stop()
	}
	net.bus.Close()
}

// Flight returns the network's flight recorder (nil when Config.Flight
// was not set).
func (net *Network) Flight() *flight.Recorder { return net.rec }

// Subscribe registers a consumer subscription at the given broker.
func (net *Network) Subscribe(at topology.NodeID, sub *schema.Subscription, deliver broker.DeliveryFunc) (subid.ID, error) {
	if int(at) < 0 || int(at) >= len(net.brokers) {
		return subid.ID{}, fmt.Errorf("core: broker %d out of range", at)
	}
	id, err := net.brokers[at].Subscribe(sub, deliver)
	if err == nil {
		net.churnSeq.Add(1)
	}
	return id, err
}

// Unsubscribe removes a locally owned subscription. If it had already
// propagated, the next period's delta carries its retraction so remote
// merged summaries shrink.
func (net *Network) Unsubscribe(id subid.ID) error {
	b := int(id.Broker)
	if b < 0 || b >= len(net.brokers) {
		return fmt.Errorf("core: broker %d out of range", id.Broker)
	}
	err := net.brokers[b].Unsubscribe(id)
	if err == nil {
		net.churnSeq.Add(1)
	}
	return err
}

// ExtendSchema appends an attribute to the shared schema at runtime — the
// paper's Section 6 extension ("this only requires changing the c3 field
// of subscription ids"). All brokers share the schema object, so the new
// attribute is immediately usable in subscriptions and events; existing
// subscription ids keep their c3 masks (the new bit is unset) and keep
// matching exactly as before.
func (net *Network) ExtendSchema(name string, t schema.Type) (schema.AttrID, error) {
	return net.cfg.Schema.Add(name, t)
}

// Schema returns the network's shared schema (the snapshot's schema after
// LoadSnapshot).
func (net *Network) Schema() *schema.Schema { return net.cfg.Schema }

// Broker exposes a broker's state for inspection.
func (net *Network) Broker(id topology.NodeID) *broker.Broker { return net.brokers[id] }

// Len returns the number of brokers.
func (net *Network) Len() int { return len(net.brokers) }

// Stats returns the bus accounting (real bytes on the wire per kind, plus
// per-kind drop/decode-error/handler-error counters).
func (net *Network) Stats() netsim.Stats { return net.bus.Stats() }

// Metrics returns the network's instrument registry: engine counters,
// per-broker instrument families, and bus accounting, all live.
func (net *Network) Metrics() *metrics.Registry { return net.metrics }

// InjectFaults installs a message-drop hook on the bus for fault testing:
// messages for which fn returns true vanish (counted in Stats.Dropped).
// Summary-message loss degrades merged-summary coverage but never
// correctness — Algorithm 3's BROCLI walk examines every broker whose
// subscriptions it has not yet seen, so events still reach every matching
// consumer. Pass nil to heal.
func (net *Network) InjectFaults(fn func(netsim.Message) bool) { net.bus.SetDropFunc(fn) }

// Faults exposes the bus's layered fault plane — partitions, per-kind
// loss rates, broker pause/park — for scripted chaos scenarios. The
// layers compose with the InjectFaults hook and with each other; see
// netsim.Faults.
func (net *Network) Faults() netsim.Faults { return net.bus.Faults() }

// Propagate runs one Algorithm 2 period over the live bus: every broker's
// delta (subscriptions accumulated since the previous period) is merged
// and forwarded degree-by-degree with real summary payloads. It blocks
// until the period completes and returns the number of summary messages
// sent (the hop count of Figure 9). Safe to call concurrently with
// Publish and from multiple goroutines (periods are serialized).
func (net *Network) Propagate() (hops int, err error) {
	net.periodMu.Lock()
	defer net.periodMu.Unlock()
	start := time.Now()
	var periodBytes int64
	defer func() {
		net.obs.propagationPeriods.Inc()
		net.obs.propagationHops.Add(int64(hops))
		net.obs.propagationBytes.Add(periodBytes)
		net.obs.periodBytes.Observe(float64(periodBytes))
		net.obs.periodSeconds.Observe(time.Since(start).Seconds())
		net.rec.Record(flight.EvPeriodEnd, -1, int64(net.periods), int64(hops), periodBytes, "")
	}()
	g := net.cfg.Topology
	n := len(net.brokers)
	net.periods++
	net.periodCount.Store(int64(net.periods))
	fullSync := net.cfg.FullSyncEvery > 0 && net.periods%net.cfg.FullSyncEvery == 0
	net.lastPeriodFullSync = false
	net.churnAtPeriodStart = net.churnSeq.Load()
	net.rec.Record(flight.EvPeriodStart, -1, int64(net.periods), 0, 0, "")
	if fullSync {
		net.rec.Record(flight.EvFullSync, -1, int64(net.periods), 0, 0, "")
	}
	period := &periodState{
		sums: make([]*summary.Summary, n),
		sets: make([]subid.Mask, n),
	}
	for i, b := range net.brokers {
		b.ResetPeriod()
		period.sums[i] = b.TakePeriodSummary(fullSync)
		if fullSync {
			// The resync reset Merged_Brokers to the broker itself, so this
			// carries exactly the owner of the payload's subscriptions.
			period.sets[i] = b.MergedBrokers()
		} else {
			period.sets[i] = subid.NewMask(n)
			period.sets[i].Set(i)
		}
	}
	net.period.Store(period)
	defer net.period.Store(nil)

	type send struct {
		from, to topology.NodeID
		sb       *netsim.SharedBuf
	}
	for iter := 1; iter <= g.MaxDegree(); iter++ {
		var sends []send
		for i := 0; i < n; i++ {
			node := topology.NodeID(i)
			if g.Degree(node) != iter {
				continue
			}
			target, ok := net.brokers[i].ChooseTarget(g)
			if !ok {
				continue
			}
			net.brokers[target].RecordCommunicated(node)
			// Encode once into a pooled buffer; the bus shares the bytes
			// with the recipient and recycles them after handling.
			sb := netsim.AcquireBuf()
			period.mu.Lock()
			sb.B, err = encodeSummaryMsg(sb.B, period.sums[i], period.sets[i], uint64(net.periods), fullSync)
			period.mu.Unlock()
			if err != nil {
				sb.Release()
				for _, s := range sends {
					s.sb.Release()
				}
				return hops, fmt.Errorf("core: broker %d summary: %w", node, err)
			}
			sends = append(sends, send{from: node, to: target, sb: sb})
		}
		for _, s := range sends {
			payloadLen := int64(len(s.sb.B))
			err := net.bus.SendShared(netsim.Message{
				From: s.from, To: s.to, Kind: netsim.KindSummary,
			}, s.sb)
			s.sb.Release()
			if err != nil {
				return hops, err
			}
			hops++
			periodBytes += payloadLen
		}
		// Deliveries land before the next iteration, as in Algorithm 2.
		net.bus.Quiesce()
	}
	if fullSync {
		// Every broker rebuilt from live subscriptions and the bus is
		// drained: ids fenced before the sync are now clean network-wide.
		for _, b := range net.brokers {
			b.FinishFullSync()
		}
	}
	net.lastPeriodFullSync = fullSync
	net.refreshConvergenceGauges()
	return hops, nil
}

// Publish injects an event at the given broker and returns immediately;
// Algorithm 3 runs asynchronously. Call Flush to wait for all deliveries.
// When trace sampling is on (SetTraceSampling), every Nth publish carries
// a trace context recording its hop-by-hop walk; with sampling off the
// only cost here is one atomic load.
func (net *Network) Publish(at topology.NodeID, ev *schema.Event) error {
	if int(at) < 0 || int(at) >= len(net.brokers) {
		return fmt.Errorf("core: broker %d out of range", at)
	}
	traceID := net.tracer.sample()
	if traceID != 0 {
		net.tracer.begin(traceID, at, ev.Format(net.cfg.Schema))
	}
	n := len(net.brokers)
	sb := netsim.AcquireBuf()
	var err error
	sb.B, err = encodeEventMsg(sb.B, ev, subid.NewMask(n), subid.NewMask(n), traceID)
	if err != nil {
		sb.Release()
		return fmt.Errorf("core: encode event: %w", err)
	}
	sendErr := net.bus.SendShared(netsim.Message{From: at, To: at, Kind: netsim.KindEvent}, sb)
	sb.Release()
	if sendErr == nil {
		net.obs.eventsPublished.Inc()
	}
	return sendErr
}

// Flush blocks until every in-flight message (propagation, routing,
// deliveries) has been processed.
func (net *Network) Flush() { net.bus.Quiesce() }

// handle dispatches one message on broker `node`'s goroutine. Messages
// that cannot be processed are counted on the bus, never silently dropped.
func (net *Network) handle(node topology.NodeID, m netsim.Message) {
	switch m.Kind {
	case netsim.KindSummary:
		net.handleSummary(node, m)
	case netsim.KindEvent:
		net.handleEvent(node, m)
	case netsim.KindDeliver:
		// A deliver payload carries one event — or several, when the sender
		// coalesced a batch for this owner. Traced delivers are always
		// single-event (coalescing is bypassed for sampled events).
		evs, traceID, err := decodeDeliverAll(net.cfg.Schema, m.Payload, nil)
		if err != nil || len(evs) == 0 {
			net.bus.RecordDecodeErrorAt(netsim.KindDeliver, node)
			return
		}
		hits := 0
		for _, ev := range evs {
			hits += net.brokers[node].DeliverExact(ev)
		}
		if traceID != 0 {
			net.tracer.addBytes(traceID, len(m.Payload))
			decision := DecisionDelivered
			if hits == 0 {
				decision = DecisionFalsePositive
			}
			net.tracer.hop(traceID, node, decision, hits, len(m.Payload))
		}
	}
}

// handleBatch processes one mailbox drain on broker `node`'s goroutine:
// consecutive runs of event messages route as one batch; summary and
// deliver messages are handled singly, in arrival order, so batching
// never reorders events relative to summary merges.
func (net *Network) handleBatch(node topology.NodeID, msgs []netsim.Message) {
	for i := 0; i < len(msgs); {
		if msgs[i].Kind != netsim.KindEvent {
			net.handle(node, msgs[i])
			i++
			continue
		}
		j := i + 1
		for j < len(msgs) && msgs[j].Kind == netsim.KindEvent {
			j++
		}
		net.handleEventRun(node, msgs[i:j])
		i = j
	}
}

func (net *Network) handleSummary(node topology.NodeID, m netsim.Message) {
	// The payload is an epoch header, a Merged_Brokers mask, then a
	// wire-form summary; mask and summary fold in directly, so no
	// intermediate Summary is materialized and nothing of m.Payload (a
	// pooled shared buffer) is retained.
	h, n0, err := decodeSummaryHeader(m.Payload)
	if err != nil {
		net.bus.RecordDecodeErrorAt(netsim.KindSummary, node)
		return
	}
	set, off, err := decodeMask(m.Payload[n0:])
	if err != nil {
		net.bus.RecordDecodeErrorAt(netsim.KindSummary, node)
		return
	}
	sumWire := m.Payload[n0+off:]
	b := net.brokers[node]
	if err := b.MergeEncodedSummaryEpoch(sumWire, set, broker.EpochInfo{
		Epoch:    int64(h.Epoch),
		FullSync: h.FullSync,
		Retract:  h.Retract,
	}); err != nil {
		// A malformed summary payload leaves at most a partial merge — the
		// documented dropped-message equivalence — and counts as a decode
		// error: the bytes, not the broker, were at fault.
		net.bus.RecordDecodeErrorAt(netsim.KindSummary, node)
		return
	}
	// Fold into the current period's working set so later iterations
	// forward it. Summary messages only exist while Propagate holds
	// periodMu, but the pointer load must still be atomic: a message
	// surviving past its period (bus backlog at Close, a dropped-then-
	// replayed payload) would otherwise race with the period teardown.
	// MergeEncoded cannot fail here: the same bytes just merged cleanly.
	if p := net.period.Load(); p != nil {
		p.mu.Lock()
		_ = p.sums[node].MergeEncoded(sumWire)
		for _, i := range set.Bits() {
			p.sets[node].Set(i)
		}
		p.mu.Unlock()
	}
}

func (net *Network) handleEvent(node topology.NodeID, m netsim.Message) {
	ev, brocli, delivered, traceID, err := decodeEventMsg(net.cfg.Schema, m.Payload)
	if err != nil {
		net.bus.RecordDecodeErrorAt(netsim.KindEvent, node)
		return
	}
	net.obs.eventsRouted.Inc()
	if traceID != 0 {
		net.tracer.visit(traceID, node, len(m.Payload))
	}
	net.routeEvent(node, ev, brocli, delivered, traceID)
}

// routeEvent runs one Algorithm 3 hop for a single decoded event. The
// read side is lock-free: matching runs against the broker's published
// snapshot and the Merged_Brokers set is the snapshot's own (no lock, no
// clone).
func (net *Network) routeEvent(node topology.NodeID, ev *schema.Event, brocli, delivered subid.Mask, traceID uint64) {
	b := net.brokers[node]
	n := len(net.brokers)
	// Step 1: match the local merged summary.
	matched := b.MatchMerged(ev)
	// Step 2: update BROCLIe.
	orMask(&brocli, b.MergedBrokersShared())
	// Step 3: send the event to newly matched owners. The wire payload is
	// identical for every owner, so encode it once into a pooled shared
	// buffer and multicast it — the bus refcounts the bytes per recipient.
	var deliverBuf *netsim.SharedBuf
	for _, id := range matched {
		owner := topology.NodeID(id.Broker)
		if delivered.Has(int(owner)) {
			continue
		}
		delivered.Set(int(owner))
		if owner == node {
			hits := b.DeliverExact(ev)
			if traceID != 0 {
				decision := DecisionDelivered
				if hits == 0 {
					decision = DecisionFalsePositive
				}
				net.tracer.hop(traceID, node, decision, len(matched), 0)
			}
			continue
		}
		if deliverBuf == nil {
			deliverBuf = netsim.AcquireBuf()
			deliverBuf.B = encodeDeliverMsg(deliverBuf.B, ev, traceID)
		}
		if net.bus.SendShared(netsim.Message{From: node, To: owner, Kind: netsim.KindDeliver}, deliverBuf) == nil {
			net.obs.deliverSends.Inc()
		}
	}
	if deliverBuf != nil {
		deliverBuf.Release()
	}
	// Step 4: forward while BROCLIe is incomplete. Every routed event ends
	// in exactly one terminal counter — forwarded, suppressed, or handler
	// error — which is the flow-conservation invariant the watchdog checks.
	if brocli.Count() == n {
		net.obs.eventsSuppressed.Inc()
		if traceID != 0 {
			net.tracer.hop(traceID, node, DecisionSuppressed, len(matched), 0)
		}
		return
	}
	net.forwardEvent(node, ev, brocli, delivered, traceID, len(matched))
}

// forwardEvent sends the event to the first unvisited broker in
// forwarding-preference order, ending the hop in exactly one terminal
// counter (forwarded or handler error).
func (net *Network) forwardEvent(node topology.NodeID, ev *schema.Event, brocli, delivered subid.Mask, traceID uint64, matchedLen int) {
	for _, next := range net.order {
		if brocli.Has(int(next)) {
			continue
		}
		sb := netsim.AcquireBuf()
		var err error
		sb.B, err = encodeEventMsg(sb.B, ev, brocli, delivered, traceID)
		if err != nil {
			sb.Release()
			net.bus.RecordHandlerError(netsim.KindEvent)
			return
		}
		payloadLen := len(sb.B)
		if net.bus.SendShared(netsim.Message{From: node, To: next, Kind: netsim.KindEvent}, sb) == nil {
			net.obs.eventsForwarded.Inc()
			if traceID != 0 {
				net.tracer.hop(traceID, node, DecisionForwarded, matchedLen, payloadLen)
			}
		} else {
			// A failed forward send (bus closing) still terminates this
			// event's walk; count it so flow conservation holds.
			net.bus.RecordHandlerError(netsim.KindEvent)
		}
		sb.Release()
		return
	}
}

// handleEventRun routes one consecutive run of event messages as a
// batch: decode all, match all against one leased snapshot matcher (the
// shards fanning across cores when configured), deliver locally from the
// shared candidate keys, coalesce remote deliver-sends per owner into one
// multicast payload, then suppress/forward each event. Traced events
// divert to the unbatched path so their per-hop records stay exact.
func (net *Network) handleEventRun(node topology.NodeID, msgs []netsim.Message) {
	sc := net.scratch[node]
	sc.events = sc.events[:0]
	sc.broclis = sc.broclis[:0]
	sc.delivs = sc.delivs[:0]
	for _, m := range msgs {
		ev, brocli, delivered, traceID, err := decodeEventMsg(net.cfg.Schema, m.Payload)
		if err != nil {
			net.bus.RecordDecodeErrorAt(netsim.KindEvent, node)
			continue
		}
		if traceID != 0 {
			net.obs.eventsRouted.Inc()
			net.tracer.visit(traceID, node, len(m.Payload))
			net.routeEvent(node, ev, brocli, delivered, traceID)
			continue
		}
		sc.events = append(sc.events, ev)
		sc.broclis = append(sc.broclis, brocli)
		sc.delivs = append(sc.delivs, delivered)
	}
	k := len(sc.events)
	if k == 0 {
		return
	}
	// Count the whole batch as routed before any terminal counter is
	// touched, so terminals ≤ routed holds at every instant (the watchdog
	// reads terminals first, routed last).
	net.obs.eventsRouted.Add(int64(k))
	b := net.brokers[node]
	n := len(net.brokers)
	lease := b.AcquireMatcher()
	start := time.Now()
	res := lease.MatchBatch(sc.events)
	// One amortized latency observation per batch: the mean per event.
	b.MatchSeconds(time.Since(start).Seconds() / float64(k))
	shared := lease.MergedBrokers()
	for i, ev := range sc.events {
		orMask(&sc.broclis[i], shared)
		for _, key := range res[i] {
			owner, _ := subid.KeyParts(key)
			if sc.delivs[i].Has(int(owner)) {
				continue
			}
			sc.delivs[i].Set(int(owner))
			if topology.NodeID(owner) == node {
				// Local owner: the batch's candidate keys already pruned the
				// exact match, no second summary pass.
				b.DeliverExactCandidates(ev, res[i])
				continue
			}
			if len(sc.owners[owner]) == 0 {
				sc.touched = append(sc.touched, int32(owner))
			}
			sc.owners[owner] = append(sc.owners[owner], int32(i))
		}
	}
	lease.Release()
	// Coalesced fan-out: one multicast payload per owner for the whole
	// batch, holding every event that newly matched that owner.
	for _, ow := range sc.touched {
		idxs := sc.owners[ow]
		sb := netsim.AcquireBuf()
		sb.B = appendMsgHeader(sb.B, 0)
		for _, ei := range idxs {
			sb.B = schema.EncodeEvent(sb.B, sc.events[ei])
		}
		if net.bus.SendShared(netsim.Message{From: node, To: topology.NodeID(ow), Kind: netsim.KindDeliver}, sb) == nil {
			net.obs.deliverSends.Add(int64(len(idxs)))
		}
		sb.Release()
		sc.owners[ow] = sc.owners[ow][:0]
	}
	sc.touched = sc.touched[:0]
	// Terminals: every batched event ends suppressed or forwarded (or as a
	// handler error inside forwardEvent).
	for i, ev := range sc.events {
		if sc.broclis[i].Count() == n {
			net.obs.eventsSuppressed.Inc()
			continue
		}
		net.forwardEvent(node, ev, sc.broclis[i], sc.delivs[i], 0, 0)
	}
}

// orMask folds src's bits into *dst, growing dst as needed.
func orMask(dst *subid.Mask, src subid.Mask) {
	for len(*dst) < len(src) {
		*dst = append(*dst, 0)
	}
	d := *dst
	for i, w := range src {
		d[i] |= w
	}
}

// maxMaskWords bounds an encoded mask: the word count travels as a u16.
// At 64 brokers per word that is room for 4 194 240 brokers.
const maxMaskWords = 1<<16 - 1

// encodeMask writes a mask as word count (u16, little-endian) + words. It
// fails rather than truncates when the mask exceeds the u16 word count.
func encodeMask(buf []byte, m subid.Mask) ([]byte, error) {
	if len(m) > maxMaskWords {
		return nil, fmt.Errorf("core: mask of %d words exceeds wire limit %d", len(m), maxMaskWords)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m)))
	for _, w := range m {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf, nil
}

func decodeMask(buf []byte) (subid.Mask, int, error) {
	if len(buf) < 2 {
		return nil, 0, fmt.Errorf("core: short mask")
	}
	words := int(binary.LittleEndian.Uint16(buf))
	if len(buf) < 2+8*words {
		return nil, 0, fmt.Errorf("core: truncated mask")
	}
	m := make(subid.Mask, words)
	for i := 0; i < words; i++ {
		m[i] = binary.LittleEndian.Uint64(buf[2+8*i:])
	}
	return m, 2 + 8*words, nil
}

// Summary-payload flags (the first byte of every summary message). The
// epoch header exists so receivers can maintain per-peer convergence
// vectors: every payload names the sender's period sequence number, and
// the flags say whether it was a full sync and whether it carried
// retractions — the two signals the staleness gauges distinguish.
const (
	sumFlagFullSync = 0x01 // payload is a full-sync merged summary
	sumFlagRetract  = 0x02 // payload carries a retraction section
	sumFlagKnown    = sumFlagFullSync | sumFlagRetract
)

// summaryEpochHeader is the decoded convergence stamp of one summary
// payload: the sender's monotone period number plus the payload-class
// flags. Epoch 0 never occurs on the wire (periods start at 1), so it
// doubles as "untracked" in tests that hand-craft payloads.
type summaryEpochHeader struct {
	Epoch    uint64
	FullSync bool
	Retract  bool
}

// appendSummaryHeader writes the flags byte and epoch uvarint.
func appendSummaryHeader(buf []byte, h summaryEpochHeader) []byte {
	var flags byte
	if h.FullSync {
		flags |= sumFlagFullSync
	}
	if h.Retract {
		flags |= sumFlagRetract
	}
	buf = append(buf, flags)
	return binary.AppendUvarint(buf, h.Epoch)
}

// decodeSummaryHeader reads the flags byte and epoch uvarint, returning
// the consumed length. Unknown flag bits are a decode error, same as the
// event-message header: old payloads must fail loudly, not merge wrongly.
func decodeSummaryHeader(buf []byte) (h summaryEpochHeader, n int, err error) {
	if len(buf) < 1 {
		return h, 0, fmt.Errorf("core: short summary header")
	}
	flags := buf[0]
	if flags&^byte(sumFlagKnown) != 0 {
		return h, 0, fmt.Errorf("core: unknown summary flags %#x", flags)
	}
	h.FullSync = flags&sumFlagFullSync != 0
	h.Retract = flags&sumFlagRetract != 0
	epoch, used := binary.Uvarint(buf[1:])
	if used <= 0 {
		return h, 0, fmt.Errorf("core: truncated summary epoch")
	}
	h.Epoch = epoch
	return h, 1 + used, nil
}

// encodeSummaryMsg appends a summary payload to buf (pass a pooled
// buffer's contents to avoid the allocation): the epoch header, the
// Merged_Brokers set, then the packed summary.
func encodeSummaryMsg(buf []byte, sum *summary.Summary, set subid.Mask, epoch uint64, fullSync bool) ([]byte, error) {
	buf = appendSummaryHeader(buf, summaryEpochHeader{
		Epoch:    epoch,
		FullSync: fullSync,
		Retract:  sum.NumRetractions() > 0,
	})
	buf, err := encodeMask(buf, set)
	if err != nil {
		return nil, err
	}
	return sum.Encode(buf), nil
}

func decodeSummaryMsg(s *schema.Schema, buf []byte) (*summary.Summary, subid.Mask, summaryEpochHeader, error) {
	h, n0, err := decodeSummaryHeader(buf)
	if err != nil {
		return nil, nil, h, err
	}
	set, n, err := decodeMask(buf[n0:])
	if err != nil {
		return nil, nil, h, err
	}
	sum, err := summary.Decode(s, buf[n0+n:])
	if err != nil {
		return nil, nil, h, err
	}
	return sum, set, h, nil
}

// msgFlagTrace marks an event/deliver payload carrying a trace id (u64,
// little-endian) right after the flags byte. Untraced messages cost one
// flag byte; the trace context itself travels only on sampled events.
const msgFlagTrace = 0x01

// appendMsgHeader writes the flags byte and optional trace id.
func appendMsgHeader(buf []byte, traceID uint64) []byte {
	if traceID == 0 {
		return append(buf, 0)
	}
	buf = append(buf, msgFlagTrace)
	return binary.LittleEndian.AppendUint64(buf, traceID)
}

// decodeMsgHeader reads the flags byte and optional trace id, returning
// the consumed length.
func decodeMsgHeader(buf []byte) (traceID uint64, n int, err error) {
	if len(buf) < 1 {
		return 0, 0, fmt.Errorf("core: short message header")
	}
	flags := buf[0]
	if flags&^msgFlagTrace != 0 {
		return 0, 0, fmt.Errorf("core: unknown message flags %#x", flags)
	}
	n = 1
	if flags&msgFlagTrace != 0 {
		if len(buf) < 9 {
			return 0, 0, fmt.Errorf("core: truncated trace id")
		}
		traceID = binary.LittleEndian.Uint64(buf[1:9])
		n = 9
	}
	return traceID, n, nil
}

// encodeEventMsg appends a packed event with its BROCLI and delivered
// sets to buf, carrying the trace context of sampled events (traceID 0 =
// untraced).
func encodeEventMsg(buf []byte, ev *schema.Event, brocli, delivered subid.Mask, traceID uint64) ([]byte, error) {
	buf = appendMsgHeader(buf, traceID)
	buf, err := encodeMask(buf, brocli)
	if err != nil {
		return nil, err
	}
	buf, err = encodeMask(buf, delivered)
	if err != nil {
		return nil, err
	}
	return schema.EncodeEvent(buf, ev), nil
}

func decodeEventMsg(s *schema.Schema, buf []byte) (*schema.Event, subid.Mask, subid.Mask, uint64, error) {
	traceID, n0, err := decodeMsgHeader(buf)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	buf = buf[n0:]
	brocli, n1, err := decodeMask(buf)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	delivered, n2, err := decodeMask(buf[n1:])
	if err != nil {
		return nil, nil, nil, 0, err
	}
	ev, _, err := schema.DecodeEvent(s, buf[n1+n2:])
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return ev, brocli, delivered, traceID, nil
}

// encodeDeliverMsg appends a packed owner-delivery payload: header plus
// the bare event.
func encodeDeliverMsg(buf []byte, ev *schema.Event, traceID uint64) []byte {
	buf = appendMsgHeader(buf, traceID)
	return schema.EncodeEvent(buf, ev)
}

func decodeDeliverMsg(s *schema.Schema, buf []byte) (*schema.Event, uint64, error) {
	traceID, n, err := decodeMsgHeader(buf)
	if err != nil {
		return nil, 0, err
	}
	ev, _, err := schema.DecodeEvent(s, buf[n:])
	if err != nil {
		return nil, 0, err
	}
	return ev, traceID, nil
}

// decodeDeliverAll decodes every event in a deliver payload, appending to
// evs. Single-event payloads are the common case; batched senders
// coalesce several events for one owner into one payload. A decode error
// anywhere discards the whole payload (the caller records it), matching
// the lost-message semantics of a corrupt single-event payload.
func decodeDeliverAll(s *schema.Schema, buf []byte, evs []*schema.Event) ([]*schema.Event, uint64, error) {
	traceID, n, err := decodeMsgHeader(buf)
	if err != nil {
		return nil, 0, err
	}
	buf = buf[n:]
	for len(buf) > 0 {
		ev, used, err := schema.DecodeEvent(s, buf)
		if err != nil {
			return nil, 0, err
		}
		evs = append(evs, ev)
		buf = buf[used:]
	}
	return evs, traceID, nil
}
