package core

import (
	"sync"
	"testing"

	"fmt"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/netsim"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// TestFilterSubsumedDeltasCorrectness: with the Section 6 combination on,
// a subscription subsumed by an earlier one at the same broker still
// receives every matching event — routed via the subsuming subscription's
// summary entry, delivered by the owner's exact re-match.
func TestFilterSubsumedDeltasCorrectness(t *testing.T) {
	s := schema.MustNew(
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
	)
	net, err := New(Config{
		Topology:             topology.Figure7Tree(),
		Schema:               s,
		Mode:                 interval.Lossy,
		FilterSubsumedDeltas: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	wide, _ := schema.ParseSubscription(s, `price > 5`)
	narrow, _ := schema.ParseSubscription(s, `price > 8 && price < 9`) // subsumed by wide
	var wideC, narrowC collector
	if _, err := net.Subscribe(7, wide, wideC.deliver(s)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Subscribe(7, narrow, narrowC.deliver(s)); err != nil {
		t.Fatal(err)
	}
	st := net.Broker(7).Stats()
	if st.FilteredSubs != 1 {
		t.Fatalf("FilteredSubs = %d, want 1 (narrow kept out of the delta)", st.FilteredSubs)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	ev, _ := schema.ParseEvent(s, `price=8.5`)
	if err := net.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	if wideC.count() != 1 || narrowC.count() != 1 {
		t.Fatalf("deliveries = wide %d / narrow %d, want 1/1", wideC.count(), narrowC.count())
	}
	// A non-matching event for the narrow subscription still only reaches
	// the wide one.
	ev2, _ := schema.ParseEvent(s, `price=20`)
	if err := net.Publish(12, ev2); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	if wideC.count() != 2 || narrowC.count() != 1 {
		t.Fatalf("deliveries = wide %d / narrow %d, want 2/1", wideC.count(), narrowC.count())
	}
}

// TestFilterSubsumedDeltasSavesBandwidth: under an anchored workload the
// filtered network moves fewer summary bytes with identical deliveries.
func TestFilterSubsumedDeltasSavesBandwidth(t *testing.T) {
	gen := func() *workload.Generator {
		g, err := workload.NewGenerator(workload.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	run := func(filter bool) (int64, map[string]int) {
		g := gen()
		s := g.Schema()
		net, err := New(Config{
			Topology:             topology.CW24(),
			Schema:               s,
			Mode:                 interval.Lossy,
			FilterSubsumedDeltas: filter,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		var mu sync.Mutex
		counts := make(map[string]int)
		for i := 0; i < 240; i++ {
			sub := g.AnchoredSubscription(0.8)
			// Deliveries are keyed by (broker, subscription text) so the
			// two runs are comparable.
			key := fmt.Sprintf("%d|%s", i%24, sub.Format(s))
			if _, err := net.Subscribe(topology.NodeID(i%24), sub, func(_ subid.ID, ev *schema.Event) {
				mu.Lock()
				counts[key]++
				mu.Unlock()
			}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := net.Propagate(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			ev := g.Event(0.9)
			if err := net.Publish(topology.NodeID(i%24), ev); err != nil {
				t.Fatal(err)
			}
		}
		net.Flush()
		return net.Stats().Bytes[netsim.KindSummary], counts
	}
	plainBytes, plainCounts := run(false)
	filteredBytes, filteredCounts := run(true)
	if filteredBytes >= plainBytes {
		t.Fatalf("filtered %d bytes !< plain %d bytes", filteredBytes, plainBytes)
	}
	// Identical delivery multiset.
	if len(plainCounts) != len(filteredCounts) {
		t.Fatalf("delivery keys differ: %d vs %d", len(plainCounts), len(filteredCounts))
	}
	for k, v := range plainCounts {
		if filteredCounts[k] != v {
			t.Fatalf("deliveries for %q: plain %d filtered %d", k, v, filteredCounts[k])
		}
	}
}
