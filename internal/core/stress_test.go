package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/subsum/subsum/internal/netsim"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// stressFixture registers pre-generated subscriptions (with collectors) and
// events on a CW24 network. All subscriptions exist before any concurrent
// phase starts, so the engine's delivery guarantee (zero false negatives,
// zero false positives) must hold for every event regardless of how the
// propagation/publishing race interleaves.
type stressFixture struct {
	net        *Network
	schema     *schema.Schema
	rawSubs    []*schema.Subscription
	collectors []*collector
	events     []*schema.Event
}

func newStressFixture(t *testing.T, nSubs, nEvents int) *stressFixture {
	t.Helper()
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := &stressFixture{schema: gen.Schema()}
	f.net = newNetwork(t, topology.CW24(), f.schema)
	for i := 0; i < nSubs; i++ {
		sub := gen.Subscription()
		c := &collector{}
		if _, err := f.net.Subscribe(topology.NodeID(i%f.net.Len()), sub, c.deliver(f.schema)); err != nil {
			t.Fatal(err)
		}
		f.rawSubs = append(f.rawSubs, sub)
		f.collectors = append(f.collectors, c)
	}
	// Pre-generate events on this goroutine: the workload generator's rng
	// is not meant for concurrent use.
	f.events = make([]*schema.Event, nEvents)
	for i := range f.events {
		f.events[i] = gen.Event(0.9)
	}
	return f
}

// assertExactDeliveries checks every collector received exactly the events
// its subscription matches — no false negatives and no false positives.
func (f *stressFixture) assertExactDeliveries(t *testing.T) {
	t.Helper()
	for i, c := range f.collectors {
		want := 0
		for _, ev := range f.events {
			if f.rawSubs[i].Matches(ev) {
				want++
			}
		}
		if got := c.count(); got != want {
			t.Fatalf("subscription %d: %d deliveries, want %d", i, got, want)
		}
	}
}

// TestConcurrentPublishPropagateStress races publishers against repeated
// Propagate periods and mid-flight schema extension, then asserts exact
// end-to-end delivery and zero loss counters. Run under -race this is the
// engine's core concurrency regression test (the Network.period pointer
// race and the bus quiescence-counter race were both only reachable from
// this interleaving).
func TestConcurrentPublishPropagateStress(t *testing.T) {
	const publishers, perPublisher, propagateRounds = 4, 40, 3
	f := newStressFixture(t, 72, publishers*perPublisher)

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				idx := p*perPublisher + i
				at := topology.NodeID(idx % f.net.Len())
				if err := f.net.Publish(at, f.events[idx]); err != nil {
					t.Errorf("publish %d: %v", idx, err)
					return
				}
			}
		}(p)
	}
	// Two goroutines race Propagate against each other and the publishers
	// (periodMu serializes periods; the period pointer handoff is what the
	// race detector watches).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < propagateRounds; r++ {
				if _, err := f.net.Propagate(); err != nil {
					t.Errorf("propagate: %v", err)
					return
				}
			}
		}()
	}
	// Schema extension mid-flight (the paper's Section 6 evolution).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := f.net.ExtendSchema(fmt.Sprintf("stress_attr_%d", i), schema.TypeFloat); err != nil {
				t.Errorf("extend schema: %v", err)
				return
			}
		}
	}()
	// A stats reader hammers the accounting while traffic flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = f.net.Stats()
		}
	}()
	wg.Wait()
	f.net.Flush()

	f.assertExactDeliveries(t)

	// Clean run: every loss/error counter must be exactly zero.
	st := f.net.Stats()
	if st.TotalDropped() != 0 || st.TotalErrors() != 0 {
		t.Fatalf("loss counters non-zero on clean run: %+v", st.Counters().Snapshot())
	}

	// The extended schema is immediately usable: subscribe on a new
	// attribute, propagate, publish, and expect exact delivery.
	sub, err := schema.ParseSubscription(f.schema, `stress_attr_0 > 10`)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	if _, err := f.net.Subscribe(5, sub, c.deliver(f.schema)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.net.Propagate(); err != nil {
		t.Fatal(err)
	}
	ev, err := schema.ParseEvent(f.schema, `stress_attr_0=11`)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.net.Publish(17, ev); err != nil {
		t.Fatal(err)
	}
	f.net.Flush()
	if c.count() != 1 {
		t.Fatalf("post-evolution deliveries = %d, want 1", c.count())
	}
}

// TestConcurrentStressWithFaultInjection repeats the race with summary
// loss injected mid-flight. Summary drops degrade merged coverage but not
// delivery (Algorithm 3 walks the uncovered brokers), so exact delivery
// must still hold — and the bus's Dropped counter must equal the number of
// drops the injector performed, exactly.
func TestConcurrentStressWithFaultInjection(t *testing.T) {
	const publishers, perPublisher, propagateRounds = 4, 30, 3
	f := newStressFixture(t, 48, publishers*perPublisher)

	// Injector: drop every other summary message; count our own drops to
	// compare against the bus's Dropped counter exactly.
	var injected, seq atomic.Int64
	dropAlternateSummaries := func(m netsim.Message) bool {
		if m.Kind == netsim.KindSummary && seq.Add(1)%2 == 1 {
			injected.Add(1)
			return true
		}
		return false
	}

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				idx := p*perPublisher + i
				if err := f.net.Publish(topology.NodeID(idx%f.net.Len()), f.events[idx]); err != nil {
					t.Errorf("publish %d: %v", idx, err)
					return
				}
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < propagateRounds; r++ {
			if _, err := f.net.Propagate(); err != nil {
				t.Errorf("propagate: %v", err)
				return
			}
		}
	}()
	// Toggle fault injection while traffic flows (InjectFaults racing
	// Publish and Propagate, per the hardening issue).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			f.net.InjectFaults(dropAlternateSummaries)
			f.net.InjectFaults(nil)
		}
		f.net.InjectFaults(dropAlternateSummaries)
	}()
	wg.Wait()

	// With the injector pinned on, force at least one lossy period so the
	// non-zero assertion below cannot pass vacuously.
	if _, err := f.net.Propagate(); err != nil {
		t.Fatal(err)
	}
	f.net.InjectFaults(nil)
	f.net.Flush()

	f.assertExactDeliveries(t)

	st := f.net.Stats()
	if got, want := st.Dropped[netsim.KindSummary], injected.Load(); got != want {
		t.Fatalf("bus dropped %d summaries, injector dropped %d", got, want)
	}
	if injected.Load() == 0 {
		t.Fatal("fault injection never fired; test is vacuous")
	}
	if st.Dropped[netsim.KindEvent] != 0 || st.Dropped[netsim.KindDeliver] != 0 {
		t.Fatalf("unexpected non-summary drops: %+v", st.Dropped)
	}
	if st.TotalErrors() != 0 {
		t.Fatalf("decode/handler errors on uncorrupted traffic: %+v", st.Counters().Snapshot())
	}
}

// TestDecodeErrorsAreCounted feeds each message kind a corrupt payload
// directly on the bus and checks the per-kind decode-error counters: an
// undecodable message must never vanish without being accounted.
func TestDecodeErrorsAreCounted(t *testing.T) {
	s := stockSchema(t)
	net := newNetwork(t, topology.Ring(4), s)
	garbage := []byte{0xff} // too short for even the u16 mask header
	for _, k := range []netsim.Kind{netsim.KindSummary, netsim.KindEvent, netsim.KindDeliver} {
		if err := net.bus.Send(netsim.Message{From: 0, To: 1, Kind: k, Payload: garbage}); err != nil {
			t.Fatal(err)
		}
	}
	net.Flush()
	st := net.Stats()
	for _, k := range []netsim.Kind{netsim.KindSummary, netsim.KindEvent, netsim.KindDeliver} {
		if st.DecodeErrors[k] != 1 {
			t.Fatalf("DecodeErrors[%v] = %d, want 1 (stats %+v)", k, st.DecodeErrors[k], st.DecodeErrors)
		}
	}
	if st.TotalErrors() != 3 {
		t.Fatalf("TotalErrors = %d, want 3", st.TotalErrors())
	}

	// Corruption must not poison later traffic: normal delivery still works.
	sub, _ := schema.ParseSubscription(s, `price > 1`)
	var c collector
	if _, err := net.Subscribe(2, sub, c.deliver(s)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	ev, _ := schema.ParseEvent(s, `price=5`)
	if err := net.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	if c.count() != 1 {
		t.Fatalf("deliveries after corruption = %d, want 1", c.count())
	}
}
