package core

import (
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// TestGeneratedOverlayWatchdog runs the live engine on a generated
// 64-broker transit-stub overlay — the topology class the scaling
// experiments sweep — through churned periods with concurrent publishes,
// and requires a clean invariant watchdog throughout. The hand-built
// fixtures are small and regular; this is the guard that the engine's
// locking and flow conservation hold on the irregular generated graphs
// too.
func TestGeneratedOverlayWatchdog(t *testing.T) {
	g, _ := topology.TransitStubRegions(64, 21)
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(Config{Topology: g, Schema: gen.Schema(), Mode: interval.Lossy, FullSyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	ch, err := workload.NewChurn(gen, workload.ChurnConfig{Rate: 40, MeanLifetime: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}

	ids := make(map[int]subid.ID)
	periods := 8
	if testing.Short() {
		periods = 4
	}
	for p := 1; p <= periods; p++ {
		cp := ch.Period()
		for _, h := range cp.Died {
			if err := net.Unsubscribe(ids[h]); err != nil {
				t.Fatal(err)
			}
			delete(ids, h)
		}
		for _, b := range cp.Born {
			id, err := net.Subscribe(topology.NodeID(b.Handle%g.Len()), b.Sub, func(subid.ID, *schema.Event) {})
			if err != nil {
				t.Fatal(err)
			}
			ids[b.Handle] = id
		}
		if _, err := net.Propagate(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := net.Publish(topology.NodeID((p*7+i)%g.Len()), gen.Event(0.5)); err != nil {
				t.Fatal(err)
			}
		}
		if v := net.CheckInvariants(); len(v) != 0 {
			t.Fatalf("period %d: invariant violations: %v", p, v)
		}
	}
	net.Flush()
	if v := net.CheckInvariants(); len(v) != 0 {
		t.Fatalf("violations at quiescence: %v", v)
	}
}
