// Convergence/staleness observability: every summary payload carries the
// sender's period epoch (see the summary header in core.go), every broker
// maintains a per-peer vector of last-applied epochs, and this file turns
// those vectors into the network-level health surface — per-broker
// staleness/full-sync-age/retraction-lag gauges refreshed at the end of
// every period, a structured report for the wire op and debug endpoint,
// and the journal's per-period convergence record.
package core

import (
	"strconv"

	"github.com/subsum/subsum/internal/broker"
	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/metrics"
)

// convObs is one broker's convergence gauges, resolved once in New so
// the per-period refresh never touches the registry maps.
type convObs struct {
	staleness   *metrics.Gauge // max periods behind, over tracked peers
	fullSyncAge *metrics.Gauge // periods since the last applied full sync
	retractLag  *metrics.Gauge // periods since the last applied retraction payload
}

func newConvObs(r *metrics.Registry, n int) []convObs {
	st := r.GaugeVec("convergence_staleness_periods")
	fs := r.GaugeVec("convergence_full_sync_age")
	rl := r.GaugeVec("convergence_retraction_lag")
	out := make([]convObs, n)
	for i := range out {
		label := strconv.Itoa(i)
		out[i] = convObs{staleness: st.With(label), fullSyncAge: fs.With(label), retractLag: rl.With(label)}
	}
	return out
}

// refreshConvergenceGauges recomputes every broker's staleness gauges
// from its epoch vector and journals the period's convergence record.
// Called at the end of each Propagate period (under periodMu); the
// per-broker read is allocation-free (ReadEpochs).
//
// Gauge semantics: staleness is the maximum, over peers this broker has
// ever applied a stamped payload for, of (current period − last applied
// epoch). Untracked peers are excluded — under the paper's degree-
// ordered flows a leaf legitimately never hears about most of the
// network; staleness measures decay of knowledge the broker once had.
// Full-sync age counts from the period when no sync has ever been
// applied; retraction lag is 0 until the first retraction-carrying
// payload arrives (nothing to lag behind).
func (net *Network) refreshConvergenceGauges() {
	period := net.periodCount.Load()
	if period == 0 || len(net.conv) == 0 {
		return
	}
	var maxStale, lagging int64
	for i, b := range net.brokers {
		var st, fsAge, rLag int64
		b.ReadEpochs(func(peers []int64, lastFull, lastRetract int64) {
			for p, e := range peers {
				if p == i || e < 0 {
					continue
				}
				if d := period - e; d > 0 {
					if d > st {
						st = d
					}
					lagging++
				}
			}
			if lastFull >= 0 {
				fsAge = period - lastFull
			} else {
				fsAge = period
			}
			if lastRetract >= 0 {
				rLag = period - lastRetract
			}
		})
		net.conv[i].staleness.Set(st)
		net.conv[i].fullSyncAge.Set(fsAge)
		net.conv[i].retractLag.Set(rLag)
		if st > maxStale {
			maxStale = st
		}
	}
	net.rec.Record(flight.EvConvergence, -1, period, maxStale, lagging, "")
}

// PeerEpoch is one tracked entry of a broker's convergence vector.
type PeerEpoch struct {
	Peer      int   `json:"peer"`
	Epoch     int64 `json:"epoch"`
	Staleness int64 `json:"staleness"`
}

// BrokerConvergence is one broker's convergence state: its tracked peer
// epochs plus the derived lags. FullSyncAge and RetractionLag are -1
// when no payload of that class was ever applied (the raw truth; the
// gauges round those cases to period and 0 respectively).
type BrokerConvergence struct {
	Broker        int         `json:"broker"`
	Peers         []PeerEpoch `json:"peers,omitempty"`
	MaxStaleness  int64       `json:"max_staleness"`
	FullSyncAge   int64       `json:"full_sync_age"`
	RetractionLag int64       `json:"retraction_lag"`
}

// ConvergenceReport is the network-wide convergence snapshot served by
// the {"op":"convergence"} wire op and /debug/convergence.
type ConvergenceReport struct {
	Period         int64               `json:"period"`
	FullSyncEvery  int                 `json:"full_sync_every"`
	MaxStaleness   int64               `json:"max_staleness"`
	LaggingEntries int                 `json:"lagging_entries"`
	Brokers        []BrokerConvergence `json:"brokers"`
}

// Convergence snapshots every broker's epoch vector against the current
// period. Safe to call concurrently with propagation: the period counter
// is atomic and each broker's vector is read under its own lock, so the
// report is per-broker consistent (a period completing mid-snapshot can
// skew cross-broker staleness by at most one period).
func (net *Network) Convergence() *ConvergenceReport {
	period := net.periodCount.Load()
	r := &ConvergenceReport{
		Period:        period,
		FullSyncEvery: net.cfg.FullSyncEvery,
		Brokers:       make([]BrokerConvergence, len(net.brokers)),
	}
	for i, b := range net.brokers {
		st := b.EpochState()
		bc := BrokerConvergence{
			Broker:        i,
			FullSyncAge:   -1,
			RetractionLag: -1,
		}
		for p, e := range st.Peers {
			if p == i || e < 0 {
				continue
			}
			d := period - e
			if d < 0 {
				d = 0
			}
			bc.Peers = append(bc.Peers, PeerEpoch{Peer: p, Epoch: e, Staleness: d})
			if d > bc.MaxStaleness {
				bc.MaxStaleness = d
			}
			if d > 0 {
				r.LaggingEntries++
			}
		}
		if st.LastFullSync >= 0 {
			bc.FullSyncAge = period - st.LastFullSync
		}
		if st.LastRetract >= 0 {
			bc.RetractionLag = period - st.LastRetract
		}
		if bc.MaxStaleness > r.MaxStaleness {
			r.MaxStaleness = bc.MaxStaleness
		}
		r.Brokers[i] = bc
	}
	return r
}

// HealthReport bundles the summary-health surfaces: convergence epochs
// and false-positive attribution. Served by the "convergence" wire op.
type HealthReport struct {
	Convergence    *ConvergenceReport `json:"convergence"`
	FalsePositives *broker.FPReport   `json:"false_positives"`
}

// healthTopK bounds the top-K slice shipped in a health report.
const healthTopK = 16

// Health snapshots the network's summary-health state.
func (net *Network) Health() *HealthReport {
	return &HealthReport{
		Convergence:    net.Convergence(),
		FalsePositives: net.attrib.Report(healthTopK),
	}
}

// FPReport snapshots false-positive attribution alone: the top n triples
// (n <= 0 = all tracked) plus per-attribute precision.
func (net *Network) FPReport(n int) *broker.FPReport { return net.attrib.Report(n) }
