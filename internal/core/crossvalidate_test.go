package core

import (
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/netsim"
	"github.com/subsum/subsum/internal/propagation"
	"github.com/subsum/subsum/internal/routing"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// TestLiveEngineHopsMatchDeterministicRouter is the strongest
// cross-validation between the two execution paths: identical
// subscriptions go through (a) the deterministic propagation+router
// pipeline and (b) the live engine, and the total event-processing hop
// counts must agree exactly — forwards are KindEvent messages beyond the
// initial publishes, deliveries are KindDeliver messages.
func TestLiveEngineHopsMatchDeterministicRouter(t *testing.T) {
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := gen.Schema()
	g := topology.CW24()
	n := g.Len()

	subsPerBroker := make([][]*schema.Subscription, n)
	for i := range subsPerBroker {
		for j := 0; j < 8; j++ {
			subsPerBroker[i] = append(subsPerBroker[i], gen.Subscription())
		}
	}
	events := make([]*schema.Event, 120)
	for i := range events {
		events[i] = gen.Event(0.9)
	}

	// Path (a): deterministic.
	own := make([]*summary.Summary, n)
	for i, list := range subsPerBroker {
		own[i] = summary.New(s, interval.Lossy)
		for j, sub := range list {
			id := subid.ID{Broker: subid.BrokerID(i), Local: subid.LocalID(j)}
			if err := own[i].Insert(id, sub); err != nil {
				t.Fatal(err)
			}
		}
	}
	prop, err := propagation.Run(g, own, propagation.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	router, err := routing.NewRouter(g, prop, routing.Config{Strategy: routing.HighestDegree})
	if err != nil {
		t.Fatal(err)
	}
	var wantForward, wantDeliver int
	for i, ev := range events {
		ev := ev
		match := func(at topology.NodeID) []topology.NodeID {
			var out []topology.NodeID
			seen := map[topology.NodeID]bool{}
			for _, id := range prop.Merged[at].Match(ev) {
				owner := topology.NodeID(id.Broker)
				if !seen[owner] {
					seen[owner] = true
					out = append(out, owner)
				}
			}
			return out
		}
		trace := router.Route(topology.NodeID(i%n), match)
		wantForward += trace.ForwardHops
		// The live engine sends one KindDeliver per remote owner; local
		// owners deliver in place. Trace.DeliveryHops counts exactly the
		// remote ones.
		wantDeliver += trace.DeliveryHops
	}

	// Path (b): the live engine with the same inputs.
	net, err := New(Config{Topology: g, Schema: s, Mode: interval.Lossy})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	for i, list := range subsPerBroker {
		for _, sub := range list {
			if _, err := net.Subscribe(topology.NodeID(i), sub, func(subid.ID, *schema.Event) {}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	for i, ev := range events {
		if err := net.Publish(topology.NodeID(i%n), ev); err != nil {
			t.Fatal(err)
		}
	}
	net.Flush()
	st := net.Stats()
	gotForward := int(st.Messages[netsim.KindEvent]) - len(events) // minus publish injections
	gotDeliver := int(st.Messages[netsim.KindDeliver])
	if gotForward != wantForward {
		t.Errorf("forward hops: live %d, deterministic %d", gotForward, wantForward)
	}
	if gotDeliver != wantDeliver {
		t.Errorf("delivery hops: live %d, deterministic %d", gotDeliver, wantDeliver)
	}
}
