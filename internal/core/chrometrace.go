// Chrome trace-event export: renders the retained hop traces in the
// Trace Event Format consumed by chrome://tracing and Perfetto
// (https://ui.perfetto.dev). Each broker becomes one named thread track;
// each filter decision of each sampled event becomes a complete ("X")
// slice on its broker's track, so the visual timeline shows where events
// spent their walk and which summaries suppressed them — turning the
// flight data into a picture an operator can scrub.
package core

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one entry of the traceEvents array. Fields follow the
// Trace Event Format: ph is the phase ("X" complete slice, "M"
// metadata), ts/dur are microseconds, pid/tid place the slice on a
// track.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTraceDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the retained hop traces as a Chrome
// trace-event JSON document: one thread track per broker (pid 0), one
// complete slice per hop decision. A hop's slice spans from the previous
// recorded timestamp of its trace (the publish time for the first hop)
// to the hop's own timestamp — the wait-plus-process interval that
// decision accounts for. Traces recorded before timestamping existed
// (all-zero times) are skipped.
func (net *Network) WriteChromeTrace(w io.Writer) error {
	traces := net.Traces()
	doc := chromeTraceDoc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	// Stable time origin: the earliest publish among retained traces.
	var t0 int64
	brokers := map[int]bool{}
	for _, tr := range traces {
		if tr.StartUnixNanos == 0 {
			continue
		}
		if t0 == 0 || tr.StartUnixNanos < t0 {
			t0 = tr.StartUnixNanos
		}
	}
	us := func(ns int64) float64 { return float64(ns-t0) / 1e3 }

	for _, tr := range traces {
		if tr.StartUnixNanos == 0 {
			continue
		}
		prev := tr.StartUnixNanos
		for _, hop := range tr.Hops {
			if hop.UnixNanos == 0 {
				continue
			}
			start, end := prev, hop.UnixNanos
			if end < start {
				start = end
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name:  hop.Decision,
				Phase: "X",
				TsUs:  us(start),
				DurUs: float64(end-start) / 1e3,
				PID:   0,
				TID:   hop.Broker,
				Args: map[string]any{
					"trace_id": tr.ID,
					"event":    tr.Event,
					"origin":   tr.Origin,
					"matched":  hop.Matched,
					"bytes":    hop.Bytes,
				},
			})
			brokers[hop.Broker] = true
			prev = hop.UnixNanos
		}
	}

	// Thread-name metadata so tracks read "broker N" instead of bare tids.
	ids := make([]int, 0, len(brokers))
	for id := range brokers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	meta := make([]chromeEvent, 0, len(ids))
	for _, id := range ids {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: id,
			Args: map[string]any{"name": "broker " + strconv.Itoa(id)},
		})
	}
	doc.TraceEvents = append(meta, doc.TraceEvents...)

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
