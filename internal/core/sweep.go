package core

import "github.com/subsum/subsum/internal/par"

// Sweep runs fn(i) for every i in [0, n) across a bounded pool of worker
// goroutines; see par.Sweep (the implementation moved there so leaf
// packages can share the pool shape without importing the live engine).
func Sweep(n, workers int, fn func(i int)) { par.Sweep(n, workers, fn) }

// SweepErr is Sweep for per-index functions that can fail; the returned
// error is the one from the lowest failing index. See par.SweepErr.
func SweepErr(n, workers int, fn func(i int) error) error { return par.SweepErr(n, workers, fn) }
