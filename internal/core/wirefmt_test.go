package core

import (
	"strings"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/routing"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
)

// TestMaskCodecRoundTrip covers widths around the old u8 word-count limit:
// a 300-word mask (19 200 brokers) used to truncate to 300 mod 256 words on
// the wire and corrupt every BROCLI/delivered set beyond broker 16 320.
func TestMaskCodecRoundTrip(t *testing.T) {
	for _, words := range []int{0, 1, 2, 255, 256, 300, 1024} {
		m := make(subid.Mask, words)
		for i := range m {
			m[i] = uint64(i)*0x9e3779b97f4a7c15 + 1 // arbitrary non-zero pattern
		}
		buf, err := encodeMask(nil, m)
		if err != nil {
			t.Fatalf("%d words: encode: %v", words, err)
		}
		got, n, err := decodeMask(buf)
		if err != nil {
			t.Fatalf("%d words: decode: %v", words, err)
		}
		if n != len(buf) {
			t.Fatalf("%d words: consumed %d of %d bytes", words, n, len(buf))
		}
		if len(got) != words {
			t.Fatalf("%d words: decoded %d words", words, len(got))
		}
		for i := range m {
			if got[i] != m[i] {
				t.Fatalf("%d words: word %d = %#x, want %#x", words, i, got[i], m[i])
			}
		}
	}
}

func TestMaskCodecOverflowIsAnError(t *testing.T) {
	m := make(subid.Mask, maxMaskWords+1)
	if _, err := encodeMask(nil, m); err == nil || !strings.Contains(err.Error(), "exceeds wire limit") {
		t.Fatalf("oversized mask not rejected: err=%v", err)
	}
	// At exactly the limit it must succeed.
	if _, err := encodeMask(nil, make(subid.Mask, maxMaskWords)); err != nil {
		t.Fatalf("limit-sized mask rejected: %v", err)
	}
}

func TestMaskCodecTruncationErrors(t *testing.T) {
	if _, _, err := decodeMask(nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
	if _, _, err := decodeMask([]byte{1}); err == nil {
		t.Fatal("1-byte buffer accepted")
	}
	// Header claims 2 words but only one follows.
	buf, err := encodeMask(nil, make(subid.Mask, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodeMask(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated words accepted")
	}
}

// TestEffectiveOrderSorted checks the forwarding-preference invariant on
// several topologies: effective degree descending, id ascending on ties.
func TestEffectiveOrderSorted(t *testing.T) {
	for _, tc := range []struct {
		name     string
		g        *topology.Graph
		strategy routing.Strategy
	}{
		{"cw24-highest", topology.CW24(), routing.HighestDegree},
		{"cw24-virtual", topology.CW24(), routing.VirtualDegree},
		{"tree-highest", topology.Figure7Tree(), routing.HighestDegree},
		{"ring", topology.Ring(9), routing.HighestDegree},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net, err := New(Config{
				Topology: tc.g, Schema: stockSchema(t),
				Mode: interval.Lossy, Strategy: tc.strategy,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer net.Close()
			order := net.order
			if len(order) != tc.g.Len() {
				t.Fatalf("order has %d entries, want %d", len(order), tc.g.Len())
			}
			seen := make(map[topology.NodeID]bool, len(order))
			eff := func(id topology.NodeID) int {
				// Reconstruct the advertised degree the same way the engine
				// does (VirtualDegree caps maximum-degree nodes).
				d := tc.g.Degree(id)
				if tc.strategy == routing.VirtualDegree && d == tc.g.MaxDegree() {
					cap := int(tc.g.MeanDegree() + 0.5)
					if cap < 1 {
						cap = 1
					}
					if d > cap {
						d = cap
					}
				}
				return d
			}
			for i := 1; i < len(order); i++ {
				a, b := order[i-1], order[i]
				if eff(a) < eff(b) || (eff(a) == eff(b) && a >= b) {
					t.Fatalf("order[%d..%d] = %d(deg %d), %d(deg %d): not (degree desc, id asc)",
						i-1, i, a, eff(a), b, eff(b))
				}
			}
			for _, id := range order {
				if seen[id] {
					t.Fatalf("duplicate node %d in order", id)
				}
				seen[id] = true
			}
		})
	}
}
