package core

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/topology"
)

// Hop-decision labels recorded by event tracing. At every broker an event
// visits, the summary filter produces one (or two) of these: a local
// delivery outcome when the merged summary named this broker as an owner,
// and a routing outcome for the Algorithm 3 walk.
const (
	// DecisionDelivered: the summary matched local subscriptions and the
	// exact re-match confirmed at least one true consumer.
	DecisionDelivered = "delivered"
	// DecisionFalsePositive: the summary matched locally but the exact
	// re-match found no true consumer — the cost of lossy summarization.
	DecisionFalsePositive = "false-positive"
	// DecisionForwarded: the event was sent on to the next unvisited
	// broker (BROCLI incomplete).
	DecisionForwarded = "forwarded"
	// DecisionSuppressed: the walk ended here — every broker's
	// subscriptions were already examined via merged summaries, so no
	// further transmission was needed.
	DecisionSuppressed = "suppressed-by-summary"
)

// TraceHop is one filter decision in an event's walk.
type TraceHop struct {
	Broker   int    `json:"broker"`
	Decision string `json:"decision"`
	// UnixNanos is the wall-clock time the decision was recorded, so trace
	// exports (Chrome trace events, timelines) can place hops on a real
	// time axis.
	UnixNanos int64 `json:"t_ns"`
	// Matched is the number of summary-filter hits at this hop (owner ids
	// the merged summary admitted), recorded on delivery/forward decisions.
	Matched int `json:"matched"`
	// Bytes is the payload size of the message this decision emitted
	// (forward/remote-delivery sends) or consumed (terminal decisions: 0).
	Bytes int `json:"bytes"`
}

// Trace is the complete record of one sampled event's path through the
// broker network.
type Trace struct {
	ID     uint64 `json:"id"`
	Origin int    `json:"origin"`
	Event  string `json:"event"`
	// StartUnixNanos is the wall-clock time Publish accepted the event.
	StartUnixNanos int64 `json:"start_ns"`
	// Path is the Algorithm 3 visit order: the brokers the routed event
	// reached, in sequence (owner-only delivery hops are not part of the
	// routing walk and appear in Hops instead).
	Path []int      `json:"path"`
	Hops []TraceHop `json:"hops"`
	// CumBytes accumulates the payload bytes of every message that
	// carried this event (routing messages and remote deliveries).
	CumBytes int `json:"cum_bytes"`
}

// defaultTraceCapacity bounds the tracer's memory until SetTraceCapacity
// overrides it; older traces are evicted FIFO.
const defaultTraceCapacity = 256

// tracer samples published events and records their hop-by-hop walk. It
// is always present on a Network; with sampling off (every == 0, the
// default) the publish-path cost is one atomic load and branch, and
// nothing below ever takes the mutex.
type tracer struct {
	every  atomic.Uint64 // sample every Nth publish; 0 = off
	pubs   atomic.Uint64 // publishes seen while sampling is on
	nextID atomic.Uint64

	mu       sync.Mutex
	capacity int // 0 means defaultTraceCapacity
	traces   map[uint64]*Trace
	order    []uint64       // insertion order for FIFO eviction
	depth    *metrics.Gauge // retained-trace count; nil when unwired

	// latency[b] observes publish→deliver wall time whenever a traced
	// event's exact re-match delivers at broker b. The timestamp rides the
	// trace context, so the untraced fast path stays one header byte and
	// zero allocations — end-to-end latency is a sampled measurement by
	// construction. Nil when unwired (tests building a bare tracer).
	latency []*metrics.Histogram
}

// initLatency resolves the per-broker end-to-end latency histograms.
func (t *tracer) initLatency(r *metrics.Registry, n int) {
	vec := r.HistogramVec("event_e2e_latency_seconds", metrics.DefLatencyBuckets)
	t.latency = make([]*metrics.Histogram, n)
	for i := range t.latency {
		t.latency[i] = vec.With(strconv.Itoa(i))
	}
}

// cap returns the effective retention bound; callers hold t.mu.
func (t *tracer) cap() int {
	if t.capacity > 0 {
		return t.capacity
	}
	return defaultTraceCapacity
}

// evictTo shrinks the store to at most n traces (FIFO) and refreshes the
// depth gauge; callers hold t.mu.
func (t *tracer) evictTo(n int) {
	for len(t.order) > n {
		delete(t.traces, t.order[0])
		t.order = t.order[1:]
	}
	if t.depth != nil {
		t.depth.Set(int64(len(t.order)))
	}
}

// sample decides whether the next publish is traced, returning its trace
// id (0 = untraced).
func (t *tracer) sample() uint64 {
	every := t.every.Load()
	if every == 0 {
		return 0
	}
	if t.pubs.Add(1)%every != 0 {
		return 0
	}
	return t.nextID.Add(1)
}

// begin registers a new trace.
func (t *tracer) begin(id uint64, origin topology.NodeID, event string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.traces == nil {
		t.traces = make(map[uint64]*Trace)
	}
	t.evictTo(t.cap() - 1)
	t.traces[id] = &Trace{ID: id, Origin: int(origin), Event: event, StartUnixNanos: time.Now().UnixNano()}
	t.order = append(t.order, id)
	if t.depth != nil {
		t.depth.Set(int64(len(t.order)))
	}
}

// visit records the routed event arriving at a broker carrying `bytes` of
// payload.
func (t *tracer) visit(id uint64, broker topology.NodeID, bytes int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr := t.traces[id]; tr != nil {
		tr.Path = append(tr.Path, int(broker))
		tr.CumBytes += bytes
	}
}

// addBytes accounts a remote-delivery payload against the trace.
func (t *tracer) addBytes(id uint64, bytes int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr := t.traces[id]; tr != nil {
		tr.CumBytes += bytes
	}
}

// hop appends one filter decision. A delivered decision additionally
// observes publish→deliver latency on the broker's end-to-end histogram
// (the trace carries the publish timestamp; untraced events never reach
// this path).
func (t *tracer) hop(id uint64, broker topology.NodeID, decision string, matched, bytes int) {
	now := time.Now().UnixNano()
	t.mu.Lock()
	var start int64
	if tr := t.traces[id]; tr != nil {
		tr.Hops = append(tr.Hops, TraceHop{
			Broker: int(broker), Decision: decision, Matched: matched, Bytes: bytes,
			UnixNanos: now,
		})
		start = tr.StartUnixNanos
	}
	t.mu.Unlock()
	if decision == DecisionDelivered && start > 0 && now >= start &&
		int(broker) < len(t.latency) {
		t.latency[broker].Observe(float64(now-start) / 1e9)
	}
}

// snapshot deep-copies the retained traces, most recent first.
func (t *tracer) snapshot() []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.order))
	for i := len(t.order) - 1; i >= 0; i-- {
		tr := t.traces[t.order[i]]
		if tr == nil {
			continue
		}
		cp := *tr
		cp.Path = append([]int(nil), tr.Path...)
		cp.Hops = append([]TraceHop(nil), tr.Hops...)
		out = append(out, cp)
	}
	return out
}

// SetTraceSampling turns hop tracing on (trace every Nth published event)
// or off (every ≤ 0). Traces already recorded are retained either way.
// Safe to call at any time, including concurrently with Publish.
func (net *Network) SetTraceSampling(every int) {
	if every < 0 {
		every = 0
	}
	net.tracer.every.Store(uint64(every))
}

// TraceSampling returns the current sampling interval (0 = off).
func (net *Network) TraceSampling() int { return int(net.tracer.every.Load()) }

// Traces returns copies of the retained hop traces, most recent first.
// In-flight events may still be appending to their trace; call Flush
// first for settled records.
func (net *Network) Traces() []Trace { return net.tracer.snapshot() }

// SetTraceCapacity bounds the trace store to the newest n traces
// (n ≤ 0 restores the default of 256). Shrinking evicts the oldest
// traces immediately.
func (net *Network) SetTraceCapacity(n int) {
	t := &net.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 {
		n = 0
	}
	t.capacity = n
	t.evictTo(t.cap())
}

// TraceCapacity returns the current trace retention bound.
func (net *Network) TraceCapacity() int {
	t := &net.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cap()
}

// ClearTraces discards every retained trace (sampling state is
// unchanged). Debug operation: lets an operator isolate the traces of
// the traffic they are about to send.
func (net *Network) ClearTraces() {
	t := &net.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	t.evictTo(0)
}
