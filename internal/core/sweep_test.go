package core

import (
	"errors"
	"testing"
)

func TestSweepCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 257
		got := make([]int, n)
		Sweep(n, workers, func(i int) { got[i]++ })
		for i, c := range got {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
	ran := false
	Sweep(0, 4, func(int) { ran = true })
	if ran {
		t.Fatal("Sweep(0, ...) ran an index")
	}
}

func TestSweepErrReturnsLowestIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 8} {
		err := SweepErr(100, workers, func(i int) error {
			switch i {
			case 41:
				return errA
			case 97:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Fatalf("workers=%d: err = %v, want lowest-index error %v", workers, err, errA)
		}
	}
	if err := SweepErr(50, 8, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}
