package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/subsum/subsum/internal/netsim"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// TestSummaryLossDoesNotBreakDelivery: even when half of the Algorithm 2
// summary messages are dropped, every published event still reaches
// exactly its matching consumers — Algorithm 3's BROCLI walk compensates
// for missing merged-summary coverage by examining more brokers.
func TestSummaryLossDoesNotBreakDelivery(t *testing.T) {
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := gen.Schema()
	net := newNetwork(t, topology.CW24(), s)

	// Drop 50% of summary messages, deterministically, counting our own
	// drops to check the bus's accounting below.
	var mu sync.Mutex
	var injected int64
	rng := rand.New(rand.NewSource(13))
	net.InjectFaults(func(m netsim.Message) bool {
		if m.Kind != netsim.KindSummary {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		if rng.Intn(2) == 0 {
			injected++
			return true
		}
		return false
	})

	var rawSubs []*schema.Subscription
	var collectors []*collector
	for i := 0; i < 120; i++ {
		sub := gen.Subscription()
		c := &collector{}
		if _, err := net.Subscribe(topology.NodeID(i%net.Len()), sub, c.deliver(s)); err != nil {
			t.Fatal(err)
		}
		rawSubs = append(rawSubs, sub)
		collectors = append(collectors, c)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	mu.Lock()
	inj := injected
	mu.Unlock()
	if st.Dropped[netsim.KindSummary] == 0 {
		t.Fatal("fault injection inactive")
	}
	if st.Dropped[netsim.KindSummary] != inj {
		t.Fatalf("bus dropped %d summaries, injector dropped %d", st.Dropped[netsim.KindSummary], inj)
	}

	events := make([]*schema.Event, 150)
	for i := range events {
		events[i] = gen.Event(0.9)
		if err := net.Publish(topology.NodeID(i%net.Len()), events[i]); err != nil {
			t.Fatal(err)
		}
	}
	net.Flush()
	for i, c := range collectors {
		want := 0
		for _, ev := range events {
			if rawSubs[i].Matches(ev) {
				want++
			}
		}
		if got := c.count(); got != want {
			t.Fatalf("subscription %d: %d deliveries, want %d (under 50%% summary loss)",
				i, got, want)
		}
	}

	// Healing: disable faults; the next period repairs merged coverage.
	net.InjectFaults(nil)
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
}

// TestEventLossLosesOnlyAffectedEvents: dropped delivery messages lose the
// affected events (at-most-once semantics; the engine does not retransmit)
// but never corrupt later traffic.
func TestEventLossLosesOnlyAffectedEvents(t *testing.T) {
	s := schema.MustNew(schema.Attribute{Name: "x", Type: schema.TypeFloat})
	net := newNetwork(t, topology.Ring(6), s)
	sub, err := schema.ParseSubscription(s, `x > 0`)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	if _, err := net.Subscribe(3, sub, c.deliver(s)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Propagate(); err != nil {
		t.Fatal(err)
	}
	ev, err := schema.ParseEvent(s, `x=1`)
	if err != nil {
		t.Fatal(err)
	}

	// Drop every event-related message while faults are active (the event
	// dies right after the origin broker examines it; broker 3 is never
	// reached).
	net.InjectFaults(func(m netsim.Message) bool {
		return m.Kind == netsim.KindDeliver || m.Kind == netsim.KindEvent && m.From != m.To
	})
	if err := net.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	if c.count() != 0 {
		t.Fatalf("deliveries under total loss = %d", c.count())
	}

	// Heal; traffic resumes normally.
	net.InjectFaults(nil)
	if err := net.Publish(0, ev); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	if c.count() != 1 {
		t.Fatalf("deliveries after healing = %d, want 1", c.count())
	}
}
