package core

import (
	"strings"
	"testing"
	"time"

	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/netsim"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/topology"
)

// driveTraffic pushes a workload through the network so every watchdog
// counter is nonzero: subscriptions, two propagation periods, and a batch
// of published events, flushed to quiescence.
func driveTraffic(t *testing.T, net *Network, s *schema.Schema) {
	t.Helper()
	subs := []string{
		`symbol = OTE && price > 8.30`,
		`price > 100`,
		`volume > 50000`,
	}
	var sink collector
	for i, src := range subs {
		sub, err := schema.ParseSubscription(s, src)
		if err != nil {
			t.Fatal(err)
		}
		at := topology.NodeID(i % net.Len())
		if _, err := net.Subscribe(at, sub, sink.deliver(s)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := net.Propagate(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		ev, err := schema.ParseEvent(s, `exchange = FSE, symbol = OTE, price = 8.50, volume = 60000`)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Publish(topology.NodeID(i%net.Len()), ev); err != nil {
			t.Fatal(err)
		}
	}
	net.Flush()
}

func TestWatchdogCleanOnHealthyNetwork(t *testing.T) {
	s := stockSchema(t)
	net := newNetwork(t, topology.Figure7Tree(), s)
	driveTraffic(t, net, s)
	if v := net.CheckInvariants(); len(v) != 0 {
		t.Fatalf("healthy network reported violations: %v", v)
	}
}

func TestWatchdogCleanUnderFaults(t *testing.T) {
	// Fault-injected drops must not trip the byte reconciliation: dropped
	// summary bytes are accounted on the bus side of the equation.
	s := stockSchema(t)
	net := newNetwork(t, topology.Figure7Tree(), s)
	drop := 0
	net.InjectFaults(func(m netsim.Message) bool {
		if m.Kind == netsim.KindSummary {
			drop++
			return drop%3 == 0
		}
		return false
	})
	driveTraffic(t, net, s)
	if net.Stats().Dropped[netsim.KindSummary] == 0 {
		t.Fatal("fault injection never fired; test is vacuous")
	}
	if v := net.CheckInvariants(); len(v) != 0 {
		t.Fatalf("dropping network reported violations: %v", v)
	}
}

// TestWatchdogCatchesCorruptedSummary is the acceptance test for the
// watchdog: seed a deliberate coverage understatement (an owned
// subscription erased from the broker's own merged summary) and require
// the running watchdog to report it within one check interval.
func TestWatchdogCatchesCorruptedSummary(t *testing.T) {
	s := stockSchema(t)
	rec := flight.NewRecorder(1 << 16)
	net, err := New(Config{
		Topology: topology.Figure7Tree(),
		Schema:   s,
		Mode:     interval.Lossy,
		Flight:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	driveTraffic(t, net, s)

	sub, err := schema.ParseSubscription(s, `price > 5`)
	if err != nil {
		t.Fatal(err)
	}
	var sink collector
	id, err := net.Subscribe(2, sub, sink.deliver(s))
	if err != nil {
		t.Fatal(err)
	}

	const interval = 20 * time.Millisecond
	w := net.StartWatchdog(interval)
	if again := net.StartWatchdog(time.Hour); again != w {
		t.Fatal("second StartWatchdog did not return the existing watchdog")
	}

	// Healthy first: wait for at least one clean pass.
	deadline := time.Now().Add(2 * time.Second)
	for net.Metrics().Counter("watchdog_checks").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never checked")
		}
		time.Sleep(time.Millisecond)
	}
	if got := net.Metrics().Counter("watchdog_violations").Value(); got != 0 {
		t.Fatalf("violations before corruption: %d", got)
	}

	net.Broker(2).CorruptMerged(id)
	corrupted := time.Now()
	for net.Metrics().Counter("watchdog_violations").Value() == 0 {
		if time.Since(corrupted) > 2*interval+time.Second {
			t.Fatal("watchdog missed the corrupted summary")
		}
		time.Sleep(time.Millisecond)
	}
	// Detection latency: within one check interval (generous slack for a
	// loaded CI box; the invariant is "next pass sees it").
	if elapsed := time.Since(corrupted); elapsed > interval+time.Second {
		t.Fatalf("detection took %v, want ≤ one interval", elapsed)
	}
	if got := net.Metrics().Counter("watchdog_violations_total{coverage}").Value(); got == 0 {
		t.Fatal("coverage violation not attributed to its check family")
	}
	last := w.Last()
	if len(last) == 0 || last[0].Check != CheckCoverage || last[0].Broker != 2 {
		t.Fatalf("Last() = %v, want coverage violation at broker 2", last)
	}

	// The violation must also be journaled with the broker id.
	found := false
	for _, r := range rec.Records() {
		if r.Type == flight.EvWatchdogViolation && r.Broker == 2 && strings.Contains(r.Note, "coverage") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("violation missing from flight journal")
	}

	w.Stop()
	w.Stop() // idempotent
	checks := net.Metrics().Counter("watchdog_checks").Value()
	time.Sleep(3 * interval)
	if got := net.Metrics().Counter("watchdog_checks").Value(); got != checks {
		t.Fatalf("watchdog kept checking after Stop: %d -> %d", checks, got)
	}
}

// TestWatchdogViolationStrings pins the operator-facing formatting.
func TestWatchdogViolationStrings(t *testing.T) {
	v := Violation{Check: CheckCoverage, Broker: 3, Detail: "x"}
	if got := v.String(); got != "coverage[broker 3]: x" {
		t.Fatalf("String() = %q", got)
	}
	v = Violation{Check: CheckBytes, Broker: -1, Detail: "y"}
	if got := v.String(); got != "bytes: y" {
		t.Fatalf("String() = %q", got)
	}
}
