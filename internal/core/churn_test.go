package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/netsim"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// churnSubText names the deterministic subscription j of broker i shared
// by the differential test's networks.
func churnSubText(broker, j int) string {
	return fmt.Sprintf(`price = %d`, 100000+broker*100+j)
}

// TestChurnDifferentialConvergence is the differential oracle for
// retraction semantics. A network that disseminated its subscriptions and
// then churned half of them away must, through retraction deltas alone,
// purge every remote copy of a withdrawn subscription — and its next
// full-sync period must leave every broker byte-identical to the same
// period of a freshly built network that only ever saw the survivors.
//
// Subscriptions all exist before period 1, so one period spreads them as
// far as Algorithm 2's degree-directed flow ever carries them; the
// retractions, entering the deltas together, travel the same routes in
// one more period. The schedule is therefore: spread, churn, spread
// retractions, full sync.
func TestChurnDifferentialConvergence(t *testing.T) {
	g := topology.Figure7Tree()
	s := stockSchema(t)
	const perBroker = 4

	subscribeAll := func(net *Network, dropDoomedEarly bool) []subid.ID {
		t.Helper()
		var doomed []subid.ID
		for i := 0; i < g.Len(); i++ {
			for j := 0; j < perBroker; j++ {
				sub, err := schema.ParseSubscription(s, churnSubText(i, j))
				if err != nil {
					t.Fatal(err)
				}
				id, err := net.Subscribe(topology.NodeID(i), sub, func(subid.ID, *schema.Event) {})
				if err != nil {
					t.Fatal(err)
				}
				if j%2 == 1 {
					if dropDoomedEarly {
						// Withdrawn before any propagation: removed purely
						// locally, so the survivors keep identical local ids.
						if err := net.Unsubscribe(id); err != nil {
							t.Fatal(err)
						}
					} else {
						doomed = append(doomed, id)
					}
				}
			}
		}
		return doomed
	}

	churned, err := New(Config{Topology: g, Schema: s, Mode: interval.Lossy, FullSyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(churned.Close)
	doomed := subscribeAll(churned, false)
	if _, err := churned.Propagate(); err != nil { // period 1: rows spread
		t.Fatal(err)
	}
	// The test is only meaningful if churned rows actually reached remote
	// brokers.
	remoteDoomed := 0
	for i := 0; i < g.Len(); i++ {
		snap, _ := churned.Broker(topology.NodeID(i)).SnapshotMerged()
		for _, id := range doomed {
			if id.Broker != subid.BrokerID(i) && snap.Contains(id) {
				remoteDoomed++
			}
		}
	}
	if remoteDoomed == 0 {
		t.Fatal("no doomed subscription ever left its owner — dissemination broken")
	}
	for _, id := range doomed {
		if err := churned.Unsubscribe(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := churned.Propagate(); err != nil { // period 2: retraction deltas
		t.Fatal(err)
	}
	// Retraction deltas alone — no full sync yet — must have purged every
	// remote copy of the withdrawn subscriptions.
	for i := 0; i < g.Len(); i++ {
		snap, _ := churned.Broker(topology.NodeID(i)).SnapshotMerged()
		for _, id := range doomed {
			if snap.Contains(id) {
				t.Fatalf("broker %d still holds withdrawn subscription %v after retraction deltas", i, id)
			}
		}
	}
	if _, err := churned.Propagate(); err != nil { // period 3: full sync
		t.Fatal(err)
	}

	// Survivor network: identical live set, never saw the churn. Its first
	// period is definitionally what the churned network's resync must
	// reproduce.
	fresh, err := New(Config{Topology: g, Schema: s, Mode: interval.Lossy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fresh.Close)
	subscribeAll(fresh, true)
	if _, err := fresh.Propagate(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < g.Len(); i++ {
		cSum, cMask := churned.Broker(topology.NodeID(i)).SnapshotMerged()
		fSum, fMask := fresh.Broker(topology.NodeID(i)).SnapshotMerged()
		cBits, fBits := cMask.Bits(), fMask.Bits()
		if len(cBits) != len(fBits) {
			t.Fatalf("broker %d: Merged_Brokers %v, fresh network has %v", i, cBits, fBits)
		}
		for k := range cBits {
			if cBits[k] != fBits[k] {
				t.Fatalf("broker %d: Merged_Brokers %v, fresh network has %v", i, cBits, fBits)
			}
		}
		cEnc, fEnc := cSum.Encode(nil), fSum.Encode(nil)
		if !bytes.Equal(cEnc, fEnc) {
			t.Errorf("broker %d: merged summary after churn+resync differs from survivor-only build (%d vs %d bytes)",
				i, len(cEnc), len(fEnc))
		}
	}
	if v := churned.CheckInvariants(); len(v) != 0 {
		t.Fatalf("invariant violations after convergence: %v", v)
	}
}

// TestFullSyncRepairsLostRetraction: a retraction delta lost to a fault
// leaves a stale remote row that pure deltas can never remove; the next
// full-sync resync — the receiver replaces every row owned by the
// sender's claimed brokers — must purge it within one FullSyncEvery
// cycle. A control network without full syncs keeps the stale row
// forever, proving the repair comes from the resync semantics.
func TestFullSyncRepairsLostRetraction(t *testing.T) {
	// On the 1–2–1 line, broker 1 is exactly the receiver set of broker
	// 0's summary (see propagation's TestRunCarriesRetractions), so the
	// stale copy and its repair path are fully deterministic.
	g := topology.New("line3", 3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	s := stockSchema(t)

	run := func(fullSyncEvery int) *Network {
		t.Helper()
		net, err := New(Config{Topology: g, Schema: s, Mode: interval.Lossy, FullSyncEvery: fullSyncEvery})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(net.Close)
		sub, err := schema.ParseSubscription(s, churnSubText(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		id, err := net.Subscribe(0, sub, func(subid.ID, *schema.Event) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Propagate(); err != nil { // period 1: row reaches broker 1
			t.Fatal(err)
		}
		if snap, _ := net.Broker(1).SnapshotMerged(); !snap.Contains(id) {
			t.Fatal("subscription never reached broker 1")
		}
		net.InjectFaults(func(m netsim.Message) bool { return m.Kind == netsim.KindSummary })
		if err := net.Unsubscribe(id); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Propagate(); err != nil { // period 2: retraction delta lost
			t.Fatal(err)
		}
		net.InjectFaults(nil)
		if snap, _ := net.Broker(1).SnapshotMerged(); !snap.Contains(id) {
			t.Fatal("stale row vanished without the retraction arriving — loss not injected?")
		}
		if _, err := net.Propagate(); err != nil { // period 3: full sync (or plain delta for the control)
			t.Fatal(err)
		}
		snap, _ := net.Broker(1).SnapshotMerged()
		if fullSyncEvery > 0 {
			if snap.Contains(id) {
				t.Fatal("stale row survived the full-sync resync")
			}
			if v := net.CheckInvariants(); len(v) != 0 {
				t.Fatalf("invariant violations after repair: %v", v)
			}
		} else if !snap.Contains(id) {
			t.Fatal("control: stale row disappeared under pure deltas — repair not attributable to full sync")
		}
		return net
	}

	run(3) // period 3 is the resync
	run(0) // control: pure deltas never repair
}

// TestChurnSoakWatchdog drives sustained random churn through the live
// engine — concurrent publishes, retraction deltas every period, full
// syncs every 5th — and asserts the invariant watchdog never fires.
// Run with -race: the soak is the e2e exercise of the churn paths'
// locking.
func TestChurnSoakWatchdog(t *testing.T) {
	g := topology.Figure7Tree()
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(Config{Topology: g, Schema: gen.Schema(), Mode: interval.Lossy, FullSyncEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	ch, err := workload.NewChurn(gen, workload.ChurnConfig{Rate: 30, MeanLifetime: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent publisher: events flow while churn and propagation run,
	// with watchdog passes racing the engine as in production.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		evGen, err := workload.NewGenerator(workload.DefaultConfig())
		if err != nil {
			panic(err)
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := net.Publish(topology.NodeID(i%g.Len()), evGen.Event(0.5)); err != nil {
				panic(err)
			}
			net.CheckInvariants()
		}
	}()

	ids := make(map[int]subid.ID)
	const periods = 15
	for p := 1; p <= periods; p++ {
		cp := ch.Period()
		for _, h := range cp.Died {
			if err := net.Unsubscribe(ids[h]); err != nil {
				t.Fatal(err)
			}
			delete(ids, h)
		}
		for _, b := range cp.Born {
			id, err := net.Subscribe(topology.NodeID(b.Handle%g.Len()), b.Sub, func(subid.ID, *schema.Event) {})
			if err != nil {
				t.Fatal(err)
			}
			ids[b.Handle] = id
		}
		if _, err := net.Propagate(); err != nil {
			t.Fatal(err)
		}
		if v := net.CheckInvariants(); len(v) != 0 {
			t.Fatalf("period %d: invariant violations: %v", p, v)
		}
	}
	close(stop)
	wg.Wait()
	net.Flush()

	// Period 15 was a full sync with no churn since its start: the
	// convergence invariant is armed and must hold exactly.
	if v := net.CheckInvariants(); len(v) != 0 {
		t.Fatalf("violations at quiescence: %v", v)
	}

	// Negative control: a stale-row divergence (simulated by deleting one
	// remote row from a merged summary) must trip the convergence check.
	// Pick a broker/id pair where the remote merged copy actually holds
	// the row — post-sync coverage is partial, like a fresh period 1.
	corrupted := false
seek:
	for v := 0; v < g.Len(); v++ {
		victim := topology.NodeID(v)
		snap, _ := net.Broker(victim).SnapshotMerged()
		for _, id := range ids {
			if id.Broker != subid.BrokerID(v) && snap.Contains(id) {
				net.Broker(victim).CorruptMerged(id)
				corrupted = true
				break seek
			}
		}
	}
	if !corrupted {
		t.Fatal("no broker holds any remote subscription — soak never disseminated")
	}
	violations := net.CheckInvariants()
	found := false
	for _, v := range violations {
		if v.Check == CheckConvergence {
			found = true
		}
	}
	if !found {
		t.Fatalf("convergence check missed a corrupted merged summary (got %v)", violations)
	}
}
