package broker

import (
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
)

// TestFPAttributionChargesExactTriple is the attribution acceptance
// test: a summary-admitted event that fails exact match must charge the
// false positive to precisely the (attribute, operator-class,
// owner-broker) triple of the first failing constraint, and a true
// delivery must credit precision on the constrained attributes.
func TestFPAttributionChargesExactTriple(t *testing.T) {
	s := testSchema(t)
	reg := metrics.NewRegistry()
	attrib := NewFPAttributor(s, reg, nil, 16)
	b, err := New(Config{ID: 2, Schema: s, Mode: interval.Lossy, NumBrokers: 4, Attribution: attrib})
	if err != nil {
		t.Fatal(err)
	}
	// The lossy fold that creates summary false positives (Section 3.1):
	// subA's range row (100, ∞) on price covers subB's equality point
	// 150, so subB's id is folded into the range row and any price above
	// 100 admits subB. An OTE/200 event then reaches c3 for subB alone —
	// subA's symbol row is eq AAA — and fails exact match on subB's
	// price constraint: the charge must be exactly (price, eq, broker 2).
	subA, err := schema.ParseSubscription(s, `symbol = AAA && price > 100`)
	if err != nil {
		t.Fatal(err)
	}
	subB, err := schema.ParseSubscription(s, `symbol = OTE && price = 150`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(subA, noDeliver); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(subB, noDeliver); err != nil {
		t.Fatal(err)
	}

	ev, err := schema.ParseEvent(s, "symbol=OTE price=200")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.MatchMerged(ev)); got != 1 {
		t.Fatalf("merged summary admitted %d candidates, want 1 (the folded eq row)", got)
	}
	if n := b.DeliverExact(ev); n != 0 {
		t.Fatalf("false positive delivered %d times", n)
	}
	priceID, ok := s.ID("price")
	if !ok {
		t.Fatal("schema lost the price attribute")
	}
	rep := attrib.Report(0)
	if rep.Total != 1 || len(rep.TopK) != 1 {
		t.Fatalf("report after one FP event: total=%d topK=%+v", rep.Total, rep.TopK)
	}
	got := rep.TopK[0]
	if got.Attr != "price" || got.AttrID != int(priceID) || got.Class != "eq" || got.Owner != 2 {
		t.Fatalf("charged triple = %+v, want (price, eq, owner 2)", got)
	}
	if got.Count != 1 || got.ErrBound != 0 {
		t.Fatalf("count/err = %d/%d, want 1/0", got.Count, got.ErrBound)
	}

	// A true delivery credits every constrained attribute; precision for
	// price becomes 1/(1+1) with one FP and one delivery against it.
	ev3, err := schema.ParseEvent(s, "symbol=OTE price=150")
	if err != nil {
		t.Fatal(err)
	}
	if n := b.DeliverExact(ev3); n != 1 {
		t.Fatalf("true match delivered %d times, want 1", n)
	}
	rep = attrib.Report(0)
	var price *AttrPrecision
	for i := range rep.Attrs {
		if rep.Attrs[i].Attr == "price" {
			price = &rep.Attrs[i]
		}
	}
	if price == nil {
		t.Fatalf("no precision row for price: %+v", rep.Attrs)
	}
	if price.Delivered != 1 || price.FalsePos != 1 || price.Precision != 0.5 {
		t.Fatalf("price precision = %+v, want delivered 1, fp 1, precision 0.5", price)
	}

	// Registry counters mirror the tallies under per-attribute labels.
	m := reg.Map()
	if m["fp_attr_false_positives{price}"] != 1 || m["fp_attr_deliveries{price}"] != 1 {
		t.Fatalf("registry rows: fp=%v del=%v, want 1/1",
			m["fp_attr_false_positives{price}"], m["fp_attr_deliveries{price}"])
	}
}

// TestFPAttributionPrefixFold is the string-side twin: an equality row
// folded into a covering prefix row admits events the equality never
// matches, and the charge names the symbol attribute under the eq class
// with the owning broker.
func TestFPAttributionPrefixFold(t *testing.T) {
	s := testSchema(t)
	attrib := NewFPAttributor(s, nil, nil, 16)
	b, err := New(Config{ID: 3, Schema: s, Mode: interval.Lossy, NumBrokers: 4, Attribution: attrib})
	if err != nil {
		t.Fatal(err)
	}
	subE, err := schema.ParseSubscription(s, `symbol >* OT && price < 10`)
	if err != nil {
		t.Fatal(err)
	}
	subF, err := schema.ParseSubscription(s, `symbol = OTE && price > 100`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(subE, noDeliver); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(subF, noDeliver); err != nil {
		t.Fatal(err)
	}
	// symbol=OTX admits subF through the folded prefix-OT row; price=200
	// rules subE out (its price row is (-∞, 10)), so subF is the sole
	// candidate and fails on its symbol equality.
	ev, err := schema.ParseEvent(s, "symbol=OTX price=200")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.MatchMerged(ev)); got != 1 {
		t.Fatalf("merged summary admitted %d candidates, want 1", got)
	}
	if n := b.DeliverExact(ev); n != 0 {
		t.Fatalf("false positive delivered %d times", n)
	}
	symbolID, _ := s.ID("symbol")
	rep := attrib.Report(0)
	if len(rep.TopK) != 1 {
		t.Fatalf("topK = %+v, want one entry", rep.TopK)
	}
	got := rep.TopK[0]
	if got.Attr != "symbol" || got.AttrID != int(symbolID) || got.Class != "eq" || got.Owner != 3 {
		t.Fatalf("charged triple = %+v, want (symbol, eq, owner 3)", got)
	}
}

// TestFPAttributionStaleCharges covers the two "stale" paths: a
// candidate key with no live subscription behind it, and a false
// positive with no local candidate at all (the sender's view of this
// broker was stale) — both charge the no-attribute sentinel.
func TestFPAttributionStaleCharges(t *testing.T) {
	s := testSchema(t)
	attrib := NewFPAttributor(s, nil, nil, 16)
	b, err := New(Config{ID: 1, Schema: s, Mode: interval.Lossy, NumBrokers: 2, Attribution: attrib})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := schema.ParseEvent(s, "symbol=OTE price=1")
	if err != nil {
		t.Fatal(err)
	}
	// No subscriptions at all: DeliverExact finds no candidates, so the
	// charge is (no attribute, stale, self).
	if n := b.DeliverExact(ev); n != 0 {
		t.Fatalf("delivered %d on an empty broker", n)
	}
	rep := attrib.Report(0)
	if len(rep.TopK) != 1 {
		t.Fatalf("topK = %+v, want one stale entry", rep.TopK)
	}
	e := rep.TopK[0]
	if e.Attr != "-" || e.AttrID != int(FPNoAttr) || e.Class != "stale" || e.Owner != 1 {
		t.Fatalf("stale charge = %+v, want (-, stale, owner 1)", e)
	}
}

// TestFPAttributorSpaceSavingBound exercises eviction: with k=2, a
// third distinct triple evicts the smallest and inherits its count as
// the documented error bound, keeping space bounded while the heavy
// hitter stays exact.
func TestFPAttributorSpaceSavingBound(t *testing.T) {
	s := testSchema(t)
	a := NewFPAttributor(s, nil, nil, 2)
	priceID, _ := s.ID("price")
	symbolID, _ := s.ID("symbol")
	for i := 0; i < 5; i++ {
		a.ObserveFP(priceID, FPClassRange, 0) // heavy hitter
	}
	a.ObserveFP(symbolID, FPClassEq, 0)    // light entry, count 1
	a.ObserveFP(symbolID, FPClassGlob, 1)  // evicts the light entry
	rep := a.Report(0)
	if rep.Total != 7 {
		t.Fatalf("total = %d, want 7", rep.Total)
	}
	if len(rep.TopK) != 2 {
		t.Fatalf("topK size = %d, want 2 (bounded)", len(rep.TopK))
	}
	if top := rep.TopK[0]; top.Class != "range" || top.Count != 5 || top.ErrBound != 0 {
		t.Fatalf("heavy hitter = %+v, want exact count 5", top)
	}
	if ev := rep.TopK[1]; ev.Class != "glob" || ev.Count != 2 || ev.ErrBound != 1 {
		t.Fatalf("evictor = %+v, want count 2 with error bound 1", ev)
	}
	// Nil attributor is valid everywhere.
	var nilA *FPAttributor
	nilA.ObserveFP(priceID, FPClassRange, 0)
	nilA.CreditDelivery(subid.Mask{})
	if r := nilA.Report(3); r.Total != 0 || len(r.TopK) != 0 {
		t.Fatalf("nil attributor reported %+v", r)
	}
}

// benchAttribMask builds an attributor and a subscription attribute
// mask for the delivery-credit hot path.
func benchAttribMask(b *testing.B) (*FPAttributor, subid.Mask) {
	b.Helper()
	s := testSchema(b)
	reg := metrics.NewRegistry()
	a := NewFPAttributor(s, reg, nil, 16)
	br, err := New(Config{ID: 0, Schema: s, Mode: interval.Lossy, NumBrokers: 1, Attribution: a})
	if err != nil {
		b.Fatal(err)
	}
	sub, err := schema.ParseSubscription(s, `symbol = OTE && price > 100`)
	if err != nil {
		b.Fatal(err)
	}
	id, err := br.Subscribe(sub, noDeliver)
	if err != nil {
		b.Fatal(err)
	}
	return a, id.Attrs
}

// BenchmarkCreditDelivery is the delivery-side attribution hot path (a
// manual bit-walk over the c3 mask plus atomic adds): CI gates this
// benchmark at 0 allocs/op.
func BenchmarkCreditDelivery(b *testing.B) {
	a, mask := benchAttribMask(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.CreditDelivery(mask)
	}
}

// BenchmarkObserveFPSteadyState measures the false-positive charge once
// its triple is established in the top-K (the common case under a
// sustained over-approximation): CI gates this at 0 allocs/op.
func BenchmarkObserveFPSteadyState(b *testing.B) {
	a, _ := benchAttribMask(b)
	priceID, _ := testSchema(b).ID("price")
	a.ObserveFP(priceID, FPClassRange, 0) // establish the bucket
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ObserveFP(priceID, FPClassRange, 0)
	}
}
