package broker

import (
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
)

// TestTakePeriodSummaryFullSync: a full-sync period is a true resync —
// the broker rebuilds its merged summary from its own raw subscriptions
// (discarding remote rows, which the period re-delivers from their
// owners), resets Merged_Brokers to itself, drains the delta, and ships a
// clone that later merges cannot corrupt.
func TestTakePeriodSummaryFullSync(t *testing.T) {
	s := testSchema(t)
	b := newBroker(t, 0, 3)
	sub, _ := schema.ParseSubscription(s, `price > 1`)
	if _, err := b.Subscribe(sub, noDeliver); err != nil {
		t.Fatal(err)
	}
	// Fold in a remote broker's summary, as Algorithm 2 would.
	remote := summary.New(s, interval.Lossy)
	rsub, _ := schema.ParseSubscription(s, `price < -5`)
	rid := subid.ID{Broker: 2, Local: 0, Attrs: subid.NewMask(s.Len())}
	rid.Attrs.Set(1)
	if err := remote.Insert(rid, rsub); err != nil {
		t.Fatal(err)
	}
	remoteSet := subid.NewMask(3)
	remoteSet.Set(2)
	if err := b.MergeEncodedSummary(remote.Encode(nil), remoteSet); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.MergedBrokerCount != 2 {
		t.Fatalf("pre-sync Merged_Brokers = %d, want 2", st.MergedBrokerCount)
	}

	full := b.TakePeriodSummary(true)
	if full.NumSubscriptions() != 1 {
		t.Fatalf("full-sync summary subs = %d, want own only = 1", full.NumSubscriptions())
	}
	// The resync dropped the stale remote rows and reset Merged_Brokers.
	if st := b.Stats(); st.MergedSummarySubs != 1 || st.MergedBrokerCount != 1 {
		t.Fatalf("post-sync merged = %d subs / %d brokers, want 1 / 1",
			st.MergedSummarySubs, st.MergedBrokerCount)
	}
	// The delta was drained by the full sync.
	if d := b.TakePeriodSummary(false); d.NumSubscriptions() != 0 {
		t.Fatalf("delta after full sync = %d subs, want 0", d.NumSubscriptions())
	}
	// The full-sync summary is a clone: growing the broker's merged state
	// must not affect it.
	sub2, _ := schema.ParseSubscription(s, `symbol = XYZ`)
	if _, err := b.Subscribe(sub2, noDeliver); err != nil {
		t.Fatal(err)
	}
	if full.NumSubscriptions() != 1 {
		t.Fatalf("full-sync summary grew to %d subs; not a clone", full.NumSubscriptions())
	}
}

// TestMergeEncodedSummaryMatchesMergeSummary: the wire-form merge is the
// same state transition as decode-plus-MergeSummary.
func TestMergeEncodedSummaryMatchesMergeSummary(t *testing.T) {
	s := testSchema(t)
	sub, _ := schema.ParseSubscription(s, `price > 10 && symbol = OTE`)
	remote := summary.New(s, interval.Lossy)
	rid := subid.ID{Broker: 1, Local: 7, Attrs: subid.NewMask(s.Len())}
	rid.Attrs.Set(0)
	rid.Attrs.Set(1)
	if err := remote.Insert(rid, sub); err != nil {
		t.Fatal(err)
	}
	wire := remote.Encode(nil)
	set := subid.NewMask(3)
	set.Set(1)

	viaDecode := newBroker(t, 0, 3)
	decoded, err := summary.Decode(s, wire)
	if err != nil {
		t.Fatal(err)
	}
	if err := viaDecode.MergeSummary(decoded, set); err != nil {
		t.Fatal(err)
	}
	direct := newBroker(t, 0, 3)
	if err := direct.MergeEncodedSummary(wire, set); err != nil {
		t.Fatal(err)
	}
	a, aSet := viaDecode.SnapshotMerged()
	b, bSet := direct.SnapshotMerged()
	if string(a.Encode(nil)) != string(b.Encode(nil)) {
		t.Fatal("merged state differs between MergeSummary and MergeEncodedSummary")
	}
	if len(aSet.Bits()) != len(bSet.Bits()) || aSet.Bits()[1] != bSet.Bits()[1] {
		t.Fatalf("Merged_Brokers differ: %v vs %v", aSet.Bits(), bSet.Bits())
	}
	// A malformed payload must not extend Merged_Brokers.
	bad := newBroker(t, 0, 3)
	if err := bad.MergeEncodedSummary(wire[:len(wire)-2], set); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, badSet := bad.SnapshotMerged(); badSet.Count() != 1 {
		t.Fatalf("Merged_Brokers extended on failed merge: %v", badSet.Bits())
	}
}
