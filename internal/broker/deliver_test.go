package broker

import (
	"slices"
	"sync"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/workload"
)

// deliverWorkload returns a generator tuned for match density: few
// constrained attributes per subscription, many attributes per event, all
// constraints drawn from the canonical ranges/patterns. The default Table
// 2 mix (5-of-10 attrs on both sides) makes full-conjunction matches
// vanishingly rare, which would leave a delivery differential vacuous.
func deliverWorkload(t testing.TB, seed int64) *workload.Generator {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.AttrsPerSub = 2
	cfg.AttrsPerEvent = 8
	cfg.Subsumption = 1.0
	cfg.Seed = seed
	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// deliverRecorder captures the id set of one synchronous DeliverExact*
// call at a time.
type deliverRecorder struct {
	mu  sync.Mutex
	ids []uint64
}

func (r *deliverRecorder) deliver(id subid.ID, _ *schema.Event) {
	r.mu.Lock()
	r.ids = append(r.ids, id.Key())
	r.mu.Unlock()
}

func (r *deliverRecorder) take() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.ids
	r.ids = nil
	slices.Sort(out)
	return out
}

// loadedBroker returns a broker with nSubs workload subscriptions, all
// delivering into the shared recorder.
func loadedBroker(t testing.TB, gen *workload.Generator, nSubs, shards int) (*Broker, *deliverRecorder) {
	t.Helper()
	b, err := New(Config{
		ID: 0, Schema: gen.Schema(), Mode: interval.Lossy,
		NumBrokers: 1, MatchShards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &deliverRecorder{}
	for i := 0; i < nSubs; i++ {
		if _, err := b.Subscribe(gen.Subscription(), rec.deliver); err != nil {
			t.Fatal(err)
		}
	}
	return b, rec
}

// TestDeliverExactPrunedMatchesScan is the delivery-set regression test
// for the summary-pruned exact-match path: for every event, the pruned
// DeliverExact must invoke exactly the consumers the full-scan reference
// does, in count and in identity.
func TestDeliverExactPrunedMatchesScan(t *testing.T) {
	for _, shards := range []int{1, 4} {
		gen := deliverWorkload(t, 7)
		b, rec := loadedBroker(t, gen, 2000, shards)
		total := 0
		for i := 0; i < 300; i++ {
			ev := gen.Event(0.9)
			nPruned := b.DeliverExact(ev)
			pruned := rec.take()
			nScan := b.DeliverExactScan(ev)
			scanned := rec.take()
			if nPruned != nScan {
				t.Fatalf("shards=%d event %d: pruned delivered %d, scan %d", shards, i, nPruned, nScan)
			}
			if !slices.Equal(pruned, scanned) {
				t.Fatalf("shards=%d event %d: delivery sets diverge\npruned: %v\nscan:   %v",
					shards, i, pruned, scanned)
			}
			total += nScan
		}
		if total == 0 {
			t.Fatal("workload produced zero deliveries; the differential is vacuous")
		}
	}
}

// TestMatchSnapshotFreshness proves every mutator retires the published
// snapshot: matches immediately reflect Subscribe, MergeSummary, and
// Unsubscribe with no flush or propagation step in between.
func TestMatchSnapshotFreshness(t *testing.T) {
	s := testSchema(t)
	a := newBroker(t, 0, 2)
	ev, _ := schema.ParseEvent(s, `price=50`)

	if got := len(a.MatchMerged(ev)); got != 0 {
		t.Fatalf("empty broker matched %d ids", got)
	}
	sub, _ := schema.ParseSubscription(s, `price > 10`)
	id, err := a.Subscribe(sub, noDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a.MatchMerged(ev)); got != 1 {
		t.Fatalf("post-Subscribe match = %d ids, want 1", got)
	}

	// A remote merge is visible to the very next match, and the leased
	// Merged_Brokers set is the same generation.
	remote := newBroker(t, 1, 2)
	if _, err := remote.Subscribe(sub, noDeliver); err != nil {
		t.Fatal(err)
	}
	sum, set := remote.SnapshotMerged()
	if err := a.MergeSummary(sum, set); err != nil {
		t.Fatal(err)
	}
	if got := len(a.MatchMerged(ev)); got != 2 {
		t.Fatalf("post-merge match = %d ids, want 2", got)
	}
	lease := a.AcquireMatcher()
	if mb := lease.MergedBrokers(); !mb.Has(1) {
		t.Fatal("leased Merged_Brokers missing merged peer")
	}
	lease.Release()

	// Unsubscribe: the exact path must stop delivering immediately, even
	// if the lossy merged row lingers until compaction.
	if err := a.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if got := a.DeliverExact(ev); got != 0 {
		t.Fatalf("post-Unsubscribe DeliverExact = %d, want 0", got)
	}
}

// TestMatchLatencyObserved checks the satellite wiring: MatchMerged and
// DeliverExact feed the match histogram / delivery counters when a
// registry is attached.
func TestMatchLatencyObserved(t *testing.T) {
	s := testSchema(t)
	reg := metrics.NewRegistry()
	b, err := New(Config{ID: 0, Schema: s, Mode: interval.Lossy, NumBrokers: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := schema.ParseSubscription(s, `price > 10`)
	if _, err := b.Subscribe(sub, noDeliver); err != nil {
		t.Fatal(err)
	}
	ev, _ := schema.ParseEvent(s, `price=50`)
	for i := 0; i < 5; i++ {
		b.MatchMerged(ev)
	}
	b.MatchSeconds(0.001) // the batched path's amortized observation
	h := reg.HistogramVec("broker_match_seconds", metrics.DefLatencyBuckets).With("0")
	if got := h.Count(); got != 6 {
		t.Fatalf("broker_match_seconds count = %d, want 6", got)
	}
	if got := b.DeliverExact(ev); got != 1 {
		t.Fatalf("DeliverExact = %d, want 1", got)
	}
}

// TestConcurrentMatchAndMutate races the lock-free read path (MatchMerged,
// DeliverExact, batch leases) against every snapshot-retiring mutator.
// Under -race this is the snapshot-swap memory-model regression test.
func TestConcurrentMatchAndMutate(t *testing.T) {
	gen := deliverWorkload(t, 11)
	b, _ := loadedBroker(t, gen, 200, 2)
	remote, err := New(Config{ID: 1, Schema: gen.Schema(), Mode: interval.Lossy, NumBrokers: 2, MatchShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := remote.Subscribe(gen.Subscription(), noDeliver); err != nil {
			t.Fatal(err)
		}
	}
	// Pre-generate events and subscriptions: the generator's rng is not
	// concurrency-safe.
	events := make([]*schema.Event, 64)
	for i := range events {
		events[i] = gen.Event(0.9)
	}
	churnSubs := make([]*schema.Subscription, 64)
	for i := range churnSubs {
		churnSubs[i] = gen.Subscription()
	}
	sum, set := remote.SnapshotMerged()

	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ev := events[(r+i)%len(events)]
				switch i % 3 {
				case 0:
					b.MatchMerged(ev)
				case 1:
					b.DeliverExact(ev)
				case 2:
					lease := b.AcquireMatcher()
					res := lease.MatchBatch(events[:8])
					_ = lease.MergedBrokers().Count()
					_ = res
					lease.Release()
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(churnSubs); i++ {
			id, err := b.Subscribe(churnSubs[i], noDeliver)
			if err != nil {
				t.Errorf("subscribe: %v", err)
				return
			}
			if i%2 == 0 {
				if err := b.Unsubscribe(id); err != nil {
					t.Errorf("unsubscribe: %v", err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := b.MergeSummary(sum, set); err != nil {
				t.Errorf("merge: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// benchDeliverBroker builds the 10k-subscription broker the ISSUE's
// pruning benchmark calls for, with events pre-generated.
func benchDeliverBroker(b *testing.B) (*Broker, []*schema.Event) {
	b.Helper()
	gen := deliverWorkload(b, 13)
	br, err := New(Config{ID: 0, Schema: gen.Schema(), Mode: interval.Lossy, NumBrokers: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if _, err := br.Subscribe(gen.Subscription(), noDeliver); err != nil {
			b.Fatal(err)
		}
	}
	events := make([]*schema.Event, 256)
	for i := range events {
		events[i] = gen.Event(0.9)
	}
	return br, events
}

func BenchmarkDeliverExactPruned(b *testing.B) {
	br, events := benchDeliverBroker(b)
	br.DeliverExact(events[0]) // build the snapshot outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.DeliverExact(events[i%len(events)])
	}
}

func BenchmarkDeliverExactScan(b *testing.B) {
	br, events := benchDeliverBroker(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.DeliverExactScan(events[i%len(events)])
	}
}
