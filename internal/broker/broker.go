// Package broker implements a single broker node of the live engine: the
// raw subscription store with exact matching (consumers are attached
// here), the broker's own summary delta for the next propagation period,
// and the multi-broker merged summary plus Merged_Brokers set maintained
// by Algorithm 2.
//
// The summary structures are the lossy pre-filter used for routing; before
// notifying a consumer, the owning broker re-matches the event against the
// raw subscription, so consumers never receive spurious events.
package broker

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/siena"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
)

// DeliveryFunc is invoked for every event matching a subscription, on the
// owning broker's handler goroutine. Implementations must not block for
// long and must not call back into the Broker.
type DeliveryFunc func(id subid.ID, ev *schema.Event)

// subEntry is one raw subscription with its consumer.
type subEntry struct {
	id      subid.ID
	sub     *schema.Subscription
	deliver DeliveryFunc
	// propagated is set once the subscription's rows have left this broker
	// (drained into a period delta, or shipped whole in a full sync).
	// Unsubscribing a propagated subscription must queue a retraction;
	// unsubscribing an unpropagated one is purely local.
	propagated bool
	// skipped marks a subscription the subsumption filter kept out of
	// deltas (Section 6 combination); it is matched locally but routed via
	// its subsuming subscription.
	skipped bool
}

// Broker is one node's state. All methods are safe for concurrent use.
type Broker struct {
	id     topology.NodeID
	schema *schema.Schema
	mode   interval.Mode

	mu            sync.Mutex
	subs          map[subid.LocalID]*subEntry
	nextLocal     subid.LocalID
	maxLocal      subid.LocalID
	delta         *summary.Summary // new subscriptions since the last TakeDelta
	merged        *summary.Summary // own + received (multi-broker summary)
	mergedBrokers subid.Mask       // Merged_Brokers

	// The lock-free match read path (RCU-style). matchGen counts merged-
	// summary mutations: every mutator bumps it under b.mu. snap publishes
	// an immutable snapshot of the matcher state (sharded deep copies of
	// merged plus a cloned Merged_Brokers mask) stamped with the generation
	// it was built from. Readers load snap with one atomic load; when its
	// generation is stale they rebuild under b.mu (double-checked) and
	// swap. Matching therefore never blocks behind a concurrent
	// Subscribe/MergeEncodedSummary, and mutators never wait for matchers.
	matchShards  int
	matchGen     atomic.Uint64
	snap         atomic.Pointer[matchSnapshot]
	communicated map[topology.NodeID]bool
	filter       *siena.SubsumptionFilter // nil unless delta filtering is on
	filteredSubs int                      // subscriptions kept out of deltas
	numBrokers   int
	// retired fences local ids whose retraction is still in flight: reusing
	// the id before every remote merged summary has dropped the old rows
	// would attach stale coverage to the new subscription. The fence lifts
	// when a full-sync period completes (FinishFullSync), because the
	// resync rebuilds all remote state from live subscriptions only.
	retired map[subid.LocalID]struct{}
	// syncing holds the ids that were already fenced when the current
	// full-sync payload was taken; only their fences lift at
	// FinishFullSync — an id retired mid-period was in that payload and
	// must stay fenced until the next sync.
	syncing     []subid.LocalID
	removals    int   // merged-summary removals since the last compact
	compactions int64 // amortized compactions performed
	matcherObs  *summary.MatcherObs
	obs         *brokerObs       // nil unless Config.Metrics was set
	rec         *flight.Recorder // nil unless Config.Flight was set
	attrib      *FPAttributor    // nil unless Config.Attribution was set

	// Convergence epoch vector (under b.mu): peerEpochs[p] is the highest
	// epoch of any successfully applied summary payload whose
	// Merged_Brokers set claimed coverage of peer p (-1 = never seen).
	// lastFullSyncEpoch / lastRetractEpoch are the highest applied epochs
	// of full-sync and retraction-carrying payloads respectively. Together
	// they answer "how stale is this broker's view of peer p, in periods"
	// without any extra wire traffic beyond the payload epoch stamp.
	peerEpochs        []int64
	lastFullSyncEpoch int64
	lastRetractEpoch  int64
}

// EpochInfo is the decoded convergence stamp of one summary payload:
// the sender's period number plus the payload-class flags. Epoch <= 0
// means the payload carried no stamp (hand-built merges, tests) and
// leaves the epoch vector untouched.
type EpochInfo struct {
	Epoch    int64
	FullSync bool
	Retract  bool
}

// EpochState is a snapshot of the broker's convergence epoch vector.
type EpochState struct {
	// Peers[p] is the last applied epoch claiming coverage of peer p
	// (-1 = no stamped payload has ever claimed p).
	Peers []int64
	// LastFullSync / LastRetract are the last applied full-sync and
	// retraction-carrying payload epochs (-1 = never).
	LastFullSync int64
	LastRetract  int64
}

// brokerObs holds this broker's registry instruments, resolved once at
// New under "name{broker}" labels. The histogram observations bracket the
// two latency-sensitive operations (merged-summary matching and wire-form
// merges); everything else is counter/gauge updates on paths already
// holding b.mu.
type brokerObs struct {
	matchSeconds   *metrics.Histogram // MatchMerged latency
	mergeSeconds   *metrics.Histogram // MergeEncodedSummary latency
	deliveries     *metrics.Counter   // exact consumer deliveries
	falsePositives *metrics.Counter   // events reaching exact match with 0 hits
	summaryMerges  *metrics.Counter   // received summaries folded in
	subscriptions  *metrics.Gauge     // own raw subscriptions
	mergedSubs     *metrics.Gauge     // subscriptions visible in the merged summary
}

// newBrokerObs wires the per-broker instrument family.
func newBrokerObs(r *metrics.Registry, id topology.NodeID) *brokerObs {
	label := strconv.Itoa(int(id))
	return &brokerObs{
		matchSeconds:   r.HistogramVec("broker_match_seconds", metrics.DefLatencyBuckets).With(label),
		mergeSeconds:   r.HistogramVec("broker_merge_seconds", metrics.DefLatencyBuckets).With(label),
		deliveries:     r.CounterVec("broker_deliveries").With(label),
		falsePositives: r.CounterVec("broker_false_positives").With(label),
		summaryMerges:  r.CounterVec("broker_summary_merges").With(label),
		subscriptions:  r.GaugeVec("broker_subscriptions").With(label),
		mergedSubs:     r.GaugeVec("broker_merged_subs").With(label),
	}
}

// Config parametrizes a broker.
type Config struct {
	ID         topology.NodeID
	Schema     *schema.Schema
	Mode       interval.Mode
	NumBrokers int
	// MaxSubscriptions bounds c2 (0 means no bound).
	MaxSubscriptions int
	// FilterSubsumedDeltas enables the Section 6 summarization+subsumption
	// combination: subscriptions subsumed by an already-propagated
	// subscription of this broker are kept out of future deltas (they are
	// still matched locally and delivered via the subsuming subscription's
	// routing).
	FilterSubsumedDeltas bool
	// FilterHistory bounds the filter's retained subscriptions (0 =
	// unbounded). Only used with FilterSubsumedDeltas.
	FilterHistory int
	// Metrics, when non-nil, wires this broker's match/merge latency
	// histograms, delivery and false-positive counters, and subscription
	// gauges into the registry under "name{broker-id}" labels. Nil keeps
	// the broker entirely uninstrumented (the pre-observability behavior).
	Metrics *metrics.Registry
	// Flight, when non-nil, journals subscription churn and wire-form merge
	// outcomes into the flight recorder. Nil (and the Recorder's own
	// nil-receiver tolerance) keeps the hot paths branch-cheap.
	Flight *flight.Recorder
	// MatchShards partitions the published match snapshot into this many
	// id-range shards so batches of events can match across cores (≤ 1 =
	// unsharded). Match results are identical at any shard count.
	MatchShards int
	// Attribution, when non-nil, receives false-positive attributions
	// (which attribute/operator-class/owner admitted an event that no raw
	// subscription matched) and per-attribute delivery credits. Shared
	// across brokers — the network owns one attributor. Nil costs one
	// branch on the delivery paths.
	Attribution *FPAttributor
}

// New creates an empty broker.
func New(cfg Config) (*Broker, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("broker: nil schema")
	}
	if cfg.NumBrokers < 1 || int(cfg.ID) >= cfg.NumBrokers {
		return nil, fmt.Errorf("broker: id %d out of range (%d brokers)", cfg.ID, cfg.NumBrokers)
	}
	maxLocal := subid.LocalID(^uint32(0))
	if cfg.MaxSubscriptions > 0 {
		maxLocal = subid.LocalID(cfg.MaxSubscriptions - 1)
	}
	b := &Broker{
		id:            cfg.ID,
		schema:        cfg.Schema,
		mode:          cfg.Mode,
		subs:          make(map[subid.LocalID]*subEntry),
		maxLocal:      maxLocal,
		delta:         summary.New(cfg.Schema, cfg.Mode),
		merged:        summary.New(cfg.Schema, cfg.Mode),
		mergedBrokers: subid.NewMask(cfg.NumBrokers),
		communicated:  make(map[topology.NodeID]bool),
		numBrokers:    cfg.NumBrokers,
		retired:       make(map[subid.LocalID]struct{}),
		rec:           cfg.Flight,
		attrib:        cfg.Attribution,
		matchShards:   max(1, cfg.MatchShards),

		peerEpochs:        newEpochVector(cfg.NumBrokers),
		lastFullSyncEpoch: -1,
		lastRetractEpoch:  -1,
	}
	b.mergedBrokers.Set(int(cfg.ID))
	if cfg.FilterSubsumedDeltas {
		b.filter = siena.NewSubsumptionFilter(cfg.Schema, cfg.FilterHistory)
	}
	if cfg.Metrics != nil {
		b.obs = newBrokerObs(cfg.Metrics, cfg.ID)
		label := strconv.Itoa(int(cfg.ID))
		b.matcherObs = &summary.MatcherObs{
			Events:    cfg.Metrics.CounterVec("broker_match_events").With(label),
			Collected: cfg.Metrics.CounterVec("broker_collected_ids").With(label),
			Matched:   cfg.Metrics.CounterVec("broker_filter_hits").With(label),
		}
	}
	return b, nil
}

// matchSnapshot is one published generation of the match read path: a
// sharded deep copy of the merged summary (with a matcher pool leasing
// private scratch to concurrent readers) and the Merged_Brokers set as of
// the same generation. Immutable once stored in b.snap.
type matchSnapshot struct {
	gen     uint64
	pool    *summary.ShardedMatcherPool
	brokers subid.Mask // read-only: callers must clone before mutating
}

// invalidateMatch retires the published snapshot; the next match rebuilds
// it from the current merged state. Callers hold b.mu.
func (b *Broker) invalidateMatch() { b.matchGen.Add(1) }

// matchSnapshot returns the current-generation snapshot, rebuilding it
// (under b.mu, double-checked) when a mutator has retired the published
// one. The steady-state path — no mutation since the last rebuild — is
// two atomic loads and no lock.
func (b *Broker) matchSnapshot() *matchSnapshot {
	if s := b.snap.Load(); s != nil && s.gen == b.matchGen.Load() {
		return s
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.matchGen.Load()
	if s := b.snap.Load(); s != nil && s.gen == gen {
		return s
	}
	pool := summary.NewShardedMatcherPool(b.merged.ShardByKey(b.matchShards))
	pool.SetObs(b.matcherObs)
	s := &matchSnapshot{gen: gen, pool: pool, brokers: b.mergedBrokers.Clone()}
	b.snap.Store(s)
	return s
}

// ID returns the broker's overlay node id.
func (b *Broker) ID() topology.NodeID { return b.id }

// Subscribe registers a consumer subscription, assigns it the next local
// id, and folds it into both the delta (for the next propagation period)
// and the local merged summary.
func (b *Broker) Subscribe(sub *schema.Subscription, deliver DeliveryFunc) (subid.ID, error) {
	if sub == nil || deliver == nil {
		return subid.ID{}, fmt.Errorf("broker: nil subscription or delivery func")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.nextLocal > b.maxLocal {
		return subid.ID{}, fmt.Errorf("broker %d: subscription id space exhausted (c2)", b.id)
	}
	id := subid.ID{Broker: subid.BrokerID(b.id), Local: b.nextLocal, Attrs: subid.NewMask(b.schema.Len())}
	for _, a := range sub.AttrSet() {
		id.Attrs.Set(int(a))
	}
	// Section 6 combination: a subscription subsumed by one this broker
	// already propagates need not enter the delta at all — events matching
	// it match the subsuming subscription too, so they still reach us.
	skipDelta := b.filter != nil && b.filter.Subsumed(sub)
	if skipDelta {
		b.filteredSubs++
	} else {
		if err := b.delta.Insert(id, sub); err != nil {
			return subid.ID{}, err
		}
		if b.filter != nil {
			b.filter.Add(sub)
		}
	}
	if err := b.merged.Insert(id, sub); err != nil {
		return subid.ID{}, fmt.Errorf("broker %d: delta/merged diverged: %w", b.id, err)
	}
	b.nextLocal++
	b.subs[id.Local] = &subEntry{id: id, sub: sub, deliver: deliver, skipped: skipDelta}
	b.invalidateMatch()
	b.updateSubGauges()
	b.rec.Record(flight.EvSubscribe, int(b.id), int64(id.Local), int64(len(sub.AttrSet())), 0, "")
	return id, nil
}

// updateSubGauges refreshes the subscription-level gauges; callers hold
// b.mu.
func (b *Broker) updateSubGauges() {
	if b.obs == nil {
		return
	}
	b.obs.subscriptions.Set(int64(len(b.subs)))
	b.obs.mergedSubs.Set(int64(b.merged.NumSubscriptions()))
}

// RawSub exposes one owned subscription for snapshotting.
type RawSub struct {
	Local subid.LocalID
	Sub   *schema.Subscription
}

// SnapshotSubscriptions returns the broker's raw subscriptions sorted by
// local id (the durable state a snapshot persists; summaries are derived).
func (b *Broker) SnapshotSubscriptions() []RawSub {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]RawSub, 0, len(b.subs))
	for local, e := range b.subs {
		out = append(out, RawSub{Local: local, Sub: e.sub})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Local < out[j].Local })
	return out
}

// Restore re-registers a subscription under its original local id (used
// when loading a snapshot). The id must not be in use; nextLocal advances
// past it so future Subscribe calls never collide.
func (b *Broker) Restore(local subid.LocalID, sub *schema.Subscription, deliver DeliveryFunc) error {
	if sub == nil || deliver == nil {
		return fmt.Errorf("broker: nil subscription or delivery func")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[local]; ok {
		return fmt.Errorf("broker %d: local id %d already in use", b.id, local)
	}
	if _, fenced := b.retired[local]; fenced {
		// The previous holder of this id was unsubscribed after its rows
		// propagated; until a full sync confirms the retraction reached the
		// whole network, a new subscription under the same id would inherit
		// the dead subscription's remote coverage.
		return fmt.Errorf("broker %d: local id %d is fenced pending network-wide retraction (full sync)", b.id, local)
	}
	if local > b.maxLocal {
		return fmt.Errorf("broker %d: local id %d exceeds c2 capacity", b.id, local)
	}
	id := subid.ID{Broker: subid.BrokerID(b.id), Local: local, Attrs: subid.NewMask(b.schema.Len())}
	for _, a := range sub.AttrSet() {
		id.Attrs.Set(int(a))
	}
	if err := b.delta.Insert(id, sub); err != nil {
		return err
	}
	if err := b.merged.Insert(id, sub); err != nil {
		return fmt.Errorf("broker %d: delta/merged diverged: %w", b.id, err)
	}
	if b.filter != nil {
		b.filter.Add(sub)
	}
	if local >= b.nextLocal {
		b.nextLocal = local + 1
	}
	b.subs[local] = &subEntry{id: id, sub: sub, deliver: deliver}
	b.invalidateMatch()
	b.updateSubGauges()
	return nil
}

// Unsubscribe removes a subscription. If its rows already propagated, a
// retraction is queued in the delta (shipped next period) so remote
// merged summaries shrink, and the local id is fenced against reuse until
// the next full sync; an unpropagated subscription is removed purely
// locally. If the subscription anchored the subsumption filter, covered
// subscriptions it was suppressing are re-checked and, when no live cover
// remains, promoted back into the delta so their routing is restored.
func (b *Broker) Unsubscribe(id subid.ID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.subs[id.Local]
	if !ok || subid.BrokerID(b.id) != id.Broker {
		return fmt.Errorf("broker %d: unknown subscription %v", b.id, id)
	}
	delete(b.subs, id.Local)
	if e.propagated {
		// Remote summaries hold this id: queue a retraction (which also
		// drops any rows still pending in the delta) and fence the local id.
		b.delta.AddRetraction(id.Key())
		b.retired[id.Local] = struct{}{}
		b.rec.Record(flight.EvRetract, int(b.id), int64(id.Local), 0, 0, "")
	} else {
		b.delta.Remove(id)
	}
	b.merged.Remove(id)
	if e.skipped {
		b.filteredSubs--
	} else if b.filter != nil {
		// The dead subscription may have been suppressing covered
		// subscriptions: drop it from the filter history and re-establish
		// routing for anything it alone was covering.
		b.filter.Remove(e.sub)
		b.promoteUncovered()
	}
	b.maybeCompact()
	b.invalidateMatch()
	b.updateSubGauges()
	b.rec.Record(flight.EvUnsubscribe, int(b.id), int64(id.Local), 0, 0, "")
	return nil
}

// promoteUncovered re-checks filtered subscriptions after a filter entry
// died: any no longer subsumed by a surviving entry re-enters the delta
// (and the filter, since it now propagates). Callers hold b.mu.
func (b *Broker) promoteUncovered() {
	if b.filteredSubs == 0 {
		return
	}
	for _, o := range b.subs {
		if !o.skipped || b.filter.Subsumed(o.sub) {
			continue
		}
		if err := b.delta.Insert(o.id, o.sub); err != nil {
			continue // cannot happen: skipped ids never enter the delta
		}
		b.filter.Add(o.sub)
		o.skipped = false
		b.filteredSubs--
	}
}

// compactMinRemovals floors the amortized-compaction trigger so small
// summaries still defragment promptly.
const compactMinRemovals = 32

// maybeCompact amortizes merged-summary defragmentation. Compact is
// linear in rows, so compacting on every removal made n unsubscribes
// quadratic; compacting once every max(32, live/8) removals bounds
// fragmentation at ~12% while keeping the amortized cost per removal
// constant. Callers hold b.mu.
func (b *Broker) maybeCompact() {
	b.removals++
	threshold := b.merged.NumSubscriptions() / 8
	if threshold < compactMinRemovals {
		threshold = compactMinRemovals
	}
	if b.removals < threshold {
		return
	}
	b.merged.Compact()
	b.compactions++
	b.removals = 0
}

// NumSubscriptions returns the number of locally owned raw subscriptions.
func (b *Broker) NumSubscriptions() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// TakeDelta returns the summary of subscriptions accumulated since the
// previous call and resets the delta (the per-period batch of σ
// subscriptions that Algorithm 2 propagates).
func (b *Broker) TakeDelta() *summary.Summary { return b.TakePeriodSummary(false) }

// TakePeriodSummary returns the summary this broker should propagate in
// the starting period and drains the delta. In a normal period that is
// the delta itself — subscriptions accumulated since the last period plus
// the retraction set of propagated ids unsubscribed since then. On a
// full-sync period the broker performs a true resync: it rebuilds its
// merged summary from its own raw subscriptions, resets Merged_Brokers to
// itself, and ships that own-subscription summary — the period then
// behaves exactly like the first period of a freshly built network, so
// stale remote rows (including retractions lost to dropped messages) are
// discarded everywhere within the one period.
func (b *Broker) TakePeriodSummary(fullSync bool) *summary.Summary {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := b.delta
	b.delta = summary.New(b.schema, b.mode)
	if fullSync {
		b.syncing = b.syncing[:0]
		for local := range b.retired {
			b.syncing = append(b.syncing, local)
		}
		m := summary.New(b.schema, b.mode)
		for _, e := range b.subs {
			if err := m.Insert(e.id, e.sub); err != nil {
				continue // cannot happen: ids in b.subs are unique
			}
			e.propagated = true
		}
		b.merged = m
		b.mergedBrokers = subid.NewMask(b.numBrokers)
		b.mergedBrokers.Set(int(b.id))
		b.removals = 0
		b.invalidateMatch()
		b.updateSubGauges()
		return m.Clone()
	}
	for _, e := range b.subs {
		if !e.propagated && d.Contains(e.id) {
			e.propagated = true
		}
	}
	return d
}

// FinishFullSync marks the completion of a full-sync propagation period.
// Every broker has rebuilt its merged state from live subscriptions only,
// so no stale rows survive anywhere for ids that were fenced when the
// sync payload was taken; those ids become safe to reuse. Ids retired
// mid-period stay fenced — their rows were in the sync payload.
func (b *Broker) FinishFullSync() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, local := range b.syncing {
		delete(b.retired, local)
	}
	b.syncing = nil
}

// MergeSummary folds a received multi-broker summary and its
// Merged_Brokers set into the broker's merged state.
func (b *Broker) MergeSummary(sum *summary.Summary, brokers subid.Mask) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.merged.Merge(sum); err != nil {
		return err
	}
	// The merge already dropped the retracted rows; the long-lived merged
	// summary must not accumulate the retraction sets themselves, or its
	// memory would grow with total churn instead of live subscriptions.
	b.merged.ClearRetractions()
	for _, i := range brokers.Bits() {
		b.mergedBrokers.Set(i)
	}
	b.invalidateMatch()
	if b.obs != nil {
		b.obs.summaryMerges.Inc()
		b.updateSubGauges()
	}
	return nil
}

// MergeEncodedSummary folds a wire-form summary payload directly into the
// broker's merged state, without materializing an intermediate decoded
// Summary. On a malformed payload the merged summary may retain a partial
// merge; that is indistinguishable from the message having been lost in
// transit — partially inserted ids can never reach their c3 attribute
// count, so they never match, and the Merged_Brokers bits are applied
// only after a fully successful merge. Coverage loss, never correctness
// loss.
func (b *Broker) MergeEncodedSummary(payload []byte, brokers subid.Mask) error {
	return b.MergeEncodedSummaryEpoch(payload, brokers, EpochInfo{})
}

// MergeEncodedSummaryEpoch is MergeEncodedSummary with the payload's
// convergence stamp: after a fully successful merge, every peer the
// payload's Merged_Brokers set claims coverage of advances (max-wise) to
// the payload epoch in this broker's epoch vector. A rejected merge
// advances nothing — staleness must reflect applied state, not received
// bytes.
func (b *Broker) MergeEncodedSummaryEpoch(payload []byte, brokers subid.Mask, info EpochInfo) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var start time.Time
	if b.obs != nil {
		start = time.Now()
	}
	if err := b.merged.MergeEncoded(payload); err != nil {
		b.rec.Record(flight.EvMergeError, int(b.id), int64(len(payload)), 0, 0, err.Error())
		return err
	}
	// See MergeSummary: apply retractions, never retain them.
	b.merged.ClearRetractions()
	for _, i := range brokers.Bits() {
		b.mergedBrokers.Set(i)
	}
	if info.Epoch > 0 {
		for _, i := range brokers.Bits() {
			if i < len(b.peerEpochs) && info.Epoch > b.peerEpochs[i] {
				b.peerEpochs[i] = info.Epoch
			}
		}
		if info.FullSync && info.Epoch > b.lastFullSyncEpoch {
			b.lastFullSyncEpoch = info.Epoch
		}
		if info.Retract && info.Epoch > b.lastRetractEpoch {
			b.lastRetractEpoch = info.Epoch
		}
	}
	b.invalidateMatch()
	if b.obs != nil {
		b.obs.mergeSeconds.Observe(time.Since(start).Seconds())
		b.obs.summaryMerges.Inc()
		b.updateSubGauges()
	}
	b.rec.Record(flight.EvMergeOK, int(b.id), int64(len(payload)), int64(b.merged.NumSubscriptions()), 0, "")
	return nil
}

// newEpochVector builds an all-unseen (-1) epoch vector.
func newEpochVector(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = -1
	}
	return v
}

// EpochState returns a snapshot of the broker's convergence epoch
// vector.
func (b *Broker) EpochState() EpochState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return EpochState{
		Peers:        append([]int64(nil), b.peerEpochs...),
		LastFullSync: b.lastFullSyncEpoch,
		LastRetract:  b.lastRetractEpoch,
	}
}

// ReadEpochs invokes fn with the live epoch vector under the broker
// lock — the allocation-free read used by the per-period gauge refresh.
// fn must not retain peers or call back into the Broker.
func (b *Broker) ReadEpochs(fn func(peers []int64, lastFullSync, lastRetract int64)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fn(b.peerEpochs, b.lastFullSyncEpoch, b.lastRetractEpoch)
}

// SnapshotMerged returns deep copies of the merged summary and
// Merged_Brokers set (what Algorithm 2 sends to the chosen neighbor).
func (b *Broker) SnapshotMerged() (*summary.Summary, subid.Mask) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.merged.Clone(), b.mergedBrokers.Clone()
}

// MergedBrokers returns a copy of the broker's Merged_Brokers set.
func (b *Broker) MergedBrokers() subid.Mask {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.mergedBrokers.Clone()
}

// MergedBrokersShared returns the Merged_Brokers set of the published
// match snapshot without taking b.mu or cloning — the routing hot path's
// read. Read-only: callers must not mutate the mask.
func (b *Broker) MergedBrokersShared() subid.Mask {
	return b.matchSnapshot().brokers
}

// ChooseTarget picks the Algorithm 2 send target among the broker's
// neighbors: degree ≥ the broker's own, not yet communicated with,
// preferring the smallest *strictly higher* degree and falling back to an
// equal-degree neighbor (smallest id). See propagation.pickTarget for why
// strictly-higher neighbors come first. It records the communication.
func (b *Broker) ChooseTarget(g *topology.Graph) (topology.NodeID, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	own := g.Degree(b.id)
	best := topology.NodeID(-1)
	bestDegree := 0
	for _, m := range g.Neighbors(b.id) {
		d := g.Degree(m)
		if d <= own || b.communicated[m] {
			continue
		}
		if best < 0 || d < bestDegree || (d == bestDegree && m < best) {
			best, bestDegree = m, d
		}
	}
	if best < 0 {
		for _, m := range g.Neighbors(b.id) {
			if g.Degree(m) == own && !b.communicated[m] {
				best = m
				break
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	b.communicated[best] = true
	return best, true
}

// ResetPeriod clears the communicated-with set at the start of a new
// propagation phase ("has not communicated in any of the previous
// iterations" is scoped to one phase of Algorithm 2).
func (b *Broker) ResetPeriod() {
	b.mu.Lock()
	defer b.mu.Unlock()
	clear(b.communicated)
}

// RecordCommunicated marks a peer as communicated-with (the receiving side
// of an Algorithm 2 exchange).
func (b *Broker) RecordCommunicated(peer topology.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.communicated[peer] = true
}

// MatchMerged runs Algorithm 1 on the merged multi-broker summary and
// returns the matched subscription ids (possibly including pre-filter
// false positives, resolved at the owners). The read path is lock-free:
// it matches against the published snapshot with a leased matcher, so
// concurrent merges and subscribes never stall it, and the latency
// histogram is observed outside any lock.
func (b *Broker) MatchMerged(ev *schema.Event) []subid.ID {
	s := b.matchSnapshot()
	m := s.pool.Get()
	if b.obs == nil {
		ids := m.Match(ev)
		s.pool.Put(m)
		return ids
	}
	start := time.Now()
	ids := m.Match(ev)
	elapsed := time.Since(start)
	s.pool.Put(m)
	b.obs.matchSeconds.Observe(elapsed.Seconds())
	return ids
}

// MatchLease is a leased view of the broker's published match snapshot:
// a private sharded matcher plus the Merged_Brokers set of the same
// generation. It lets the routing hot loop match a whole batch of events
// — and read the broker set Algorithm 3 needs — without ever touching
// b.mu. Release returns the matcher scratch to the snapshot's pool;
// match results are valid until then.
type MatchLease struct {
	snap *matchSnapshot
	m    *summary.ShardedMatcher
}

// AcquireMatcher leases a matcher over the current snapshot (rebuilding
// the snapshot first if a mutator retired it).
func (b *Broker) AcquireMatcher() MatchLease {
	s := b.matchSnapshot()
	return MatchLease{snap: s, m: s.pool.Get()}
}

// MergedBrokers returns the Merged_Brokers set of the leased generation.
// Read-only: callers must not mutate the mask.
func (l MatchLease) MergedBrokers() subid.Mask { return l.snap.brokers }

// MatchBatch matches events and returns per-event matched id keys
// (ascending; decompose with subid.KeyParts). Results are matcher
// scratch, valid until the next call or Release.
func (l MatchLease) MatchBatch(events []*schema.Event) [][]uint64 {
	return l.m.MatchBatch(events)
}

// Release returns the leased matcher to its snapshot's pool.
func (l MatchLease) Release() { l.snap.pool.Put(l.m) }

// MatchSeconds records one amortized match-latency observation (used by
// the batched routing path, which times a whole batch and attributes the
// mean to each event). No-op without metrics.
func (b *Broker) MatchSeconds(sec float64) {
	if b.obs != nil {
		b.obs.matchSeconds.Observe(sec)
	}
}

// DeliverExact re-matches the event against the broker's raw
// subscriptions and invokes the consumers of those that truly match. It
// returns the number of deliveries.
//
// The candidate set is pruned through the broker's own summary rows
// first: the published match snapshot (which always covers every owned
// subscription — the watchdog's coverage invariant) yields the candidate
// keys, and only this broker's candidates are exact-matched under b.mu.
// Summaries never produce false negatives, so pruning cannot lose a
// delivery; DeliverExactScan retains the full-scan reference the
// differential test compares against.
func (b *Broker) DeliverExact(ev *schema.Event) int {
	s := b.matchSnapshot()
	m := s.pool.Get()
	keys := m.MatchKeys(ev)
	hits := b.collectExact(ev, keys)
	s.pool.Put(m)
	return b.deliverHits(ev, hits)
}

// collectExact exact-matches this broker's candidate keys against the
// raw subscriptions. Keys of other owners (remote candidates in the
// merged snapshot) are skipped.
func (b *Broker) collectExact(ev *schema.Event, keys []uint64) []*subEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	var hits []*subEntry
	for _, key := range keys {
		owner, local := subid.KeyParts(key)
		if owner != subid.BrokerID(b.id) {
			continue
		}
		e, ok := b.subs[local]
		if !ok {
			continue // retired candidate: snapshot lag or a stale remote row
		}
		if e.sub.Matches(ev) {
			hits = append(hits, e)
		}
	}
	if len(hits) == 0 && b.attrib != nil {
		b.attributeFPLocked(ev, keys)
	}
	return hits
}

// attributeFPLocked charges a false positive to the candidate rows that
// admitted the event: for each live local candidate, the first failing
// constraint names the responsible (attribute, operator-class, owner);
// a candidate with no live subscription behind it — and the case of no
// local candidate at all (the sender's merged view of this broker was
// stale) — is charged to the "stale" class. Callers hold b.mu and have
// established that no raw subscription matched.
func (b *Broker) attributeFPLocked(ev *schema.Event, keys []uint64) {
	charged := false
	for _, key := range keys {
		owner, local := subid.KeyParts(key)
		if owner != subid.BrokerID(b.id) {
			continue
		}
		e, ok := b.subs[local]
		if !ok {
			b.attrib.ObserveFP(FPNoAttr, FPClassStale, owner)
			charged = true
			continue
		}
		for _, c := range e.sub.Constraints {
			v, present := ev.Value(c.Attr)
			if !present || !c.Satisfied(v) {
				b.attrib.ObserveFP(c.Attr, ClassifyOp(c.Op), owner)
				charged = true
				break
			}
		}
	}
	if !charged {
		b.attrib.ObserveFP(FPNoAttr, FPClassStale, subid.BrokerID(b.id))
	}
}

// DeliverExactCandidates is DeliverExact with the summary pre-filter
// already run: keys are candidate id keys from this broker's published
// snapshot (e.g. a batch match result), so only the exact re-match and
// delivery remain. Keys owned by other brokers are ignored.
func (b *Broker) DeliverExactCandidates(ev *schema.Event, keys []uint64) int {
	return b.deliverHits(ev, b.collectExact(ev, keys))
}

// DeliverExactScan is the pre-pruning reference implementation: a linear
// exact-match scan over every raw subscription. Kept for the delivery-set
// regression test and the pruning benchmark; the engine calls
// DeliverExact.
func (b *Broker) DeliverExactScan(ev *schema.Event) int {
	b.mu.Lock()
	var hits []*subEntry
	for _, e := range b.subs {
		if e.sub.Matches(ev) {
			hits = append(hits, e)
		}
	}
	b.mu.Unlock()
	// The map scan yields hits in random order; deliver deterministically.
	sort.Slice(hits, func(i, j int) bool { return hits[i].id.Local < hits[j].id.Local })
	return b.deliverHits(ev, hits)
}

// deliverHits counts and performs the consumer deliveries, outside any
// lock (DeliveryFuncs must not call back into the Broker).
func (b *Broker) deliverHits(ev *schema.Event, hits []*subEntry) int {
	if b.obs != nil {
		if len(hits) == 0 {
			// The event reached this broker's exact-match stage — some
			// summary admitted it — but no raw subscription matches: a
			// summary false positive (or a stale remote entry after an
			// unsubscribe).
			b.obs.falsePositives.Inc()
		} else {
			b.obs.deliveries.Add(int64(len(hits)))
		}
	}
	if b.attrib != nil {
		for _, e := range hits {
			b.attrib.CreditDelivery(e.id.Attrs)
		}
	}
	for _, e := range hits {
		e.deliver(e.id, ev)
	}
	return len(hits)
}

// Stats describes the broker's summary state.
type Stats struct {
	OwnSubscriptions  int
	MergedSummarySubs int
	MergedBrokerCount int
	ModelBytes        int   // merged summary size under the paper's cost model
	FilteredSubs      int   // subscriptions kept out of deltas by subsumption
	Compactions       int64 // amortized merged-summary compactions
	PendingRetracts   int   // retractions queued for the next period
	FencedIDs         int   // local ids fenced until the next full sync
}

// MergedOwnerCounts returns, per owning broker, how many subscriptions
// this broker's merged summary currently holds. The watchdog's
// convergence check compares these counts against each owner's live
// subscription count after a quiescent full-sync period.
func (b *Broker) MergedOwnerCounts() map[subid.BrokerID]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	counts := make(map[subid.BrokerID]int)
	for _, id := range b.merged.IDs() {
		counts[id.Broker]++
	}
	return counts
}

// MissingFromMerged returns the ids of locally-owned subscriptions that
// are absent from this broker's own merged summary. The invariant the
// watchdog checks is that this list is always empty: the merged summary
// may overstate coverage (lossy false positives are by design) but must
// never understate it, because an understated own-summary can suppress
// events that a local consumer subscribed to — the one failure mode the
// paper's "no false negatives" guarantee forbids.
func (b *Broker) MissingFromMerged() []subid.ID {
	b.mu.Lock()
	defer b.mu.Unlock()
	var missing []subid.ID
	for _, e := range b.subs {
		if !b.merged.Contains(e.id) {
			missing = append(missing, e.id)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].Local < missing[j].Local })
	return missing
}

// CorruptMerged removes id from the merged summary while leaving the raw
// subscription registered — a deliberate coverage understatement. Test
// hook for proving the watchdog detects exactly this class of fault;
// never called by the engine.
func (b *Broker) CorruptMerged(id subid.ID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.merged.Remove(id)
	b.invalidateMatch()
}

// Stats returns a snapshot (cost model: s_st = s_id = 4).
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		OwnSubscriptions:  len(b.subs),
		MergedSummarySubs: b.merged.NumSubscriptions(),
		MergedBrokerCount: b.mergedBrokers.Count(),
		ModelBytes:        b.merged.SizeBytes(4, 4),
		FilteredSubs:      b.filteredSubs,
		Compactions:       b.compactions,
		PendingRetracts:   b.delta.NumRetractions(),
		FencedIDs:         len(b.retired),
	}
}
