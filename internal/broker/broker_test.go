package broker

import (
	"sync"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
)

func testSchema(t testing.TB) *schema.Schema {
	t.Helper()
	return schema.MustNew(
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
	)
}

func newBroker(t testing.TB, id topology.NodeID, n int) *Broker {
	t.Helper()
	b, err := New(Config{ID: id, Schema: testSchema(t), Mode: interval.Lossy, NumBrokers: n})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func noDeliver(subid.ID, *schema.Event) {}

func TestNewValidation(t *testing.T) {
	s := testSchema(t)
	if _, err := New(Config{Schema: nil, NumBrokers: 1}); err == nil {
		t.Fatal("nil schema accepted")
	}
	if _, err := New(Config{Schema: s, ID: 5, NumBrokers: 3}); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if _, err := New(Config{Schema: s, NumBrokers: 0}); err == nil {
		t.Fatal("zero brokers accepted")
	}
}

func TestSubscribeAssignsSequentialLocalIDs(t *testing.T) {
	b := newBroker(t, 2, 4)
	sub, _ := schema.ParseSubscription(testSchema(t), `price > 1`)
	for want := 0; want < 3; want++ {
		id, err := b.Subscribe(sub, noDeliver)
		if err != nil {
			t.Fatal(err)
		}
		if id.Broker != 2 || id.Local != subid.LocalID(want) {
			t.Fatalf("id = %v, want B2/S%d", id, want)
		}
		if id.NumAttrs() != 1 {
			t.Fatalf("c3 count = %d", id.NumAttrs())
		}
	}
	if b.NumSubscriptions() != 3 {
		t.Fatalf("NumSubscriptions = %d", b.NumSubscriptions())
	}
}

func TestSubscribeLimitAndValidation(t *testing.T) {
	s := testSchema(t)
	b, err := New(Config{ID: 0, Schema: s, NumBrokers: 1, MaxSubscriptions: 1})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := schema.ParseSubscription(s, `price > 1`)
	if _, err := b.Subscribe(nil, noDeliver); err == nil {
		t.Fatal("nil subscription accepted")
	}
	if _, err := b.Subscribe(sub, nil); err == nil {
		t.Fatal("nil delivery accepted")
	}
	if _, err := b.Subscribe(sub, noDeliver); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(sub, noDeliver); err == nil {
		t.Fatal("limit not enforced")
	}
}

func TestTakeDeltaResets(t *testing.T) {
	b := newBroker(t, 0, 2)
	sub, _ := schema.ParseSubscription(testSchema(t), `price > 1`)
	if _, err := b.Subscribe(sub, noDeliver); err != nil {
		t.Fatal(err)
	}
	d1 := b.TakeDelta()
	if d1.NumSubscriptions() != 1 {
		t.Fatalf("delta subs = %d", d1.NumSubscriptions())
	}
	d2 := b.TakeDelta()
	if d2.NumSubscriptions() != 0 {
		t.Fatalf("second delta subs = %d", d2.NumSubscriptions())
	}
	// Merged state still knows the subscription.
	if st := b.Stats(); st.MergedSummarySubs != 1 || st.OwnSubscriptions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnsubscribe(t *testing.T) {
	b := newBroker(t, 0, 2)
	s := testSchema(t)
	sub, _ := schema.ParseSubscription(s, `price > 1`)
	id, err := b.Subscribe(sub, noDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if b.NumSubscriptions() != 0 {
		t.Fatal("subscription not removed")
	}
	if err := b.Unsubscribe(id); err == nil {
		t.Fatal("double unsubscribe accepted")
	}
	ev, _ := schema.ParseEvent(s, `price=5`)
	if got := b.DeliverExact(ev); got != 0 {
		t.Fatalf("deliveries after unsubscribe = %d", got)
	}
}

func TestDeliverExactFiltersFalsePositives(t *testing.T) {
	b := newBroker(t, 0, 2)
	s := testSchema(t)
	subA, _ := schema.ParseSubscription(s, `symbol >* OT`)
	subB, _ := schema.ParseSubscription(s, `symbol = OTE`)
	var mu sync.Mutex
	counts := map[string]int{}
	deliver := func(name string) DeliveryFunc {
		return func(subid.ID, *schema.Event) {
			mu.Lock()
			counts[name]++
			mu.Unlock()
		}
	}
	if _, err := b.Subscribe(subA, deliver("A")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(subB, deliver("B")); err != nil {
		t.Fatal(err)
	}
	// The merged summary generalizes symbol to prefix OT: MatchMerged
	// reports both for OTX, but DeliverExact must deliver only A.
	ev, _ := schema.ParseEvent(s, `symbol=OTX`)
	if got := len(b.MatchMerged(ev)); got != 2 {
		t.Fatalf("MatchMerged = %d ids, want 2 (lossy pre-filter)", got)
	}
	if got := b.DeliverExact(ev); got != 1 {
		t.Fatalf("DeliverExact = %d, want 1", got)
	}
	if counts["A"] != 1 || counts["B"] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestMergeSummaryAndSnapshot(t *testing.T) {
	s := testSchema(t)
	a := newBroker(t, 0, 3)
	b := newBroker(t, 1, 3)
	sub, _ := schema.ParseSubscription(s, `price > 10`)
	if _, err := b.Subscribe(sub, noDeliver); err != nil {
		t.Fatal(err)
	}
	sum, set := b.SnapshotMerged()
	if err := a.MergeSummary(sum, set); err != nil {
		t.Fatal(err)
	}
	ev, _ := schema.ParseEvent(s, `price=20`)
	matched := a.MatchMerged(ev)
	if len(matched) != 1 || matched[0].Broker != 1 {
		t.Fatalf("matched = %v", matched)
	}
	got := a.MergedBrokers()
	if !got.Has(0) || !got.Has(1) || got.Has(2) {
		t.Fatalf("MergedBrokers = %v", got)
	}
	// Snapshot is a deep copy: mutating it doesn't affect the broker.
	set.Set(2)
	if a.MergedBrokers().Has(2) {
		t.Fatal("snapshot shares state")
	}
}

func TestChooseTargetOnFigure7(t *testing.T) {
	g := topology.Figure7Tree()
	s := testSchema(t)
	// Node 6 (paper broker 7, degree 2) has neighbors node 4 (degree 5)
	// and node 7 (degree 3): smallest eligible degree wins → node 7.
	b, err := New(Config{ID: 6, Schema: s, NumBrokers: g.Len()})
	if err != nil {
		t.Fatal(err)
	}
	target, ok := b.ChooseTarget(g)
	if !ok || target != 7 {
		t.Fatalf("target = %v,%v; want 7", target, ok)
	}
	// Same target is not chosen twice in a period.
	if target, ok := b.ChooseTarget(g); !ok || target != 4 {
		t.Fatalf("second target = %v,%v; want 4", target, ok)
	}
	if _, ok := b.ChooseTarget(g); ok {
		t.Fatal("third target should not exist")
	}
	// ResetPeriod clears the history.
	b.ResetPeriod()
	if target, ok := b.ChooseTarget(g); !ok || target != 7 {
		t.Fatalf("after reset: %v,%v; want 7", target, ok)
	}
}

func TestRecordCommunicatedBlocksTarget(t *testing.T) {
	g := topology.Figure7Tree()
	b, err := New(Config{ID: 6, Schema: testSchema(t), NumBrokers: g.Len()})
	if err != nil {
		t.Fatal(err)
	}
	b.RecordCommunicated(7)
	target, ok := b.ChooseTarget(g)
	if !ok || target != 4 {
		t.Fatalf("target = %v,%v; want 4 after 7 blocked", target, ok)
	}
}

func TestMaxDegreeNodeHasNoTarget(t *testing.T) {
	g := topology.Figure7Tree()
	b, err := New(Config{ID: 4, Schema: testSchema(t), NumBrokers: g.Len()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.ChooseTarget(g); ok {
		t.Fatal("max-degree broker found a target among lower-degree neighbors")
	}
}
