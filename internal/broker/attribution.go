// False-positive attribution: when an event that some summary admitted
// reaches a broker's exact-match stage and no raw subscription matches,
// the broker walks the candidate rows that admitted it and charges the
// miss to the responsible (attribute, operator-class, owner-broker)
// triple. The paper's §5 precision metric becomes a live, per-row
// diagnostic: which attribute's summary rows over-approximate, under
// which operator class, owned by whom.
//
// Attribution is best-effort by construction. Summary rows are merged
// and lossy, so the candidate set at the delivery broker is an
// over-approximation of the rows that admitted the event remotely; the
// first failing constraint of each live candidate is the charge, and a
// candidate with no live raw subscription behind it (snapshot lag, a
// stale remote row after an unsubscribe) is charged to the "stale"
// class. The charge never panics and never blocks the hot path beyond
// one nil check: the space-saving counter is bounded (top-K with
// documented overestimates), the per-attribute tallies are plain
// atomics, and everything runs only on the false-positive branch —
// delivery credits on the hit branch are a handful of atomic adds.
package broker

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
)

// FPClass groups constraint operators into the coarse classes the
// attribution counter distinguishes: a range row and an equality row
// over-approximate for different structural reasons (interval hulls vs
// merged id sets), so the class — not the exact operator — is the
// actionable signal.
type FPClass uint8

// Operator classes charged by false-positive attribution.
const (
	FPClassEq       FPClass = iota // =
	FPClassNe                      // !=
	FPClassRange                   // < <= > >=
	FPClassPrefix                  // >*
	FPClassSuffix                  // *<
	FPClassContains                // *
	FPClassGlob                    // ~
	FPClassStale                   // candidate row with no live subscription behind it
)

// String names the class.
func (c FPClass) String() string {
	switch c {
	case FPClassEq:
		return "eq"
	case FPClassNe:
		return "ne"
	case FPClassRange:
		return "range"
	case FPClassPrefix:
		return "prefix"
	case FPClassSuffix:
		return "suffix"
	case FPClassContains:
		return "contains"
	case FPClassGlob:
		return "glob"
	case FPClassStale:
		return "stale"
	default:
		return "unknown"
	}
}

// ClassifyOp maps a constraint operator to its attribution class.
func ClassifyOp(op schema.Op) FPClass {
	switch op {
	case schema.OpEQ:
		return FPClassEq
	case schema.OpNE:
		return FPClassNe
	case schema.OpLT, schema.OpLE, schema.OpGT, schema.OpGE:
		return FPClassRange
	case schema.OpPrefix:
		return FPClassPrefix
	case schema.OpSuffix:
		return FPClassSuffix
	case schema.OpContains:
		return FPClassContains
	case schema.OpGlob:
		return FPClassGlob
	default:
		return FPClassStale
	}
}

// FPNoAttr is the sentinel attribute of charges that have no responsible
// attribute: a stale candidate row, or a false positive with no local
// candidate at all (the sender's merged view of this broker was stale).
const FPNoAttr = schema.AttrID(^uint16(0))

// FPKey is one attribution bucket. Comparable by value, so the top-K
// map never allocates per observation.
type FPKey struct {
	Attr  schema.AttrID
	Class FPClass
	Owner subid.BrokerID
}

// fpEntry is one space-saving bucket: Count may overestimate the true
// frequency by at most Err (the count of the entry it evicted).
type fpEntry struct {
	count int64
	err   int64
}

// attrHeadroom is how many attribute slots beyond the construction-time
// schema the per-attribute tallies reserve, so ExtendSchema'd attributes
// keep counting without reallocation. Attributes beyond the headroom are
// silently untallied (best-effort; the top-K still names them).
const attrHeadroom = 16

// FPAttributor aggregates false-positive attributions network-wide: a
// bounded space-saving top-K over (attribute, operator-class, owner)
// triples plus per-attribute delivered/false-positive tallies from which
// per-attribute precision derives. One attributor is shared by every
// broker of a network; all methods are safe for concurrent use and a
// nil receiver is valid and records nothing.
type FPAttributor struct {
	schema *schema.Schema
	rec    *flight.Recorder
	k      int

	mu    sync.Mutex
	top   map[FPKey]fpEntry
	total atomic.Int64

	// Per-attribute tallies, indexed by AttrID; fixed at construction
	// (schema size + headroom) so the observation path never grows them.
	fpByAttr  []atomic.Int64
	delByAttr []atomic.Int64
	// Registry counters per construction-time attribute (nil entries when
	// no registry was given or the attribute arrived later).
	fpCounters  []*metrics.Counter
	delCounters []*metrics.Counter
}

// NewFPAttributor builds an attributor over the schema's attributes.
// reg and rec may be nil; k bounds the top-K map (<= 0 selects 64).
func NewFPAttributor(s *schema.Schema, reg *metrics.Registry, rec *flight.Recorder, k int) *FPAttributor {
	if k <= 0 {
		k = 64
	}
	n := s.Len() + attrHeadroom
	a := &FPAttributor{
		schema:      s,
		rec:         rec,
		k:           k,
		top:         make(map[FPKey]fpEntry, k),
		fpByAttr:    make([]atomic.Int64, n),
		delByAttr:   make([]atomic.Int64, n),
		fpCounters:  make([]*metrics.Counter, n),
		delCounters: make([]*metrics.Counter, n),
	}
	if reg != nil {
		fpVec := reg.CounterVec("fp_attr_false_positives")
		delVec := reg.CounterVec("fp_attr_deliveries")
		for i, attr := range s.Attributes() {
			a.fpCounters[i] = fpVec.With(attr.Name)
			a.delCounters[i] = delVec.With(attr.Name)
		}
	}
	return a
}

// ObserveFP charges one false positive to the (attr, class, owner)
// triple. attr may be FPNoAttr for charges with no responsible
// attribute.
func (a *FPAttributor) ObserveFP(attr schema.AttrID, class FPClass, owner subid.BrokerID) {
	if a == nil {
		return
	}
	a.total.Add(1)
	if int(attr) < len(a.fpByAttr) {
		a.fpByAttr[attr].Add(1)
		if c := a.fpCounters[attr]; c != nil {
			c.Inc()
		}
	}
	key := FPKey{Attr: attr, Class: class, Owner: owner}
	isNew := false
	a.mu.Lock()
	if e, ok := a.top[key]; ok {
		e.count++
		a.top[key] = e
	} else if len(a.top) < a.k {
		a.top[key] = fpEntry{count: 1}
		isNew = true
	} else {
		// Space-saving eviction: the new triple inherits the smallest
		// count plus one, with that count as its documented error bound.
		var minKey FPKey
		minCount := int64(1) << 62
		for k2, e2 := range a.top {
			if e2.count < minCount {
				minKey, minCount = k2, e2.count
			}
		}
		delete(a.top, minKey)
		a.top[key] = fpEntry{count: minCount + 1, err: minCount}
		isNew = true
	}
	a.mu.Unlock()
	if isNew {
		// First sighting of this triple (since any eviction): journal it so
		// a post-mortem can line new over-approximation sources up against
		// churn and period boundaries.
		a.rec.Record(flight.EvFPAttribution, int(owner), int64(attr), int64(class), 0,
			a.attrName(attr)+" "+class.String())
	}
}

// CreditDelivery credits one exact delivery to every attribute the
// matching subscription constrains (its id's c3 mask). Allocation-free:
// the mask words are walked bit by bit.
func (a *FPAttributor) CreditDelivery(attrs subid.Mask) {
	if a == nil {
		return
	}
	for wi, w := range attrs {
		for w != 0 {
			bit := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			if bit < len(a.delByAttr) {
				a.delByAttr[bit].Add(1)
				if c := a.delCounters[bit]; c != nil {
					c.Inc()
				}
			}
		}
	}
}

// attrName resolves an attribute id to its schema name ("-" for the
// no-attribute sentinel, "attr(N)" for ids the schema no longer knows).
func (a *FPAttributor) attrName(attr schema.AttrID) string {
	if attr == FPNoAttr {
		return "-"
	}
	if at, ok := a.schema.Attr(attr); ok {
		return at.Name
	}
	return "attr(?)"
}

// FPAttribution is one top-K entry of the attribution report.
type FPAttribution struct {
	Attr     string `json:"attr"`
	AttrID   int    `json:"attr_id"`
	Class    string `json:"class"`
	Owner    int    `json:"owner"`
	Count    int64  `json:"count"`
	ErrBound int64  `json:"err_bound"`
}

// AttrPrecision is one attribute's live precision: of the events a
// summary admitted for subscriptions constraining this attribute, the
// fraction that were true deliveries.
type AttrPrecision struct {
	Attr      string  `json:"attr"`
	AttrID    int     `json:"attr_id"`
	Delivered int64   `json:"delivered"`
	FalsePos  int64   `json:"false_positives"`
	Precision float64 `json:"precision"`
}

// FPReport is the attribution snapshot surfaced by the health endpoint.
type FPReport struct {
	Total int64           `json:"total_false_positives"`
	TopK  []FPAttribution `json:"top_k"`
	Attrs []AttrPrecision `json:"attrs"`
}

// Report snapshots the attributor: the top n triples by charged count
// (descending; ties by attr, class, owner for determinism) and the
// per-attribute precision table. n <= 0 returns every tracked triple.
// A nil attributor reports an empty snapshot.
func (a *FPAttributor) Report(n int) *FPReport {
	r := &FPReport{}
	if a == nil {
		return r
	}
	r.Total = a.total.Load()
	a.mu.Lock()
	entries := make([]FPAttribution, 0, len(a.top))
	for key, e := range a.top {
		entries = append(entries, FPAttribution{
			Attr:     a.attrName(key.Attr),
			AttrID:   int(key.Attr),
			Class:    key.Class.String(),
			Owner:    int(key.Owner),
			Count:    e.count,
			ErrBound: e.err,
		})
	}
	a.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		if entries[i].AttrID != entries[j].AttrID {
			return entries[i].AttrID < entries[j].AttrID
		}
		if entries[i].Class != entries[j].Class {
			return entries[i].Class < entries[j].Class
		}
		return entries[i].Owner < entries[j].Owner
	})
	if n > 0 && len(entries) > n {
		entries = entries[:n]
	}
	r.TopK = entries
	for i, attr := range a.schema.Attributes() {
		if i >= len(a.fpByAttr) {
			break // beyond the tallied headroom
		}
		del, fp := a.delByAttr[i].Load(), a.fpByAttr[i].Load()
		if del == 0 && fp == 0 {
			continue
		}
		p := AttrPrecision{Attr: attr.Name, AttrID: i, Delivered: del, FalsePos: fp}
		p.Precision = float64(del) / float64(del+fp)
		r.Attrs = append(r.Attrs, p)
	}
	return r
}
