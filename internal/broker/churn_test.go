package broker

import (
	"strings"
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
)

// TestUnsubscribeQueuesRetraction: withdrawing a subscription whose rows
// already propagated queues a retraction for the next period, fences the
// local id, and shrinks the local merged summary immediately.
func TestUnsubscribeQueuesRetraction(t *testing.T) {
	b := newBroker(t, 0, 2)
	sub, _ := schema.ParseSubscription(testSchema(t), `price > 1`)
	id1, err := b.Subscribe(sub, noDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(sub, noDeliver); err != nil {
		t.Fatal(err)
	}
	b.TakeDelta() // rows are now remote

	if err := b.Unsubscribe(id1); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.PendingRetracts != 1 || st.FencedIDs != 1 {
		t.Fatalf("PendingRetracts = %d, FencedIDs = %d, want 1, 1", st.PendingRetracts, st.FencedIDs)
	}
	if st.MergedSummarySubs != 1 {
		t.Fatalf("MergedSummarySubs = %d, want 1", st.MergedSummarySubs)
	}
	d := b.TakeDelta()
	if d.NumRetractions() != 1 || d.Retractions()[0] != id1.Key() {
		t.Fatalf("delta retractions = %v, want [%d]", d.Retractions(), id1.Key())
	}
	if b.Stats().PendingRetracts != 0 {
		t.Fatalf("retraction not drained with the delta")
	}
}

// TestUnsubscribeUnpropagatedIsLocal: a subscription withdrawn before its
// delta ever shipped leaves no trace — no retraction, no fence, and the
// local id is immediately reusable via Restore.
func TestUnsubscribeUnpropagatedIsLocal(t *testing.T) {
	b := newBroker(t, 0, 2)
	sub, _ := schema.ParseSubscription(testSchema(t), `price > 1`)
	id1, err := b.Subscribe(sub, noDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe(id1); err != nil {
		t.Fatal(err)
	}
	d := b.TakeDelta()
	if d.NumSubscriptions() != 0 || d.NumRetractions() != 0 {
		t.Fatalf("delta carries %d subs, %d retractions; want an empty period", d.NumSubscriptions(), d.NumRetractions())
	}
	if st := b.Stats(); st.FencedIDs != 0 {
		t.Fatalf("FencedIDs = %d for an unpropagated unsubscribe", st.FencedIDs)
	}
	if err := b.Restore(id1.Local, sub, noDeliver); err != nil {
		t.Fatalf("Restore of never-propagated id: %v", err)
	}
}

// TestFilterLeakOnUnsubscribe is the regression test for the subsumption
// filter leak: unsubscribing a filter anchor used to leave it in the
// filter history, so subscriptions it covered stayed suppressed forever —
// events for them were no longer routed here by anyone. The anchor's
// removal must drop it from the filter and promote the subscriptions it
// alone covered back into the next delta.
func TestFilterLeakOnUnsubscribe(t *testing.T) {
	s := testSchema(t)
	b, err := New(Config{ID: 0, Schema: s, Mode: interval.Lossy, NumBrokers: 2, FilterSubsumedDeltas: true})
	if err != nil {
		t.Fatal(err)
	}
	anchor, _ := schema.ParseSubscription(s, `price > 0`)
	covered, _ := schema.ParseSubscription(s, `price > 5`)

	anchorID, err := b.Subscribe(anchor, noDeliver)
	if err != nil {
		t.Fatal(err)
	}
	b.TakeDelta() // anchor propagates and anchors the filter

	coveredID, err := b.Subscribe(covered, noDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.FilteredSubs != 1 {
		t.Fatalf("FilteredSubs = %d, want the covered subscription suppressed", st.FilteredSubs)
	}

	if err := b.Unsubscribe(anchorID); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.FilteredSubs != 0 {
		t.Fatalf("FilteredSubs = %d after the anchor died, want 0", st.FilteredSubs)
	}
	d := b.TakeDelta()
	if !d.Contains(coveredID) {
		t.Fatalf("covered subscription was not promoted into the next delta — its routing is lost")
	}
	// The promoted subscription now anchors the filter itself.
	narrower, _ := schema.ParseSubscription(s, `price > 9`)
	if _, err := b.Subscribe(narrower, noDeliver); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.FilteredSubs != 1 {
		t.Fatalf("FilteredSubs = %d, want the narrower subscription filtered by the promoted one", st.FilteredSubs)
	}
}

// TestFilteredUnsubscribeKeepsAnchor: withdrawing a covered (skipped)
// subscription must not disturb the filter or queue a retraction — its
// rows never propagated.
func TestFilteredUnsubscribeKeepsAnchor(t *testing.T) {
	s := testSchema(t)
	b, err := New(Config{ID: 0, Schema: s, Mode: interval.Lossy, NumBrokers: 2, FilterSubsumedDeltas: true})
	if err != nil {
		t.Fatal(err)
	}
	anchor, _ := schema.ParseSubscription(s, `price > 0`)
	covered, _ := schema.ParseSubscription(s, `price > 5`)
	if _, err := b.Subscribe(anchor, noDeliver); err != nil {
		t.Fatal(err)
	}
	b.TakeDelta()
	coveredID, err := b.Subscribe(covered, noDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe(coveredID); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.FilteredSubs != 0 || st.PendingRetracts != 0 || st.FencedIDs != 0 {
		t.Fatalf("FilteredSubs=%d PendingRetracts=%d FencedIDs=%d, want all 0", st.FilteredSubs, st.PendingRetracts, st.FencedIDs)
	}
	// The anchor still filters.
	another, _ := schema.ParseSubscription(s, `price > 7`)
	if _, err := b.Subscribe(another, noDeliver); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.FilteredSubs != 1 {
		t.Fatalf("anchor stopped filtering after a covered unsubscribe")
	}
}

// TestRestoreFencedUntilFullSync is the regression test for the local-id
// reuse hazard: restoring a subscription under a retired id before the
// retraction has reached the whole network would let the newcomer inherit
// the dead subscription's remote rows. The id must stay fenced until a
// full sync confirms every merged summary was rebuilt.
func TestRestoreFencedUntilFullSync(t *testing.T) {
	b := newBroker(t, 0, 2)
	sub, _ := schema.ParseSubscription(testSchema(t), `price > 1`)
	id1, err := b.Subscribe(sub, noDeliver)
	if err != nil {
		t.Fatal(err)
	}
	b.TakeDelta()
	if err := b.Unsubscribe(id1); err != nil {
		t.Fatal(err)
	}
	err = b.Restore(id1.Local, sub, noDeliver)
	if err == nil {
		t.Fatalf("Restore reused a fenced local id")
	}
	if !strings.Contains(err.Error(), "fenced") {
		t.Fatalf("Restore error = %v, want a fence rejection", err)
	}
	b.TakePeriodSummary(true)
	b.FinishFullSync()
	if err := b.Restore(id1.Local, sub, noDeliver); err != nil {
		t.Fatalf("Restore after full sync: %v", err)
	}
}

// TestFenceSurvivesMidSyncRetirement: an id retired while a full-sync
// period is in flight had its rows in the sync payload, so that sync
// cannot clear it — only the next one can.
func TestFenceSurvivesMidSyncRetirement(t *testing.T) {
	b := newBroker(t, 0, 2)
	sub, _ := schema.ParseSubscription(testSchema(t), `price > 1`)
	early, err := b.Subscribe(sub, noDeliver)
	if err != nil {
		t.Fatal(err)
	}
	late, err := b.Subscribe(sub, noDeliver)
	if err != nil {
		t.Fatal(err)
	}
	b.TakeDelta()
	if err := b.Unsubscribe(early); err != nil {
		t.Fatal(err)
	}

	b.TakePeriodSummary(true) // sync payload taken; early's fence is clearable
	if err := b.Unsubscribe(late); err != nil {
		t.Fatal(err) // late's rows are IN the sync payload: must stay fenced
	}
	b.FinishFullSync()

	if err := b.Restore(early.Local, sub, noDeliver); err != nil {
		t.Fatalf("pre-sync fence not lifted: %v", err)
	}
	if err := b.Restore(late.Local, sub, noDeliver); err == nil {
		t.Fatalf("mid-sync fence was lifted with its rows still in remote summaries")
	}
	b.TakePeriodSummary(true)
	b.FinishFullSync()
	if err := b.Restore(late.Local, sub, noDeliver); err != nil {
		t.Fatalf("fence not lifted by the following sync: %v", err)
	}
}

// TestAmortizedCompaction: n unsubscribes trigger O(n / threshold)
// compactions, not n — the core of the churn-cost fix.
func TestAmortizedCompaction(t *testing.T) {
	b := newBroker(t, 0, 2)
	sub, _ := schema.ParseSubscription(testSchema(t), `price > 1`)
	var ids []subid.ID
	const n = 100
	for i := 0; i < n; i++ {
		id, err := b.Subscribe(sub, noDeliver)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	b.TakeDelta()
	for _, id := range ids {
		if err := b.Unsubscribe(id); err != nil {
			t.Fatal(err)
		}
	}
	got := b.Stats().Compactions
	if got == 0 {
		t.Fatalf("no compaction over %d removals — fragmentation unbounded", n)
	}
	if max := int64(n / compactMinRemovals); got > max {
		t.Fatalf("Compactions = %d over %d removals, want amortized ≤ %d", got, n, max)
	}
}
