package subgroup

import (
	"testing"

	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
)

// analyticsFixture hand-builds a two-group network whose digest behavior
// is fully deterministic. Group 1's digest checks attribute
// satisfiability independently, so an event combining broker 2's
// x-range with broker 3's y-range passes the digest while the merged
// summary — which keeps per-subscription precision — names no owner:
// a guaranteed pass-but-no-delivery (measured digest false positive).
func analyticsFixture(t *testing.T) (*topology.Graph, *schema.Schema, []*summary.Summary, *Plan) {
	t.Helper()
	s := schema.MustNew(
		schema.Attribute{Name: "x", Type: schema.TypeFloat},
		schema.Attribute{Name: "y", Type: schema.TypeFloat},
	)
	subs := []string{
		"x > 100",           // broker 0 (group 0)
		"x > 100",           // broker 1 (group 0)
		"x < 10 && y > 50",  // broker 2 (group 1)
		"x > 20 && x < 30 && y < 5", // broker 3 (group 1)
	}
	own := make([]*summary.Summary, len(subs))
	for i, text := range subs {
		sub, err := schema.ParseSubscription(s, text)
		if err != nil {
			t.Fatalf("ParseSubscription(%q): %v", text, err)
		}
		sm := summary.New(s, interval.Lossy)
		if err := sm.Insert(subid.ID{Broker: subid.BrokerID(i)}, sub); err != nil {
			t.Fatal(err)
		}
		own[i] = sm
	}
	plan := &Plan{
		Groups:  [][]topology.NodeID{{0, 1}, {2, 3}},
		Leaders: []topology.NodeID{0, 2},
		GroupOf: []int{0, 0, 1, 1},
	}
	return topology.Ring(4), s, own, plan
}

// TestRouterAnalyticsDeterministic drives the hand-built fixture through
// the three digest outcomes — prune, pass-with-delivery, and
// pass-but-no-delivery — and checks the exact counter values.
func TestRouterAnalyticsDeterministic(t *testing.T) {
	g, s, own, plan := analyticsFixture(t)
	res, err := Propagate(g, own, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(g, res)
	if err != nil {
		t.Fatal(err)
	}
	ev := func(text string) *schema.Event {
		e, err := schema.ParseEvent(s, text)
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", text, err)
		}
		return e
	}
	// All from origin 0 (home group 0):
	// x=200: matches group 0; group 1's digest prunes (no hull holds 200).
	// x=25,y=3: group 1 digest passes and broker 3 matches — delivery.
	// x=25,y=60: group 1 digest passes (x via broker 3's hull, y via
	// broker 2's) but neither subscription matches — pass-no-deliver.
	r.Route(0, ev("x=200 y=0"))
	tr := r.Route(0, ev("x=25 y=3"))
	if len(tr.Delivered) != 1 || tr.Delivered[0] != 3 {
		t.Fatalf("pass-with-delivery event delivered to %v, want [3]", tr.Delivered)
	}
	tr = r.Route(0, ev("x=25 y=60"))
	if len(tr.Delivered) != 0 {
		t.Fatalf("pass-no-deliver event delivered to %v, want none", tr.Delivered)
	}

	rep := r.Analytics()
	if rep.Events != 3 {
		t.Fatalf("events = %d, want 3", rep.Events)
	}
	g0, g1 := rep.Groups[0], rep.Groups[1]
	if g0.HomeEvents != 3 || g0.LeaderEvents != 3 || g0.Pruned != 0 || g0.Passes != 0 {
		t.Fatalf("group 0 counters %+v", g0)
	}
	if g1.Pruned != 1 || g1.Passes != 2 || g1.PassNoDeliver != 1 || g1.LeaderEvents != 2 {
		t.Fatalf("group 1 counters %+v", g1)
	}
	if g1.DigestFPRate != 0.5 {
		t.Fatalf("group 1 digest FP rate %v, want 0.5", g1.DigestFPRate)
	}
	if want := 1.0 / 3.0; g1.PruneRate != want {
		t.Fatalf("group 1 prune rate %v, want %v", g1.PruneRate, want)
	}
	// Leader loads 3 and 2 over 2 groups: skew = 3 / 2.5.
	if want := 3.0 / 2.5; rep.LeaderSkew != want {
		t.Fatalf("leader skew %v, want %v", rep.LeaderSkew, want)
	}
	if rep.DesignFPRate < 0.011 || rep.DesignFPRate > 0.013 {
		t.Fatalf("design FP rate %v outside the 10-bit/4-probe point", rep.DesignFPRate)
	}
}

// TestRouterAnalyticsInvariants routes a realistic workload batch and
// checks the conservation laws every snapshot must satisfy: each event
// is consulted exactly once per foreign group, and a leader's load is
// its home events plus the passes that reached it.
func TestRouterAnalyticsInvariants(t *testing.T) {
	regions := []int{0, 0, 0, 0, 1, 1, 1, 1}
	own, gens := matchableRegionSummaries(t, regions, 20, 53)
	g := topology.Ring(len(regions))
	_, r := subgroupOver(t, g, own)

	const events = 120
	for k := 0; k < events; k++ {
		gen := gens[k%2]
		r.Route(topology.NodeID(k%g.Len()), gen.Event(0.5))
	}
	rep := r.Analytics()
	if rep.Events != events {
		t.Fatalf("events = %d, want %d", rep.Events, events)
	}
	var homeSum int64
	for _, ga := range rep.Groups {
		homeSum += ga.HomeEvents
		if got := ga.HomeEvents + ga.Pruned + ga.Passes; got != events {
			t.Fatalf("group %d: home %d + pruned %d + passes %d = %d, want %d",
				ga.Group, ga.HomeEvents, ga.Pruned, ga.Passes, got, events)
		}
		if got := ga.HomeEvents + ga.Passes; got != ga.LeaderEvents {
			t.Fatalf("group %d: leader events %d != home %d + passes %d",
				ga.Group, ga.LeaderEvents, ga.HomeEvents, ga.Passes)
		}
		if ga.PassNoDeliver > ga.Passes {
			t.Fatalf("group %d: pass-no-deliver %d exceeds passes %d",
				ga.Group, ga.PassNoDeliver, ga.Passes)
		}
	}
	if homeSum != events {
		t.Fatalf("home events sum to %d, want %d", homeSum, events)
	}
	if rep.LeaderSkew < 1 {
		t.Fatalf("leader skew %v below 1 (max must be >= mean)", rep.LeaderSkew)
	}
}

// TestRouterInstrumentAndFlight exercises the snapshot exports: gauges
// land in the registry under per-group labels, and RecordFlight journals
// one EvSubgroupDigest record per group carrying the leader and counts.
func TestRouterInstrumentAndFlight(t *testing.T) {
	g, s, own, plan := analyticsFixture(t)
	res, err := Propagate(g, own, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(g, res)
	if err != nil {
		t.Fatal(err)
	}
	e, err := schema.ParseEvent(s, "x=25 y=60")
	if err != nil {
		t.Fatal(err)
	}
	r.Route(0, e)

	reg := metrics.NewRegistry()
	r.Instrument(reg)
	m := reg.Map()
	if m["subgroup_digest_passes{1}"] != 1 {
		t.Fatalf("subgroup_digest_passes{1} = %v, want 1 (have %v)", m["subgroup_digest_passes{1}"], m)
	}
	if m["subgroup_digest_pass_no_deliver{1}"] != 1 {
		t.Fatalf("subgroup_digest_pass_no_deliver{1} = %v, want 1", m["subgroup_digest_pass_no_deliver{1}"])
	}
	if m["subgroup_leader_events{0}"] != 1 {
		t.Fatalf("subgroup_leader_events{0} = %v, want 1", m["subgroup_leader_events{0}"])
	}
	if m["subgroup_digest_fp_rate_ppm"] != 1e6 {
		t.Fatalf("subgroup_digest_fp_rate_ppm = %v, want 1e6", m["subgroup_digest_fp_rate_ppm"])
	}

	rec := flight.NewRecorder(1 << 16)
	r.RecordFlight(rec)
	var digests int
	for _, record := range rec.Records() {
		if record.Type == flight.EvSubgroupDigest {
			digests++
			if int(record.A) == 1 {
				if record.Broker != 2 || record.C != 1 {
					t.Fatalf("group 1 record %+v: want leader 2, pass-no-deliver 1", record)
				}
			}
		}
	}
	if digests != plan.NumGroups() {
		t.Fatalf("journalled %d digest records, want %d", digests, plan.NumGroups())
	}
	// Nil attachments must be no-ops, not panics.
	r.Instrument(nil)
	r.RecordFlight(nil)
}

// TestDigestEpochStamp covers the epoch plumbing: StampEpoch marks every
// digest, and the epoch survives the wire round trip.
func TestDigestEpochStamp(t *testing.T) {
	g, _, own, plan := analyticsFixture(t)
	res, err := Propagate(g, own, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	res.StampEpoch(42)
	for gi, d := range res.Digests {
		if d.Epoch != 42 {
			t.Fatalf("group %d digest epoch %d, want 42", gi, d.Epoch)
		}
		dec, err := DecodeDigest(d.Encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		if dec.Epoch != 42 {
			t.Fatalf("group %d decoded epoch %d, want 42", gi, dec.Epoch)
		}
	}
}
