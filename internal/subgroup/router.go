package subgroup

import (
	"fmt"
	"sort"

	"github.com/subsum/subsum/internal/routing"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
)

// Router routes events over a subgrouped propagation result: the
// digest-first variant of Algorithm 3. The event hops to its origin's
// subgroup leader — the rendezvous broker holding the merged subgroup
// summary — which matches and delivers for the home group, then
// consults the other subgroups' digests: a pruned subgroup is covered
// without any message, a passing subgroup costs one forward hop to its
// leader, which matches its subgroup summary and delivers. Both this
// router and the flat one over-approximate and never lose an owner, so
// end-to-end delivered sets (after owner-side verification) are
// identical; candidate sets coincide too under merge-grouping-
// independent workloads (DESIGN.md §Subgrouping). Hops shrink because
// whole subgroups leave the walk in one check.
type Router struct {
	g     *topology.Graph
	res   *Result
	stats routerStats
}

// NewRouter builds a digest-first router over a subgrouped propagation
// result.
func NewRouter(g *topology.Graph, res *Result) (*Router, error) {
	if res.NumBrokers != g.Len() {
		return nil, fmt.Errorf("subgroup: propagation result covers %d brokers, overlay has %d",
			res.NumBrokers, g.Len())
	}
	r := &Router{g: g, res: res}
	r.stats.init(res.Plan.NumGroups())
	return r, nil
}

// Route processes one event entering at origin and returns the same
// trace shape as the flat router, so experiments compare the two
// directly. Hop accounting mirrors the paper's: every broker-to-broker
// message is one hop regardless of overlay adjacency.
func (r *Router) Route(origin topology.NodeID, e *schema.Event) *routing.Trace {
	plan := r.res.Plan
	gi := plan.GroupOf[origin]
	trace := &routing.Trace{Origin: origin, Visited: []topology.NodeID{origin}}
	delivered := make(map[topology.NodeID]bool, 8)

	// deliverFrom credits the matched owners at one leader. The owner
	// list is resolved by the caller so digest analytics can observe it:
	// a digest pass whose subgroup summary then names no owner at all is
	// a measured digest false positive (pass-but-no-delivery).
	deliverFrom := func(at topology.NodeID, owners []topology.NodeID) {
		for _, owner := range owners {
			if delivered[owner] {
				continue
			}
			delivered[owner] = true
			trace.Delivered = append(trace.Delivered, owner)
			if owner != at {
				trace.DeliveryHops++
			}
		}
	}

	// The merged subgroup summary and the digests live at the leader:
	// the event's first (and often only) forward hop.
	leader := plan.Leaders[gi]
	if leader != origin {
		trace.ForwardHops++
		trace.Visited = append(trace.Visited, leader)
	}
	r.stats.home(gi)
	deliverFrom(leader, r.ownersOf(gi, e))
	for gj := 0; gj < plan.NumGroups(); gj++ {
		if gj == gi {
			continue
		}
		if !r.res.Digests[gj].MayMatch(e) {
			r.stats.prune(gj)
			continue // whole subgroup pruned, zero messages
		}
		lj := plan.Leaders[gj]
		trace.ForwardHops++
		trace.Visited = append(trace.Visited, lj)
		owners := r.ownersOf(gj, e)
		r.stats.pass(gj, len(owners) == 0)
		deliverFrom(lj, owners)
	}
	return trace
}

// ownersOf matches the event against one subgroup's merged summary and
// returns the distinct owning brokers, ascending.
func (r *Router) ownersOf(group int, e *schema.Event) []topology.NodeID {
	keys := r.res.Merged[group].MatchKeys(e)
	if len(keys) == 0 {
		return nil
	}
	seen := make(map[topology.NodeID]bool, 8)
	out := make([]topology.NodeID, 0, 8)
	for _, key := range keys {
		broker, _ := subid.KeyParts(key)
		owner := topology.NodeID(broker)
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
