package subgroup

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
)

// Digest is the compact cross-border form of one subgroup's merged
// summary: enough to decide "could any subscription in this group match
// this event" without shipping the summary itself. It over-approximates
// by construction — interval hulls cover every range row, a Bloom
// filter covers every equality value and string prefix key, wildcard
// flags cover everything a prefix cannot bound — so MayMatch can return
// false positives (a wasted hop) but never false negatives (a lost
// event). See DESIGN.md §Subgrouping for the soundness argument.
type Digest struct {
	Group    int
	Members  subid.Mask // broker ids in the subgroup
	NumAttrs int
	// Epoch is the propagation period the digest was compiled in (0 =
	// unstamped). Leaders exchange digests every period; the epoch lets a
	// receiver tell a fresh digest from a stale one and feeds the same
	// convergence accounting the flat path's summary headers carry.
	Epoch uint64

	Arith map[schema.AttrID]*ArithDigest
	Str   map[schema.AttrID]*StrDigest

	// Masks are the distinct c3 attribute masks over the group's
	// subscriptions: a sub can match only if every attribute in its mask
	// is individually satisfiable.
	Masks []subid.Mask

	bloom bloomFilter
}

// ArithDigest is the per-arithmetic-attribute slice of a Digest.
type ArithDigest struct {
	Hulls []interval.Interval
	HasNE bool // a ≠ row matches every value but one: always satisfiable
	HasEq bool // equality values present (tested through the Bloom filter)
}

// StrDigest is the per-string-attribute slice of a Digest.
type StrDigest struct {
	Wild    bool // a row no prefix key bounds: always satisfiable
	HasKeys bool // prefix keys present (tested through the Bloom filter)
}

// arithKind/strKind salt the Bloom keys so an arithmetic value and a
// string key never alias across attribute types.
const (
	arithKind = 0
	strKind   = 1
)

// BuildDigest compiles a subgroup's merged-summary signature into its
// digest. numBrokers sizes the member mask; numAttrs is the schema's
// attribute count (the width of the satisfiability mask MayMatch
// builds).
func BuildDigest(group int, members []topology.NodeID, numBrokers, numAttrs int, sig *summary.Signature) *Digest {
	d := &Digest{
		Group:    group,
		Members:  subid.NewMask(numBrokers),
		NumAttrs: numAttrs,
		Arith:    make(map[schema.AttrID]*ArithDigest, len(sig.Arith)),
		Str:      make(map[schema.AttrID]*StrDigest, len(sig.Str)),
		Masks:    sig.Masks,
	}
	for _, m := range members {
		d.Members.Set(int(m))
	}
	entries := 0
	for _, as := range sig.Arith {
		entries += len(as.EqBits)
	}
	for _, ss := range sig.Str {
		entries += len(ss.Keys)
	}
	d.bloom = newBloom(entries)
	for a, as := range sig.Arith {
		ad := &ArithDigest{Hulls: as.Hulls, HasNE: as.HasNE, HasEq: len(as.EqBits) > 0}
		for _, bits := range as.EqBits {
			d.bloom.add(bloomKey(a, arithKind, bits))
		}
		d.Arith[a] = ad
	}
	for a, ss := range sig.Str {
		sd := &StrDigest{Wild: ss.Wild, HasKeys: len(ss.Keys) > 0}
		for _, k := range ss.Keys {
			d.bloom.add(bloomKey(a, strKind, k.Hash))
		}
		d.Str[a] = sd
	}
	return d
}

// MayMatch reports whether some subscription summarized in this group
// could match the event: it marks each event attribute satisfiable if
// the group's digest admits its value (hull containment, Bloom hit, or
// wildcard), then checks whether any subscription attribute mask is
// fully satisfiable. Sound: if a subscription in the group matches the
// event exactly, MayMatch is true.
func (d *Digest) MayMatch(e *schema.Event) bool {
	var satStack [4]uint64
	words := (d.NumAttrs + 63) / 64
	var sat []uint64
	if words <= len(satStack) {
		sat = satStack[:words]
		for i := range sat {
			sat[i] = 0
		}
	} else {
		sat = make([]uint64, words)
	}
	any := false
	for _, f := range e.Fields() {
		a := f.Attr
		if int(a) >= d.NumAttrs {
			continue
		}
		ok := false
		if ad, hit := d.Arith[a]; hit {
			v := f.Value.Num
			ok = ad.HasNE ||
				(ad.HasEq && d.bloom.has(bloomKey(a, arithKind, math.Float64bits(v))))
			if !ok {
				for _, h := range ad.Hulls {
					if h.Contains(v) {
						ok = true
						break
					}
				}
			}
		} else if sd, hit := d.Str[a]; hit {
			ok = sd.Wild ||
				(sd.HasKeys && d.bloom.has(bloomKey(a, strKind, summary.StrKeyOf(f.Value.Str))))
		}
		if ok {
			sat[int(a)>>6] |= 1 << (uint(a) & 63)
			any = true
		}
	}
	if !any {
		return false
	}
	for _, m := range d.Masks {
		if maskSubset(m, sat) {
			return true
		}
	}
	return false
}

// maskSubset reports m ⊆ sat word-wise, treating words beyond sat as
// zero.
func maskSubset(m subid.Mask, sat []uint64) bool {
	for w, bits := range m {
		var s uint64
		if w < len(sat) {
			s = sat[w]
		}
		if bits&^s != 0 {
			return false
		}
	}
	return true
}

// bloomKey mixes the attribute id, the value kind, and the value hash
// into one 64-bit Bloom key.
func bloomKey(a schema.AttrID, kind uint64, v uint64) uint64 {
	x := (uint64(a) + 1) * 0x9E3779B97F4A7C15
	x ^= (kind + 1) * 0xBF58476D1CE4E5B9
	return splitmix64(x ^ v)
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// bloomFilter is a fixed-size double-hashed Bloom filter (~10 bits and 4
// probes per entry: ≈1% false-positive rate at capacity).
type bloomFilter struct {
	words []uint64
	k     uint32
}

func newBloom(entries int) bloomFilter {
	bits := 64
	for bits < entries*10 {
		bits <<= 1
	}
	return bloomFilter{words: make([]uint64, bits/64), k: 4}
}

func (b bloomFilter) mask() uint64 { return uint64(len(b.words))*64 - 1 }

func (b bloomFilter) add(h uint64) {
	h2 := splitmix64(h) | 1
	for i := uint64(0); i < uint64(b.k); i++ {
		bit := (h + i*h2) & b.mask()
		b.words[bit>>6] |= 1 << (bit & 63)
	}
}

func (b bloomFilter) has(h uint64) bool {
	h2 := splitmix64(h) | 1
	for i := uint64(0); i < uint64(b.k); i++ {
		bit := (h + i*h2) & b.mask()
		if b.words[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// Encode serializes the digest (appending to buf) — the honest
// cross-border wire cost the overlay experiments charge per
// leader-to-leader exchange. DecodeDigest inverts it.
func (d *Digest) Encode(buf []byte) []byte {
	buf = putUvarint(buf, uint64(d.Group))
	buf = putUvarint(buf, d.Epoch)
	buf = putUvarint(buf, uint64(d.NumAttrs))
	buf = putWords(buf, d.Members)
	buf = putUvarint(buf, uint64(len(d.Arith)))
	for _, a := range sortedArithDigestIDs(d.Arith) {
		ad := d.Arith[a]
		buf = putUvarint(buf, uint64(a))
		var flags byte
		if ad.HasNE {
			flags |= 1
		}
		if ad.HasEq {
			flags |= 2
		}
		buf = append(buf, flags)
		buf = putUvarint(buf, uint64(len(ad.Hulls)))
		for _, h := range ad.Hulls {
			buf = putU64(buf, math.Float64bits(h.Lo))
			buf = putU64(buf, math.Float64bits(h.Hi))
			var open byte
			if h.LoOpen {
				open |= 1
			}
			if h.HiOpen {
				open |= 2
			}
			buf = append(buf, open)
		}
	}
	buf = putUvarint(buf, uint64(len(d.Str)))
	for _, a := range sortedStrDigestIDs(d.Str) {
		sd := d.Str[a]
		buf = putUvarint(buf, uint64(a))
		var flags byte
		if sd.Wild {
			flags |= 1
		}
		if sd.HasKeys {
			flags |= 2
		}
		buf = append(buf, flags)
	}
	buf = putUvarint(buf, uint64(len(d.Masks)))
	for _, m := range d.Masks {
		buf = putWords(buf, m)
	}
	buf = putUvarint(buf, uint64(d.bloom.k))
	buf = putWords(buf, d.bloom.words)
	return buf
}

// DecodeDigest parses an encoded digest.
func DecodeDigest(data []byte) (*Digest, error) {
	r := &byteReader{data: data}
	d := &Digest{
		Group:    int(r.uvarint()),
		Epoch:    r.uvarint(),
		NumAttrs: int(r.uvarint()),
	}
	d.Members = subid.Mask(r.words())
	nArith := int(r.uvarint())
	d.Arith = make(map[schema.AttrID]*ArithDigest, nArith)
	for i := 0; i < nArith && !r.failed; i++ {
		a := schema.AttrID(r.uvarint())
		flags := r.byte()
		ad := &ArithDigest{HasNE: flags&1 != 0, HasEq: flags&2 != 0}
		nh := int(r.uvarint())
		for j := 0; j < nh && !r.failed; j++ {
			lo := math.Float64frombits(r.u64())
			hi := math.Float64frombits(r.u64())
			open := r.byte()
			ad.Hulls = append(ad.Hulls, interval.Interval{
				Lo: lo, Hi: hi, LoOpen: open&1 != 0, HiOpen: open&2 != 0,
			})
		}
		d.Arith[a] = ad
	}
	nStr := int(r.uvarint())
	d.Str = make(map[schema.AttrID]*StrDigest, nStr)
	for i := 0; i < nStr && !r.failed; i++ {
		a := schema.AttrID(r.uvarint())
		flags := r.byte()
		d.Str[a] = &StrDigest{Wild: flags&1 != 0, HasKeys: flags&2 != 0}
	}
	nMasks := int(r.uvarint())
	for i := 0; i < nMasks && !r.failed; i++ {
		d.Masks = append(d.Masks, subid.Mask(r.words()))
	}
	d.bloom.k = uint32(r.uvarint())
	d.bloom.words = r.words()
	if r.failed || r.pos != len(r.data) {
		return nil, fmt.Errorf("subgroup: malformed digest (%d/%d bytes)", r.pos, len(r.data))
	}
	if len(d.bloom.words) == 0 || len(d.bloom.words)&(len(d.bloom.words)-1) != 0 {
		return nil, fmt.Errorf("subgroup: digest bloom size %d not a power of two", len(d.bloom.words))
	}
	return d, nil
}

func sortedArithDigestIDs(m map[schema.AttrID]*ArithDigest) []schema.AttrID {
	out := make([]schema.AttrID, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func sortedStrDigestIDs(m map[schema.AttrID]*StrDigest) []schema.AttrID {
	out := make([]schema.AttrID, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func putUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

func putU64(buf []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(buf, tmp[:]...)
}

func putWords(buf []byte, words []uint64) []byte {
	buf = putUvarint(buf, uint64(len(words)))
	for _, w := range words {
		buf = putU64(buf, w)
	}
	return buf
}

type byteReader struct {
	data   []byte
	pos    int
	failed bool
}

func (r *byteReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.failed = true
		return 0
	}
	r.pos += n
	return v
}

func (r *byteReader) byte() byte {
	if r.pos >= len(r.data) {
		r.failed = true
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *byteReader) u64() uint64 {
	if r.pos+8 > len(r.data) {
		r.failed = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

func (r *byteReader) words() []uint64 {
	n := int(r.uvarint())
	if r.failed || n < 0 || r.pos+8*n > len(r.data) {
		r.failed = true
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.u64()
	}
	return out
}
