package subgroup

import (
	"sort"
	"testing"

	"github.com/subsum/subsum/internal/propagation"
	"github.com/subsum/subsum/internal/routing"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
)

// flatSetup runs flat propagation and builds the flat router.
func flatSetup(t testing.TB, g *topology.Graph, own []*summary.Summary) (*propagation.Result, *routing.Router) {
	t.Helper()
	prop, err := propagation.Run(g, own, propagation.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	r, err := routing.NewRouter(g, prop, routing.Config{Strategy: routing.HighestDegree})
	if err != nil {
		t.Fatal(err)
	}
	return prop, r
}

// flatDeliver routes one event through the flat router and returns the
// delivered set, sorted.
func flatDeliver(r *routing.Router, prop *propagation.Result, origin topology.NodeID, ev *schema.Event) []topology.NodeID {
	match := func(at topology.NodeID) []topology.NodeID {
		var out []topology.NodeID
		for _, id := range prop.Merged[at].Match(ev) {
			out = append(out, topology.NodeID(id.Broker))
		}
		return out
	}
	trace := r.Route(origin, match)
	out := append([]topology.NodeID(nil), trace.Delivered...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedDelivered(trace *routing.Trace) []topology.NodeID {
	out := append([]topology.NodeID(nil), trace.Delivered...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameNodes(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// exactOwners computes ground truth straight from each broker's own
// summary: the brokers whose own rows match the event. Both routers'
// delivered sets must contain every one of them (zero lost events); with
// merge-grouping-independent workloads they equal it exactly at the
// summary level.
func exactOwners(own []*summary.Summary, ev *schema.Event) []topology.NodeID {
	var out []topology.NodeID
	for i, sm := range own {
		if len(sm.MatchKeys(ev)) > 0 {
			out = append(out, topology.NodeID(i))
		}
	}
	return out
}

func containsAll(set, subset []topology.NodeID) bool {
	have := make(map[topology.NodeID]bool, len(set))
	for _, n := range set {
		have[n] = true
	}
	for _, n := range subset {
		if !have[n] {
			return false
		}
	}
	return true
}

// accepted filters a candidate delivery set down to the owners whose own
// rows actually match — the owner-side verification every summary-routed
// system performs before handing the event to subscribers. Candidate
// sets at summary granularity are merge-grouping dependent (lossy folds
// differ between flat partial merges and subgroup merges; DESIGN.md
// §Subgrouping); the accepted set is the end-to-end delivery and must be
// identical.
func accepted(candidates []topology.NodeID, own []*summary.Summary, ev *schema.Event) []topology.NodeID {
	var out []topology.NodeID
	for _, n := range candidates {
		if len(own[n].MatchKeys(ev)) > 0 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestSubgroupFlatEquivalence is the differential suite: on CW24, the
// Figure 7 tree, and a generated 128-broker transit-stub overlay, the
// digest-first subgrouped router and flat Algorithm 3 routing must
// deliver every event to exactly the same subscriber-owning brokers,
// for every event, from rotating origins. Three invariants per event:
// both candidate sets cover the exact owners (zero lost events on
// either path), and both accepted sets — candidates that survive the
// owner's own-row verification — are identical and equal to the exact
// owner set. Candidate sets themselves may differ: lossy folding is
// merge-grouping dependent, so flat partial merges and subgroup merges
// over-approximate differently (never under).
func TestSubgroupFlatEquivalence(t *testing.T) {
	ts, tsRegions := topology.TransitStubRegions(128, 77)
	cases := []struct {
		g       *topology.Graph
		regions []int
		sigma   int
		events  int
	}{
		{topology.Figure7Tree(), modRegions(13, 3), 15, 300},
		{topology.CW24(), modRegions(24, 4), 12, 300},
		{ts, tsRegions, 8, 200},
	}
	for _, tc := range cases {
		own, gens := matchableRegionSummaries(t, tc.regions, tc.sigma, 23)
		prop, flat := flatSetup(t, tc.g, own)
		_, sub := subgroupOver(t, tc.g, own)

		regionIDs := make([]int, 0, len(gens))
		for r := range gens {
			regionIDs = append(regionIDs, r)
		}
		sort.Ints(regionIDs)

		matched, spuriousFlat, spuriousSub := 0, 0, 0
		for k := 0; k < tc.events; k++ {
			gen := gens[regionIDs[k%len(regionIDs)]]
			for _, hitRate := range []float64{0.2, 0.8} {
				ev := gen.Event(hitRate)
				origin := topology.NodeID(k % tc.g.Len())
				flatCand := flatDeliver(flat, prop, origin, ev)
				subCand := sortedDelivered(sub.Route(origin, ev))
				exact := exactOwners(own, ev)
				if !containsAll(flatCand, exact) {
					t.Fatalf("%s: event %d: flat lost deliveries: exact owners %v, candidates %v",
						tc.g.Name(), k, exact, flatCand)
				}
				if !containsAll(subCand, exact) {
					t.Fatalf("%s: event %d: subgrouped lost deliveries: exact owners %v, candidates %v",
						tc.g.Name(), k, exact, subCand)
				}
				flatAcc := accepted(flatCand, own, ev)
				subAcc := accepted(subCand, own, ev)
				if !sameNodes(flatAcc, subAcc) {
					t.Fatalf("%s: event %d origin %d: subgrouped delivered %v, flat delivered %v",
						tc.g.Name(), k, origin, subAcc, flatAcc)
				}
				if !sameNodes(flatAcc, exact) {
					t.Fatalf("%s: event %d: accepted set %v != exact owners %v",
						tc.g.Name(), k, flatAcc, exact)
				}
				if len(exact) > 0 {
					matched++
				}
				spuriousFlat += len(flatCand) - len(flatAcc)
				spuriousSub += len(subCand) - len(subAcc)
			}
		}
		if matched == 0 {
			t.Fatalf("%s: no event matched any broker — equivalence vacuous", tc.g.Name())
		}
		t.Logf("%s: %d matching events; spurious candidates flat %d, subgrouped %d",
			tc.g.Name(), matched, spuriousFlat, spuriousSub)
	}
}

// TestSubgroupPrunesMessages: at transit-stub scale the digest-first
// walk must examine far fewer brokers than the flat walk — the whole
// point of subgrouping. Compared on total forward hops over an event
// batch.
func TestSubgroupPrunesMessages(t *testing.T) {
	g, regions := topology.TransitStubRegions(128, 19)
	own, gens := matchableRegionSummaries(t, regions, 8, 37)
	prop, flat := flatSetup(t, g, own)
	_, sub := subgroupOver(t, g, own)

	regionIDs := make([]int, 0, len(gens))
	for r := range gens {
		regionIDs = append(regionIDs, r)
	}
	sort.Ints(regionIDs)

	var flatForward, subForward int
	for k := 0; k < 150; k++ {
		gen := gens[regionIDs[k%len(regionIDs)]]
		ev := gen.Event(0.5)
		origin := topology.NodeID(k % g.Len())
		match := func(at topology.NodeID) []topology.NodeID {
			var out []topology.NodeID
			for _, id := range prop.Merged[at].Match(ev) {
				out = append(out, topology.NodeID(id.Broker))
			}
			return out
		}
		flatForward += flat.Route(origin, match).ForwardHops
		subForward += sub.Route(origin, ev).ForwardHops
	}
	if subForward >= flatForward {
		t.Fatalf("subgrouped forward hops %d not below flat %d", subForward, flatForward)
	}
	t.Logf("forward hops over 150 events: flat %d, subgrouped %d", flatForward, subForward)
}

// TestSubgroupStockWorkload runs the equivalence check on the unmodified
// paper workload too: matches are rare there, but the end-to-end
// delivered sets — mostly empty, occasionally not — must still agree
// event for event, and neither path may lose an exact owner.
func TestSubgroupStockWorkload(t *testing.T) {
	g := topology.CW24()
	regions := modRegions(24, 3)
	own, gens := regionSummaries(t, regions, 20, 67)
	prop, flat := flatSetup(t, g, own)
	_, sub := subgroupOver(t, g, own)
	gen := gens[0]
	for k := 0; k < 400; k++ {
		ev := gen.Event(0.9)
		origin := topology.NodeID(k % g.Len())
		flatCand := flatDeliver(flat, prop, origin, ev)
		subCand := sortedDelivered(sub.Route(origin, ev))
		exact := exactOwners(own, ev)
		if !containsAll(flatCand, exact) || !containsAll(subCand, exact) {
			t.Fatalf("event %d: lost deliveries: exact %v, flat %v, subgrouped %v",
				k, exact, flatCand, subCand)
		}
		if got, want := accepted(subCand, own, ev), accepted(flatCand, own, ev); !sameNodes(got, want) {
			t.Fatalf("event %d origin %d: subgrouped delivered %v != flat %v", k, origin, got, want)
		}
	}
}
