package subgroup

import (
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// regionGenerators builds one workload generator per distinct region id.
// All generators share one schema shape (so their summaries interoperate)
// but draw values from region-private bands — the correlated-interest
// setting subgrouping is designed for.
func regionGenerators(t testing.TB, regions []int, seed int64) map[int]*workload.Generator {
	return regionGeneratorsCfg(t, regions, seed, workload.DefaultConfig())
}

func regionGeneratorsCfg(t testing.TB, regions []int, seed int64, base workload.Config) map[int]*workload.Generator {
	t.Helper()
	gens := make(map[int]*workload.Generator)
	for _, r := range regions {
		if _, ok := gens[r]; ok {
			continue
		}
		cfg := base
		cfg.Region = r
		cfg.Seed = seed + int64(r)
		gen, err := workload.NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gens[r] = gen
	}
	return gens
}

// matchableConfig is the stock workload reshaped so random events have a
// realistic chance of matching: short conjunctions, all-canonical
// constraints, and events carrying every attribute. The stock 5-attr
// conjunctions over 10 attributes match a random 5-attr event with
// probability ≈ 1/252 before value checks — far too sparse for
// delivery-set tests.
func matchableConfig() workload.Config {
	cfg := workload.DefaultConfig()
	cfg.AttrsPerSub = 2
	cfg.AttrsPerEvent = cfg.NumAttrs
	cfg.Subsumption = 1
	return cfg
}

// regionSummaries builds sigma-subscription summaries for each broker,
// drawing broker i's subscriptions from its region's generator.
func regionSummaries(t testing.TB, regions []int, sigma int, seed int64) ([]*summary.Summary, map[int]*workload.Generator) {
	t.Helper()
	return summariesFrom(t, regions, sigma, regionGenerators(t, regions, seed))
}

// matchableRegionSummaries is regionSummaries over matchableConfig.
func matchableRegionSummaries(t testing.TB, regions []int, sigma int, seed int64) ([]*summary.Summary, map[int]*workload.Generator) {
	t.Helper()
	return summariesFrom(t, regions, sigma, regionGeneratorsCfg(t, regions, seed, matchableConfig()))
}

func summariesFrom(t testing.TB, regions []int, sigma int, gens map[int]*workload.Generator) ([]*summary.Summary, map[int]*workload.Generator) {
	t.Helper()
	own := make([]*summary.Summary, len(regions))
	for i, r := range regions {
		gen := gens[r]
		sm := summary.New(gen.Schema(), interval.Lossy)
		for j := 0; j < sigma; j++ {
			id := subid.ID{Broker: subid.BrokerID(i), Local: subid.LocalID(j)}
			if err := sm.Insert(id, gen.Subscription()); err != nil {
				t.Fatal(err)
			}
		}
		own[i] = sm
	}
	return own, gens
}

func signaturesOf(own []*summary.Summary) []*summary.Signature {
	sigs := make([]*summary.Signature, len(own))
	for i, sm := range own {
		sigs[i] = sm.Signature(0)
	}
	return sigs
}

// modRegions assigns regions round-robin for hand-built topologies that
// have no transit-stub structure.
func modRegions(n, k int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i % k
	}
	return out
}

func subgroupOver(t testing.TB, g *topology.Graph, own []*summary.Summary) (*Result, *Router) {
	t.Helper()
	plan, err := Cluster(g, signaturesOf(own), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Propagate(g, own, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(g, res)
	if err != nil {
		t.Fatal(err)
	}
	return res, r
}
