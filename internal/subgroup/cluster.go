package subgroup

import (
	"fmt"
	"math"
	"sort"

	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
)

// Plan is a clustering of the overlay's brokers into subgroups. Groups
// are ordered by leader degree descending (leader id ascending on ties)
// — the order the router examines them in — and each group's member
// list is ascending by id.
type Plan struct {
	Groups  [][]topology.NodeID
	Leaders []topology.NodeID
	GroupOf []int
}

// NumGroups returns the number of subgroups.
func (p *Plan) NumGroups() int { return len(p.Groups) }

// Options parametrizes Cluster.
type Options struct {
	// TargetGroups is the number of seeds for the greedy pass; 0 picks
	// ⌈√n⌉ clamped to [2, 64]. The final plan can have fewer groups
	// (undersized groups are agglomerated into their most similar
	// neighbor).
	TargetGroups int
	// MinGroupSize agglomerates groups smaller than this into the group
	// whose seed is most similar; 0 means 2.
	MinGroupSize int
}

// Cluster groups brokers by summary-signature similarity: greedy
// farthest-first seeding (each new seed is the broker least similar to
// every existing seed), most-similar-seed assignment, then an
// agglomerative cleanup pass that merges undersized groups into their
// most similar seed. O(K·n) similarity evaluations, deterministic —
// every tie breaks toward the lower broker id.
func Cluster(g *topology.Graph, sigs []*summary.Signature, opt Options) (*Plan, error) {
	n := g.Len()
	if len(sigs) != n {
		return nil, fmt.Errorf("subgroup: %d signatures for %d brokers", len(sigs), n)
	}
	k := opt.TargetGroups
	if k <= 0 {
		k = int(math.Ceil(math.Sqrt(float64(n))))
		if k < 2 {
			k = 2
		}
		if k > 64 {
			k = 64
		}
	}
	if k > n {
		k = n
	}
	minSize := opt.MinGroupSize
	if minSize <= 0 {
		minSize = 2
	}

	// Farthest-first seeding from broker 0: the next seed is the broker
	// whose best similarity to any current seed is lowest.
	seeds := []int{0}
	isSeed := make([]bool, n)
	isSeed[0] = true
	bestToSeed := make([]float64, n) // max similarity to any chosen seed
	for i := 0; i < n; i++ {
		bestToSeed[i] = Similarity(sigs[i], sigs[0])
	}
	for len(seeds) < k {
		next, nextSim := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !isSeed[i] && bestToSeed[i] < nextSim {
				next, nextSim = i, bestToSeed[i]
			}
		}
		seeds = append(seeds, next)
		isSeed[next] = true
		for i := 0; i < n; i++ {
			if s := Similarity(sigs[i], sigs[next]); s > bestToSeed[i] {
				bestToSeed[i] = s
			}
		}
	}

	// Assignment: every broker joins its most similar seed (lowest seed
	// index on ties; a seed is maximally similar to itself).
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestSim := 0, math.Inf(-1)
		for si, s := range seeds {
			sim := Similarity(sigs[i], sigs[s])
			if i == s {
				sim = math.Inf(1)
			}
			if sim > bestSim {
				best, bestSim = si, sim
			}
		}
		assign[i] = best
	}

	// Agglomerate undersized groups into the most similar other seed.
	sizes := make([]int, len(seeds))
	for _, si := range assign {
		sizes[si]++
	}
	merged := make([]int, len(seeds)) // group si now lives in merged[si]
	for si := range merged {
		merged[si] = si
	}
	for si := range seeds {
		if sizes[si] >= minSize || sizes[si] == 0 {
			continue
		}
		tgt, tgtSim := -1, math.Inf(-1)
		for sj := range seeds {
			if sj == si || sizes[sj] == 0 || merged[sj] != sj {
				continue
			}
			if sim := Similarity(sigs[seeds[si]], sigs[seeds[sj]]); sim > tgtSim {
				tgt, tgtSim = sj, sim
			}
		}
		if tgt < 0 {
			continue // nothing left to merge into
		}
		merged[si] = tgt
		sizes[tgt] += sizes[si]
		sizes[si] = 0
	}
	resolve := func(si int) int {
		for merged[si] != si {
			si = merged[si]
		}
		return si
	}

	// Materialize groups, pick leaders (max degree, lowest id on ties),
	// and order groups the way the router examines them.
	members := make(map[int][]topology.NodeID)
	for i := 0; i < n; i++ {
		si := resolve(assign[i])
		members[si] = append(members[si], topology.NodeID(i))
	}
	type grp struct {
		nodes  []topology.NodeID
		leader topology.NodeID
	}
	var groups []grp
	for si := range seeds {
		nodes := members[si]
		if len(nodes) == 0 {
			continue
		}
		leader := nodes[0]
		for _, m := range nodes[1:] {
			if g.Degree(m) > g.Degree(leader) || (g.Degree(m) == g.Degree(leader) && m < leader) {
				leader = m
			}
		}
		groups = append(groups, grp{nodes: nodes, leader: leader})
	}
	sort.SliceStable(groups, func(i, j int) bool {
		di, dj := g.Degree(groups[i].leader), g.Degree(groups[j].leader)
		if di != dj {
			return di > dj
		}
		return groups[i].leader < groups[j].leader
	})

	plan := &Plan{
		Groups:  make([][]topology.NodeID, len(groups)),
		Leaders: make([]topology.NodeID, len(groups)),
		GroupOf: make([]int, n),
	}
	for gi, grp := range groups {
		plan.Groups[gi] = grp.nodes
		plan.Leaders[gi] = grp.leader
		for _, m := range grp.nodes {
			plan.GroupOf[m] = gi
		}
	}
	return plan, nil
}
