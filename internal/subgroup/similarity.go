// Package subgroup clusters brokers by subscription-summary similarity
// and routes events subgroup-first, after Shafique's subscription
// subgrouping line of work (arXiv:1611.08743, arXiv:1512.06425): full
// summaries circulate only within a subgroup, compact digests cross
// subgroup borders, and Algorithm 3's walk prunes whole subgroups with
// one digest check instead of visiting brokers one by one.
//
// The pipeline is Cluster (similarity-driven grouping over summary
// signatures) → Propagate (intra-group summary exchange plus leader-to-
// leader digest exchange) → Router (digest-first event routing). Both
// subgrouped and flat routing over-approximate and never lose an owner,
// so the end-to-end delivered sets — after the owner's own-row
// verification, the paradigm's exact-match step — are always identical.
// Candidate sets before that verification coincide too whenever
// summary-level matching is merge-grouping independent, i.e. when
// constraint rows are either shared verbatim across brokers or globally
// distinct so lossy folds don't depend on which summaries merged
// together (see DESIGN.md §Subgrouping).
package subgroup

import (
	"sort"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/summary"
)

// hullEps widens hull endpoints by a nominal length so degenerate point
// intervals still overlap themselves: two identical points must compare
// as similar, not as zero-length noise.
const hullEps = 1e-9

// Similarity scores how much two broker summaries cover the same event
// space, in [0, 1]. It is a Jaccard-style product: the attribute-set
// Jaccard index times the mean per-shared-attribute value similarity
// (interval-length overlap for AACS hulls and equality points, weighted
// key Jaccard for SACS prefix keys). Computed purely from signatures —
// no decode, no raw subscriptions — and deterministic: map iteration is
// sorted so float accumulation order is fixed.
func Similarity(a, b *summary.Signature) float64 {
	if a == nil || b == nil {
		return 0
	}
	union, shared := 0, 0
	var valueSum float64
	for _, id := range sortedArithIDs(a) {
		union++
		if bs, ok := b.Arith[id]; ok {
			shared++
			valueSum += arithSim(a.Arith[id], bs)
		}
	}
	for _, id := range sortedArithIDs(b) {
		if _, ok := a.Arith[id]; !ok {
			union++
		}
	}
	for _, id := range sortedStrIDs(a) {
		union++
		if bs, ok := b.Str[id]; ok {
			shared++
			valueSum += strSim(a.Str[id], bs)
		}
	}
	for _, id := range sortedStrIDs(b) {
		if _, ok := a.Str[id]; !ok {
			union++
		}
	}
	if union == 0 || shared == 0 {
		return 0
	}
	return (float64(shared) / float64(union)) * (valueSum / float64(shared))
}

func sortedArithIDs(s *summary.Signature) []schema.AttrID {
	out := make([]schema.AttrID, 0, len(s.Arith))
	for id := range s.Arith {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedStrIDs(s *summary.Signature) []schema.AttrID {
	out := make([]schema.AttrID, 0, len(s.Str))
	for id := range s.Str {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// arithSim averages the hull-overlap and equality-point-overlap ratios,
// counting each component only when at least one side has it. Fresh
// equality values are near-unique per broker (they carry little
// clustering signal), so keeping them a separate component stops them
// from drowning the range hulls that do discriminate.
func arithSim(x, y *summary.ArithSig) float64 {
	if x.HasNE || y.HasNE {
		// A not-equal row matches all but one value: effectively wild.
		return 1
	}
	var sum float64
	parts := 0
	if len(x.Hulls) > 0 || len(y.Hulls) > 0 {
		parts++
		var inter, total float64
		for _, ix := range x.Hulls {
			total += hullLen(ix)
			for _, iy := range y.Hulls {
				inter += overlapLen(ix, iy)
			}
		}
		for _, iy := range y.Hulls {
			total += hullLen(iy)
		}
		// Hulls within one signature are disjoint, so union = total − inter.
		if u := total - inter; u > 0 {
			sum += inter / u
		}
	}
	if len(x.EqBits) > 0 || len(y.EqBits) > 0 {
		parts++
		inter := sortedIntersectionCount(x.EqBits, y.EqBits)
		if u := len(x.EqBits) + len(y.EqBits) - inter; u > 0 {
			sum += float64(inter) / float64(u)
		}
	}
	if parts == 0 {
		return 0
	}
	return sum / float64(parts)
}

// strSim is the weighted Jaccard index Σmin/Σmax over the two key sets,
// so canonical prefixes shared by many subscriptions dominate fresh
// single-subscription values.
func strSim(x, y *summary.StrSig) float64 {
	if x.Wild || y.Wild {
		return 1
	}
	var minSum, maxSum float64
	i, j := 0, 0
	for i < len(x.Keys) || j < len(y.Keys) {
		switch {
		case j >= len(y.Keys) || (i < len(x.Keys) && x.Keys[i].Hash < y.Keys[j].Hash):
			maxSum += float64(x.Keys[i].Weight)
			i++
		case i >= len(x.Keys) || y.Keys[j].Hash < x.Keys[i].Hash:
			maxSum += float64(y.Keys[j].Weight)
			j++
		default:
			wx, wy := float64(x.Keys[i].Weight), float64(y.Keys[j].Weight)
			if wx < wy {
				minSum += wx
				maxSum += wy
			} else {
				minSum += wy
				maxSum += wx
			}
			i++
			j++
		}
	}
	if maxSum == 0 {
		return 0
	}
	return minSum / maxSum
}

func clampFinite(v float64) float64 {
	const bound = 1e15
	if v > bound {
		return bound
	}
	if v < -bound {
		return -bound
	}
	return v
}

func hullLen(iv interval.Interval) float64 {
	return clampFinite(iv.Hi) - clampFinite(iv.Lo) + hullEps
}

func overlapLen(x, y interval.Interval) float64 {
	lo := clampFinite(x.Lo)
	if l := clampFinite(y.Lo); l > lo {
		lo = l
	}
	hi := clampFinite(x.Hi)
	if h := clampFinite(y.Hi); h < hi {
		hi = h
	}
	if hi < lo {
		return 0
	}
	return hi - lo + hullEps
}

func sortedIntersectionCount(a, b []uint64) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
