package subgroup

import (
	"fmt"
	"sync"

	"github.com/subsum/subsum/internal/par"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
)

// Result is the outcome of one subgrouped propagation period.
type Result struct {
	Plan *Plan
	// Merged[gi] is subgroup gi's merged summary, held by the group's
	// leader — the rendezvous broker all of the group's event matching
	// happens at. Members keep only their own summaries.
	Merged []*summary.Summary
	// Digests[gi] is the compact cross-border form of Merged[gi], held
	// by every leader.
	Digests []*Digest

	// Hops counts every broker-to-broker message of the period:
	// member→leader summary uploads and leader→leader digest exchanges.
	Hops int
	// IntraWireBytes is the full-summary upload traffic inside
	// subgroups; DigestWireBytes is the digest traffic across borders;
	// WireBytes is their sum.
	IntraWireBytes  int64
	DigestWireBytes int64
	WireBytes       int64
	// PeakMergedBytes is the largest encoded subgroup summary — the
	// per-broker state high-water mark, the number that grows to the
	// whole network's summary under flat propagation.
	PeakMergedBytes int

	NumBrokers int
}

// encBufPool recycles encode buffers across Propagate calls.
var encBufPool = sync.Pool{New: func() any { return new([]byte) }}

// Propagate runs one subgrouped propagation period: within each
// subgroup, members upload their summaries to the subgroup leader (the
// highest-degree member), which merges them (ascending member id —
// deterministic) and keeps the merged subgroup summary; across
// subgroups, leaders exchange digests compiled from the merged
// summaries. Nothing is broadcast back — the leader is the group's
// rendezvous matcher, so members never need the merged state. Groups
// are processed in parallel over a bounded worker pool (<= 0 means one
// worker per CPU); results are identical at any width because each
// group's work touches only that group's slots.
//
// Hop and byte accounting models every transmission the scheme implies —
// member uploads plus the full leader-to-leader digest mesh — so
// comparisons against flat propagation charge the subgrouped side
// honestly.
func Propagate(g *topology.Graph, own []*summary.Summary, plan *Plan, workers int) (*Result, error) {
	n := g.Len()
	if len(own) != n {
		return nil, fmt.Errorf("subgroup: %d summaries for %d brokers", len(own), n)
	}
	if len(plan.GroupOf) != n {
		return nil, fmt.Errorf("subgroup: plan covers %d brokers, overlay has %d", len(plan.GroupOf), n)
	}
	for i, s := range own {
		if s == nil {
			return nil, fmt.Errorf("subgroup: nil summary for broker %d", i)
		}
	}
	numAttrs := len(own[0].Schema().Attributes())
	groups := len(plan.Groups)
	res := &Result{
		Plan:       plan,
		Merged:     make([]*summary.Summary, groups),
		Digests:    make([]*Digest, groups),
		NumBrokers: n,
	}
	type groupCost struct {
		intraBytes  int64
		digestBytes int
		mergedBytes int
		hops        int
	}
	costs := make([]groupCost, groups)
	err := par.SweepErr(groups, workers, func(gi int) error {
		members := plan.Groups[gi]
		leader := plan.Leaders[gi]
		c := &costs[gi]
		merged := own[leader].Clone()
		for _, m := range members {
			if m == leader {
				continue
			}
			// Member → leader: one encoded own summary per member.
			payload := encBufPool.Get().(*[]byte)
			*payload = own[m].Encode((*payload)[:0])
			c.intraBytes += int64(len(*payload))
			c.hops++
			err := merged.MergeEncoded(*payload)
			encBufPool.Put(payload)
			if err != nil {
				return fmt.Errorf("subgroup: merging broker %d into group %d: %w", m, gi, err)
			}
		}
		c.mergedBytes = merged.EncodedSize()
		res.Merged[gi] = merged
		res.Digests[gi] = BuildDigest(gi, members, n, numAttrs, merged.Signature(0))
		c.digestBytes = len(res.Digests[gi].Encode(nil))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for gi := range costs {
		c := &costs[gi]
		res.IntraWireBytes += c.intraBytes
		res.Hops += c.hops
		if c.mergedBytes > res.PeakMergedBytes {
			res.PeakMergedBytes = c.mergedBytes
		}
		// Leader gi sends its digest to every other leader.
		if groups > 1 {
			res.DigestWireBytes += int64(c.digestBytes) * int64(groups-1)
			res.Hops += groups - 1
		}
	}
	res.WireBytes = res.IntraWireBytes + res.DigestWireBytes
	return res, nil
}

// StampEpoch marks every digest of the result with the propagation
// period it was compiled in. Callers running periodic subgrouped
// propagation stamp each period's result so digest receivers can tell
// fresh cross-border state from stale (see Digest.Epoch).
func (res *Result) StampEpoch(epoch uint64) {
	for _, d := range res.Digests {
		if d != nil {
			d.Epoch = epoch
		}
	}
}
