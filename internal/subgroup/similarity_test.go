package subgroup

import (
	"math"
	"testing"
)

// TestSimilarityRegionSeparation: brokers drawing subscriptions from the
// same region band must score strictly more similar than brokers from
// different bands — that separation is the entire clustering signal.
func TestSimilarityRegionSeparation(t *testing.T) {
	regions := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	own, _ := regionSummaries(t, regions, 30, 42)
	sigs := signaturesOf(own)

	var sameSum, crossSum float64
	var sameN, crossN int
	for i := range sigs {
		for j := i + 1; j < len(sigs); j++ {
			s := Similarity(sigs[i], sigs[j])
			if s < 0 || s > 1 {
				t.Fatalf("Similarity(%d,%d) = %v out of [0,1]", i, j, s)
			}
			if regions[i] == regions[j] {
				sameSum += s
				sameN++
			} else {
				crossSum += s
				crossN++
			}
		}
	}
	sameMean, crossMean := sameSum/float64(sameN), crossSum/float64(crossN)
	if sameMean <= crossMean {
		t.Fatalf("same-region mean similarity %v not above cross-region %v", sameMean, crossMean)
	}
	// The bands are value-disjoint, so the separation should be stark,
	// not marginal.
	if sameMean < 2*crossMean {
		t.Fatalf("separation too weak: same-region %v vs cross-region %v", sameMean, crossMean)
	}
}

// TestSimilaritySymmetric: the metric must not depend on argument order
// beyond float rounding.
func TestSimilaritySymmetric(t *testing.T) {
	regions := []int{0, 0, 1, 1}
	own, _ := regionSummaries(t, regions, 20, 7)
	sigs := signaturesOf(own)
	for i := range sigs {
		for j := range sigs {
			ab, ba := Similarity(sigs[i], sigs[j]), Similarity(sigs[j], sigs[i])
			if math.Abs(ab-ba) > 1e-9 {
				t.Fatalf("Similarity(%d,%d)=%v but reversed=%v", i, j, ab, ba)
			}
		}
	}
}

// TestSimilarityIdentity: a signature compared to itself scores near 1 —
// full attribute overlap and full value overlap.
func TestSimilarityIdentity(t *testing.T) {
	own, _ := regionSummaries(t, []int{0}, 25, 3)
	sig := own[0].Signature(0)
	if s := Similarity(sig, sig); s < 0.99 {
		t.Fatalf("self-similarity %v, want ≈1", s)
	}
	if s := Similarity(nil, sig); s != 0 {
		t.Fatalf("nil similarity %v, want 0", s)
	}
}
