package subgroup

import (
	"reflect"
	"testing"

	"github.com/subsum/subsum/internal/topology"
)

// TestClusterRecoversRegions: on a transit-stub overlay whose brokers
// subscribe within region-private value bands, similarity clustering
// must produce region-pure groups — brokers from different bands score
// near-zero similarity, so no group should mix them.
func TestClusterRecoversRegions(t *testing.T) {
	g, regions := topology.TransitStubRegions(64, 9)
	own, _ := regionSummaries(t, regions, 20, 17)
	plan, err := Cluster(g, signaturesOf(own), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumGroups() < 2 {
		t.Fatalf("expected multiple groups, got %d", plan.NumGroups())
	}
	pure, total := 0, 0
	for _, members := range plan.Groups {
		counts := map[int]int{}
		for _, m := range members {
			counts[regions[m]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		pure += best
		total += len(members)
	}
	if purity := float64(pure) / float64(total); purity < 0.9 {
		t.Fatalf("region purity %.2f below 0.9 (groups %v)", purity, plan.Groups)
	}
}

// TestClusterDeterministic: identical inputs must produce identical
// plans, and the plan must be a partition consistent with GroupOf and
// Leaders.
func TestClusterDeterministic(t *testing.T) {
	g, regions := topology.TransitStubRegions(48, 4)
	own, _ := regionSummaries(t, regions, 15, 8)
	sigs := signaturesOf(own)
	a, err := Cluster(g, sigs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(g, sigs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two Cluster runs over identical inputs disagree")
	}

	seen := make([]bool, g.Len())
	for gi, members := range a.Groups {
		if len(members) == 0 {
			t.Fatalf("group %d empty", gi)
		}
		leaderIn := false
		for k, m := range members {
			if seen[m] {
				t.Fatalf("broker %d in two groups", m)
			}
			seen[m] = true
			if a.GroupOf[m] != gi {
				t.Fatalf("GroupOf[%d] = %d, member of group %d", m, a.GroupOf[m], gi)
			}
			if k > 0 && members[k-1] >= m {
				t.Fatalf("group %d members not ascending: %v", gi, members)
			}
			if m == a.Leaders[gi] {
				leaderIn = true
			}
		}
		if !leaderIn {
			t.Fatalf("leader %d not a member of group %d", a.Leaders[gi], gi)
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("broker %d in no group", i)
		}
	}
}

// TestClusterTargetGroups: the explicit knobs are honored — TargetGroups
// bounds the group count from above, MinGroupSize agglomerates dust.
func TestClusterTargetGroups(t *testing.T) {
	g, regions := topology.TransitStubRegions(64, 5)
	own, _ := regionSummaries(t, regions, 12, 2)
	sigs := signaturesOf(own)
	plan, err := Cluster(g, sigs, Options{TargetGroups: 4, MinGroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumGroups() > 4 {
		t.Fatalf("TargetGroups 4 produced %d groups", plan.NumGroups())
	}
	// Agglomeration can only be incomplete when nothing remains to merge
	// into; with ≥2 groups every group must meet the minimum.
	if plan.NumGroups() >= 2 {
		for gi, members := range plan.Groups {
			if len(members) < 3 {
				t.Fatalf("group %d has %d members, below MinGroupSize 3", gi, len(members))
			}
		}
	}
}

// TestClusterSingleBroker: the degenerate overlay still yields a valid
// one-group plan.
func TestClusterSingleBroker(t *testing.T) {
	g := topology.New("solo", 1)
	own, _ := regionSummaries(t, []int{0}, 5, 1)
	plan, err := Cluster(g, signaturesOf(own), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumGroups() != 1 || len(plan.Groups[0]) != 1 || plan.Leaders[0] != 0 {
		t.Fatalf("unexpected plan for single broker: %+v", plan)
	}
}
