// Subgroup digest analytics: the router counts, per subgroup, how often
// the cross-border digest pruned the group outright, how often it passed
// the event through to the leader, and how often such a pass then found
// no owner in the merged subgroup summary — the *measured* digest
// false-positive rate, to hold against the Bloom filter's design point
// (~10 bits and 4 probes per entry, ≈1.2% at capacity). Leader load is
// counted alongside so the rendezvous scheme's skew is visible. Counters
// are lock-free atomics; Route never blocks on analytics.
package subgroup

import (
	"math"
	"strconv"
	"sync/atomic"

	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/metrics"
)

// DesignDigestFPRate is the Bloom filter's theoretical false-positive
// probability at capacity: (1 − e^(−k·n/m))^k with m/n = 10 bits per
// entry and k = 4 probes (see newBloom). The measured
// pass-but-no-delivery rate should sit at or below this — newBloom
// rounds the bit count up to a power of two, so real occupancy is
// usually below design capacity.
var DesignDigestFPRate = math.Pow(1-math.Exp(-4.0/10.0), 4)

// routerStats is the router's per-group counter block. Slots are
// independent atomics so concurrent Route calls never contend.
type routerStats struct {
	homeEvents    []atomic.Int64 // events whose origin is in this group
	leaderEvents  []atomic.Int64 // events this group's leader processed
	pruned        []atomic.Int64 // digest said no: group covered free
	passes        []atomic.Int64 // digest said maybe: one forward hop paid
	passNoDeliver []atomic.Int64 // pass, but the summary named no owner
}

func (s *routerStats) init(groups int) {
	s.homeEvents = make([]atomic.Int64, groups)
	s.leaderEvents = make([]atomic.Int64, groups)
	s.pruned = make([]atomic.Int64, groups)
	s.passes = make([]atomic.Int64, groups)
	s.passNoDeliver = make([]atomic.Int64, groups)
}

// home records an event entering with home group gi (its leader always
// processes it — the digest is never consulted for the home group).
func (s *routerStats) home(gi int) {
	s.homeEvents[gi].Add(1)
	s.leaderEvents[gi].Add(1)
}

// prune records the digest covering group gj with zero messages.
func (s *routerStats) prune(gj int) { s.pruned[gj].Add(1) }

// pass records the digest admitting the event to group gj's leader;
// noDeliver marks a pass whose merged summary then named no owner (a
// measured digest false positive).
func (s *routerStats) pass(gj int, noDeliver bool) {
	s.passes[gj].Add(1)
	s.leaderEvents[gj].Add(1)
	if noDeliver {
		s.passNoDeliver[gj].Add(1)
	}
}

// GroupAnalytics is one subgroup's digest scorecard.
type GroupAnalytics struct {
	Group int `json:"group"`
	// Leader is the group's rendezvous broker.
	Leader int `json:"leader"`
	// Members is the group size.
	Members int `json:"members"`
	// HomeEvents counts events originating inside the group;
	// LeaderEvents counts every event the leader matched (home events
	// plus digest passes from other groups) — the leader's load.
	HomeEvents   int64 `json:"home_events"`
	LeaderEvents int64 `json:"leader_events"`
	// Pruned / Passes split the foreign-event digest consultations;
	// PassNoDeliver is the subset of passes that found no owner.
	Pruned        int64 `json:"pruned"`
	Passes        int64 `json:"passes"`
	PassNoDeliver int64 `json:"pass_no_deliver"`
	// PruneRate = Pruned / (Pruned + Passes); DigestFPRate =
	// PassNoDeliver / Passes. Zero consultations yield zero rates.
	PruneRate    float64 `json:"prune_rate"`
	DigestFPRate float64 `json:"digest_fp_rate"`
}

// AnalyticsReport aggregates digest analytics across all subgroups.
type AnalyticsReport struct {
	Groups []GroupAnalytics `json:"groups"`
	// Events is the total routed-event count.
	Events int64 `json:"events"`
	// PruneRate and DigestFPRate are the network-wide aggregates over
	// every digest consultation.
	PruneRate    float64 `json:"prune_rate"`
	DigestFPRate float64 `json:"digest_fp_rate"`
	// DesignFPRate is the Bloom design point the measured rate is held
	// against (DesignDigestFPRate).
	DesignFPRate float64 `json:"design_fp_rate"`
	// LeaderSkew is max leader load over mean leader load (1.0 =
	// perfectly balanced); 0 when no events were routed.
	LeaderSkew float64 `json:"leader_skew"`
}

// Analytics snapshots the router's digest counters. Safe to call
// concurrently with Route; per-counter consistent.
func (r *Router) Analytics() *AnalyticsReport {
	plan := r.res.Plan
	groups := plan.NumGroups()
	rep := &AnalyticsReport{Groups: make([]GroupAnalytics, groups), DesignFPRate: DesignDigestFPRate}
	var totPruned, totPasses, totNoDeliver, totLeader, maxLeader int64
	for gi := 0; gi < groups; gi++ {
		ga := GroupAnalytics{
			Group:         gi,
			Leader:        int(plan.Leaders[gi]),
			Members:       len(plan.Groups[gi]),
			HomeEvents:    r.stats.homeEvents[gi].Load(),
			LeaderEvents:  r.stats.leaderEvents[gi].Load(),
			Pruned:        r.stats.pruned[gi].Load(),
			Passes:        r.stats.passes[gi].Load(),
			PassNoDeliver: r.stats.passNoDeliver[gi].Load(),
		}
		if n := ga.Pruned + ga.Passes; n > 0 {
			ga.PruneRate = float64(ga.Pruned) / float64(n)
		}
		if ga.Passes > 0 {
			ga.DigestFPRate = float64(ga.PassNoDeliver) / float64(ga.Passes)
		}
		rep.Groups[gi] = ga
		rep.Events += ga.HomeEvents
		totPruned += ga.Pruned
		totPasses += ga.Passes
		totNoDeliver += ga.PassNoDeliver
		totLeader += ga.LeaderEvents
		if ga.LeaderEvents > maxLeader {
			maxLeader = ga.LeaderEvents
		}
	}
	if n := totPruned + totPasses; n > 0 {
		rep.PruneRate = float64(totPruned) / float64(n)
	}
	if totPasses > 0 {
		rep.DigestFPRate = float64(totNoDeliver) / float64(totPasses)
	}
	if totLeader > 0 && groups > 0 {
		mean := float64(totLeader) / float64(groups)
		rep.LeaderSkew = float64(maxLeader) / mean
	}
	return rep
}

// Instrument exports the current analytics snapshot into a metrics
// registry as per-group gauges (labelled by group id) plus network-wide
// aggregates. Snapshot-export by design: Route stays free of registry
// lookups, callers re-export at whatever cadence they sample.
func (r *Router) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	rep := r.Analytics()
	pruned := reg.GaugeVec("subgroup_digest_pruned")
	passes := reg.GaugeVec("subgroup_digest_passes")
	noDeliver := reg.GaugeVec("subgroup_digest_pass_no_deliver")
	leader := reg.GaugeVec("subgroup_leader_events")
	for _, ga := range rep.Groups {
		label := strconv.Itoa(ga.Group)
		pruned.With(label).Set(ga.Pruned)
		passes.With(label).Set(ga.Passes)
		noDeliver.With(label).Set(ga.PassNoDeliver)
		leader.With(label).Set(ga.LeaderEvents)
	}
	reg.Gauge("subgroup_digest_prune_rate_ppm").Set(int64(rep.PruneRate * 1e6))
	reg.Gauge("subgroup_digest_fp_rate_ppm").Set(int64(rep.DigestFPRate * 1e6))
	reg.Gauge("subgroup_leader_skew_milli").Set(int64(rep.LeaderSkew * 1e3))
}

// RecordFlight journals one EvSubgroupDigest record per group from the
// current snapshot: broker = the group's leader, A = group id, B =
// pruned count, C = pass-but-no-delivery count.
func (r *Router) RecordFlight(rec *flight.Recorder) {
	if rec == nil {
		return
	}
	for _, ga := range r.Analytics().Groups {
		rec.Record(flight.EvSubgroupDigest, ga.Leader,
			int64(ga.Group), ga.Pruned, ga.PassNoDeliver,
			"passes "+strconv.FormatInt(ga.Passes, 10))
	}
}
