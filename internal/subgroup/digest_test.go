package subgroup

import (
	"bytes"
	"testing"

	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/topology"
)

// TestDigestNoFalseNegatives is the digest soundness property: for any
// event the subgroup's merged summary matches, the digest built from
// that summary's signature must say MayMatch. The event stream mixes
// in-region hits, out-of-region hits, and pure misses across several
// hit rates, so both the hull path and the bloom paths are exercised.
func TestDigestNoFalseNegatives(t *testing.T) {
	regions := []int{0, 0, 0, 0, 1, 1, 1, 1}
	own, gens := matchableRegionSummaries(t, regions, 25, 31)
	g := topology.Ring(len(regions))
	plan, err := Cluster(g, signaturesOf(own), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Propagate(g, own, plan, 1)
	if err != nil {
		t.Fatal(err)
	}

	checked, matched, pruned := 0, 0, 0
	for _, region := range []int{0, 1} {
		gen := gens[region]
		for _, hitRate := range []float64{0, 0.3, 0.7, 1} {
			for k := 0; k < 200; k++ {
				ev := gen.Event(hitRate)
				for gi := range res.Merged {
					checked++
					hits := res.Merged[gi].MatchKeys(ev)
					may := res.Digests[gi].MayMatch(ev)
					if len(hits) > 0 {
						matched++
						if !may {
							t.Fatalf("false negative: group %d matches event %v but digest prunes it", gi, ev)
						}
					} else if !may {
						pruned++
					}
				}
			}
		}
	}
	if matched == 0 {
		t.Fatal("event stream never matched any group — property vacuous")
	}
	if pruned == 0 {
		t.Fatal("digests never pruned anything — cross-region events should miss")
	}
	t.Logf("%d checks: %d summary matches, %d digest prunes", checked, matched, pruned)
}

// TestDigestRoundTrip: Encode → DecodeDigest must reproduce a digest
// that answers MayMatch identically, and re-encoding the decoded digest
// must be byte-identical.
func TestDigestRoundTrip(t *testing.T) {
	regions := []int{0, 0, 1, 1, 2, 2}
	own, gens := regionSummaries(t, regions, 20, 13)
	g := topology.Ring(len(regions))
	plan, err := Cluster(g, signaturesOf(own), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Propagate(g, own, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	var events []*schema.Event
	for _, region := range []int{0, 1, 2} {
		for k := 0; k < 100; k++ {
			events = append(events, gens[region].Event(0.5))
		}
	}
	for gi, d := range res.Digests {
		enc := d.Encode(nil)
		dec, err := DecodeDigest(enc)
		if err != nil {
			t.Fatalf("group %d: decode: %v", gi, err)
		}
		if !bytes.Equal(dec.Encode(nil), enc) {
			t.Fatalf("group %d: re-encode differs", gi)
		}
		for _, ev := range events {
			if d.MayMatch(ev) != dec.MayMatch(ev) {
				t.Fatalf("group %d: decoded digest answers differently for %v", gi, ev)
			}
		}
	}
}

// TestDecodeDigestRejectsCorruption: truncations and bit flips must
// error or decode cleanly — never panic.
func TestDecodeDigestRejectsCorruption(t *testing.T) {
	own, _ := regionSummaries(t, []int{0, 0, 1, 1}, 10, 5)
	g := topology.Ring(4)
	plan, err := Cluster(g, signaturesOf(own), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Propagate(g, own, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	enc := res.Digests[0].Encode(nil)
	for cut := 0; cut < len(enc); cut++ {
		DecodeDigest(enc[:cut]) // must not panic; error expected but not required at every cut
	}
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x55
		DecodeDigest(mut) // must not panic
	}
	if _, err := DecodeDigest(nil); err == nil {
		t.Fatal("decoding nil succeeded")
	}
}
