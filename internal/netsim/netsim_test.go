package netsim

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/subsum/subsum/internal/topology"
)

func TestSendReceiveAndQuiesce(t *testing.T) {
	b := NewBus(2)
	defer b.Close()
	var got atomic.Int64
	b.Start(0, func(m Message) { got.Add(1) })
	b.Start(1, func(m Message) { got.Add(1) })
	for i := 0; i < 100; i++ {
		if err := b.Send(Message{From: 0, To: topology.NodeID(i % 2), Kind: KindEvent, Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	b.Quiesce()
	if got.Load() != 100 {
		t.Fatalf("handled %d of 100", got.Load())
	}
	s := b.Stats()
	if s.Messages[KindEvent] != 100 || s.Bytes[KindEvent] != 100 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TotalMessages() != 100 || s.TotalBytes() != 100 {
		t.Fatalf("totals = %d/%d", s.TotalMessages(), s.TotalBytes())
	}
}

// TestQuiesceCountsCascades: handlers that send more messages must keep
// Quiesce blocked until the cascade drains.
func TestQuiesceCountsCascades(t *testing.T) {
	b := NewBus(2)
	defer b.Close()
	var handled atomic.Int64
	// Node 0 forwards a chain of decreasing counters to node 1 and back.
	relay := func(m Message) {
		handled.Add(1)
		n := m.Payload[0]
		if n == 0 {
			return
		}
		if err := b.Send(Message{From: m.To, To: m.From, Kind: KindEvent, Payload: []byte{n - 1}}); err != nil {
			t.Error(err)
		}
	}
	b.Start(0, relay)
	b.Start(1, relay)
	if err := b.Send(Message{From: 0, To: 1, Kind: KindEvent, Payload: []byte{50}}); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	if handled.Load() != 51 {
		t.Fatalf("handled %d, want 51", handled.Load())
	}
}

func TestControlExcludedFromTotals(t *testing.T) {
	b := NewBus(1)
	defer b.Close()
	b.Start(0, func(Message) {})
	_ = b.Send(Message{To: 0, Kind: KindControl, Payload: []byte("ctl")})
	_ = b.Send(Message{To: 0, Kind: KindSummary, Payload: []byte("data!")})
	b.Quiesce()
	s := b.Stats()
	if s.TotalMessages() != 1 || s.TotalBytes() != 5 {
		t.Fatalf("totals = %d/%d", s.TotalMessages(), s.TotalBytes())
	}
	if s.Messages[KindControl] != 1 {
		t.Fatalf("control not counted separately: %+v", s)
	}
}

func TestSendValidation(t *testing.T) {
	b := NewBus(2)
	if err := b.Send(Message{To: 5}); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
	if err := b.Send(Message{To: -1}); err == nil {
		t.Fatal("negative destination accepted")
	}
	b.Close()
	if err := b.Send(Message{To: 0}); err == nil {
		t.Fatal("send after close accepted")
	}
}

func TestCloseDropsBacklogWithoutDeadlock(t *testing.T) {
	b := NewBus(1)
	// No handler started: messages pile up.
	for i := 0; i < 10; i++ {
		if err := b.Send(Message{To: 0, Kind: KindEvent}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		b.Close()
		b.Quiesce() // must not block after Close drops the backlog
		close(done)
	}()
	<-done
}

func TestCloseIdempotent(t *testing.T) {
	b := NewBus(1)
	b.Start(0, func(Message) {})
	b.Close()
	b.Close()
}

func TestConcurrentSenders(t *testing.T) {
	b := NewBus(4)
	defer b.Close()
	var handled atomic.Int64
	for i := 0; i < 4; i++ {
		b.Start(topology.NodeID(i), func(Message) { handled.Add(1) })
	}
	var wg sync.WaitGroup
	const senders, each = 8, 200
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := b.Send(Message{To: topology.NodeID((s + i) % 4), Kind: KindEvent}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	b.Quiesce()
	if handled.Load() != senders*each {
		t.Fatalf("handled %d, want %d", handled.Load(), senders*each)
	}
}

func TestKindString(t *testing.T) {
	if KindSummary.String() != "summary" || KindEvent.String() != "event" ||
		KindDeliver.String() != "deliver" || KindControl.String() != "control" {
		t.Fatal("kind names")
	}
}

func TestDropFuncFaultInjection(t *testing.T) {
	b := NewBus(1)
	defer b.Close()
	var handled atomic.Int64
	b.Start(0, func(Message) { handled.Add(1) })
	b.SetDropFunc(func(m Message) bool { return m.Kind == KindSummary })
	_ = b.Send(Message{To: 0, Kind: KindSummary, Payload: []byte("drop me")})
	_ = b.Send(Message{To: 0, Kind: KindEvent, Payload: []byte("keep me")})
	b.Quiesce()
	if handled.Load() != 1 {
		t.Fatalf("handled %d, want 1", handled.Load())
	}
	st := b.Stats()
	if st.Dropped[KindSummary] != 1 || st.Messages[KindSummary] != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Messages[KindEvent] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Disable and verify healing.
	b.SetDropFunc(nil)
	_ = b.Send(Message{To: 0, Kind: KindSummary})
	b.Quiesce()
	if handled.Load() != 2 {
		t.Fatalf("handled %d after healing, want 2", handled.Load())
	}
}

func TestErrorCountersAndTotals(t *testing.T) {
	b := NewBus(1)
	defer b.Close()
	b.Start(0, func(Message) {})
	b.RecordDecodeError(KindSummary)
	b.RecordDecodeError(KindSummary)
	b.RecordDecodeError(KindEvent)
	b.RecordHandlerError(KindSummary)
	st := b.Stats()
	if st.DecodeErrors[KindSummary] != 2 || st.DecodeErrors[KindEvent] != 1 {
		t.Fatalf("decode errors = %+v", st.DecodeErrors)
	}
	if st.HandlerErrors[KindSummary] != 1 {
		t.Fatalf("handler errors = %+v", st.HandlerErrors)
	}
	if st.TotalErrors() != 4 {
		t.Fatalf("TotalErrors = %d, want 4", st.TotalErrors())
	}
	if st.TotalDropped() != 0 {
		t.Fatalf("TotalDropped = %d, want 0", st.TotalDropped())
	}
}

func TestStatsCountersFlatten(t *testing.T) {
	b := NewBus(1)
	defer b.Close()
	b.Start(0, func(Message) {})
	_ = b.Send(Message{To: 0, Kind: KindSummary, Payload: []byte("abcd")})
	b.SetDropFunc(func(m Message) bool { return true })
	_ = b.Send(Message{To: 0, Kind: KindEvent})
	b.SetDropFunc(nil)
	b.RecordDecodeError(KindDeliver)
	b.Quiesce()
	c := b.Stats().Counters()
	checks := map[string]int64{
		"summary.messages":      1,
		"summary.bytes":         4,
		"event.dropped":         1,
		"deliver.decode_errors": 1,
	}
	for name, want := range checks {
		if got := c.Get(name); got != want {
			t.Fatalf("counter %q = %d, want %d (all: %v)", name, got, want, c.Snapshot())
		}
	}
	// Zero-valued counters are omitted from the flattened set.
	if got := c.Snapshot(); len(got) != len(checks) {
		t.Fatalf("unexpected extra counters: %v", got)
	}
}

// TestQuiesceRacesSenders is the regression test for the quiescence
// counter: with sync.WaitGroup-based tracking, a Send from one goroutine
// racing a Quiesce on another could trip "WaitGroup misuse" (Add called
// concurrently with Wait at counter zero). The cond-based counter must
// tolerate any interleaving.
func TestQuiesceRacesSenders(t *testing.T) {
	b := NewBus(2)
	defer b.Close()
	var handled atomic.Int64
	b.Start(0, func(Message) { handled.Add(1) })
	b.Start(1, func(Message) { handled.Add(1) })
	var wg sync.WaitGroup
	const senders, each = 4, 300
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := b.Send(Message{To: topology.NodeID(i % 2), Kind: KindEvent}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	// Quiesce continuously while the senders run: the counter repeatedly
	// crosses zero under concurrent Adds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			b.Quiesce()
		}
	}()
	wg.Wait()
	b.Quiesce()
	if handled.Load() != senders*each {
		t.Fatalf("handled %d, want %d", handled.Load(), senders*each)
	}
}
