package netsim

import (
	"bytes"
	"sync"
	"testing"

	"github.com/subsum/subsum/internal/topology"
)

// TestSendSharedMulticast: one pooled buffer fans out to many recipients
// with correct per-recipient byte accounting, and every reference is
// released once all handlers have run.
func TestSendSharedMulticast(t *testing.T) {
	const n = 8
	b := NewBus(n)
	defer b.Close()
	payload := []byte("shared-payload")
	var mu sync.Mutex
	got := 0
	for i := 0; i < n; i++ {
		b.Start(topology.NodeID(i), func(m Message) {
			mu.Lock()
			defer mu.Unlock()
			if !bytes.Equal(m.Payload, payload) {
				t.Errorf("payload = %q", m.Payload)
			}
			got++
		})
	}
	sb := AcquireBuf()
	sb.B = append(sb.B, payload...)
	for i := 1; i < n; i++ {
		if err := b.SendShared(Message{From: 0, To: topology.NodeID(i), Kind: KindDeliver}, sb); err != nil {
			t.Fatal(err)
		}
	}
	sb.Release()
	b.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if got != n-1 {
		t.Fatalf("handled %d of %d", got, n-1)
	}
	s := b.Stats()
	if want := int64((n - 1) * len(payload)); s.Bytes[KindDeliver] != want {
		t.Fatalf("bytes = %d, want %d (true payload size per recipient)", s.Bytes[KindDeliver], want)
	}
	if refs := sb.refs.Load(); refs != 0 {
		t.Fatalf("buffer refs = %d after quiesce, want 0", refs)
	}
}

// TestSendSharedDropReleases: a fault-injected drop must not take a
// buffer reference nor count bytes.
func TestSendSharedDropReleases(t *testing.T) {
	b := NewBus(2)
	defer b.Close()
	b.Start(0, func(Message) {})
	b.Start(1, func(Message) {})
	b.SetDropFunc(func(m Message) bool { return m.Kind == KindSummary })
	sb := AcquireBuf()
	sb.B = append(sb.B, "dropped"...)
	if err := b.SendShared(Message{From: 0, To: 1, Kind: KindSummary}, sb); err != nil {
		t.Fatal(err)
	}
	if refs := sb.refs.Load(); refs != 1 {
		t.Fatalf("refs = %d after drop, want caller's 1", refs)
	}
	sb.Release()
	s := b.Stats()
	if s.Dropped[KindSummary] != 1 || s.Bytes[KindSummary] != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if refs := sb.refs.Load(); refs != 0 {
		t.Fatalf("refs = %d, want 0", refs)
	}
}

// TestCloseReleasesQueuedSharedBufs: messages still queued at Close (their
// handler never started) must release their buffer references.
func TestCloseReleasesQueuedSharedBufs(t *testing.T) {
	b := NewBus(2)
	b.Start(0, func(Message) {})
	// Node 1 is never started: its mailbox accumulates.
	sb := AcquireBuf()
	sb.B = append(sb.B, "stuck"...)
	if err := b.SendShared(Message{From: 0, To: 1, Kind: KindEvent}, sb); err != nil {
		t.Fatal(err)
	}
	sb.Release() // caller's reference; bus still holds one
	if refs := sb.refs.Load(); refs != 1 {
		t.Fatalf("refs = %d before close, want bus's 1", refs)
	}
	b.Close()
	if refs := sb.refs.Load(); refs != 0 {
		t.Fatalf("refs = %d after close, want 0", refs)
	}
}

// TestAcquireBufRecycles: a released buffer's capacity comes back from
// the pool.
func TestAcquireBufRecycles(t *testing.T) {
	sb := AcquireBuf()
	sb.B = append(sb.B, make([]byte, 4096)...)
	sb.Release()
	sb2 := AcquireBuf()
	defer sb2.Release()
	if len(sb2.B) != 0 {
		t.Fatalf("recycled buffer has length %d, want 0", len(sb2.B))
	}
}
