package netsim

import (
	"sync"
	"testing"
)

// TestStartBatchDrainsInOrder proves the batched handler sees every
// message exactly once, in FIFO order, with batch sizes never exceeding
// the cap — and that Quiesce still accounts for whole batches.
func TestStartBatchDrainsInOrder(t *testing.T) {
	const n, maxBatch = 500, 16
	b := NewBus(2)
	defer b.Close()
	var (
		mu      sync.Mutex
		seen    []byte
		batches []int
	)
	// A slow-start gate: hold the handler on its first batch so the
	// sender gets ahead and later wakeups actually drain multi-message
	// batches.
	gate := make(chan struct{})
	first := true
	b.StartBatch(1, maxBatch, func(ms []Message) {
		if first {
			first = false
			<-gate
		}
		mu.Lock()
		defer mu.Unlock()
		if len(ms) == 0 || len(ms) > maxBatch {
			t.Errorf("batch size %d outside (0,%d]", len(ms), maxBatch)
		}
		batches = append(batches, len(ms))
		for _, m := range ms {
			seen = append(seen, m.Payload[0])
		}
	})
	for i := 0; i < n; i++ {
		if err := b.Send(Message{From: 0, To: 1, Kind: KindEvent, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	b.Quiesce()

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Fatalf("handled %d of %d messages", len(seen), n)
	}
	for i, v := range seen {
		if v != byte(i) {
			t.Fatalf("message %d out of order: got payload %d", i, v)
		}
	}
	multi := 0
	for _, sz := range batches {
		if sz > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-message batch drained; the batching path was never exercised")
	}
	if s := b.Stats(); s.Messages[KindEvent] != n {
		t.Fatalf("stats count %d messages, want %d", s.Messages[KindEvent], n)
	}
}

// TestStartBatchSingleIsLegacy: maxBatch 1 must behave exactly like Start
// — one message per handler invocation.
func TestStartBatchSingleIsLegacy(t *testing.T) {
	b := NewBus(1)
	defer b.Close()
	var mu sync.Mutex
	count, calls := 0, 0
	b.StartBatch(0, 1, func(ms []Message) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		count += len(ms)
		if len(ms) != 1 {
			t.Errorf("batch of %d with maxBatch=1", len(ms))
		}
	})
	for i := 0; i < 50; i++ {
		if err := b.Send(Message{From: 0, To: 0, Kind: KindSummary, Payload: []byte("s")}); err != nil {
			t.Fatal(err)
		}
	}
	b.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if count != 50 || calls != 50 {
		t.Fatalf("count=%d calls=%d, want 50/50", count, calls)
	}
}
