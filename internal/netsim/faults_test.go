package netsim

import (
	"sync/atomic"
	"testing"

	"github.com/subsum/subsum/internal/topology"
)

// faultBus builds an n-node bus whose handlers count per-node arrivals.
func faultBus(t *testing.T, n int) (*Bus, []*atomic.Int64) {
	t.Helper()
	b := NewBus(n)
	t.Cleanup(b.Close)
	got := make([]*atomic.Int64, n)
	for i := range got {
		got[i] = &atomic.Int64{}
		c := got[i]
		b.Start(topology.NodeID(i), func(Message) { c.Add(1) })
	}
	return b, got
}

// TestPartitionSymmetricAndHeal: a partition drops traffic crossing the
// cut in both directions, leaves intra-side traffic alone, and Heal
// restores full connectivity.
func TestPartitionSymmetricAndHeal(t *testing.T) {
	b, got := faultBus(t, 4)
	if err := b.Partition([]topology.NodeID{0, 1}, []topology.NodeID{2, 3}); err != nil {
		t.Fatal(err)
	}
	send := func(from, to topology.NodeID) {
		if err := b.Send(Message{From: from, To: to, Kind: KindEvent, Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	send(0, 2) // crosses A→B: dropped
	send(3, 1) // crosses B→A: dropped
	send(0, 1) // within A: delivered
	send(2, 3) // within B: delivered
	b.Quiesce()
	if got[2].Load() != 0 || got[1].Load() != 1 || got[3].Load() != 1 {
		t.Fatalf("partition leaked: arrivals = [%d %d %d %d]",
			got[0].Load(), got[1].Load(), got[2].Load(), got[3].Load())
	}
	s := b.Stats()
	if s.Dropped[KindEvent] != 2 || s.DroppedBytes[KindEvent] != 2 {
		t.Fatalf("dropped accounting = %+v", s)
	}
	if s.Messages[KindEvent] != 2 {
		t.Fatalf("delivered accounting = %+v", s)
	}

	b.Heal()
	send(0, 2)
	send(3, 1)
	b.Quiesce()
	if got[2].Load() != 1 || got[1].Load() != 2 {
		t.Fatal("heal did not restore cross-partition delivery")
	}
	if s := b.Stats(); s.Dropped[KindEvent] != 2 {
		t.Fatalf("healed bus still dropping: %+v", s)
	}
}

// TestPartitionValidation: empty, overlapping, and out-of-range sides
// are rejected before any state changes.
func TestPartitionValidation(t *testing.T) {
	b, _ := faultBus(t, 3)
	if err := b.Partition(nil, []topology.NodeID{1}); err == nil {
		t.Fatal("empty side accepted")
	}
	if err := b.Partition([]topology.NodeID{0, 1}, []topology.NodeID{1}); err == nil {
		t.Fatal("overlapping sides accepted")
	}
	if err := b.Partition([]topology.NodeID{0}, []topology.NodeID{7}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if b.hasFault.Load() {
		t.Fatal("rejected partition left the fault gate on")
	}
}

// TestPartitionsStack: two cuts compose; healing removes both at once.
func TestPartitionsStack(t *testing.T) {
	b, got := faultBus(t, 3)
	if err := b.Partition([]topology.NodeID{0}, []topology.NodeID{1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Partition([]topology.NodeID{0}, []topology.NodeID{2}); err != nil {
		t.Fatal(err)
	}
	_ = b.Send(Message{From: 0, To: 1, Kind: KindEvent})
	_ = b.Send(Message{From: 0, To: 2, Kind: KindEvent})
	_ = b.Send(Message{From: 1, To: 2, Kind: KindEvent}) // severed by neither cut
	b.Quiesce()
	if got[1].Load() != 0 || got[2].Load() != 1 {
		t.Fatalf("stacked cuts wrong: arrivals = [%d %d %d]", got[0].Load(), got[1].Load(), got[2].Load())
	}
}

// TestPerKindLoss: a rate-1 rule drops every message of its kind and no
// other kind; removing the rule stops the loss.
func TestPerKindLoss(t *testing.T) {
	b, got := faultBus(t, 2)
	b.Faults().SetLoss(KindSummary, 1.0, 42)
	for i := 0; i < 5; i++ {
		_ = b.Send(Message{From: 0, To: 1, Kind: KindSummary, Payload: []byte("s")})
		_ = b.Send(Message{From: 0, To: 1, Kind: KindEvent, Payload: []byte("e")})
	}
	b.Quiesce()
	s := b.Stats()
	if s.Dropped[KindSummary] != 5 || s.Dropped[KindEvent] != 0 {
		t.Fatalf("loss rule leaked across kinds: %+v", s.Dropped)
	}
	if got[1].Load() != 5 {
		t.Fatalf("event deliveries = %d, want 5", got[1].Load())
	}
	b.Faults().SetLoss(KindSummary, 0, 0)
	if b.hasFault.Load() {
		t.Fatal("clearing the only loss rule left the fault gate on")
	}
	_ = b.Send(Message{From: 0, To: 1, Kind: KindSummary, Payload: []byte("s")})
	b.Quiesce()
	if s := b.Stats(); s.Dropped[KindSummary] != 5 {
		t.Fatalf("summary dropped after rule removed: %+v", s.Dropped)
	}
}

// TestFractionalLossDeterministic: the same seed reproduces the same
// drop count.
func TestFractionalLossDeterministic(t *testing.T) {
	run := func() int64 {
		b, _ := faultBus(t, 2)
		b.Faults().SetLoss(KindEvent, 0.5, 99)
		for i := 0; i < 200; i++ {
			_ = b.Send(Message{From: 0, To: 1, Kind: KindEvent})
		}
		b.Quiesce()
		return b.Stats().Dropped[KindEvent]
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("seeded loss not reproducible: %d vs %d", first, second)
	}
	if first == 0 || first == 200 {
		t.Fatalf("rate-0.5 loss dropped %d of 200", first)
	}
}

// TestPauseResume: messages to a paused broker are parked (counted as
// sent, not dropped, not in-flight) and delivered in order on Resume.
func TestPauseResume(t *testing.T) {
	b := NewBus(2)
	defer b.Close()
	var order []byte
	done := make(chan struct{}, 16)
	b.Start(0, func(Message) {})
	b.Start(1, func(m Message) {
		order = append(order, m.Payload[0])
		done <- struct{}{}
	})
	if err := b.Faults().Pause(1); err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 3; i++ {
		if err := b.Send(Message{From: 0, To: 1, Kind: KindDeliver, Payload: []byte{i}}); err != nil {
			t.Fatal(err)
		}
	}
	// Parked messages must not block Quiesce: the paused broker is a slow
	// link, not a lost one.
	b.Quiesce()
	if paused, parked := b.Faults().Paused(1); !paused || parked != 3 {
		t.Fatalf("paused=%v parked=%d, want true/3", paused, parked)
	}
	s := b.Stats()
	if s.Messages[KindDeliver] != 3 || s.Dropped[KindDeliver] != 0 {
		t.Fatalf("parked accounting = %+v", s)
	}
	if len(order) != 0 {
		t.Fatalf("paused broker handled %d messages", len(order))
	}
	if err := b.Faults().Resume(1); err != nil {
		t.Fatal(err)
	}
	b.Quiesce()
	for i := 0; i < 3; i++ {
		<-done
	}
	if string(order) != "\x00\x01\x02" {
		t.Fatalf("resume order = %v", order)
	}
	if paused, _ := b.Faults().Paused(1); paused {
		t.Fatal("broker still paused after Resume")
	}
}

// TestLayersCompose: the custom drop hook, a partition, and a loss rule
// are independent layers — clearing one leaves the others active.
func TestLayersCompose(t *testing.T) {
	b, got := faultBus(t, 3)
	var hookDrops atomic.Int64
	b.SetDropFunc(func(m Message) bool {
		if m.Kind == KindControl {
			hookDrops.Add(1)
			return true
		}
		return false
	})
	if err := b.Partition([]topology.NodeID{0}, []topology.NodeID{2}); err != nil {
		t.Fatal(err)
	}
	b.Faults().SetLoss(KindSummary, 1.0, 7)

	_ = b.Send(Message{From: 0, To: 1, Kind: KindControl}) // custom layer
	_ = b.Send(Message{From: 0, To: 2, Kind: KindEvent})   // partition layer
	_ = b.Send(Message{From: 0, To: 1, Kind: KindSummary}) // loss layer
	_ = b.Send(Message{From: 0, To: 1, Kind: KindEvent})   // clean
	b.Quiesce()
	if hookDrops.Load() != 1 {
		t.Fatalf("custom hook ran %d times, want 1", hookDrops.Load())
	}
	if got[1].Load() != 1 || got[2].Load() != 0 {
		t.Fatalf("layer composition wrong: arrivals = [%d %d %d]", got[0].Load(), got[1].Load(), got[2].Load())
	}

	// Clearing the custom hook must not heal the partition or the loss.
	b.SetDropFunc(nil)
	_ = b.Send(Message{From: 0, To: 2, Kind: KindEvent})
	_ = b.Send(Message{From: 0, To: 1, Kind: KindSummary})
	b.Quiesce()
	if got[2].Load() != 0 {
		t.Fatal("SetDropFunc(nil) healed the partition")
	}
	if s := b.Stats(); s.Dropped[KindSummary] != 2 {
		t.Fatal("SetDropFunc(nil) cleared the loss rule")
	}

	// Heal must not resurrect the (cleared) custom hook or clear loss.
	b.Heal()
	_ = b.Send(Message{From: 0, To: 2, Kind: KindEvent})
	b.Quiesce()
	if got[2].Load() != 1 {
		t.Fatal("heal did not restore the partitioned link")
	}

	b.Faults().Clear()
	if b.hasFault.Load() {
		t.Fatal("Clear left the fault gate on")
	}
}

// TestCloseReleasesParked: closing a bus with parked messages releases
// their shared-buffer references (the over-release panic in Release
// would fire otherwise) and does not deadlock.
func TestCloseReleasesParked(t *testing.T) {
	b := NewBus(1)
	b.Start(0, func(Message) {})
	if err := b.Faults().Pause(0); err != nil {
		t.Fatal(err)
	}
	sb := AcquireBuf()
	sb.B = append(sb.B, "payload"...)
	if err := b.SendShared(Message{From: 0, To: 0, Kind: KindSummary}, sb); err != nil {
		t.Fatal(err)
	}
	sb.Release()
	b.Close()
	if n := sb.refs.Load(); n != 0 {
		t.Fatalf("parked buffer refs after close = %d, want 0", n)
	}
}
