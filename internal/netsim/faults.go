// Layered fault plane: addressable network-fault primitives for chaos
// scenarios. Earlier revisions offered exactly one hook — SetDropFunc —
// so any test that wanted a partition AND a loss rate had to compose the
// predicates by hand, and two scenario phases touching the hook
// concurrently would clobber each other. The fault plane keeps each
// primitive in its own layer:
//
//   - Partition(setA, setB): messages crossing between the two broker
//     sets are dropped, symmetrically. Partitions stack; Heal clears
//     them all (and nothing else).
//   - SetLoss(kind, rate, seed): seeded probabilistic loss for one
//     message kind. rate ≤ 0 removes the rule; rate ≥ 1 drops every
//     message of the kind deterministically.
//   - Pause(id) / Resume(id): a paused broker's incoming messages are
//     parked (counted as sent — they are on a slow wire, not lost) and
//     delivered in order on Resume. Parked messages do not count as
//     in-flight, so Quiesce does not wait for a paused broker.
//   - SetDropFunc(fn): the legacy custom layer, unchanged semantics.
//
// All layers are evaluated in one faultMu critical section on the send
// path (drop layers first, pause last), and each mutator touches only
// its own layer — concurrent scenario phases cannot clobber each other.
// Drops are accounted exactly like SetDropFunc drops always were:
// Dropped/DroppedBytes counters, registry instruments, and a flight
// EvDrop record.
package netsim

import (
	"fmt"
	"math/rand"

	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/topology"
)

// faultState is the bus's layered fault configuration, guarded by
// Bus.faultMu.
type faultState struct {
	custom func(Message) bool
	cuts   []cut
	loss   [KindControl + 1]lossRule
	// held parks messages destined to paused brokers; map presence marks
	// the broker paused even while no messages are parked.
	held map[topology.NodeID][]queued
}

// cut is one partition: traffic between side a and side b is dropped in
// both directions; traffic within a side (or touching neither side)
// flows.
type cut struct {
	a, b []bool
}

func (c cut) severs(from, to topology.NodeID) bool {
	if int(from) >= len(c.a) || int(to) >= len(c.a) || from < 0 || to < 0 {
		return false
	}
	return (c.a[from] && c.b[to]) || (c.b[from] && c.a[to])
}

// lossRule is a per-kind probabilistic drop with its own seeded RNG, so
// a scenario's loss sequence is reproducible independent of every other
// layer.
type lossRule struct {
	rate float64
	rng  *rand.Rand
}

// Faults is a handle on one bus's fault plane. It is a value type — copy
// freely; all state lives in the bus.
type Faults struct {
	b *Bus
}

// Faults returns the bus's fault-plane handle.
func (b *Bus) Faults() Faults { return Faults{b: b} }

// Partition severs traffic between setA and setB (symmetric, both
// directions) until Heal. Partitions stack: each call adds one cut.
// The sides must be non-empty, disjoint, and in range.
func (b *Bus) Partition(setA, setB []topology.NodeID) error {
	return b.Faults().Partition(setA, setB)
}

// Heal removes every partition installed with Partition. Loss rates,
// paused brokers, and the custom drop hook are untouched.
func (b *Bus) Heal() { b.Faults().Heal() }

// refreshFaultGate recomputes the hot-path "any layer active" bit.
func (b *Bus) refreshFaultGate() {
	b.faultMu.Lock()
	fs := &b.faults
	active := fs.custom != nil || len(fs.cuts) > 0 || len(fs.held) > 0
	if !active {
		for k := range fs.loss {
			if fs.loss[k].rate > 0 {
				active = true
				break
			}
		}
	}
	b.faultMu.Unlock()
	b.hasFault.Store(active)
}

// applyFaults evaluates the fault layers for one send. It returns true
// when the message was consumed (dropped or parked); the caller then
// skips normal delivery. Drop accounting runs inside the faultMu
// critical section so a custom hook's own counters always agree with
// Stats.Dropped; instrument and journal mirroring run outside it, as
// the plain drop path always did.
func (b *Bus) applyFaults(m Message, sb *SharedBuf, in *busInstruments) bool {
	b.faultMu.Lock()
	fs := &b.faults
	drop := fs.custom != nil && fs.custom(m)
	if !drop {
		for _, c := range fs.cuts {
			if c.severs(m.From, m.To) {
				drop = true
				break
			}
		}
	}
	if !drop && int(m.Kind) < len(fs.loss) {
		if lr := &fs.loss[m.Kind]; lr.rate > 0 && lr.rng.Float64() < lr.rate {
			drop = true
		}
	}
	if drop {
		b.dropped.add(m.Kind, 1)
		b.droppedBytes.add(m.Kind, int64(len(m.Payload)))
		b.faultMu.Unlock()
		if in != nil {
			if c := kindCounter(&in.dropped, m.Kind); c != nil {
				c.Inc()
			}
			if c := kindCounter(&in.droppedBytes, m.Kind); c != nil {
				c.Add(int64(len(m.Payload)))
			}
		}
		if rec := b.rec.Load(); rec != nil {
			rec.Record(flight.EvDrop, int(m.To), int64(m.Kind), int64(len(m.Payload)), int64(m.From), m.Kind.String())
		}
		return true
	}
	if qs, paused := fs.held[m.To]; paused {
		if sb != nil {
			sb.refs.Add(1)
		}
		fs.held[m.To] = append(qs, queued{msg: m, sb: sb})
		b.faultMu.Unlock()
		// Parked messages count as sent — they are delayed, not lost — so
		// byte accounting still reconciles against sender-side counters.
		b.messages.add(m.Kind, 1)
		b.bytes.add(m.Kind, int64(len(m.Payload)))
		if in != nil {
			if c := kindCounter(&in.messages, m.Kind); c != nil {
				c.Inc()
			}
			if c := kindCounter(&in.bytes, m.Kind); c != nil {
				c.Add(int64(len(m.Payload)))
			}
		}
		return true
	}
	b.faultMu.Unlock()
	return false
}

// Partition severs traffic between setA and setB until Heal. See
// Bus.Partition.
func (f Faults) Partition(setA, setB []topology.NodeID) error {
	b := f.b
	if len(setA) == 0 || len(setB) == 0 {
		return fmt.Errorf("netsim: partition wants two non-empty sides")
	}
	n := len(b.boxes)
	c := cut{a: make([]bool, n), b: make([]bool, n)}
	for _, id := range setA {
		if int(id) < 0 || int(id) >= n {
			return fmt.Errorf("netsim: partition side A node %d out of range", id)
		}
		c.a[id] = true
	}
	for _, id := range setB {
		if int(id) < 0 || int(id) >= n {
			return fmt.Errorf("netsim: partition side B node %d out of range", id)
		}
		if c.a[id] {
			return fmt.Errorf("netsim: node %d on both sides of the partition", id)
		}
		c.b[id] = true
	}
	b.faultMu.Lock()
	b.faults.cuts = append(b.faults.cuts, c)
	b.faultMu.Unlock()
	b.refreshFaultGate()
	return nil
}

// Heal removes every partition. See Bus.Heal.
func (f Faults) Heal() {
	f.b.faultMu.Lock()
	f.b.faults.cuts = nil
	f.b.faultMu.Unlock()
	f.b.refreshFaultGate()
}

// SetLoss installs (or with rate ≤ 0 removes) a probabilistic loss rule
// for one message kind. The rule's RNG is seeded here, so a scenario's
// drop sequence is reproducible; rate ≥ 1 drops deterministically.
func (f Faults) SetLoss(k Kind, rate float64, seed int64) {
	b := f.b
	b.faultMu.Lock()
	if int(k) < len(b.faults.loss) {
		if rate <= 0 {
			b.faults.loss[k] = lossRule{}
		} else {
			b.faults.loss[k] = lossRule{rate: rate, rng: rand.New(rand.NewSource(seed))}
		}
	}
	b.faultMu.Unlock()
	b.refreshFaultGate()
}

// Pause parks all traffic destined to the broker until Resume. Parked
// messages are counted as sent, keep their arrival order, and do not
// block Quiesce. Pausing an already-paused broker is a no-op.
func (f Faults) Pause(id topology.NodeID) error {
	b := f.b
	if int(id) < 0 || int(id) >= len(b.boxes) {
		return fmt.Errorf("netsim: pause target %d out of range", id)
	}
	b.faultMu.Lock()
	if b.faults.held == nil {
		b.faults.held = make(map[topology.NodeID][]queued)
	}
	if _, ok := b.faults.held[id]; !ok {
		b.faults.held[id] = nil
	}
	b.faultMu.Unlock()
	b.refreshFaultGate()
	return nil
}

// Resume un-pauses the broker and delivers its parked messages in
// arrival order. Resuming a broker that is not paused is a no-op.
func (f Faults) Resume(id topology.NodeID) error {
	b := f.b
	if int(id) < 0 || int(id) >= len(b.boxes) {
		return fmt.Errorf("netsim: resume target %d out of range", id)
	}
	b.faultMu.Lock()
	qs, ok := b.faults.held[id]
	if ok {
		delete(b.faults.held, id)
	}
	b.faultMu.Unlock()
	b.refreshFaultGate()
	if !ok {
		return nil
	}
	for _, q := range qs {
		b.addInflight()
		if !b.boxes[id].push(q) {
			if q.sb != nil {
				q.sb.Release()
			}
			b.doneInflight(1)
		}
	}
	return nil
}

// Paused reports whether the broker is currently paused, and how many
// messages are parked for it.
func (f Faults) Paused(id topology.NodeID) (paused bool, parked int) {
	f.b.faultMu.Lock()
	defer f.b.faultMu.Unlock()
	qs, ok := f.b.faults.held[id]
	return ok, len(qs)
}

// Clear resets the whole fault plane: partitions healed, loss rules
// removed, the custom hook cleared, and every paused broker resumed
// (delivering its parked messages).
func (f Faults) Clear() {
	b := f.b
	b.faultMu.Lock()
	b.faults.custom = nil
	b.faults.cuts = nil
	for k := range b.faults.loss {
		b.faults.loss[k] = lossRule{}
	}
	var pausedIDs []topology.NodeID
	for id := range b.faults.held {
		pausedIDs = append(pausedIDs, id)
	}
	b.faultMu.Unlock()
	for _, id := range pausedIDs {
		_ = f.Resume(id)
	}
	b.refreshFaultGate()
}
