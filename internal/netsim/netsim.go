// Package netsim provides the in-process message-passing substrate for the
// live broker engine: one unbounded mailbox per broker, a handler
// goroutine per broker, quiescence detection (wait until every sent
// message has been fully processed, including messages sent while
// processing), and per-kind byte/message accounting.
//
// Unbounded mailboxes rule out the classic actor deadlock where two
// brokers block sending to each other's full inboxes; memory is bounded in
// practice by quiescence between experiment phases.
//
// Loss is never silent: fault-injected drops, payloads the receiver could
// not decode, and handler-side processing failures each have their own
// per-kind counter in Stats, so experiments can verify that observed
// bandwidth/coverage figures account for every message sent.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/topology"
)

// Kind tags a message for accounting and dispatch.
type Kind uint8

// Message kinds used by the engine.
const (
	KindSummary Kind = iota + 1 // propagation: merged summary + Merged_Brokers
	KindEvent                   // routing: event + BROCLI + delivered set
	KindDeliver                 // delivery to an owning broker
	KindControl                 // coordinator control traffic (not counted as data)
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSummary:
		return "summary"
	case KindEvent:
		return "event"
	case KindDeliver:
		return "deliver"
	case KindControl:
		return "control"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is one broker-to-broker datagram.
type Message struct {
	From, To topology.NodeID
	Kind     Kind
	Payload  []byte
}

// Handler processes one message on the owner's goroutine. The payload is
// only valid for the duration of the call when the sender used a shared
// buffer (SendShared): handlers must decode, not retain, Payload.
type Handler func(Message)

// SharedBuf is a pooled, reference-counted payload buffer. One encode can
// be multicast to many recipients: each successful SendShared takes a
// reference, the bus releases it after the recipient's handler returns
// (or on drop/close), and the final release returns the buffer to the
// pool. The sender holds the initial reference from AcquireBuf and gives
// it up with Release once all sends are issued.
type SharedBuf struct {
	// B is the payload. The owner may resize/overwrite it only between
	// AcquireBuf and the first SendShared.
	B    []byte
	refs atomic.Int32
}

var sharedBufPool = sync.Pool{New: func() any { return new(SharedBuf) }}

// AcquireBuf returns a pooled buffer with one reference (the caller's)
// and zero length; capacity is recycled from earlier sends.
func AcquireBuf() *SharedBuf {
	sb := sharedBufPool.Get().(*SharedBuf)
	sb.B = sb.B[:0]
	sb.refs.Store(1)
	return sb
}

// Release drops one reference; the last release recycles the buffer.
func (sb *SharedBuf) Release() {
	switch n := sb.refs.Add(-1); {
	case n == 0:
		sharedBufPool.Put(sb)
	case n < 0:
		panic("netsim: SharedBuf over-released")
	}
}

// Stats is a snapshot of bus accounting.
type Stats struct {
	Messages map[Kind]int64
	Bytes    map[Kind]int64
	// Dropped counts messages removed by the fault-injection hook (they
	// never reach a mailbox and are excluded from Messages/Bytes).
	Dropped map[Kind]int64
	// DroppedBytes counts the payload bytes of dropped messages, so byte
	// accounting reconciles end-to-end: what a sender put on the wire for a
	// kind equals Bytes[kind] + DroppedBytes[kind].
	DroppedBytes map[Kind]int64
	// DecodeErrors counts delivered messages whose payload the receiving
	// handler could not decode (corruption, truncation, version skew).
	DecodeErrors map[Kind]int64
	// HandlerErrors counts delivered, well-formed messages the receiving
	// handler failed to process (e.g. a summary merge rejection).
	HandlerErrors map[Kind]int64
}

// TotalMessages sums message counts over data kinds (control excluded).
func (s Stats) TotalMessages() int64 {
	var n int64
	for k, v := range s.Messages {
		if k != KindControl {
			n += v
		}
	}
	return n
}

// TotalBytes sums payload bytes over data kinds (control excluded).
func (s Stats) TotalBytes() int64 {
	var n int64
	for k, v := range s.Bytes {
		if k != KindControl {
			n += v
		}
	}
	return n
}

// TotalDropped sums fault-injected drops over all kinds.
func (s Stats) TotalDropped() int64 {
	var n int64
	for _, v := range s.Dropped {
		n += v
	}
	return n
}

// TotalErrors sums decode and handler errors over all kinds.
func (s Stats) TotalErrors() int64 {
	var n int64
	for _, v := range s.DecodeErrors {
		n += v
	}
	for _, v := range s.HandlerErrors {
		n += v
	}
	return n
}

// Counters flattens the snapshot into a metrics.CounterSet with
// "<kind>.<field>" names (e.g. "summary.dropped", "event.decode_errors"),
// ready for table rendering in experiment reports.
func (s Stats) Counters() *metrics.CounterSet {
	c := metrics.NewCounterSet()
	add := func(field string, m map[Kind]int64) {
		for k, v := range m {
			if v != 0 {
				c.Add(k.String()+"."+field, v)
			}
		}
	}
	add("messages", s.Messages)
	add("bytes", s.Bytes)
	add("dropped", s.Dropped)
	add("dropped_bytes", s.DroppedBytes)
	add("decode_errors", s.DecodeErrors)
	add("handler_errors", s.HandlerErrors)
	return c
}

// busInstruments mirrors the bus accounting into a metrics.Registry so a
// live daemon can watch traffic without polling Stats. Instruments are
// resolved once at Instrument time; the per-kind arrays are indexed by
// Kind so the send path pays one atomic pointer load, one bounds check,
// and one atomic add per counter.
type busInstruments struct {
	messages     [KindControl + 1]*metrics.Counter
	bytes        [KindControl + 1]*metrics.Counter
	dropped      [KindControl + 1]*metrics.Counter
	droppedBytes [KindControl + 1]*metrics.Counter
	decodeErrs   [KindControl + 1]*metrics.Counter
	handlerErrs  [KindControl + 1]*metrics.Counter
	inflight     *metrics.Gauge
}

// Instrument mirrors bus counters into r under "bus_*{kind}" families and
// exposes the in-flight message depth as the "bus_inflight" gauge. Pass
// nil to detach. Safe to call at any time; accounting before the call is
// not back-filled.
func (b *Bus) Instrument(r *metrics.Registry) {
	if r == nil {
		b.instr.Store(nil)
		return
	}
	in := &busInstruments{inflight: r.Gauge("bus_inflight")}
	msgs := r.CounterVec("bus_messages")
	bts := r.CounterVec("bus_bytes")
	drop := r.CounterVec("bus_dropped")
	dropB := r.CounterVec("bus_dropped_bytes")
	dec := r.CounterVec("bus_decode_errors")
	han := r.CounterVec("bus_handler_errors")
	for k := KindSummary; k <= KindControl; k++ {
		in.messages[k] = msgs.With(k.String())
		in.bytes[k] = bts.With(k.String())
		in.dropped[k] = drop.With(k.String())
		in.droppedBytes[k] = dropB.With(k.String())
		in.decodeErrs[k] = dec.With(k.String())
		in.handlerErrs[k] = han.With(k.String())
	}
	b.instr.Store(in)
}

// kindCounter fetches the per-kind counter, tolerating out-of-range kinds
// (counted nowhere rather than panicking on a corrupt tag).
func kindCounter(arr *[KindControl + 1]*metrics.Counter, k Kind) *metrics.Counter {
	if int(k) >= len(arr) {
		return nil
	}
	return arr[k]
}

// queued is one mailbox entry: the message plus its shared buffer, if
// the sender used one (released after the handler runs).
type queued struct {
	msg Message
	sb  *SharedBuf
}

// mailbox is an unbounded FIFO with close support.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []queued
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(q queued) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.queue = append(m.queue, q)
	m.cond.Signal()
	return true
}

// popBatch blocks until at least one message is available (or the
// mailbox closes), then drains up to max pending messages into buf
// without blocking again — the intake side of batched handling.
func (m *mailbox) popBatch(buf []queued, max int) ([]queued, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return buf, false
	}
	n := min(max, len(m.queue))
	buf = append(buf, m.queue[:n]...)
	for i := 0; i < n; i++ {
		m.queue[i] = queued{} // release payload references promptly
	}
	m.queue = m.queue[n:]
	return buf, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// kindCounters is a lock-free per-kind counter array, indexed by Kind.
// Out-of-range kinds (a corrupt tag) are counted nowhere rather than
// panicking.
type kindCounters [KindControl + 1]atomic.Int64

func (c *kindCounters) add(k Kind, v int64) {
	if int(k) < len(c) {
		c[k].Add(v)
	}
}

// toMap snapshots the nonzero entries (matching the former map-backed
// accounting, which only held kinds that were ever counted).
func (c *kindCounters) toMap() map[Kind]int64 {
	m := make(map[Kind]int64)
	for k := range c {
		if v := c[k].Load(); v != 0 {
			m[Kind(k)] = v
		}
	}
	return m
}

// Bus connects n brokers with unbounded mailboxes.
//
// The send path is lock-free: per-kind accounting lives in atomic counter
// arrays and the in-flight depth is an atomic — concurrent publishers and
// handler goroutines never serialize on a bus-wide mutex. The only lock a
// send can take is faultMu, and only while some fault layer is active
// (tests and chaos scenarios); production sends pay one atomic bool load
// for it.
type Bus struct {
	boxes    []*mailbox
	closed   atomic.Bool
	handlers sync.WaitGroup

	// In-flight accounting for Quiesce: an atomic counter, with a
	// mutex+cond used purely as the sleep/wake mechanism. doneInflight
	// broadcasts under qmu whenever the counter hits zero; Quiesce re-reads
	// the counter under qmu before sleeping, so a zero-crossing between its
	// check and its wait cannot be missed (the broadcaster needs qmu, which
	// the waiter holds until it sleeps).
	qmu      sync.Mutex
	qcond    *sync.Cond
	inflight atomic.Int64

	// instr optionally mirrors accounting into a metrics registry; nil
	// (the default) costs one atomic load and branch per event.
	instr atomic.Pointer[busInstruments]

	// rec optionally journals drops and decode errors into a flight
	// recorder; nil (the default) costs one atomic load and branch.
	rec atomic.Pointer[flight.Recorder]

	messages     kindCounters
	bytes        kindCounters
	dropped      kindCounters
	droppedBytes kindCounters
	decodeErrs   kindCounters
	handlerErrs  kindCounters

	// The layered fault plane (partitions, per-kind loss, paused brokers,
	// plus the legacy custom drop hook) is evaluated serialized under
	// faultMu so hooks may keep unsynchronized state; hasFault lets the
	// hot path skip the lock entirely when no layer is active.
	faultMu  sync.Mutex
	faults   faultState
	hasFault atomic.Bool
}

// NewBus creates a bus for n brokers.
func NewBus(n int) *Bus {
	b := &Bus{boxes: make([]*mailbox, n)}
	b.qcond = sync.NewCond(&b.qmu)
	for i := range b.boxes {
		b.boxes[i] = newMailbox()
	}
	return b
}

// Len returns the number of endpoints.
func (b *Bus) Len() int { return len(b.boxes) }

// SetDropFunc installs a fault-injection hook: messages for which fn
// returns true are dropped before delivery (they count in the Dropped
// stats, not in Messages/Bytes). Pass nil to disable. Intended for tests;
// fn runs under the bus lock and must be fast and deterministic.
//
// The hook is one layer of the fault plane: installing or clearing it
// leaves partitions, loss rates, and paused brokers untouched (see
// Faults).
func (b *Bus) SetDropFunc(fn func(Message) bool) {
	b.faultMu.Lock()
	b.faults.custom = fn
	b.faultMu.Unlock()
	b.refreshFaultGate()
}

// SetFlight attaches a flight recorder: fault-injected drops and decode
// errors are journaled as they happen, with the destination broker and
// kind. Pass nil to detach.
func (b *Bus) SetFlight(rec *flight.Recorder) {
	b.rec.Store(rec)
}

// RecordDecodeError counts a delivered message whose payload the handler
// could not decode. Called by the engine's handlers so that no message
// vanishes without a counter.
func (b *Bus) RecordDecodeError(k Kind) { b.RecordDecodeErrorAt(k, -1) }

// RecordDecodeErrorAt is RecordDecodeError with the receiving broker
// identified, so the flight-recorder entry names where decoding failed
// (pass -1 when unknown).
func (b *Bus) RecordDecodeErrorAt(k Kind, at topology.NodeID) {
	b.decodeErrs.add(k, 1)
	if in := b.instr.Load(); in != nil {
		if c := kindCounter(&in.decodeErrs, k); c != nil {
			c.Inc()
		}
	}
	if rec := b.rec.Load(); rec != nil {
		rec.Record(flight.EvDecodeError, int(at), int64(k), 0, 0, k.String())
	}
}

// RecordHandlerError counts a delivered, decodable message whose
// processing failed at the handler (e.g. a rejected summary merge).
func (b *Bus) RecordHandlerError(k Kind) {
	b.handlerErrs.add(k, 1)
	if in := b.instr.Load(); in != nil {
		if c := kindCounter(&in.handlerErrs, k); c != nil {
			c.Inc()
		}
	}
}

// addInflight registers one undelivered message.
func (b *Bus) addInflight() {
	b.inflight.Add(1)
	if in := b.instr.Load(); in != nil {
		// Gauge updates go through Add so concurrent adjustments commute
		// and the gauge converges to the true depth.
		in.inflight.Add(1)
	}
}

// doneInflight retires n delivered (or discarded) messages.
func (b *Bus) doneInflight(n int64) {
	if n == 0 {
		return
	}
	v := b.inflight.Add(-n)
	if v < 0 {
		panic("netsim: negative in-flight count")
	}
	if in := b.instr.Load(); in != nil {
		in.inflight.Add(-n)
	}
	if v == 0 {
		// Broadcast under qmu so a Quiesce between its counter check and
		// its cond wait cannot miss this zero-crossing.
		b.qmu.Lock()
		b.qcond.Broadcast()
		b.qmu.Unlock()
	}
}

// Send enqueues a message for delivery. It is safe to call from handlers
// and from any goroutine, concurrently with Quiesce.
func (b *Bus) Send(m Message) error { return b.send(m, nil) }

// SendShared enqueues m with its payload backed by the shared buffer sb
// (m.Payload is set to sb.B). On successful enqueue the bus takes one
// reference, released after the recipient's handler returns — so one
// encoded summary or event can fan out to any number of recipients with
// zero payload copies, while per-recipient byte accounting still counts
// the full payload length for every delivery. Dropped and rejected
// messages take no reference. The caller still owns its AcquireBuf
// reference and must Release it after the last send.
func (b *Bus) SendShared(m Message, sb *SharedBuf) error {
	m.Payload = sb.B
	return b.send(m, sb)
}

func (b *Bus) send(m Message, sb *SharedBuf) error {
	if int(m.To) < 0 || int(m.To) >= len(b.boxes) {
		return fmt.Errorf("netsim: destination %d out of range", m.To)
	}
	if b.closed.Load() {
		return fmt.Errorf("netsim: bus closed")
	}
	in := b.instr.Load()
	if b.hasFault.Load() {
		if handled := b.applyFaults(m, sb, in); handled {
			return nil
		}
	}
	b.messages.add(m.Kind, 1)
	b.bytes.add(m.Kind, int64(len(m.Payload)))
	if in != nil {
		if c := kindCounter(&in.messages, m.Kind); c != nil {
			c.Inc()
		}
		if c := kindCounter(&in.bytes, m.Kind); c != nil {
			c.Add(int64(len(m.Payload)))
		}
	}
	b.addInflight()
	if sb != nil {
		sb.refs.Add(1)
	}
	if !b.boxes[m.To].push(queued{msg: m, sb: sb}) {
		if sb != nil {
			sb.Release()
		}
		b.doneInflight(1)
		return fmt.Errorf("netsim: mailbox %d closed", m.To)
	}
	return nil
}

// Start launches the handler goroutine for one broker, handling one
// message per wakeup. Each broker must be started exactly once; the
// handler runs until Close.
func (b *Bus) Start(node topology.NodeID, h Handler) {
	b.StartBatch(node, 1, func(ms []Message) {
		for _, m := range ms {
			h(m)
		}
	})
}

// BatchHandler processes a batch of messages on the owner's goroutine, in
// arrival order. Payload lifetime matches Handler's: decode, don't
// retain.
type BatchHandler func([]Message)

// StartBatch launches the handler goroutine for one broker with batched
// intake: each wakeup drains up to maxBatch pending messages from the
// mailbox and hands them to h in one call, amortizing wakeup, in-flight
// retirement, and the handler's own per-batch bookkeeping. maxBatch ≤ 1
// degenerates to one-message-at-a-time handling.
func (b *Bus) StartBatch(node topology.NodeID, maxBatch int, h BatchHandler) {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b.handlers.Add(1)
	go func() {
		defer b.handlers.Done()
		box := b.boxes[node]
		buf := make([]queued, 0, maxBatch)
		msgs := make([]Message, 0, maxBatch)
		for {
			buf = buf[:0]
			var ok bool
			buf, ok = box.popBatch(buf, maxBatch)
			if !ok {
				return
			}
			msgs = msgs[:0]
			for i := range buf {
				msgs = append(msgs, buf[i].msg)
			}
			h(msgs)
			for i := range buf {
				if buf[i].sb != nil {
					buf[i].sb.Release()
				}
				buf[i] = queued{}
			}
			b.doneInflight(int64(len(msgs)))
		}
	}()
}

// Inflight reports the number of sent-but-not-yet-handled messages at
// this instant. Used by the invariant watchdog to decide whether flow
// conservation can be checked strictly (a nonzero depth means routed
// events may still be mid-flight between counters).
func (b *Bus) Inflight() int64 { return b.inflight.Load() }

// Quiesce blocks until every message sent so far — including messages sent
// by handlers while processing — has been handled. With senders running
// concurrently, it returns at a moment when the bus was observed empty;
// messages sent after that moment are not waited for.
func (b *Bus) Quiesce() {
	b.qmu.Lock()
	for b.inflight.Load() > 0 {
		b.qcond.Wait()
	}
	b.qmu.Unlock()
}

// Close shuts the bus down and waits for handler goroutines to exit.
// Unprocessed messages are dropped (their in-flight count is released),
// including messages parked for paused brokers.
func (b *Bus) Close() {
	if !b.closed.CompareAndSwap(false, true) {
		return
	}
	b.faultMu.Lock()
	parked := b.faults.held
	b.faults.held = nil
	b.faultMu.Unlock()
	for _, qs := range parked {
		for _, q := range qs {
			if q.sb != nil {
				q.sb.Release()
			}
		}
	}
	for _, box := range b.boxes {
		box.mu.Lock()
		discarded := box.queue
		box.queue = nil
		box.closed = true
		box.cond.Broadcast()
		box.mu.Unlock()
		for _, q := range discarded {
			if q.sb != nil {
				q.sb.Release()
			}
		}
		b.doneInflight(int64(len(discarded)))
	}
	b.handlers.Wait()
}

// Stats returns a snapshot of the accounting counters. With senders
// running concurrently the per-kind values are each exact but the
// snapshot as a whole is not atomic; quiesce first for totals that must
// reconcile.
func (b *Bus) Stats() Stats {
	return Stats{
		Messages:      b.messages.toMap(),
		Bytes:         b.bytes.toMap(),
		Dropped:       b.dropped.toMap(),
		DroppedBytes:  b.droppedBytes.toMap(),
		DecodeErrors:  b.decodeErrs.toMap(),
		HandlerErrors: b.handlerErrs.toMap(),
	}
}
