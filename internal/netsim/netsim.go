// Package netsim provides the in-process message-passing substrate for the
// live broker engine: one unbounded mailbox per broker, a handler
// goroutine per broker, quiescence detection (wait until every sent
// message has been fully processed, including messages sent while
// processing), and per-kind byte/message accounting.
//
// Unbounded mailboxes rule out the classic actor deadlock where two
// brokers block sending to each other's full inboxes; memory is bounded in
// practice by quiescence between experiment phases.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/subsum/subsum/internal/topology"
)

// Kind tags a message for accounting and dispatch.
type Kind uint8

// Message kinds used by the engine.
const (
	KindSummary Kind = iota + 1 // propagation: merged summary + Merged_Brokers
	KindEvent                   // routing: event + BROCLI + delivered set
	KindDeliver                 // delivery to an owning broker
	KindControl                 // coordinator control traffic (not counted as data)
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSummary:
		return "summary"
	case KindEvent:
		return "event"
	case KindDeliver:
		return "deliver"
	case KindControl:
		return "control"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is one broker-to-broker datagram.
type Message struct {
	From, To topology.NodeID
	Kind     Kind
	Payload  []byte
}

// Handler processes one message on the owner's goroutine.
type Handler func(Message)

// Stats is a snapshot of bus accounting.
type Stats struct {
	Messages map[Kind]int64
	Bytes    map[Kind]int64
	Dropped  map[Kind]int64
}

// TotalMessages sums message counts over data kinds (control excluded).
func (s Stats) TotalMessages() int64 {
	var n int64
	for k, v := range s.Messages {
		if k != KindControl {
			n += v
		}
	}
	return n
}

// TotalBytes sums payload bytes over data kinds (control excluded).
func (s Stats) TotalBytes() int64 {
	var n int64
	for k, v := range s.Bytes {
		if k != KindControl {
			n += v
		}
	}
	return n
}

// mailbox is an unbounded FIFO with close support.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(msg Message) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.queue = append(m.queue, msg)
	m.cond.Signal()
	return true
}

// pop blocks until a message is available or the mailbox closes.
func (m *mailbox) pop() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return Message{}, false
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// Bus connects n brokers with unbounded mailboxes.
type Bus struct {
	boxes    []*mailbox
	pending  sync.WaitGroup
	closed   atomic.Bool
	handlers sync.WaitGroup

	mu       sync.Mutex
	messages map[Kind]int64
	bytes    map[Kind]int64
	dropped  map[Kind]int64
	dropFn   func(Message) bool
}

// NewBus creates a bus for n brokers.
func NewBus(n int) *Bus {
	b := &Bus{
		boxes:    make([]*mailbox, n),
		messages: make(map[Kind]int64),
		bytes:    make(map[Kind]int64),
		dropped:  make(map[Kind]int64),
	}
	for i := range b.boxes {
		b.boxes[i] = newMailbox()
	}
	return b
}

// Len returns the number of endpoints.
func (b *Bus) Len() int { return len(b.boxes) }

// SetDropFunc installs a fault-injection hook: messages for which fn
// returns true are silently dropped (they still count in the Dropped
// stats, not in Messages/Bytes). Pass nil to disable. Intended for tests;
// fn runs under the bus lock and must be fast and deterministic.
func (b *Bus) SetDropFunc(fn func(Message) bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dropFn = fn
}

// Send enqueues a message for delivery. It is safe to call from handlers.
func (b *Bus) Send(m Message) error {
	if int(m.To) < 0 || int(m.To) >= len(b.boxes) {
		return fmt.Errorf("netsim: destination %d out of range", m.To)
	}
	if b.closed.Load() {
		return fmt.Errorf("netsim: bus closed")
	}
	b.mu.Lock()
	if b.dropFn != nil && b.dropFn(m) {
		b.dropped[m.Kind]++
		b.mu.Unlock()
		return nil
	}
	b.pending.Add(1)
	b.messages[m.Kind]++
	b.bytes[m.Kind] += int64(len(m.Payload))
	b.mu.Unlock()
	if !b.boxes[m.To].push(m) {
		b.pending.Done()
		return fmt.Errorf("netsim: mailbox %d closed", m.To)
	}
	return nil
}

// Start launches the handler goroutine for one broker. Each broker must be
// started exactly once; the handler runs until Close.
func (b *Bus) Start(node topology.NodeID, h Handler) {
	b.handlers.Add(1)
	go func() {
		defer b.handlers.Done()
		box := b.boxes[node]
		for {
			msg, ok := box.pop()
			if !ok {
				return
			}
			h(msg)
			b.pending.Done()
		}
	}()
}

// Quiesce blocks until every message sent so far — including messages sent
// by handlers while processing — has been handled.
func (b *Bus) Quiesce() { b.pending.Wait() }

// Close shuts the bus down and waits for handler goroutines to exit.
// Unprocessed messages are dropped (their pending count is released).
func (b *Bus) Close() {
	if !b.closed.CompareAndSwap(false, true) {
		return
	}
	for _, box := range b.boxes {
		box.mu.Lock()
		dropped := len(box.queue)
		box.queue = nil
		box.closed = true
		box.cond.Broadcast()
		box.mu.Unlock()
		for i := 0; i < dropped; i++ {
			b.pending.Done()
		}
	}
	b.handlers.Wait()
}

// Stats returns a snapshot of the accounting counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := Stats{
		Messages: make(map[Kind]int64, len(b.messages)),
		Bytes:    make(map[Kind]int64, len(b.bytes)),
		Dropped:  make(map[Kind]int64, len(b.dropped)),
	}
	for k, v := range b.messages {
		s.Messages[k] = v
	}
	for k, v := range b.bytes {
		s.Bytes[k] = v
	}
	for k, v := range b.dropped {
		s.Dropped[k] = v
	}
	return s
}
