// Package scenario is the scripted chaos runner: it drives a live
// broker network through a deterministic schedule of fault phases —
// partitions, per-kind loss bursts, broker pauses, churn storms — while
// the SLO engine evaluates error budgets in lockstep with propagation
// periods.
//
// Each phase declares its control expectations: which objectives MUST
// breach while the fault is injected, which MAY, and how fast breaches
// must clear after the heal. The runner checks them and reports control
// errors, which makes a scenario a falsifiable experiment rather than a
// demo — a clean phase that breaches, an injected fault that fails to
// breach its objective, or a breach that outlives the recovery window
// all fail the run.
//
// Determinism: topology, workload, routing, churn, and fault schedules
// are all seeded, and the sampler is ticked manually on a synthetic
// clock (one tick per propagation period), so byte counts, staleness,
// drop counts, and precision reproduce exactly across runs. The one
// wall-clock quantity is publish→deliver latency; pause phases shape it
// far above its target (parked deliveries wait out a real sleep), and
// clean phases sit orders of magnitude below, so verdicts are stable
// even though the raw values jitter.
package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/netsim"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/slo"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
	"github.com/subsum/subsum/internal/workload"
)

// FaultKind selects a phase's fault primitive.
type FaultKind string

// Fault kinds.
const (
	FaultNone      FaultKind = "none"
	FaultPartition FaultKind = "partition"
	FaultLoss      FaultKind = "loss"
	FaultPause     FaultKind = "pause"
)

// Fault describes the fault a phase holds for its whole duration. The
// runner applies it at phase entry and clears it at phase exit, so a
// following FaultNone phase observes the recovery.
type Fault struct {
	Kind FaultKind `json:"kind"`
	// SideA and SideB are the partition's node sets (FaultPartition).
	SideA []int `json:"side_a,omitempty"`
	SideB []int `json:"side_b,omitempty"`
	// LossKind ("summary", "event", "deliver", "control") and LossRate
	// configure per-kind probabilistic loss (FaultLoss).
	LossKind string  `json:"loss_kind,omitempty"`
	LossRate float64 `json:"loss_rate,omitempty"`
	// PauseBroker selects the broker to park (FaultPause); -1 picks the
	// highest-degree broker (the busiest relay).
	PauseBroker int `json:"pause_broker,omitempty"`
}

// Phase is one step of a scenario script.
type Phase struct {
	Name    string `json:"name"`
	Periods int    `json:"periods"`
	Fault   Fault  `json:"fault"`
	// ChurnPerPeriod subscribes this many fresh subscriptions and retires
	// the same number of the oldest churned ones every period (the base
	// population stays put) — a churn storm inflates propagation bytes.
	ChurnPerPeriod int `json:"churn_per_period,omitempty"`
	// SleepPerPeriod injects real wall time into each period. In a pause
	// phase the sleep happens while deliveries are parked, so it becomes
	// the floor of their observed latency.
	SleepPerPeriod time.Duration `json:"sleep_per_period,omitempty"`
	// MustBreach lists objectives that have to reach breach at least once
	// during the phase; MayBreach lists objectives tolerated in breach.
	// Any breach outside the union is a control error. A phase with both
	// lists empty is a clean phase: any breach at all is a control error.
	MustBreach []string `json:"must_breach,omitempty"`
	MayBreach  []string `json:"may_breach,omitempty"`
	// Recovery marks a post-heal phase: breaches carried in from the
	// previous phase may persist for Config.RecoveryPeriods ticks and
	// must be gone by then — and stay gone.
	Recovery bool `json:"recovery,omitempty"`
}

// Config parameterizes a scenario run.
type Config struct {
	Topology        *topology.Graph
	SubsPerBroker   int
	EventsPerPeriod int
	HitRate         float64
	FullSyncEvery   int
	Seed            int64
	// RecoveryPeriods is the recovery-time objective: a recovery phase
	// must shed every carried-in breach within this many periods.
	RecoveryPeriods int
	// TickEvery is the synthetic clock step per period (the sampler's
	// nominal interval; no wall time passes).
	TickEvery time.Duration
	Targets   slo.Targets
}

// DefaultConfig mirrors the health baseline's match-dense recipe on
// CW24, with SLO windows sized to the phase lengths of DefaultScript.
func DefaultConfig() Config {
	tg := slo.DefaultTargets()
	tg.LatencyP99Seconds = 0.050 // clean deliveries are µs; pause phases sleep 100ms
	tg.StalenessPeriods = 4      // == FullSyncEvery
	// The match-dense recipe's steady per-tick precision is ~0.42–0.45
	// (measured); 0.35 leaves margin below the healthy floor while still
	// catching a summary that degenerates into forwarding noise.
	tg.PrecisionFloor = 0.35
	// Measured on this workload: full-sync ticks peak at ~21.6 KB and a
	// churn storm pushes every tick past ~40 KB, so 32 KiB separates the
	// two with ~50% margin on the clean side.
	tg.BytesPerPeriodCeiling = 32 * 1024
	tg.FastWindow = 4
	tg.SlowWindow = 16
	return Config{
		Topology:        topology.CW24(),
		SubsPerBroker:   20,
		EventsPerPeriod: 48,
		HitRate:         0.7,
		FullSyncEvery:   4,
		Seed:            431,
		RecoveryPeriods: 8,
		TickEvery:       time.Second,
		Targets:         tg,
	}
}

// ObjectiveOutcome summarizes one objective over one phase.
type ObjectiveOutcome struct {
	Name        string  `json:"name"`
	BreachTicks int     `json:"breach_ticks"`
	FirstBreach int     `json:"first_breach"` // tick offset in phase, -1 if never
	LastBreach  int     `json:"last_breach"`
	FinalState  string  `json:"final_state"`
	MaxFastBurn float64 `json:"max_fast_burn"`
	MaxSlowBurn float64 `json:"max_slow_burn"`
	MinBudget   float64 `json:"min_budget_remaining"`
}

// PhaseResult is one phase's observed outcome, carrying enough of the
// script (fault, churn, recovery role) that the report is
// self-describing without the script source.
type PhaseResult struct {
	Name           string             `json:"name"`
	Index          int                `json:"index"`
	Ticks          int                `json:"ticks"`
	Fault          Fault              `json:"fault"`
	ChurnPerPeriod int                `json:"churn_per_period,omitempty"`
	Recovery       bool               `json:"recovery,omitempty"`
	Objectives     []ObjectiveOutcome `json:"objectives"`
	// Breached lists objectives that reached breach during the phase.
	Breached []string `json:"breached,omitempty"`
	// RecoveryTicks is, for recovery phases, the offset of the first tick
	// with no breach at all (-1 if the phase never came clean).
	RecoveryTicks int `json:"recovery_ticks,omitempty"`
	// BytesPerPeriodMax is the largest per-tick propagation-bytes delta —
	// the number the bytes_per_period ceiling is tuned against.
	BytesPerPeriodMax float64 `json:"bytes_per_period_max"`
	// ControlErrors are this phase's failed expectations.
	ControlErrors []string `json:"control_errors,omitempty"`
}

// Result is a full scenario run.
type Result struct {
	Script   string        `json:"script"`
	Topology string        `json:"topology"`
	Brokers  int           `json:"brokers"`
	Seed     int64         `json:"seed"`
	Specs    []slo.Spec    `json:"specs"`
	Phases   []PhaseResult `json:"phases"`
	// Final is the engine's report after the last tick.
	Final *slo.Report `json:"final"`
	// Passed is true when every phase met its control expectations.
	Passed bool `json:"passed"`
	// ControlErrors aggregates every phase's failures, phase-prefixed.
	ControlErrors []string `json:"control_errors,omitempty"`
}

// Runner executes a script against a live network.
type Runner struct {
	cfg     Config
	net     *core.Network
	gen     *workload.Generator
	sampler *metrics.Sampler
	monitor *slo.Monitor
	rec     *flight.Recorder
	rng     *rand.Rand
	now     time.Time

	churned []subid.ID // FIFO of churn-phase subscription ids
	victim  topology.NodeID
}

// NewRunner builds the network, subscribes the base population, runs
// one warmup propagation, and wires the sampler and SLO monitor. Close
// the runner when done.
func NewRunner(cfg Config) (*Runner, error) {
	wcfg := workload.DefaultConfig()
	wcfg.AttrsPerSub = 2
	wcfg.AttrsPerEvent = 8
	wcfg.Subsumption = 1.0
	wcfg.Seed = cfg.Seed
	gen, err := workload.NewGenerator(wcfg)
	if err != nil {
		return nil, err
	}
	rec := flight.NewRecorder(128 << 10)
	net, err := core.New(core.Config{
		Topology:      cfg.Topology,
		Schema:        gen.Schema(),
		Mode:          interval.Lossy,
		FullSyncEvery: cfg.FullSyncEvery,
		Flight:        rec,
	})
	if err != nil {
		return nil, err
	}
	r := &Runner{
		cfg: cfg,
		net: net,
		gen: gen,
		rec: rec,
		rng: rand.New(rand.NewSource(cfg.Seed + 7)),
		// Synthetic epoch: determinism demands the tick clock not read
		// wall time.
		now: time.Unix(1_750_000_000, 0),
	}
	// Trace every publish so the latency histogram sees every delivery.
	net.SetTraceSampling(1)
	// The busiest relay is the default pause victim.
	g := cfg.Topology
	for i := 0; i < net.Len(); i++ {
		if g.Degree(topology.NodeID(i)) == g.MaxDegree() {
			r.victim = topology.NodeID(i)
			break
		}
	}

	for i := 0; i < net.Len(); i++ {
		for s := 0; s < cfg.SubsPerBroker; s++ {
			if _, err := net.Subscribe(topology.NodeID(i), gen.Subscription(),
				func(subid.ID, *schema.Event) {}); err != nil {
				net.Close()
				return nil, err
			}
		}
	}
	if _, err := net.Propagate(); err != nil {
		net.Close()
		return nil, err
	}
	net.Flush()

	r.sampler = metrics.NewSampler(net.Metrics(), cfg.TickEvery, 256)
	r.sampler.RetainBuckets(slo.LatencyFamily)
	eng, err := slo.New(slo.DefaultSpecs(cfg.Targets)...)
	if err != nil {
		net.Close()
		return nil, err
	}
	r.monitor = slo.NewMonitor(eng, r.sampler, net.Metrics(), rec)
	// Baseline tick so the first phase's deltas have a predecessor.
	r.tick()
	return r, nil
}

// Close releases the network.
func (r *Runner) Close() { r.net.Close() }

// Flight exposes the run's journal (phase markers, SLO transitions,
// engine events).
func (r *Runner) Flight() *flight.Recorder { return r.rec }

// History exposes the sampler's retained series and phase markers.
func (r *Runner) History() *metrics.History { return r.sampler.History() }

func (r *Runner) tick() {
	r.now = r.now.Add(r.cfg.TickEvery)
	r.sampler.Tick(r.now)
}

func lossKind(s string) (netsim.Kind, error) {
	switch s {
	case "summary":
		return netsim.KindSummary, nil
	case "event":
		return netsim.KindEvent, nil
	case "deliver":
		return netsim.KindDeliver, nil
	case "control":
		return netsim.KindControl, nil
	}
	return 0, fmt.Errorf("scenario: unknown loss kind %q", s)
}

func nodeIDs(in []int) []topology.NodeID {
	out := make([]topology.NodeID, len(in))
	for i, v := range in {
		out[i] = topology.NodeID(v)
	}
	return out
}

// applyFault arms the phase's fault; it returns the paused broker (or
// -1) so runPhase can cycle it.
func (r *Runner) applyFault(f Fault) (topology.NodeID, error) {
	switch f.Kind {
	case FaultNone, "":
		return -1, nil
	case FaultPartition:
		return -1, r.net.Faults().Partition(nodeIDs(f.SideA), nodeIDs(f.SideB))
	case FaultLoss:
		k, err := lossKind(f.LossKind)
		if err != nil {
			return -1, err
		}
		r.net.Faults().SetLoss(k, f.LossRate, r.cfg.Seed+int64(k))
		return -1, nil
	case FaultPause:
		v := r.victim
		if f.PauseBroker >= 0 {
			v = topology.NodeID(f.PauseBroker)
		}
		return v, nil // paused per-period inside runPhase
	}
	return -1, fmt.Errorf("scenario: unknown fault kind %q", f.Kind)
}

func (r *Runner) clearFault(f Fault) {
	switch f.Kind {
	case FaultPartition:
		r.net.Faults().Heal()
	case FaultLoss:
		if k, err := lossKind(f.LossKind); err == nil {
			r.net.Faults().SetLoss(k, 0, 0)
		}
	}
}

// churn subscribes n fresh subscriptions at seeded origins and retires
// the n oldest churned ones, leaving the base population intact.
func (r *Runner) churn(n int) error {
	for i := 0; i < n; i++ {
		id, err := r.net.Subscribe(topology.NodeID(r.rng.Intn(r.net.Len())),
			r.gen.Subscription(), func(subid.ID, *schema.Event) {})
		if err != nil {
			return err
		}
		r.churned = append(r.churned, id)
	}
	// Retire the oldest churned subscriptions beyond the newest n: in
	// steady state every period adds n and removes n.
	for len(r.churned) > n {
		if err := r.net.Unsubscribe(r.churned[0]); err != nil {
			return err
		}
		r.churned = r.churned[1:]
	}
	return nil
}

// runPhase executes one phase: arm the fault, then per period churn,
// publish, (pause-cycle), propagate, tick, evaluate.
func (r *Runner) runPhase(idx int, p Phase, res *PhaseResult) error {
	r.sampler.Mark("phase:" + p.Name)
	r.rec.Record(flight.EvPhaseStart, -1, int64(idx), int64(p.Periods), 0, p.Name)
	defer func() {
		r.rec.Record(flight.EvPhaseEnd, -1, int64(idx), int64(res.Ticks), 0, p.Name)
	}()

	pauseVictim, err := r.applyFault(p.Fault)
	if err != nil {
		return err
	}
	defer r.clearFault(p.Fault)

	outcomes := map[string]*ObjectiveOutcome{}
	res.RecoveryTicks = -1
	var lastBytes float64
	if pt, ok := r.sampler.History().Latest("propagation_bytes"); ok {
		lastBytes = pt.Value
	}

	for period := 0; period < p.Periods; period++ {
		if pauseVictim >= 0 {
			if err := r.net.Faults().Pause(pauseVictim); err != nil {
				return err
			}
		}
		if p.ChurnPerPeriod > 0 {
			if err := r.churn(p.ChurnPerPeriod); err != nil {
				return err
			}
		}
		// Flush per event so each latency sample measures its own pipeline
		// drain, not the backlog of the whole period's batch — the p99
		// objective must not scale with EventsPerPeriod or churn load.
		for e := 0; e < r.cfg.EventsPerPeriod; e++ {
			if err := r.net.Publish(topology.NodeID(r.rng.Intn(r.net.Len())),
				r.gen.Event(r.cfg.HitRate)); err != nil {
				return err
			}
			r.net.Flush()
		}
		if p.SleepPerPeriod > 0 {
			// In a pause phase this sleep happens while the victim's
			// deliveries are parked: it becomes their latency floor.
			time.Sleep(p.SleepPerPeriod)
		}
		if pauseVictim >= 0 {
			if err := r.net.Faults().Resume(pauseVictim); err != nil {
				return err
			}
			r.net.Flush()
		}
		if _, err := r.net.Propagate(); err != nil {
			return err
		}
		r.net.Flush()
		r.tick()
		rep := r.monitor.EvalOnce()

		anyBreach := false
		for i := range rep.Verdicts {
			v := &rep.Verdicts[i]
			o := outcomes[v.Name]
			if o == nil {
				o = &ObjectiveOutcome{Name: v.Name, FirstBreach: -1, LastBreach: -1, MinBudget: 1}
				outcomes[v.Name] = o
			}
			o.FinalState = string(v.State)
			o.MaxFastBurn = maxf(o.MaxFastBurn, v.FastBurn)
			o.MaxSlowBurn = maxf(o.MaxSlowBurn, v.SlowBurn)
			o.MinBudget = minf(o.MinBudget, v.BudgetRemaining)
			if v.State == slo.StateBreach {
				anyBreach = true
				o.BreachTicks++
				if o.FirstBreach < 0 {
					o.FirstBreach = period
				}
				o.LastBreach = period
			}
		}
		if !anyBreach && res.RecoveryTicks < 0 {
			res.RecoveryTicks = period
		}
		if pt, ok := r.sampler.History().Latest("propagation_bytes"); ok {
			res.BytesPerPeriodMax = maxf(res.BytesPerPeriodMax, pt.Value-lastBytes)
			lastBytes = pt.Value
		}
		res.Ticks++
	}
	// A churn storm is transient by definition: retire every churned
	// subscription at phase end so the retraction deltas ship in the next
	// phase's first propagation and full-sync sizes fall back to the base
	// population instead of staying inflated forever.
	if p.ChurnPerPeriod > 0 {
		for _, id := range r.churned {
			if err := r.net.Unsubscribe(id); err != nil {
				return err
			}
		}
		r.churned = r.churned[:0]
	}

	// Stable objective order: engine spec order via the final report.
	if last := r.monitor.Last(); last != nil {
		for i := range last.Verdicts {
			if o := outcomes[last.Verdicts[i].Name]; o != nil {
				res.Objectives = append(res.Objectives, *o)
				if o.BreachTicks > 0 {
					res.Breached = append(res.Breached, o.Name)
				}
			}
		}
	}
	res.ControlErrors = controlErrors(p, res, r.cfg.RecoveryPeriods)
	return nil
}

// controlErrors checks a phase's outcome against its declared
// expectations.
func controlErrors(p Phase, res *PhaseResult, recoveryPeriods int) []string {
	var errs []string
	observed := map[string]*ObjectiveOutcome{}
	for i := range res.Objectives {
		observed[res.Objectives[i].Name] = &res.Objectives[i]
	}
	if p.Recovery {
		for _, o := range res.Objectives {
			if o.BreachTicks > 0 && o.LastBreach >= recoveryPeriods {
				errs = append(errs, fmt.Sprintf("%s still in breach at tick %d, past the %d-period recovery objective",
					o.Name, o.LastBreach, recoveryPeriods))
			}
			if o.FinalState == string(slo.StateBreach) {
				errs = append(errs, fmt.Sprintf("%s in breach at recovery-phase end", o.Name))
			}
		}
		return errs
	}
	allowed := map[string]bool{}
	for _, m := range p.MustBreach {
		allowed[m] = true
	}
	for _, m := range p.MayBreach {
		allowed[m] = true
	}
	if len(allowed) == 0 {
		for _, o := range res.Objectives {
			if o.BreachTicks > 0 {
				errs = append(errs, fmt.Sprintf("clean phase breached %s (%d ticks)", o.Name, o.BreachTicks))
			}
		}
		return errs
	}
	for _, m := range p.MustBreach {
		if o := observed[m]; o == nil || o.BreachTicks == 0 {
			errs = append(errs, fmt.Sprintf("expected breach of %s never happened", m))
		}
	}
	for _, o := range res.Objectives {
		if o.BreachTicks > 0 && !allowed[o.Name] {
			errs = append(errs, fmt.Sprintf("unexpected breach of %s (%d ticks)", o.Name, o.BreachTicks))
		}
	}
	return errs
}

// Run executes the script and evaluates every phase's control
// expectations.
func (r *Runner) Run(scriptName string, phases []Phase) (*Result, error) {
	res := &Result{
		Script:   scriptName,
		Topology: r.cfg.Topology.Name(),
		Brokers:  r.net.Len(),
		Seed:     r.cfg.Seed,
		Specs:    slo.DefaultSpecs(r.cfg.Targets),
		Passed:   true,
	}
	for i, p := range phases {
		pr := PhaseResult{
			Name: p.Name, Index: i,
			Fault: p.Fault, ChurnPerPeriod: p.ChurnPerPeriod, Recovery: p.Recovery,
		}
		if err := r.runPhase(i, p, &pr); err != nil {
			return nil, fmt.Errorf("scenario: phase %q: %w", p.Name, err)
		}
		for _, e := range pr.ControlErrors {
			res.ControlErrors = append(res.ControlErrors, fmt.Sprintf("phase %q: %s", p.Name, e))
		}
		res.Phases = append(res.Phases, pr)
	}
	res.Final = r.monitor.Last()
	res.Passed = len(res.ControlErrors) == 0
	return res, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
