package scenario

import "time"

// halves splits [0, n) into two consecutive halves for a partition
// fault.
func halves(n int) (a, b []int) {
	for i := 0; i < n/2; i++ {
		a = append(a, i)
	}
	for i := n / 2; i < n; i++ {
		b = append(b, i)
	}
	return a, b
}

// DefaultScript is the full chaos sweep: a clean baseline, then each
// fault family with its own recovery phase. Expectations per phase:
//
//   - partition: summary and event traffic crossing the cut is dropped,
//     so convergence staleness crosses its bound AND event/deliver drops
//     accrue — both objectives must breach.
//   - summary loss: the overlay starves but events still flow and the
//     loss objective only counts event/deliver traffic, so staleness
//     must breach while delivery_loss must stay clean (it is not even
//     listed as MayBreach).
//   - pause: the busiest relay parks its traffic for a real 40 ms per
//     period, so the windowed p99 must cross the 10 ms target.
//   - churn storm: heavy subscribe/unsubscribe inflates propagation
//     deltas past the bytes/period ceiling.
//
// Clean and recovery phases tolerate lingering slow-window WARNs but no
// breaches past the recovery objective.
func DefaultScript(brokers int) []Phase {
	sideA, sideB := halves(brokers)
	return []Phase{
		{Name: "baseline", Periods: 8},
		{
			Name: "partition", Periods: 8,
			Fault:      Fault{Kind: FaultPartition, SideA: sideA, SideB: sideB},
			MustBreach: []string{"convergence_staleness", "delivery_loss"},
			MayBreach:  []string{"delivery_precision"},
		},
		{Name: "heal-partition", Periods: 10, Recovery: true},
		{
			Name: "summary-loss", Periods: 8,
			Fault:      Fault{Kind: FaultLoss, LossKind: "summary", LossRate: 1.0},
			MustBreach: []string{"convergence_staleness"},
		},
		{Name: "heal-loss", Periods: 10, Recovery: true},
		{
			Name: "pause-relay", Periods: 8,
			Fault:          Fault{Kind: FaultPause, PauseBroker: -1},
			SleepPerPeriod: 100 * time.Millisecond,
			MustBreach:     []string{"publish_deliver_p99"},
		},
		{Name: "heal-pause", Periods: 10, Recovery: true},
		{
			Name: "churn-storm", Periods: 8,
			ChurnPerPeriod: 2500,
			MustBreach:     []string{"bytes_per_period"},
		},
		{Name: "heal-churn", Periods: 10, Recovery: true},
	}
}

// SmokeScript is the CI-sized cut: one partition/heal cycle around a
// baseline, wall-clock-free (no sleeps, no pause phases), so it is
// fully deterministic and fast enough to gate merges.
func SmokeScript(brokers int) []Phase {
	sideA, sideB := halves(brokers)
	return []Phase{
		{Name: "baseline", Periods: 8},
		{
			Name: "partition", Periods: 8,
			Fault:      Fault{Kind: FaultPartition, SideA: sideA, SideB: sideB},
			MustBreach: []string{"convergence_staleness", "delivery_loss"},
			MayBreach:  []string{"delivery_precision"},
		},
		{Name: "heal-partition", Periods: 10, Recovery: true},
	}
}
