package scenario

import (
	"strings"
	"testing"
	"time"

	"github.com/subsum/subsum/internal/flight"
	"github.com/subsum/subsum/internal/slo"
)

// TestSmokeScriptControl is the fault-injection negative control: on
// the smoke script, breaches appear only inside the injected partition
// phase (staleness and delivery loss, exactly as declared), the
// baseline stays clean, and the heal phase sheds every breach within
// the recovery objective.
func TestSmokeScriptControl(t *testing.T) {
	cfg := DefaultConfig()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.Run("smoke", SmokeScript(res24(t, r)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("control failed:\n%s", strings.Join(res.ControlErrors, "\n"))
	}
	if len(res.Phases) != 3 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	base, part, heal := res.Phases[0], res.Phases[1], res.Phases[2]
	if len(base.Breached) != 0 {
		t.Fatalf("baseline breached %v", base.Breached)
	}
	wantBreach := map[string]bool{"convergence_staleness": true, "delivery_loss": true}
	for name := range wantBreach {
		found := false
		for _, b := range part.Breached {
			if b == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("partition phase did not breach %s (breached: %v)", name, part.Breached)
		}
	}
	if heal.RecoveryTicks < 0 || heal.RecoveryTicks >= cfg.RecoveryPeriods {
		t.Fatalf("recovery took %d ticks, objective %d", heal.RecoveryTicks, cfg.RecoveryPeriods)
	}
	if res.Final.Worst() == slo.StateBreach {
		t.Fatalf("still in breach at run end: %v", res.Final.Breached())
	}

	// The telemetry surfaces carry the run: phase markers in the retained
	// history, phase and SLO transition records in the journal.
	hist := r.History()
	marks := map[string]bool{}
	for _, m := range hist.Markers {
		marks[m.Label] = true
	}
	for _, want := range []string{"phase:baseline", "phase:partition", "phase:heal-partition"} {
		if !marks[want] {
			t.Fatalf("marker %q missing (have %v)", want, hist.Markers)
		}
	}
	var starts, breaches, recovers int
	for _, rec := range r.Flight().Records() {
		switch rec.Type {
		case flight.EvPhaseStart:
			starts++
		case flight.EvSLOBreach:
			breaches++
		case flight.EvSLORecover:
			recovers++
		}
	}
	if starts != 3 {
		t.Fatalf("phase-start records = %d, want 3", starts)
	}
	if breaches == 0 || recovers == 0 {
		t.Fatalf("journal transitions: %d breach / %d recover, want both > 0", breaches, recovers)
	}
}

// res24 double-checks the runner built the expected topology before the
// script hardcodes a 12|12 split.
func res24(t *testing.T, r *Runner) int {
	t.Helper()
	if n := r.net.Len(); n != 24 {
		t.Fatalf("default topology has %d brokers, smoke script expects 24", n)
	}
	return 24
}

// TestPauseLatencyBreach: parking the busiest relay behind a real
// 100 ms sleep per period must push the windowed publish→deliver p99
// over its 50 ms target, and the breach must clear after the resume.
func TestPauseLatencyBreach(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock latency phase")
	}
	cfg := DefaultConfig()
	script := []Phase{
		{Name: "baseline", Periods: 6},
		{
			Name: "pause", Periods: 6,
			Fault:          Fault{Kind: FaultPause, PauseBroker: -1},
			SleepPerPeriod: 100 * time.Millisecond,
			MustBreach:     []string{"publish_deliver_p99"},
		},
		{Name: "heal", Periods: 10, Recovery: true},
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.Run("pause", script)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("control failed:\n%s", strings.Join(res.ControlErrors, "\n"))
	}
	for _, o := range res.Phases[1].Objectives {
		if o.Name == "publish_deliver_p99" && o.BreachTicks == 0 {
			t.Fatalf("latency objective never breached: %+v", o)
		}
	}
}

// TestControlErrors exercises the expectation checker in isolation.
func TestControlErrors(t *testing.T) {
	outcome := func(name string, breachTicks, last int, final string) ObjectiveOutcome {
		first := -1
		if breachTicks > 0 {
			first = last - breachTicks + 1
		}
		return ObjectiveOutcome{Name: name, BreachTicks: breachTicks, FirstBreach: first, LastBreach: last, FinalState: final}
	}
	cases := []struct {
		name    string
		phase   Phase
		res     PhaseResult
		wantErr int
	}{
		{
			name:  "clean phase clean",
			phase: Phase{Name: "base"},
			res:   PhaseResult{Objectives: []ObjectiveOutcome{outcome("a", 0, -1, "ok")}},
		},
		{
			name:    "clean phase breached",
			phase:   Phase{Name: "base"},
			res:     PhaseResult{Objectives: []ObjectiveOutcome{outcome("a", 2, 5, "breach")}},
			wantErr: 1,
		},
		{
			name:  "must-breach satisfied",
			phase: Phase{MustBreach: []string{"a"}},
			res:   PhaseResult{Objectives: []ObjectiveOutcome{outcome("a", 3, 7, "breach")}},
		},
		{
			name:    "must-breach missing",
			phase:   Phase{MustBreach: []string{"a"}},
			res:     PhaseResult{Objectives: []ObjectiveOutcome{outcome("a", 0, -1, "ok")}},
			wantErr: 1,
		},
		{
			name:    "unexpected extra breach",
			phase:   Phase{MustBreach: []string{"a"}},
			res:     PhaseResult{Objectives: []ObjectiveOutcome{outcome("a", 1, 2, "warn"), outcome("b", 1, 2, "breach")}},
			wantErr: 1,
		},
		{
			name:  "may-breach tolerated",
			phase: Phase{MustBreach: []string{"a"}, MayBreach: []string{"b"}},
			res:   PhaseResult{Objectives: []ObjectiveOutcome{outcome("a", 1, 2, "warn"), outcome("b", 1, 2, "ok")}},
		},
		{
			name:  "recovery within objective",
			phase: Phase{Recovery: true},
			res:   PhaseResult{Objectives: []ObjectiveOutcome{outcome("a", 3, 5, "warn")}},
		},
		{
			name:    "recovery overrun",
			phase:   Phase{Recovery: true},
			res:     PhaseResult{Objectives: []ObjectiveOutcome{outcome("a", 9, 9, "warn")}},
			wantErr: 1,
		},
		{
			name:    "recovery ends in breach",
			phase:   Phase{Recovery: true},
			res:     PhaseResult{Objectives: []ObjectiveOutcome{outcome("a", 3, 5, "breach")}},
			wantErr: 1,
		},
	}
	for _, tc := range cases {
		errs := controlErrors(tc.phase, &tc.res, 8)
		if len(errs) != tc.wantErr {
			t.Errorf("%s: errors = %v, want %d", tc.name, errs, tc.wantErr)
		}
	}
}
