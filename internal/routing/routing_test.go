package routing

import (
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/propagation"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
	"github.com/subsum/subsum/internal/topology"
)

// propagate builds one distinctive subscription per broker and runs
// Algorithm 2, returning everything routing needs.
func propagate(t testing.TB, g *topology.Graph) (*propagation.Result, *schema.Schema) {
	t.Helper()
	s := schema.MustNew(schema.Attribute{Name: "num00", Type: schema.TypeFloat})
	own := make([]*summary.Summary, g.Len())
	for i := range own {
		own[i] = summary.New(s, interval.Lossy)
		sub, err := schema.NewSubscription(s, schema.Constraint{
			Attr: 0, Op: schema.OpEQ, Value: schema.FloatValue(float64(1000000 + i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := own[i].Insert(subid.ID{Broker: subid.BrokerID(i)}, sub); err != nil {
			t.Fatal(err)
		}
	}
	res, err := propagation.Run(g, own, propagation.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return res, s
}

// TestFigure7RoutingExample replays the paper's Example 3: an event
// matching brokers 4, 8, and 13 arrives at broker 1. The expected path is
// 1 → 5 (delivers to 4) → 8 (local match) → 11 (delivers to 13).
func TestFigure7RoutingExample(t *testing.T) {
	g := topology.Figure7Tree()
	prop, _ := propagate(t, g)
	r, err := NewRouter(g, prop, Config{Strategy: HighestDegree})
	if err != nil {
		t.Fatal(err)
	}
	matched := []topology.NodeID{3, 7, 12} // paper brokers 4, 8, 13
	trace := r.Route(0, r.PopularityMatch(matched))

	wantVisited := []topology.NodeID{0, 4, 7, 10} // brokers 1, 5, 8, 11
	if len(trace.Visited) != len(wantVisited) {
		t.Fatalf("visited = %v, want %v", trace.Visited, wantVisited)
	}
	for i := range wantVisited {
		if trace.Visited[i] != wantVisited[i] {
			t.Fatalf("visited = %v, want %v", trace.Visited, wantVisited)
		}
	}
	// All three matched brokers delivered.
	deliveredSet := make(map[topology.NodeID]bool)
	for _, d := range trace.Delivered {
		deliveredSet[d] = true
	}
	for _, m := range matched {
		if !deliveredSet[m] {
			t.Fatalf("matched broker %d not delivered (delivered %v)", m, trace.Delivered)
		}
	}
	// Forward hops: 1→5, 5→8, 8→11. Delivery hops: 5→4 and 11→13
	// (broker 8 matches locally at zero cost).
	if trace.ForwardHops != 3 {
		t.Fatalf("forward hops = %d, want 3", trace.ForwardHops)
	}
	if trace.DeliveryHops != 2 {
		t.Fatalf("delivery hops = %d, want 2", trace.DeliveryHops)
	}
	if trace.Hops() != 5 {
		t.Fatalf("total hops = %d, want 5", trace.Hops())
	}
}

// TestAllMatchedAlwaysDelivered: for every origin and every matched set,
// Algorithm 3 delivers the event to every matched broker — the routing
// completeness invariant.
func TestAllMatchedAlwaysDelivered(t *testing.T) {
	for _, g := range []*topology.Graph{
		topology.Figure7Tree(),
		topology.CW24(),
		topology.Random(18, 6, 5),
		topology.Ring(7),
	} {
		prop, _ := propagate(t, g)
		r, err := NewRouter(g, prop, Config{Strategy: HighestDegree})
		if err != nil {
			t.Fatal(err)
		}
		n := g.Len()
		for origin := 0; origin < n; origin++ {
			for trial := 0; trial < 5; trial++ {
				matched := []topology.NodeID{
					topology.NodeID((origin + trial) % n),
					topology.NodeID((origin + trial*3 + 1) % n),
					topology.NodeID((origin*5 + trial*7 + 2) % n),
				}
				trace := r.Route(topology.NodeID(origin), r.PopularityMatch(matched))
				got := make(map[topology.NodeID]bool)
				for _, d := range trace.Delivered {
					got[d] = true
				}
				for _, m := range matched {
					if !got[m] {
						t.Fatalf("%s: origin %d: matched %v, delivered %v",
							g.Name(), origin, matched, trace.Delivered)
					}
				}
			}
		}
	}
}

// TestContentDrivenRouting wires MatchFunc to real merged summaries: an
// event carrying broker j's distinctive value is delivered to exactly
// broker j.
func TestContentDrivenRouting(t *testing.T) {
	g := topology.CW24()
	prop, s := propagate(t, g)
	r, err := NewRouter(g, prop, Config{Strategy: HighestDegree})
	if err != nil {
		t.Fatal(err)
	}
	for target := 0; target < g.Len(); target++ {
		ev, err := schema.NewEvent(s, map[string]schema.Value{
			"num00": schema.FloatValue(float64(1000000 + target)),
		})
		if err != nil {
			t.Fatal(err)
		}
		match := func(at topology.NodeID) []topology.NodeID {
			var out []topology.NodeID
			for _, id := range prop.Merged[at].Match(ev) {
				out = append(out, topology.NodeID(id.Broker))
			}
			return out
		}
		trace := r.Route(0, match)
		if len(trace.Delivered) != 1 || trace.Delivered[0] != topology.NodeID(target) {
			t.Fatalf("target %d: delivered %v", target, trace.Delivered)
		}
	}
}

func TestNoDuplicateDeliveries(t *testing.T) {
	g := topology.CW24()
	prop, _ := propagate(t, g)
	r, err := NewRouter(g, prop, Config{Strategy: HighestDegree})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]topology.NodeID, g.Len())
	for i := range all {
		all[i] = topology.NodeID(i)
	}
	trace := r.Route(5, r.PopularityMatch(all))
	seen := make(map[topology.NodeID]bool)
	for _, d := range trace.Delivered {
		if seen[d] {
			t.Fatalf("broker %d delivered twice", d)
		}
		seen[d] = true
	}
	if len(trace.Delivered) != g.Len() {
		t.Fatalf("delivered %d of %d", len(trace.Delivered), g.Len())
	}
}

func TestVisitedChainBounded(t *testing.T) {
	g := topology.CW24()
	prop, _ := propagate(t, g)
	for _, strat := range []Strategy{HighestDegree, RandomUnvisited, VirtualDegree} {
		r, err := NewRouter(g, prop, Config{Strategy: strat, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		trace := r.Route(0, r.PopularityMatch(nil))
		if len(trace.Visited) > g.Len() {
			t.Fatalf("%v: visited %d brokers of %d", strat, len(trace.Visited), g.Len())
		}
		// The chain must visit distinct brokers.
		seen := make(map[topology.NodeID]bool)
		for _, v := range trace.Visited {
			if seen[v] {
				t.Fatalf("%v: broker %d examined twice", strat, v)
			}
			seen[v] = true
		}
	}
}

func TestVirtualDegreeSpreadsFirstHop(t *testing.T) {
	g := topology.Figure7Tree() // broker 5 (node 4) has degree 5, others ≤ 3
	prop, _ := propagate(t, g)
	plain, err := NewRouter(g, prop, Config{Strategy: HighestDegree})
	if err != nil {
		t.Fatal(err)
	}
	virtual, err := NewRouter(g, prop, Config{Strategy: VirtualDegree, VirtualDegreeCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Under plain highest-degree, node 4 is always the first forward target
	// from node 0; under virtual degree (cap 1) it is not.
	pt := plain.Route(0, plain.PopularityMatch(nil))
	if pt.Visited[1] != 4 {
		t.Fatalf("plain: second visit = %d, want 4", pt.Visited[1])
	}
	vt := virtual.Route(0, virtual.PopularityMatch(nil))
	if vt.Visited[1] == 4 {
		t.Fatal("virtual degree did not displace the max-degree broker")
	}
}

func TestStrategyString(t *testing.T) {
	if HighestDegree.String() != "highest-degree" ||
		RandomUnvisited.String() != "random-unvisited" ||
		VirtualDegree.String() != "virtual-degree" {
		t.Fatal("strategy names wrong")
	}
}

func TestNewRouterValidation(t *testing.T) {
	g := topology.Ring(4)
	prop := &propagation.Result{MergedBrokers: make([]propagation.BrokerSet, 3)}
	if _, err := NewRouter(g, prop, Config{}); err == nil {
		t.Fatal("mismatched propagation result accepted")
	}
}
