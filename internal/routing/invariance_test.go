package routing

import (
	"reflect"
	"sort"
	"testing"

	"github.com/subsum/subsum/internal/topology"
)

// TestStrategyDeliveryInvariance: the forwarding strategy changes the
// examination order and hop count, never the delivered set — every
// strategy must deliver to exactly the matched brokers.
func TestStrategyDeliveryInvariance(t *testing.T) {
	for _, g := range []*topology.Graph{
		topology.CW24(),
		topology.ATT33(),
		topology.Figure7Tree(),
		topology.Waxman(20, 0.4, 0.15, 5),
	} {
		prop, _ := propagate(t, g)
		n := g.Len()
		routers := make(map[Strategy]*Router)
		for _, strat := range []Strategy{HighestDegree, RandomUnvisited, VirtualDegree} {
			r, err := NewRouter(g, prop, Config{Strategy: strat, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			routers[strat] = r
		}
		for origin := 0; origin < n; origin += 3 {
			for trial := 0; trial < 4; trial++ {
				matched := []topology.NodeID{
					topology.NodeID((origin + trial*5) % n),
					topology.NodeID((origin*3 + trial + 1) % n),
					topology.NodeID((origin*7 + trial*11 + 2) % n),
				}
				var reference []topology.NodeID
				for strat, r := range routers {
					trace := r.Route(topology.NodeID(origin), r.PopularityMatch(matched))
					delivered := append([]topology.NodeID(nil), trace.Delivered...)
					sort.Slice(delivered, func(i, j int) bool { return delivered[i] < delivered[j] })
					if reference == nil {
						reference = delivered
						continue
					}
					if !reflect.DeepEqual(delivered, reference) {
						t.Fatalf("%s origin %d: strategy %v delivered %v, others %v",
							g.Name(), origin, strat, delivered, reference)
					}
				}
			}
		}
	}
}

// TestPropagationDeterminism: Algorithm 2 produces identical results on
// repeated runs over the same inputs (the figures must be reproducible).
func TestPropagationDeterminism(t *testing.T) {
	g := topology.CW24()
	prop1, _ := propagate(t, g)
	prop2, _ := propagate(t, g)
	if prop1.Hops != prop2.Hops || prop1.ModelBytes != prop2.ModelBytes {
		t.Fatalf("propagation not deterministic: %d/%d vs %d/%d",
			prop1.Hops, prop1.ModelBytes, prop2.Hops, prop2.ModelBytes)
	}
	if len(prop1.Sends) != len(prop2.Sends) {
		t.Fatal("send logs differ")
	}
	for i := range prop1.Sends {
		a, b := prop1.Sends[i], prop2.Sends[i]
		if a.From != b.From || a.To != b.To || a.Iteration != b.Iteration {
			t.Fatalf("send %d differs: %+v vs %+v", i, a, b)
		}
	}
	for i := range prop1.MergedBrokers {
		if !prop1.MergedBrokers[i].Equal(prop2.MergedBrokers[i]) {
			t.Fatalf("broker %d coverage differs", i)
		}
	}
}
