// Package routing implements Algorithm 3 of the subscription-summarization
// paper (Section 4.3): distributed event processing over multi-broker
// summaries. An event entering the system at some broker is matched
// against that broker's merged summary, delivered to the owning brokers of
// any matched subscriptions (via the c1 component of their ids), and —
// while the BROCLIe check list does not yet contain every broker —
// forwarded to the highest-degree broker not yet covered.
//
// As in the paper's hop accounting, every broker-to-broker message counts
// as one hop regardless of overlay adjacency: hops measure broker
// involvement, not link traversals.
package routing

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/subsum/subsum/internal/propagation"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
)

// Strategy selects the next broker to examine among those not in BROCLIe.
type Strategy uint8

const (
	// HighestDegree is the paper's choice: the unexamined broker with the
	// greatest degree (it has merged the most neighbor summaries, so one
	// visit covers the most brokers).
	HighestDegree Strategy = iota
	// RandomUnvisited picks uniformly among brokers not in BROCLIe — the
	// load-spreading end of the trade-off the paper mentions.
	RandomUnvisited
	// VirtualDegree is the paper's "ongoing work" load-balancing variant:
	// maximum-degree brokers advertise a reduced virtual degree so they are
	// not first on every event's path.
	VirtualDegree
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case HighestDegree:
		return "highest-degree"
	case RandomUnvisited:
		return "random-unvisited"
	case VirtualDegree:
		return "virtual-degree"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// Config parametrizes the router.
type Config struct {
	Strategy Strategy
	// VirtualDegreeCap caps the degree advertised by maximum-degree
	// brokers under VirtualDegree (0 means mean degree).
	VirtualDegreeCap int
	// Seed drives RandomUnvisited.
	Seed int64
}

// MatchFunc reports which brokers own subscriptions matching the event,
// according to the merged summary held at the examining broker. For
// content-driven routing this wraps Summary.Match; for the Figure 10
// popularity experiments it intersects a predetermined matched set with
// the broker's Merged_Brokers.
type MatchFunc func(at topology.NodeID) []topology.NodeID

// Trace records the processing of one event.
type Trace struct {
	Origin       topology.NodeID
	Visited      []topology.NodeID // examination chain, starting at Origin
	Delivered    []topology.NodeID // owners the event was sent to (deduplicated)
	ForwardHops  int               // chain messages between examining brokers
	DeliveryHops int               // messages delivering the event to owners
}

// Hops returns the total broker-to-broker messages for the event.
func (t *Trace) Hops() int { return t.ForwardHops + t.DeliveryHops }

// Router routes events over the outcome of a propagation phase.
type Router struct {
	g     *topology.Graph
	prop  *propagation.Result
	cfg   Config
	rng   *rand.Rand
	order []topology.NodeID // nodes by effective degree, descending
}

// orderKey identifies one examination order in a propagation result's
// derived-artifact memo: the order depends only on the overlay and the
// strategy's effective degrees, so every router built over the same
// result with the same normalized (strategy, cap) pair shares one slice.
type orderKey struct {
	virtual bool
	degCap  int
}

// NewRouter builds a router for the given overlay and propagation result.
// The examination order is memoized on the propagation result, so
// constructing many routers per phase — one per event batch, as the
// overlay-scaling experiments do at 256+ brokers — derives it once
// instead of re-sorting per router.
func NewRouter(g *topology.Graph, prop *propagation.Result, cfg Config) (*Router, error) {
	if len(prop.MergedBrokers) != g.Len() {
		return nil, fmt.Errorf("routing: propagation result covers %d brokers, overlay has %d",
			len(prop.MergedBrokers), g.Len())
	}
	r := &Router{g: g, prop: prop, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	key := orderKey{virtual: cfg.Strategy == VirtualDegree, degCap: 0}
	if key.virtual {
		key.degCap = cfg.VirtualDegreeCap
		if key.degCap <= 0 {
			key.degCap = int(g.MeanDegree() + 0.5)
			if key.degCap < 1 {
				key.degCap = 1
			}
		}
	}
	if cached, ok := prop.LoadDerived(key); ok {
		r.order = cached.([]topology.NodeID)
	} else {
		// Racing routers compute identical orders; LoadOrStore keeps one.
		r.order = prop.StoreDerived(key, effectiveOrder(g, key)).([]topology.NodeID)
	}
	return r, nil
}

// effectiveOrder ranks brokers by the degree the strategy advertises:
// effective degree descending, id ascending. The returned slice is
// shared between routers and must not be mutated.
func effectiveOrder(g *topology.Graph, key orderKey) []topology.NodeID {
	n := g.Len()
	eff := make([]int, n)
	maxDeg := g.MaxDegree()
	for i := 0; i < n; i++ {
		d := g.Degree(topology.NodeID(i))
		if key.virtual && d == maxDeg && d > key.degCap {
			d = key.degCap
		}
		eff[i] = d
	}
	order := make([]topology.NodeID, n)
	for i := range order {
		order[i] = topology.NodeID(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if eff[order[i]] != eff[order[j]] {
			return eff[order[i]] > eff[order[j]]
		}
		return order[i] < order[j]
	})
	return order
}

// Route processes one event entering at origin: Algorithm 3 run to
// completion. match is consulted once per examined broker.
func (r *Router) Route(origin topology.NodeID, match MatchFunc) *Trace {
	n := r.g.Len()
	trace := &Trace{Origin: origin}
	brocli := subid.NewMask(n)
	delivered := make(map[topology.NodeID]bool, n)
	current := origin
	for steps := 0; steps < n+1; steps++ {
		trace.Visited = append(trace.Visited, current)
		// Step 1: check the local merged summary for matches.
		matchedOwners := match(current)
		// Step 2: update BROCLIe with this broker's Merged_Brokers.
		for _, b := range r.prop.MergedBrokers[current].Bits() {
			brocli.Set(b)
		}
		// Step 3: send the event to each newly matched owner.
		for _, owner := range matchedOwners {
			if delivered[owner] {
				continue
			}
			delivered[owner] = true
			trace.Delivered = append(trace.Delivered, owner)
			if owner != current {
				trace.DeliveryHops++
			}
		}
		// Step 4: if BROCLIe does not contain all brokers, forward.
		if brocli.Count() == n {
			break
		}
		next, ok := r.next(brocli)
		if !ok {
			break
		}
		trace.ForwardHops++
		current = next
	}
	return trace
}

// next picks the strategy's choice among brokers not in BROCLIe.
func (r *Router) next(brocli subid.Mask) (topology.NodeID, bool) {
	if r.cfg.Strategy == RandomUnvisited {
		var candidates []topology.NodeID
		for i := 0; i < r.g.Len(); i++ {
			if !brocli.Has(i) {
				candidates = append(candidates, topology.NodeID(i))
			}
		}
		if len(candidates) == 0 {
			return 0, false
		}
		return candidates[r.rng.Intn(len(candidates))], true
	}
	for _, node := range r.order {
		if !brocli.Has(int(node)) {
			return node, true
		}
	}
	return 0, false
}

// PopularityMatch returns a MatchFunc for the Figure 10 experiments: the
// event's matched brokers are predetermined; a broker reports those of
// them whose subscriptions it has merged.
func (r *Router) PopularityMatch(matched []topology.NodeID) MatchFunc {
	set := subid.NewMask(r.g.Len())
	for _, m := range matched {
		set.Set(int(m))
	}
	return func(at topology.NodeID) []topology.NodeID {
		var out []topology.NodeID
		for _, b := range r.prop.MergedBrokers[at].Bits() {
			if set.Has(b) {
				out = append(out, topology.NodeID(b))
			}
		}
		return out
	}
}
