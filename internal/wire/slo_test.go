package wire

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/slo"
	"github.com/subsum/subsum/internal/topology"
)

// startSLOServer wires a full observability stack behind the wire
// server: sampler with latency-bucket retention, engine on the default
// specs, monitor serving the "slo" op.
func startSLOServer(t *testing.T) (addr string, s *schema.Schema, sampler *metrics.Sampler, monitor *slo.Monitor) {
	t.Helper()
	s = schema.MustNew(
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
	)
	network, err := core.New(core.Config{
		Topology: topology.Figure7Tree(),
		Schema:   s,
		Mode:     interval.Lossy,
	})
	if err != nil {
		t.Fatal(err)
	}
	sampler = metrics.NewSampler(network.Metrics(), time.Second, 64)
	sampler.RetainBuckets(slo.LatencyFamily)
	eng, err := slo.New(slo.DefaultSpecs(slo.Targets{})...)
	if err != nil {
		t.Fatal(err)
	}
	monitor = slo.NewMonitor(eng, sampler, network.Metrics(), nil)
	srv := NewServer(network, s)
	srv.SetSampler(sampler)
	srv.SetSLO(monitor.Last)
	addr, err = srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		network.Close()
	})
	return addr, s, sampler, monitor
}

// TestSLOOpEndToEnd drives real traffic over TCP, ticks the sampler,
// evaluates the monitor, and asserts the slo reply carries one verdict
// per default objective with coherent states and evidence.
func TestSLOOpEndToEnd(t *testing.T) {
	addr, _, sampler, monitor := startSLOServer(t)
	var d deliveries
	cl, err := Dial(addr, d.on)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Before the first evaluation the op must fail loudly, not reply with
	// an empty report.
	if _, err := cl.SLO(); err == nil || !strings.Contains(err.Error(), "not evaluated") {
		t.Fatalf("pre-evaluation slo error = %v", err)
	}

	if _, _, err := cl.Subscribe(0, "symbol = OTE"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Propagate(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Publish(1, "symbol=OTE price=8.40"); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_750_000_000, 0)
	for i := 0; i < 3; i++ {
		now = now.Add(time.Second)
		sampler.Tick(now)
		monitor.EvalOnce()
	}

	rep, err := cl.SLO()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Verdicts) != 5 {
		t.Fatalf("verdicts = %d, want 5", len(rep.Verdicts))
	}
	seen := map[string]bool{}
	for _, v := range rep.Verdicts {
		seen[v.Name] = true
		switch v.State {
		case slo.StateOK, slo.StateWarn, slo.StateBreach:
		default:
			t.Fatalf("%s: bad state %q", v.Name, v.State)
		}
		if v.Evidence.WindowTicks == 0 {
			t.Fatalf("%s: no evidence window after 3 ticks", v.Name)
		}
	}
	for _, want := range []string{
		"publish_deliver_p99", "convergence_staleness", "delivery_precision",
		"delivery_loss", "bytes_per_period",
	} {
		if !seen[want] {
			t.Fatalf("objective %s missing from wire report", want)
		}
	}
	// The healthy single-publish run must not report loss or staleness.
	for _, v := range rep.Verdicts {
		if (v.Name == "delivery_loss" || v.Name == "convergence_staleness") && v.State != slo.StateOK {
			t.Fatalf("healthy run: %s = %s", v.Name, v.State)
		}
	}
}

// TestSLOOpWithoutMonitor: a server with no monitor attached fails the
// op with a diagnostic instead of an empty reply.
func TestSLOOpWithoutMonitor(t *testing.T) {
	addr, _ := startServer(t)
	cl, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.SLO(); err == nil || !strings.Contains(err.Error(), "no slo monitor") {
		t.Fatalf("slo without monitor: err = %v", err)
	}
}

// rawExchange sends one line and decodes the next reply line.
func rawExchange(t *testing.T, c net.Conn, line string) Response {
	t.Helper()
	if _, err := c.Write([]byte(line + "\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no reply to %q: %v", line, sc.Err())
	}
	var resp Response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatalf("undecodable reply %q: %v", sc.Bytes(), err)
	}
	return resp
}

// TestUnknownOpReply: an unknown op echoes the op back in a typed error
// reply on the same connection.
func TestUnknownOpReply(t *testing.T) {
	addr, _ := startServer(t)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp := rawExchange(t, c, `{"op":"frobnicate"}`)
	if resp.Type != "reply" || resp.Op != "frobnicate" || !strings.Contains(resp.Error, "unknown op") {
		t.Fatalf("unknown-op reply = %+v", resp)
	}
	// The connection stays usable.
	if resp := rawExchange(t, c, `{"op":"ping"}`); resp.Error != "" {
		t.Fatalf("connection dead after unknown op: %+v", resp)
	}
}

// TestMalformedJSONReply: a non-JSON line gets a "bad request" error
// reply and the connection survives.
func TestMalformedJSONReply(t *testing.T) {
	addr, _ := startServer(t)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp := rawExchange(t, c, `{"op":`)
	if resp.Type != "reply" || !strings.Contains(resp.Error, "bad request") {
		t.Fatalf("malformed-json reply = %+v", resp)
	}
	if resp := rawExchange(t, c, `{"op":"ping"}`); resp.Error != "" {
		t.Fatalf("connection dead after malformed json: %+v", resp)
	}
}

// TestOversizedRequestReply: a request line past the server's 1 MiB
// scanner limit draws an explanatory error reply before the connection
// closes, instead of a silent hangup.
func TestOversizedRequestReply(t *testing.T) {
	addr, _ := startServer(t)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	huge := `{"op":"publish","event":"` + strings.Repeat("x", 2<<20) + `"}`
	if _, err := c.Write([]byte(huge + "\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no reply to oversized request: %v", sc.Err())
	}
	var resp Response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Error, "too large") {
		t.Fatalf("oversized-request reply = %+v", resp)
	}
	// The server closes the connection afterwards (the stream is no
	// longer line-aligned); the next read must hit EOF, not hang.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if sc.Scan() {
		t.Fatalf("unexpected extra reply after oversized request: %q", sc.Bytes())
	}
}
