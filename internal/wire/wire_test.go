package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/topology"
)

func startServer(t *testing.T) (addr string, s *schema.Schema) {
	t.Helper()
	s = schema.MustNew(
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
	)
	network, err := core.New(core.Config{
		Topology: topology.Figure7Tree(),
		Schema:   s,
		Mode:     interval.Lossy,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(network, s)
	addr, err = srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		network.Close()
	})
	return addr, s
}

// delivery collector
type deliveries struct {
	mu  sync.Mutex
	got []string
}

func (d *deliveries) on(broker int, local uint32, event string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.got = append(d.got, event)
}

func (d *deliveries) list() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.got...)
}

func TestSubscribePublishDeliver(t *testing.T) {
	addr, _ := startServer(t)
	var d deliveries
	cl, err := Dial(addr, d.on)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	broker, local, err := cl.Subscribe(3, `symbol = OTE && price < 8.70`)
	if err != nil {
		t.Fatal(err)
	}
	if broker != 3 || local != 0 {
		t.Fatalf("id = %d/%d", broker, local)
	}
	hops, err := cl.Propagate()
	if err != nil || hops <= 0 {
		t.Fatalf("propagate: hops=%d err=%v", hops, err)
	}
	if err := cl.Publish(0, `symbol=OTE price=8.40`); err != nil {
		t.Fatal(err)
	}
	if err := cl.Publish(0, `symbol=OTE price=9.40`); err != nil {
		t.Fatal(err)
	}
	// Publish blocks until routing completes; one more round trip ensures
	// the delivery write reached us before checking.
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	got := d.list()
	if len(got) != 1 || !strings.Contains(got[0], "8.4") {
		t.Fatalf("deliveries = %v", got)
	}
}

func TestTwoClientsSeparateDeliveries(t *testing.T) {
	addr, _ := startServer(t)
	var d1, d2 deliveries
	c1, err := Dial(addr, d1.on)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr, d2.on)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, _, err := c1.Subscribe(1, `price > 10`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.Subscribe(8, `price < 5`); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Propagate(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Publish(0, `price=20`); err != nil {
		t.Fatal(err)
	}
	if err := c1.Publish(0, `price=1`); err != nil {
		t.Fatal(err)
	}
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}
	if got := d1.list(); len(got) != 1 || !strings.Contains(got[0], "20") {
		t.Fatalf("client1 deliveries = %v", got)
	}
	if got := d2.list(); len(got) != 1 || !strings.Contains(got[0], "1") {
		t.Fatalf("client2 deliveries = %v", got)
	}
}

func TestUnsubscribeViaWire(t *testing.T) {
	addr, _ := startServer(t)
	var d deliveries
	cl, err := Dial(addr, d.on)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	broker, local, err := cl.Subscribe(2, `price > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Unsubscribe(broker, local); err != nil {
		t.Fatal(err)
	}
	if err := cl.Publish(0, `price=5`); err != nil {
		t.Fatal(err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if got := d.list(); len(got) != 0 {
		t.Fatalf("deliveries after unsubscribe = %v", got)
	}
	if err := cl.Unsubscribe(broker, local); err == nil {
		t.Fatal("double unsubscribe accepted")
	}
}

func TestStatsAndErrors(t *testing.T) {
	addr, _ := startServer(t)
	cl, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Subscribe(1, `nonsense <<`); err == nil {
		t.Fatal("bad expression accepted")
	}
	if _, _, err := cl.Subscribe(99, `price > 1`); err == nil {
		t.Fatal("bad broker accepted")
	}
	if err := cl.Publish(0, `price=notanumber`); err == nil {
		t.Fatal("bad event accepted")
	}
	if _, err := cl.Propagate(); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["summary_messages"] <= 0 {
		t.Fatalf("stats = %v", st)
	}
	// Loss/error counters are present and exactly zero on a clean run.
	for _, key := range []string{"dropped", "summary_dropped", "errors"} {
		if v, ok := st[key]; !ok || v != 0 {
			t.Fatalf("stats[%q] = %d (present %v), want 0", key, v, ok)
		}
	}
	// Unknown op goes through the raw round trip.
	if _, err := cl.roundTrip(Request{Op: "bogus"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// TestChurnCountersViaWire: the stats reply exposes the network-wide
// churn health counters — a propagated unsubscribe shows up as a pending
// retraction and a fenced id, and the next period drains the retraction.
func TestChurnCountersViaWire(t *testing.T) {
	addr, _ := startServer(t)
	var d deliveries
	cl, err := Dial(addr, d.on)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	broker, local, err := cl.Subscribe(2, `price > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Propagate(); err != nil { // rows leave the owner
		t.Fatal(err)
	}
	if err := cl.Unsubscribe(broker, local); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["pending_retracts"] != 1 || st["fenced_ids"] != 1 {
		t.Fatalf("pending_retracts=%d fenced_ids=%d after propagated unsubscribe, want 1, 1",
			st["pending_retracts"], st["fenced_ids"])
	}
	if _, err := cl.Propagate(); err != nil { // retraction ships
		t.Fatal(err)
	}
	st, err = cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["pending_retracts"] != 0 {
		t.Fatalf("pending_retracts=%d after the retraction period, want 0", st["pending_retracts"])
	}
	if _, ok := st["compactions"]; !ok {
		t.Fatalf("stats reply missing compactions: %v", st)
	}
}

func TestExtendSchemaViaWire(t *testing.T) {
	addr, _ := startServer(t)
	var d deliveries
	cl, err := Dial(addr, d.on)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	id, err := cl.ExtendSchema("volume", "int")
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("attribute id = %d, want 2", id)
	}
	if _, err := cl.ExtendSchema("volume", "int"); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if _, err := cl.ExtendSchema("x", "bogus"); err == nil {
		t.Fatal("bogus type accepted")
	}
	if _, _, err := cl.Subscribe(1, `volume > 100`); err != nil {
		t.Fatalf("subscription over evolved schema: %v", err)
	}
	if _, err := cl.Propagate(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Publish(5, `volume=500`); err != nil {
		t.Fatal(err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if got := d.list(); len(got) != 1 {
		t.Fatalf("deliveries = %v", got)
	}
}

// TestServerSurvivesGarbage: malformed protocol lines get error replies
// (or are skipped) without crashing the connection or the server.
func TestServerSurvivesGarbage(t *testing.T) {
	addr, _ := startServer(t)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	garbage := []string{
		"not json at all",
		`{"op":123}`,
		`{"op":"subscribe","broker":"NaN"}`,
		"",
		`{"op":"publish"}`,
		string(make([]byte, 500)),
	}
	for _, line := range garbage {
		if _, err := raw.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	// The server must still answer a well-formed client afterwards.
	cl, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("server unhealthy after garbage: %v", err)
	}
}

// TestStatsMetricsEndToEnd drives the full wire path — subscribe,
// propagate, publish, deliver — and asserts the stats reply carries the
// engine's instrument-registry snapshot with the counters that workload
// must have moved.
func TestStatsMetricsEndToEnd(t *testing.T) {
	addr, _ := startServer(t)
	var d deliveries
	cl, err := Dial(addr, d.on)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, _, err := cl.Subscribe(7, `symbol = OTE && price < 9`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Propagate(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Publish(2, `symbol=OTE price=8.40`); err != nil {
		t.Fatal(err)
	}
	if got := d.list(); len(got) != 1 {
		t.Fatalf("deliveries = %v", got)
	}

	m, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	// Counters this workload must have moved.
	for _, name := range []string{
		"events_published",
		"events_routed",
		"events_forwarded",
		"broker_deliveries{7}",
		"broker_filter_hits{7}",
		"propagation_periods",
		"bus_messages{event}",
		"bus_messages{summary}",
	} {
		if m[name] == 0 {
			t.Errorf("metrics[%q] = 0, want nonzero", name)
		}
	}
	// Drop accounting must be present (and zero on a healthy run).
	for _, name := range []string{"bus_dropped{event}", "bus_dropped{summary}"} {
		if v, ok := m[name]; !ok {
			t.Errorf("metrics[%q] missing", name)
		} else if v != 0 {
			t.Errorf("metrics[%q] = %v, want 0 on healthy run", name, v)
		}
	}

	// The legacy bus-accounting stats ride the same reply and must agree
	// with the registry's view of event traffic.
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["event_messages"] == 0 || st["dropped"] != 0 {
		t.Fatalf("stats = %v", st)
	}
	if float64(st["event_messages"]) != m["bus_messages{event}"] {
		t.Fatalf("bus accounting disagrees: stats=%d registry=%v",
			st["event_messages"], m["bus_messages{event}"])
	}
}

// TestHistoryOp exercises the history op end-to-end: a sampler ticking
// over the network's registry, fetched through the wire client.
func TestHistoryOp(t *testing.T) {
	s := schema.MustNew(
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
	)
	network, err := core.New(core.Config{
		Topology: topology.Figure7Tree(),
		Schema:   s,
		Mode:     interval.Lossy,
	})
	if err != nil {
		t.Fatal(err)
	}
	sampler := metrics.NewSampler(network.Metrics(), 10*time.Millisecond, 32)
	srv := NewServer(network, s)
	srv.SetSampler(sampler)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		network.Close()
	})

	cl, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Publish(0, "symbol=OTE price=9"); err != nil {
		t.Fatal(err)
	}
	sampler.Tick(time.Now())
	if err := cl.Publish(0, "symbol=OTE price=10"); err != nil {
		t.Fatal(err)
	}
	sampler.Tick(time.Now().Add(time.Second))

	h, err := cl.History()
	if err != nil {
		t.Fatal(err)
	}
	if h.Ticks != 2 || len(h.Series) == 0 {
		t.Fatalf("history: ticks=%d series=%d", h.Ticks, len(h.Series))
	}
	p, ok := h.Latest("events_published")
	if !ok || p.Value != 2 {
		t.Fatalf("events_published latest = %+v ok=%v", p, ok)
	}
	if p.Delta != 1 {
		t.Fatalf("events_published delta = %v, want 1", p.Delta)
	}
}

// TestHistoryOpLargeReply is the regression test for the client's reply
// buffer: a fully-warmed history document on a real network is several
// MiB on one line (capacity × series points), which overran the old
// 1 MiB scanner limit and killed the connection with "token too long" —
// subsumtop then silently degraded to "history: off".
func TestHistoryOpLargeReply(t *testing.T) {
	s := schema.MustNew(
		schema.Attribute{Name: "symbol", Type: schema.TypeString},
		schema.Attribute{Name: "price", Type: schema.TypeFloat},
	)
	network, err := core.New(core.Config{
		Topology: topology.Figure7Tree(),
		Schema:   s,
		Mode:     interval.Lossy,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Inflate the series namespace the way a big broker fleet would, then
	// fill every ring to capacity.
	const extraSeries, capacity = 1500, 64
	for i := 0; i < extraSeries; i++ {
		network.Metrics().Counter(fmt.Sprintf("synthetic_series_%04d", i)).Inc()
	}
	sampler := metrics.NewSampler(network.Metrics(), 10*time.Millisecond, capacity)
	now := time.Now()
	for i := 0; i < capacity; i++ {
		sampler.Tick(now.Add(time.Duration(i) * time.Second))
	}
	srv := NewServer(network, s)
	srv.SetSampler(sampler)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		network.Close()
	})

	cl, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.History()
	if err != nil {
		t.Fatalf("history over the wire: %v", err)
	}
	if len(h.Series) < extraSeries {
		t.Fatalf("series = %d, want ≥ %d", len(h.Series), extraSeries)
	}
	var doc bytes.Buffer
	if err := json.NewEncoder(&doc).Encode(h); err != nil {
		t.Fatal(err)
	}
	if doc.Len() < 1<<20 {
		t.Fatalf("history doc only %d bytes — not a regression-sized reply", doc.Len())
	}
	// The connection must survive the big reply for subsequent ops.
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after large history: %v", err)
	}
}

func TestHistoryOpWithoutSampler(t *testing.T) {
	addr, _ := startServer(t)
	cl, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.History(); err == nil || !strings.Contains(err.Error(), "no sampler") {
		t.Fatalf("history without sampler: err = %v, want 'no sampler'", err)
	}
}
