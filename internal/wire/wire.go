// Package wire implements the TCP front end of the broker network: a
// line-delimited JSON protocol through which remote clients subscribe,
// publish, trigger propagation periods, and receive event deliveries.
//
// Requests (one JSON object per line):
//
//	{"op":"subscribe","broker":3,"expr":"symbol = OTE && price < 8.70"}
//	{"op":"unsubscribe","broker":3,"local":0}
//	{"op":"publish","broker":0,"event":"symbol=OTE price=8.40"}
//	{"op":"propagate"}
//	{"op":"stats"}
//	{"op":"history"}
//	{"op":"convergence"}
//	{"op":"slo"}
//	{"op":"extend","attr":"newattr","attrtype":"float"}
//	{"op":"ping"}
//
// Responses carry the request's op plus either a result or an error;
// deliveries for this connection's subscriptions are pushed
// asynchronously:
//
//	{"type":"reply","op":"subscribe","broker":3,"local":0}
//	{"type":"reply","op":"propagate","hops":21}
//	{"type":"delivery","broker":3,"local":0,"event":"{symbol=\"OTE\", ...}"}
//	{"type":"reply","op":"publish","error":"..."}
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/subsum/subsum/internal/core"
	"github.com/subsum/subsum/internal/metrics"
	"github.com/subsum/subsum/internal/netsim"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/slo"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/topology"
)

// Request is one client request line.
type Request struct {
	Op       string `json:"op"`
	Broker   int    `json:"broker,omitempty"`
	Local    uint32 `json:"local,omitempty"`
	Expr     string `json:"expr,omitempty"`
	Event    string `json:"event,omitempty"`
	Attr     string `json:"attr,omitempty"`
	AttrType string `json:"attrtype,omitempty"`
}

// Response is one server line: a reply to a request or a pushed delivery.
type Response struct {
	Type   string           `json:"type"` // "reply" or "delivery"
	Op     string           `json:"op,omitempty"`
	Error  string           `json:"error,omitempty"`
	Broker int              `json:"broker,omitempty"`
	Local  uint32           `json:"local,omitempty"`
	Event  string           `json:"event,omitempty"`
	Hops   int              `json:"hops,omitempty"`
	Stats  map[string]int64 `json:"stats,omitempty"`
	// Metrics carries the network's full instrument-registry snapshot
	// (counters, gauges, and histogram-derived quantiles) on stats replies.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// History carries the sampler's retained time-series on history
	// replies (nil when the server has no sampler attached).
	History *metrics.History `json:"history,omitempty"`
	// Health carries the summary-health snapshot (convergence epoch
	// vectors plus false-positive attribution) on convergence replies.
	Health *core.HealthReport `json:"health,omitempty"`
	// SLO carries the error-budget report (per-objective verdicts with
	// burn rates and evidence) on slo replies.
	SLO *slo.Report `json:"slo,omitempty"`
}

// Server exposes a core.Network over TCP.
type Server struct {
	net     *core.Network
	schema  *schema.Schema
	ln      net.Listener
	sampler *metrics.Sampler   // nil unless SetSampler was called
	sloFn   func() *slo.Report // nil unless SetSLO was called

	mu    sync.Mutex
	conns map[*conn]struct{}
	wg    sync.WaitGroup
}

// conn is one client connection.
type conn struct {
	c  net.Conn
	mu sync.Mutex // serializes writes
}

func (c *conn) send(resp Response) error {
	buf, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err = c.c.Write(buf)
	return err
}

// NewServer wraps an already-running network. The caller retains ownership
// of the network (Close does not stop it).
func NewServer(network *core.Network, s *schema.Schema) *Server {
	return &Server{net: network, schema: s, conns: make(map[*conn]struct{})}
}

// SetSampler attaches a metrics sampler whose retained time-series the
// "history" op serves. The caller owns the sampler's lifecycle. Must be
// called before Listen.
func (srv *Server) SetSampler(s *metrics.Sampler) { srv.sampler = s }

// SetSLO attaches the provider the "slo" op serves — typically
// slo.Monitor.Last, so replies carry the monitor's most recent
// evaluation without recomputing. Must be called before Listen.
func (srv *Server) SetSLO(fn func() *slo.Report) { srv.sloFn = fn }

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serve loops run in background goroutines.
func (srv *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv.ln = ln
	srv.wg.Add(1)
	go srv.acceptLoop()
	return ln.Addr().String(), nil
}

func (srv *Server) acceptLoop() {
	defer srv.wg.Done()
	for {
		c, err := srv.ln.Accept()
		if err != nil {
			return // listener closed
		}
		cc := &conn{c: c}
		srv.mu.Lock()
		srv.conns[cc] = struct{}{}
		srv.mu.Unlock()
		srv.wg.Add(1)
		go srv.serve(cc)
	}
}

// Close stops the listener and closes all connections.
func (srv *Server) Close() error {
	var err error
	if srv.ln != nil {
		err = srv.ln.Close()
	}
	srv.mu.Lock()
	for cc := range srv.conns {
		cc.c.Close()
	}
	srv.mu.Unlock()
	srv.wg.Wait()
	return err
}

func (srv *Server) serve(cc *conn) {
	defer srv.wg.Done()
	defer func() {
		srv.mu.Lock()
		delete(srv.conns, cc)
		srv.mu.Unlock()
		cc.c.Close()
	}()
	scanner := bufio.NewScanner(cc.c)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			_ = cc.send(Response{Type: "reply", Error: fmt.Sprintf("bad request: %v", err)})
			continue
		}
		resp := srv.handle(cc, req)
		if err := cc.send(resp); err != nil {
			return
		}
	}
	// A request line past the scanner's limit aborts the scan without an
	// error reply; tell the client why its connection is going away
	// instead of silently hanging its FIFO reply matching.
	if errors.Is(scanner.Err(), bufio.ErrTooLong) {
		_ = cc.send(Response{Type: "reply", Error: "request too large (limit 1 MiB)"})
	}
}

func (srv *Server) handle(cc *conn, req Request) Response {
	resp := Response{Type: "reply", Op: req.Op}
	fail := func(err error) Response {
		resp.Error = err.Error()
		return resp
	}
	switch req.Op {
	case "ping":
		return resp
	case "subscribe":
		sub, err := schema.ParseSubscription(srv.schema, req.Expr)
		if err != nil {
			return fail(err)
		}
		id, err := srv.net.Subscribe(topology.NodeID(req.Broker), sub, func(id subid.ID, ev *schema.Event) {
			_ = cc.send(Response{
				Type:   "delivery",
				Broker: int(id.Broker),
				Local:  uint32(id.Local),
				Event:  ev.Format(srv.schema),
			})
		})
		if err != nil {
			return fail(err)
		}
		resp.Broker = int(id.Broker)
		resp.Local = uint32(id.Local)
		return resp
	case "unsubscribe":
		id := subid.ID{Broker: subid.BrokerID(req.Broker), Local: subid.LocalID(req.Local)}
		if err := srv.net.Unsubscribe(id); err != nil {
			return fail(err)
		}
		return resp
	case "publish":
		ev, err := schema.ParseEvent(srv.schema, req.Event)
		if err != nil {
			return fail(err)
		}
		if err := srv.net.Publish(topology.NodeID(req.Broker), ev); err != nil {
			return fail(err)
		}
		// Block until routing completes so the client's subsequent reads
		// observe all deliveries of its own publish.
		srv.net.Flush()
		return resp
	case "propagate":
		hops, err := srv.net.Propagate()
		if err != nil {
			return fail(err)
		}
		resp.Hops = hops
		return resp
	case "extend":
		t, err := schema.ParseType(req.AttrType)
		if err != nil {
			return fail(err)
		}
		id, err := srv.net.ExtendSchema(req.Attr, t)
		if err != nil {
			return fail(err)
		}
		resp.Local = uint32(id)
		return resp
	case "stats":
		st := srv.net.Stats()
		resp.Stats = map[string]int64{
			"messages":         st.TotalMessages(),
			"bytes":            st.TotalBytes(),
			"summary_messages": st.Messages[netsim.KindSummary],
			"summary_bytes":    st.Bytes[netsim.KindSummary],
			"event_messages":   st.Messages[netsim.KindEvent],
			"deliver_messages": st.Messages[netsim.KindDeliver],
			"dropped":          st.TotalDropped(),
			"summary_dropped":  st.Dropped[netsim.KindSummary],
			"errors":           st.TotalErrors(),
		}
		// Churn health across all brokers: retractions awaiting the next
		// period, ids fenced until the next full sync, and amortized
		// compactions run.
		var pendingRetracts, fencedIDs, compactions int64
		for i := 0; i < srv.net.Len(); i++ {
			bst := srv.net.Broker(topology.NodeID(i)).Stats()
			pendingRetracts += int64(bst.PendingRetracts)
			fencedIDs += int64(bst.FencedIDs)
			compactions += bst.Compactions
		}
		resp.Stats["pending_retracts"] = pendingRetracts
		resp.Stats["fenced_ids"] = fencedIDs
		resp.Stats["compactions"] = compactions
		resp.Metrics = srv.net.Metrics().Map()
		return resp
	case "history":
		if srv.sampler == nil {
			return fail(fmt.Errorf("no sampler attached"))
		}
		resp.History = srv.sampler.History()
		return resp
	case "convergence":
		resp.Health = srv.net.Health()
		return resp
	case "slo":
		if srv.sloFn == nil {
			return fail(fmt.Errorf("no slo monitor attached"))
		}
		rep := srv.sloFn()
		if rep == nil {
			return fail(fmt.Errorf("slo monitor has not evaluated yet"))
		}
		resp.SLO = rep
		return resp
	default:
		return fail(fmt.Errorf("unknown op %q", req.Op))
	}
}

// Client is a minimal client for the wire protocol. Deliveries are
// dispatched to the handler passed to Dial; replies are matched to
// requests in FIFO order (the protocol is synchronous per connection).
type Client struct {
	c       net.Conn
	scanner *bufio.Scanner
	mu      sync.Mutex // serializes request/reply exchanges
	onEvent func(broker int, local uint32, event string)
	replies chan Response
	readErr error
	done    chan struct{}
}

// Dial connects to a wire server. onEvent receives pushed deliveries (may
// be nil to ignore them).
func Dial(addr string, onEvent func(broker int, local uint32, event string)) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		c:       c,
		onEvent: onEvent,
		replies: make(chan Response, 16),
		done:    make(chan struct{}),
	}
	cl.scanner = bufio.NewScanner(c)
	// Replies can be large: a history document is capacity × series
	// points (a 24-broker network with default -history-cap 300 is
	// several MiB), so the reply limit is far above the server's 1 MiB
	// request limit.
	cl.scanner.Buffer(make([]byte, 0, 64*1024), 64<<20)
	go cl.readLoop()
	return cl, nil
}

func (cl *Client) readLoop() {
	defer close(cl.done)
	for cl.scanner.Scan() {
		var resp Response
		if err := json.Unmarshal(cl.scanner.Bytes(), &resp); err != nil {
			cl.readErr = err
			break
		}
		if resp.Type == "delivery" {
			if cl.onEvent != nil {
				cl.onEvent(resp.Broker, resp.Local, resp.Event)
			}
			continue
		}
		cl.replies <- resp
	}
	if err := cl.scanner.Err(); err != nil && cl.readErr == nil {
		cl.readErr = err
	}
	close(cl.replies)
}

// Close closes the connection.
func (cl *Client) Close() error { return cl.c.Close() }

// roundTrip sends one request and waits for its reply.
func (cl *Client) roundTrip(req Request) (Response, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	buf, err := json.Marshal(req)
	if err != nil {
		return Response{}, err
	}
	buf = append(buf, '\n')
	if _, err := cl.c.Write(buf); err != nil {
		return Response{}, err
	}
	resp, ok := <-cl.replies
	if !ok {
		if cl.readErr != nil {
			return Response{}, cl.readErr
		}
		return Response{}, errors.New("wire: connection closed")
	}
	if resp.Error != "" {
		return resp, errors.New(resp.Error)
	}
	return resp, nil
}

// Ping checks liveness.
func (cl *Client) Ping() error {
	_, err := cl.roundTrip(Request{Op: "ping"})
	return err
}

// Subscribe registers a subscription at the given broker; deliveries
// arrive via the Dial handler. It returns the (broker, local) id.
func (cl *Client) Subscribe(brokerID int, expr string) (int, uint32, error) {
	resp, err := cl.roundTrip(Request{Op: "subscribe", Broker: brokerID, Expr: expr})
	if err != nil {
		return 0, 0, err
	}
	return resp.Broker, resp.Local, nil
}

// Unsubscribe removes a subscription created on this server.
func (cl *Client) Unsubscribe(brokerID int, local uint32) error {
	_, err := cl.roundTrip(Request{Op: "unsubscribe", Broker: brokerID, Local: local})
	return err
}

// Publish injects an event at the given broker and waits until routing
// completes.
func (cl *Client) Publish(brokerID int, event string) error {
	_, err := cl.roundTrip(Request{Op: "publish", Broker: brokerID, Event: event})
	return err
}

// Propagate triggers one Algorithm 2 period and returns its hop count.
func (cl *Client) Propagate() (int, error) {
	resp, err := cl.roundTrip(Request{Op: "propagate"})
	return resp.Hops, err
}

// Stats fetches the server's bus accounting.
func (cl *Client) Stats() (map[string]int64, error) {
	resp, err := cl.roundTrip(Request{Op: "stats"})
	return resp.Stats, err
}

// Metrics fetches the server's instrument-registry snapshot: every
// counter, gauge, and histogram aggregate the engine maintains, as a
// flat name → value map.
func (cl *Client) Metrics() (map[string]float64, error) {
	resp, err := cl.roundTrip(Request{Op: "stats"})
	return resp.Metrics, err
}

// History fetches the server's retained metrics time-series (per-series
// ring buffers of values, deltas, and rates). Fails when the server has
// no sampler attached.
func (cl *Client) History() (*metrics.History, error) {
	resp, err := cl.roundTrip(Request{Op: "history"})
	if err != nil {
		return nil, err
	}
	if resp.History == nil {
		return nil, errors.New("wire: empty history reply")
	}
	return resp.History, nil
}

// Health fetches the server's summary-health snapshot: per-broker
// convergence epoch vectors with derived staleness, and the
// false-positive attribution report.
func (cl *Client) Health() (*core.HealthReport, error) {
	resp, err := cl.roundTrip(Request{Op: "convergence"})
	if err != nil {
		return nil, err
	}
	if resp.Health == nil {
		return nil, errors.New("wire: empty convergence reply")
	}
	return resp.Health, nil
}

// SLO fetches the server's error-budget report: one verdict per
// objective with burn rates, remaining budget, and evidence. Fails when
// the server has no SLO monitor attached or it has not evaluated yet.
func (cl *Client) SLO() (*slo.Report, error) {
	resp, err := cl.roundTrip(Request{Op: "slo"})
	if err != nil {
		return nil, err
	}
	if resp.SLO == nil {
		return nil, errors.New("wire: empty slo reply")
	}
	return resp.SLO, nil
}

// ExtendSchema appends an attribute to the server's schema at runtime
// (schema evolution) and returns its attribute id.
func (cl *Client) ExtendSchema(name, attrType string) (uint32, error) {
	resp, err := cl.roundTrip(Request{Op: "extend", Attr: name, AttrType: attrType})
	return resp.Local, err
}
