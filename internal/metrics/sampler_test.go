package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func tickAt(s *Sampler, base time.Time, offset time.Duration) {
	s.Tick(base.Add(offset))
}

func TestSamplerDeltasAndRates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_published")
	g := r.Gauge("queue_depth")
	s := NewSampler(r, time.Second, 16)
	base := time.Unix(1700000000, 0)

	c.Add(10)
	g.Set(3)
	tickAt(s, base, 0)
	c.Add(20)
	g.Set(5)
	tickAt(s, base, 2*time.Second) // 2s elapsed: rate = 20/2 = 10/s
	c.Add(5)
	tickAt(s, base, 3*time.Second)

	h := s.History()
	if h.Ticks != 3 {
		t.Fatalf("ticks = %d", h.Ticks)
	}

	var counter, gauge *HistorySeries
	for i := range h.Series {
		switch h.Series[i].Name {
		case "events_published":
			counter = &h.Series[i]
		case "queue_depth":
			gauge = &h.Series[i]
		}
	}
	if counter == nil || gauge == nil {
		t.Fatalf("missing series in %+v", h.Series)
	}
	if counter.Kind != "cumulative" || gauge.Kind != "point" {
		t.Fatalf("kinds: counter=%s gauge=%s", counter.Kind, gauge.Kind)
	}
	want := []HistoryPoint{
		{UnixMillis: base.UnixMilli(), Value: 10}, // first sample: no delta base
		{UnixMillis: base.Add(2 * time.Second).UnixMilli(), Value: 30, Delta: 20, Rate: 10},
		{UnixMillis: base.Add(3 * time.Second).UnixMilli(), Value: 35, Delta: 5, Rate: 5},
	}
	if len(counter.Points) != len(want) {
		t.Fatalf("counter points = %d, want %d", len(counter.Points), len(want))
	}
	for i, w := range want {
		if counter.Points[i] != w {
			t.Errorf("counter point %d = %+v, want %+v", i, counter.Points[i], w)
		}
	}
	if gauge.Points[1].Value != 5 || gauge.Points[1].Delta != 0 || gauge.Points[1].Rate != 0 {
		t.Errorf("gauge point = %+v, want plain value 5", gauge.Points[1])
	}
}

func TestSamplerHistogramSeries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	s := NewSampler(r, time.Second, 8)
	base := time.Unix(1700000000, 0)

	h.Observe(1)
	h.Observe(3)
	tickAt(s, base, 0)
	h.Observe(3)
	tickAt(s, base, time.Second)

	hist := s.History()
	cnt, ok := hist.Latest("lat.count")
	if !ok || cnt.Value != 3 || cnt.Delta != 1 || cnt.Rate != 1 {
		t.Fatalf("lat.count latest = %+v ok=%v", cnt, ok)
	}
	if p95, ok := hist.Latest("lat.p95"); !ok || p95.Value <= 0 {
		t.Fatalf("lat.p95 latest = %+v ok=%v", p95, ok)
	}
	if sum, ok := hist.Latest("lat.sum"); !ok || sum.Delta != 3 {
		t.Fatalf("lat.sum latest = %+v ok=%v", sum, ok)
	}
}

// TestSamplerBoundedMemory proves retention is capped: after many more
// ticks than the capacity, each series holds exactly capacity points and
// they are the newest ones in order.
func TestSamplerBoundedMemory(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	const capacity = 5
	s := NewSampler(r, time.Second, capacity)
	base := time.Unix(1700000000, 0)
	const ticks = 3*capacity + 2
	for i := 0; i < ticks; i++ {
		c.Inc()
		tickAt(s, base, time.Duration(i)*time.Second)
	}
	h := s.History()
	if h.Ticks != ticks {
		t.Fatalf("ticks = %d, want %d", h.Ticks, ticks)
	}
	for _, series := range h.Series {
		if len(series.Points) != capacity {
			t.Fatalf("series %s: %d points, want %d", series.Name, len(series.Points), capacity)
		}
		for i, p := range series.Points {
			wantV := float64(ticks - capacity + i + 1)
			if p.Value != wantV {
				t.Fatalf("series %s point %d value = %v, want %v (not the newest window)", series.Name, i, p.Value, wantV)
			}
			if i > 0 && p.UnixMillis <= series.Points[i-1].UnixMillis {
				t.Fatalf("series %s points out of order", series.Name)
			}
		}
	}
}

func TestSamplerLateSeries(t *testing.T) {
	// An instrument created after sampling began starts its own window
	// with a delta-free first point.
	r := NewRegistry()
	r.Counter("early").Inc()
	s := NewSampler(r, time.Second, 8)
	base := time.Unix(1700000000, 0)
	tickAt(s, base, 0)
	late := r.Counter("late")
	late.Add(7)
	tickAt(s, base, time.Second)

	h := s.History()
	p, ok := h.Latest("late")
	if !ok || p.Value != 7 || p.Delta != 0 {
		t.Fatalf("late series latest = %+v ok=%v", p, ok)
	}
}

func TestSamplerStartStopAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	s := NewSampler(r, 10*time.Millisecond, 4)
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if s.History().Ticks >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	after := s.History().Ticks
	time.Sleep(30 * time.Millisecond)
	if got := s.History().Ticks; got != after {
		t.Fatalf("sampler ticked after Stop: %d -> %d", after, got)
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var h History
	if err := json.Unmarshal(buf.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Capacity != 4 || len(h.Series) == 0 {
		t.Fatalf("json history: %+v", h)
	}
}

func TestSamplerStopWithoutStart(t *testing.T) {
	s := NewSampler(NewRegistry(), time.Second, 4)
	s.Stop() // must not hang or panic
}

// TestSamplerCounterResetClamp is the regression test for the
// negative-delta clamp: when a cumulative instrument steps backwards
// (Registry.Reset between runs), the sampler must not emit a negative
// delta or rate — it clamps to zero and re-baselines on the next tick.
func TestSamplerCounterResetClamp(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_published")
	h := r.Histogram("match_seconds", []float64{1})
	s := NewSampler(r, time.Second, 16)
	base := time.Unix(1700000000, 0)

	c.Add(100)
	h.Observe(0.5)
	tickAt(s, base, 0)
	c.Add(50)
	tickAt(s, base, time.Second) // healthy delta 50

	r.Reset() // counter drops 150 -> 0, histogram count/sum drop too
	c.Add(7)
	tickAt(s, base, 2*time.Second)
	c.Add(3)
	tickAt(s, base, 3*time.Second) // re-baselined: delta 3 again

	hist := s.History()
	for _, name := range []string{"events_published", "match_seconds.count", "match_seconds.sum"} {
		var series *HistorySeries
		for i := range hist.Series {
			if hist.Series[i].Name == name {
				series = &hist.Series[i]
			}
		}
		if series == nil {
			t.Fatalf("series %q missing", name)
		}
		for _, pt := range series.Points {
			if pt.Delta < 0 || pt.Rate < 0 {
				t.Fatalf("series %q: negative delta/rate after reset: %+v", name, pt)
			}
		}
	}
	pts := historySeries(t, hist, "events_published")
	if got := pts[2]; got.Delta != 0 || got.Rate != 0 {
		t.Fatalf("reset tick: delta %v rate %v, want 0/0", got.Delta, got.Rate)
	}
	if got := pts[3]; got.Delta != 3 {
		t.Fatalf("post-reset tick: delta %v, want 3 (re-baselined)", got.Delta)
	}
	if got := pts[3].Value; got != 10 {
		t.Fatalf("post-reset raw value %v, want 10", got)
	}
}

// historySeries fetches one named series' points or fails the test.
func historySeries(t *testing.T, h *History, name string) []HistoryPoint {
	t.Helper()
	for i := range h.Series {
		if h.Series[i].Name == name {
			return h.Series[i].Points
		}
	}
	t.Fatalf("series %q missing", name)
	return nil
}

// TestRegistryReset covers the in-place zeroing contract: wired handles
// stay live, values clear, and the namespace is preserved.
func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", []float64{1, 2})
	c.Add(5)
	g.Set(-3)
	h.Observe(1.5)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset left values: counter %d gauge %d hist count %d sum %v",
			c.Value(), g.Value(), h.Count(), h.Sum())
	}
	if r.Counter("a") != c {
		t.Fatal("reset re-interned the counter handle")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("handle dead after reset")
	}
	_, counts := h.Buckets()
	for i, n := range counts {
		if n != 0 {
			t.Fatalf("bucket %d not cleared: %d", i, n)
		}
	}
}
