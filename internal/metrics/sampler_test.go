package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func tickAt(s *Sampler, base time.Time, offset time.Duration) {
	s.Tick(base.Add(offset))
}

func TestSamplerDeltasAndRates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_published")
	g := r.Gauge("queue_depth")
	s := NewSampler(r, time.Second, 16)
	base := time.Unix(1700000000, 0)

	c.Add(10)
	g.Set(3)
	tickAt(s, base, 0)
	c.Add(20)
	g.Set(5)
	tickAt(s, base, 2*time.Second) // 2s elapsed: rate = 20/2 = 10/s
	c.Add(5)
	tickAt(s, base, 3*time.Second)

	h := s.History()
	if h.Ticks != 3 {
		t.Fatalf("ticks = %d", h.Ticks)
	}

	var counter, gauge *HistorySeries
	for i := range h.Series {
		switch h.Series[i].Name {
		case "events_published":
			counter = &h.Series[i]
		case "queue_depth":
			gauge = &h.Series[i]
		}
	}
	if counter == nil || gauge == nil {
		t.Fatalf("missing series in %+v", h.Series)
	}
	if counter.Kind != "cumulative" || gauge.Kind != "point" {
		t.Fatalf("kinds: counter=%s gauge=%s", counter.Kind, gauge.Kind)
	}
	want := []HistoryPoint{
		{UnixMillis: base.UnixMilli(), Value: 10}, // first sample: no delta base
		{UnixMillis: base.Add(2 * time.Second).UnixMilli(), Value: 30, Delta: 20, Rate: 10},
		{UnixMillis: base.Add(3 * time.Second).UnixMilli(), Value: 35, Delta: 5, Rate: 5},
	}
	if len(counter.Points) != len(want) {
		t.Fatalf("counter points = %d, want %d", len(counter.Points), len(want))
	}
	for i, w := range want {
		if counter.Points[i] != w {
			t.Errorf("counter point %d = %+v, want %+v", i, counter.Points[i], w)
		}
	}
	if gauge.Points[1].Value != 5 || gauge.Points[1].Delta != 0 || gauge.Points[1].Rate != 0 {
		t.Errorf("gauge point = %+v, want plain value 5", gauge.Points[1])
	}
}

func TestSamplerHistogramSeries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	s := NewSampler(r, time.Second, 8)
	base := time.Unix(1700000000, 0)

	h.Observe(1)
	h.Observe(3)
	tickAt(s, base, 0)
	h.Observe(3)
	tickAt(s, base, time.Second)

	hist := s.History()
	cnt, ok := hist.Latest("lat.count")
	if !ok || cnt.Value != 3 || cnt.Delta != 1 || cnt.Rate != 1 {
		t.Fatalf("lat.count latest = %+v ok=%v", cnt, ok)
	}
	if p95, ok := hist.Latest("lat.p95"); !ok || p95.Value <= 0 {
		t.Fatalf("lat.p95 latest = %+v ok=%v", p95, ok)
	}
	if sum, ok := hist.Latest("lat.sum"); !ok || sum.Delta != 3 {
		t.Fatalf("lat.sum latest = %+v ok=%v", sum, ok)
	}
}

// TestSamplerBoundedMemory proves retention is capped: after many more
// ticks than the capacity, each series holds exactly capacity points and
// they are the newest ones in order.
func TestSamplerBoundedMemory(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	const capacity = 5
	s := NewSampler(r, time.Second, capacity)
	base := time.Unix(1700000000, 0)
	const ticks = 3*capacity + 2
	for i := 0; i < ticks; i++ {
		c.Inc()
		tickAt(s, base, time.Duration(i)*time.Second)
	}
	h := s.History()
	if h.Ticks != ticks {
		t.Fatalf("ticks = %d, want %d", h.Ticks, ticks)
	}
	for _, series := range h.Series {
		if len(series.Points) != capacity {
			t.Fatalf("series %s: %d points, want %d", series.Name, len(series.Points), capacity)
		}
		for i, p := range series.Points {
			wantV := float64(ticks - capacity + i + 1)
			if p.Value != wantV {
				t.Fatalf("series %s point %d value = %v, want %v (not the newest window)", series.Name, i, p.Value, wantV)
			}
			if i > 0 && p.UnixMillis <= series.Points[i-1].UnixMillis {
				t.Fatalf("series %s points out of order", series.Name)
			}
		}
	}
}

func TestSamplerLateSeries(t *testing.T) {
	// An instrument created after sampling began starts its own window
	// with a delta-free first point.
	r := NewRegistry()
	r.Counter("early").Inc()
	s := NewSampler(r, time.Second, 8)
	base := time.Unix(1700000000, 0)
	tickAt(s, base, 0)
	late := r.Counter("late")
	late.Add(7)
	tickAt(s, base, time.Second)

	h := s.History()
	p, ok := h.Latest("late")
	if !ok || p.Value != 7 || p.Delta != 0 {
		t.Fatalf("late series latest = %+v ok=%v", p, ok)
	}
}

func TestSamplerStartStopAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	s := NewSampler(r, 10*time.Millisecond, 4)
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if s.History().Ticks >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	after := s.History().Ticks
	time.Sleep(30 * time.Millisecond)
	if got := s.History().Ticks; got != after {
		t.Fatalf("sampler ticked after Stop: %d -> %d", after, got)
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var h History
	if err := json.Unmarshal(buf.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Capacity != 4 || len(h.Series) == 0 {
		t.Fatalf("json history: %+v", h)
	}
}

func TestSamplerStopWithoutStart(t *testing.T) {
	s := NewSampler(NewRegistry(), time.Second, 4)
	s.Stop() // must not hang or panic
}
