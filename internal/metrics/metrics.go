// Package metrics provides the small statistics and table-rendering
// helpers the experiment harness uses to print the paper's figures as
// aligned text tables and CSV.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds aggregate statistics of a sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P95, P99  float64
	StdDev         float64
}

// Summarize computes aggregate statistics; it returns the zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	variance := sumSq/float64(len(xs)) - s.Mean*s.Mean
	if variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = percentile(sorted, 0.50)
	s.P95 = percentile(sorted, 0.95)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// percentile reads the p-quantile from a sorted sample (nearest rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)-1) + 0.5)
	return sorted[i]
}

// SummarizeInts is Summarize for integer samples.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Table renders experiment results as an aligned text table (the shape the
// paper's figures report: one row per x value, one column per series).
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat prints floats compactly: integers without decimals, large
// values without noise digits.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the aligned table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC 4180 comma-separated values (header +
// rows): cells containing commas, quotes, or line breaks are quoted, with
// embedded quotes doubled — pattern texts like `contains "a,b"` survive a
// round trip through spreadsheet tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCells := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvQuote(cell))
		}
		b.WriteByte('\n')
	}
	writeCells(t.Columns)
	for _, row := range t.rows {
		writeCells(row)
	}
	return b.String()
}

// csvQuote wraps a cell in double quotes when RFC 4180 requires it.
func csvQuote(cell string) string {
	if !strings.ContainsAny(cell, ",\"\n\r") {
		return cell
	}
	return `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
}

// HumanBytes renders a byte count with binary-ish magnitude suffixes as
// used in log-scale figures (powers of 1000 for readability).
func HumanBytes(n int64) string {
	switch {
	case n >= 1e12:
		return fmt.Sprintf("%.2fTB", float64(n)/1e12)
	case n >= 1e9:
		return fmt.Sprintf("%.2fGB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fMB", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.2fKB", float64(n)/1e3)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
