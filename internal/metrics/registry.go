// Instrument registry: lightweight, concurrent runtime metrics for the
// live engine. Unlike CounterSet (a map under a mutex, fine for
// experiment-harness accounting), the registry's instruments are
// preallocated atomics: callers look an instrument up once at wiring time
// and increment a pointer on the hot path — zero allocations, zero locks,
// matching the allocation discipline of the matcher and propagation fast
// paths they observe.
//
// Three instrument kinds cover the engine's needs:
//
//   - Counter: monotonically increasing atomic int64.
//   - Gauge: arbitrarily settable atomic int64 (queue depths, sub counts).
//   - Histogram: fixed upper-bound buckets with atomic counts plus a
//     CAS-maintained float64 sum; quantiles (P50/P95/P99) are estimated by
//     linear interpolation inside the owning bucket.
//
// Labeled families ("broker_matches" × broker id) are plain name
// composition: With joins the family name and label values into one flat
// registry name at wiring time, so a snapshot is always a sorted flat
// map from fully qualified name to value.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; instruments obtained from a Registry are shared by name.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by d (which must be non-negative; counters are
// monotonic).
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("metrics: negative delta on monotonic Counter")
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value (a level, not a rate).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed upper-bound buckets.
// Observe is lock-free and allocation-free: one linear scan over the
// (small, fixed) bound slice, one atomic bucket increment, one CAS loop
// folding the value into the float64 sum.
type Histogram struct {
	bounds []float64 // sorted inclusive upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram with the given inclusive upper bounds
// (must be sorted ascending; an implicit +Inf bucket catches the rest).
// Registry.Histogram is the usual constructor; this one serves tests and
// standalone use.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d", i))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket containing the target rank. When the rank lands in
// the open +Inf bucket the estimate clamps to the highest finite bound —
// the histogram cannot resolve the open bucket, and interpolating toward
// +Inf would fabricate a value no observation supports. An empty
// histogram has no quantiles at all and returns NaN (not 0, which would
// be indistinguishable from a real all-zero distribution).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // open bucket: clamp
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Buckets returns the bucket upper bounds and their current counts (the
// final count is the open +Inf bucket).
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// ExpBuckets returns n ascending bounds starting at start and multiplying
// by factor — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets wants start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets spans 1µs to ~34s in ×2 steps: wide enough for both
// the sub-20µs matcher path and multi-second propagation periods.
var DefLatencyBuckets = ExpBuckets(1e-6, 2, 25)

// DefSizeBuckets spans 64B to ~2GB in ×4 steps for payload-size
// distributions.
var DefSizeBuckets = ExpBuckets(64, 4, 13)

// Registry is a concurrent instrument namespace. Lookups
// (Counter/Gauge/Histogram) intern by name under a mutex and are meant
// for wiring time; the returned instruments are the hot-path handles.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Reset zeroes every registered instrument in place. Handles held by
// wired hot paths stay valid — only the values clear — so an operator
// can re-baseline a long-lived process between runs. Cumulative series
// observed by a Sampler step backwards across a reset; the sampler
// clamps the resulting negative delta to zero (see Tick).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls reuse the existing instrument and
// ignore bounds; nil bounds default to DefLatencyBuckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefLatencyBuckets
		}
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Label composes a family name and label values into one flat registry
// name: Label("broker_matches", "3") = "broker_matches{3}". Multiple
// labels join with commas. Call at wiring time, not on the hot path.
func Label(family string, labels ...string) string {
	if len(labels) == 0 {
		return family
	}
	return family + "{" + strings.Join(labels, ",") + "}"
}

// CounterVec is a labeled counter family.
type CounterVec struct {
	r    *Registry
	name string
}

// CounterVec returns a labeled family rooted at name.
func (r *Registry) CounterVec(name string) *CounterVec { return &CounterVec{r: r, name: name} }

// With returns the child counter for the given label values. It allocates
// the composed name; cache the result for hot paths.
func (v *CounterVec) With(labels ...string) *Counter { return v.r.Counter(Label(v.name, labels...)) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct {
	r    *Registry
	name string
}

// GaugeVec returns a labeled family rooted at name.
func (r *Registry) GaugeVec(name string) *GaugeVec { return &GaugeVec{r: r, name: name} }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(labels ...string) *Gauge { return v.r.Gauge(Label(v.name, labels...)) }

// HistogramVec is a labeled histogram family with shared bounds.
type HistogramVec struct {
	r      *Registry
	name   string
	bounds []float64
}

// HistogramVec returns a labeled family rooted at name; children share
// bounds (nil = DefLatencyBuckets).
func (r *Registry) HistogramVec(name string, bounds []float64) *HistogramVec {
	return &HistogramVec{r: r, name: name, bounds: bounds}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(labels ...string) *Histogram {
	return v.r.Histogram(Label(v.name, labels...), v.bounds)
}

// Sample is one snapshot entry.
type Sample struct {
	Name  string
	Value float64
}

// Snapshot flattens every instrument into sorted (name, value) samples.
// Counters and gauges contribute one sample; histograms contribute
// .count, .sum, .mean, .p50, .p95 and .p99 derived samples.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+6*len(r.hists))
	for name, c := range r.counters {
		out = append(out, Sample{name, float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{name, float64(g.Value())})
	}
	for name, h := range r.hists {
		n := h.Count()
		// Empty histograms report 0 for the derived points: Quantile's NaN
		// is the honest per-instrument answer, but NaN would poison the JSON
		// rendering of an otherwise healthy snapshot.
		mean, p50, p95, p99 := 0.0, 0.0, 0.0, 0.0
		if n > 0 {
			mean = h.Sum() / float64(n)
			p50, p95, p99 = h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
		}
		out = append(out,
			Sample{name + ".count", float64(n)},
			Sample{name + ".sum", h.Sum()},
			Sample{name + ".mean", mean},
			Sample{name + ".p50", p50},
			Sample{name + ".p95", p95},
			Sample{name + ".p99", p99},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Map returns the snapshot as a flat name → value map.
func (r *Registry) Map() map[string]float64 {
	snap := r.Snapshot()
	out := make(map[string]float64, len(snap))
	for _, s := range snap {
		out[s.Name] = s.Value
	}
	return out
}

// WriteText renders the snapshot as sorted "name value" lines (the
// /metrics text format).
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, formatMetricValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as a flat JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Map())
}

// formatMetricValue prints counters as integers and everything else with
// enough precision to be useful.
func formatMetricValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%g", v)
}
