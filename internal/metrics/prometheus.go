// Prometheus text exposition (format version 0.0.4) for the instrument
// registry, so a stock Prometheus scraper can consume /metrics without
// any adapter. Counters and gauges render one sample each; histograms
// render natively as cumulative _bucket series plus _sum and _count —
// richer than the snapshot's precomputed quantiles, since the scraper
// can aggregate buckets across brokers before computing quantiles.
//
// Registry names compose labels by flat concatenation ("family{a,b}");
// the writer re-expands them into Prometheus label pairs with positional
// keys: a single value becomes {label="a"}, multiple become
// {label0="a",label1="b"}.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// PromContentType is the Content-Type of the 0.0.4 text exposition
// format, also the Accept value that selects it.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a family name into a valid Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// splitLabels decomposes a flat registry name into its family and label
// values ("bus_messages{summary}" → "bus_messages", ["summary"]).
func splitLabels(name string) (family string, labels []string) {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, "}") {
		return name, nil
	}
	return name[:open], strings.Split(name[open+1:len(name)-1], ",")
}

// promLabels renders label values as Prometheus label pairs, appending
// extra pairs (e.g. le for buckets) verbatim at the end.
func promLabels(labels []string, extra ...string) string {
	var pairs []string
	switch len(labels) {
	case 0:
	case 1:
		pairs = append(pairs, fmt.Sprintf("label=%q", labels[0]))
	default:
		for i, v := range labels {
			pairs = append(pairs, fmt.Sprintf("label%d=%q", i, v))
		}
	}
	pairs = append(pairs, extra...)
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

// promValue formats a sample value; Prometheus accepts +Inf/-Inf/NaN
// spellings.
func promValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%g", v)
	}
}

// promFamily is one metric family being assembled: all series sharing a
// family name and instrument kind.
type promFamily struct {
	name  string // sanitized family name
	kind  string // counter, gauge, histogram
	lines []string
}

// WritePrometheus renders every instrument in the Prometheus 0.0.4 text
// exposition format: families sorted by name, one # TYPE line per
// family, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type hist struct {
		labels []string
		h      *Histogram
	}
	fams := make(map[string]*promFamily)
	family := func(name, kind string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, kind: kind}
			fams[name] = f
		}
		return f
	}
	for name, c := range r.counters {
		fam, labels := splitLabels(name)
		fam = promName(fam)
		f := family(fam, "counter")
		f.lines = append(f.lines, fam+promLabels(labels)+" "+promValue(float64(c.Value())))
	}
	for name, g := range r.gauges {
		fam, labels := splitLabels(name)
		fam = promName(fam)
		f := family(fam, "gauge")
		f.lines = append(f.lines, fam+promLabels(labels)+" "+promValue(float64(g.Value())))
	}
	hists := make(map[string][]hist)
	for name, h := range r.hists {
		fam, labels := splitLabels(name)
		fam = promName(fam)
		family(fam, "histogram")
		hists[fam] = append(hists[fam], hist{labels: labels, h: h})
	}
	r.mu.Unlock()

	for fam, hs := range hists {
		f := fams[fam]
		sort.Slice(hs, func(i, j int) bool {
			return strings.Join(hs[i].labels, ",") < strings.Join(hs[j].labels, ",")
		})
		for _, hh := range hs {
			bounds, counts := hh.h.Buckets()
			var cum int64
			for i, n := range counts {
				cum += n
				le := "+Inf"
				if i < len(bounds) {
					le = promValue(bounds[i])
				}
				f.lines = append(f.lines, fam+"_bucket"+promLabels(hh.labels, fmt.Sprintf("le=%q", le))+" "+promValue(float64(cum)))
			}
			f.lines = append(f.lines,
				fam+"_sum"+promLabels(hh.labels)+" "+promValue(hh.h.Sum()),
				fam+"_count"+promLabels(hh.labels)+" "+promValue(float64(hh.h.Count())),
			)
		}
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if f.kind != "histogram" {
			// Counter/gauge series within a family sort by label; histogram
			// lines are already emitted with buckets in ascending le order,
			// which lexicographic sorting would scramble.
			sort.Strings(f.lines)
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}
