package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the full exposition output for a
// representative registry against a golden file, so any formatting drift
// (type lines, label expansion, bucket cumulation, ordering) shows up as
// a readable diff.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_published").Add(42)
	r.CounterVec("broker_matches").With("3").Add(7)
	r.CounterVec("broker_matches").With("11").Inc()
	r.Counter(Label("bus_bytes", "summary", "fwd")).Add(1024)
	r.Gauge("queue_depth").Set(5)
	r.Gauge("drift-rate").Set(-3) // '-' must sanitize to '_'
	h := r.Histogram("match_ns", []float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(100) // overflow bucket
	r.Histogram("empty_hist", []float64{1, 2})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Fatalf("exposition drift.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="2"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		`lat_count 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE lat histogram") != 1 {
		t.Errorf("expected exactly one TYPE line for lat:\n%s", out)
	}
}
