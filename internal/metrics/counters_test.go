package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterSetBasics(t *testing.T) {
	c := NewCounterSet()
	if c.Get("x") != 0 {
		t.Fatal("fresh counter not zero")
	}
	c.Add("x", 2)
	c.Add("x", 3)
	c.Add("y", 1)
	if c.Get("x") != 5 || c.Get("y") != 1 {
		t.Fatalf("counts = %v", c.Snapshot())
	}
	if c.Total() != 6 {
		t.Fatalf("total = %d, want 6", c.Total())
	}
	snap := c.Snapshot()
	snap["x"] = 99 // snapshot is a copy
	if c.Get("x") != 5 {
		t.Fatal("snapshot aliases internal state")
	}
	if got := c.Names(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("names = %v", got)
	}
}

func TestCounterSetZeroValueUsable(t *testing.T) {
	var c CounterSet
	c.Add("a", 1)
	if c.Get("a") != 1 {
		t.Fatal("zero-value CounterSet broken")
	}
}

func TestCounterSetNegativeDeltaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delta accepted")
		}
	}()
	NewCounterSet().Add("a", -1)
}

func TestCounterSetConcurrent(t *testing.T) {
	c := NewCounterSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add("hits", 1)
				_ = c.Get("hits")
				_ = c.Snapshot()
			}
		}()
	}
	wg.Wait()
	if c.Get("hits") != 8000 {
		t.Fatalf("hits = %d, want 8000", c.Get("hits"))
	}
}

func TestCounterSetTable(t *testing.T) {
	c := NewCounterSet()
	c.Add("summary.dropped", 3)
	c.Add("event.decode_errors", 1)
	out := c.Table("bus loss").String()
	if !strings.Contains(out, "bus loss") ||
		!strings.Contains(out, "summary.dropped") ||
		!strings.Contains(out, "event.decode_errors") {
		t.Fatalf("table output:\n%s", out)
	}
	// Rows are name-sorted: event.* before summary.*.
	if strings.Index(out, "event.decode_errors") > strings.Index(out, "summary.dropped") {
		t.Fatalf("rows not sorted:\n%s", out)
	}
}
