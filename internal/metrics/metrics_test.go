package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.P50 != 3 {
		t.Fatalf("P50 = %v", s.P50)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty Summary = %+v", z)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{2, 4, 6})
	if s.Mean != 4 || s.N != 3 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.P50 && s.P50 <= s.Max &&
			s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Figure X", "sigma", "broadcast", "summary")
	tab.AddRow(10, int64(123456), 42.5)
	tab.AddRow(1000, int64(9), 0.125)
	out := tab.String()
	if !strings.Contains(out, "Figure X") {
		t.Fatalf("missing title: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d: %s", len(lines), out)
	}
	if !strings.Contains(lines[1], "sigma") || !strings.Contains(lines[3], "123456") {
		t.Fatalf("table = %s", out)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "sigma,broadcast,summary\n") {
		t.Fatalf("CSV = %s", csv)
	}
	if !strings.Contains(csv, "10,123456,42.5") {
		t.Fatalf("CSV = %s", csv)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		500:           "500B",
		1500:          "1.50KB",
		2_500_000:     "2.50MB",
		3_000_000_000: "3.00GB",
		4e12:          "4.00TB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
