package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.P50 != 3 {
		t.Fatalf("P50 = %v", s.P50)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty Summary = %+v", z)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{2, 4, 6})
	if s.Mean != 4 || s.N != 3 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.P50 && s.P50 <= s.Max &&
			s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max &&
			s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Figure X", "sigma", "broadcast", "summary")
	tab.AddRow(10, int64(123456), 42.5)
	tab.AddRow(1000, int64(9), 0.125)
	out := tab.String()
	if !strings.Contains(out, "Figure X") {
		t.Fatalf("missing title: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d: %s", len(lines), out)
	}
	if !strings.Contains(lines[1], "sigma") || !strings.Contains(lines[3], "123456") {
		t.Fatalf("table = %s", out)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "sigma,broadcast,summary\n") {
		t.Fatalf("CSV = %s", csv)
	}
	if !strings.Contains(csv, "10,123456,42.5") {
		t.Fatalf("CSV = %s", csv)
	}
}

func TestSummarizeP99(t *testing.T) {
	// 1..100: nearest-rank percentiles of the integer ramp are exact.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.P50 != 51 {
		t.Errorf("P50 = %v, want 51", s.P50)
	}
	if s.P95 != 95 {
		t.Errorf("P95 = %v, want 95", s.P95)
	}
	if s.P99 != 99 {
		t.Errorf("P99 = %v, want 99", s.P99)
	}
	// A heavy-tailed sample: P99 must see the tail that P95 misses.
	tail := append(make([]float64, 0, 208), xs...)
	for i := 0; i < 98; i++ {
		tail = append(tail, 10)
	}
	for i := 0; i < 10; i++ {
		tail = append(tail, 5000+float64(i)*400)
	}
	st := Summarize(tail)
	if st.P99 < 1000 || st.P95 > 101 {
		t.Errorf("heavy tail: P95 = %v, P99 = %v", st.P95, st.P99)
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := NewTable("", "pattern", "count")
	tab.AddRow(`contains "a,b"`, 3)
	tab.AddRow("plain", 1)
	tab.AddRow("line\nbreak", 2)
	csv := tab.CSV()
	lines := strings.Split(csv, "\n")
	if lines[0] != "pattern,count" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `"contains ""a,b""",3` {
		t.Fatalf("quoted row = %q", lines[1])
	}
	if lines[2] != "plain,1" {
		t.Fatalf("plain row = %q", lines[2])
	}
	// The embedded newline stays inside one quoted cell.
	if !strings.Contains(csv, "\"line\nbreak\",2\n") {
		t.Fatalf("newline cell mangled: %q", csv)
	}
	// A comma-bearing column header must be quoted too.
	tab2 := NewTable("", "a,b")
	tab2.AddRow("x")
	if !strings.HasPrefix(tab2.CSV(), `"a,b"`+"\n") {
		t.Fatalf("header quoting: %q", tab2.CSV())
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		500:           "500B",
		1500:          "1.50KB",
		2_500_000:     "2.50MB",
		3_000_000_000: "3.00GB",
		4e12:          "4.00TB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
