// Metrics time-series: the Sampler turns the registry's point-in-time
// snapshot into retained history. On a fixed interval it walks every
// instrument, appends the current value to a fixed-capacity ring buffer
// per series, and — for cumulative series (counters, histogram counts and
// sums) — derives the per-interval delta and per-second rate, which are
// the numbers an operator actually wants ("how many false positives per
// second over the last minute", not "how many ever").
//
// Memory is provably bounded: capacity points per series, one series per
// flattened instrument name, and the instrument namespace itself is fixed
// at wiring time (per-broker families scale with the broker count, not
// with traffic).
package metrics

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"
)

// typedSample is one flattened instrument value tagged with whether it is
// cumulative (counter-like: deltas and rates are meaningful) or a point
// (gauge-like: only the value is).
type typedSample struct {
	name       string
	value      float64
	cumulative bool
}

// typedSnapshot flattens every instrument like Snapshot, additionally
// tagging each sample's kind. Histogram .count/.sum are cumulative;
// .mean/.p50/.p95/.p99 are points. Histograms whose family appears in
// bucketFams additionally emit one cumulative ".bucket<i>" series per
// bucket (the last index is the open +Inf bucket) — the raw counts a
// downstream evaluator needs to compute quantiles over a window of
// deltas rather than over the whole cumulative distribution. Bucket
// retention is opt-in per family because it multiplies the series count
// by the bucket count.
func (r *Registry) typedSnapshot(bucketFams []string) []typedSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]typedSample, 0, len(r.counters)+len(r.gauges)+6*len(r.hists))
	for name, c := range r.counters {
		out = append(out, typedSample{name, float64(c.Value()), true})
	}
	for name, g := range r.gauges {
		out = append(out, typedSample{name, float64(g.Value()), false})
	}
	for name, h := range r.hists {
		n := h.Count()
		mean, p50, p95, p99 := 0.0, 0.0, 0.0, 0.0
		if n > 0 {
			mean = h.Sum() / float64(n)
			p50, p95, p99 = h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
		}
		out = append(out,
			typedSample{name + ".count", float64(n), true},
			typedSample{name + ".sum", h.Sum(), true},
			typedSample{name + ".mean", mean, false},
			typedSample{name + ".p50", p50, false},
			typedSample{name + ".p95", p95, false},
			typedSample{name + ".p99", p99, false},
		)
		if familyMatches(name, bucketFams) {
			for i := range h.counts {
				out = append(out, typedSample{name + ".bucket" + strconv.Itoa(i), float64(h.counts[i].Load()), true})
			}
		}
	}
	return out
}

// familyMatches reports whether the instrument name belongs to one of
// the families: an exact match, or the family followed by a "{label}"
// suffix.
func familyMatches(name string, fams []string) bool {
	for _, f := range fams {
		if name == f || (len(name) > len(f) && name[:len(f)] == f && name[len(f)] == '{') {
			return true
		}
	}
	return false
}

// HistoryPoint is one retained sample of one series.
type HistoryPoint struct {
	// UnixMillis is the sample's wall-clock time.
	UnixMillis int64 `json:"t"`
	// Value is the instrument's raw value at sample time.
	Value float64 `json:"v"`
	// Delta is Value minus the previous sample's value (cumulative series
	// only; 0 on the series' first sample).
	Delta float64 `json:"d,omitempty"`
	// Rate is Delta divided by the actual elapsed seconds since the
	// previous sample (cumulative series only).
	Rate float64 `json:"r,omitempty"`
}

// HistorySeries is the retained window of one instrument, oldest first.
type HistorySeries struct {
	Name string `json:"name"`
	// Kind is "cumulative" (counter-like: Delta/Rate are meaningful) or
	// "point" (gauge-like).
	Kind   string         `json:"kind"`
	Points []HistoryPoint `json:"points"`
}

// Marker is one annotation stamped into the retained history — a
// scenario phase boundary, a fault injection, an operator note. Tick is
// the number of samples taken when the marker was recorded: points with
// index ≥ Tick (counting from the start of sampling, not the retained
// window) were sampled after the marker.
type Marker struct {
	UnixMillis int64  `json:"t"`
	Tick       int64  `json:"tick"`
	Label      string `json:"label"`
}

// History is a snapshot of the sampler's retained time-series, sorted by
// series name.
type History struct {
	IntervalSeconds float64         `json:"interval_seconds"`
	Capacity        int             `json:"capacity"`
	Ticks           int64           `json:"ticks"`
	Series          []HistorySeries `json:"series"`
	// Markers are retained annotations (phase boundaries), oldest first.
	Markers []Marker `json:"markers,omitempty"`
}

// Latest returns the most recent point of the named series, if any.
func (h *History) Latest(name string) (HistoryPoint, bool) {
	for i := range h.Series {
		if h.Series[i].Name == name {
			pts := h.Series[i].Points
			if len(pts) == 0 {
				return HistoryPoint{}, false
			}
			return pts[len(pts)-1], true
		}
	}
	return HistoryPoint{}, false
}

// seriesRing is one series' fixed-capacity point buffer.
type seriesRing struct {
	cumulative bool
	pts        []HistoryPoint // ring storage, len == capacity once full
	head       int            // index of the oldest point
	n          int            // points retained
	lastRaw    float64        // previous raw value (cumulative delta base)
	hasLast    bool
}

func (sr *seriesRing) push(p HistoryPoint, capacity int) {
	if sr.n < capacity {
		sr.pts = append(sr.pts, p)
		sr.n++
		return
	}
	sr.pts[sr.head] = p
	sr.head = (sr.head + 1) % capacity
}

// ordered returns the retained points oldest-first as a fresh slice.
func (sr *seriesRing) ordered() []HistoryPoint {
	out := make([]HistoryPoint, sr.n)
	for i := 0; i < sr.n; i++ {
		out[i] = sr.pts[(sr.head+i)%len(sr.pts)]
	}
	return out
}

// Sampler snapshots a registry on a fixed interval into per-series ring
// buffers. Create with NewSampler; drive with Start/Stop (background
// goroutine) or Tick (manual, for tests and single-shot collection).
type Sampler struct {
	reg      *Registry
	interval time.Duration
	capacity int

	mu         sync.Mutex
	series     map[string]*seriesRing
	ticks      int64
	lastTick   time.Time
	bucketFams []string
	markers    []Marker

	startOnce sync.Once
	stopOnce  sync.Once
	done      chan struct{}
	stopped   chan struct{}
}

// NewSampler builds a sampler over reg retaining capacity points per
// series, sampling every interval once started. Capacity is clamped to at
// least 2 (a delta needs a predecessor); interval to at least 10ms.
func NewSampler(reg *Registry, interval time.Duration, capacity int) *Sampler {
	if capacity < 2 {
		capacity = 2
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		capacity: capacity,
		series:   make(map[string]*seriesRing),
		done:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
}

// Start launches the sampling goroutine. Idempotent.
func (s *Sampler) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.stopped)
			ticker := time.NewTicker(s.interval)
			defer ticker.Stop()
			for {
				select {
				case <-s.done:
					return
				case now := <-ticker.C:
					s.Tick(now)
				}
			}
		}()
	})
}

// Stop halts the sampling goroutine and waits for it to exit. Retained
// history stays readable. Idempotent; safe even if Start was never
// called.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() { close(s.done) })
	s.startOnce.Do(func() { close(s.stopped) }) // never started: nothing to wait for
	<-s.stopped
}

// RetainBuckets opts histogram families into per-bucket series
// retention: every histogram whose name equals one of the families (or
// is a "family{label}" child) contributes cumulative ".bucket<i>"
// series from the next tick on. Call before Start for complete history.
func (s *Sampler) RetainBuckets(families ...string) {
	s.mu.Lock()
	s.bucketFams = append(s.bucketFams, families...)
	s.mu.Unlock()
}

// markerCap bounds retained markers; phase schedules are short, so the
// oldest markers are evicted long after their points have left the ring.
const markerCap = 256

// Mark stamps a labeled annotation into the history at the current tick
// position. Safe for concurrent use with Tick.
func (s *Sampler) Mark(label string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.markers = append(s.markers, Marker{UnixMillis: time.Now().UnixMilli(), Tick: s.ticks, Label: label})
	if len(s.markers) > markerCap {
		s.markers = s.markers[len(s.markers)-markerCap:]
	}
}

// Tick takes one sample immediately. Exported so tests (and single-shot
// collectors) can drive the sampler deterministically without wall-clock
// waits; Start uses it internally.
func (s *Sampler) Tick(now time.Time) {
	s.mu.Lock()
	fams := s.bucketFams
	s.mu.Unlock()
	samples := s.reg.typedSnapshot(fams)
	s.mu.Lock()
	defer s.mu.Unlock()
	elapsed := 0.0
	if !s.lastTick.IsZero() {
		elapsed = now.Sub(s.lastTick).Seconds()
	}
	s.lastTick = now
	s.ticks++
	for _, ts := range samples {
		sr, ok := s.series[ts.name]
		if !ok {
			sr = &seriesRing{cumulative: ts.cumulative, pts: make([]HistoryPoint, 0, s.capacity)}
			s.series[ts.name] = sr
		}
		p := HistoryPoint{UnixMillis: now.UnixMilli(), Value: ts.value}
		if ts.cumulative && sr.hasLast {
			p.Delta = ts.value - sr.lastRaw
			if elapsed > 0 {
				p.Rate = p.Delta / elapsed
			}
			// Guard against NaN leaking into JSON if a histogram sum ever
			// returns a non-finite value.
			if math.IsNaN(p.Delta) || math.IsInf(p.Delta, 0) {
				p.Delta, p.Rate = 0, 0
			}
			// A cumulative series can step backwards when the underlying
			// instrument is reset (a restarted network re-registering the
			// same family, or an explicit Registry reset between runs).
			// A negative delta would render as a nonsense negative rate;
			// clamp to zero and let the next interval re-baseline.
			if p.Delta < 0 {
				p.Delta, p.Rate = 0, 0
			}
		}
		sr.lastRaw = ts.value
		sr.hasLast = true
		sr.push(p, s.capacity)
	}
}

// History returns a deep snapshot of every retained series, sorted by
// name.
func (s *Sampler) History() *History {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := &History{
		IntervalSeconds: s.interval.Seconds(),
		Capacity:        s.capacity,
		Ticks:           s.ticks,
		Series:          make([]HistorySeries, 0, len(s.series)),
	}
	for name, sr := range s.series {
		kind := "point"
		if sr.cumulative {
			kind = "cumulative"
		}
		out.Series = append(out.Series, HistorySeries{Name: name, Kind: kind, Points: sr.ordered()})
	}
	sort.Slice(out.Series, func(i, j int) bool { return out.Series[i].Name < out.Series[j].Name })
	if len(s.markers) > 0 {
		out.Markers = append([]Marker(nil), s.markers...)
	}
	return out
}

// WriteJSON renders the history snapshot as JSON (the /debug/history
// document).
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s.History())
}
