package metrics

import (
	"sort"
	"sync"
)

// CounterSet is a group of named, monotonically increasing counters that is
// safe for concurrent use. The live engine uses it to account message loss
// and decode errors; lossy summarization is acceptable only when every
// dropped message is *counted* somewhere, so bandwidth/coverage figures
// stay honest under faults.
type CounterSet struct {
	mu     sync.Mutex
	counts map[string]int64
}

// NewCounterSet creates an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{counts: make(map[string]int64)}
}

// Add increments the named counter by delta (which must be non-negative;
// counters are monotonic). Unknown names are created on first use.
func (c *CounterSet) Add(name string, delta int64) {
	if delta < 0 {
		panic("metrics: negative delta on monotonic counter " + name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.counts == nil {
		c.counts = make(map[string]int64)
	}
	c.counts[name] += delta
}

// Get returns the named counter's value (0 if never incremented).
func (c *CounterSet) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// Total sums all counters.
func (c *CounterSet) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, v := range c.counts {
		n += v
	}
	return n
}

// Snapshot returns a copy of the current counter values.
func (c *CounterSet) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// Names returns the counter names in lexicographic order.
func (c *CounterSet) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.counts))
	for k := range c.counts {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Table renders the counters as a two-column table, rows sorted by name.
func (c *CounterSet) Table(title string) *Table {
	t := NewTable(title, "counter", "count")
	for _, name := range c.Names() {
		t.AddRow(name, c.Get(name))
	}
	return t
}
