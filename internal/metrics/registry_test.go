package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("events") != c {
		t.Fatal("same name returned a different counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative Add on counter did not panic")
			}
		}()
		c.Add(-1)
	}()

	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// Uniform 0..8 in 0.5 steps: quantiles are known to bucket precision.
	for v := 0.5; v <= 8; v += 0.5 {
		h.Observe(v)
	}
	if h.Count() != 16 {
		t.Fatalf("count = %d, want 16", h.Count())
	}
	if got, want := h.Sum(), 68.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Interpolated quantiles of a uniform sample track the value range.
	if p50 := h.Quantile(0.50); p50 < 3 || p50 > 5 {
		t.Fatalf("p50 = %v, want ≈4", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 7 || p99 > 8 {
		t.Fatalf("p99 = %v, want ≈8", p99)
	}
	// Out-of-range observations land in the open bucket and clamp to the
	// last bound.
	h.Observe(1e9)
	if q := h.Quantile(1.0); q != 8 {
		t.Fatalf("overflow quantile = %v, want clamp to 8", q)
	}
	bounds, counts := h.Buckets()
	if len(counts) != len(bounds)+1 {
		t.Fatalf("%d counts for %d bounds", len(counts), len(bounds))
	}
	if counts[len(counts)-1] != 1 {
		t.Fatalf("open bucket = %d, want 1", counts[len(counts)-1])
	}
}

func TestHistogramQuantileKnownDistribution(t *testing.T) {
	// 1..1000 against fine buckets: p50/p95/p99 must land within one
	// bucket width of the exact order statistics.
	h := NewHistogram(ExpBuckets(1, 1.25, 40))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 500, 125},
		{0.95, 950, 240},
		{0.99, 990, 250},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%.2f = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
	if h.Quantile(0.5) >= h.Quantile(0.95) || h.Quantile(0.95) >= h.Quantile(0.99) {
		t.Fatal("quantiles not monotone")
	}
}

func TestHistogramEmptyAndValidation(t *testing.T) {
	// An empty histogram has no quantiles: every q reports NaN, never a
	// fabricated 0 that could be confused with a real all-zero sample.
	h := NewHistogram([]float64{1, 2})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Fatalf("empty histogram Quantile(%v) = %v, want NaN", q, got)
		}
	}
	// But a registry snapshot of an empty histogram stays JSON-clean: the
	// derived quantile samples report 0, not NaN.
	r := NewRegistry()
	r.Histogram("empty_hist", []float64{1, 2})
	for _, s := range r.Snapshot() {
		if math.IsNaN(s.Value) {
			t.Fatalf("snapshot sample %s is NaN", s.Name)
		}
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON with empty histogram: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds accepted")
		}
	}()
	NewHistogram([]float64{2, 1})
}

// TestHistogramOverflowBucketQuantile pins the open-bucket behaviour:
// when the target rank lands among observations beyond the last finite
// bound, the estimate clamps to that bound instead of interpolating
// toward +Inf.
func TestHistogramOverflowBucketQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5) // first bucket
	for i := 0; i < 9; i++ {
		h.Observe(100) // open bucket
	}
	for _, q := range []float64{0.5, 0.95, 1.0} {
		got := h.Quantile(q)
		if math.IsInf(got, 1) || math.IsNaN(got) {
			t.Fatalf("Quantile(%v) = %v, must be finite", q, got)
		}
		if got != 2 {
			t.Fatalf("Quantile(%v) = %v, want clamp to last finite bound 2", q, got)
		}
	}
	// A quantile still inside the finite buckets is unaffected.
	if got := h.Quantile(0.05); got > 1 {
		t.Fatalf("Quantile(0.05) = %v, want ≤ 1", got)
	}
}

func TestRegistrySnapshotSortedFlat(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_last").Add(3)
	r.Gauge("a_first").Set(-2)
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q ≥ %q", snap[i-1].Name, snap[i].Name)
		}
	}
	m := r.Map()
	if m["z_last"] != 3 || m["a_first"] != -2 {
		t.Fatalf("map = %v", m)
	}
	if m["lat.count"] != 2 || m["lat.sum"] != 5.5 {
		t.Fatalf("histogram derived samples wrong: %v", m)
	}
	for _, want := range []string{"lat.mean", "lat.p50", "lat.p95", "lat.p99"} {
		if _, ok := m[want]; !ok {
			t.Errorf("snapshot missing %s", want)
		}
	}
}

func TestRegistryTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(7)
	r.Gauge("y").Set(2)
	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if got := text.String(); !strings.Contains(got, "x 7\n") || !strings.Contains(got, "y 2\n") {
		t.Fatalf("text = %q", got)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["x"] != 7 || m["y"] != 2 {
		t.Fatalf("json = %v", m)
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("broker_matches")
	v.With("3").Inc()
	v.With("3").Inc()
	v.With("11").Inc()
	if got := r.Counter("broker_matches{3}").Value(); got != 2 {
		t.Fatalf("broker_matches{3} = %d, want 2", got)
	}
	if got := r.Counter("broker_matches{11}").Value(); got != 1 {
		t.Fatalf("broker_matches{11} = %d, want 1", got)
	}
	if name := Label("f", "a", "b"); name != "f{a,b}" {
		t.Fatalf("Label = %q", name)
	}
	if name := Label("f"); name != "f" {
		t.Fatalf("Label no-labels = %q", name)
	}
	g := r.GaugeVec("depth").With("0")
	g.Set(5)
	if r.Gauge("depth{0}").Value() != 5 {
		t.Fatal("gauge family miswired")
	}
	h := r.HistogramVec("lat", []float64{1}).With("0")
	h.Observe(0.5)
	if r.Histogram("lat{0}", nil).Count() != 1 {
		t.Fatal("histogram family miswired")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat", []float64{1, 2, 4})
			for i := 0; i < 1000; i++ {
				c.Inc()
				r.Gauge(fmt.Sprintf("g%d", w)).Set(int64(i))
				h.Observe(float64(i % 5))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared = %d, want 8000", got)
	}
	if got := r.Histogram("lat", nil).Count(); got != 8000 {
		t.Fatalf("lat count = %d, want 8000", got)
	}
}

// BenchmarkRegistryInc proves the counter hot path allocates nothing: the
// instrument is looked up once at wiring time and incremented directly.
func BenchmarkRegistryInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("hot")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc() }); allocs != 0 {
		b.Fatalf("Counter.Inc allocates %v/op", allocs)
	}
}

// BenchmarkRegistryHistogramObserve covers the histogram hot path (bucket
// scan + CAS sum), which must also stay allocation-free.
func BenchmarkRegistryHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("lat", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-6)
	}
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(3e-5) }); allocs != 0 {
		b.Fatalf("Histogram.Observe allocates %v/op", allocs)
	}
}
