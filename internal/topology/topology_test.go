package topology

import (
	"strings"
	"testing"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New("t", 3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative node accepted")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge not symmetric")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

// TestFigure7TreeDegrees checks the reconstructed example tree against the
// degree facts stated in the paper's walkthrough of Figure 7.
func TestFigure7TreeDegrees(t *testing.T) {
	g := Figure7Tree()
	if g.Len() != 13 || g.NumEdges() != 12 {
		t.Fatalf("graph = %s", g)
	}
	if !g.Connected() {
		t.Fatal("not connected")
	}
	// Paper broker k = node k-1.
	wantDegree := map[int]int{
		1: 1, 2: 2, 3: 1, 4: 1, 5: 5, 6: 1, 7: 2,
		8: 3, 9: 1, 10: 2, 11: 3, 12: 1, 13: 1,
	}
	for broker, want := range wantDegree {
		if got := g.Degree(NodeID(broker - 1)); got != want {
			t.Errorf("broker %d degree = %d, want %d", broker, got, want)
		}
	}
	if g.MaxDegree() != 5 {
		t.Fatalf("MaxDegree = %d, want 5 (broker 5)", g.MaxDegree())
	}
	// Broker 5's neighbors are 2, 3, 4, 6, 7.
	neigh := g.Neighbors(4)
	want := []NodeID{1, 2, 3, 5, 6}
	if len(neigh) != len(want) {
		t.Fatalf("broker 5 neighbors = %v", neigh)
	}
	for i := range want {
		if neigh[i] != want[i] {
			t.Fatalf("broker 5 neighbors = %v, want %v", neigh, want)
		}
	}
}

func TestCW24Shape(t *testing.T) {
	g := CW24()
	if g.Len() != 24 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !g.Connected() {
		t.Fatal("not connected")
	}
	if got := g.MaxDegree(); got < 4 || got > 9 {
		t.Fatalf("MaxDegree = %d, want backbone-like 4..7", got)
	}
	if md := g.MeanDegree(); md < 2 || md > 4 {
		t.Fatalf("MeanDegree = %.2f, want backbone-like 2..4", md)
	}
	if d := g.Diameter(); d < 3 || d > 9 {
		t.Fatalf("Diameter = %d, want backbone-like", d)
	}
	if mh := g.MeanPairHops(); mh < 2 || mh > 5 {
		t.Fatalf("MeanPairHops = %.2f", mh)
	}
}

func TestBFSFrom(t *testing.T) {
	g := Figure7Tree()
	dist, parent := g.BFSFrom(0) // paper broker 1
	// Broker 1 → 2 is 1 hop; 1 → 5 is 2; 1 → 8 is 4 (1-2-5-7-8).
	if dist[1] != 1 || dist[4] != 2 || dist[7] != 4 {
		t.Fatalf("dist = %v", dist)
	}
	if parent[0] != -1 {
		t.Fatalf("root parent = %d", parent[0])
	}
	// Parent chain from node 7 (broker 8) leads back to 0.
	steps := 0
	for n := NodeID(7); n != 0; n = parent[n] {
		steps++
		if steps > 13 {
			t.Fatal("parent chain does not terminate")
		}
	}
	if steps != dist[7] {
		t.Fatalf("parent chain %d hops, dist %d", steps, dist[7])
	}
}

func TestNodesByDegreeDesc(t *testing.T) {
	g := Figure7Tree()
	order := g.NodesByDegreeDesc()
	if order[0] != 4 { // broker 5
		t.Fatalf("order[0] = %d, want 4 (broker 5)", order[0])
	}
	for i := 1; i < len(order); i++ {
		di, dj := g.Degree(order[i-1]), g.Degree(order[i])
		if di < dj {
			t.Fatal("order not by descending degree")
		}
		if di == dj && order[i-1] > order[i] {
			t.Fatal("ties not broken by ascending id")
		}
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		g         *Graph
		nodes     int
		edges     int
		maxDegree int
	}{
		{Ring(5), 5, 5, 2},
		{Star(6), 6, 5, 5},
		{Grid(3, 4), 12, 17, 4},
		{RandomTree(20, 1), 20, 19, -1},
		{Random(30, 10, 2), 30, 39, -1},
	}
	for _, c := range cases {
		if c.g.Len() != c.nodes {
			t.Errorf("%s: Len = %d, want %d", c.g.Name(), c.g.Len(), c.nodes)
		}
		if c.g.NumEdges() != c.edges {
			t.Errorf("%s: edges = %d, want %d", c.g.Name(), c.g.NumEdges(), c.edges)
		}
		if c.maxDegree > 0 && c.g.MaxDegree() != c.maxDegree {
			t.Errorf("%s: MaxDegree = %d, want %d", c.g.Name(), c.g.MaxDegree(), c.maxDegree)
		}
		if !c.g.Connected() {
			t.Errorf("%s: not connected", c.g.Name())
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(25, 8, 42)
	b := Random(25, 8, 42)
	if a.DOT() != b.DOT() {
		t.Fatal("same seed produced different graphs")
	}
	c := Random(25, 8, 43)
	if a.DOT() == c.DOT() {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestAllPairsHopsSymmetric(t *testing.T) {
	g := CW24()
	h := g.AllPairsHops()
	for i := range h {
		if h[i][i] != 0 {
			t.Fatalf("h[%d][%d] = %d", i, i, h[i][i])
		}
		for j := range h[i] {
			if h[i][j] != h[j][i] {
				t.Fatalf("asymmetric: h[%d][%d]=%d h[%d][%d]=%d", i, j, h[i][j], j, i, h[j][i])
			}
		}
	}
}

func TestDOTAndString(t *testing.T) {
	g := Ring(3)
	dot := g.DOT()
	if !strings.Contains(dot, "0 -- 1") || !strings.Contains(dot, "graph") {
		t.Fatalf("DOT = %s", dot)
	}
	if !strings.Contains(g.String(), "3 nodes") {
		t.Fatalf("String = %s", g.String())
	}
}

func TestATT33Shape(t *testing.T) {
	g := ATT33()
	if g.Len() != 33 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !g.Connected() {
		t.Fatal("not connected")
	}
	if got := g.MaxDegree(); got < 6 || got > 12 {
		t.Fatalf("MaxDegree = %d, want hub-like", got)
	}
	if md := g.MeanDegree(); md < 2.5 || md > 4.5 {
		t.Fatalf("MeanDegree = %.2f", md)
	}
	// Chicago (node 9) is the dominant hub, as in CW24.
	order := g.NodesByDegreeDesc()
	if order[0] != 9 {
		t.Fatalf("top hub = %d, want 9", order[0])
	}
}

func TestWaxman(t *testing.T) {
	g := Waxman(40, 0.4, 0.15, 7)
	if g.Len() != 40 || !g.Connected() {
		t.Fatalf("graph = %s connected=%v", g, g.Connected())
	}
	// Deterministic per seed.
	if g.DOT() != Waxman(40, 0.4, 0.15, 7).DOT() {
		t.Fatal("not deterministic")
	}
	if g.DOT() == Waxman(40, 0.4, 0.15, 8).DOT() {
		t.Fatal("seed has no effect")
	}
	// Higher alpha means denser graphs.
	dense := Waxman(40, 0.9, 0.3, 7)
	if dense.NumEdges() <= g.NumEdges() {
		t.Fatalf("alpha knob ineffective: %d <= %d", dense.NumEdges(), g.NumEdges())
	}
	// Degenerate parameters rejected.
	for _, fn := range []func(){
		func() { Waxman(1, 0.4, 0.1, 1) },
		func() { Waxman(10, 0.4, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Waxman parameters accepted")
				}
			}()
			fn()
		}()
	}
}

// TestPropagationShapesHoldOnAllTopologies: the headline propagation
// property (hops ≤ brokers, full coverage) holds on the full topology
// suite, including the new ATT33 and Waxman graphs.
func TestTopologySuiteConnectivity(t *testing.T) {
	for _, g := range []*Graph{CW24(), ATT33(), Figure7Tree(), Waxman(30, 0.4, 0.15, 3), Random(30, 12, 4), Grid(4, 6), Ring(9), Star(11)} {
		if !g.Connected() {
			t.Errorf("%s not connected", g.Name())
		}
		if g.MeanPairHops() <= 0 {
			t.Errorf("%s mean hops = %f", g.Name(), g.MeanPairHops())
		}
	}
}
