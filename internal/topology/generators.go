// Large-overlay generators for the 100–1000-broker scaling experiments
// (ROADMAP item 2). The paper's evaluation stops at the 24-node CW
// backbone; these three families — transit-stub, random-geometric, and
// preferential-attachment — are the standard internet-like topologies
// used to extend pub/sub evaluations beyond a single ISP map. All are
// deterministic per seed and connected by construction, so experiment
// results are reproducible bit-for-bit.
package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// TransitStub returns a GT-ITM-style two-level hierarchy: a small
// transit backbone (ring plus chords) with stub domains hanging off each
// transit node. See TransitStubRegions for the region structure.
func TransitStub(n int, seed int64) *Graph {
	g, _ := TransitStubRegions(n, seed)
	return g
}

// TransitStubRegions is TransitStub exposing the region assignment: the
// second return value maps each node to the index of the transit node
// whose subtree it belongs to (transit node i is its own region i).
// Workloads that want geographically correlated interests — the setting
// where summary-similarity subgrouping pays off — key their interest
// regions off this assignment.
//
// The shape scales with n: ~√n/2 transit nodes, each anchoring several
// stub domains of ~n/(4·transit) nodes (a random attachment tree plus a
// chord). Stub domains connect to their transit node through one
// gateway, with a second gateway to the next transit node on ~30% of
// domains (multi-homing), matching the GT-ITM defaults.
func TransitStubRegions(n int, seed int64) (*Graph, []int) {
	if n < 4 {
		panic("topology: transit-stub needs at least 4 nodes")
	}
	transit := int(math.Round(math.Sqrt(float64(n)) / 2))
	if transit < 2 {
		transit = 2
	}
	if transit > 32 {
		transit = 32
	}
	if transit > n/2 {
		transit = n / 2
	}
	g := New(fmt.Sprintf("transit-stub-%d", n), n)
	rng := rand.New(rand.NewSource(seed))
	regions := make([]int, n)

	// Transit backbone: ring plus cross-chords for path diversity.
	for i := 0; i < transit; i++ {
		regions[i] = i
		if transit > 2 || i == 0 {
			g.MustAddEdge(NodeID(i), NodeID((i+1)%transit))
		}
	}
	for i := 0; transit >= 6 && i < transit/2; i++ {
		a, b := NodeID(i), NodeID((i+transit/2)%transit)
		if !g.HasEdge(a, b) {
			g.MustAddEdge(a, b)
		}
	}

	// Stub domains: consecutive id blocks of size ~n/(4·transit), dealt
	// round-robin to transit parents so regions stay balanced.
	domainSize := n / (4 * transit)
	if domainSize < 2 {
		domainSize = 2
	}
	if domainSize > 12 {
		domainSize = 12
	}
	parent := 0
	for lo := transit; lo < n; lo += domainSize {
		hi := lo + domainSize
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			regions[i] = parent
		}
		// Random attachment tree inside the domain, plus one chord when
		// the domain is big enough to have a non-tree edge.
		for i := lo + 1; i < hi; i++ {
			g.MustAddEdge(NodeID(i), NodeID(lo+rng.Intn(i-lo)))
		}
		if hi-lo >= 4 {
			for {
				a, b := NodeID(lo+rng.Intn(hi-lo)), NodeID(lo+rng.Intn(hi-lo))
				if a != b && !g.HasEdge(a, b) {
					g.MustAddEdge(a, b)
					break
				}
			}
		}
		// Gateway up to the transit parent; multi-home the last node to
		// the next transit node on some domains.
		g.MustAddEdge(NodeID(lo), NodeID(parent))
		if second := (parent + 1) % transit; second != parent && rng.Float64() < 0.3 {
			if !g.HasEdge(NodeID(hi-1), NodeID(second)) {
				g.MustAddEdge(NodeID(hi-1), NodeID(second))
			}
		}
		parent = (parent + 1) % transit
	}
	return g, regions
}

// RandomGeometric returns a random geometric graph: n points placed
// uniformly on the unit square, every pair within the given radius
// linked. A radius ≤ 0 picks 1.4× the connectivity threshold
// √(ln n / πn). Components left over after the radius pass are bridged
// by the geometrically closest inter-component pair, so the graph is
// always connected while staying locality-faithful. Deterministic per
// seed.
func RandomGeometric(n int, radius float64, seed int64) *Graph {
	if n < 2 {
		panic("topology: random-geometric needs at least 2 nodes")
	}
	if radius <= 0 {
		radius = 1.4 * math.Sqrt(math.Log(float64(n))/(math.Pi*float64(n)))
	}
	g := New(fmt.Sprintf("geo-%d", n), n)
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	dist2 := func(i, j int) float64 {
		dx, dy := xs[i]-xs[j], ys[i]-ys[j]
		return dx*dx + dy*dy
	}
	r2 := radius * radius
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dist2(i, j) <= r2 {
				g.MustAddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	// Bridge remaining components along the shortest gaps.
	for {
		dist, _ := g.BFSFrom(0)
		bestI, bestJ, bestD := -1, -1, math.MaxFloat64
		for i := 0; i < n; i++ {
			if dist[i] < 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if dist[j] >= 0 {
					continue
				}
				if d := dist2(i, j); d < bestD {
					bestI, bestJ, bestD = i, j, d
				}
			}
		}
		if bestI < 0 {
			return g
		}
		g.MustAddEdge(NodeID(bestI), NodeID(bestJ))
	}
}

// PreferentialAttachment returns a Barabási–Albert scale-free overlay:
// a seed clique of m+1 nodes, then each new node attaches to m distinct
// existing nodes chosen proportionally to degree. The resulting hub
// structure is the stress case for Algorithm 3's degree-ordered walk —
// a few brokers of very high degree dominate the examination order.
// m ≤ 0 defaults to 2. Deterministic per seed.
func PreferentialAttachment(n, m int, seed int64) *Graph {
	if m <= 0 {
		m = 2
	}
	if n < m+2 {
		panic("topology: preferential-attachment needs at least m+2 nodes")
	}
	g := New(fmt.Sprintf("pa-%d", n), n)
	rng := rand.New(rand.NewSource(seed))
	// ends holds one entry per edge endpoint, so sampling uniformly from
	// it is sampling nodes proportionally to degree.
	ends := make([]NodeID, 0, 2*(m*(m+1)/2+(n-m-1)*m))
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.MustAddEdge(NodeID(i), NodeID(j))
			ends = append(ends, NodeID(i), NodeID(j))
		}
	}
	targets := make(map[NodeID]bool, m)
	for v := m + 1; v < n; v++ {
		for k := range targets {
			delete(targets, k)
		}
		for len(targets) < m {
			targets[ends[rng.Intn(len(ends))]] = true
		}
		for _, t := range sortedNodes(targets) {
			g.MustAddEdge(NodeID(v), t)
			ends = append(ends, NodeID(v), t)
		}
	}
	return g
}

func sortedNodes(set map[NodeID]bool) []NodeID {
	out := make([]NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	// Insertion into id order: edge insertion order must not depend on
	// map iteration order or determinism per seed is lost.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
