package topology

import "testing"

func TestTransitStubShape(t *testing.T) {
	for _, n := range []int{4, 24, 64, 128, 256, 512, 1000} {
		g, regions := TransitStubRegions(n, 7)
		if g.Len() != n {
			t.Fatalf("n=%d: got %d nodes", n, g.Len())
		}
		if !g.Connected() {
			t.Fatalf("n=%d: not connected", n)
		}
		if len(regions) != n {
			t.Fatalf("n=%d: %d region entries", n, len(regions))
		}
		// Regions are contiguous 0..R-1, each non-empty, and every stub
		// node's region names a transit node that is its own region.
		maxR := 0
		for i, r := range regions {
			if r < 0 || r >= n {
				t.Fatalf("n=%d: node %d region %d out of range", n, i, r)
			}
			if regions[r] != r {
				t.Fatalf("n=%d: region %d is not anchored at a transit node", n, r)
			}
			if r > maxR {
				maxR = r
			}
		}
		counts := make([]int, maxR+1)
		for _, r := range regions {
			counts[r]++
		}
		for r, c := range counts {
			if c == 0 {
				t.Fatalf("n=%d: region %d empty", n, r)
			}
		}
		if n >= 64 && maxR+1 < 4 {
			t.Fatalf("n=%d: only %d regions, want a real hierarchy", n, maxR+1)
		}
	}
}

func TestTransitStubDeterministic(t *testing.T) {
	a, ra := TransitStubRegions(128, 3)
	b, rb := TransitStubRegions(128, 3)
	if a.DOT() != b.DOT() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("same seed produced different regions at node %d", i)
		}
	}
	c := TransitStub(128, 4)
	if a.DOT() == c.DOT() {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRandomGeometric(t *testing.T) {
	for _, n := range []int{2, 24, 128, 500} {
		g := RandomGeometric(n, 0, 11)
		if g.Len() != n || !g.Connected() {
			t.Fatalf("n=%d: len=%d connected=%v", n, g.Len(), g.Connected())
		}
	}
	a := RandomGeometric(200, 0, 5)
	b := RandomGeometric(200, 0, 5)
	if a.DOT() != b.DOT() {
		t.Fatal("same seed produced different graphs")
	}
	// A tiny radius exercises the component-bridging pass.
	tiny := RandomGeometric(50, 0.01, 9)
	if !tiny.Connected() {
		t.Fatal("bridging pass left the graph disconnected")
	}
}

func TestPreferentialAttachment(t *testing.T) {
	for _, n := range []int{10, 128, 1000} {
		g := PreferentialAttachment(n, 2, 13)
		if g.Len() != n || !g.Connected() {
			t.Fatalf("n=%d: len=%d connected=%v", n, g.Len(), g.Connected())
		}
		// Scale-free overlays concentrate degree: the hubs must clearly
		// exceed the mean.
		if n >= 128 && float64(g.MaxDegree()) < 3*g.MeanDegree() {
			t.Fatalf("n=%d: max degree %d vs mean %.1f — no hub structure", n, g.MaxDegree(), g.MeanDegree())
		}
	}
	a := PreferentialAttachment(300, 3, 2)
	b := PreferentialAttachment(300, 3, 2)
	if a.DOT() != b.DOT() {
		t.Fatal("same seed produced different graphs")
	}
}
