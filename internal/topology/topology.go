// Package topology models the broker overlay networks of the
// subscription-summarization paper's evaluation (Section 5.2): the 24-node
// ISP backbone the experiments run on, the 13-broker example tree of
// Figure 7, and generators for random, tree, ring, star, and grid
// overlays. It provides the graph queries the propagation and routing
// algorithms need: degrees, BFS hop distances, and per-source spanning
// trees (for the Siena comparator's subscription forwarding).
package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// NodeID identifies a broker in the overlay (0-based).
type NodeID int

// Graph is an undirected, connected broker overlay. Build with New and
// AddEdge, or use one of the constructors.
type Graph struct {
	name  string
	adj   [][]NodeID // sorted adjacency lists
	edges int
}

// New returns a graph with n isolated nodes.
func New(name string, n int) *Graph {
	if n < 1 {
		panic("topology: graph needs at least one node")
	}
	return &Graph{name: name, adj: make([][]NodeID, n)}
}

// Name returns the topology's human-readable name.
func (g *Graph) Name() string { return g.name }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// AddEdge inserts an undirected edge; self-loops and duplicates are
// rejected.
func (g *Graph) AddEdge(a, b NodeID) error {
	if a == b {
		return fmt.Errorf("topology: self-loop at %d", a)
	}
	if !g.valid(a) || !g.valid(b) {
		return fmt.Errorf("topology: edge %d-%d out of range", a, b)
	}
	if g.HasEdge(a, b) {
		return fmt.Errorf("topology: duplicate edge %d-%d", a, b)
	}
	g.adj[a] = insertSorted(g.adj[a], b)
	g.adj[b] = insertSorted(g.adj[b], a)
	g.edges++
	return nil
}

// MustAddEdge is AddEdge panicking on error; for literal topologies.
func (g *Graph) MustAddEdge(a, b NodeID) {
	if err := g.AddEdge(a, b); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < len(g.adj) }

// HasEdge reports whether a and b are neighbors.
func (g *Graph) HasEdge(a, b NodeID) bool {
	if !g.valid(a) || !g.valid(b) {
		return false
	}
	list := g.adj[a]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= b })
	return i < len(list) && list[i] == b
}

// Neighbors returns the sorted neighbor list of n (shared; do not mutate).
func (g *Graph) Neighbors(n NodeID) []NodeID { return g.adj[n] }

// Degree returns the number of neighbors of n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// MaxDegree returns the maximum degree over all nodes (the iteration count
// of the paper's Algorithm 2).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, l := range g.adj {
		if len(l) > max {
			max = len(l)
		}
	}
	return max
}

// MeanDegree returns the average node degree.
func (g *Graph) MeanDegree() float64 {
	return 2 * float64(g.edges) / float64(len(g.adj))
}

// NodesByDegreeDesc returns all node ids sorted by decreasing degree,
// ties broken by ascending id (the deterministic order Algorithm 3 uses to
// pick "the broker with the greatest degree not in BROCLIe").
func (g *Graph) NodesByDegreeDesc() []NodeID {
	out := make([]NodeID, len(g.adj))
	for i := range out {
		out[i] = NodeID(i)
	}
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := g.Degree(out[i]), g.Degree(out[j])
		if di != dj {
			return di > dj
		}
		return out[i] < out[j]
	})
	return out
}

// BFSFrom returns the hop distance from src to every node (-1 if
// unreachable) and the BFS parent of each node (-1 for src/unreachable).
// The BFS tree is the minimum-hop spanning tree rooted at src, which is
// what the Siena comparator uses both for per-source subscription
// forwarding and reverse-path event routing.
func (g *Graph) BFSFrom(src NodeID) (dist []int, parent []NodeID) {
	dist = make([]int, len(g.adj))
	parent = make([]NodeID, len(g.adj))
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range g.adj[n] {
			if dist[m] < 0 {
				dist[m] = dist[n] + 1
				parent[m] = n
				queue = append(queue, m)
			}
		}
	}
	return dist, parent
}

// Connected reports whether every node is reachable from node 0.
func (g *Graph) Connected() bool {
	dist, _ := g.BFSFrom(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// AllPairsHops returns the full hop-distance matrix.
func (g *Graph) AllPairsHops() [][]int {
	out := make([][]int, len(g.adj))
	for i := range out {
		out[i], _ = g.BFSFrom(NodeID(i))
	}
	return out
}

// MeanPairHops returns the mean hop distance over ordered distinct pairs
// (the "average number of hops from any broker to any other" of the
// baseline cost model in Section 5.2.1).
func (g *Graph) MeanPairHops() float64 {
	total, pairs := 0, 0
	for i := 0; i < len(g.adj); i++ {
		dist, _ := g.BFSFrom(NodeID(i))
		for j, d := range dist {
			if i != j && d > 0 {
				total += d
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(total) / float64(pairs)
}

// Diameter returns the maximum hop distance between any pair.
func (g *Graph) Diameter() int {
	max := 0
	for i := 0; i < len(g.adj); i++ {
		dist, _ := g.BFSFrom(NodeID(i))
		for _, d := range dist {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// DOT renders the graph in Graphviz format for inspection.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", g.name)
	for a := range g.adj {
		for _, n := range g.adj[a] {
			if NodeID(a) < n {
				fmt.Fprintf(&b, "  %d -- %d;\n", a, n)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("%s: %d nodes, %d edges, max degree %d, mean degree %.2f",
		g.name, g.Len(), g.edges, g.MaxDegree(), g.MeanDegree())
}

func insertSorted(list []NodeID, n NodeID) []NodeID {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= n })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = n
	return list
}

// Figure7Tree returns the 13-broker example tree of the paper's Figure 7.
// Node k here is the paper's broker k+1; e.g. node 4 is the paper's
// highest-degree broker 5. Degrees: paper brokers 1,3,4,6,9,12,13 have
// degree 1; 2,7,10 degree 2; 8,11 degree 3; 5 degree 5.
func Figure7Tree() *Graph {
	g := New("figure7", 13)
	edges := [][2]int{
		{1, 2}, {2, 5}, {3, 5}, {4, 5}, {6, 5}, {7, 5},
		{7, 8}, {9, 8}, {10, 8}, {10, 11}, {12, 11}, {13, 11},
	}
	for _, e := range edges {
		g.MustAddEdge(NodeID(e[0]-1), NodeID(e[1]-1))
	}
	return g
}

// CW24 returns a 24-node broker overlay approximating the Cable & Wireless
// plc US backbone used in the paper's evaluation (reference [4] is a dead
// 2004 URL; this mesh reproduces the published degree profile of C&W/AT&T
// backbone maps of that era: 24 nodes, ~33 links, max degree 6, mean
// degree ≈ 2.8). Figures 8–11 depend on node count, degree distribution,
// and hop distances, all preserved here; the paper notes results are
// similar across all tested topologies.
func CW24() *Graph {
	g := New("cw24", 24)
	// Node roles: 0 Seattle, 1 San Jose, 2 Los Angeles, 3 Phoenix,
	// 4 Salt Lake, 5 Denver, 6 Dallas, 7 Houston, 8 Kansas City,
	// 9 Chicago, 10 St Louis, 11 Atlanta, 12 Miami, 13 Washington DC,
	// 14 New York, 15 Newark, 16 Boston, 17 Philadelphia, 18 Cleveland,
	// 19 Detroit, 20 Minneapolis, 21 Nashville, 22 New Orleans,
	// 23 Raleigh.
	edges := [][2]int{
		{0, 1}, {0, 4}, {0, 20},
		{1, 2}, {1, 4}, {1, 9},
		{2, 3}, {2, 6},
		{3, 6},
		{4, 5},
		{5, 8}, {5, 9},
		{6, 7}, {6, 8}, {6, 21}, {6, 9},
		{7, 22},
		{8, 10}, {8, 9},
		{9, 19}, {9, 20}, {9, 14}, {9, 18}, {9, 11},
		{10, 21},
		{11, 21}, {11, 12}, {11, 13}, {11, 22}, {11, 23},
		{12, 22},
		{13, 14}, {13, 17}, {13, 23},
		{14, 15}, {14, 16}, {14, 17},
		{15, 16},
		{18, 19},
	}
	for _, e := range edges {
		g.MustAddEdge(NodeID(e[0]), NodeID(e[1]))
	}
	return g
}

// ATT33 returns a 33-node broker overlay in the style of the AT&T IP
// backbone of the paper's era — the upper end of the "20 to 33 backbone
// nodes" range of single-ISP CDNs the paper cites. Like CW24 it is a
// sparse mesh with regional hubs; Chicago (node 9), Dallas (node 6), and
// Atlanta (node 11) anchor the core, with a second tier of metro hubs.
func ATT33() *Graph {
	g := New("att33", 33)
	// Nodes 0-23 mirror the CW24 roles; 24-32 add: 24 Portland,
	// 25 Sacramento, 26 Las Vegas, 27 Austin, 28 Memphis, 29 Indianapolis,
	// 30 Pittsburgh, 31 Hartford, 32 Orlando.
	edges := [][2]int{
		{0, 1}, {0, 4}, {0, 20}, {0, 24},
		{1, 2}, {1, 4}, {1, 9}, {1, 25},
		{2, 3}, {2, 6}, {2, 26},
		{3, 6}, {3, 26},
		{4, 5},
		{5, 8}, {5, 9},
		{6, 7}, {6, 8}, {6, 21}, {6, 9}, {6, 27},
		{7, 22}, {7, 27},
		{8, 10}, {8, 9},
		{9, 19}, {9, 20}, {9, 14}, {9, 18}, {9, 11}, {9, 29},
		{10, 21}, {10, 28},
		{11, 21}, {11, 12}, {11, 13}, {11, 22}, {11, 23}, {11, 32},
		{12, 22}, {12, 32},
		{13, 14}, {13, 17}, {13, 23}, {13, 30},
		{14, 15}, {14, 16}, {14, 17}, {14, 31},
		{15, 16},
		{16, 31},
		{18, 19}, {18, 30},
		{21, 28},
		{24, 25},
		{29, 10},
	}
	for _, e := range edges {
		g.MustAddEdge(NodeID(e[0]), NodeID(e[1]))
	}
	return g
}

// Waxman returns a connected random overlay with the Waxman locality
// model: nodes are placed uniformly on the unit square and each pair is
// linked with probability alpha·exp(−d/(beta·√2)), where d is Euclidean
// distance; a random spanning tree guarantees connectivity. Classic
// parameters are alpha ≈ 0.4, beta ≈ 0.1 for sparse internet-like graphs.
// Deterministic per seed.
func Waxman(n int, alpha, beta float64, seed int64) *Graph {
	if n < 2 {
		panic("topology: waxman needs at least 2 nodes")
	}
	if beta <= 0 {
		panic("topology: waxman beta must be positive")
	}
	g := New(fmt.Sprintf("waxman-%d", n), n)
	rng := rand.New(rand.NewSource(seed))
	type point struct{ x, y float64 }
	pts := make([]point, n)
	for i := range pts {
		pts[i] = point{x: rng.Float64(), y: rng.Float64()}
	}
	maxDist := math.Sqrt2
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := pts[i].x-pts[j].x, pts[i].y-pts[j].y
			d := math.Sqrt(dx*dx + dy*dy)
			if rng.Float64() < alpha*math.Exp(-d/(beta*maxDist)) {
				g.MustAddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	// Guarantee connectivity with a random attachment tree over the
	// missing links.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a, b := NodeID(perm[i]), NodeID(perm[rng.Intn(i)])
		if !g.HasEdge(a, b) {
			g.MustAddEdge(a, b)
		}
	}
	return g
}

// Random returns a connected random overlay: a uniform random spanning
// tree plus extraEdges additional distinct random edges. Deterministic for
// a given seed.
func Random(n, extraEdges int, seed int64) *Graph {
	g := New(fmt.Sprintf("random-%d-%d", n, extraEdges), n)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		// Attach each node to a random earlier node: uniform attachment tree.
		a := NodeID(perm[i])
		b := NodeID(perm[rng.Intn(i)])
		g.MustAddEdge(a, b)
	}
	for added := 0; added < extraEdges; {
		a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if a == b || g.HasEdge(a, b) {
			continue
		}
		g.MustAddEdge(a, b)
		added++
	}
	return g
}

// RandomTree returns a connected random tree on n nodes.
func RandomTree(n int, seed int64) *Graph {
	g := Random(n, 0, seed)
	g.name = fmt.Sprintf("tree-%d", n)
	return g
}

// Ring returns a cycle of n ≥ 3 nodes.
func Ring(n int) *Graph {
	if n < 3 {
		panic("topology: ring needs at least 3 nodes")
	}
	g := New(fmt.Sprintf("ring-%d", n), n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(NodeID(i), NodeID((i+1)%n))
	}
	return g
}

// Star returns a star of n ≥ 2 nodes with node 0 at the hub.
func Star(n int) *Graph {
	if n < 2 {
		panic("topology: star needs at least 2 nodes")
	}
	g := New(fmt.Sprintf("star-%d", n), n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, NodeID(i))
	}
	return g
}

// Grid returns a rows×cols mesh.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic("topology: grid needs at least 2 nodes")
	}
	g := New(fmt.Sprintf("grid-%dx%d", rows, cols), rows*cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}
