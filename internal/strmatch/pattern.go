// Package strmatch implements the String Attribute Constraint Summary
// (SACS) of Section 3.1 of the subscription-summarization paper: for one
// string attribute, an array of covering (generalizing) pattern rows, each
// carrying the subscription ids whose constraint the row covers, plus a
// not-equal list for the ≠ operator.
//
// A row's pattern covers a constraint when every string satisfying the
// constraint also satisfies the pattern (e.g. "m*t" covers "microsoft" and
// "micronet"). Covering is decided soundly: Covers never returns true for
// a pair that is not a true subsumption, but may conservatively return
// false for exotic glob pairs.
package strmatch

import (
	"strings"

	"github.com/subsum/subsum/internal/schema"
)

// Pattern is the canonical form of a string constraint: an operator from
// {=, ≠, prefix, suffix, contains, glob} and its text.
type Pattern struct {
	Op   schema.Op
	Text string
}

// New canonicalizes a string constraint into a Pattern. Glob texts whose
// stars are redundant fold into the cheaper operators (e.g. glob "abc*"
// becomes prefix "abc").
func New(op schema.Op, text string) Pattern {
	if op == schema.OpGlob {
		op, text = schema.CanonGlob(text)
	}
	return Pattern{Op: op, Text: text}
}

// FromConstraint converts a schema string constraint to a Pattern.
func FromConstraint(c schema.Constraint) Pattern {
	return New(c.Op, c.Value.Str)
}

// Matches reports whether s satisfies the pattern.
func (p Pattern) Matches(s string) bool {
	switch p.Op {
	case schema.OpEQ:
		return s == p.Text
	case schema.OpNE:
		return s != p.Text
	case schema.OpPrefix:
		return strings.HasPrefix(s, p.Text)
	case schema.OpSuffix:
		return strings.HasSuffix(s, p.Text)
	case schema.OpContains:
		return strings.Contains(s, p.Text)
	case schema.OpGlob:
		return schema.GlobMatch(p.Text, s)
	default:
		return false
	}
}

// sentinel separates glob segments in the covering check. Patterns or
// texts containing it make the check fall back to simple equality, keeping
// Covers sound.
const sentinel = "\x00"

// Covers reports whether a subsumes b: every string matching b matches a.
// The check is sound (never true for a non-subsumption) and complete for
// all operator pairs except some glob-vs-glob corner cases, where it is
// conservatively false. Not-equal patterns only cover themselves (folding
// other constraints into a ≠ row would make the summary uselessly
// general, so the SACS keeps ≠ entries in a separate list anyway).
func Covers(a, b Pattern) bool {
	if a == b {
		return true
	}
	if a.Op == schema.OpNE || b.Op == schema.OpNE {
		return false
	}
	// Exact subject: just evaluate.
	if b.Op == schema.OpEQ {
		return a.Matches(b.Text)
	}
	// An equality pattern covers nothing but itself among non-equality
	// constraints (they all match infinitely many strings).
	if a.Op == schema.OpEQ {
		return false
	}
	ga, ok := schema.GlobOf(a.Op, a.Text)
	if !ok {
		return false
	}
	gb, ok := schema.GlobOf(b.Op, b.Text)
	if !ok {
		return false
	}
	if strings.Contains(ga, sentinel) || strings.Contains(gb, sentinel) {
		return false
	}
	// Generic-instantiation construction: replace each of b's stars with a
	// sentinel byte that no literal can match. If glob a matches that
	// pseudo-string (stars absorbing sentinels freely), then a's literal
	// segments embed into b's literal segments in order, which yields a
	// matching of a against ANY instantiation of b's stars.
	pseudo := strings.ReplaceAll(gb, "*", sentinel)
	return schema.GlobMatch(ga, pseudo)
}

// WireSize returns the pattern's size in bytes under the paper's cost
// model: the string payload (one byte per character, average s_sv) plus
// one operator byte.
func (p Pattern) WireSize() int { return 1 + len(p.Text) }

// String renders the pattern in the paper's notation, e.g. `>* "OT"`.
func (p Pattern) String() string {
	return p.Op.String() + " " + p.Text
}
