package strmatch

import (
	"sort"

	"github.com/subsum/subsum/internal/schema"
)

// opIndex is a derived, immutable index over a Set's pattern rows, built
// lazily on first lookup and discarded whenever the row slice changes. It
// groups rows by operator class so a lookup touches only the rows that
// could match a value: prefix rows are probed by binary search over their
// sorted texts (one probe per distinct pattern length), suffix rows
// likewise over their byte-reversed texts, and only contains/glob rows
// remain on the linear scan path. Equality and ≠ rows already live in
// hash maps on the Set itself.
type opIndex struct {
	prefixTexts []string // prefix pattern texts, sorted
	prefixRows  []int    // pats index per sorted text
	prefixLens  []int    // distinct prefix text lengths, ascending
	suffixTexts []string // suffix pattern texts byte-reversed, sorted
	suffixRows  []int
	suffixLens  []int
	scan        []int // contains/glob rows: no sublinear structure exists
}

func buildIndex(pats []Row) *opIndex {
	ix := &opIndex{}
	for i, r := range pats {
		switch r.Pattern.Op {
		case schema.OpPrefix:
			ix.prefixTexts = append(ix.prefixTexts, r.Pattern.Text)
			ix.prefixRows = append(ix.prefixRows, i)
		case schema.OpSuffix:
			ix.suffixTexts = append(ix.suffixTexts, reverse(r.Pattern.Text))
			ix.suffixRows = append(ix.suffixRows, i)
		default:
			ix.scan = append(ix.scan, i)
		}
	}
	ix.prefixLens = sortTexts(ix.prefixTexts, ix.prefixRows)
	ix.suffixLens = sortTexts(ix.suffixTexts, ix.suffixRows)
	return ix
}

// prefixMatchRange returns the half-open range of sorted prefix texts equal
// to key. InsertMany's covering fold keeps pattern rows an antichain, so
// the range has at most one element for well-formed sets; decoded sets may
// carry duplicates, which the range form still handles.
func (ix *opIndex) prefixMatchRange(key string) (int, int) {
	lo := sort.SearchStrings(ix.prefixTexts, key)
	hi := lo
	for hi < len(ix.prefixTexts) && ix.prefixTexts[hi] == key {
		hi++
	}
	return lo, hi
}

// suffixMatchRange returns the half-open range of sorted reversed suffix
// texts equal to the reversal of v's last l bytes, comparing in place so
// the lookup allocates nothing.
func (ix *opIndex) suffixMatchRange(v string, l int) (int, int) {
	lo, hi := 0, len(ix.suffixTexts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmpRevSuffix(ix.suffixTexts[mid], v, l) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	end := lo
	for end < len(ix.suffixTexts) && cmpRevSuffix(ix.suffixTexts[end], v, l) == 0 {
		end++
	}
	return lo, end
}

// cmpRevSuffix compares a stored (byte-reversed) suffix text t against the
// reversal of v's last l bytes without materializing either string.
func cmpRevSuffix(t, v string, l int) int {
	n := len(t)
	if l < n {
		n = l
	}
	for i := 0; i < n; i++ {
		c := v[len(v)-1-i]
		switch {
		case t[i] < c:
			return -1
		case t[i] > c:
			return 1
		}
	}
	switch {
	case len(t) == l:
		return 0
	case len(t) < l:
		return -1
	default:
		return 1
	}
}

// sortTexts co-sorts texts and their row indices by text and returns the
// distinct text lengths in ascending order.
func sortTexts(texts []string, rows []int) []int {
	sort.Sort(&textSort{texts: texts, rows: rows})
	var lens []int
	for i, t := range texts {
		if i == 0 || len(t) != len(texts[i-1]) {
			lens = append(lens, len(t))
		}
	}
	sort.Ints(lens)
	return dedupInts(lens)
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

type textSort struct {
	texts []string
	rows  []int
}

func (s *textSort) Len() int           { return len(s.texts) }
func (s *textSort) Less(i, j int) bool { return s.texts[i] < s.texts[j] }
func (s *textSort) Swap(i, j int) {
	s.texts[i], s.texts[j] = s.texts[j], s.texts[i]
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
}

// reverse returns s with its bytes in reverse order.
func reverse(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}
