package strmatch

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/subsum/subsum/internal/schema"
)

func pat(op schema.Op, text string) Pattern { return New(op, text) }

func TestNewCanonicalizesGlobs(t *testing.T) {
	cases := []struct {
		in   Pattern
		want Pattern
	}{
		{New(schema.OpGlob, "abc"), Pattern{Op: schema.OpEQ, Text: "abc"}},
		{New(schema.OpGlob, "abc*"), Pattern{Op: schema.OpPrefix, Text: "abc"}},
		{New(schema.OpGlob, "*abc"), Pattern{Op: schema.OpSuffix, Text: "abc"}},
		{New(schema.OpGlob, "*abc*"), Pattern{Op: schema.OpContains, Text: "abc"}},
		{New(schema.OpGlob, "a*b"), Pattern{Op: schema.OpGlob, Text: "a*b"}},
		{New(schema.OpPrefix, "abc"), Pattern{Op: schema.OpPrefix, Text: "abc"}},
	}
	for _, c := range cases {
		if c.in != c.want {
			t.Errorf("got %+v, want %+v", c.in, c.want)
		}
	}
}

func TestPatternMatches(t *testing.T) {
	cases := []struct {
		p    Pattern
		s    string
		want bool
	}{
		{pat(schema.OpEQ, "OTE"), "OTE", true},
		{pat(schema.OpEQ, "OTE"), "OT", false},
		{pat(schema.OpNE, "OTE"), "OT", true},
		{pat(schema.OpNE, "OTE"), "OTE", false},
		{pat(schema.OpPrefix, "OT"), "OTE", true},
		{pat(schema.OpSuffix, "SE"), "NYSE", true},
		{pat(schema.OpContains, "YS"), "NYSE", true},
		{pat(schema.OpGlob, "m*t"), "micronet", true},
		{pat(schema.OpGlob, "m*t"), "omicron", false},
	}
	for _, c := range cases {
		if got := c.p.Matches(c.s); got != c.want {
			t.Errorf("%v.Matches(%q) = %v, want %v", c.p, c.s, got, c.want)
		}
	}
}

func TestCoversTable(t *testing.T) {
	cases := []struct {
		a, b Pattern
		want bool
	}{
		// Equality subjects: evaluate directly.
		{pat(schema.OpGlob, "m*t"), pat(schema.OpEQ, "microsoft"), true},
		{pat(schema.OpGlob, "m*t"), pat(schema.OpEQ, "micronet"), true},
		{pat(schema.OpGlob, "m*t"), pat(schema.OpEQ, "network"), false},
		{pat(schema.OpPrefix, "OT"), pat(schema.OpEQ, "OTE"), true},
		{pat(schema.OpEQ, "OTE"), pat(schema.OpEQ, "OTE"), true},
		{pat(schema.OpEQ, "OTE"), pat(schema.OpEQ, "OT"), false},
		// Equality never covers non-equality.
		{pat(schema.OpEQ, "OTE"), pat(schema.OpPrefix, "OTE"), false},
		// Prefix/prefix: shorter covers longer.
		{pat(schema.OpPrefix, "OT"), pat(schema.OpPrefix, "OTE"), true},
		{pat(schema.OpPrefix, "OTE"), pat(schema.OpPrefix, "OT"), false},
		// Suffix/suffix.
		{pat(schema.OpSuffix, "SE"), pat(schema.OpSuffix, "YSE"), true},
		{pat(schema.OpSuffix, "YSE"), pat(schema.OpSuffix, "SE"), false},
		// Contains/contains: substring covers superstring.
		{pat(schema.OpContains, "YS"), pat(schema.OpContains, "NYSE"), true},
		{pat(schema.OpContains, "NYSE"), pat(schema.OpContains, "YS"), false},
		// Contains covers prefix/suffix when embedded.
		{pat(schema.OpContains, "OT"), pat(schema.OpPrefix, "OTE"), true},
		{pat(schema.OpContains, "TE"), pat(schema.OpSuffix, "OTE"), true},
		{pat(schema.OpContains, "XX"), pat(schema.OpPrefix, "OTE"), false},
		// Prefix does not cover contains/suffix.
		{pat(schema.OpPrefix, "OT"), pat(schema.OpContains, "OTE"), false},
		{pat(schema.OpPrefix, "OT"), pat(schema.OpSuffix, "OTE"), false},
		// Glob/glob.
		{pat(schema.OpGlob, "a*c"), pat(schema.OpGlob, "ab*bc"), true},
		{pat(schema.OpGlob, "ab*bc"), pat(schema.OpGlob, "a*c"), false},
		{pat(schema.OpGlob, "a*z"), pat(schema.OpGlob, "ab*yz"), true},
		{pat(schema.OpContains, "xy"), pat(schema.OpGlob, "x*y"), false}, // star may be non-empty
		{pat(schema.OpContains, "xy"), pat(schema.OpGlob, "a*xy*b"), true},
		// Contains "" matches everything.
		{pat(schema.OpContains, ""), pat(schema.OpGlob, "a*b"), true},
		{pat(schema.OpContains, ""), pat(schema.OpPrefix, "q"), true},
		// NE only covers itself.
		{pat(schema.OpNE, "x"), pat(schema.OpNE, "x"), true},
		{pat(schema.OpNE, "x"), pat(schema.OpNE, "y"), false},
		{pat(schema.OpNE, "x"), pat(schema.OpEQ, "y"), false},
		{pat(schema.OpContains, ""), pat(schema.OpNE, "x"), false},
	}
	for i, c := range cases {
		if got := Covers(c.a, c.b); got != c.want {
			t.Errorf("case %d: Covers(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

// TestCoversSoundnessRandomized: whenever Covers(a,b) is true, any string
// matching b must match a. Patterns and subjects are drawn over a tiny
// alphabet to maximize collisions.
func TestCoversSoundnessRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ops := []schema.Op{schema.OpEQ, schema.OpPrefix, schema.OpSuffix, schema.OpContains, schema.OpGlob}
	randText := func(stars bool) string {
		n := rng.Intn(5)
		var b strings.Builder
		for i := 0; i < n; i++ {
			alpha := "ab"
			if stars {
				alpha = "ab*"
			}
			b.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		return b.String()
	}
	randPattern := func() Pattern {
		op := ops[rng.Intn(len(ops))]
		return New(op, randText(op == schema.OpGlob))
	}
	randSubject := func() string {
		n := rng.Intn(7)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte("ab"[rng.Intn(2)])
		}
		return b.String()
	}
	covered := 0
	for iter := 0; iter < 20000; iter++ {
		a, b := randPattern(), randPattern()
		if !Covers(a, b) {
			continue
		}
		covered++
		for probe := 0; probe < 20; probe++ {
			s := randSubject()
			if b.Matches(s) && !a.Matches(s) {
				t.Fatalf("unsound: Covers(%v, %v) but %q matches b only", a, b, s)
			}
		}
	}
	if covered == 0 {
		t.Fatal("randomized test produced no covering pairs; generator broken")
	}
}

// TestPaperFigure5 reproduces the SACS of Figure 5: constraints `>* OT`
// (S1's symbol = OTE collapses under it) — the figure shows one row
// ">* OT" with ids S1, S2.
func TestPaperFigure5(t *testing.T) {
	s := NewSet()
	// S2 subscribes symbol >* OT first; S1's symbol = OTE is covered.
	s.Insert(pat(schema.OpPrefix, "OT"), 2)
	s.Insert(pat(schema.OpEQ, "OTE"), 1)
	rows := s.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %v, want 1 generalized row", rows)
	}
	if rows[0].Pattern != pat(schema.OpPrefix, "OT") {
		t.Fatalf("pattern = %v", rows[0].Pattern)
	}
	if !reflect.DeepEqual(rows[0].IDs, []uint64{1, 2}) {
		t.Fatalf("ids = %v", rows[0].IDs)
	}
	if got := s.Match("OTE"); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("Match(OTE) = %v", got)
	}
	// Lossy by design: "OTX" also reports S1 (resolved at the owner).
	if got := s.Match("OTX"); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("Match(OTX) = %v", got)
	}
	if got := s.Match("NYSE"); len(got) != 0 {
		t.Fatalf("Match(NYSE) = %v", got)
	}
}

func TestInsertGeneralizationSubstitutes(t *testing.T) {
	s := NewSet()
	s.Insert(pat(schema.OpEQ, "microsoft"), 1)
	s.Insert(pat(schema.OpEQ, "micronet"), 2)
	if len(s.Rows()) != 2 {
		t.Fatalf("rows = %v", s.Rows())
	}
	// "m*t" is more general than both: substitutes and absorbs.
	s.Insert(pat(schema.OpGlob, "m*t"), 3)
	rows := s.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows after generalization = %v", rows)
	}
	if rows[0].Pattern != pat(schema.OpGlob, "m*t") {
		t.Fatalf("pattern = %v", rows[0].Pattern)
	}
	if !reflect.DeepEqual(rows[0].IDs, []uint64{1, 2, 3}) {
		t.Fatalf("ids = %v", rows[0].IDs)
	}
}

func TestInsertUnrelatedAddsRow(t *testing.T) {
	s := NewSet()
	s.Insert(pat(schema.OpPrefix, "OT"), 1)
	s.Insert(pat(schema.OpSuffix, "SE"), 2)
	if len(s.Rows()) != 2 {
		t.Fatalf("rows = %v", s.Rows())
	}
	if got := s.Match("OTSE"); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("Match(OTSE) = %v", got)
	}
	if got := s.Match("NYSE"); !reflect.DeepEqual(got, []uint64{2}) {
		t.Fatalf("Match(NYSE) = %v", got)
	}
}

func TestNotEqualEntries(t *testing.T) {
	s := NewSet()
	s.Insert(pat(schema.OpNE, "NYSE"), 1)
	s.Insert(pat(schema.OpNE, "NYSE"), 2)
	s.Insert(pat(schema.OpEQ, "OTE"), 3)
	if got := s.Match("NYSE"); !reflect.DeepEqual(got, []uint64(nil)) && len(got) != 0 {
		t.Fatalf("Match(NYSE) = %v", got)
	}
	if got := s.Match("OTE"); !reflect.DeepEqual(got, []uint64{1, 2, 3}) {
		t.Fatalf("Match(OTE) = %v", got)
	}
	if got := s.Match("LSE"); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("Match(LSE) = %v", got)
	}
	ne := s.NeRows()
	if len(ne) != 1 || !reflect.DeepEqual(ne[0].IDs, []uint64{1, 2}) {
		t.Fatalf("NeRows = %v", ne)
	}
}

func TestRemove(t *testing.T) {
	s := NewSet()
	s.Insert(pat(schema.OpPrefix, "OT"), 2)
	s.Insert(pat(schema.OpEQ, "OTE"), 1)
	s.Insert(pat(schema.OpNE, "X"), 3)
	s.Remove(1)
	if got := s.Match("OTE"); !reflect.DeepEqual(got, []uint64{2, 3}) {
		t.Fatalf("Match after remove = %v", got)
	}
	s.Remove(2)
	if len(s.Rows()) != 0 {
		t.Fatalf("rows not dropped: %v", s.Rows())
	}
	s.Remove(3)
	if len(s.NeRows()) != 0 {
		t.Fatal("ne entry not dropped")
	}
	s.Remove(99) // absent: no-op
}

func TestMergeSets(t *testing.T) {
	a := NewSet()
	a.Insert(pat(schema.OpPrefix, "OT"), 1)
	b := NewSet()
	b.Insert(pat(schema.OpEQ, "OTE"), 2)
	b.Insert(pat(schema.OpSuffix, "SE"), 3)
	b.Insert(pat(schema.OpNE, "Q"), 4)
	a.Merge(b)
	// OTE collapses into prefix OT row.
	if len(a.Rows()) != 2 {
		t.Fatalf("rows = %v", a.Rows())
	}
	if got := a.Match("OTE"); !reflect.DeepEqual(got, []uint64{1, 2, 4}) {
		t.Fatalf("Match(OTE) = %v", got)
	}
	if got := a.Match("NYSE"); !reflect.DeepEqual(got, []uint64{3, 4}) {
		t.Fatalf("Match(NYSE) = %v", got)
	}
}

func TestMatchIntoAndClone(t *testing.T) {
	s := NewSet()
	s.Insert(pat(schema.OpPrefix, "OT"), 1)
	s.Insert(pat(schema.OpContains, "T"), 2)
	dst := make(map[uint64]struct{})
	if added := s.MatchInto("OTE", dst); added != 2 {
		t.Fatalf("MatchInto added %d", added)
	}
	if added := s.MatchInto("OTE", dst); added != 0 {
		t.Fatalf("second MatchInto added %d", added)
	}
	c := s.Clone()
	c.Remove(1)
	if got := s.Match("OTE"); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("clone mutated original: %v", got)
	}
}

func TestStatsAndSize(t *testing.T) {
	s := NewSet()
	s.Insert(pat(schema.OpPrefix, "OT"), 1) // covered rows: 1 row "OT"
	s.Insert(pat(schema.OpEQ, "OTE"), 2)    // joins row
	st := s.Stats()
	if st.NumRows != 1 || st.IDEntries != 2 || st.PatternBytes != 2 {
		t.Fatalf("Stats = %+v", st)
	}
	// size = patternBytes(2) + rows(1) + ids(2)*sid(4) = 11
	if got := s.SizeBytes(4); got != 11 {
		t.Fatalf("SizeBytes = %d", got)
	}
}

// TestSACSNoFalseNegativesRandomized: after random inserts, any value
// satisfying an inserted constraint must be reported by Match.
func TestSACSNoFalseNegativesRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	ops := []schema.Op{schema.OpEQ, schema.OpNE, schema.OpPrefix, schema.OpSuffix, schema.OpContains, schema.OpGlob}
	words := []string{"", "a", "b", "ab", "ba", "aab", "abb", "abab", "bbaa"}
	randText := func(op schema.Op) string {
		w := words[rng.Intn(len(words))]
		if op == schema.OpGlob && len(w) > 1 && rng.Intn(2) == 0 {
			i := 1 + rng.Intn(len(w)-1)
			w = w[:i] + "*" + w[i:]
		}
		return w
	}
	s := NewSet()
	type ref struct {
		p  Pattern
		id uint64
	}
	var refs []ref
	for step := uint64(1); step <= 800; step++ {
		op := ops[rng.Intn(len(ops))]
		p := New(op, randText(op))
		s.Insert(p, step)
		refs = append(refs, ref{p: p, id: step})
		// Probe.
		for probe := 0; probe < 5; probe++ {
			v := words[rng.Intn(len(words))]
			got := s.Match(v)
			gotSet := make(map[uint64]bool, len(got))
			for _, id := range got {
				gotSet[id] = true
			}
			for _, r := range refs {
				if r.p.Matches(v) && !gotSet[r.id] {
					t.Fatalf("false negative: %v (id %d) matches %q but Match returned %v\nset: %v",
						r.p, r.id, v, got, s)
				}
			}
		}
	}
}
