package strmatch

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/subsum/subsum/internal/schema"
)

// Set is the SACS for a single string attribute: generalizing pattern rows
// plus a not-equal list. Each row holds the ids of the subscriptions whose
// constraint the row's pattern covers.
//
// Internally, equality rows (by far the most common constraint in the
// paper's workloads) live in a hash map for O(1) duplicate detection,
// while genuine pattern rows (prefix/suffix/contains/glob) live in a small
// slice scanned linearly. The invariant ties them together: no equality
// row's text is covered by any pattern row (covered equalities are folded
// into the covering row at insertion time, as Section 3.1 prescribes).
//
// The zero value is not ready; use NewSet.
type Set struct {
	pats []Row               // non-equality pattern rows
	eq   map[string][]uint64 // equality rows: text → ids
	ne   map[string][]uint64 // ≠ entries: satisfied by any other value

	// idx is the operator-class index over pats, built lazily by index()
	// and reset to nil whenever pats changes shape. Atomic so that
	// concurrent readers racing to build the first index after a mutation
	// stay benign (both build identical values).
	idx atomic.Pointer[opIndex]

	// slab backs the id lists MergeRowBytes retains, so a wire merge that
	// adds many rows costs one allocation per chunk instead of one per
	// row. Never shared between sets (Clone and NewSetFromRows build
	// fresh sets).
	slab []uint64
}

// slabCopy returns a copy of ids carved from the set's slab. The copy has
// no spare capacity, so a later in-place growth reallocates rather than
// bleeding into the next carve.
func (s *Set) slabCopy(ids []uint64) []uint64 {
	if len(s.slab) < len(ids) {
		n := 1024
		if len(ids) > n {
			n = len(ids)
		}
		s.slab = make([]uint64, n)
	}
	out := s.slab[:len(ids):len(ids)]
	s.slab = s.slab[len(ids):]
	copy(out, ids)
	return out
}

// internPool canonicalizes SACS row texts decoded from wire form. Every
// propagation period re-ships the same constraint texts, so sharing one
// string per distinct text process-wide turns the per-merge string
// materialization into a read-mostly map hit. Entries are never evicted;
// the pool is bounded by the set of distinct constraint texts seen.
var internPool = struct {
	sync.RWMutex
	m map[string]string
}{m: make(map[string]string)}

// internText returns the canonical string for b, allocating only the
// first time a text is seen.
func internText(b []byte) string {
	internPool.RLock()
	s, ok := internPool.m[string(b)]
	internPool.RUnlock()
	if ok {
		return s
	}
	internPool.Lock()
	s, ok = internPool.m[string(b)]
	if !ok {
		s = string(b)
		internPool.m[s] = s
	}
	internPool.Unlock()
	return s
}

// Row is one SACS row: a covering pattern and its subscription-id list
// (sorted, deduplicated).
type Row struct {
	Pattern Pattern
	IDs     []uint64
}

// NewSet returns an empty SACS.
func NewSet() *Set {
	return &Set{eq: make(map[string][]uint64), ne: make(map[string][]uint64)}
}

// Insert records that subscription id has the given string constraint,
// per Section 3.1: if an existing row covers the constraint, the id joins
// that row's list; if the new constraint is more general than existing
// rows, it substitutes their patterns and absorbs their lists; otherwise a
// new row is added.
func (s *Set) Insert(p Pattern, id uint64) { s.InsertMany(p, []uint64{id}) }

// InsertMany is Insert for a batch of ids sharing one constraint (used
// when merging summaries).
func (s *Set) InsertMany(p Pattern, ids []uint64) {
	if len(ids) == 0 {
		return
	}
	if !p.Op.StringOp() {
		panic(fmt.Sprintf("strmatch: non-string operator %v", p.Op))
	}
	switch p.Op {
	case schema.OpNE:
		for _, id := range ids {
			s.ne[p.Text] = addID(s.ne[p.Text], id)
		}
	case schema.OpEQ:
		if existing, ok := s.eq[p.Text]; ok {
			s.eq[p.Text] = mergeIDs(existing, ids)
			return
		}
		// Covered by an existing pattern row: join it (the paper's fold).
		for i := range s.pats {
			if s.pats[i].Pattern.Matches(p.Text) {
				s.pats[i].IDs = mergeIDs(s.pats[i].IDs, ids)
				return
			}
		}
		s.eq[p.Text] = append([]uint64(nil), ids...)
	default:
		// Covered by an existing pattern row: join it.
		for i := range s.pats {
			if Covers(s.pats[i].Pattern, p) {
				s.pats[i].IDs = mergeIDs(s.pats[i].IDs, ids)
				return
			}
		}
		// More general than existing rows: substitute and absorb.
		s.idx.Store(nil) // pattern rows change shape below
		newRow := Row{Pattern: p, IDs: append([]uint64(nil), ids...)}
		kept := s.pats[:0]
		for _, r := range s.pats {
			if Covers(p, r.Pattern) {
				newRow.IDs = mergeIDs(newRow.IDs, r.IDs)
			} else {
				kept = append(kept, r)
			}
		}
		s.pats = append(kept, newRow)
		// Absorb covered equality rows to restore the invariant.
		for text, eqIDs := range s.eq {
			if p.Matches(text) {
				newRow := &s.pats[len(s.pats)-1]
				newRow.IDs = mergeIDs(newRow.IDs, eqIDs)
				delete(s.eq, text)
			}
		}
	}
}

// MergeRowBytes folds one serialized SACS row into the set with the same
// result as InsertMany(Pattern{Op: op, Text: string(text)}, ids), but
// without materializing the text string when the set already has a row
// for it — the Algorithm 2 wire-merge hot path, where most incoming rows
// repeat rows the receiver merged in earlier periods. ids must be sorted
// ascending without duplicates; neither slice is retained.
func (s *Set) MergeRowBytes(op schema.Op, text []byte, ids []uint64) {
	if len(ids) == 0 {
		return
	}
	switch op {
	case schema.OpNE:
		if existing, ok := s.ne[string(text)]; ok {
			if merged := mergeInto(existing, ids); len(merged) != len(existing) {
				s.ne[string(text)] = merged
			}
			return
		}
		s.ne[internText(text)] = s.slabCopy(ids)
	case schema.OpEQ:
		if existing, ok := s.eq[string(text)]; ok {
			if merged := mergeInto(existing, ids); len(merged) != len(existing) {
				s.eq[string(text)] = merged
			}
			return
		}
		// Covered by an existing pattern row: join it (the paper's fold),
		// exactly as InsertMany would.
		t := internText(text)
		for i := range s.pats {
			if s.pats[i].Pattern.Matches(t) {
				s.pats[i].IDs = mergeInto(s.pats[i].IDs, ids)
				return
			}
		}
		s.eq[t] = s.slabCopy(ids)
	default:
		// An exact-match row, when present, is the unique covering row:
		// pattern rows are pairwise non-covering (Insert folds covered
		// patterns and substitutes less general ones), and any other row
		// covering this pattern would also cover the identical row.
		for i := range s.pats {
			if r := &s.pats[i]; r.Pattern.Op == op && r.Pattern.Text == string(text) {
				r.IDs = mergeInto(r.IDs, ids)
				return
			}
		}
		s.InsertMany(Pattern{Op: op, Text: internText(text)}, ids)
	}
}

// mergeInto merges sorted id list src into sorted dst in place, returning
// the union. It allocates only when dst lacks capacity for the ids src
// adds; in the wire-merge steady state (src ⊆ dst) it is a read-only scan.
func mergeInto(dst, src []uint64) []uint64 {
	extra := 0
	i, j := 0, 0
	for i < len(dst) && j < len(src) {
		switch {
		case dst[i] < src[j]:
			i++
		case dst[i] > src[j]:
			extra++
			j++
		default:
			i++
			j++
		}
	}
	extra += len(src) - j
	if extra == 0 {
		return dst
	}
	n := len(dst)
	if cap(dst) < n+extra {
		grown := make([]uint64, n, n+extra)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:n+extra]
	// Merge from the back so unshifted dst elements are read before they
	// are overwritten.
	for i, j, k := n-1, len(src)-1, n+extra-1; j >= 0; k-- {
		switch {
		case i >= 0 && dst[i] > src[j]:
			dst[k] = dst[i]
			i--
		case i >= 0 && dst[i] == src[j]:
			dst[k] = dst[i]
			i--
			j--
		default:
			dst[k] = src[j]
			j--
		}
	}
	return dst
}

// NewSetFromRows reconstructs a set exactly from serialized rows (the
// inverse of Rows/NeRows): pattern rows keep their order, equality rows go
// to the equality map verbatim. Covered equality rows are rejected (the
// insertion-time fold invariant would not have produced them).
func NewSetFromRows(rows, ne []Row) (*Set, error) {
	s := NewSet()
	for i, r := range rows {
		if len(r.IDs) == 0 {
			return nil, fmt.Errorf("strmatch: row %d has no ids", i)
		}
		if !r.Pattern.Op.StringOp() || r.Pattern.Op == schema.OpNE {
			return nil, fmt.Errorf("strmatch: row %d has operator %v", i, r.Pattern.Op)
		}
		if r.Pattern.Op == schema.OpEQ {
			if _, dup := s.eq[r.Pattern.Text]; dup {
				return nil, fmt.Errorf("strmatch: duplicate equality row %q", r.Pattern.Text)
			}
			for _, p := range s.pats {
				if p.Pattern.Matches(r.Pattern.Text) {
					return nil, fmt.Errorf("strmatch: equality row %q covered by pattern %v", r.Pattern.Text, p.Pattern)
				}
			}
			s.eq[r.Pattern.Text] = append([]uint64(nil), r.IDs...)
			continue
		}
		s.pats = append(s.pats, Row{Pattern: r.Pattern, IDs: append([]uint64(nil), r.IDs...)})
	}
	// Pattern rows encoded after equality rows could retroactively cover
	// them; the encoder emits patterns first, so a violation means corrupt
	// or adversarial input.
	for text := range s.eq {
		for _, p := range s.pats {
			if p.Pattern.Matches(text) {
				return nil, fmt.Errorf("strmatch: equality row %q covered by pattern %v", text, p.Pattern)
			}
		}
	}
	for _, r := range ne {
		if len(r.IDs) == 0 {
			return nil, fmt.Errorf("strmatch: ≠ row %q has no ids", r.Pattern.Text)
		}
		s.ne[r.Pattern.Text] = append([]uint64(nil), r.IDs...)
	}
	return s, nil
}

// Match returns the ids of all subscriptions whose constraint is satisfied
// by value v, deduplicated, ascending — Check_for_a_value_match (type
// string).
func (s *Set) Match(v string) []uint64 {
	// Collect once, then sort and dedup once — not a merge per row.
	out := s.AppendMatches(nil, v)
	if len(out) == 0 {
		return nil
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// index returns the operator-class index, building it if the pattern rows
// changed since the last lookup. Mutating the set concurrently with
// lookups is unsupported (as for every other method), but any number of
// concurrent readers are safe.
func (s *Set) index() *opIndex {
	if ix := s.idx.Load(); ix != nil {
		return ix
	}
	ix := buildIndex(s.pats)
	s.idx.Store(ix)
	return ix
}

// AppendMatches appends the ids of all subscriptions whose constraint is
// satisfied by v to dst and returns the extended slice. Unlike Match it
// performs no sorting or deduplication — an id may repeat when several
// rows match — and beyond growing dst it does not allocate. Lookup cost
// scales with the rows that can match v: equality by hash, prefix and
// suffix by one binary search per distinct pattern length, and a linear
// scan only over contains/glob rows and ≠ entries.
func (s *Set) AppendMatches(dst []uint64, v string) []uint64 {
	if ids, ok := s.eq[v]; ok {
		dst = append(dst, ids...)
	}
	ix := s.index()
	for _, l := range ix.prefixLens {
		if l > len(v) {
			break
		}
		lo, hi := ix.prefixMatchRange(v[:l])
		for ; lo < hi; lo++ {
			dst = append(dst, s.pats[ix.prefixRows[lo]].IDs...)
		}
	}
	for _, l := range ix.suffixLens {
		if l > len(v) {
			break
		}
		lo, hi := ix.suffixMatchRange(v, l)
		for ; lo < hi; lo++ {
			dst = append(dst, s.pats[ix.suffixRows[lo]].IDs...)
		}
	}
	for _, i := range ix.scan {
		if s.pats[i].Pattern.Matches(v) {
			dst = append(dst, s.pats[i].IDs...)
		}
	}
	for text, ids := range s.ne {
		if text != v {
			dst = append(dst, ids...)
		}
	}
	return dst
}

// MatchInto merges matching ids into dst and returns how many distinct ids
// were added.
func (s *Set) MatchInto(v string, dst map[uint64]struct{}) int {
	added := 0
	note := func(ids []uint64) {
		for _, id := range ids {
			if _, ok := dst[id]; !ok {
				dst[id] = struct{}{}
				added++
			}
		}
	}
	note(s.eq[v])
	for _, r := range s.pats {
		if r.Pattern.Matches(v) {
			note(r.IDs)
		}
	}
	for text, ids := range s.ne {
		if text != v {
			note(ids)
		}
	}
	return added
}

// Remove deletes every occurrence of id; rows and entries left empty are
// dropped. Generalized patterns persist for the remaining ids (the summary
// does not track which id contributed which original constraint — it is
// summary-centric by design).
func (s *Set) Remove(id uint64) {
	pats := s.pats[:0]
	dropped := false
	for _, r := range s.pats {
		r.IDs = removeID(r.IDs, id)
		if len(r.IDs) > 0 {
			pats = append(pats, r)
		} else {
			dropped = true
		}
	}
	s.pats = pats
	if dropped {
		s.idx.Store(nil) // row positions shifted
	}
	for text, ids := range s.eq {
		ids = removeID(ids, id)
		if len(ids) == 0 {
			delete(s.eq, text)
		} else {
			s.eq[text] = ids
		}
	}
	for text, ids := range s.ne {
		ids = removeID(ids, id)
		if len(ids) == 0 {
			delete(s.ne, text)
		} else {
			s.ne[text] = ids
		}
	}
}

// RemoveAll deletes every id in dead from the set in one sweep — the
// batched form of Remove, so purging n tombstones costs one pass over the
// structure instead of n.
func (s *Set) RemoveAll(dead map[uint64]struct{}) {
	if len(dead) == 0 {
		return
	}
	pats := s.pats[:0]
	dropped := false
	for _, r := range s.pats {
		r.IDs = removeIDs(r.IDs, dead)
		if len(r.IDs) > 0 {
			pats = append(pats, r)
		} else {
			dropped = true
		}
	}
	s.pats = pats
	if dropped {
		s.idx.Store(nil) // row positions shifted
	}
	for text, ids := range s.eq {
		ids = removeIDs(ids, dead)
		if len(ids) == 0 {
			delete(s.eq, text)
		} else {
			s.eq[text] = ids
		}
	}
	for text, ids := range s.ne {
		ids = removeIDs(ids, dead)
		if len(ids) == 0 {
			delete(s.ne, text)
		} else {
			s.ne[text] = ids
		}
	}
}

// Merge folds every row of o into s (multi-broker summary construction:
// "values for the same string attributes are simply merged").
func (s *Set) Merge(o *Set) {
	for _, r := range o.pats {
		s.InsertMany(r.Pattern, r.IDs)
	}
	for text, ids := range o.eq {
		s.InsertMany(Pattern{Op: schema.OpEQ, Text: text}, ids)
	}
	for text, ids := range o.ne {
		s.InsertMany(Pattern{Op: schema.OpNE, Text: text}, ids)
	}
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	out := NewSet()
	out.pats = make([]Row, len(s.pats))
	for i, r := range s.pats {
		out.pats[i] = Row{Pattern: r.Pattern, IDs: append([]uint64(nil), r.IDs...)}
	}
	for text, ids := range s.eq {
		out.eq[text] = append([]uint64(nil), ids...)
	}
	for text, ids := range s.ne {
		out.ne[text] = append([]uint64(nil), ids...)
	}
	return out
}

// Rows returns all rows — pattern rows in insertion order followed by
// equality rows sorted by text. ID slices are shared; do not mutate.
func (s *Set) Rows() []Row {
	out := make([]Row, 0, len(s.pats)+len(s.eq))
	out = append(out, s.pats...)
	texts := make([]string, 0, len(s.eq))
	for text := range s.eq {
		texts = append(texts, text)
	}
	sort.Strings(texts)
	for _, text := range texts {
		out = append(out, Row{Pattern: Pattern{Op: schema.OpEQ, Text: text}, IDs: s.eq[text]})
	}
	return out
}

// NeRows returns the not-equal entries sorted by text.
func (s *Set) NeRows() []Row {
	out := make([]Row, 0, len(s.ne))
	texts := make([]string, 0, len(s.ne))
	for text := range s.ne {
		texts = append(texts, text)
	}
	sort.Strings(texts)
	for _, text := range texts {
		out = append(out, Row{Pattern: Pattern{Op: schema.OpNE, Text: text}, IDs: s.ne[text]})
	}
	return out
}

// Stats describes the set's shape for equation (2) of the paper.
type Stats struct {
	NumRows      int // n_r
	NumNE        int
	IDEntries    int // ΣL_s
	PatternBytes int // Σ per-row string value sizes (s_sv is their mean)
}

// Stats computes the set's shape.
func (s *Set) Stats() Stats {
	var st Stats
	st.NumRows = len(s.pats) + len(s.eq)
	st.NumNE = len(s.ne)
	for _, r := range s.pats {
		st.IDEntries += len(r.IDs)
		st.PatternBytes += len(r.Pattern.Text)
	}
	for text, ids := range s.eq {
		st.IDEntries += len(ids)
		st.PatternBytes += len(text)
	}
	for text, ids := range s.ne {
		st.IDEntries += len(ids)
		st.PatternBytes += len(text)
	}
	return st
}

// SizeBytes returns the set's size under equation (2): n_r rows of string
// values plus ΣL_s subscription ids of s_id bytes. Row string sizes use
// the actual pattern lengths (whose generated average is the paper's
// s_sv = 10). Computed directly from row lengths — the propagation loop
// calls this every round, so it must not take Stats' full walk.
func (s *Set) SizeBytes(sid int) int {
	bytes, entries := 0, 0
	for _, r := range s.pats {
		entries += len(r.IDs)
		bytes += len(r.Pattern.Text)
	}
	for text, ids := range s.eq {
		entries += len(ids)
		bytes += len(text)
	}
	for text, ids := range s.ne {
		entries += len(ids)
		bytes += len(text)
	}
	rows := len(s.pats) + len(s.eq)
	return bytes + (rows + len(s.ne)) + entries*sid
}

// String renders the set in the style of the paper's Figure 5.
func (s *Set) String() string {
	var b strings.Builder
	for i, r := range s.Rows() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s→%v", r.Pattern, r.IDs)
	}
	for _, r := range s.NeRows() {
		fmt.Fprintf(&b, " %s→%v", r.Pattern, r.IDs)
	}
	return b.String()
}

// addID inserts id into a sorted id list if absent.
func addID(ids []uint64, id uint64) []uint64 {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return ids
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// removeID deletes id from a sorted id list if present.
func removeID(ids []uint64, id uint64) []uint64 {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return append(ids[:i], ids[i+1:]...)
	}
	return ids
}

// removeIDs deletes every id present in dead from a sorted id list, in
// place, preserving order.
func removeIDs(ids []uint64, dead map[uint64]struct{}) []uint64 {
	out := ids[:0]
	for _, v := range ids {
		if _, ok := dead[v]; !ok {
			out = append(out, v)
		}
	}
	return out
}

// mergeIDs returns the sorted union of two sorted id lists.
func mergeIDs(a, b []uint64) []uint64 {
	if len(b) == 0 {
		return a
	}
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
