package schema

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestParseSubscriptionErrors(t *testing.T) {
	s := paperSchema(t)
	bad := []string{
		"",
		"price",
		"price <",
		"price < abc",
		"nosuch = 1",
		"price ? 1",
		"price < 1 2",
		"price < 1 && ",
		`exchange = "unterminated`,
		"volume > 1.5", // float literal for int attribute
		"price >* 8.4", // string op on arithmetic attribute
	}
	for _, in := range bad {
		if _, err := ParseSubscription(s, in); err == nil {
			t.Errorf("ParseSubscription(%q) accepted", in)
		}
	}
}

func TestParseSubscriptionQuotedValues(t *testing.T) {
	s := paperSchema(t)
	sub, err := ParseSubscription(s, `symbol = "A B && C"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.Constraints[0].Value.Str; got != "A B && C" {
		t.Fatalf("quoted value = %q", got)
	}
	if sub.Constraints[0].Op != OpEQ {
		t.Fatalf("op = %v, want OpEQ", sub.Constraints[0].Op)
	}
}

func TestParseSubscriptionStarEqualityCanonicalized(t *testing.T) {
	s := paperSchema(t)
	cases := []struct {
		in string
		op Op
	}{
		{`symbol = "OT*"`, OpPrefix},
		{`symbol = "*SE"`, OpSuffix},
		{`symbol = "*YS*"`, OpContains},
		{`symbol = "N*SE"`, OpGlob},
	}
	for _, c := range cases {
		sub, err := ParseSubscription(s, c.in)
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if sub.Constraints[0].Op != c.op {
			t.Errorf("%q: op = %v, want %v", c.in, sub.Constraints[0].Op, c.op)
		}
	}
}

func TestParseEventErrors(t *testing.T) {
	s := paperSchema(t)
	bad := []string{
		"",
		"price",
		"price<8",
		"price=8.4 price=8.5",
		"nosuch=1",
		"price=abc",
	}
	for _, in := range bad {
		if _, err := ParseEvent(s, in); err == nil {
			t.Errorf("ParseEvent(%q) accepted", in)
		}
	}
}

func TestParseEventSeparators(t *testing.T) {
	s := paperSchema(t)
	a, err := ParseEvent(s, "price=8.4, volume=10")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseEvent(s, "price=8.4\nvolume=10")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Fields(), b.Fields()) {
		t.Fatal("comma and newline separators differ")
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	s := paperSchema(t)
	ev, err := ParseEvent(s, `exchange=NYSE symbol=OTE price=8.40 volume=132700`)
	if err != nil {
		t.Fatal(err)
	}
	buf := EncodeEvent(nil, ev)
	got, n, err := DecodeEvent(s, buf)
	if err != nil {
		t.Fatalf("DecodeEvent: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(got.Fields(), ev.Fields()) {
		t.Fatalf("round trip mismatch: %v vs %v", got.Fields(), ev.Fields())
	}
}

func TestSubscriptionCodecRoundTrip(t *testing.T) {
	s := paperSchema(t)
	sub, err := ParseSubscription(s, `exchange = "N*SE" && symbol >* OT && price < 8.70 && volume > 130000`)
	if err != nil {
		t.Fatal(err)
	}
	buf := EncodeSubscription(nil, sub)
	got, n, err := DecodeSubscription(s, buf)
	if err != nil {
		t.Fatalf("DecodeSubscription: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(got.Constraints, sub.Constraints) {
		t.Fatalf("round trip mismatch:\n%v\n%v", got.Constraints, sub.Constraints)
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	s := paperSchema(t)
	sub, _ := ParseSubscription(s, `price < 8.70`)
	buf := EncodeSubscription(nil, sub)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeSubscription(s, buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	ev, _ := ParseEvent(s, `price=8.4`)
	ebuf := EncodeEvent(nil, ev)
	for cut := 0; cut < len(ebuf); cut++ {
		if _, _, err := DecodeEvent(s, ebuf[:cut]); err == nil {
			t.Fatalf("event truncation at %d accepted", cut)
		}
	}
	// Corrupt type byte.
	bad := append([]byte(nil), ebuf...)
	bad[4] = 0xFF
	if _, _, err := DecodeEvent(s, bad); err == nil {
		t.Fatal("corrupt value type accepted")
	}
}

// TestCodecRandomRoundTrip fuzzes the codec with randomly generated valid
// events and subscriptions.
func TestCodecRandomRoundTrip(t *testing.T) {
	s := paperSchema(t)
	rng := rand.New(rand.NewSource(3))
	attrs := s.Attributes()
	for iter := 0; iter < 500; iter++ {
		var fields []Field
		for id, a := range attrs {
			if rng.Intn(2) == 0 {
				continue
			}
			var v Value
			switch a.Type {
			case TypeString:
				v = StringValue(randWord(rng))
			case TypeInt:
				v = IntValue(int64(rng.Intn(10000)))
			case TypeFloat:
				v = FloatValue(float64(rng.Intn(1000)) / 8)
			case TypeDate:
				v = Value{Type: TypeDate, Num: float64(rng.Intn(1 << 30))}
			}
			fields = append(fields, Field{Attr: AttrID(id), Value: v})
		}
		if len(fields) == 0 {
			continue
		}
		ev, err := EventFromFields(s, fields)
		if err != nil {
			t.Fatal(err)
		}
		buf := EncodeEvent(nil, ev)
		got, _, err := DecodeEvent(s, buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Fields(), ev.Fields()) {
			t.Fatal("random event round trip mismatch")
		}
	}
}

func randWord(rng *rand.Rand) string {
	letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	n := 1 + rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
