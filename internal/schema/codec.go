package schema

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codec for values, events, constraints, and subscriptions. The
// format is a compact little-endian encoding used by the TCP daemon and by
// tests that need real (not modelled) byte counts:
//
//	value:        type:u8, then f64 (arithmetic) or len:u16 + bytes (string)
//	field:        attr:u16, value
//	event:        nfields:u16, fields...
//	constraint:   attr:u16, op:u8, value
//	subscription: nconstraints:u16, constraints...
func appendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.Type))
	if v.Type == TypeString {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(v.Str)))
		return append(buf, v.Str...)
	}
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Num))
}

func decodeValue(buf []byte) (Value, int, error) {
	if len(buf) < 1 {
		return Value{}, 0, fmt.Errorf("schema: short value")
	}
	t := Type(buf[0])
	if t == TypeString {
		if len(buf) < 3 {
			return Value{}, 0, fmt.Errorf("schema: short string value")
		}
		n := int(binary.LittleEndian.Uint16(buf[1:3]))
		if len(buf) < 3+n {
			return Value{}, 0, fmt.Errorf("schema: truncated string value")
		}
		return Value{Type: TypeString, Str: string(buf[3 : 3+n])}, 3 + n, nil
	}
	if t != TypeInt && t != TypeFloat && t != TypeDate {
		return Value{}, 0, fmt.Errorf("schema: bad value type %d", t)
	}
	if len(buf) < 9 {
		return Value{}, 0, fmt.Errorf("schema: short numeric value")
	}
	num := math.Float64frombits(binary.LittleEndian.Uint64(buf[1:9]))
	v := Value{Type: t, Num: num}
	if !v.Valid() {
		return Value{}, 0, fmt.Errorf("schema: non-finite numeric value")
	}
	return v, 9, nil
}

// EncodeEvent appends the event's binary form to buf and returns it.
func EncodeEvent(buf []byte, e *Event) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.fields)))
	for _, f := range e.fields {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(f.Attr))
		buf = appendValue(buf, f.Value)
	}
	return buf
}

// DecodeEvent parses an event from buf, validating against the schema.
// It returns the event and the number of bytes consumed.
func DecodeEvent(s *Schema, buf []byte) (*Event, int, error) {
	if len(buf) < 2 {
		return nil, 0, fmt.Errorf("schema: short event")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	off := 2
	fields := make([]Field, 0, n)
	for i := 0; i < n; i++ {
		if len(buf) < off+2 {
			return nil, 0, fmt.Errorf("schema: truncated event field")
		}
		attr := AttrID(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		v, vn, err := decodeValue(buf[off:])
		if err != nil {
			return nil, 0, err
		}
		off += vn
		fields = append(fields, Field{Attr: attr, Value: v})
	}
	e, err := EventFromFields(s, fields)
	if err != nil {
		return nil, 0, err
	}
	return e, off, nil
}

// EncodeSubscription appends the subscription's binary form to buf.
func EncodeSubscription(buf []byte, sub *Subscription) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(sub.Constraints)))
	for _, c := range sub.Constraints {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(c.Attr))
		buf = append(buf, byte(c.Op))
		buf = appendValue(buf, c.Value)
	}
	return buf
}

// DecodeSubscription parses a subscription from buf, validating against the
// schema. It returns the subscription and the number of bytes consumed.
func DecodeSubscription(s *Schema, buf []byte) (*Subscription, int, error) {
	if len(buf) < 2 {
		return nil, 0, fmt.Errorf("schema: short subscription")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	off := 2
	cs := make([]Constraint, 0, n)
	for i := 0; i < n; i++ {
		if len(buf) < off+3 {
			return nil, 0, fmt.Errorf("schema: truncated constraint")
		}
		attr := AttrID(binary.LittleEndian.Uint16(buf[off:]))
		op := Op(buf[off+2])
		off += 3
		v, vn, err := decodeValue(buf[off:])
		if err != nil {
			return nil, 0, err
		}
		off += vn
		cs = append(cs, Constraint{Attr: attr, Op: op, Value: v})
	}
	sub, err := NewSubscription(s, cs...)
	if err != nil {
		return nil, 0, err
	}
	return sub, off, nil
}
