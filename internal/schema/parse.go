package schema

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseSubscription parses a textual subscription: one or more constraints
// joined by `&&`, each of the form `<attr> <op> <value>`. Examples:
//
//	exchange = "N*SE" && symbol = OTE && price < 8.70 && price > 8.30
//	symbol >* OT && volume > 130000 && low < 8.05
//
// String values may be double-quoted (with Go escape syntax) or bare
// tokens. For string attributes, `=` with a value containing '*' is
// canonicalized to the matching pattern operator (prefix, suffix,
// containment, or glob) — mirroring the paper's use of patterns like
// "N*SE" under the equality column of Figure 3.
func ParseSubscription(s *Schema, text string) (*Subscription, error) {
	parts := splitConjunction(text)
	cs := make([]Constraint, 0, len(parts))
	for _, part := range parts {
		if part == "" {
			return nil, fmt.Errorf("schema: empty constraint in subscription %q", text)
		}
		c, err := parseConstraint(s, part)
		if err != nil {
			return nil, err
		}
		cs = append(cs, c)
	}
	return NewSubscription(s, cs...)
}

// splitConjunction splits on `&&` outside of double quotes.
func splitConjunction(text string) []string {
	var parts []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(text); i++ {
		ch := text[i]
		switch {
		case ch == '"' && (i == 0 || text[i-1] != '\\'):
			inQuote = !inQuote
			cur.WriteByte(ch)
		case !inQuote && ch == '&' && i+1 < len(text) && text[i+1] == '&':
			parts = append(parts, cur.String())
			cur.Reset()
			i++
		default:
			cur.WriteByte(ch)
		}
	}
	parts = append(parts, cur.String())
	out := parts[:0]
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func parseConstraint(s *Schema, text string) (Constraint, error) {
	lex := lexer{src: text}
	name, ok := lex.ident()
	if !ok {
		return Constraint{}, fmt.Errorf("schema: constraint %q: expected attribute name", text)
	}
	id, known := s.ID(name)
	if !known {
		return Constraint{}, fmt.Errorf("schema: constraint %q: unknown attribute %q", text, name)
	}
	opTok, ok := lex.operator()
	if !ok {
		return Constraint{}, fmt.Errorf("schema: constraint %q: expected operator after %q", text, name)
	}
	op, err := ParseOp(opTok)
	if err != nil {
		return Constraint{}, fmt.Errorf("schema: constraint %q: %w", text, err)
	}
	raw, ok := lex.value()
	if !ok {
		return Constraint{}, fmt.Errorf("schema: constraint %q: expected value", text)
	}
	if rest := strings.TrimSpace(lex.rest()); rest != "" {
		return Constraint{}, fmt.Errorf("schema: constraint %q: trailing input %q", text, rest)
	}
	t := s.TypeOf(id)
	v, err := ParseValue(t, raw)
	if err != nil {
		return Constraint{}, fmt.Errorf("schema: constraint %q: %w", text, err)
	}
	if t == TypeString && op == OpEQ && strings.Contains(raw, "*") {
		op, v.Str = CanonGlob(raw)
	}
	c := Constraint{Attr: id, Op: op, Value: v}
	if err := c.Validate(s); err != nil {
		return Constraint{}, fmt.Errorf("schema: constraint %q: %w", text, err)
	}
	return c, nil
}

// ParseEvent parses a textual event: whitespace- or comma-separated
// `<attr>=<value>` pairs, e.g. `exchange=NYSE symbol=OTE price=8.40`.
func ParseEvent(s *Schema, text string) (*Event, error) {
	fields := make(map[string]Value)
	lex := lexer{src: text}
	for {
		lex.skipSeparators()
		if lex.done() {
			break
		}
		name, ok := lex.ident()
		if !ok {
			return nil, fmt.Errorf("schema: event %q: expected attribute name at %q", text, lex.rest())
		}
		opTok, ok := lex.operator()
		if !ok || opTok != "=" {
			return nil, fmt.Errorf("schema: event %q: expected '=' after %q", text, name)
		}
		raw, ok := lex.value()
		if !ok {
			return nil, fmt.Errorf("schema: event %q: expected value for %q", text, name)
		}
		id, known := s.ID(name)
		if !known {
			return nil, fmt.Errorf("schema: event %q: unknown attribute %q", text, name)
		}
		if _, dup := fields[name]; dup {
			return nil, fmt.Errorf("schema: event %q: duplicate attribute %q", text, name)
		}
		v, err := ParseValue(s.TypeOf(id), raw)
		if err != nil {
			return nil, fmt.Errorf("schema: event %q: %w", text, err)
		}
		fields[name] = v
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("schema: empty event")
	}
	return NewEvent(s, fields)
}

// lexer is a tiny cursor-based scanner shared by the constraint and event
// parsers.
type lexer struct {
	src string
	pos int
}

func (l *lexer) done() bool { return l.pos >= len(l.src) }

func (l *lexer) rest() string { return l.src[l.pos:] }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t') {
		l.pos++
	}
}

func (l *lexer) skipSeparators() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', ',', '\n':
			l.pos++
		default:
			return
		}
	}
}

// ident scans an attribute identifier: a letter or '_' followed by
// letters, digits, '_', '.', or '-'.
func (l *lexer) ident() (string, bool) {
	l.skipSpace()
	start := l.pos
	for l.pos < len(l.src) {
		ch := rune(l.src[l.pos])
		if l.pos == start {
			if !unicode.IsLetter(ch) && ch != '_' {
				break
			}
		} else if !unicode.IsLetter(ch) && !unicode.IsDigit(ch) && ch != '_' && ch != '.' && ch != '-' {
			break
		}
		l.pos++
	}
	if l.pos == start {
		return "", false
	}
	return l.src[start:l.pos], true
}

// operator scans the longest operator token at the cursor.
func (l *lexer) operator() (string, bool) {
	l.skipSpace()
	two := []string{">=", "<=", "!=", "<>", ">*", "*<", "=="}
	for _, op := range two {
		if strings.HasPrefix(l.rest(), op) {
			l.pos += 2
			return op, true
		}
	}
	one := "=<>*~"
	if !l.done() && strings.IndexByte(one, l.src[l.pos]) >= 0 {
		op := l.src[l.pos : l.pos+1]
		l.pos++
		return op, true
	}
	return "", false
}

// value scans a double-quoted string (Go escape syntax) or a bare token
// terminated by whitespace or a comma.
func (l *lexer) value() (string, bool) {
	l.skipSpace()
	if l.done() {
		return "", false
	}
	if l.src[l.pos] == '"' {
		end := l.pos + 1
		for end < len(l.src) {
			if l.src[end] == '\\' {
				end += 2
				continue
			}
			if l.src[end] == '"' {
				break
			}
			end++
		}
		if end >= len(l.src) {
			return "", false
		}
		unq, err := strconv.Unquote(l.src[l.pos : end+1])
		if err != nil {
			return "", false
		}
		l.pos = end + 1
		return unq, true
	}
	start := l.pos
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		if ch == ' ' || ch == '\t' || ch == ',' || ch == '\n' {
			break
		}
		l.pos++
	}
	if l.pos == start {
		return "", false
	}
	return l.src[start:l.pos], true
}
