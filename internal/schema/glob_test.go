package schema

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

func TestGlobMatchTable(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"", "", true},
		{"", "a", false},
		{"*", "", true},
		{"*", "anything", true},
		{"a", "a", true},
		{"a", "b", false},
		{"a*", "abc", true},
		{"a*", "ba", false},
		{"*a", "ba", true},
		{"*a", "ab", false},
		{"*a*", "xax", true},
		{"*a*", "xxx", false},
		{"m*t", "microsoft", true},
		{"m*t", "micronet", true},
		{"m*t", "mt", true},
		{"m*t", "m", false},
		{"m*t", "t", false},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "abc", true},
		{"a*b*c", "acb", false},
		{"a**b", "ab", true},
		{"a*a", "aa", true},
		{"a*a", "a", false},
		{"*ab*ab*", "abab", true},
		{"*ab*ab*", "aab", false},
		{"N*SE", "NYSE", true},
		{"N*SE", "NASDAQ", false},
	}
	for _, c := range cases {
		if got := GlobMatch(c.pattern, c.s); got != c.want {
			t.Errorf("GlobMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

// globToRegexp builds a reference matcher from a glob pattern.
func globToRegexp(pattern string) *regexp.Regexp {
	var b strings.Builder
	b.WriteString("^")
	for _, part := range strings.Split(pattern, "*") {
		b.WriteString(regexp.QuoteMeta(part))
		b.WriteString("*PLACEHOLDER*")
	}
	src := strings.ReplaceAll(strings.TrimSuffix(b.String(), "*PLACEHOLDER*"), "*PLACEHOLDER*", ".*")
	return regexp.MustCompile(src + "$")
}

// TestGlobMatchAgainstRegexp cross-checks the backtracking matcher against
// a regexp-based reference on random patterns and subjects over a tiny
// alphabet (small alphabets maximize star-collision cases).
func TestGlobMatchAgainstRegexp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := "ab*"
	randStr := func(n int, stars bool) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			ch := alphabet[rng.Intn(len(alphabet))]
			if !stars && ch == '*' {
				ch = 'a'
			}
			b.WriteByte(ch)
		}
		return b.String()
	}
	for i := 0; i < 5000; i++ {
		pattern := randStr(rng.Intn(8), true)
		subject := randStr(rng.Intn(10), false)
		want := globToRegexp(pattern).MatchString(subject)
		if got := GlobMatch(pattern, subject); got != want {
			t.Fatalf("GlobMatch(%q, %q) = %v, regexp says %v", pattern, subject, got, want)
		}
	}
}

// Property: any string built by filling a pattern's stars with arbitrary
// text matches the pattern.
func TestGlobMatchFillProperty(t *testing.T) {
	f := func(segsRaw []string, fills []string) bool {
		var segs []string
		for _, s := range segsRaw {
			segs = append(segs, strings.ReplaceAll(s, "*", "x"))
		}
		if len(segs) == 0 {
			return true
		}
		pattern := strings.Join(segs, "*")
		var b strings.Builder
		for i, seg := range segs {
			b.WriteString(seg)
			if i < len(segs)-1 {
				fill := "q"
				if i < len(fills) {
					fill = strings.ReplaceAll(fills[i], "*", "y")
				}
				b.WriteString(fill)
			}
		}
		return GlobMatch(pattern, b.String())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonGlob(t *testing.T) {
	cases := []struct {
		in      string
		op      Op
		pattern string
	}{
		{"abc", OpEQ, "abc"},
		{"abc*", OpPrefix, "abc"},
		{"*abc", OpSuffix, "abc"},
		{"*abc*", OpContains, "abc"},
		{"*", OpContains, ""},
		{"", OpEQ, ""},
		{"**", OpContains, ""},
		{"a*b", OpGlob, "a*b"},
		{"a**b", OpGlob, "a*b"},
		{"N*SE", OpGlob, "N*SE"},
		{"*a*b*", OpGlob, "*a*b*"},
	}
	for _, c := range cases {
		op, p := CanonGlob(c.in)
		if op != c.op || p != c.pattern {
			t.Errorf("CanonGlob(%q) = %v,%q; want %v,%q", c.in, op, p, c.op, c.pattern)
		}
	}
}

// Property: CanonGlob preserves matching semantics.
func TestCanonGlobPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := "ab*"
	randStr := func(n int, stars bool) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			ch := alphabet[rng.Intn(len(alphabet))]
			if !stars && ch == '*' {
				ch = 'b'
			}
			b.WriteByte(ch)
		}
		return b.String()
	}
	for i := 0; i < 3000; i++ {
		pattern := randStr(rng.Intn(7), true)
		subject := randStr(rng.Intn(9), false)
		op, p := CanonGlob(pattern)
		con := Constraint{Op: op, Value: StringValue(p)}
		want := GlobMatch(pattern, subject)
		if got := con.Satisfied(StringValue(subject)); got != want {
			t.Fatalf("CanonGlob(%q)=(%v,%q): Satisfied(%q)=%v, want %v",
				pattern, op, p, subject, got, want)
		}
	}
}

func TestGlobOfRoundTrip(t *testing.T) {
	cases := []struct {
		op      Op
		pattern string
		glob    string
	}{
		{OpEQ, "abc", "abc"},
		{OpPrefix, "abc", "abc*"},
		{OpSuffix, "abc", "*abc"},
		{OpContains, "abc", "*abc*"},
		{OpGlob, "a*b", "a*b"},
	}
	for _, c := range cases {
		g, ok := GlobOf(c.op, c.pattern)
		if !ok || g != c.glob {
			t.Errorf("GlobOf(%v, %q) = %q,%v; want %q", c.op, c.pattern, g, ok, c.glob)
		}
	}
	if _, ok := GlobOf(OpNE, "x"); ok {
		t.Error("GlobOf should fail for OpNE")
	}
	if _, ok := GlobOf(OpLT, "x"); ok {
		t.Error("GlobOf should fail for arithmetic ops")
	}
}
