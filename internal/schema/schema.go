// Package schema defines the event and subscription model of the
// subscription-summarization paper (Triantafillou & Economides, ICDCS 2004,
// Section 2.1): events are untyped sets of typed attributes, and
// subscriptions are conjunctions of per-attribute constraints over a rich
// operator set (=, ≠, <, ≤, >, ≥, prefix, suffix, containment, glob).
//
// The paper assumes (Section 3) that the set of attributes is predefined,
// ordered, and known to every broker; Schema captures exactly that global
// agreement. Attribute identifiers are indexes into the schema and double as
// bit positions in the c3 component of subscription ids.
package schema

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Type enumerates the attribute data types supported by the system.
// Arithmetic types (Int, Float, Date) are normalized to float64 for
// constraint evaluation; Date is represented as Unix seconds.
type Type uint8

// Supported attribute types.
const (
	TypeInvalid Type = iota
	TypeString
	TypeInt
	TypeFloat
	TypeDate
)

// String returns the lower-case name of the type.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeDate:
		return "date"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(t))
	}
}

// ParseType converts a type name to a Type.
func ParseType(s string) (Type, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "string":
		return TypeString, nil
	case "int", "integer":
		return TypeInt, nil
	case "float", "double":
		return TypeFloat, nil
	case "date", "time":
		return TypeDate, nil
	default:
		return TypeInvalid, fmt.Errorf("schema: unknown type %q", s)
	}
}

// Arithmetic reports whether values of the type are matched numerically.
func (t Type) Arithmetic() bool {
	return t == TypeInt || t == TypeFloat || t == TypeDate
}

// AttrID identifies an attribute within a Schema. It is the attribute's
// index in the ordered attribute list and its bit position in c3.
type AttrID uint16

// Attribute is a (name, type) pair in the global schema.
type Attribute struct {
	Name string
	Type Type
}

// Schema is the ordered, system-wide set of attribute definitions shared by
// all brokers. The zero value is an empty schema; use New or Add to build
// one. A named attribute cannot have two different data types (paper
// assumption (i)).
//
// Schemas are safe for concurrent use: the paper's Section 6 extension to
// dynamically-changing attribute schemata only requires growing the c3
// field of subscription ids, so attributes may be appended at runtime
// (Add) while brokers keep matching — existing ids simply have the new
// bits unset.
type Schema struct {
	mu     sync.RWMutex
	attrs  []Attribute
	byName map[string]AttrID
}

// New builds a schema from the given attribute definitions, in order.
func New(attrs ...Attribute) (*Schema, error) {
	s := &Schema{byName: make(map[string]AttrID, len(attrs))}
	for _, a := range attrs {
		if _, err := s.Add(a.Name, a.Type); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustNew is like New but panics on error. Intended for tests and examples
// with literal attribute lists.
func MustNew(attrs ...Attribute) *Schema {
	s, err := New(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Add appends an attribute definition and returns its id. Appending is
// safe while other goroutines match events (schema evolution, Section 6).
func (s *Schema) Add(name string, t Type) (AttrID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" {
		return 0, fmt.Errorf("schema: empty attribute name")
	}
	if t == TypeInvalid || t > TypeDate {
		return 0, fmt.Errorf("schema: attribute %q has invalid type", name)
	}
	if s.byName == nil {
		s.byName = make(map[string]AttrID)
	}
	if _, ok := s.byName[name]; ok {
		return 0, fmt.Errorf("schema: duplicate attribute %q", name)
	}
	id := AttrID(len(s.attrs))
	s.attrs = append(s.attrs, Attribute{Name: name, Type: t})
	s.byName[name] = id
	return id, nil
}

// Len returns the number of attributes (the paper's n_t).
func (s *Schema) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.attrs)
}

// ID resolves an attribute name to its id.
func (s *Schema) ID(name string) (AttrID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.byName[name]
	return id, ok
}

// Attr returns the definition of the given attribute id.
func (s *Schema) Attr(id AttrID) (Attribute, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) >= len(s.attrs) {
		return Attribute{}, false
	}
	return s.attrs[id], true
}

// Name returns the attribute name for id, or "attr<id>" if out of range.
func (s *Schema) Name(id AttrID) string {
	if a, ok := s.Attr(id); ok {
		return a.Name
	}
	return fmt.Sprintf("attr%d", id)
}

// TypeOf returns the type of the attribute id (TypeInvalid if unknown).
func (s *Schema) TypeOf(id AttrID) Type {
	a, _ := s.Attr(id)
	return a.Type
}

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Attributes returns a copy of the ordered attribute definitions.
func (s *Schema) Attributes() []Attribute {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Equal reports whether two schemas define the same attributes in the same
// order. Brokers must agree on the schema before exchanging summaries.
// A schema is always Equal to itself, even mid-evolution.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	a := s.Attributes()
	b := o.Attributes()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "name:type" pairs in order.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range s.Attributes() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", a.Name, a.Type)
	}
	b.WriteByte('}')
	return b.String()
}

// SortedNames returns attribute names in lexicographic order; useful for
// deterministic rendering of attribute sets.
func (s *Schema) SortedNames() []string {
	names := s.Names()
	sort.Strings(names)
	return names
}
