package schema

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Value is a typed attribute value carried by events and constraints.
// Arithmetic values (int, float, date) are normalized to a float64 in Num;
// string values live in Str. The zero Value is invalid.
type Value struct {
	Type Type
	Num  float64
	Str  string
}

// String constructs a string value.
func StringValue(s string) Value { return Value{Type: TypeString, Str: s} }

// IntValue constructs an int value.
func IntValue(v int64) Value { return Value{Type: TypeInt, Num: float64(v)} }

// FloatValue constructs a float value.
func FloatValue(v float64) Value { return Value{Type: TypeFloat, Num: v} }

// DateValue constructs a date value from a time instant (second precision).
func DateValue(t time.Time) Value {
	return Value{Type: TypeDate, Num: float64(t.Unix())}
}

// Arithmetic reports whether the value is matched numerically.
func (v Value) Arithmetic() bool { return v.Type.Arithmetic() }

// Valid reports whether the value carries a usable type and, for arithmetic
// values, a finite number (NaN and infinities are rejected at the API
// boundary so summary range arithmetic stays total).
func (v Value) Valid() bool {
	switch v.Type {
	case TypeString:
		return true
	case TypeInt, TypeFloat, TypeDate:
		return !math.IsNaN(v.Num) && !math.IsInf(v.Num, 0)
	default:
		return false
	}
}

// Compare orders two arithmetic values: -1 if v<o, 0 if equal, +1 if v>o.
// It panics if either value is not arithmetic; callers validate types first.
func (v Value) Compare(o Value) int {
	if !v.Arithmetic() || !o.Arithmetic() {
		panic("schema: Compare on non-arithmetic value")
	}
	switch {
	case v.Num < o.Num:
		return -1
	case v.Num > o.Num:
		return 1
	default:
		return 0
	}
}

// Equal reports semantic equality: same type class (string vs arithmetic)
// and same payload. An int 3 equals a float 3 only if both are arithmetic
// of any kind with the same Num; cross string/arithmetic is never equal.
func (v Value) Equal(o Value) bool {
	if v.Type == TypeString || o.Type == TypeString {
		return v.Type == TypeString && o.Type == TypeString && v.Str == o.Str
	}
	return v.Arithmetic() && o.Arithmetic() && v.Num == o.Num
}

// String renders the value for humans: strings quoted, ints without decimal
// point, dates in RFC 3339.
func (v Value) String() string {
	switch v.Type {
	case TypeString:
		return strconv.Quote(v.Str)
	case TypeInt:
		return strconv.FormatInt(int64(v.Num), 10)
	case TypeFloat:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case TypeDate:
		return time.Unix(int64(v.Num), 0).UTC().Format(time.RFC3339)
	default:
		return "<invalid>"
	}
}

// WireSize returns the size in bytes this value contributes under the
// paper's cost model (Table 2): arithmetic values cost s_st = 4 bytes,
// string values cost one byte per character (average s_sv = 10).
func (v Value) WireSize() int {
	if v.Type == TypeString {
		return len(v.Str)
	}
	return 4
}

// ParseValue parses the textual form of a value of the given type:
// ints in base 10, floats per strconv, dates as RFC 3339 or Unix seconds,
// strings verbatim (quotes, if present, must be pre-stripped by the caller).
func ParseValue(t Type, text string) (Value, error) {
	switch t {
	case TypeString:
		return StringValue(text), nil
	case TypeInt:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("schema: bad int %q: %w", text, err)
		}
		return IntValue(n), nil
	case TypeFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("schema: bad float %q: %w", text, err)
		}
		v := FloatValue(f)
		if !v.Valid() {
			return Value{}, fmt.Errorf("schema: non-finite float %q", text)
		}
		return v, nil
	case TypeDate:
		if ts, err := time.Parse(time.RFC3339, text); err == nil {
			return DateValue(ts), nil
		}
		secs, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("schema: bad date %q (want RFC3339 or unix seconds)", text)
		}
		return DateValue(time.Unix(secs, 0)), nil
	default:
		return Value{}, fmt.Errorf("schema: cannot parse value of invalid type")
	}
}
