package schema

import "strings"

// GlobMatch reports whether s matches pattern, where '*' in the pattern
// matches any (possibly empty) substring. There is no escape syntax; SACS
// covering rows only ever need literal segments separated by stars (the
// paper's example generalizes "microsoft" and "micronet" to "m*t").
//
// The matcher runs in O(len(pattern)*len(s)) worst case using the classic
// backtracking-with-star-bookmark algorithm, which is linear for the
// single-star patterns that dominate in practice.
func GlobMatch(pattern, s string) bool {
	var (
		p, i         int // cursors into pattern and s
		starP, starI int // bookmark of the last '*' and the s position tried
		haveStar     bool
	)
	for i < len(s) {
		switch {
		case p < len(pattern) && pattern[p] == '*':
			haveStar = true
			starP, starI = p, i
			p++
		case p < len(pattern) && pattern[p] == s[i]:
			p++
			i++
		case haveStar:
			// Backtrack: let the last star absorb one more byte.
			starI++
			p, i = starP+1, starI
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}

// globSegments splits a glob pattern into its literal segments, recording
// whether the pattern is anchored at the start and/or end (i.e. whether it
// begins/ends with a literal rather than '*').
func globSegments(pattern string) (segs []string, anchoredStart, anchoredEnd bool) {
	anchoredStart = !strings.HasPrefix(pattern, "*")
	anchoredEnd = !strings.HasSuffix(pattern, "*")
	for _, seg := range strings.Split(pattern, "*") {
		if seg != "" {
			segs = append(segs, seg)
		}
	}
	return segs, anchoredStart, anchoredEnd
}

// CanonGlob returns the canonical (Op, pattern) form of a string constraint
// expressed as a glob, folding degenerate patterns into the cheaper
// operators: "abc" -> OpEQ, "abc*" -> OpPrefix, "*abc" -> OpSuffix,
// "*abc*" -> OpContains, "*"/"" -> OpContains "" (matches everything).
// Patterns with interior stars stay OpGlob (with redundant duplicate stars
// collapsed).
func CanonGlob(pattern string) (Op, string) {
	// Collapse runs of stars: "a**b" == "a*b".
	for strings.Contains(pattern, "**") {
		pattern = strings.ReplaceAll(pattern, "**", "*")
	}
	segs, start, end := globSegments(pattern)
	switch {
	case len(segs) == 0 && start && end:
		// No stars and no literals: only the empty string matches.
		return OpEQ, ""
	case len(segs) == 0:
		return OpContains, ""
	case len(segs) == 1 && start && end:
		return OpEQ, segs[0]
	case len(segs) == 1 && start:
		return OpPrefix, segs[0]
	case len(segs) == 1 && end:
		return OpSuffix, segs[0]
	case len(segs) == 1:
		return OpContains, segs[0]
	default:
		return OpGlob, pattern
	}
}

// GlobOf converts a string constraint (op, pattern) to its equivalent glob
// pattern. OpNE has no glob equivalent; ok is false for it and for
// non-string operators.
func GlobOf(op Op, pattern string) (glob string, ok bool) {
	switch op {
	case OpEQ:
		return pattern, true
	case OpPrefix:
		return pattern + "*", true
	case OpSuffix:
		return "*" + pattern, true
	case OpContains:
		return "*" + pattern + "*", true
	case OpGlob:
		return pattern, true
	default:
		return "", false
	}
}
