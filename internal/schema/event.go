package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Field is one attribute/value pair of an event.
type Field struct {
	Attr  AttrID
	Value Value
}

// Event is a published notification: a set of typed attribute values
// (Section 2.1, Figure 2). An event may carry more attributes than any
// subscription mentions. Fields are kept sorted by attribute id, with at
// most one field per attribute.
type Event struct {
	fields []Field
}

// NewEvent builds an event over the given schema from name/value pairs,
// validating names, types, and duplicates.
func NewEvent(s *Schema, fields map[string]Value) (*Event, error) {
	e := &Event{fields: make([]Field, 0, len(fields))}
	for name, v := range fields {
		id, ok := s.ID(name)
		if !ok {
			return nil, fmt.Errorf("schema: event attribute %q not in schema", name)
		}
		if err := checkValueType(s, id, v); err != nil {
			return nil, err
		}
		e.fields = append(e.fields, Field{Attr: id, Value: v})
	}
	sort.Slice(e.fields, func(i, j int) bool { return e.fields[i].Attr < e.fields[j].Attr })
	return e, nil
}

// EventFromFields builds an event from pre-resolved fields, validating
// against the schema. Duplicate attributes are an error.
func EventFromFields(s *Schema, fields []Field) (*Event, error) {
	e := &Event{fields: make([]Field, len(fields))}
	copy(e.fields, fields)
	sort.Slice(e.fields, func(i, j int) bool { return e.fields[i].Attr < e.fields[j].Attr })
	for i, f := range e.fields {
		if err := checkValueType(s, f.Attr, f.Value); err != nil {
			return nil, err
		}
		if i > 0 && e.fields[i-1].Attr == f.Attr {
			return nil, fmt.Errorf("schema: duplicate event attribute %q", s.Name(f.Attr))
		}
	}
	return e, nil
}

func checkValueType(s *Schema, id AttrID, v Value) error {
	a, ok := s.Attr(id)
	if !ok {
		return fmt.Errorf("schema: attribute id %d out of range", id)
	}
	if !v.Valid() {
		return fmt.Errorf("schema: invalid value for attribute %q", a.Name)
	}
	// Int/float/date are interchangeable numerically only if declared so;
	// the declared type is authoritative (paper assumption (i)).
	if a.Type == TypeString != (v.Type == TypeString) {
		return fmt.Errorf("schema: attribute %q is %s, got %s value", a.Name, a.Type, v.Type)
	}
	if a.Type != TypeString && v.Type != a.Type {
		return fmt.Errorf("schema: attribute %q is %s, got %s value", a.Name, a.Type, v.Type)
	}
	return nil
}

// Len returns the number of fields in the event.
func (e *Event) Len() int { return len(e.fields) }

// Fields returns the event's fields in attribute-id order. The returned
// slice is shared; callers must not mutate it.
func (e *Event) Fields() []Field { return e.fields }

// Value returns the value of the given attribute, if present.
func (e *Event) Value(id AttrID) (Value, bool) {
	i := sort.Search(len(e.fields), func(i int) bool { return e.fields[i].Attr >= id })
	if i < len(e.fields) && e.fields[i].Attr == id {
		return e.fields[i].Value, true
	}
	return Value{}, false
}

// Has reports whether the event carries the given attribute.
func (e *Event) Has(id AttrID) bool {
	_, ok := e.Value(id)
	return ok
}

// WireSize returns the event's size in bytes under the paper's cost model:
// 2 bytes of attribute id plus the value payload, per field.
func (e *Event) WireSize() int {
	n := 0
	for _, f := range e.fields {
		n += 2 + f.Value.WireSize()
	}
	return n
}

// String renders the event as "name=value" pairs using the schema for
// attribute names.
func (e *Event) Format(s *Schema) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, f := range e.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", s.Name(f.Attr), f.Value)
	}
	b.WriteByte('}')
	return b.String()
}
