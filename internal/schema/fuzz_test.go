package schema

import "testing"

// FuzzParseSubscription: the parser must never panic; accepted inputs must
// format and re-parse stably.
func FuzzParseSubscription(f *testing.F) {
	s := MustNew(
		Attribute{Name: "exchange", Type: TypeString},
		Attribute{Name: "price", Type: TypeFloat},
		Attribute{Name: "volume", Type: TypeInt},
	)
	f.Add(`exchange = "N*SE" && price < 8.70 && price > 8.30`)
	f.Add(`volume > 130000`)
	f.Add(`exchange >* OT`)
	f.Add(`price`)
	f.Add(`&&&&`)
	f.Add("exchange = \"unterminated")
	f.Fuzz(func(t *testing.T, text string) {
		sub, err := ParseSubscription(s, text)
		if err != nil {
			return
		}
		out := sub.Format(s)
		again, err := ParseSubscription(s, out)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", out, text, err)
		}
		if again.Format(s) != out {
			t.Fatalf("format not stable: %q vs %q", again.Format(s), out)
		}
	})
}

// FuzzDecodeEvent: the binary event decoder must never panic.
func FuzzDecodeEvent(f *testing.F) {
	s := MustNew(
		Attribute{Name: "symbol", Type: TypeString},
		Attribute{Name: "price", Type: TypeFloat},
	)
	ev, err := ParseEvent(s, `symbol=OTE price=8.40`)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(EncodeEvent(nil, ev))
	f.Add([]byte{})
	f.Add([]byte{1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, n, err := DecodeEvent(s, data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Accepted events re-encode and decode to the same fields.
		buf := EncodeEvent(nil, ev)
		again, _, err := DecodeEvent(s, buf)
		if err != nil || again.Len() != ev.Len() {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzGlobMatch: the backtracking matcher must terminate without panic on
// arbitrary pattern/subject pairs.
func FuzzGlobMatch(f *testing.F) {
	f.Add("m*t", "microsoft")
	f.Add("***", "")
	f.Add("a*b*c*d", "abcdabcd")
	f.Fuzz(func(t *testing.T, pattern, s string) {
		if len(pattern) > 64 || len(s) > 256 {
			return // keep worst-case backtracking bounded in test mode
		}
		got := GlobMatch(pattern, s)
		// Cross-check a basic soundness property: a pattern with no stars
		// matches only itself.
		hasStar := false
		for i := 0; i < len(pattern); i++ {
			if pattern[i] == '*' {
				hasStar = true
				break
			}
		}
		if !hasStar && got != (pattern == s) {
			t.Fatalf("literal pattern %q vs %q: got %v", pattern, s, got)
		}
	})
}
