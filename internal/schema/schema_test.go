package schema

import (
	"strings"
	"testing"
	"time"
)

// paperSchema returns the stock-market schema of the paper's Figure 2.
func paperSchema(t testing.TB) *Schema {
	t.Helper()
	s, err := New(
		Attribute{Name: "exchange", Type: TypeString},
		Attribute{Name: "symbol", Type: TypeString},
		Attribute{Name: "when", Type: TypeDate},
		Attribute{Name: "price", Type: TypeFloat},
		Attribute{Name: "volume", Type: TypeInt},
		Attribute{Name: "high", Type: TypeFloat},
		Attribute{Name: "low", Type: TypeFloat},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestSchemaAddAndLookup(t *testing.T) {
	s := paperSchema(t)
	if got := s.Len(); got != 7 {
		t.Fatalf("Len = %d, want 7", got)
	}
	id, ok := s.ID("price")
	if !ok || id != 3 {
		t.Fatalf("ID(price) = %d,%v; want 3,true", id, ok)
	}
	a, ok := s.Attr(id)
	if !ok || a.Name != "price" || a.Type != TypeFloat {
		t.Fatalf("Attr(3) = %+v,%v", a, ok)
	}
	if s.Name(99) != "attr99" {
		t.Fatalf("Name(99) = %q", s.Name(99))
	}
	if s.TypeOf(0) != TypeString || s.TypeOf(4) != TypeInt {
		t.Fatalf("TypeOf mismatch: %v %v", s.TypeOf(0), s.TypeOf(4))
	}
}

func TestSchemaRejectsDuplicatesAndInvalid(t *testing.T) {
	s := MustNew(Attribute{Name: "a", Type: TypeInt})
	if _, err := s.Add("a", TypeString); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if _, err := s.Add("", TypeInt); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := s.Add("b", TypeInvalid); err == nil {
		t.Fatal("invalid type accepted")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := paperSchema(t)
	b := paperSchema(t)
	if !a.Equal(b) {
		t.Fatal("identical schemas not Equal")
	}
	c := MustNew(Attribute{Name: "exchange", Type: TypeString})
	if a.Equal(c) {
		t.Fatal("different schemas reported Equal")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustNew(
		Attribute{Name: "x", Type: TypeInt},
		Attribute{Name: "y", Type: TypeString},
	)
	want := "{x:int, y:string}"
	if got := s.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestTypeParseRoundTrip(t *testing.T) {
	for _, typ := range []Type{TypeString, TypeInt, TypeFloat, TypeDate} {
		got, err := ParseType(typ.String())
		if err != nil || got != typ {
			t.Errorf("ParseType(%q) = %v, %v", typ.String(), got, err)
		}
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Error("ParseType accepted bogus type")
	}
}

func TestValueConstructorsAndValidity(t *testing.T) {
	cases := []struct {
		v     Value
		valid bool
		arith bool
	}{
		{StringValue("abc"), true, false},
		{StringValue(""), true, false},
		{IntValue(-7), true, true},
		{FloatValue(3.25), true, true},
		{DateValue(time.Unix(100, 0)), true, true},
		{FloatValue(float64(1) / 0.0000000000000000000000001), true, true},
		{Value{}, false, false},
	}
	for i, c := range cases {
		if c.v.Valid() != c.valid {
			t.Errorf("case %d: Valid = %v, want %v", i, c.v.Valid(), c.valid)
		}
		if c.v.Arithmetic() != c.arith {
			t.Errorf("case %d: Arithmetic = %v, want %v", i, c.v.Arithmetic(), c.arith)
		}
	}
}

func TestValueCompareAndEqual(t *testing.T) {
	if IntValue(3).Compare(FloatValue(3.5)) != -1 {
		t.Error("3 < 3.5 failed")
	}
	if FloatValue(4).Compare(IntValue(4)) != 0 {
		t.Error("4 == 4 failed across int/float")
	}
	if FloatValue(5).Compare(IntValue(4)) != 1 {
		t.Error("5 > 4 failed")
	}
	if !IntValue(4).Equal(FloatValue(4)) {
		t.Error("numeric Equal across types failed")
	}
	if StringValue("4").Equal(IntValue(4)) {
		t.Error("string/number Equal should be false")
	}
	if !StringValue("x").Equal(StringValue("x")) {
		t.Error("string Equal failed")
	}
}

func TestValueWireSize(t *testing.T) {
	if got := StringValue("NYSE").WireSize(); got != 4 {
		t.Fatalf("string wire size = %d, want 4", got)
	}
	if got := FloatValue(8.4).WireSize(); got != 4 {
		t.Fatalf("float wire size = %d, want 4 (paper s_st)", got)
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(TypeInt, "42")
	if err != nil || v.Num != 42 || v.Type != TypeInt {
		t.Fatalf("ParseValue int: %v %v", v, err)
	}
	if _, err := ParseValue(TypeInt, "4.2"); err == nil {
		t.Fatal("int parse accepted float text")
	}
	v, err = ParseValue(TypeFloat, "8.40")
	if err != nil || v.Num != 8.40 {
		t.Fatalf("ParseValue float: %v %v", v, err)
	}
	if _, err := ParseValue(TypeFloat, "NaN"); err == nil {
		t.Fatal("float parse accepted NaN")
	}
	v, err = ParseValue(TypeDate, "2003-07-01T12:05:25Z")
	if err != nil || v.Type != TypeDate {
		t.Fatalf("ParseValue date: %v %v", v, err)
	}
	v2, err := ParseValue(TypeDate, "1057061125")
	if err != nil || v2.Num != v.Num {
		t.Fatalf("ParseValue unix date: %v vs %v (%v)", v2, v, err)
	}
	if _, err := ParseValue(TypeInvalid, "x"); err == nil {
		t.Fatal("ParseValue accepted invalid type")
	}
}

func TestEventConstructionAndLookup(t *testing.T) {
	s := paperSchema(t)
	e, err := NewEvent(s, map[string]Value{
		"exchange": StringValue("NYSE"),
		"symbol":   StringValue("OTE"),
		"price":    FloatValue(8.40),
		"volume":   IntValue(132700),
		"high":     FloatValue(8.80),
		"low":      FloatValue(8.22),
	})
	if err != nil {
		t.Fatalf("NewEvent: %v", err)
	}
	if e.Len() != 6 {
		t.Fatalf("Len = %d, want 6", e.Len())
	}
	id, _ := s.ID("price")
	v, ok := e.Value(id)
	if !ok || v.Num != 8.40 {
		t.Fatalf("Value(price) = %v,%v", v, ok)
	}
	whenID, _ := s.ID("when")
	if e.Has(whenID) {
		t.Fatal("event should not have 'when'")
	}
	// Fields are sorted by attribute id.
	fs := e.Fields()
	for i := 1; i < len(fs); i++ {
		if fs[i-1].Attr >= fs[i].Attr {
			t.Fatal("fields not sorted")
		}
	}
	if e.WireSize() <= 0 {
		t.Fatal("WireSize should be positive")
	}
	str := e.Format(s)
	if !strings.Contains(str, "price=8.4") || !strings.Contains(str, `exchange="NYSE"`) {
		t.Fatalf("Format = %s", str)
	}
}

func TestEventValidation(t *testing.T) {
	s := paperSchema(t)
	if _, err := NewEvent(s, map[string]Value{"nosuch": IntValue(1)}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if _, err := NewEvent(s, map[string]Value{"price": StringValue("x")}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if _, err := NewEvent(s, map[string]Value{"volume": FloatValue(1.5)}); err == nil {
		t.Fatal("float value for int attribute accepted")
	}
	priceID, _ := s.ID("price")
	if _, err := EventFromFields(s, []Field{
		{Attr: priceID, Value: FloatValue(1)},
		{Attr: priceID, Value: FloatValue(2)},
	}); err == nil {
		t.Fatal("duplicate field accepted")
	}
	if _, err := EventFromFields(s, []Field{{Attr: 100, Value: FloatValue(1)}}); err == nil {
		t.Fatal("out-of-range attribute accepted")
	}
}

func TestOpParseAndClassify(t *testing.T) {
	arith := []Op{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}
	str := []Op{OpEQ, OpNE, OpPrefix, OpSuffix, OpContains, OpGlob}
	for _, op := range arith {
		if !op.ArithmeticOp() {
			t.Errorf("%v should be arithmetic", op)
		}
	}
	for _, op := range str {
		if !op.StringOp() {
			t.Errorf("%v should be string", op)
		}
	}
	if OpPrefix.ArithmeticOp() || OpLT.StringOp() {
		t.Error("misclassified operator")
	}
	for _, tok := range []string{"=", "!=", "<", "<=", ">", ">=", ">*", "*<", "*", "~"} {
		op, err := ParseOp(tok)
		if err != nil {
			t.Errorf("ParseOp(%q): %v", tok, err)
			continue
		}
		if op.String() != tok {
			t.Errorf("ParseOp(%q).String() = %q", tok, op.String())
		}
	}
	if _, err := ParseOp("<<"); err == nil {
		t.Error("ParseOp accepted <<")
	}
}

func TestConstraintSatisfiedArithmetic(t *testing.T) {
	cases := []struct {
		op   Op
		cv   float64
		ev   float64
		want bool
	}{
		{OpEQ, 8.4, 8.4, true},
		{OpEQ, 8.4, 8.41, false},
		{OpNE, 8.4, 8.41, true},
		{OpNE, 8.4, 8.4, false},
		{OpLT, 8.7, 8.4, true},
		{OpLT, 8.7, 8.7, false},
		{OpLE, 8.7, 8.7, true},
		{OpGT, 8.3, 8.4, true},
		{OpGT, 8.3, 8.3, false},
		{OpGE, 8.3, 8.3, true},
	}
	for _, c := range cases {
		con := Constraint{Attr: 0, Op: c.op, Value: FloatValue(c.cv)}
		if got := con.Satisfied(FloatValue(c.ev)); got != c.want {
			t.Errorf("%v %v vs %v: got %v, want %v", c.op, c.cv, c.ev, got, c.want)
		}
	}
	// Cross-type: string event value never satisfies arithmetic constraint.
	con := Constraint{Attr: 0, Op: OpEQ, Value: FloatValue(1)}
	if con.Satisfied(StringValue("1")) {
		t.Error("string satisfied arithmetic constraint")
	}
}

func TestConstraintSatisfiedString(t *testing.T) {
	cases := []struct {
		op      Op
		pattern string
		ev      string
		want    bool
	}{
		{OpEQ, "OTE", "OTE", true},
		{OpEQ, "OTE", "OTEX", false},
		{OpNE, "OTE", "OTEX", true},
		{OpPrefix, "OT", "OTE", true},
		{OpPrefix, "OT", "NOT", false},
		{OpSuffix, "SE", "NYSE", true},
		{OpSuffix, "SE", "SEN", false},
		{OpContains, "YS", "NYSE", true},
		{OpContains, "YS", "NSE", false},
		{OpGlob, "m*t", "microsoft", true},
		{OpGlob, "m*t", "micronet", true},
		{OpGlob, "m*t", "microsoftx", false},
		{OpGlob, "N*SE", "NYSE", true},
	}
	for _, c := range cases {
		con := Constraint{Attr: 0, Op: c.op, Value: StringValue(c.pattern)}
		if got := con.Satisfied(StringValue(c.ev)); got != c.want {
			t.Errorf("%v %q vs %q: got %v, want %v", c.op, c.pattern, c.ev, got, c.want)
		}
	}
	con := Constraint{Attr: 0, Op: OpEQ, Value: StringValue("1")}
	if con.Satisfied(IntValue(1)) {
		t.Error("number satisfied string constraint")
	}
}

func TestConstraintValidate(t *testing.T) {
	s := paperSchema(t)
	priceID, _ := s.ID("price")
	symID, _ := s.ID("symbol")
	ok := Constraint{Attr: priceID, Op: OpLT, Value: FloatValue(8.7)}
	if err := ok.Validate(s); err != nil {
		t.Fatalf("valid constraint rejected: %v", err)
	}
	bad := []Constraint{
		{Attr: priceID, Op: OpPrefix, Value: FloatValue(8.7)}, // string op on arithmetic
		{Attr: symID, Op: OpLT, Value: StringValue("x")},      // arithmetic op on string
		{Attr: 200, Op: OpEQ, Value: FloatValue(1)},           // unknown attribute
		{Attr: priceID, Op: OpEQ, Value: StringValue("x")},    // wrong value type
		{Attr: symID, Op: OpEQ, Value: IntValue(1)},           // wrong value type
	}
	for i, c := range bad {
		if err := c.Validate(s); err == nil {
			t.Errorf("bad constraint %d accepted", i)
		}
	}
}

// TestPaperExample1 reproduces the paper's Example 1 end to end at the
// exact-matching level: the Figure 2 event matches Subscription 1 but not
// Subscription 2 of Figure 3.
func TestPaperExample1(t *testing.T) {
	s := paperSchema(t)
	sub1, err := ParseSubscription(s, `exchange = "N*SE" && symbol = OTE && price < 8.70 && price > 8.30`)
	if err != nil {
		t.Fatalf("sub1: %v", err)
	}
	sub2, err := ParseSubscription(s, `symbol >* OT && price = 8.20 && volume > 130000 && low < 8.05`)
	if err != nil {
		t.Fatalf("sub2: %v", err)
	}
	ev, err := ParseEvent(s, `exchange=NYSE symbol=OTE when=1057061125 price=8.40 volume=132700 high=8.80 low=8.22`)
	if err != nil {
		t.Fatalf("event: %v", err)
	}
	if !sub1.Matches(ev) {
		t.Error("Subscription 1 should match the Figure 2 event")
	}
	if sub2.Matches(ev) {
		t.Error("Subscription 2 should NOT match the Figure 2 event")
	}
	// Subscription 1 constrains 3 distinct attributes (exchange, symbol,
	// price — price twice), subscription 2 constrains 4.
	if n := sub1.NumAttrs(); n != 3 {
		t.Errorf("sub1 NumAttrs = %d, want 3", n)
	}
	if n := sub2.NumAttrs(); n != 4 {
		t.Errorf("sub2 NumAttrs = %d, want 4", n)
	}
}

func TestSubscriptionAttrSetSortedDistinct(t *testing.T) {
	s := paperSchema(t)
	sub, err := ParseSubscription(s, `price > 1 && volume > 2 && price < 9 && exchange = X`)
	if err != nil {
		t.Fatal(err)
	}
	got := sub.AttrSet()
	exID, _ := s.ID("exchange")
	prID, _ := s.ID("price")
	voID, _ := s.ID("volume")
	want := []AttrID{exID, prID, voID}
	if len(got) != len(want) {
		t.Fatalf("AttrSet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AttrSet = %v, want %v", got, want)
		}
	}
}

func TestSubscriptionRequiresConstraint(t *testing.T) {
	s := paperSchema(t)
	if _, err := NewSubscription(s); err == nil {
		t.Fatal("empty subscription accepted")
	}
}

func TestSubscriptionMissingAttributeDoesNotMatch(t *testing.T) {
	s := paperSchema(t)
	sub, err := ParseSubscription(s, `low < 9.0`)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := ParseEvent(s, `price=8.4`)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Matches(ev) {
		t.Fatal("subscription matched event missing its attribute")
	}
}

func TestSubscriptionFormatRoundTrip(t *testing.T) {
	s := paperSchema(t)
	in := `symbol >* "OT" && price > 8.30 && price < 8.70`
	sub, err := ParseSubscription(s, in)
	if err != nil {
		t.Fatal(err)
	}
	out := sub.Format(s)
	sub2, err := ParseSubscription(s, out)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", out, err)
	}
	if sub2.Format(s) != out {
		t.Fatalf("format not stable: %q vs %q", sub2.Format(s), out)
	}
}
