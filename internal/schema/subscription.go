package schema

import (
	"fmt"
	"strings"
)

// Op enumerates constraint operators. The paper's notation maps as:
// prefix ">*", suffix "*<", containment "*"; Glob covers general patterns
// such as "m*t" and "N*SE" that SACS rows use for covering constraints.
type Op uint8

// Supported constraint operators.
const (
	OpInvalid  Op = iota
	OpEQ          // =
	OpNE          // !=
	OpLT          // <   (arithmetic only)
	OpLE          // <=  (arithmetic only)
	OpGT          // >   (arithmetic only)
	OpGE          // >=  (arithmetic only)
	OpPrefix      // >* (string only)
	OpSuffix      // *< (string only)
	OpContains    // *  (string only)
	OpGlob        // pattern with embedded '*' wildcards (string only)
)

// String returns the operator's source form.
func (op Op) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpPrefix:
		return ">*"
	case OpSuffix:
		return "*<"
	case OpContains:
		return "*"
	case OpGlob:
		return "~"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// ParseOp converts a source token to an operator.
func ParseOp(s string) (Op, error) {
	switch s {
	case "=", "==":
		return OpEQ, nil
	case "!=", "<>":
		return OpNE, nil
	case "<":
		return OpLT, nil
	case "<=":
		return OpLE, nil
	case ">":
		return OpGT, nil
	case ">=":
		return OpGE, nil
	case ">*":
		return OpPrefix, nil
	case "*<":
		return OpSuffix, nil
	case "*":
		return OpContains, nil
	case "~":
		return OpGlob, nil
	default:
		return OpInvalid, fmt.Errorf("schema: unknown operator %q", s)
	}
}

// ArithmeticOp reports whether op applies to arithmetic attributes.
func (op Op) ArithmeticOp() bool {
	switch op {
	case OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE:
		return true
	default:
		return false
	}
}

// StringOp reports whether op applies to string attributes.
func (op Op) StringOp() bool {
	switch op {
	case OpEQ, OpNE, OpPrefix, OpSuffix, OpContains, OpGlob:
		return true
	default:
		return false
	}
}

// Constraint is one attribute condition of a subscription.
type Constraint struct {
	Attr  AttrID
	Op    Op
	Value Value
}

// Validate checks the constraint against the schema: known attribute,
// operator compatible with the attribute type, value of the right type.
func (c Constraint) Validate(s *Schema) error {
	a, ok := s.Attr(c.Attr)
	if !ok {
		return fmt.Errorf("schema: constraint attribute id %d out of range", c.Attr)
	}
	if a.Type.Arithmetic() && !c.Op.ArithmeticOp() {
		return fmt.Errorf("schema: operator %s not valid for arithmetic attribute %q", c.Op, a.Name)
	}
	if a.Type == TypeString && !c.Op.StringOp() {
		return fmt.Errorf("schema: operator %s not valid for string attribute %q", c.Op, a.Name)
	}
	return checkValueType(s, c.Attr, c.Value)
}

// Satisfied reports whether the event value v satisfies the constraint.
// The caller guarantees v belongs to the constraint's attribute.
func (c Constraint) Satisfied(v Value) bool {
	if c.Value.Type == TypeString {
		if v.Type != TypeString {
			return false
		}
		return stringSatisfied(c.Op, c.Value.Str, v.Str)
	}
	if !v.Arithmetic() {
		return false
	}
	switch c.Op {
	case OpEQ:
		return v.Num == c.Value.Num
	case OpNE:
		return v.Num != c.Value.Num
	case OpLT:
		return v.Num < c.Value.Num
	case OpLE:
		return v.Num <= c.Value.Num
	case OpGT:
		return v.Num > c.Value.Num
	case OpGE:
		return v.Num >= c.Value.Num
	default:
		return false
	}
}

// stringSatisfied evaluates a string operator against an event value.
// Glob matching is delegated to GlobMatch (see glob.go).
func stringSatisfied(op Op, pattern, v string) bool {
	switch op {
	case OpEQ:
		return v == pattern
	case OpNE:
		return v != pattern
	case OpPrefix:
		return strings.HasPrefix(v, pattern)
	case OpSuffix:
		return strings.HasSuffix(v, pattern)
	case OpContains:
		return strings.Contains(v, pattern)
	case OpGlob:
		return GlobMatch(pattern, v)
	default:
		return false
	}
}

// WireSize returns the constraint's size in bytes under the paper's cost
// model: 2 bytes attribute id, 1 byte operator, plus the value payload.
func (c Constraint) WireSize() int { return 3 + c.Value.WireSize() }

// Format renders the constraint with schema names, e.g. `price < 8.7`.
func (c Constraint) Format(s *Schema) string {
	return fmt.Sprintf("%s %s %s", s.Name(c.Attr), c.Op, c.Value)
}

// Subscription is a conjunction of constraints (Section 2.1, Figure 3).
// A subscription may carry two or more constraints on the same attribute
// (e.g. price > 8.30 and price < 8.70). An event matches iff every
// constraint is satisfied by the event's value for that attribute; events
// missing a constrained attribute do not match.
type Subscription struct {
	Constraints []Constraint
}

// NewSubscription validates the constraints against the schema and returns
// the subscription. At least one constraint is required.
func NewSubscription(s *Schema, cs ...Constraint) (*Subscription, error) {
	if len(cs) == 0 {
		return nil, fmt.Errorf("schema: subscription needs at least one constraint")
	}
	sub := &Subscription{Constraints: make([]Constraint, len(cs))}
	copy(sub.Constraints, cs)
	for _, c := range sub.Constraints {
		if err := c.Validate(s); err != nil {
			return nil, err
		}
	}
	return sub, nil
}

// Matches reports whether the event satisfies every constraint. This is the
// exact (non-summarized) matching relation; owning brokers use it to
// resolve summary pre-filter false positives before consumer delivery.
func (sub *Subscription) Matches(e *Event) bool {
	for _, c := range sub.Constraints {
		v, ok := e.Value(c.Attr)
		if !ok || !c.Satisfied(v) {
			return false
		}
	}
	return true
}

// AttrSet returns the set of distinct attribute ids constrained by the
// subscription, in ascending order. This is the information encoded into
// the c3 component of the subscription id.
func (sub *Subscription) AttrSet() []AttrID {
	seen := make(map[AttrID]bool, len(sub.Constraints))
	var out []AttrID
	for _, c := range sub.Constraints {
		if !seen[c.Attr] {
			seen[c.Attr] = true
			out = append(out, c.Attr)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// NumAttrs returns the number of distinct constrained attributes.
func (sub *Subscription) NumAttrs() int { return len(sub.AttrSet()) }

// WireSize returns the subscription's size in bytes under the paper's cost
// model (the sum of its constraints' sizes; the paper's average is 50).
func (sub *Subscription) WireSize() int {
	n := 0
	for _, c := range sub.Constraints {
		n += c.WireSize()
	}
	return n
}

// Format renders the subscription as ` && `-joined constraints.
func (sub *Subscription) Format(s *Schema) string {
	parts := make([]string, len(sub.Constraints))
	for i, c := range sub.Constraints {
		parts[i] = c.Format(s)
	}
	return strings.Join(parts, " && ")
}
