package workload

import (
	"testing"

	"github.com/subsum/subsum/internal/interval"
	"github.com/subsum/subsum/internal/schema"
	"github.com/subsum/subsum/internal/subid"
	"github.com/subsum/subsum/internal/summary"
)

func mustGen(t testing.TB, cfg Config) *Generator {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NumAttrs = 0 },
		func(c *Config) { c.ArithFraction = 1.5 },
		func(c *Config) { c.AttrsPerSub = 0 },
		func(c *Config) { c.AttrsPerSub = c.NumAttrs + 1 },
		func(c *Config) { c.AttrsPerEvent = 0 },
		func(c *Config) { c.Subsumption = -0.1 },
		func(c *Config) { c.NumRanges = 0 },
		func(c *Config) { c.StringLen = 1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSchemaShape(t *testing.T) {
	g := mustGen(t, DefaultConfig())
	s := g.Schema()
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	// 40% arithmetic / 60% string.
	if g.NumArithmetic() != 4 || g.NumString() != 6 {
		t.Fatalf("split = %d/%d", g.NumArithmetic(), g.NumString())
	}
}

func TestSubscriptionShapeAndSize(t *testing.T) {
	g := mustGen(t, DefaultConfig())
	totalSize := 0
	n := 500
	for i := 0; i < n; i++ {
		sub := g.Subscription()
		if got := sub.NumAttrs(); got != 5 {
			t.Fatalf("NumAttrs = %d, want 5 (n_t/2)", got)
		}
		totalSize += sub.WireSize()
	}
	avg := float64(totalSize) / float64(n)
	// Paper: average subscription size ≈ 50 bytes.
	if avg < 35 || avg > 70 {
		t.Fatalf("average subscription size = %.1f bytes, want ≈ 50", avg)
	}
}

func TestEventShapeAndSize(t *testing.T) {
	g := mustGen(t, DefaultConfig())
	totalSize := 0
	n := 500
	for i := 0; i < n; i++ {
		e := g.Event(0.5)
		if e.Len() != 5 {
			t.Fatalf("event Len = %d, want 5", e.Len())
		}
		totalSize += e.WireSize()
	}
	avg := float64(totalSize) / float64(n)
	if avg < 30 || avg > 70 {
		t.Fatalf("average event size = %.1f bytes, want ≈ 50", avg)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := mustGen(t, DefaultConfig())
	b := mustGen(t, DefaultConfig())
	s := a.Schema()
	for i := 0; i < 50; i++ {
		if a.Subscription().Format(s) != b.Subscription().Format(s) {
			t.Fatal("same seed produced different subscriptions")
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 2
	c := mustGen(t, cfg)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Subscription().Format(s) == c.Subscription().Format(s) {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestSubsumptionControlsSummaryGrowth is the key property the generator
// must deliver for Figures 8 and 11: at high subsumption probability the
// per-attribute summaries stay near their canonical sizes (n_sr ranges),
// while at low subsumption the AACSE equality rows grow with the number of
// subscriptions.
func TestSubsumptionControlsSummaryGrowth(t *testing.T) {
	build := func(p float64) summary.Stats {
		cfg := DefaultConfig()
		cfg.Subsumption = p
		g := mustGen(t, cfg)
		sm := summary.New(g.Schema(), interval.Lossy)
		for i := 0; i < 500; i++ {
			id := subid.ID{Broker: 1, Local: subid.LocalID(i)}
			if err := sm.Insert(id, g.Subscription()); err != nil {
				t.Fatal(err)
			}
		}
		return sm.Stats()
	}
	low := build(0.1)
	high := build(0.9)
	// High subsumption: far fewer equality rows and SACS rows.
	if high.Arithmetic.NumEq*3 > low.Arithmetic.NumEq {
		t.Fatalf("AACSE rows: high=%d low=%d — subsumption knob ineffective",
			high.Arithmetic.NumEq, low.Arithmetic.NumEq)
	}
	if high.Strings.NumRows*3 > low.Strings.NumRows {
		t.Fatalf("SACS rows: high=%d low=%d — subsumption knob ineffective",
			high.Strings.NumRows, low.Strings.NumRows)
	}
	// Range rows stay at the canonical structure: at most n_sr rows per
	// arithmetic attribute regardless of subscription count.
	if high.Arithmetic.NumRanges > 2*4 {
		t.Fatalf("range rows at high subsumption = %d, want ≤ n_sr × n_as = 8", high.Arithmetic.NumRanges)
	}
}

// TestSubsumedConstraintsAreActuallySubsumed: with p=1 every generated
// arithmetic constraint pair is covered by a canonical range and every
// string constraint by a canonical prefix; a summary built from only the
// canonical anchors plus the subscriptions keeps SACS rows at the anchor
// count.
func TestSubsumedConstraintsAreActuallySubsumed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Subsumption = 1
	g := mustGen(t, cfg)
	sm := summary.New(g.Schema(), interval.Lossy)
	for i := 0; i < 300; i++ {
		id := subid.ID{Broker: 0, Local: subid.LocalID(i)}
		if err := sm.Insert(id, g.Subscription()); err != nil {
			t.Fatal(err)
		}
	}
	st := sm.Stats()
	if st.Arithmetic.NumEq != 0 {
		t.Fatalf("AACSE rows = %d, want 0 at p=1", st.Arithmetic.NumEq)
	}
	// Each string attribute has at most NumPatterns canonical prefixes;
	// equality values under a prefix collapse only once the prefix itself
	// has been emitted, so rows stay small but can exceed NumPatterns.
	if st.Strings.NumRows > 6*40 {
		t.Fatalf("SACS rows = %d, want far fewer than one per subscription", st.Strings.NumRows)
	}
}

func TestEventsMatchSubsumedSubscriptions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Subsumption = 1
	g := mustGen(t, cfg)
	sm := summary.New(g.Schema(), interval.Lossy)
	subs := make([]*schema.Subscription, 200)
	for i := range subs {
		subs[i] = g.Subscription()
		id := subid.ID{Broker: 0, Local: subid.LocalID(i)}
		if err := sm.Insert(id, subs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Hit-rate-1 events land inside canonical ranges/prefixes; across many
	// events at least some must match some subscription end to end.
	matches := 0
	for i := 0; i < 500; i++ {
		e := g.Event(1)
		matches += len(sm.MatchKeys(e))
	}
	if matches == 0 {
		t.Fatal("no event matched any subscription; generator misaligned")
	}
}

func TestMatchedBrokers(t *testing.T) {
	g := mustGen(t, DefaultConfig())
	for _, pop := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		got := g.MatchedBrokers(pop, 24)
		want := int(pop*24 + 0.5)
		if want < 1 {
			want = 1
		}
		if len(got) != want {
			t.Fatalf("popularity %.2f: %d brokers, want %d", pop, len(got), want)
		}
		seen := make(map[int]bool)
		for _, b := range got {
			if b < 0 || b >= 24 {
				t.Fatalf("broker %d out of range", b)
			}
			if seen[b] {
				t.Fatalf("duplicate broker %d", b)
			}
			seen[b] = true
		}
	}
	// Extremes clamp.
	if len(g.MatchedBrokers(0, 24)) != 1 {
		t.Fatal("popularity 0 should clamp to 1 broker")
	}
	if len(g.MatchedBrokers(2, 24)) != 24 {
		t.Fatal("popularity >1 should clamp to all brokers")
	}
}

// TestGeneratorSurvivesSchemaEvolution: extending the shared schema after
// construction (Section 6) must not break generation — the generator keeps
// drawing from its original attribute set.
func TestGeneratorSurvivesSchemaEvolution(t *testing.T) {
	g := mustGen(t, DefaultConfig())
	if _, err := g.Schema().Add("evolved", schema.TypeFloat); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		sub := g.Subscription()
		if sub.NumAttrs() != 5 {
			t.Fatalf("NumAttrs = %d", sub.NumAttrs())
		}
		ev := g.Event(0.5)
		if ev.Len() != 5 {
			t.Fatalf("event Len = %d", ev.Len())
		}
		_ = g.AnchoredSubscription(0.5)
	}
}
