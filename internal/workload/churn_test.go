package workload

import (
	"bytes"
	"testing"

	"github.com/subsum/subsum/internal/schema"
)

func TestChurnConfigValidate(t *testing.T) {
	if err := (ChurnConfig{Rate: 10, MeanLifetime: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (ChurnConfig{Rate: 0, MeanLifetime: 2}).Validate(); err == nil {
		t.Error("zero rate accepted")
	}
	if err := (ChurnConfig{Rate: 10, MeanLifetime: 0.5}).Validate(); err == nil {
		t.Error("sub-period lifetime accepted")
	}
}

// TestChurnSteadyState: the live population ramps to ~Rate*MeanLifetime
// and stays there, with deaths never preceding a full period of life.
func TestChurnSteadyState(t *testing.T) {
	g := mustGen(t, DefaultConfig())
	ch, err := NewChurn(g, ChurnConfig{Rate: 100, MeanLifetime: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := ch.SteadyStateLive()
	if target != 400 {
		t.Fatalf("SteadyStateLive = %d, want 400", target)
	}
	born := make(map[int]int) // handle -> birth period
	for p := 0; p < 60; p++ {
		cp := ch.Period()
		for _, h := range cp.Died {
			bp, ok := born[h]
			if !ok {
				t.Fatalf("period %d: unknown handle %d died", p, h)
			}
			if bp >= p {
				t.Fatalf("handle %d died in its birth period", h)
			}
			delete(born, h)
		}
		for _, b := range cp.Born {
			if b.Sub == nil {
				t.Fatalf("period %d: nil subscription", p)
			}
			born[b.Handle] = p
		}
		if ch.Live() != len(born) {
			t.Fatalf("period %d: Live() = %d, tracked %d", p, ch.Live(), len(born))
		}
		if p >= 30 {
			// Well past ramp-up: population fluctuates around the target.
			if lo, hi := target/2, target*2; ch.Live() < lo || ch.Live() > hi {
				t.Fatalf("period %d: live %d outside [%d, %d]", p, ch.Live(), lo, hi)
			}
		}
	}
}

// TestChurnFixedLifetime: the sliding-window distribution retires every
// subscription after exactly MeanLifetime periods.
func TestChurnFixedLifetime(t *testing.T) {
	g := mustGen(t, DefaultConfig())
	ch, err := NewChurn(g, ChurnConfig{Rate: 10, MeanLifetime: 3, Dist: LifetimeFixed, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 10; p++ {
		cp := ch.Period()
		if p < 3 {
			if len(cp.Died) != 0 {
				t.Fatalf("period %d: %d deaths before the window filled", p, len(cp.Died))
			}
			continue
		}
		if len(cp.Died) != 10 {
			t.Fatalf("period %d: %d deaths, want the whole cohort of 10", p, len(cp.Died))
		}
		// The cohort born exactly MeanLifetime periods ago dies, in order.
		want := (p - 3) * 10
		for i, h := range cp.Died {
			if h != want+i {
				t.Fatalf("period %d: died[%d] = %d, want %d", p, i, h, want+i)
			}
		}
	}
	if ch.Live() != 30 {
		t.Fatalf("window population = %d, want Rate*MeanLifetime = 30", ch.Live())
	}
}

// TestChurnDeterminism: same seeds, same stream.
func TestChurnDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	a, err := NewChurn(mustGen(t, cfg), ChurnConfig{Rate: 20, MeanLifetime: 2.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChurn(mustGen(t, cfg), ChurnConfig{Rate: 20, MeanLifetime: 2.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 20; p++ {
		pa, pb := a.Period(), b.Period()
		if len(pa.Died) != len(pb.Died) || len(pa.Born) != len(pb.Born) {
			t.Fatalf("period %d: shape diverged", p)
		}
		for i := range pa.Died {
			if pa.Died[i] != pb.Died[i] {
				t.Fatalf("period %d: deaths diverged at %d", p, i)
			}
		}
		for i := range pa.Born {
			ea := schema.EncodeSubscription(nil, pa.Born[i].Sub)
			eb := schema.EncodeSubscription(nil, pb.Born[i].Sub)
			if pa.Born[i].Handle != pb.Born[i].Handle || !bytes.Equal(ea, eb) {
				t.Fatalf("period %d: births diverged at %d", p, i)
			}
		}
	}
}
