// Package workload generates the synthetic subscriptions and events of the
// paper's evaluation (Section 5.2, Table 2). No public trace exists for
// the original experiments, so this generator reproduces their documented
// statistical structure:
//
//   - n_t attributes total, 40% arithmetic / 60% string;
//   - the "average" subscription and event carry n_t/2 attributes;
//   - average subscription/event size ≈ 50 bytes (string values s_sv = 10);
//   - a tunable subsumption probability: a subsumed arithmetic constraint
//     falls into one of the attribute's n_sr canonical sub-ranges, a
//     subsumed string constraint is covered by one of the attribute's
//     canonical patterns; non-subsumed constraints are fresh distinct
//     equality values outside the ranges/patterns;
//   - event popularity: the fraction of brokers an event matches, with the
//     matched brokers chosen randomly per event.
//
// All output is deterministic for a given Config.Seed.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/subsum/subsum/internal/schema"
)

// Config parametrizes the generator. DefaultConfig returns the paper's
// Table 2 values.
type Config struct {
	NumAttrs      int     // n_t: total attributes in the schema
	ArithFraction float64 // fraction of arithmetic attributes (paper: 0.4)
	AttrsPerSub   int     // constrained attributes per subscription (n_t/2)
	AttrsPerEvent int     // attributes per event (n_t/2)
	Subsumption   float64 // probability a constraint is subsumed [0,1]
	NumRanges     int     // n_sr: canonical sub-ranges per arithmetic attribute
	NumPatterns   int     // canonical covering patterns per string attribute
	StringLen     int     // s_sv: string value size in bytes
	Seed          int64

	// Region shifts the canonical sub-ranges and prefixes into a
	// region-private band, modelling geographically correlated interest:
	// generators with different regions produce subscriptions (and
	// events) over disjoint value populations, while region 0 is
	// byte-identical to the historical generator. All regions share one
	// schema shape, so summaries from different regions still merge —
	// this is the knob the overlay-scaling experiment uses to give
	// summary-similarity subgrouping something real to cluster on.
	Region int
}

// DefaultConfig returns the evaluation parameters of Table 2.
func DefaultConfig() Config {
	return Config{
		NumAttrs:      10,
		ArithFraction: 0.4,
		AttrsPerSub:   5,
		AttrsPerEvent: 5,
		Subsumption:   0.5,
		NumRanges:     2,
		NumPatterns:   2,
		StringLen:     10,
		Seed:          1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.NumAttrs < 1:
		return fmt.Errorf("workload: NumAttrs must be positive")
	case c.ArithFraction < 0 || c.ArithFraction > 1:
		return fmt.Errorf("workload: ArithFraction out of [0,1]")
	case c.AttrsPerSub < 1 || c.AttrsPerSub > c.NumAttrs:
		return fmt.Errorf("workload: AttrsPerSub out of [1,NumAttrs]")
	case c.AttrsPerEvent < 1 || c.AttrsPerEvent > c.NumAttrs:
		return fmt.Errorf("workload: AttrsPerEvent out of [1,NumAttrs]")
	case c.Subsumption < 0 || c.Subsumption > 1:
		return fmt.Errorf("workload: Subsumption out of [0,1]")
	case c.NumRanges < 1 || c.NumPatterns < 1:
		return fmt.Errorf("workload: NumRanges and NumPatterns must be positive")
	case c.StringLen < 2:
		return fmt.Errorf("workload: StringLen must be at least 2")
	case c.Region < 0:
		return fmt.Errorf("workload: Region must be non-negative")
	}
	return nil
}

// anchorRange is a canonical sub-range of an arithmetic attribute; all
// subsumed constraints on the attribute fall inside one of these.
type anchorRange struct {
	lo, hi float64
}

// Generator produces subscriptions and events over its schema.
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	schema   *schema.Schema
	arith    []schema.AttrID // arithmetic attribute ids
	strs     []schema.AttrID // string attribute ids
	ranges   map[schema.AttrID][]anchorRange
	prefixes map[schema.AttrID][]string // canonical covering prefixes
	fresh    int                        // counter for distinct non-subsumed values
	anchors  []anchor                   // templates for AnchoredSubscription
}

// NewGenerator builds a generator (and its schema) from the config.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		ranges:   make(map[schema.AttrID][]anchorRange),
		prefixes: make(map[schema.AttrID][]string),
	}
	nArith := int(float64(cfg.NumAttrs)*cfg.ArithFraction + 0.5)
	attrs := make([]schema.Attribute, cfg.NumAttrs)
	for i := range attrs {
		if i < nArith {
			attrs[i] = schema.Attribute{Name: fmt.Sprintf("num%02d", i), Type: schema.TypeFloat}
		} else {
			attrs[i] = schema.Attribute{Name: fmt.Sprintf("str%02d", i), Type: schema.TypeString}
		}
	}
	s, err := schema.New(attrs...)
	if err != nil {
		return nil, err
	}
	g.schema = s
	for i := 0; i < cfg.NumAttrs; i++ {
		id := schema.AttrID(i)
		if i < nArith {
			g.arith = append(g.arith, id)
			// Canonical sub-ranges: [k·100, k·100+50) per attribute, offset
			// by attribute so ranges differ across attributes.
			rs := make([]anchorRange, cfg.NumRanges)
			for k := range rs {
				// Region r>0 shifts every range into the band
				// [r·100000, (r+1)·100000), keeping regions disjoint.
				base := float64(cfg.Region*100000 + i*1000 + k*100)
				rs[k] = anchorRange{lo: base, hi: base + 50}
			}
			g.ranges[id] = rs
		} else {
			g.strs = append(g.strs, id)
			ps := make([]string, cfg.NumPatterns)
			for k := range ps {
				if cfg.Region > 0 {
					// Region-tagged 8-byte prefix: regions diverge within
					// the first SigPrefixLen bytes.
					ps[k] = fmt.Sprintf("r%02da%02dp%02d", cfg.Region%100, i, k)
				} else {
					ps[k] = fmt.Sprintf("a%02dp%02d", i, k) // 6-byte canonical prefix
				}
			}
			g.prefixes[id] = ps
		}
	}
	return g, nil
}

// Schema returns the generated schema (40% arithmetic, 60% string for the
// default config).
func (g *Generator) Schema() *schema.Schema { return g.schema }

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// NumArithmetic and NumString report the attribute split.
func (g *Generator) NumArithmetic() int { return len(g.arith) }

// NumString reports the number of string attributes.
func (g *Generator) NumString() int { return len(g.strs) }

// Subscription generates one subscription with AttrsPerSub distinct
// attributes, honouring the configured subsumption probability per
// constraint.
func (g *Generator) Subscription() *schema.Subscription {
	return g.SubscriptionWithSubsumption(g.cfg.Subsumption)
}

// SubscriptionWithSubsumption is Subscription with an explicit subsumption
// probability (used when sweeping Figure 9's x-axis).
func (g *Generator) SubscriptionWithSubsumption(p float64) *schema.Subscription {
	// Permute only the attributes that existed at construction: the shared
	// schema may since have evolved (Section 6), and the generator's
	// canonical ranges/prefixes cover the original n_t attributes.
	perm := g.rng.Perm(g.cfg.NumAttrs)
	var cs []schema.Constraint
	for _, ai := range perm[:g.cfg.AttrsPerSub] {
		a := schema.AttrID(ai)
		if g.schema.TypeOf(a).Arithmetic() {
			cs = append(cs, g.arithConstraints(a, p)...)
		} else {
			cs = append(cs, g.stringConstraint(a, p))
		}
	}
	sub, err := schema.NewSubscription(g.schema, cs...)
	if err != nil {
		panic(fmt.Sprintf("workload: generated invalid subscription: %v", err))
	}
	return sub
}

// arithConstraints yields the constraint(s) for one arithmetic attribute:
// subsumed → a range pair (>lo, <hi) inside one of the canonical
// sub-ranges; non-subsumed → a fresh equality value outside all ranges.
func (g *Generator) arithConstraints(a schema.AttrID, p float64) []schema.Constraint {
	if g.rng.Float64() < p {
		// Exactly one of the n_sr canonical sub-ranges: the paper's model
		// keeps AACSSR at n_sr rows per attribute because "all subsumed
		// values fall into the n_sr ranges of the attribute".
		r := g.ranges[a][g.rng.Intn(len(g.ranges[a]))]
		return []schema.Constraint{
			{Attr: a, Op: schema.OpGE, Value: schema.FloatValue(r.lo)},
			{Attr: a, Op: schema.OpLE, Value: schema.FloatValue(r.hi)},
		}
	}
	g.fresh++
	// Distinct equality value far outside every canonical range; the
	// region offset keeps fresh values region-private too.
	v := 1e7 + float64(g.cfg.Region)*1e6 + float64(g.fresh)
	return []schema.Constraint{{Attr: a, Op: schema.OpEQ, Value: schema.FloatValue(v)}}
}

// stringConstraint yields the constraint for one string attribute:
// subsumed → an equality value extending one of the canonical prefixes
// (covered by the prefix pattern, which is also occasionally emitted
// itself); non-subsumed → a fresh distinct equality value.
func (g *Generator) stringConstraint(a schema.AttrID, p float64) schema.Constraint {
	if g.rng.Float64() < p {
		pre := g.prefixes[a][g.rng.Intn(len(g.prefixes[a]))]
		if g.rng.Float64() < 0.2 {
			// Emit the covering prefix constraint itself.
			return schema.Constraint{Attr: a, Op: schema.OpPrefix, Value: schema.StringValue(pre)}
		}
		return schema.Constraint{Attr: a, Op: schema.OpEQ, Value: schema.StringValue(g.padWord(pre))}
	}
	g.fresh++
	word := fmt.Sprintf("z%07d", g.fresh)
	if g.cfg.Region > 0 {
		// Region-tagged so fresh values never collide across regions.
		word = fmt.Sprintf("z%02d%05d", g.cfg.Region%100, g.fresh)
	}
	return schema.Constraint{Attr: a, Op: schema.OpEQ, Value: schema.StringValue(g.padWord(word))}
}

// padWord extends w with random lower-case letters to StringLen bytes.
func (g *Generator) padWord(w string) string {
	b := []byte(w)
	for len(b) < g.cfg.StringLen {
		b = append(b, byte('a'+g.rng.Intn(26)))
	}
	return string(b[:g.cfg.StringLen])
}

// Subscriptions generates a batch of n subscriptions.
func (g *Generator) Subscriptions(n int) []*schema.Subscription {
	out := make([]*schema.Subscription, n)
	for i := range out {
		out[i] = g.Subscription()
	}
	return out
}

// Event generates one event with AttrsPerEvent attributes. With
// probability hitRate each value is drawn from inside a canonical
// sub-range / under a canonical prefix (so it can match subsumed
// subscriptions); otherwise it is a miss value.
func (g *Generator) Event(hitRate float64) *schema.Event {
	perm := g.rng.Perm(g.cfg.NumAttrs) // see SubscriptionWithSubsumption

	fields := make([]schema.Field, 0, g.cfg.AttrsPerEvent)
	for _, ai := range perm[:g.cfg.AttrsPerEvent] {
		a := schema.AttrID(ai)
		var v schema.Value
		if g.schema.TypeOf(a).Arithmetic() {
			if g.rng.Float64() < hitRate {
				r := g.ranges[a][g.rng.Intn(len(g.ranges[a]))]
				v = schema.FloatValue(r.lo + (r.hi-r.lo)*g.rng.Float64())
			} else {
				v = schema.FloatValue(-1e6 - float64(g.rng.Intn(1000)))
			}
		} else {
			if g.rng.Float64() < hitRate {
				pre := g.prefixes[a][g.rng.Intn(len(g.prefixes[a]))]
				v = schema.StringValue(g.padWord(pre))
			} else {
				v = schema.StringValue(g.padWord("miss"))
			}
		}
		fields = append(fields, schema.Field{Attr: a, Value: v})
	}
	e, err := schema.EventFromFields(g.schema, fields)
	if err != nil {
		panic(fmt.Sprintf("workload: generated invalid event: %v", err))
	}
	return e
}

// anchor is a template subscription whose specializations it subsumes.
type anchor struct {
	sub   *schema.Subscription
	attrs []schema.AttrID
}

// ensureAnchors lazily builds the anchor pool used by
// AnchoredSubscription: one template per canonical range/prefix
// combination slot.
func (g *Generator) ensureAnchors() {
	if len(g.anchors) > 0 {
		return
	}
	const pool = 8
	for k := 0; k < pool; k++ {
		perm := g.rng.Perm(g.cfg.NumAttrs)
		var cs []schema.Constraint
		var attrs []schema.AttrID
		for _, ai := range perm[:g.cfg.AttrsPerSub] {
			a := schema.AttrID(ai)
			attrs = append(attrs, a)
			if g.schema.TypeOf(a).Arithmetic() {
				r := g.ranges[a][g.rng.Intn(len(g.ranges[a]))]
				cs = append(cs,
					schema.Constraint{Attr: a, Op: schema.OpGE, Value: schema.FloatValue(r.lo)},
					schema.Constraint{Attr: a, Op: schema.OpLE, Value: schema.FloatValue(r.hi)})
			} else {
				pre := g.prefixes[a][g.rng.Intn(len(g.prefixes[a]))]
				cs = append(cs, schema.Constraint{Attr: a, Op: schema.OpPrefix, Value: schema.StringValue(pre)})
			}
		}
		sub, err := schema.NewSubscription(g.schema, cs...)
		if err != nil {
			panic(fmt.Sprintf("workload: bad anchor: %v", err))
		}
		g.anchors = append(g.anchors, anchor{sub: sub, attrs: attrs})
	}
}

// AnchoredSubscription generates a subscription with whole-subscription
// subsumption structure: with probability p it is either one of the
// generator's anchor templates (25%) or a strict specialization of one
// (75%) — specializations are genuinely subsumed by their anchor, which
// Siena's real subsumption check detects. With probability 1−p it is a
// fresh, distinct subscription that nothing subsumes.
func (g *Generator) AnchoredSubscription(p float64) *schema.Subscription {
	g.ensureAnchors()
	if g.rng.Float64() >= p {
		return g.SubscriptionWithSubsumption(0)
	}
	a := g.anchors[g.rng.Intn(len(g.anchors))]
	if g.rng.Float64() < 0.25 {
		return a.sub
	}
	var cs []schema.Constraint
	for _, attr := range a.attrs {
		if g.schema.TypeOf(attr).Arithmetic() {
			// The anchor's range for attr, narrowed to a quantized quarter
			// sub-range (so it stays within the anchor's bounds).
			var lo, hi float64
			for _, c := range a.sub.Constraints {
				if c.Attr != attr {
					continue
				}
				if c.Op == schema.OpGE {
					lo = c.Value.Num
				} else {
					hi = c.Value.Num
				}
			}
			span := (hi - lo) / 4
			qlo := g.rng.Intn(4)
			qhi := qlo + 1 + g.rng.Intn(4-qlo)
			cs = append(cs,
				schema.Constraint{Attr: attr, Op: schema.OpGE, Value: schema.FloatValue(lo + span*float64(qlo))},
				schema.Constraint{Attr: attr, Op: schema.OpLE, Value: schema.FloatValue(lo + span*float64(qhi))})
		} else {
			// An equality value under the anchor's prefix.
			var pre string
			for _, c := range a.sub.Constraints {
				if c.Attr == attr {
					pre = c.Value.Str
				}
			}
			cs = append(cs, schema.Constraint{Attr: attr, Op: schema.OpEQ, Value: schema.StringValue(g.padWord(pre))})
		}
	}
	sub, err := schema.NewSubscription(g.schema, cs...)
	if err != nil {
		panic(fmt.Sprintf("workload: bad specialization: %v", err))
	}
	return sub
}

// MatchedBrokers draws the random matched-broker set for one event in the
// Figure 10 experiment: each event matches ⌈popularity·n⌉ distinct
// brokers, chosen uniformly ("the 'matched' brokers are randomly chosen
// for every event").
func (g *Generator) MatchedBrokers(popularity float64, n int) []int {
	k := int(popularity*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	perm := g.rng.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}
