package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/subsum/subsum/internal/schema"
)

// LifetimeDist selects how long a churned subscription stays live.
type LifetimeDist int

const (
	// LifetimeGeometric draws lifetimes from a geometric distribution with
	// mean MeanLifetime periods (memoryless churn: each live subscription
	// has the same per-period probability of leaving).
	LifetimeGeometric LifetimeDist = iota
	// LifetimeFixed retires every subscription after exactly
	// round(MeanLifetime) periods (a sliding-window workload).
	LifetimeFixed
)

// ChurnConfig parametrizes a sustained subscribe/unsubscribe stream.
type ChurnConfig struct {
	// Rate is the number of new subscriptions per propagation period.
	Rate int
	// MeanLifetime is the average number of periods a subscription stays
	// live (≥ 1). Steady-state live count converges to Rate*MeanLifetime.
	MeanLifetime float64
	// Dist selects the lifetime distribution.
	Dist LifetimeDist
	// Seed makes the lifetime stream deterministic (subscription content
	// determinism comes from the Generator's own seed).
	Seed int64
}

// Validate checks the churn configuration.
func (c ChurnConfig) Validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("workload: churn rate must be positive, got %d", c.Rate)
	}
	if c.MeanLifetime < 1 {
		return fmt.Errorf("workload: mean lifetime must be ≥ 1 period, got %g", c.MeanLifetime)
	}
	return nil
}

// ChurnSub is one newly-born subscription with the opaque handle its
// death will later be reported under.
type ChurnSub struct {
	Handle int
	Sub    *schema.Subscription
}

// ChurnPeriod is one period's worth of churn: subscriptions to register
// and handles of previously-born subscriptions to retire. Deaths never
// include same-period births (minimum lifetime is one period).
type ChurnPeriod struct {
	Born []ChurnSub
	Died []int
}

// Churn produces a deterministic subscribe/unsubscribe stream over a
// Generator's subscription distribution: Rate births per period, each
// with a lifetime drawn from the configured distribution. The live
// population ramps up and then holds at ~Rate*MeanLifetime, which is what
// makes it the steady-state workload for retraction propagation — remote
// summary state must plateau with the live count, not grow with the total
// churned count.
type Churn struct {
	g      *Generator
	cfg    ChurnConfig
	rng    *rand.Rand
	period int
	next   int           // next handle
	live   int           // currently live subscriptions
	deaths map[int][]int // period -> handles dying then
}

// NewChurn builds a churn stream drawing subscriptions from g.
func NewChurn(g *Generator, cfg ChurnConfig) (*Churn, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Churn{
		g:      g,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		deaths: make(map[int][]int),
	}, nil
}

// Live returns the number of currently live subscriptions.
func (c *Churn) Live() int { return c.live }

// SteadyStateLive returns the live count the stream converges to.
func (c *Churn) SteadyStateLive() int {
	return int(float64(c.cfg.Rate)*c.cfg.MeanLifetime + 0.5)
}

// Period advances one propagation period: it returns the handles dying
// this period (sorted, from earlier births) and Rate fresh subscriptions,
// each scheduled for a future death.
func (c *Churn) Period() ChurnPeriod {
	var p ChurnPeriod
	p.Died = c.deaths[c.period]
	delete(c.deaths, c.period)
	sort.Ints(p.Died)
	c.live -= len(p.Died)
	p.Born = make([]ChurnSub, 0, c.cfg.Rate)
	for i := 0; i < c.cfg.Rate; i++ {
		h := c.next
		c.next++
		die := c.period + c.lifetime()
		c.deaths[die] = append(c.deaths[die], h)
		p.Born = append(p.Born, ChurnSub{Handle: h, Sub: c.g.Subscription()})
	}
	c.live += c.cfg.Rate
	c.period++
	return p
}

// lifetime draws one lifetime in periods (always ≥ 1).
func (c *Churn) lifetime() int {
	switch c.cfg.Dist {
	case LifetimeFixed:
		l := int(c.cfg.MeanLifetime + 0.5)
		if l < 1 {
			l = 1
		}
		return l
	default:
		// Geometric with mean MeanLifetime: leave with probability
		// 1/MeanLifetime each period after the first.
		l := 1
		for c.rng.Float64() > 1/c.cfg.MeanLifetime {
			l++
		}
		return l
	}
}
