package slo

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/subsum/subsum/internal/metrics"
)

// harness drives a sampler deterministically: mutate instruments, call
// tick, evaluate.
type harness struct {
	reg     *metrics.Registry
	sampler *metrics.Sampler
	now     time.Time
}

func newHarness(t *testing.T, bucketFams ...string) *harness {
	t.Helper()
	reg := metrics.NewRegistry()
	s := metrics.NewSampler(reg, time.Second, 64)
	if len(bucketFams) > 0 {
		s.RetainBuckets(bucketFams...)
	}
	return &harness{reg: reg, sampler: s, now: time.Unix(1700000000, 0)}
}

func (h *harness) tick() {
	h.now = h.now.Add(time.Second)
	h.sampler.Tick(h.now)
}

func (h *harness) eval(t *testing.T, spec Spec) Verdict {
	t.Helper()
	eng, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Evaluate(h.sampler.History())
	if len(rep.Verdicts) != 1 {
		t.Fatalf("verdicts = %d, want 1", len(rep.Verdicts))
	}
	return rep.Verdicts[0]
}

func TestSpecValidation(t *testing.T) {
	base := Spec{Name: "x", Kind: KindMax, Series: []string{"s"}, Op: OpLE, Target: 1, Budget: 0.1, FastWindow: 2, SlowWindow: 4}
	bad := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Budget = 0 },
		func(s *Spec) { s.Budget = 1.5 },
		func(s *Spec) { s.FastWindow = 0 },
		func(s *Spec) { s.SlowWindow = 1 }, // < fast
		func(s *Spec) { s.Op = "==" },
		func(s *Spec) { s.Kind = "median" },
		func(s *Spec) { s.Series = nil },
		func(s *Spec) { s.Kind = KindRatio; s.Num = nil },
		func(s *Spec) { s.Kind = KindQuantile; s.Quantile = 0 },
	}
	for i, mut := range bad {
		s := base
		mut(&s)
		if _, err := New(s); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := New(base); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestMaxBurnStates walks one objective through OK → WARN (fast window
// burning, slow not yet) → BREACH (both) → WARN (fresh ticks clean, slow
// still burning) → OK.
func TestMaxBurnStates(t *testing.T) {
	h := newHarness(t)
	g := h.reg.GaugeVec("staleness").With("7")
	spec := Spec{
		Name: "staleness", Kind: KindMax, Series: []string{"staleness"},
		Op: OpLE, Target: 4, Budget: 0.5, FastWindow: 2, SlowWindow: 8,
	}

	for i := 0; i < 8; i++ {
		g.Set(1)
		h.tick()
	}
	if v := h.eval(t, spec); v.State != StateOK {
		t.Fatalf("clean history: %s (fast %.2f slow %.2f)", v.State, v.FastBurn, v.SlowBurn)
	}

	// One violating tick: fast window = 1/2 violations / 0.5 budget = 1
	// (burning); slow = 1/8 / 0.5 < 1.
	g.Set(9)
	h.tick()
	v := h.eval(t, spec)
	if v.State != StateWarn {
		t.Fatalf("fresh burn: %s, want warn", v.State)
	}
	if v.SLI != 9 || v.Evidence.WorstValue != 9 || v.Evidence.WorstSeries != "staleness{7}" {
		t.Fatalf("evidence = %+v, SLI = %v", v.Evidence, v.SLI)
	}

	// Keep violating until the slow window burns too.
	for i := 0; i < 4; i++ {
		g.Set(9)
		h.tick()
	}
	if v := h.eval(t, spec); v.State != StateBreach {
		t.Fatalf("sustained burn: %s, want breach (slow %.2f)", v.State, v.SlowBurn)
	}

	// Recovery: fast window clears first → WARN, then OK.
	g.Set(1)
	h.tick()
	h.tick()
	v = h.eval(t, spec)
	if v.State != StateWarn {
		t.Fatalf("fast recovered: %s, want warn (fast %.2f slow %.2f)", v.State, v.FastBurn, v.SlowBurn)
	}
	for i := 0; i < 6; i++ {
		h.tick()
	}
	if v := h.eval(t, spec); v.State != StateOK {
		t.Fatalf("full recovery: %s", v.State)
	}
}

// TestSumDeltas: a sum-kind spec over counter deltas breaches only on
// ticks where the counters actually moved, and sums across families.
func TestSumDeltas(t *testing.T) {
	h := newHarness(t)
	a := h.reg.CounterVec("dropped").With("event")
	b := h.reg.Counter("decode_errors")
	spec := Spec{
		Name: "loss", Kind: KindSum, Series: []string{"dropped", "decode_errors"},
		Op: OpLE, Target: 0, Budget: 0.25, FastWindow: 2, SlowWindow: 4,
	}

	for i := 0; i < 4; i++ {
		h.tick()
	}
	if v := h.eval(t, spec); v.State != StateOK {
		t.Fatalf("no deltas: %s", v.State)
	}

	a.Add(3)
	b.Add(2)
	h.tick()
	v := h.eval(t, spec)
	if v.State != StateBreach {
		t.Fatalf("loss tick: %s, want breach", v.State)
	}
	if v.SLI != 5 {
		t.Fatalf("SLI = %v, want 5 (summed deltas)", v.SLI)
	}
}

// TestRatioNoData: zero-denominator ticks carry no data — they neither
// violate nor dilute the budget — and the ratio divides summed deltas.
func TestRatioNoData(t *testing.T) {
	h := newHarness(t)
	hit := h.reg.Counter("hits")
	miss := h.reg.Counter("misses")
	spec := Spec{
		Name: "precision", Kind: KindRatio,
		Num: []string{"hits"}, Den: []string{"hits", "misses"},
		Op: OpGE, Target: 0.5, Budget: 0.5, FastWindow: 2, SlowWindow: 6,
	}

	// Idle ticks: no traffic at all → no data → OK with zero data ticks.
	for i := 0; i < 3; i++ {
		h.tick()
	}
	v := h.eval(t, spec)
	if v.State != StateOK || v.Evidence.DataTicks != 0 {
		t.Fatalf("idle: state %s dataTicks %d", v.State, v.Evidence.DataTicks)
	}

	// Good tick: 8 hits, 2 misses → 0.8.
	hit.Add(8)
	miss.Add(2)
	h.tick()
	// Bad ticks: all misses.
	for i := 0; i < 2; i++ {
		miss.Add(5)
		h.tick()
	}
	v = h.eval(t, spec)
	if v.State != StateBreach {
		t.Fatalf("precision collapse: %s (fast %.2f slow %.2f data %d)",
			v.State, v.FastBurn, v.SlowBurn, v.Evidence.DataTicks)
	}
	if v.Evidence.DataTicks != 3 {
		t.Fatalf("data ticks = %d, want 3 (idle ticks excluded)", v.Evidence.DataTicks)
	}
	if v.SLI != 0 {
		t.Fatalf("SLI = %v, want 0", v.SLI)
	}
}

// TestQuantileWindowed: the quantile indicator is computed from bucket
// deltas, so it recovers the tick after a latency spike stops — unlike
// the cumulative .p99 series, which stays poisoned.
func TestQuantileWindowed(t *testing.T) {
	h := newHarness(t, "lat")
	bounds := []float64{0.001, 0.01, 0.1, 1}
	hist := h.reg.Histogram("lat", bounds)
	spec := Spec{
		Name: "p99", Kind: KindQuantile, Series: []string{"lat"},
		Quantile: 0.99, Buckets: bounds,
		Op: OpLE, Target: 0.05, Budget: 0.5, FastWindow: 1, SlowWindow: 8,
	}

	// Fast ticks: everything under 1ms.
	for i := 0; i < 3; i++ {
		for j := 0; j < 100; j++ {
			hist.Observe(0.0005)
		}
		h.tick()
	}
	v := h.eval(t, spec)
	if v.State != StateOK {
		t.Fatalf("fast traffic: %s (SLI %v)", v.State, v.SLI)
	}
	if v.SLI > 0.001 {
		t.Fatalf("fast SLI = %v, want ≤ 0.001", v.SLI)
	}

	// Spike tick: all observations land in the 0.1–1 bucket.
	for j := 0; j < 100; j++ {
		hist.Observe(0.5)
	}
	h.tick()
	v = h.eval(t, spec)
	if v.SLI <= 0.1 {
		t.Fatalf("spike SLI = %v, want > 0.1", v.SLI)
	}
	if v.FastBurn < 1 {
		t.Fatalf("spike fast burn = %v, want ≥ 1", v.FastBurn)
	}

	// Recovery tick: fresh fast traffic. The windowed SLI must drop back
	// immediately; the cumulative p99 would not.
	for j := 0; j < 100; j++ {
		hist.Observe(0.0005)
	}
	h.tick()
	v = h.eval(t, spec)
	if v.SLI > 0.001 {
		t.Fatalf("post-spike SLI = %v — windowed quantile did not recover", v.SLI)
	}
	if cum, ok := h.sampler.History().Latest("lat.p99"); !ok || cum.Value <= 0.001 {
		t.Fatalf("control: cumulative p99 = %v, expected it to stay poisoned > 0.001", cum.Value)
	}
}

// TestQuantileIdleTicks: ticks with zero observations are no-data, not
// violations.
func TestQuantileIdleTicks(t *testing.T) {
	h := newHarness(t, "lat")
	bounds := []float64{0.001, 0.01}
	hist := h.reg.Histogram("lat", bounds)
	hist.Observe(0.0005)
	spec := Spec{
		Name: "p99", Kind: KindQuantile, Series: []string{"lat"},
		Quantile: 0.99, Buckets: bounds,
		Op: OpLE, Target: 0.005, Budget: 0.5, FastWindow: 1, SlowWindow: 4,
	}
	h.tick()
	for i := 0; i < 3; i++ {
		h.tick() // no observations
	}
	v := h.eval(t, spec)
	if v.State != StateOK {
		t.Fatalf("idle ticks: %s", v.State)
	}
	// Only the history's first tick has no delta baseline; the single
	// observation landed before tick 1, so every retained tick is no-data.
	if v.Evidence.DataTicks != 0 {
		t.Fatalf("data ticks = %d, want 0", v.Evidence.DataTicks)
	}
}

// TestReportAggregates: Worst and Breached summarize across verdicts,
// and the report survives a JSON round-trip.
func TestReportAggregates(t *testing.T) {
	h := newHarness(t)
	good := h.reg.Gauge("good")
	bad := h.reg.Gauge("bad")
	eng, err := New(
		Spec{Name: "ok-one", Kind: KindMax, Series: []string{"good"}, Op: OpLE, Target: 10, Budget: 0.5, FastWindow: 1, SlowWindow: 2},
		Spec{Name: "bad-one", Kind: KindMax, Series: []string{"bad"}, Op: OpLE, Target: 1, Budget: 0.5, FastWindow: 1, SlowWindow: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	good.Set(5)
	bad.Set(5)
	for i := 0; i < 4; i++ {
		h.tick()
	}
	rep := eng.Evaluate(h.sampler.History())
	if rep.Worst() != StateBreach || rep.Breaches != 1 {
		t.Fatalf("worst %s breaches %d", rep.Worst(), rep.Breaches)
	}
	if br := rep.Breached(); len(br) != 1 || br[0] != "bad-one" {
		t.Fatalf("breached = %v", br)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Verdicts) != 2 || back.Verdicts[1].State != StateBreach {
		t.Fatalf("round-trip lost verdicts: %+v", back)
	}
}

// TestEvaluateNilHistory: a nil or empty history yields OK verdicts with
// zero evidence, not panics.
func TestEvaluateNilHistory(t *testing.T) {
	eng, err := New(Spec{Name: "x", Kind: KindMax, Series: []string{"s"}, Op: OpLE, Target: 1, Budget: 0.1, FastWindow: 1, SlowWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Evaluate(nil)
	if rep.Verdicts[0].State != StateOK || rep.Verdicts[0].Evidence.WindowTicks != 0 {
		t.Fatalf("nil history verdict = %+v", rep.Verdicts[0])
	}
}
