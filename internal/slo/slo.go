// Package slo is the declarative SLO/error-budget engine: it turns the
// sampler's retained metrics history into verdicts. A Spec names a
// service-level indicator (how to compute one number per sampler tick
// from the history), a target (an inequality the indicator must
// satisfy), and an error budget (what fraction of ticks may violate the
// target before the objective is burning). Evaluation is multi-window:
// a fast window catches fresh burn, a slow window confirms it is
// sustained, and the combination maps to an evidence-carrying verdict:
//
//	BREACH  both windows burning   — the budget is being spent faster
//	                                  than allowed, and it is sustained
//	WARN    one window burning     — fresh burn not yet sustained, or
//	                                  sustained burn that has stopped
//	OK      neither window burning
//
// Windows are measured in sampler ticks; a scenario or daemon that
// ticks once per propagation period therefore expresses its windows in
// propagation periods, which is the unit the paper's algorithms reason
// in. The engine is pure: Evaluate reads a History snapshot and returns
// a Report, with no internal state — state (transition journaling,
// gauge mirroring) lives in Monitor.
//
// Four indicator kinds cover the engine's objectives:
//
//   - max: the per-tick maximum of gauge-like series (staleness).
//   - sum: the per-tick sum of cumulative-series deltas (loss counts).
//   - ratio: Σdeltas(num) / Σdeltas(den) per tick (precision,
//     bytes/period); ticks where the denominator is zero carry no data.
//   - quantile: a per-tick quantile interpolated from histogram bucket
//     deltas (windowed p99 latency — the cumulative .p99 series never
//     recovers after a spike, bucket deltas do). Requires the sampler
//     to retain the family's buckets (Sampler.RetainBuckets).
package slo

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"github.com/subsum/subsum/internal/metrics"
)

// State is an objective's verdict state.
type State string

// Verdict states, ordered by severity.
const (
	StateOK     State = "ok"
	StateWarn   State = "warn"
	StateBreach State = "breach"
)

// Severity orders states: ok < warn < breach.
func (s State) Severity() int {
	switch s {
	case StateBreach:
		return 2
	case StateWarn:
		return 1
	default:
		return 0
	}
}

// Kind selects how a Spec computes its per-tick indicator.
type Kind string

// Indicator kinds.
const (
	KindMax      Kind = "max"
	KindSum      Kind = "sum"
	KindRatio    Kind = "ratio"
	KindQuantile Kind = "quantile"
)

// Op is the inequality the indicator must satisfy against Target.
type Op string

// Target operators.
const (
	OpLE Op = "<=" // indicator must stay at or below Target
	OpGE Op = ">=" // indicator must stay at or above Target
)

// Spec is one declarative objective.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Kind        Kind   `json:"kind"`
	// Series selects the history series the indicator reads (max, sum,
	// quantile): each entry matches an exact series name or a labeled
	// family ("broker_deliveries" matches "broker_deliveries{3}").
	// Quantile specs name the histogram family; its ".bucket<i>" series
	// are resolved automatically.
	Series []string `json:"series,omitempty"`
	// Num and Den select the ratio numerator/denominator families; the
	// per-tick indicator is Σdeltas(Num) / Σdeltas(Den).
	Num []string `json:"num,omitempty"`
	Den []string `json:"den,omitempty"`
	// Quantile is the rank for KindQuantile (e.g. 0.99); Buckets are the
	// histogram's upper bounds, needed to interpolate a value from
	// bucket-count deltas.
	Quantile float64   `json:"quantile,omitempty"`
	Buckets  []float64 `json:"-"`

	Op     Op      `json:"op"`
	Target float64 `json:"target"`
	// Budget is the allowed fraction of data ticks per window that may
	// violate the target (the error budget). Burn rate is the observed
	// violating fraction divided by Budget: ≥ 1 means the budget is
	// being spent at or above the allowed pace.
	Budget float64 `json:"budget"`
	// FastWindow and SlowWindow are window lengths in sampler ticks.
	FastWindow int `json:"fast_window"`
	SlowWindow int `json:"slow_window"`
}

// Evidence carries the observations a verdict rests on.
type Evidence struct {
	// WindowTicks is the evaluated slow-window length (clamped to the
	// available history); DataTicks how many of them carried data.
	WindowTicks int `json:"window_ticks"`
	DataTicks   int `json:"data_ticks"`
	// FastViolations / SlowViolations count target-violating ticks in
	// each window.
	FastViolations int `json:"fast_violations"`
	SlowViolations int `json:"slow_violations"`
	// WorstValue is the most target-adverse indicator value in the slow
	// window, with its timestamp and — for max-kind specs — the series
	// that produced it.
	WorstValue      float64 `json:"worst_value"`
	WorstUnixMillis int64   `json:"worst_unix_millis,omitempty"`
	WorstSeries     string  `json:"worst_series,omitempty"`
}

// Verdict is one objective's evaluated state.
type Verdict struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	State       State   `json:"state"`
	Op          Op      `json:"op"`
	Target      float64 `json:"target"`
	// SLI is the most recent data tick's indicator value (NaN-free: 0
	// when the window carried no data at all).
	SLI float64 `json:"sli"`
	// FastBurn and SlowBurn are the per-window burn rates (violating
	// fraction over budget; ≥ 1 is burning).
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// BudgetRemaining is the unspent fraction of the slow window's error
	// budget, clamped to [0, 1].
	BudgetRemaining float64  `json:"budget_remaining"`
	Evidence        Evidence `json:"evidence"`
}

// Report is one full evaluation pass.
type Report struct {
	UnixMillis int64     `json:"unix_millis"`
	Ticks      int64     `json:"ticks"`
	Verdicts   []Verdict `json:"verdicts"`
	Breaches   int       `json:"breaches"`
	Warns      int       `json:"warns"`
}

// Worst returns the most severe state in the report (OK when empty).
func (r *Report) Worst() State {
	worst := StateOK
	for i := range r.Verdicts {
		if r.Verdicts[i].State.Severity() > worst.Severity() {
			worst = r.Verdicts[i].State
		}
	}
	return worst
}

// Breached lists the names of objectives currently in breach.
func (r *Report) Breached() []string {
	var out []string
	for i := range r.Verdicts {
		if r.Verdicts[i].State == StateBreach {
			out = append(out, r.Verdicts[i].Name)
		}
	}
	return out
}

// Engine evaluates a fixed set of specs. It is stateless and safe for
// concurrent use.
type Engine struct {
	specs []Spec
}

// New validates the specs and builds an engine.
func New(specs ...Spec) (*Engine, error) {
	for i := range specs {
		if err := validate(&specs[i]); err != nil {
			return nil, err
		}
	}
	return &Engine{specs: append([]Spec(nil), specs...)}, nil
}

func validate(s *Spec) error {
	if s.Name == "" {
		return fmt.Errorf("slo: spec without a name")
	}
	if s.Budget <= 0 || s.Budget > 1 {
		return fmt.Errorf("slo: %s: budget %v outside (0, 1]", s.Name, s.Budget)
	}
	if s.FastWindow < 1 || s.SlowWindow < s.FastWindow {
		return fmt.Errorf("slo: %s: want 1 ≤ fast (%d) ≤ slow (%d)", s.Name, s.FastWindow, s.SlowWindow)
	}
	if s.Op != OpLE && s.Op != OpGE {
		return fmt.Errorf("slo: %s: unknown op %q", s.Name, s.Op)
	}
	switch s.Kind {
	case KindMax, KindSum:
		if len(s.Series) == 0 {
			return fmt.Errorf("slo: %s: %s spec without series", s.Name, s.Kind)
		}
	case KindRatio:
		if len(s.Num) == 0 || len(s.Den) == 0 {
			return fmt.Errorf("slo: %s: ratio spec without num/den", s.Name)
		}
	case KindQuantile:
		if len(s.Series) == 0 || s.Quantile <= 0 || s.Quantile > 1 || len(s.Buckets) == 0 {
			return fmt.Errorf("slo: %s: quantile spec wants series, 0 < q ≤ 1, and bucket bounds", s.Name)
		}
	default:
		return fmt.Errorf("slo: %s: unknown kind %q", s.Name, s.Kind)
	}
	return nil
}

// Specs returns the engine's objectives.
func (e *Engine) Specs() []Spec { return append([]Spec(nil), e.specs...) }

// Evaluate runs every spec against the history snapshot.
func (e *Engine) Evaluate(h *metrics.History) *Report {
	rep := &Report{UnixMillis: time.Now().UnixMilli(), Verdicts: make([]Verdict, 0, len(e.specs))}
	if h != nil {
		rep.Ticks = h.Ticks
	}
	for i := range e.specs {
		v := evalSpec(&e.specs[i], h)
		switch v.State {
		case StateBreach:
			rep.Breaches++
		case StateWarn:
			rep.Warns++
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	return rep
}

// tickValue is one aligned per-tick indicator sample.
type tickValue struct {
	value      float64
	hasData    bool
	unixMillis int64
	series     string // max kind: which series produced the value
}

// seriesMatches reports whether a history series name belongs to one of
// the spec's selectors (exact name or labeled family).
func seriesMatches(name string, selectors []string) bool {
	for _, sel := range selectors {
		if name == sel {
			return true
		}
		if len(name) > len(sel) && strings.HasPrefix(name, sel) && name[len(sel)] == '{' {
			return true
		}
	}
	return false
}

// tailPoint returns the series point at offset o from its end (o = 0 is
// the latest point). Series created mid-run are shorter; ticks they
// were absent for report ok = false. All live series are sampled on
// every tick, so tails align across series.
func tailPoint(s *metrics.HistorySeries, o int) (metrics.HistoryPoint, bool) {
	if o >= len(s.Points) {
		return metrics.HistoryPoint{}, false
	}
	return s.Points[len(s.Points)-1-o], true
}

// evalSpec computes the per-tick indicator column for the slow window
// and folds it into a verdict.
func evalSpec(s *Spec, h *metrics.History) Verdict {
	v := Verdict{Name: s.Name, Description: s.Description, Op: s.Op, Target: s.Target, State: StateOK}
	col := indicatorColumn(s, h) // index 0 = latest tick
	v.Evidence.WindowTicks = len(col)

	worstSet := false
	fastViol, slowViol, dataFast, dataSlow := 0, 0, 0, 0
	for o, tv := range col {
		if !tv.hasData {
			continue
		}
		if !worstSet || worse(s.Op, tv.value, v.Evidence.WorstValue) {
			v.Evidence.WorstValue = tv.value
			v.Evidence.WorstUnixMillis = tv.unixMillis
			v.Evidence.WorstSeries = tv.series
			worstSet = true
		}
		if dataSlow == 0 {
			// First (most recent) data tick: the reported SLI.
			v.SLI = tv.value
		}
		dataSlow++
		viol := violates(s.Op, tv.value, s.Target)
		if viol {
			slowViol++
		}
		if o < s.FastWindow {
			dataFast++
			if viol {
				fastViol++
			}
		}
	}
	v.Evidence.DataTicks = dataSlow
	v.Evidence.FastViolations = fastViol
	v.Evidence.SlowViolations = slowViol

	v.FastBurn = burn(fastViol, dataFast, s.Budget)
	v.SlowBurn = burn(slowViol, dataSlow, s.Budget)
	v.BudgetRemaining = 1.0
	if dataSlow > 0 {
		v.BudgetRemaining = math.Max(0, 1-(float64(slowViol)/float64(dataSlow))/s.Budget)
	}
	switch {
	case v.FastBurn >= 1 && v.SlowBurn >= 1:
		v.State = StateBreach
	case v.FastBurn >= 1 || v.SlowBurn >= 1:
		v.State = StateWarn
	}
	return v
}

func violates(op Op, value, target float64) bool {
	if op == OpGE {
		return value < target
	}
	return value > target
}

// worse reports whether a is more target-adverse than b.
func worse(op Op, a, b float64) bool {
	if op == OpGE {
		return a < b
	}
	return a > b
}

func burn(viol, data int, budget float64) float64 {
	if data == 0 {
		return 0
	}
	return (float64(viol) / float64(data)) / budget
}

// indicatorColumn computes the spec's per-tick values for the last
// SlowWindow ticks, index 0 = most recent.
func indicatorColumn(s *Spec, h *metrics.History) []tickValue {
	if h == nil {
		return nil
	}
	switch s.Kind {
	case KindQuantile:
		return quantileColumn(s, h)
	case KindRatio:
		return ratioColumn(s, h)
	default:
		return aggColumn(s, h)
	}
}

// selectSeries returns pointers into h for the matching series and the
// longest matching series length.
func selectSeries(h *metrics.History, selectors []string) ([]*metrics.HistorySeries, int) {
	var out []*metrics.HistorySeries
	longest := 0
	for i := range h.Series {
		if seriesMatches(h.Series[i].Name, selectors) {
			out = append(out, &h.Series[i])
			if n := len(h.Series[i].Points); n > longest {
				longest = n
			}
		}
	}
	return out, longest
}

// aggColumn handles max (point values) and sum (cumulative deltas).
func aggColumn(s *Spec, h *metrics.History) []tickValue {
	series, longest := selectSeries(h, s.Series)
	n := min(s.SlowWindow, longest)
	col := make([]tickValue, n)
	for o := 0; o < n; o++ {
		tv := &col[o]
		for _, sr := range series {
			p, ok := tailPoint(sr, o)
			if !ok {
				continue
			}
			tv.unixMillis = p.UnixMillis
			switch s.Kind {
			case KindMax:
				if !tv.hasData || p.Value > tv.value {
					tv.value = p.Value
					tv.series = sr.Name
				}
				tv.hasData = true
			case KindSum:
				tv.value += p.Delta
				tv.hasData = true
			}
		}
	}
	return col
}

// ratioColumn computes Σdeltas(num)/Σdeltas(den) per tick; zero-
// denominator ticks carry no data.
func ratioColumn(s *Spec, h *metrics.History) []tickValue {
	numSeries, longestN := selectSeries(h, s.Num)
	denSeries, longestD := selectSeries(h, s.Den)
	n := min(s.SlowWindow, max(longestN, longestD))
	col := make([]tickValue, n)
	for o := 0; o < n; o++ {
		var num, den float64
		var ts int64
		for _, sr := range numSeries {
			if p, ok := tailPoint(sr, o); ok {
				num += p.Delta
				ts = p.UnixMillis
			}
		}
		for _, sr := range denSeries {
			if p, ok := tailPoint(sr, o); ok {
				den += p.Delta
				ts = p.UnixMillis
			}
		}
		if den > 0 {
			col[o] = tickValue{value: num / den, hasData: true, unixMillis: ts}
		}
	}
	return col
}

// quantileColumn interpolates the spec quantile from per-tick histogram
// bucket-count deltas, summed across every matching instrument. Ticks
// with no observations carry no data.
func quantileColumn(s *Spec, h *metrics.History) []tickValue {
	// Bucket series are named "<instrument>.bucket<i>"; group matching
	// series by bucket index. len(Buckets) finite bounds plus the open
	// +Inf bucket.
	nb := len(s.Buckets) + 1
	byBucket := make([][]*metrics.HistorySeries, nb)
	longest := 0
	for i := range h.Series {
		name := h.Series[i].Name
		dot := strings.LastIndex(name, ".bucket")
		if dot < 0 {
			continue
		}
		idx, err := strconv.Atoi(name[dot+len(".bucket"):])
		if err != nil || idx < 0 || idx >= nb {
			continue
		}
		if !seriesMatches(name[:dot], s.Series) {
			continue
		}
		byBucket[idx] = append(byBucket[idx], &h.Series[i])
		if n := len(h.Series[i].Points); n > longest {
			longest = n
		}
	}
	n := min(s.SlowWindow, longest)
	col := make([]tickValue, n)
	counts := make([]float64, nb)
	for o := 0; o < n; o++ {
		total := 0.0
		var ts int64
		for i := 0; i < nb; i++ {
			counts[i] = 0
			for _, sr := range byBucket[i] {
				if p, ok := tailPoint(sr, o); ok {
					counts[i] += p.Delta
					ts = p.UnixMillis
				}
			}
			total += counts[i]
		}
		if total <= 0 {
			continue
		}
		col[o] = tickValue{value: bucketQuantile(s.Buckets, counts, total, s.Quantile), hasData: true, unixMillis: ts}
	}
	return col
}

// bucketQuantile mirrors metrics.Histogram.Quantile: linear
// interpolation inside the owning bucket, clamped to the highest finite
// bound when the rank lands in the open bucket.
func bucketQuantile(bounds []float64, counts []float64, total, q float64) float64 {
	rank := q * total
	var cum float64
	for i := range counts {
		n := counts[i]
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return bounds[len(bounds)-1]
}
